GO ?= go

# Solver benchmarks recorded in the perf trajectory. Keep the patterns in
# sync with README's benchmark tables. Three tiers by per-op cost, so each
# gets enough iterations to average out scheduler/GC noise (important on
# small CI runners) without the multi-second passes taking minutes:
# macro benchmarks are ms-scale whole solver passes (20 iterations), heavy
# benchmarks are seconds-scale 1000-instance passes (3 iterations), and
# micro benchmarks are ns-scale move evaluations (thousands).
BENCH_PATTERN_MACRO ?= BenchmarkCPPerNodeBudget|BenchmarkCPThresholdDescent|BenchmarkCPSearchNode|BenchmarkCPTighten|BenchmarkDeltaEvalPortfolio|BenchmarkKMeans1D$$|BenchmarkPatchSortedPairs|BenchmarkWALReplay
BENCH_PATTERN_HEAVY ?= BenchmarkColdPrep1000|BenchmarkDaemonRestart|BenchmarkKMeans1DLarge|BenchmarkPortfolio1000|BenchmarkStreamingAdvise|BenchmarkStreamingP99Advise|BenchmarkShardedServe|BenchmarkSkewedServe|BenchmarkSortedPairsRebuild
BENCH_PATTERN_MICRO ?= BenchmarkDeltaEvalLL|BenchmarkDeltaEvalLP
BENCH_PATTERN ?= $(BENCH_PATTERN_MACRO)|$(BENCH_PATTERN_HEAVY)|$(BENCH_PATTERN_MICRO)
BENCH_OUT ?= BENCH_PR9.json

# The perf trajectory: BENCH_BASE is the previous PR's recorded run,
# BENCH_NEW the current one; bench-diff flags regressions beyond
# BENCH_THRESHOLD percent. Only benchmarks named in BENCH_ALLOWLIST gate
# the exit status (stable whole-pass benchmarks); the rest print as
# informational.
BENCH_BASE ?= BENCH_PR8.json
BENCH_NEW ?= BENCH_PR9.json
BENCH_THRESHOLD ?= 20
BENCH_ALLOWLIST ?= BENCH_ALLOWLIST

# Per-package statement-coverage floors enforced by `make cover` (and CI).
COVER_OUT ?= coverprofile
COVER_FLOORS ?= cloudia/internal/measure=90 cloudia/internal/solver=90 cloudia/internal/serve=90 cloudia/internal/wal=90 cloudia/internal/sketch=90 cloudia/internal/lint=90

# The determinism vettool (see internal/lint and README "Determinism
# lint"). Built locally so `go vet -vettool` gets an absolute path — the
# go command re-execs the tool from package directories.
VETTOOL ?= bin/cloudia-vet

.PHONY: build vet test bench bench-smoke bench-diff cover fmt-check crash-test lint lint-fix

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# crash-test runs the fault-injection suite on its own: the daemon is
# killed at every WAL crashpoint (in-process and by re-execed child dying
# with exit 137), restarted, and must replay to a prefix of the
# uninterrupted history and serve bit-equal advice.
crash-test:
	$(GO) test -run 'TestCrash' -count=1 -v ./internal/serve/

# bench runs the solver benchmarks and records them as JSON so the perf
# trajectory is tracked across PRs (BENCH_PR<N>.json per PR). -p 1 keeps
# package test binaries sequential: by default `go test ./...` runs them
# in parallel, so benchmarks in different packages would time-share cores
# and contaminate each other's ns/op.
# (No `| tee`: a pipe would launder the go test exit status — POSIX sh has
# no pipefail — so a failing benchmark run could still record a JSON file.)
bench:
	@rm -f /tmp/cloudia-bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN_MACRO)' -benchmem -benchtime=20x -p 1 ./... >> /tmp/cloudia-bench.out || { cat /tmp/cloudia-bench.out; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN_HEAVY)' -benchmem -benchtime=3x -p 1 ./... >> /tmp/cloudia-bench.out || { cat /tmp/cloudia-bench.out; exit 1; }
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN_MICRO)' -benchmem -benchtime=5000x -p 1 ./... >> /tmp/cloudia-bench.out || { cat /tmp/cloudia-bench.out; exit 1; }
	@cat /tmp/cloudia-bench.out
	scripts/benchjson.sh /tmp/cloudia-bench.out > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-smoke is the CI guard: one iteration of every recorded benchmark,
# just proving they still run (and that CPSearchNode still reports).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x -p 1 ./...

# bench-diff compares the committed perf trajectory files: every benchmark
# present in both BENCH_BASE and BENCH_NEW is checked for a ns/op
# regression beyond BENCH_THRESHOLD percent. Benchmarks named in
# BENCH_ALLOWLIST gate the exit status (CI fails on their regressions);
# the rest are informational. Run locally after `make bench` to see the
# per-benchmark deltas.
bench-diff:
	scripts/benchdiff.sh $(BENCH_BASE) $(BENCH_NEW) $(BENCH_THRESHOLD) $(BENCH_ALLOWLIST)

# cover runs the full test suite with coverage, writes $(COVER_OUT) for
# tooling (`go tool cover -html=$(COVER_OUT)`), and enforces the
# per-package floors in COVER_FLOORS. (No `| tee`, so a test failure's
# exit status reaches make instead of being laundered through the pipe.)
cover:
	$(GO) test -coverprofile=$(COVER_OUT) -cover ./... > /tmp/cloudia-cover.out || { cat /tmp/cloudia-cover.out; exit 1; }
	@cat /tmp/cloudia-cover.out
	scripts/coverfloor.sh /tmp/cloudia-cover.out $(COVER_FLOORS)

# lint builds the determinism vettool and runs the analyzer suite
# (maprange, baregoroutine, wallclock, walrecord) over the whole repo via
# the go command's vet-unit protocol. Gating in CI: any unsuppressed
# finding in a deterministic package fails the build. The build is cheap —
# the go build cache makes rebuilds near-instant.
lint:
	$(GO) build -o $(VETTOOL) ./cmd/cloudia-vet
	$(GO) vet -vettool=$(abspath $(VETTOOL)) ./...

# lint-fix is the triage convenience: standalone mode prints every finding
# with its file:line plus a ready-to-paste //cloudia:nondet-ok suppression
# template, so each site can be deliberately fixed or annotated. Never
# gating (the leading dash): it is a report, not a check.
lint-fix:
	$(GO) build -o $(VETTOOL) ./cmd/cloudia-vet
	-$(abspath $(VETTOOL)) -hints ./...

# fmt-check fails when any file needs gofmt, listing the offenders.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; \
	fi
