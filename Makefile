GO ?= go

# Solver benchmarks recorded in the perf trajectory. Keep the patterns in
# sync with README's benchmark tables. (BenchmarkKMeans1D also matches
# BenchmarkKMeans1DLarge.) The macro benchmarks run whole solver passes
# (ms-to-seconds per op), so a handful of iterations suffices; the micro
# benchmarks are ns-scale move evaluations where 5 iterations is timer
# noise, so they run thousands of times.
BENCH_PATTERN_MACRO ?= BenchmarkCPPerNodeBudget|BenchmarkCPThresholdDescent|BenchmarkCPSearchNode|BenchmarkCPTighten|BenchmarkDeltaEvalPortfolio|BenchmarkKMeans1D|BenchmarkPortfolio1000
BENCH_PATTERN_MICRO ?= BenchmarkDeltaEvalLL|BenchmarkDeltaEvalLP
BENCH_PATTERN ?= $(BENCH_PATTERN_MACRO)|$(BENCH_PATTERN_MICRO)
BENCH_OUT ?= BENCH_PR3.json

# The perf trajectory: BENCH_BASE is the previous PR's recorded run,
# BENCH_NEW the current one; bench-diff flags regressions beyond
# BENCH_THRESHOLD percent.
BENCH_BASE ?= BENCH_PR2.json
BENCH_NEW ?= BENCH_PR3.json
BENCH_THRESHOLD ?= 20

.PHONY: build vet test bench bench-smoke bench-diff

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the solver benchmarks and records them as JSON so the perf
# trajectory is tracked across PRs (BENCH_PR<N>.json per PR).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN_MACRO)' -benchmem -benchtime=5x ./... | tee /tmp/cloudia-bench.out
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN_MICRO)' -benchmem -benchtime=5000x ./... | tee -a /tmp/cloudia-bench.out
	scripts/benchjson.sh /tmp/cloudia-bench.out > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-smoke is the CI guard: one iteration of every recorded benchmark,
# just proving they still run (and that CPSearchNode still reports).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./...

# bench-diff compares the committed perf trajectory files: every benchmark
# present in both BENCH_BASE and BENCH_NEW is checked for a ns/op
# regression beyond BENCH_THRESHOLD percent. Informational in CI (the step
# does not fail the build); run locally after `make bench` to see the
# per-benchmark deltas.
bench-diff:
	scripts/benchdiff.sh $(BENCH_BASE) $(BENCH_NEW) $(BENCH_THRESHOLD)
