GO ?= go

# Solver benchmarks recorded in the perf trajectory. Keep the pattern in
# sync with README's benchmark tables.
BENCH_PATTERN ?= BenchmarkCPPerNodeBudget|BenchmarkCPThresholdDescent|BenchmarkCPSearchNode|BenchmarkCPTighten|BenchmarkDeltaEval|BenchmarkKMeans1D
BENCH_OUT ?= BENCH_PR2.json

.PHONY: build vet test bench bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# bench runs the solver benchmarks and records them as JSON so the perf
# trajectory is tracked across PRs (BENCH_PR<N>.json per PR).
bench:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=5x ./... | tee /tmp/cloudia-bench.out
	scripts/benchjson.sh /tmp/cloudia-bench.out > $(BENCH_OUT)
	@echo "wrote $(BENCH_OUT)"

# bench-smoke is the CI guard: one iteration of every recorded benchmark,
# just proving they still run (and that CPSearchNode still reports).
bench-smoke:
	$(GO) test -run '^$$' -bench '$(BENCH_PATTERN)' -benchmem -benchtime=1x ./...
