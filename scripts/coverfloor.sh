#!/bin/sh
# coverfloor.sh: enforce per-package statement-coverage floors over the
# output of `go test -cover ./...`.
#
# Usage: scripts/coverfloor.sh SUMMARY_FILE pkg=floor [pkg=floor ...]
#
# SUMMARY_FILE holds `go test -cover` output lines of the form
#   ok  	cloudia/internal/measure	0.5s	coverage: 96.8% of statements
# Each pkg=floor argument names an import path and its minimum coverage
# percentage. Exit 1 when any named package is below its floor or missing
# from the summary.
#
# POSIX sh; safe under `set -euo pipefail` shells.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 SUMMARY_FILE pkg=floor [pkg=floor ...]" >&2
	exit 2
fi
summary=$1
shift
if [ ! -f "$summary" ]; then
	printf 'coverfloor: summary file %s does not exist\n' "$summary" >&2
	exit 2
fi

status=0
for spec in "$@"; do
	pkg=${spec%=*}
	floor=${spec##*=}
	if [ "$pkg" = "$spec" ] || [ -z "$floor" ]; then
		printf 'coverfloor: malformed spec %s (want pkg=floor)\n' "$spec" >&2
		exit 2
	fi
	got=$(awk -v pkg="$pkg" '
		$1 == "ok" && $2 == pkg {
			for (i = 3; i <= NF; i++)
				if ($i == "coverage:") { sub(/%$/, "", $(i + 1)); print $(i + 1); exit }
		}
	' "$summary")
	if [ -z "$got" ]; then
		printf 'coverfloor: FAIL %s: no coverage line in %s\n' "$pkg" "$summary"
		status=1
		continue
	fi
	ok=$(awk -v got="$got" -v floor="$floor" 'BEGIN { print (got + 0 >= floor + 0) ? 1 : 0 }')
	if [ "$ok" -eq 1 ]; then
		printf 'coverfloor: ok   %s: %s%% >= %s%%\n' "$pkg" "$got" "$floor"
	else
		printf 'coverfloor: FAIL %s: %s%% < %s%%\n' "$pkg" "$got" "$floor"
		status=1
	fi
done
exit $status
