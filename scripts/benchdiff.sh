#!/bin/sh
# benchdiff.sh: compare two BENCH_PR<N>.json perf-trajectory files (as
# written by benchjson.sh) and report the ns/op delta for every benchmark
# present in both. Exits nonzero when any common benchmark regressed by
# more than the threshold percentage, so CI can surface it (the workflow
# runs this as an informational step).
#
# Usage: scripts/benchdiff.sh BENCH_PR2.json BENCH_PR3.json [threshold-pct]
set -eu

base=$1
new=$2
threshold=${3:-20}

awk -v base="$base" -v new="$new" -v threshold="$threshold" '
function parse(line, kv) {
    # benchjson.sh writes one object per line: extract name and ns_per_op.
    if (match(line, /"name": "[^"]+"/)) {
        name = substr(line, RSTART + 9, RLENGTH - 10)
        if (match(line, /"ns_per_op": [0-9.eE+]+/)) {
            ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
            kv[name] = ns
            return name
        }
    }
    return ""
}
NR == FNR { parse($0, old); next }
{
    n = parse($0, cur)
    if (n != "" && (n in old)) {
        delta = (cur[n] - old[n]) / old[n] * 100
        marker = ""
        if (delta > threshold) { marker = "  REGRESSION"; bad++ }
        else if (delta < -threshold) { marker = "  improved" }
        printf "%-45s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", n, old[n], cur[n], delta, marker
        compared++
    }
}
END {
    if (compared == 0) { print "benchdiff: no common benchmarks found" > "/dev/stderr"; exit 2 }
    printf "benchdiff: %d benchmarks compared against %s (threshold %s%%)\n", compared, base, threshold
    if (bad > 0) { printf "benchdiff: %d regression(s) beyond %s%%\n", bad, threshold > "/dev/stderr"; exit 1 }
}
' "$base" "$new"
