#!/bin/sh
# benchdiff.sh: compare two BENCH_PR<N>.json perf-trajectory files (as
# written by benchjson.sh) and report the ns/op delta for every benchmark
# present in both.
#
# Usage: scripts/benchdiff.sh BASE.json NEW.json [threshold-pct] [allowlist]
#
# Exit status:
#   0  no gated regression (or no baseline to compare against — a fresh
#      trajectory emits a clear notice instead of silently passing or
#      failing)
#   1  at least one gated benchmark regressed beyond the threshold
#   2  usage or input error
#
# When an allowlist file is given (fourth argument, or the BENCH_ALLOWLIST
# environment variable), only benchmarks listed in it gate the exit status;
# everything else is still printed, marked "(ungated)", so noise-prone
# micro-benchmarks stay visible without failing CI. The allowlist holds one
# benchmark name per line; blank lines and #-comments are ignored.
#
# POSIX sh; no bashisms, and safe under `set -euo pipefail` shells.
set -eu

if [ $# -lt 2 ]; then
	echo "usage: $0 BASE.json NEW.json [threshold-pct] [allowlist]" >&2
	exit 2
fi
base=$1
new=$2
threshold=${3:-20}
allowlist=${4:-${BENCH_ALLOWLIST:-}}

missing=0
for f in "$base" "$new"; do
	if [ ! -f "$f" ]; then
		printf 'benchdiff: no baseline: %s does not exist\n' "$f"
		missing=1
	fi
done
if [ "$missing" -eq 1 ]; then
	echo "benchdiff: skipping comparison (expected on the first PR of a trajectory)"
	exit 0
fi
if [ -n "$allowlist" ] && [ ! -f "$allowlist" ]; then
	printf 'benchdiff: allowlist %s does not exist\n' "$allowlist" >&2
	exit 2
fi

awk -v base="$base" -v newfile="$new" -v threshold="$threshold" -v allowfile="$allowlist" '
function parse(line, kv) {
	# benchjson.sh writes one object per line: extract name and ns_per_op.
	if (match(line, /"name": "[^"]+"/)) {
		name = substr(line, RSTART + 9, RLENGTH - 10)
		if (match(line, /"ns_per_op": [0-9.eE+]+/)) {
			ns = substr(line, RSTART + 13, RLENGTH - 13) + 0
			kv[name] = ns
			return name
		}
	}
	return ""
}
BEGIN {
	gateall = 1
	if (allowfile != "") {
		gateall = 0
		while ((getline line < allowfile) > 0) {
			sub(/#.*/, "", line)
			gsub(/^[ \t]+/, "", line)
			gsub(/[ \t]+$/, "", line)
			if (line != "") allowed[line] = 1
		}
		close(allowfile)
	}
}
NR == FNR { parse($0, old); next }
{
	n = parse($0, cur)
	if (n != "" && (n in old)) {
		delta = (cur[n] - old[n]) / old[n] * 100
		gated = gateall || (n in allowed)
		marker = ""
		if (delta > threshold) {
			if (gated) { marker = "  REGRESSION"; bad++ }
			else { marker = "  regression (ungated)" }
		} else if (delta < -threshold) {
			marker = "  improved"
		}
		if (!gated && marker == "") marker = "  (ungated)"
		printf "%-45s %14.0f -> %14.0f ns/op  %+7.1f%%%s\n", n, old[n], cur[n], delta, marker
		compared++
		if (gated) gatedcount++
	}
}
END {
	if (compared == 0) {
		print "benchdiff: no common benchmarks found" > "/dev/stderr"
		exit 2
	}
	printf "benchdiff: %d benchmarks compared against %s (threshold %s%%, %d gated)\n", compared, base, threshold, gatedcount
	if (bad > 0) {
		printf "benchdiff: %d gated regression(s) beyond %s%%\n", bad, threshold > "/dev/stderr"
		exit 1
	}
}
' "$base" "$new"
