#!/bin/sh
# benchjson.sh: convert `go test -bench -benchmem` output to a JSON array,
# one object per benchmark line, for the BENCH_PR<N>.json perf trajectory.
# Usage: scripts/benchjson.sh bench.out > BENCH_PR2.json
set -eu

awk '
BEGIN { print "["; first = 1 }
/^Benchmark/ {
    name = $1
    sub(/-[0-9]+$/, "", name)  # strip -GOMAXPROCS suffix
    iters = $2
    ns = ""; bytes = ""; allocs = ""; extra = ""
    for (i = 3; i < NF; i++) {
        if ($(i + 1) == "ns/op") ns = $i
        else if ($(i + 1) == "B/op") bytes = $i
        else if ($(i + 1) == "allocs/op") allocs = $i
        else if ($(i + 1) ~ /\/op$/) extra = sprintf("%s, \"%s\": %s", extra, $(i + 1), $i)
    }
    if (!first) print ","
    first = 0
    line = sprintf("  {\"name\": \"%s\", \"iterations\": %s", name, iters)
    if (ns != "") line = line sprintf(", \"ns_per_op\": %s", ns)
    if (bytes != "") line = line sprintf(", \"bytes_per_op\": %s", bytes)
    if (allocs != "") line = line sprintf(", \"allocs_per_op\": %s", allocs)
    line = line extra "}"
    printf "%s", line
}
END { print ""; print "]" }
' "$1"
