module cloudia

go 1.23
