module cloudia

go 1.24
