// Package cloudia's root benchmark file exposes one testing.B target per
// paper figure (BenchmarkFigNN...) plus the ablations and a handful of
// micro-benchmarks for the hot components. Figure benchmarks run the
// experiment once per b.N iteration at Quick scale so `go test -bench=.`
// stays tractable; run `cmd/cloudia-bench -all` for the full-scale figures
// recorded in EXPERIMENTS.md.
package cloudia_test

import (
	"fmt"
	"hash/fnv"
	"math/rand"
	"runtime"
	"slices"
	"sync"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/bench"
	"cloudia/internal/cloud"
	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/netsim"
	"cloudia/internal/par"
	"cloudia/internal/serve"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
	"cloudia/internal/topology"
	"cloudia/internal/wal"
	"cloudia/internal/workload"
)

// benchFigure runs one registered experiment per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Run(id, bench.Options{Seed: 42, Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("%s: empty figure", id)
		}
	}
}

func BenchmarkFig01LatencyCDF(b *testing.B)             { benchFigure(b, "fig01") }
func BenchmarkFig02LatencyStability(b *testing.B)       { benchFigure(b, "fig02") }
func BenchmarkFig04MeasurementError(b *testing.B)       { benchFigure(b, "fig04") }
func BenchmarkFig05MeasurementConvergence(b *testing.B) { benchFigure(b, "fig05") }
func BenchmarkFig06CPClusters(b *testing.B)             { benchFigure(b, "fig06") }
func BenchmarkFig07CPvsMIP(b *testing.B)                { benchFigure(b, "fig07") }
func BenchmarkFig08CPScalability(b *testing.B)          { benchFigure(b, "fig08") }
func BenchmarkFig09LPNDPClusters(b *testing.B)          { benchFigure(b, "fig09") }
func BenchmarkFig10MetricCorrelation(b *testing.B)      { benchFigure(b, "fig10") }
func BenchmarkFig11MetricImprovement(b *testing.B)      { benchFigure(b, "fig11") }
func BenchmarkFig12OverallEffectiveness(b *testing.B)   { benchFigure(b, "fig12") }
func BenchmarkFig13OverAllocation(b *testing.B)         { benchFigure(b, "fig13") }
func BenchmarkFig14LightweightLL(b *testing.B)          { benchFigure(b, "fig14") }
func BenchmarkFig15LightweightLP(b *testing.B)          { benchFigure(b, "fig15") }
func BenchmarkFig16IPDistance(b *testing.B)             { benchFigure(b, "fig16") }
func BenchmarkFig17HopCount(b *testing.B)               { benchFigure(b, "fig17") }
func BenchmarkFig18GCEHeterogeneity(b *testing.B)       { benchFigure(b, "fig18") }
func BenchmarkFig19GCEStability(b *testing.B)           { benchFigure(b, "fig19") }
func BenchmarkFig20RackspaceHeterogeneity(b *testing.B) { benchFigure(b, "fig20") }
func BenchmarkFig21RackspaceStability(b *testing.B)     { benchFigure(b, "fig21") }

func BenchmarkAblationDegreeFilter(b *testing.B) { benchFigure(b, "ablation-degreefilter") }
func BenchmarkAblationContention(b *testing.B)   { benchFigure(b, "ablation-contention") }
func BenchmarkAblationSA(b *testing.B)           { benchFigure(b, "ablation-sa") }
func BenchmarkAblationClusterK(b *testing.B)     { benchFigure(b, "ablation-clusterk") }
func BenchmarkAblationCPWorkers(b *testing.B)    { benchFigure(b, "ablation-cpworkers") }

func BenchmarkExtensionRedeploy(b *testing.B)  { benchFigure(b, "extension-redeploy") }
func BenchmarkExtensionOverlap(b *testing.B)   { benchFigure(b, "extension-overlap") }
func BenchmarkExtensionWeighted(b *testing.B)  { benchFigure(b, "extension-weighted") }
func BenchmarkExtensionCostModel(b *testing.B) { benchFigure(b, "extension-costmodel") }
func BenchmarkExtensionBandwidth(b *testing.B) { benchFigure(b, "extension-bandwidth") }

// --- Component micro-benchmarks ---

func benchProblem(b *testing.B, nodes, instances int) *solver.Problem {
	b.Helper()
	dc, err := topology.New(topology.EC2Profile(), 7)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 8)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(instances)
	if err != nil {
		b.Fatal(err)
	}
	rows := 1
	for r := 1; r*r <= nodes; r++ {
		if nodes/r >= r {
			rows = r
		}
	}
	g, err := core.Mesh2D(rows, nodes/rows)
	if err != nil {
		b.Fatal(err)
	}
	p, err := solver.NewProblem(g, cloud.MeanRTTMatrix(dc, insts), solver.LongestLink)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkLongestLinkEval(b *testing.B) {
	p := benchProblem(b, 90, 100)
	d := core.Identity(90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(d)
	}
}

func BenchmarkLongestPathEval(b *testing.B) {
	g, err := core.AggregationTree(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m := core.NewCostMatrix(45)
	for i := 0; i < 45; i++ {
		for j := 0; j < 45; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestPath)
	if err != nil {
		b.Fatal(err)
	}
	d := core.Identity(g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(d)
	}
}

func BenchmarkGreedyG2(b *testing.B) {
	p := benchProblem(b, 45, 50)
	s := greedy.New(greedy.G2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(p, solver.Budget{Nodes: 1 << 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR1Thousand(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := random.NewR1(1000, int64(i)).Solve(p, solver.Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPPerNodeBudget(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.New(20, int64(i)).Solve(p, solver.Budget{Nodes: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkCPThresholdDescent runs one full CP threshold descent at the
// paper's solver-experiment scale (100 nodes on 150 instances, k=20 cost
// clusters) under a fixed node budget. This is the headline benchmark for the
// persistent descent engine: incremental threshold-graph tightening plus the
// zero-alloc search arena.
func BenchmarkCPThresholdDescent(b *testing.B) {
	p := deltaBenchProblem(b, solver.LongestLink)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.New(20, int64(i)).Solve(p, solver.Budget{Nodes: 50_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIPPerNodeBudget(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mip.New(20, int64(i)).Solve(p, solver.Budget{Nodes: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

// --- Delta-evaluator micro-benchmarks (100 nodes, 150 instances) ---
//
// BenchmarkDeltaEval* measure ns per local-search move evaluation at the
// quick scale: the DeltaEvaluator variants price a swap through incremental
// O(deg) bookkeeping, while the FullRecompute baselines pay the O(E) or
// O(V+E) full cost evaluation the SA inner loop used before. The move
// schedule is pre-generated outside the timed loop so both sides measure
// pure move evaluation. Run with -benchmem: the delta variants must stay at
// 0 allocs/op.

const deltaBenchInstances = 150

// deltaBenchMatrix builds the 150-instance cost matrix shared by the
// evaluator benchmarks.
func deltaBenchMatrix(rng *rand.Rand) *core.CostMatrix {
	m := core.NewCostMatrix(deltaBenchInstances)
	for i := 0; i < deltaBenchInstances; i++ {
		for j := 0; j < deltaBenchInstances; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

// deltaBenchProblem builds the default 100-node LL benchmark problem: a
// sparse random communication graph (spanning path plus 4n random edges,
// the shape of the paper's solver experiments) over 150 instances.
func deltaBenchProblem(b *testing.B, obj solver.Objective) *solver.Problem {
	b.Helper()
	const nodes = 100
	rng := rand.New(rand.NewSource(17))
	g := core.NewGraph(nodes)
	for v := 0; v+1 < nodes; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			b.Fatal(err)
		}
	}
	for k := 0; k < 4*nodes; k++ {
		x, y := rng.Intn(nodes), rng.Intn(nodes)
		if x > y {
			x, y = y, x
		}
		if x != y && !g.HasEdge(x, y) {
			if err := g.AddEdge(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
	p, err := solver.NewProblem(g, deltaBenchMatrix(rng), obj)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// kvstoreBenchProblem is the paper's key-value store workload (Sect.
// 6.1.3): a dense complete-bipartite graph between 30 front-ends and 70
// storage nodes.
func kvstoreBenchProblem(b *testing.B) *solver.Problem {
	b.Helper()
	g, err := core.Bipartite(30, 70)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	p, err := solver.NewProblem(g, deltaBenchMatrix(rng), solver.LongestLink)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// aggregationBenchProblem is the paper's Class-2 aggregation workload: a
// 100-node two-level aggregation tree (Sect. 6.1.2) under the longest-path
// objective.
func aggregationBenchProblem(b *testing.B) *solver.Problem {
	b.Helper()
	g, err := core.TwoLevelAggregation(10, 89)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(17))
	p, err := solver.NewProblem(g, deltaBenchMatrix(rng), solver.LongestPath)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// benchSwapSchedule pre-generates the swap move schedule so the timed loops
// measure move evaluation, not random number generation.
func benchSwapSchedule(n int) [][2]int {
	rng := rand.New(rand.NewSource(23))
	moves := make([][2]int, 8192)
	for i := range moves {
		x := rng.Intn(n)
		y := rng.Intn(n - 1)
		if y >= x {
			y++
		}
		moves[i] = [2]int{x, y}
	}
	return moves
}

// benchDeltaSwap prices b.N swap proposals through the evaluator with the
// local-search acceptance pattern (commit non-worsening moves, reject the
// rest). The explicit GC fence before the timed region keeps background
// collection triggered by the heavy setup (the 150x150 matrix and the
// evaluator's incidence structures) from leaking allocation bytes into the
// tiny measured window — previously BenchmarkDeltaEvalLLKVStoreSwap
// reported ~2.9 KB/op against 0 allocs/op from exactly that.
func benchDeltaSwap(b *testing.B, p *solver.Problem) {
	rng := rand.New(rand.NewSource(29))
	ev := solver.NewDeltaEvaluator(p, solver.RandomDeployment(p, rng))
	moves := benchSwapSchedule(p.NumNodes())
	cur := ev.Cost()
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mv := moves[i%len(moves)]
		if cand := ev.SwapCost(mv[0], mv[1]); cand <= cur {
			cur = cand
			ev.Commit()
		} else {
			ev.Reject()
		}
	}
}

// benchFullSwap is the pre-evaluator baseline: mutate the deployment, fully
// recompute the cost, and swap back on rejection. GC fence as in
// benchDeltaSwap, so the two sides report comparable steady-state numbers.
func benchFullSwap(b *testing.B, p *solver.Problem) {
	rng := rand.New(rand.NewSource(29))
	d := solver.RandomDeployment(p, rng)
	moves := benchSwapSchedule(p.NumNodes())
	cur := p.Cost(d)
	runtime.GC()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		mv := moves[i%len(moves)]
		d[mv[0]], d[mv[1]] = d[mv[1]], d[mv[0]]
		if cand := p.Cost(d); cand <= cur {
			cur = cand
		} else {
			d[mv[0]], d[mv[1]] = d[mv[1]], d[mv[0]]
		}
	}
}

func BenchmarkDeltaEvalLLSwap(b *testing.B) {
	benchDeltaSwap(b, deltaBenchProblem(b, solver.LongestLink))
}

func BenchmarkDeltaEvalLLFullRecompute(b *testing.B) {
	benchFullSwap(b, deltaBenchProblem(b, solver.LongestLink))
}

func BenchmarkDeltaEvalLLKVStoreSwap(b *testing.B) {
	benchDeltaSwap(b, kvstoreBenchProblem(b))
}

func BenchmarkDeltaEvalLLKVStoreFullRecompute(b *testing.B) {
	benchFullSwap(b, kvstoreBenchProblem(b))
}

func BenchmarkDeltaEvalLPSwap(b *testing.B) {
	benchDeltaSwap(b, aggregationBenchProblem(b))
}

func BenchmarkDeltaEvalLPFullRecompute(b *testing.B) {
	benchFullSwap(b, aggregationBenchProblem(b))
}

// BenchmarkDeltaEvalPortfolio runs one full parallel portfolio search under
// a wall-clock budget, exercising the goroutine-per-member runner end to
// end.
func BenchmarkDeltaEvalPortfolio(b *testing.B) {
	p := deltaBenchProblem(b, solver.LongestLink)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf := advisor.NewPortfolio(20, int64(i))
		if _, err := pf.Solve(p, solver.Budget{Time: 50 * time.Millisecond}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans1D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans1D(xs, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// --- 1000-instance tier (Sect. 6.3 scale x ~7) ---
//
// The paper's solver experiments stop at 150 instances; the benchmarks
// below probe the preprocessing and portfolio layers at 1000 instances /
// 500 nodes, the scale the shared Prep cache and the capped-memory k-means
// exist for.

// BenchmarkKMeans1DLarge clusters the ~10^6 off-diagonal values of a
// 1000-instance cost matrix into the paper's k=20. (k-1)*n exceeds the
// choice-matrix cap, so this exercises the SMAWK layer fill with
// Hirschberg O(n)-memory boundary recovery.
func BenchmarkKMeans1DLarge(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 1000*999)
	for i := range xs {
		xs[i] = 0.2 + rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans1D(xs, 20); err != nil {
			b.Fatal(err)
		}
	}
}

// portfolio1000Problem builds the 1000-instance / 500-node LL problem: a
// sparse random communication graph (spanning path plus 4n extra edges,
// the shape of the paper's solver experiments) over a uniform cost matrix.
func portfolio1000Problem(b testing.TB) *solver.Problem {
	b.Helper()
	const nodes = 500
	const instances = 1000
	rng := rand.New(rand.NewSource(17))
	g := core.NewGraph(nodes)
	for v := 0; v+1 < nodes; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			b.Fatal(err)
		}
	}
	for k := 0; k < 4*nodes; k++ {
		x, y := rng.Intn(nodes), rng.Intn(nodes)
		if x > y {
			x, y = y, x
		}
		if x != y && !g.HasEdge(x, y) {
			if err := g.AddEdge(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
	m := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

// BenchmarkPortfolio1000 races the full advisor portfolio on the
// 1000-instance problem under a 2-second wall-clock budget. Every op must
// stay well inside a 10-second ceiling: the first op additionally pays the
// one-time Prep artifacts (k-means over ~10^6 link costs, pair sort,
// cheapest rows), which later ops — like repeated advisor calls on a live
// problem — reuse from the shared cache.
func BenchmarkPortfolio1000(b *testing.B) {
	p := portfolio1000Problem(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pf := advisor.NewPortfolio(20, int64(i))
		res, err := pf.Solve(p, solver.Budget{Time: 2 * time.Second})
		if err != nil {
			b.Fatal(err)
		}
		if res.Elapsed > 10*time.Second {
			// Don't hard-fail: on a loaded shared runner this is an
			// environment hiccup, and the recorded ns/op already exposes it.
			b.Logf("portfolio run exceeded the 10s ceiling: %v", res.Elapsed)
		}
	}
}

// BenchmarkStreamingAdvise measures the streaming pipeline's
// time-to-first-advice on the 1000-instance tier. A producer goroutine
// plays a measurement of the 1000-instance matrix in real time — 8 epochs,
// one every 125 ms, each maturing one eighth of the rows from a noisy
// initial estimate to their final values (the matrix batch measurement
// would deliver only at the end) — while advisor.SolveStream interleaves
// warm-started, coalescing portfolio rounds against the epochs as they
// land. At this scale the dominant solve cost is the first-run Prep
// (k-means + pair sort over ~10^6 link costs, seconds); streaming starts it
// at the first epoch, overlapped with the rest of the measurement, which is
// exactly the "compute Prep at measurement time" item from ROADMAP.
//
// Reported metrics (recorded in BENCH_PR4.json):
//
//   - first-advice-ms/op: wall-clock from measurement start to the first
//     feasible advice.
//   - batch-total-ms/op: measurement window plus a cold batch portfolio
//     solve of the same total budget on the final matrix — the earliest
//     the batch pipeline produces anything. First advice is expected
//     strictly below it; since both sides are live wall-clock timings the
//     comparison is logged rather than asserted (a loaded runner could
//     flip it without a code regression), and the recorded trajectory
//     (BENCH_PR4.json) carries the evidence.
//   - final-cost-ratio/op: streaming's final cost over the batch solve's —
//     what the early advice trades in final quality (~1.0 means nothing).
func BenchmarkStreamingAdvise(b *testing.B) {
	p := portfolio1000Problem(b)
	const (
		instances     = 1000
		epochs        = 8
		epochPeriodMS = 125
		roundBudget   = 45 * time.Millisecond
	)
	measurementMS := float64(epochs * epochPeriodMS)

	// The initial estimate: final values perturbed by deterministic
	// multiplicative noise, refined row-window by row-window per epoch.
	noisy := func(i, j int) float64 {
		h := uint64(i*instances+j) * 0x9e3779b97f4a7c15
		h ^= h >> 33
		return p.Costs.At(i, j) * (0.7 + 0.6*float64(h%1024)/1024)
	}

	var firstMS, batchMS, ratioSum float64
	for it := 0; it < b.N; it++ {
		ch := make(chan measure.Epoch, epochs)
		go func() {
			defer close(ch)
			mm := core.NewMutableCostMatrix(instances)
			for i := 0; i < instances; i++ {
				for j := 0; j < instances; j++ {
					if i != j {
						mm.Set(i, j, noisy(i, j))
					}
				}
			}
			for e := 1; e <= epochs; e++ {
				// Rows [lo, hi) mature to their final values this epoch.
				lo, hi := (e-1)*instances/epochs, e*instances/epochs
				for i := lo; i < hi; i++ {
					for j := 0; j < instances; j++ {
						if i != j {
							mm.Set(i, j, p.Costs.At(i, j))
						}
					}
				}
				m, changed := mm.Snapshot()
				ch <- measure.Epoch{
					Index: e, AtMS: float64(e * epochPeriodMS),
					Final: e == epochs, Matrix: m, ChangedRows: changed,
				}
				if e < epochs {
					time.Sleep(epochPeriodMS * time.Millisecond)
				}
			}
		}()

		out, err := advisor.SolveStream(ch, advisor.StreamSolveConfig{
			Graph:         p.Graph,
			ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			RoundBudget:   solver.Budget{Time: roundBudget},
			Seed:          int64(it),
			Coalesce:      true,
		})
		if err != nil {
			b.Fatal(err)
		}
		first := float64(out.FirstAdvice) / float64(time.Millisecond)
		firstMS += first

		// Batch comparator: a fresh problem over the final matrix (cold
		// Prep, as batch advising would pay after its measurement barrier)
		// solved with the same total budget.
		bp, err := solver.NewProblem(p.Graph, out.Problem.Costs, solver.LongestLink)
		if err != nil {
			b.Fatal(err)
		}
		batchStart := time.Now()
		batch, err := advisor.NewPortfolio(20, int64(it)).Solve(bp, solver.Budget{Time: epochs * roundBudget})
		if err != nil {
			b.Fatal(err)
		}
		batchTotal := measurementMS + float64(time.Since(batchStart))/float64(time.Millisecond)
		batchMS += batchTotal
		if first >= batchTotal {
			// Don't hard-fail: both sides are live wall-clock timings, so a
			// loaded shared runner can flip the comparison without any code
			// regression (cf. BenchmarkPortfolio1000); the recorded metrics
			// expose it.
			b.Logf("first advice after %.1f ms, not below the %.1f ms batch pipeline", first, batchTotal)
		}
		ratioSum += out.Cost / bp.Cost(batch.Deployment)
	}
	b.ReportMetric(firstMS/float64(b.N), "first-advice-ms/op")
	b.ReportMetric(batchMS/float64(b.N), "batch-total-ms/op")
	b.ReportMetric(ratioSum/float64(b.N), "final-cost-ratio/op")
}

// BenchmarkStreamingP99Advise measures the tail-latency streaming pipeline
// on the 1000-instance tier: the same epoch cadence as
// BenchmarkStreamingAdvise, but each epoch also publishes a p99 tail
// matrix (as measure.Stream does from its per-link quantile sketches) and
// the advisor optimizes that percentile matrix, tie-breaking on the mean.
// The tail rides the mean's changed-row sets, so Evolve still patches only
// the matured rows per epoch; the benchmark records how much the second
// matrix (tie-break re-rounding plus tail fingerprint bookkeeping) costs
// over mean-only streaming.
//
// Reported metrics (recorded in BENCH_PR9.json):
//
//   - first-advice-ms/op: wall-clock from measurement start to the first
//     feasible p99-optimal advice.
//   - rounds/op: epochs consumed (no coalescing here: the producer does
//     not sleep, so all 8 epochs are solved back to back).
func BenchmarkStreamingP99Advise(b *testing.B) {
	p := portfolio1000Problem(b)
	const (
		instances   = 1000
		epochs      = 8
		roundBudget = 45 * time.Millisecond
	)

	// Deterministic per-link noise for the initial estimate, and a
	// deterministic tail spread: the "true" p99 sits 10-60% above the mean,
	// varying by link, so the percentile matrix orders links differently
	// from the mean matrix and the p99 optimum is a genuinely different
	// problem.
	hash := func(i, j int) float64 {
		h := uint64(i*instances+j) * 0x9e3779b97f4a7c15
		h ^= h >> 33
		return float64(h%1024) / 1024
	}
	tailOf := func(i, j, final float64) float64 { return final * (1.1 + 0.5*hash(int(i), int(j))) }

	var firstMS, rounds float64
	for it := 0; it < b.N; it++ {
		ch := make(chan measure.Epoch, epochs)
		go func() {
			defer close(ch)
			mm := core.NewMutableCostMatrix(instances)
			tm := core.NewMutableCostMatrix(instances)
			for i := 0; i < instances; i++ {
				for j := 0; j < instances; j++ {
					if i != j {
						noisy := p.Costs.At(i, j) * (0.7 + 0.6*hash(i, j))
						mm.Set(i, j, noisy)
						tm.Set(i, j, tailOf(float64(i), float64(j), noisy))
					}
				}
			}
			for e := 1; e <= epochs; e++ {
				lo, hi := (e-1)*instances/epochs, e*instances/epochs
				for i := lo; i < hi; i++ {
					for j := 0; j < instances; j++ {
						if i != j {
							final := p.Costs.At(i, j)
							mm.Set(i, j, final)
							tm.Set(i, j, tailOf(float64(i), float64(j), final))
						}
					}
				}
				ep := measure.PublishEpoch(mm, float64(e), e == epochs, 0)
				ep.Tails = []measure.TailMatrix{measure.PublishTail(tm, 99)}
				ch <- ep
			}
		}()

		out, err := advisor.SolveStream(ch, advisor.StreamSolveConfig{
			Graph:         p.Graph,
			ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink, Metric: advisor.MetricP99},
			RoundBudget:   solver.Budget{Time: roundBudget},
			Seed:          int64(it),
		})
		if err != nil {
			b.Fatal(err)
		}
		firstMS += float64(out.FirstAdvice) / float64(time.Millisecond)
		rounds += float64(len(out.Rounds))
	}
	b.ReportMetric(firstMS/float64(b.N), "first-advice-ms/op")
	b.ReportMetric(rounds/float64(b.N), "rounds/op")
}

// BenchmarkShardedServe measures what the serving layer's content-addressed
// Prep cache buys a fleet: N tenants advising over one shared 1000-instance
// matrix (the fleet-re-advising scenario — one published measurement, many
// problems), served by the sharded server versus each tenant running the
// unsharded streaming path sequentially. The solver is node-budgeted CP, so
// both sides are deterministic and the served deployments must be bit-equal
// to the unsharded ones — the speedup comes only from sharing the one-time
// Prep artifacts (k-means over ~10^6 link costs + the pair sort) across the
// fleet and from shard parallelism, never from answering differently.
//
// Reported metrics (recorded in BENCH_PR5.json):
//
//   - sequential-ms/op: N unsharded SolveStream calls, run back to back,
//     each paying its own cold Prep.
//   - sharded-ms/op: the same N jobs through serve.Server with a shared
//     cache (makespan from first Submit to last Wait).
//   - speedup/op: sequential over sharded; the Prep cache hits make this
//     >= 2x (acceptance bar), typically ~3-4x at 4 tenants.
func BenchmarkShardedServe(b *testing.B) {
	p := portfolio1000Problem(b)
	const tenants = 4
	budget := solver.Budget{Nodes: 30_000}
	singleEpoch := func() <-chan measure.Epoch {
		ch := make(chan measure.Epoch, 1)
		ch <- measure.Epoch{Index: 1, Final: true, Matrix: p.Costs}
		close(ch)
		return ch
	}

	var seqMS, shardMS, speedup float64
	for it := 0; it < b.N; it++ {
		// Unsharded comparator: sequential per-tenant streaming solves.
		seqDeps := make([]core.Deployment, tenants)
		seqStart := time.Now()
		for tn := 0; tn < tenants; tn++ {
			out, err := advisor.SolveStream(singleEpoch(), advisor.StreamSolveConfig{
				Graph:         p.Graph,
				ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
				SolverName:    "cp",
				RoundBudget:   budget,
				Seed:          int64(1000*it + tn),
			})
			if err != nil {
				b.Fatal(err)
			}
			seqDeps[tn] = out.Deployment
		}
		seq := float64(time.Since(seqStart)) / float64(time.Millisecond)

		// Sharded: same jobs, shared cache, makespan over the fleet.
		srv := serve.New(serve.Config{Shards: tenants})
		shardStart := time.Now()
		tickets := make([]*serve.Ticket, tenants)
		for tn := 0; tn < tenants; tn++ {
			var err error
			tickets[tn], err = srv.Submit(serve.Job{
				Tenant:        fmt.Sprintf("tenant-%d", tn),
				Graph:         p.Graph,
				ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
				Epochs:        singleEpoch(),
				SolverName:    "cp",
				RoundBudget:   budget,
				Seed:          int64(1000*it + tn),
			})
			if err != nil {
				b.Fatal(err)
			}
		}
		hits := 0
		for tn := 0; tn < tenants; tn++ {
			res := tickets[tn].Wait()
			if res.Err != nil {
				b.Fatal(res.Err)
			}
			hits += res.CacheHits
			if !slices.Equal(res.Outcome.Deployment, seqDeps[tn]) {
				b.Fatalf("tenant %d: served deployment differs from the unsharded path", tn)
			}
		}
		shard := float64(time.Since(shardStart)) / float64(time.Millisecond)
		srv.Close()
		if hits != tenants-1 {
			b.Fatalf("cross-tenant cache hits = %d, want %d (single-flight compute, rest adopt)", hits, tenants-1)
		}
		seqMS += seq
		shardMS += shard
		speedup += seq / shard
	}
	b.ReportMetric(seqMS/float64(b.N), "sequential-ms/op")
	b.ReportMetric(shardMS/float64(b.N), "sharded-ms/op")
	b.ReportMetric(speedup/float64(b.N), "speedup/op")
}

// skewedTenants returns one hot tenant name plus `lights` light tenant
// names that all hash to shard 0 of a `shards`-wide server (the hash is
// Server.shardFor's: fnv32a over tenant NUL datacenter). This is the
// adversarial skew static sharding cannot rebalance: every tenant homes to
// the same worker while the others sit idle.
func skewedTenants(b *testing.B, shards, lights int) (hot string, light []string) {
	b.Helper()
	home := func(tenant string) int {
		h := fnv.New32a()
		h.Write([]byte(tenant))
		h.Write([]byte{0}) // empty datacenter
		return int(h.Sum32() % uint32(shards))
	}
	for i := 0; hot == ""; i++ {
		if name := fmt.Sprintf("hot-%d", i); home(name) == 0 {
			hot = name
		}
	}
	for i := 0; len(light) < lights; i++ {
		if name := fmt.Sprintf("light-%d", i); home(name) == 0 {
			light = append(light, name)
		}
	}
	return hot, light
}

// BenchmarkSkewedServe is the work-stealing ablation: one hot tenant with a
// four-job backlog plus three light tenants, every tenant hash-homed to
// shard 0 of a two-shard server. Each job consumes a live two-epoch
// measurement stream — an initial matrix, then a dispatch-paced gap (the
// stream is unbuffered, so the producer's clock starts when the worker
// pulls), then a final epoch with a handful of re-measured rows riding the
// pair-list delta — so a job spends part of its life blocked on
// measurement, not CPU. With stealing disabled (the push-era static
// routing) shard 1's worker idles while shard 0 serializes every job's
// epoch wait; with stealing the idle worker pulls the most-starved ready
// tenant across shards and fills those waits with other tenants' solves.
// Jobs are node-budgeted CP, so the two configurations must produce
// bit-equal deployments — stealing may only move work, never change it.
//
// The light tenants are submitted first, so the earliest tenant completion
// (the spread's denominator) is the same single light job dispatched first
// under either configuration; what stealing changes is how late the hot
// backlog — and the fleet — finishes.
//
// Reported metrics (recorded in BENCH_PR6.json):
//
//   - static-ms/op / stealing-ms/op: fleet makespan (first Submit to last
//     Wait) under each configuration.
//   - steal-speedup/op: static over stealing. The win is the overlapped
//     epoch waits (it survives even a single-CPU runner, where shard
//     parallelism alone buys nothing).
//   - static-spread/op / stealing-spread/op: max/min per-tenant completion
//     time. Stealing drains the hot backlog while the lights' epoch waits
//     tick, pulling the max down against the anchored min.
//
// Both comparisons are live wall-clock timings, so they are logged rather
// than asserted (cf. BenchmarkStreamingAdvise); bit-equality and the
// steal counters are asserted.
func BenchmarkSkewedServe(b *testing.B) {
	// A mid-size problem (each serialized stream replay re-pays its own
	// Prep after Supersede retires the prior epoch's artifacts, so this
	// tier keeps the per-job solve cost comparable to the epoch gap).
	const (
		nodes     = 150
		instances = 300
		shards    = 2
		lights    = 3
		hotJobs   = 4
		epochGap  = 300 * time.Millisecond
	)
	rng := rand.New(rand.NewSource(43))
	g := core.NewGraph(nodes)
	for v := 0; v+1 < nodes; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			b.Fatal(err)
		}
	}
	for k := 0; k < 4*nodes; k++ {
		x, y := rng.Intn(nodes), rng.Intn(nodes)
		if x > y {
			x, y = y, x
		}
		if x != y && !g.HasEdge(x, y) {
			if err := g.AddEdge(x, y); err != nil {
				b.Fatal(err)
			}
		}
	}
	mm := core.NewMutableCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				mm.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	first, _ := mm.Snapshot()
	// The final epoch: 8 rows re-measured, so the second round rides the
	// incremental Prep evolution instead of a fresh sort.
	for r := 0; r < 8; r++ {
		row := (r * 113) % instances
		for j := 0; j < instances; j++ {
			if row != j {
				mm.Set(row, j, 0.2+rng.Float64())
			}
		}
	}
	final, changedRows := mm.Snapshot()

	budget := solver.Budget{Nodes: 30_000}
	hot, light := skewedTenants(b, shards, lights)
	stream := func() <-chan measure.Epoch {
		ch := make(chan measure.Epoch) // unbuffered: paced by the consumer
		go func() {
			defer close(ch)
			ch <- measure.Epoch{Index: 1, Matrix: first}
			time.Sleep(epochGap)
			ch <- measure.Epoch{Index: 2, Final: true, Matrix: final, ChangedRows: changedRows}
		}()
		return ch
	}
	type submission struct {
		tenant string
		seed   int64
	}
	jobs := make([]submission, 0, hotJobs+lights)
	for i, l := range light {
		jobs = append(jobs, submission{l, int64(100 + i)})
	}
	for i := 0; i < hotJobs; i++ {
		jobs = append(jobs, submission{hot, int64(i)})
	}

	// run submits the whole fleet up front and records, per job, the
	// wall-clock from fleet start to that job's completion; a tenant's
	// completion time is its slowest job's.
	run := func(it int, static bool) (ms, spread float64, deps []core.Deployment, steals int64) {
		srv := serve.New(serve.Config{Shards: shards, DisableStealing: static})
		defer srv.Close()
		deps = make([]core.Deployment, len(jobs))
		errs := make([]error, len(jobs))
		done := make([]time.Duration, len(jobs))
		var wg sync.WaitGroup
		start := time.Now()
		for idx, j := range jobs {
			tk, err := srv.Submit(serve.Job{
				Tenant:        j.tenant,
				Graph:         g,
				ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
				Epochs:        stream(),
				SolverName:    "cp",
				RoundBudget:   budget,
				Seed:          int64(1000*it) + j.seed,
			})
			if err != nil {
				b.Fatal(err)
			}
			wg.Add(1)
			go func(idx int, tk *serve.Ticket) {
				defer wg.Done()
				res := tk.Wait()
				done[idx] = time.Since(start)
				errs[idx] = res.Err
				deps[idx] = res.Outcome.Deployment
			}(idx, tk)
		}
		wg.Wait()
		ms = float64(time.Since(start)) / float64(time.Millisecond)
		for _, err := range errs {
			if err != nil {
				b.Fatal(err)
			}
		}
		completion := map[string]time.Duration{}
		for idx, j := range jobs {
			if done[idx] > completion[j.tenant] {
				completion[j.tenant] = done[idx]
			}
		}
		minC, maxC := time.Duration(0), time.Duration(0)
		for _, c := range completion {
			if minC == 0 || c < minC {
				minC = c
			}
			if c > maxC {
				maxC = c
			}
		}
		spread = float64(maxC) / float64(minC)
		return ms, spread, deps, srv.Stats().Steals
	}

	var staticMS, stealMS, speedup, staticSpread, stealSpread float64
	for it := 0; it < b.N; it++ {
		sMS, sSpread, sDeps, sSteals := run(it, true)
		if sSteals != 0 {
			b.Fatalf("static configuration recorded %d steals, want 0", sSteals)
		}
		wMS, wSpread, wDeps, wSteals := run(it, false)
		if wSteals == 0 {
			b.Fatal("stealing configuration recorded no steals on a skewed fleet")
		}
		for i := range jobs {
			if !slices.Equal(sDeps[i], wDeps[i]) {
				b.Fatalf("job %d (%s): stealing changed the deployment", i, jobs[i].tenant)
			}
		}
		if wMS >= sMS {
			b.Logf("stealing makespan %.1f ms not below static %.1f ms", wMS, sMS)
		}
		staticMS += sMS
		stealMS += wMS
		speedup += sMS / wMS
		staticSpread += sSpread
		stealSpread += wSpread
	}
	b.ReportMetric(staticMS/float64(b.N), "static-ms/op")
	b.ReportMetric(stealMS/float64(b.N), "stealing-ms/op")
	b.ReportMetric(speedup/float64(b.N), "steal-speedup/op")
	b.ReportMetric(staticSpread/float64(b.N), "static-spread/op")
	b.ReportMetric(stealSpread/float64(b.N), "stealing-spread/op")
}

// patchBench1000 builds the pair-delta workload at the 1000-instance tier:
// a uniform cost matrix, its sorted pair list, and a successor epoch where
// 8 of the 1000 rows changed.
func patchBench1000(b *testing.B) (m1 *core.CostMatrix, pairs0 []core.CostPair, rows []int) {
	b.Helper()
	const instances = 1000
	const changedRows = 8
	rng := rand.New(rand.NewSource(29))
	m0 := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				m0.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	pairs0 = m0.SortedPairs()
	m1 = m0.Clone()
	for r := 0; r < changedRows; r++ {
		row := (r * 113) % instances
		rows = append(rows, row)
		for j := 0; j < instances; j++ {
			if row != j {
				m1.Set(row, j, 0.2+rng.Float64())
			}
		}
	}
	return m1, pairs0, rows
}

// BenchmarkPatchSortedPairs measures the fused pair-list delta (changed
// rows rebuilt as sorted runs, merged into the previous list in one pass)
// on the 1000-instance tier with 8 changed rows — the per-epoch cost the
// streaming pipeline pays to keep Prep's pair list current.
// BenchmarkSortedPairsRebuild below is the same epoch advanced by a full
// re-sort; the pair of numbers in BENCH_PR6.json is the before/after of the
// delta path.
func BenchmarkPatchSortedPairs(b *testing.B) {
	m1, pairs0, rows := patchBench1000(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := cluster.PatchSortedPairs(m1, pairs0, rows)
		if len(out) != len(pairs0) {
			b.Fatalf("patched list has %d pairs, want %d", len(out), len(pairs0))
		}
	}
}

// BenchmarkSortedPairsRebuild is the comparator for
// BenchmarkPatchSortedPairs: advancing the pair list to the 8-changed-rows
// epoch by re-sorting all ~10^6 pairs from scratch.
func BenchmarkSortedPairsRebuild(b *testing.B) {
	m1, pairs0, _ := patchBench1000(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := m1.SortedPairs()
		if len(out) != len(pairs0) {
			b.Fatalf("rebuilt list has %d pairs, want %d", len(out), len(pairs0))
		}
	}
}

func BenchmarkNetsimMessages(b *testing.B) {
	lat := func(src, dst int, now netsim.Time, rng *rand.Rand) float64 { return 0.2 }
	sim, err := netsim.New(64, lat, 1, netsim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Send(i%64, (i+7)%64, 1024, nil)
		if i%4096 == 4095 {
			sim.Run()
		}
	}
	sim.Run()
}

func BenchmarkStagedMeasurement(b *testing.B) {
	dc, err := topology.New(topology.EC2Profile(), 5)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 6)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(dc, insts, measure.Options{
			Scheme: measure.Staged, DurationMS: 200, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBehavioralSimTick(b *testing.B) {
	dc, err := topology.New(topology.EC2Profile(), 9)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 10)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(16)
	if err != nil {
		b.Fatal(err)
	}
	w := &workload.BehavioralSim{Rows: 4, Cols: 4, Ticks: 10}
	d := core.Identity(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(dc, insts, d, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkColdPrep1000 measures the data-parallel cold path on the
// 1000-instance tier: the full Prep artifact set a cp-family tenant needs —
// the k=20 rounded matrix with its sorted pair list (k-means over ~10^6
// link costs plus the run-merge pair sort), the cheapest-rows table, and
// the off-diagonal extraction — built from scratch once with a single
// worker and once with the default worker pool. Both builds are bit-equal
// by construction (the parallel-equality suites pin it); the benchmark
// records how much wall-clock the worker pool buys.
//
// Reported metrics (recorded in BENCH_PR8.json):
//
//   - sequential-ms/op: cold build with par.SetWorkers(1).
//   - parallel-ms/op: cold build at the default GOMAXPROCS workers.
//   - speedup/op: sequential over parallel; ~1x on single-core runners,
//     >= 2x expected at 4+ cores.
func BenchmarkColdPrep1000(b *testing.B) {
	p := portfolio1000Problem(b)
	buildAll := func() {
		np, err := solver.NewProblem(p.Graph, p.Costs.Clone(), solver.LongestLink)
		if err != nil {
			b.Fatal(err)
		}
		prep := np.Prep()
		var roundedErr error
		par.Do(
			func() { _, _, roundedErr = prep.Rounded(20) },
			func() { prep.CheapestRows() },
			func() { prep.OffDiagonal() },
		)
		if roundedErr != nil {
			b.Fatal(roundedErr)
		}
	}
	defer par.SetWorkers(0)
	buildAll() // untimed warmup: allocator and page-cache first-touch
	var seqMS, parMS, speedup float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		par.SetWorkers(1)
		runtime.GC() // each side starts from a collected heap
		t0 := time.Now()
		buildAll()
		seq := float64(time.Since(t0)) / float64(time.Millisecond)

		par.SetWorkers(0)
		runtime.GC()
		t1 := time.Now()
		buildAll()
		parl := float64(time.Since(t1)) / float64(time.Millisecond)

		seqMS += seq
		parMS += parl
		speedup += seq / parl
	}
	b.ReportMetric(seqMS/float64(b.N), "sequential-ms/op")
	b.ReportMetric(parMS/float64(b.N), "parallel-ms/op")
	b.ReportMetric(speedup/float64(b.N), "speedup/op")
}

// BenchmarkDaemonRestart measures concurrent multi-tenant WAL recovery: an
// 8-tenant daemon (300x300 matrices, one full epoch, one advice, one row
// delta each) is repeatedly reopened from the same on-disk logs, once with
// a single replay worker and once with the default pool. Recovery replays
// every log, verifies per-epoch fingerprints, and re-seeds the artifact
// cache (the k=20 rounding dominates); parallel replay overlaps the
// per-tenant work while keeping recovered state bit-equal (pinned by
// TestDaemonParallelReplayBitEqual).
//
// Reported metrics (recorded in BENCH_PR8.json):
//
//   - sequential-ms/op: restart with par.SetWorkers(1).
//   - parallel-ms/op: restart at the default GOMAXPROCS workers.
//   - speedup/op: sequential over parallel; ~1x on single-core runners,
//     >= 3x expected at 4+ cores with 8 tenants.
func BenchmarkDaemonRestart(b *testing.B) {
	const tenants, instances = 8, 300
	g := core.NewGraph(40)
	for v := 0; v+1 < 40; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			b.Fatal(err)
		}
	}
	dir := b.TempDir()
	d, err := serve.OpenDaemon(serve.DaemonConfig{Dir: dir, Serve: serve.Config{Shards: 1}})
	if err != nil {
		b.Fatal(err)
	}
	for tn := 0; tn < tenants; tn++ {
		rng := rand.New(rand.NewSource(int64(500 + tn)))
		m := core.NewCostMatrix(instances)
		for i := 0; i < instances; i++ {
			for j := 0; j < instances; j++ {
				if i != j {
					m.Set(i, j, 0.2+rng.Float64())
				}
			}
		}
		rows := make([]wal.RowDelta, instances)
		for i := range rows {
			rows[i] = wal.RowDelta{Row: i, Values: append([]float64(nil), m.Row(i)...)}
		}
		name := fmt.Sprintf("tenant-%d", tn)
		if _, _, err := d.AppendEpoch(name, instances, rows, nil); err != nil {
			b.Fatal(err)
		}
		res, err := d.Advise(serve.AdviseRequest{
			Tenant: name, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			SolverName: "cp", ClusterK: 20,
			RoundBudget: solver.Budget{Nodes: 2000}, Seed: int64(tn),
		})
		if err != nil {
			b.Fatal(err)
		}
		if res.Err != nil {
			b.Fatal(res.Err)
		}
		delta := append([]float64(nil), m.Row(tn)...)
		for j := range delta {
			if j != tn {
				delta[j] *= 1.25
			}
		}
		if _, _, err := d.AppendEpoch(name, instances, []wal.RowDelta{{Row: tn, Values: delta}}, nil); err != nil {
			b.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		b.Fatal(err)
	}

	// Recovery appends nothing, so the same directory replays identically
	// on every reopen.
	reopen := func() {
		rd, err := serve.OpenDaemon(serve.DaemonConfig{Dir: dir, Serve: serve.Config{Shards: 1}})
		if err != nil {
			b.Fatal(err)
		}
		if got := len(rd.Stats().Tenants); got != tenants {
			b.Fatalf("recovered %d tenants, want %d", got, tenants)
		}
		if err := rd.Close(); err != nil {
			b.Fatal(err)
		}
	}
	defer par.SetWorkers(0)
	reopen() // untimed warmup: allocator and page-cache first-touch
	var seqMS, parMS, speedup float64
	b.ResetTimer()
	for it := 0; it < b.N; it++ {
		par.SetWorkers(1)
		runtime.GC() // each side starts from a collected heap
		t0 := time.Now()
		reopen()
		seq := float64(time.Since(t0)) / float64(time.Millisecond)

		par.SetWorkers(0)
		runtime.GC()
		t1 := time.Now()
		reopen()
		parl := float64(time.Since(t1)) / float64(time.Millisecond)

		seqMS += seq
		parMS += parl
		speedup += seq / parl
	}
	b.ReportMetric(seqMS/float64(b.N), "sequential-ms/op")
	b.ReportMetric(parMS/float64(b.N), "parallel-ms/op")
	b.ReportMetric(speedup/float64(b.N), "speedup/op")
}
