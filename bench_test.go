// Package cloudia's root benchmark file exposes one testing.B target per
// paper figure (BenchmarkFigNN...) plus the ablations and a handful of
// micro-benchmarks for the hot components. Figure benchmarks run the
// experiment once per b.N iteration at Quick scale so `go test -bench=.`
// stays tractable; run `cmd/cloudia-bench -all` for the full-scale figures
// recorded in EXPERIMENTS.md.
package cloudia_test

import (
	"math/rand"
	"testing"

	"cloudia/internal/bench"
	"cloudia/internal/cloud"
	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/netsim"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
	"cloudia/internal/topology"
	"cloudia/internal/workload"
)

// benchFigure runs one registered experiment per iteration.
func benchFigure(b *testing.B, id string) {
	b.Helper()
	for i := 0; i < b.N; i++ {
		fig, err := bench.Run(id, bench.Options{Seed: 42, Quick: true})
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("%s: empty figure", id)
		}
	}
}

func BenchmarkFig01LatencyCDF(b *testing.B)             { benchFigure(b, "fig01") }
func BenchmarkFig02LatencyStability(b *testing.B)       { benchFigure(b, "fig02") }
func BenchmarkFig04MeasurementError(b *testing.B)       { benchFigure(b, "fig04") }
func BenchmarkFig05MeasurementConvergence(b *testing.B) { benchFigure(b, "fig05") }
func BenchmarkFig06CPClusters(b *testing.B)             { benchFigure(b, "fig06") }
func BenchmarkFig07CPvsMIP(b *testing.B)                { benchFigure(b, "fig07") }
func BenchmarkFig08CPScalability(b *testing.B)          { benchFigure(b, "fig08") }
func BenchmarkFig09LPNDPClusters(b *testing.B)          { benchFigure(b, "fig09") }
func BenchmarkFig10MetricCorrelation(b *testing.B)      { benchFigure(b, "fig10") }
func BenchmarkFig11MetricImprovement(b *testing.B)      { benchFigure(b, "fig11") }
func BenchmarkFig12OverallEffectiveness(b *testing.B)   { benchFigure(b, "fig12") }
func BenchmarkFig13OverAllocation(b *testing.B)         { benchFigure(b, "fig13") }
func BenchmarkFig14LightweightLL(b *testing.B)          { benchFigure(b, "fig14") }
func BenchmarkFig15LightweightLP(b *testing.B)          { benchFigure(b, "fig15") }
func BenchmarkFig16IPDistance(b *testing.B)             { benchFigure(b, "fig16") }
func BenchmarkFig17HopCount(b *testing.B)               { benchFigure(b, "fig17") }
func BenchmarkFig18GCEHeterogeneity(b *testing.B)       { benchFigure(b, "fig18") }
func BenchmarkFig19GCEStability(b *testing.B)           { benchFigure(b, "fig19") }
func BenchmarkFig20RackspaceHeterogeneity(b *testing.B) { benchFigure(b, "fig20") }
func BenchmarkFig21RackspaceStability(b *testing.B)     { benchFigure(b, "fig21") }

func BenchmarkAblationDegreeFilter(b *testing.B) { benchFigure(b, "ablation-degreefilter") }
func BenchmarkAblationContention(b *testing.B)   { benchFigure(b, "ablation-contention") }
func BenchmarkAblationSA(b *testing.B)           { benchFigure(b, "ablation-sa") }
func BenchmarkAblationClusterK(b *testing.B)     { benchFigure(b, "ablation-clusterk") }

func BenchmarkExtensionRedeploy(b *testing.B)  { benchFigure(b, "extension-redeploy") }
func BenchmarkExtensionOverlap(b *testing.B)   { benchFigure(b, "extension-overlap") }
func BenchmarkExtensionWeighted(b *testing.B)  { benchFigure(b, "extension-weighted") }
func BenchmarkExtensionCostModel(b *testing.B) { benchFigure(b, "extension-costmodel") }
func BenchmarkExtensionBandwidth(b *testing.B) { benchFigure(b, "extension-bandwidth") }

// --- Component micro-benchmarks ---

func benchProblem(b *testing.B, nodes, instances int) *solver.Problem {
	b.Helper()
	dc, err := topology.New(topology.EC2Profile(), 7)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 8)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(instances)
	if err != nil {
		b.Fatal(err)
	}
	rows := 1
	for r := 1; r*r <= nodes; r++ {
		if nodes/r >= r {
			rows = r
		}
	}
	g, err := core.Mesh2D(rows, nodes/rows)
	if err != nil {
		b.Fatal(err)
	}
	p, err := solver.NewProblem(g, cloud.MeanRTTMatrix(dc, insts), solver.LongestLink)
	if err != nil {
		b.Fatal(err)
	}
	return p
}

func BenchmarkLongestLinkEval(b *testing.B) {
	p := benchProblem(b, 90, 100)
	d := core.Identity(90)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(d)
	}
}

func BenchmarkLongestPathEval(b *testing.B) {
	g, err := core.AggregationTree(3, 3)
	if err != nil {
		b.Fatal(err)
	}
	rng := rand.New(rand.NewSource(1))
	m := core.NewCostMatrix(45)
	for i := 0; i < 45; i++ {
		for j := 0; j < 45; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestPath)
	if err != nil {
		b.Fatal(err)
	}
	d := core.Identity(g.NumNodes())
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = p.Cost(d)
	}
}

func BenchmarkGreedyG2(b *testing.B) {
	p := benchProblem(b, 45, 50)
	s := greedy.New(greedy.G2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := s.Solve(p, solver.Budget{Nodes: 1 << 30}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkR1Thousand(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := random.NewR1(1000, int64(i)).Solve(p, solver.Budget{}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCPPerNodeBudget(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cp.New(20, int64(i)).Solve(p, solver.Budget{Nodes: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkMIPPerNodeBudget(b *testing.B) {
	p := benchProblem(b, 45, 50)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := mip.New(20, int64(i)).Solve(p, solver.Budget{Nodes: 20_000}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkKMeans1D(b *testing.B) {
	rng := rand.New(rand.NewSource(3))
	xs := make([]float64, 5000)
	for i := range xs {
		xs[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cluster.KMeans1D(xs, 20); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkNetsimMessages(b *testing.B) {
	lat := func(src, dst int, now netsim.Time, rng *rand.Rand) float64 { return 0.2 }
	sim, err := netsim.New(64, lat, 1, netsim.Config{})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sim.Send(i%64, (i+7)%64, 1024, nil)
		if i%4096 == 4095 {
			sim.Run()
		}
	}
	sim.Run()
}

func BenchmarkStagedMeasurement(b *testing.B) {
	dc, err := topology.New(topology.EC2Profile(), 5)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 6)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(20)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := measure.Run(dc, insts, measure.Options{
			Scheme: measure.Staged, DurationMS: 200, Seed: int64(i),
		}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkBehavioralSimTick(b *testing.B) {
	dc, err := topology.New(topology.EC2Profile(), 9)
	if err != nil {
		b.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.6, 10)
	if err != nil {
		b.Fatal(err)
	}
	insts, err := prov.RunInstances(16)
	if err != nil {
		b.Fatal(err)
	}
	w := &workload.BehavioralSim{Rows: 4, Cols: 4, Ticks: 10}
	d := core.Identity(16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := w.Run(dc, insts, d, int64(i)); err != nil {
			b.Fatal(err)
		}
	}
}
