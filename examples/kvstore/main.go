// Key-value store example (Sect. 6.1.3): front-end servers query random
// subsets of storage nodes over a complete bipartite communication graph.
// Neither longest link nor longest path matches the mean-response-time
// objective exactly; following the paper, the example optimizes longest link
// as a proxy and still obtains a solid reduction in mean response time
// (the paper reports 15-31% for this workload).
//
// Run with: go run ./examples/kvstore
package main

import (
	"fmt"
	"log"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/random"
	"cloudia/internal/topology"
	"cloudia/internal/workload"
)

func main() {
	const seed = 23

	store := &workload.KVStore{
		Frontends: 6, Storage: 24, Queries: 400, TouchK: 6,
	}
	graph, err := store.Graph()
	if err != nil {
		log.Fatal(err)
	}
	nodes := graph.NumNodes()

	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	instances, err := provider.RunInstances(nodes + nodes/10)
	if err != nil {
		log.Fatal(err)
	}

	meas, err := measure.Run(dc, instances, measure.Options{
		Scheme:     measure.Staged,
		DurationMS: 20 * float64(len(instances)),
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}

	problem, err := solver.NewProblem(graph, meas.MeanMatrix(), solver.LongestLink)
	if err != nil {
		log.Fatal(err)
	}

	// Compare two search techniques on the same problem: CP (systematic)
	// and R2 (parallel random sampling), with the same wall-clock style
	// budget expressed in search nodes.
	budget := solver.Budget{Nodes: 1_000_000}
	cpRes, err := cp.New(20, seed).Solve(problem, budget)
	if err != nil {
		log.Fatal(err)
	}
	r2Res, err := random.NewR2(seed).Solve(problem, budget)
	if err != nil {
		log.Fatal(err)
	}

	defaultResp, err := store.Run(dc, instances, core.Identity(nodes), seed+2)
	if err != nil {
		log.Fatal(err)
	}
	cpResp, err := store.Run(dc, instances, cpRes.Deployment, seed+2)
	if err != nil {
		log.Fatal(err)
	}
	r2Resp, err := store.Run(dc, instances, r2Res.Deployment, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("key-value store: %d front-ends, %d storage nodes, %d-way reads\n", 6, 24, 6)
	fmt.Printf("worst link:   default %.3f ms | CP %.3f ms | R2 %.3f ms\n",
		problem.Cost(core.Identity(nodes)), cpRes.Cost, r2Res.Cost)
	fmt.Printf("mean response: default %.3f ms | CP %.3f ms (-%.1f%%) | R2 %.3f ms (-%.1f%%)\n",
		defaultResp,
		cpResp, 100*(defaultResp-cpResp)/defaultResp,
		r2Resp, 100*(defaultResp-r2Resp)/defaultResp)
}
