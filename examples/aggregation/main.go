// Aggregation query example (Sect. 6.1.2): a two-level top-k aggregation
// tree, response-time sensitive along its longest leaf-to-root path. The
// example compares the default deployment to a deployment optimized for the
// longest-path objective with the MIP solver — and also shows why the
// longest-link objective is the wrong tool for this workload.
//
// Run with: go run ./examples/aggregation
package main

import (
	"fmt"
	"log"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/mip"
	"cloudia/internal/topology"
	"cloudia/internal/workload"
)

func main() {
	const seed = 11

	query := &workload.AggregationQuery{Mids: 4, Leaves: 28, Queries: 200}
	graph, err := query.Graph()
	if err != nil {
		log.Fatal(err)
	}
	nodes := graph.NumNodes()

	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	instances, err := provider.RunInstances(nodes + nodes/10)
	if err != nil {
		log.Fatal(err)
	}

	meas, err := measure.Run(dc, instances, measure.Options{
		Scheme:     measure.Staged,
		DurationMS: 20 * float64(len(instances)),
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	costs := meas.MeanMatrix()

	// Longest path is the natural objective for an aggregation tree: the
	// response time is the sum of latencies along the slowest path.
	problem, err := solver.NewProblem(graph, costs, solver.LongestPath)
	if err != nil {
		log.Fatal(err)
	}
	result, err := mip.New(0, seed).Solve(problem, solver.Budget{Nodes: 3_000_000})
	if err != nil {
		log.Fatal(err)
	}

	defaultResp, err := query.Run(dc, instances, core.Identity(nodes), seed+2)
	if err != nil {
		log.Fatal(err)
	}
	tunedResp, err := query.Run(dc, instances, result.Deployment, seed+2)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("aggregation tree: %d aggregators, %d leaves\n", 4, 28)
	fmt.Printf("longest path (default):  %.3f ms predicted\n", problem.Cost(core.Identity(nodes)))
	fmt.Printf("longest path (tuned):    %.3f ms predicted (optimal proven: %v)\n",
		result.Cost, result.Optimal)
	fmt.Printf("mean response (default): %.3f ms measured\n", defaultResp)
	fmt.Printf("mean response (tuned):   %.3f ms measured\n", tunedResp)
	fmt.Printf("reduction:               %.1f%%\n", 100*(defaultResp-tunedResp)/defaultResp)
}
