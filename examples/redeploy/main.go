// Adaptive re-deployment example (Sect. 2.2.1 extension): on a network whose
// conditions shift every 8 hours (noisy neighbours come and go, path costs
// are re-drawn), a one-shot ClouDiA plan decays while an adaptive session —
// re-measure, re-search, re-deploy when the predicted gain clears the
// migration cost — keeps the deployment near-optimal.
//
// Run with: go run ./examples/redeploy
package main

import (
	"fmt"
	"log"

	"cloudia/internal/advisor"
	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

func main() {
	const seed = 31

	// A non-stationary EC2-like network: regime changes every 8 hours.
	profile := topology.EC2Profile()
	profile.RegimeHours = 8
	dc, err := topology.New(profile, seed)
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		log.Fatal(err)
	}

	graph, err := core.Mesh2D(5, 5)
	if err != nil {
		log.Fatal(err)
	}

	report, err := advisor.RunRedeploy(provider, advisor.RedeployConfig{
		Graph:                graph,
		Objective:            solver.LongestLink,
		OverAllocation:       0.25, // spares are retained: they are tomorrow's freedom
		PeriodHours:          8,
		Periods:              5,
		MinImprovement:       0.05,
		MigrationCostPerNode: 0.002, // small amortized state-migration charge
		Seed:                 seed,
		SolverBudget:         solver.Budget{Nodes: 600_000},
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("%-8s %-12s %-12s %s\n", "hours", "static", "adaptive", "action")
	for _, p := range report.Periods {
		action := "-"
		if p.Redeployed {
			action = fmt.Sprintf("re-deployed (%d nodes moved)", p.MovedNodes)
		}
		fmt.Printf("%-8.0f %-12.3f %-12.3f %s\n", p.Hours, p.StaticCost, p.AdaptiveCost, action)
	}
	fmt.Printf("\nmean worst-link: static %.3f ms, adaptive %.3f ms (%.0f%% better)\n",
		report.MeanStaticCost(), report.MeanAdaptiveCost(),
		100*(report.MeanStaticCost()-report.MeanAdaptiveCost())/report.MeanStaticCost())
	fmt.Printf("re-deployments: %d (total %d node moves)\n", report.Redeployments, report.TotalMoves)
}
