// Quickstart: advise a deployment for a 4x4 mesh application on a simulated
// EC2-like cloud, end to end, in a dozen lines.
//
// Run with: go run ./examples/quickstart
package main

import (
	"fmt"
	"log"

	"cloudia/internal/advisor"
	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

func main() {
	// A simulated public cloud: EC2-like latency profile, 60% occupied by
	// other tenants, so our instances land scattered across racks.
	dc, err := topology.New(topology.EC2Profile(), 42)
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cloud.NewProvider(dc, 0.6, 43)
	if err != nil {
		log.Fatal(err)
	}

	// Our application: 16 components communicating as a 4x4 mesh, sensitive
	// to the worst link (an HPC-style workload).
	graph, err := core.Mesh2D(4, 4)
	if err != nil {
		log.Fatal(err)
	}

	// ClouDiA: allocate 10% extra instances, measure, search, terminate.
	report, err := advisor.Advise(provider, advisor.Config{
		Graph:          graph,
		ObjectiveSpec:  advisor.ObjectiveSpec{Objective: solver.LongestLink},
		OverAllocation: 0.1,
		Seed:           42,
	})
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("default deployment worst link: %.3f ms\n", report.DefaultCost)
	fmt.Printf("tuned deployment worst link:   %.3f ms\n", report.TunedCost)
	fmt.Printf("predicted improvement:         %.1f%%\n", 100*report.Improvement())
	fmt.Printf("instances terminated:          %d\n", len(report.TerminatedIDs))
	for node, inst := range report.Assignments {
		fmt.Printf("  node %2d -> %s\n", node, inst.ID)
	}
}
