// Behavioral simulation example (Sect. 6.1.1): a fish-school style BSP
// simulation on a 6x6 processor mesh. The example allocates instances with
// 20% over-allocation, runs the simulation under the default deployment and
// under the ClouDiA deployment, and reports the time-to-solution reduction —
// the paper's Fig. 12 protocol for one workload.
//
// Run with: go run ./examples/behavioralsim
package main

import (
	"fmt"
	"log"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/topology"
	"cloudia/internal/workload"
)

func main() {
	const seed = 7

	sim := &workload.BehavioralSim{Rows: 6, Cols: 6, Ticks: 100}
	graph, err := sim.Graph()
	if err != nil {
		log.Fatal(err)
	}
	nodes := graph.NumNodes()

	// Allocate nodes + 20% extra on a fragmented EC2-like cloud.
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		log.Fatal(err)
	}
	provider, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		log.Fatal(err)
	}
	instances, err := provider.RunInstances(nodes + nodes/5)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("allocated %d instances across %d racks for %d nodes\n",
		len(instances), cloud.DistinctRacks(dc, instances), nodes)

	// Measure pairwise latencies with the staged scheme.
	meas, err := measure.Run(dc, instances, measure.Options{
		Scheme:     measure.Staged,
		DurationMS: 20 * float64(len(instances)),
		Seed:       seed,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("measured %d RTT samples (min %d per link)\n",
		meas.TotalSamples, meas.MinSamples())

	// Search: worst-link objective, CP solver with k=20 cost clusters.
	problem, err := solver.NewProblem(graph, meas.MeanMatrix(), solver.LongestLink)
	if err != nil {
		log.Fatal(err)
	}
	result, err := cp.New(20, seed).Solve(problem, solver.Budget{Nodes: 2_000_000})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("CP: worst link %.3f ms (default %.3f ms)\n",
		result.Cost, problem.Cost(core.Identity(nodes)))

	// Run the actual simulation under both deployments.
	defaultTTS, err := sim.Run(dc, instances, core.Identity(nodes), seed+2)
	if err != nil {
		log.Fatal(err)
	}
	tunedTTS, err := sim.Run(dc, instances, result.Deployment, seed+2)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("time-to-solution default: %.2f ms (virtual)\n", defaultTTS)
	fmt.Printf("time-to-solution tuned:   %.2f ms (virtual)\n", tunedTTS)
	fmt.Printf("reduction:                %.1f%%\n", 100*(defaultTTS-tunedTTS)/defaultTTS)
}
