// Package sketch implements a mergeable streaming quantile sketch for
// per-link latency tails (ROADMAP item 1): a DDSketch-style log-bucketed
// histogram with a configurable relative-error guarantee. measure.Stream
// maintains one per ordered instance pair so epochs can publish p95/p99
// matrices while the measurement is still in flight, the way the PV-storage
// work in PAPERS.md keeps compact summaries of high-rate streams instead of
// raw samples.
//
// DDSketch was chosen over t-digest deliberately: its state is a vector of
// integer bucket counts, and integer addition is commutative and
// associative, so merging sketches produces bit-identical state regardless
// of merge order or grouping. That makes the sketch safe for the repo's
// determinism contract — internal/par may chunk a sample stream any way it
// likes, build per-chunk sketches concurrently, and merge them in index
// order, and the result is byte-equal to a single sequential pass
// (FromSamples pins exactly this). A t-digest's centroids depend on
// insertion and merge order, which would make epoch content a function of
// the worker count.
//
// Accuracy guarantee: for every recorded value v above the indexable
// minimum, the bucket representative r satisfies |r - v| <= Alpha * v. A
// quantile query returns the representative of the bucket holding the
// nearest-rank sample, so Quantile(q) is within relative error Alpha of the
// exact q-quantile sample. Against a linearly interpolated percentile
// (stats.Percentile, used by measure.Result.P99Matrix) the estimate lies in
// [lo*(1-Alpha), hi*(1+Alpha)], where lo and hi are the order statistics
// bracketing the interpolation point — the bound the batch-vs-streaming
// acceptance test asserts.
package sketch

import (
	"fmt"
	"math"

	"cloudia/internal/par"
)

// DefaultAlpha is the relative-error bound used when a caller does not pick
// one: 1% relative error keeps p99 estimates well inside measurement noise
// while a 1000-instance fleet's million per-link sketches stay small (RTT
// spreads of 10^3 span ~350 buckets at this alpha).
const DefaultAlpha = 0.01

// minIndexable is the smallest value the log-bucket index covers; values in
// [0, minIndexable] (sub-nanosecond RTTs in this repo's millisecond unit)
// collapse into a dedicated zero bucket whose representative is 0.
const minIndexable = 1e-9

// Sketch is a mergeable quantile summary of a stream of non-negative
// values. The zero value is not usable; construct with New. A Sketch is not
// safe for concurrent use — the streaming measurement owns each per-link
// sketch from a single goroutine and publishes immutable matrices, never
// the sketches themselves.
type Sketch struct {
	alpha    float64
	gamma    float64
	logGamma float64 // cached log(gamma), the per-Add divisor

	// zero counts values at or below minIndexable. Larger values live in
	// dense log-buckets: counts[i] counts values v with
	// index(v) == offset + i, where index(v) = ceil(log_gamma(v)).
	zero   int64
	offset int
	counts []int64
	total  int64
}

// New returns an empty sketch with the given relative-error bound alpha in
// (0, 1); alpha <= 0 selects DefaultAlpha. Two sketches merge only if they
// share the same alpha.
func New(alpha float64) *Sketch {
	if alpha <= 0 {
		alpha = DefaultAlpha
	}
	if alpha >= 1 {
		panic(fmt.Sprintf("sketch: relative error bound %g outside (0, 1)", alpha))
	}
	gamma := (1 + alpha) / (1 - alpha)
	return &Sketch{alpha: alpha, gamma: gamma, logGamma: math.Log(gamma)}
}

// Alpha reports the sketch's relative-error bound.
func (s *Sketch) Alpha() float64 { return s.alpha }

// Count reports the number of recorded values.
func (s *Sketch) Count() int64 { return s.total }

// index maps a value above minIndexable to its log-bucket index. The
// mapping is a pure function of (v, alpha): gamma^(i-1) < v <= gamma^i.
func (s *Sketch) index(v float64) int {
	return int(math.Ceil(math.Log(v) / s.logGamma))
}

// representative returns the value every sample in bucket i reports as:
// 2*gamma^i/(gamma+1), the point whose relative distance to both bucket
// edges is exactly alpha.
func (s *Sketch) representative(i int) float64 {
	return 2 * math.Pow(s.gamma, float64(i)) / (s.gamma + 1)
}

// Add records one value. Negative values are clamped into the zero bucket:
// link latencies cannot be negative, and a conservative 0 beats poisoning
// the log index with NaN.
func (s *Sketch) Add(v float64) {
	s.total++
	if v <= minIndexable || math.IsNaN(v) {
		s.zero++
		return
	}
	s.bump(s.index(v), 1)
}

// bump adds n to the bucket at absolute index i, growing the dense count
// array as needed. Growth is geometry-free bookkeeping: the resulting
// logical state (index -> count) never depends on arrival order.
func (s *Sketch) bump(i int, n int64) {
	if len(s.counts) == 0 {
		s.offset = i
		s.counts = append(s.counts, n)
		return
	}
	if i < s.offset {
		grown := make([]int64, len(s.counts)+(s.offset-i))
		copy(grown[s.offset-i:], s.counts)
		s.counts, s.offset = grown, i
	} else if i >= s.offset+len(s.counts) {
		grown := make([]int64, i-s.offset+1)
		copy(grown, s.counts)
		s.counts = grown
	}
	s.counts[i-s.offset] += n
}

// Merge folds o into s. Both sketches must share the same alpha — merging
// summaries with different bucket geometries has no exact answer, so it is
// a programming error. o is left untouched; merging is pure integer
// addition of bucket counts, so any merge order or grouping over a set of
// sketches yields bit-identical state.
func (s *Sketch) Merge(o *Sketch) {
	if o == nil || o.total == 0 {
		return
	}
	if o.alpha != s.alpha {
		panic(fmt.Sprintf("sketch: merging alpha %g into alpha %g", o.alpha, s.alpha))
	}
	s.total += o.total
	s.zero += o.zero
	for i, c := range o.counts {
		if c != 0 {
			s.bump(o.offset+i, c)
		}
	}
}

// Quantile returns an estimate of the q-quantile (q in [0, 1]) of the
// recorded values: the representative of the bucket holding the sample of
// rank ceil(q*(Count-1)), which is within relative error Alpha of that
// sample's exact value. An empty sketch reports 0. Bucket scan order is
// fixed (ascending index), so the estimate is a pure function of the
// sketch's logical state.
func (s *Sketch) Quantile(q float64) float64 {
	if s.total == 0 {
		return 0
	}
	if q < 0 {
		q = 0
	} else if q > 1 {
		q = 1
	}
	rank := int64(math.Ceil(q * float64(s.total-1)))
	if rank < s.zero {
		return 0
	}
	cum := s.zero
	for i, c := range s.counts {
		cum += c
		if cum > rank {
			return s.representative(s.offset + i)
		}
	}
	// Unreachable when counts are consistent with total; fall back to the
	// highest occupied bucket.
	for i := len(s.counts) - 1; i >= 0; i-- {
		if s.counts[i] != 0 {
			return s.representative(s.offset + i)
		}
	}
	return 0
}

// Equal reports whether two sketches hold identical logical state: same
// alpha, same total and zero counts, and the same count in every occupied
// bucket. Physical layout (array capacity, leading/trailing zero buckets
// from growth history) is ignored — it is scheduling residue, not content.
func (s *Sketch) Equal(o *Sketch) bool {
	if s == nil || o == nil {
		return s == o
	}
	if s.alpha != o.alpha || s.total != o.total || s.zero != o.zero {
		return false
	}
	lo, hi := s.bounds()
	olo, ohi := o.bounds()
	if lo != olo || hi != ohi {
		return false
	}
	for i := lo; i < hi; i++ {
		if s.counts[i-s.offset] != o.counts[i-o.offset] {
			return false
		}
	}
	return true
}

// bounds returns the half-open absolute index range of occupied buckets.
func (s *Sketch) bounds() (lo, hi int) {
	i := 0
	for i < len(s.counts) && s.counts[i] == 0 {
		i++
	}
	j := len(s.counts)
	for j > i && s.counts[j-1] == 0 {
		j--
	}
	return s.offset + i, s.offset + j
}

// FromSamples builds a sketch over xs with the given alpha, chunking the
// slice across internal/par workers: each chunk fills its own sketch, and
// the chunks merge in ascending index order after the barrier. Because
// bucket assignment is per-value and merging is commutative-associative
// integer addition, the result is bit-identical to a sequential Add loop
// for every worker count and chunk geometry — the property the
// determinism suite pins.
func FromSamples(xs []float64, alpha float64) *Sketch {
	n := len(xs)
	w := par.Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		s := New(alpha)
		for _, v := range xs {
			s.Add(v)
		}
		return s
	}
	parts := make([]*Sketch, w)
	chunk := (n + w - 1) / w
	par.For(w, func(lo, hi int) {
		for c := lo; c < hi; c++ {
			from := c * chunk
			to := from + chunk
			if to > n {
				to = n
			}
			s := New(alpha)
			for _, v := range xs[from:to] {
				s.Add(v)
			}
			parts[c] = s
		}
	})
	out := parts[0]
	for _, p := range parts[1:] {
		out.Merge(p)
	}
	return out
}
