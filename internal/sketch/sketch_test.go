package sketch

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cloudia/internal/par"
)

// exactQuantile returns the nearest-rank q-quantile of xs (the sample the
// sketch promises to be within Alpha of).
func exactQuantile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	rank := int(math.Ceil(q * float64(len(sorted)-1)))
	return sorted[rank]
}

func randomSamples(r *rand.Rand, n int) []float64 {
	xs := make([]float64, n)
	for i := range xs {
		// Log-uniform over ~6 decades plus occasional zeros, mimicking RTT
		// spreads with dead links.
		if r.Intn(50) == 0 {
			xs[i] = 0
			continue
		}
		xs[i] = math.Pow(10, -2+6*r.Float64())
	}
	return xs
}

func TestQuantileWithinRelativeError(t *testing.T) {
	r := rand.New(rand.NewSource(42))
	for _, alpha := range []float64{0.005, 0.01, 0.05} {
		for _, n := range []int{1, 2, 10, 1000, 20000} {
			xs := randomSamples(r, n)
			s := New(alpha)
			for _, v := range xs {
				s.Add(v)
			}
			sorted := append([]float64(nil), xs...)
			sort.Float64s(sorted)
			for _, q := range []float64{0, 0.25, 0.5, 0.9, 0.95, 0.99, 1} {
				got := s.Quantile(q)
				want := exactQuantile(sorted, q)
				if want == 0 {
					if got != 0 {
						t.Fatalf("alpha=%g n=%d q=%g: want exact 0, got %g", alpha, n, q, got)
					}
					continue
				}
				if got < want*(1-alpha) || got > want*(1+alpha) {
					t.Fatalf("alpha=%g n=%d q=%g: got %g outside [%g, %g] around exact %g",
						alpha, n, q, got, want*(1-alpha), want*(1+alpha), want)
				}
			}
		}
	}
}

func TestRepresentativeBound(t *testing.T) {
	// Every value must land in a bucket whose representative is within
	// alpha of it — the invariant everything else rests on.
	s := New(0.01)
	r := rand.New(rand.NewSource(7))
	for i := 0; i < 50000; i++ {
		v := math.Pow(10, -6+12*r.Float64())
		rep := s.representative(s.index(v))
		if math.Abs(rep-v) > s.alpha*v*(1+1e-12) {
			t.Fatalf("value %g: representative %g off by %g > alpha*v %g",
				v, rep, math.Abs(rep-v), s.alpha*v)
		}
	}
}

func TestMergeOrderIndependent(t *testing.T) {
	r := rand.New(rand.NewSource(99))
	xs := randomSamples(r, 5000)

	sequential := New(0.01)
	for _, v := range xs {
		sequential.Add(v)
	}

	// Split into uneven chunks, merge in several different orders and
	// groupings; every result must be logically identical.
	cuts := []int{0, 17, 500, 501, 2000, 4999, 5000}
	parts := make([]*Sketch, 0, len(cuts)-1)
	for i := 1; i < len(cuts); i++ {
		p := New(0.01)
		for _, v := range xs[cuts[i-1]:cuts[i]] {
			p.Add(v)
		}
		parts = append(parts, p)
	}

	merge := func(order []int, pairwise bool) *Sketch {
		acc := New(0.01)
		if pairwise {
			// Tree-shaped grouping: merge pairs first, then fold.
			var level []*Sketch
			for _, i := range order {
				level = append(level, parts[i])
			}
			for len(level) > 1 {
				var next []*Sketch
				for i := 0; i < len(level); i += 2 {
					m := New(0.01)
					m.Merge(level[i])
					if i+1 < len(level) {
						m.Merge(level[i+1])
					}
					next = append(next, m)
				}
				level = next
			}
			acc.Merge(level[0])
			return acc
		}
		for _, i := range order {
			acc.Merge(parts[i])
		}
		return acc
	}

	variants := []*Sketch{
		merge([]int{0, 1, 2, 3, 4, 5}, false),
		merge([]int{5, 4, 3, 2, 1, 0}, false),
		merge([]int{3, 0, 5, 1, 4, 2}, false),
		merge([]int{0, 1, 2, 3, 4, 5}, true),
		merge([]int{2, 5, 0, 4, 1, 3}, true),
	}
	for i, v := range variants {
		if !v.Equal(sequential) {
			t.Fatalf("merge variant %d differs from sequential sketch", i)
		}
		for _, q := range []float64{0.5, 0.95, 0.99} {
			a, b := v.Quantile(q), sequential.Quantile(q)
			if a != b {
				t.Fatalf("merge variant %d: Quantile(%g)=%g != sequential %g", i, q, a, b)
			}
		}
	}
}

func TestFromSamplesWorkerCountInvariant(t *testing.T) {
	r := rand.New(rand.NewSource(123))
	xs := randomSamples(r, 10007) // prime length: uneven chunks at every worker count

	defer par.SetWorkers(par.Workers())
	par.SetWorkers(1)
	ref := FromSamples(xs, 0.01)

	for _, w := range []int{2, 3, 4, 7, 16, 64} {
		par.SetWorkers(w)
		got := FromSamples(xs, 0.01)
		if !got.Equal(ref) {
			t.Fatalf("workers=%d: sketch state differs from sequential build", w)
		}
		for _, q := range []float64{0, 0.5, 0.9, 0.99, 1} {
			if a, b := got.Quantile(q), ref.Quantile(q); a != b {
				t.Fatalf("workers=%d: Quantile(%g)=%g != sequential %g", w, q, a, b)
			}
		}
		if got.Count() != int64(len(xs)) {
			t.Fatalf("workers=%d: count %d != %d", w, got.Count(), len(xs))
		}
	}
}

func TestZeroAndNegativeValues(t *testing.T) {
	s := New(0.01)
	s.Add(0)
	s.Add(-3.5)
	s.Add(math.NaN())
	s.Add(1e-12)
	if s.Count() != 4 {
		t.Fatalf("count = %d, want 4", s.Count())
	}
	for _, q := range []float64{0, 0.5, 1} {
		if got := s.Quantile(q); got != 0 {
			t.Fatalf("Quantile(%g) = %g, want 0 for all-zero sketch", q, got)
		}
	}
	// Mixed: zeros below, positives above.
	s.Add(100)
	s.Add(200)
	if got := s.Quantile(0); got != 0 {
		t.Fatalf("Quantile(0) = %g, want 0", got)
	}
	hi := s.Quantile(1)
	if hi < 200*(1-0.01) || hi > 200*(1+0.01) {
		t.Fatalf("Quantile(1) = %g, want ~200", hi)
	}
}

func TestEmptySketch(t *testing.T) {
	s := New(0)
	if s.Alpha() != DefaultAlpha {
		t.Fatalf("alpha = %g, want default %g", s.Alpha(), DefaultAlpha)
	}
	if s.Count() != 0 || s.Quantile(0.99) != 0 {
		t.Fatalf("empty sketch: count=%d quantile=%g, want 0/0", s.Count(), s.Quantile(0.99))
	}
	o := New(0)
	s.Merge(o) // merging empty into empty is a no-op
	if s.Count() != 0 {
		t.Fatalf("count after empty merge = %d", s.Count())
	}
	if !s.Equal(o) {
		t.Fatal("two empty sketches must be equal")
	}
}

func TestQuantileClamping(t *testing.T) {
	s := New(0.01)
	for i := 1; i <= 10; i++ {
		s.Add(float64(i))
	}
	if got, want := s.Quantile(-0.5), s.Quantile(0); got != want {
		t.Fatalf("Quantile(-0.5)=%g != Quantile(0)=%g", got, want)
	}
	if got, want := s.Quantile(2), s.Quantile(1); got != want {
		t.Fatalf("Quantile(2)=%g != Quantile(1)=%g", got, want)
	}
}

func TestEqualDistinguishesContent(t *testing.T) {
	a, b := New(0.01), New(0.01)
	a.Add(5)
	if a.Equal(b) {
		t.Fatal("sketches with different totals must differ")
	}
	b.Add(5.001) // same bucket as 5 at alpha=0.01
	if !a.Equal(b) {
		t.Fatal("same-bucket values must compare equal")
	}
	b.Add(500)
	a.Add(5)
	if a.Equal(b) {
		t.Fatal("different bucket contents must differ")
	}
	c := New(0.05)
	c.Add(5)
	d := New(0.01)
	d.Add(5)
	if c.Equal(d) {
		t.Fatal("different alphas must differ")
	}
	var nilSketch *Sketch
	if nilSketch.Equal(d) || d.Equal(nilSketch) {
		t.Fatal("nil vs non-nil must differ")
	}
	if !nilSketch.Equal(nilSketch) {
		t.Fatal("nil vs nil must be equal")
	}
}

func TestMergeAlphaMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("merging mismatched alphas must panic")
		}
	}()
	a, b := New(0.01), New(0.05)
	b.Add(1)
	a.Merge(b)
}

func TestNewInvalidAlphaPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("alpha >= 1 must panic")
		}
	}()
	New(1.5)
}

func TestBumpGrowth(t *testing.T) {
	// Force growth in both directions and verify counts survive.
	s := New(0.01)
	s.Add(100)  // establishes the array
	s.Add(1e-3) // grow downward
	s.Add(1e5)  // grow upward
	if s.Count() != 3 {
		t.Fatalf("count = %d", s.Count())
	}
	lo := s.Quantile(0)
	if lo < 1e-3*(1-0.01) || lo > 1e-3*(1+0.01) {
		t.Fatalf("Quantile(0) = %g, want ~1e-3", lo)
	}
	hi := s.Quantile(1)
	if hi < 1e5*(1-0.01) || hi > 1e5*(1+0.01) {
		t.Fatalf("Quantile(1) = %g, want ~1e5", hi)
	}
}
