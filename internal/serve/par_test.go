package serve

import (
	"fmt"
	"io"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/par"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// dagGraph builds a small DAG (edges ascend), usable under LongestPath.
func dagGraph(t testing.TB, n int) *core.Graph {
	t.Helper()
	g := core.NewGraph(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v+2 < n; v += 2 {
		if err := g.AddEdge(v, v+2); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// TestPrefetchRaceHammer races the concurrent OnProblem prefetch — the
// par.Do fan-out warming rounded/rows/graph artifacts — against WarmStart
// installs, epoch evolution, and other tenants' prefetches over a
// 2-fingerprint cache, from 16 goroutines. Run under -race in CI; the warms
// and the solver-side artifact faults share single-flight slots and Prep
// cells, so any missing synchronization surfaces as a race or a lost
// artifact, and the fold-back keeps every error observable.
func TestPrefetchRaceHammer(t *testing.T) {
	defer par.SetWorkers(0)
	// Force real fan-out inside par.Do even on single-core CI machines.
	par.SetWorkers(8)

	g := dagGraph(t, 8)
	cache := NewCache(2)
	const instances = 10
	base := testMatrix(rand.New(rand.NewSource(7)), instances)

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*4)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(100 + w)))
			name := []string{"portfolio", "cp", "g1", "mip"}[w%4]
			obj := solver.LongestLink
			if w%2 == 1 {
				obj = solver.LongestPath
			}
			// Half the goroutines share the base matrix (and so its
			// fingerprint: artifact sharing and single-flight contention),
			// half perturb one row first (eviction pressure on the
			// 2-fingerprint cache).
			m := base.Clone()
			if w%2 == 1 {
				i := rng.Intn(instances)
				for j := 0; j < instances; j++ {
					if i != j {
						m.Set(i, j, 0.2+rng.Float64())
					}
				}
			}
			prob, err := solver.NewProblem(g, m, obj)
			if err != nil {
				errs <- err
				return
			}
			br := &cacheBridge{cache: cache, solverName: name, clusterK: 3, spec: advisor.ObjectiveSpec{Objective: obj}, graph: g}
			if err := br.onProblem(prob, nil, measure.Epoch{}, nil); err != nil {
				errs <- fmt.Errorf("prefetch %s: %w", name, err)
				return
			}
			// Race a warm-start install against other goroutines' prefetches
			// over the same Prep artifacts.
			if err := prob.Prep().WarmStart(core.Identity(g.NumNodes())); err != nil {
				errs <- err
			}
			// Evolve an epoch and push the supersede path while others warm.
			changed := []int{rng.Intn(instances)}
			m2 := m.Clone()
			for j := 0; j < instances; j++ {
				if j != changed[0] {
					m2.Set(changed[0], j, 0.2+rng.Float64())
				}
			}
			np, err := prob.Evolve(m2, changed)
			if err != nil {
				errs <- err
				return
			}
			if err := br.onProblem(np, prob, measure.Epoch{}, changed); err != nil {
				errs <- err
				return
			}
			// And prefetch the evolved fingerprint as a fresh problem, the
			// way a second tenant over the new matrix would.
			p2, err := solver.NewProblem(g, m2.Clone(), solver.LongestLink)
			if err != nil {
				errs <- err
				return
			}
			br2 := &cacheBridge{cache: cache, solverName: "cp", clusterK: 2, spec: advisor.ObjectiveSpec{Objective: solver.LongestLink}, graph: g}
			if err := br2.onProblem(p2, nil, measure.Epoch{}, nil); err != nil {
				errs <- err
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// copyDir clones a daemon's WAL tree, so two recoveries can replay the same
// bytes: Advise appends to the log, so reopening one directory twice would
// replay different histories.
func copyDir(t *testing.T, src, dst string) {
	t.Helper()
	err := filepath.Walk(src, func(path string, info os.FileInfo, err error) error {
		if err != nil {
			return err
		}
		rel, err := filepath.Rel(src, path)
		if err != nil {
			return err
		}
		target := filepath.Join(dst, rel)
		if info.IsDir() {
			return os.MkdirAll(target, 0o755)
		}
		in, err := os.Open(path)
		if err != nil {
			return err
		}
		defer in.Close()
		out, err := os.Create(target)
		if err != nil {
			return err
		}
		if _, err := io.Copy(out, in); err != nil {
			out.Close()
			return err
		}
		return out.Close()
	})
	if err != nil {
		t.Fatal(err)
	}
}

// TestDaemonParallelReplayBitEqual restarts a 5-tenant daemon from the same
// WAL bytes once with a single replay worker and once with many, and
// requires bit-identical recovered state and served advice: parallel
// recovery must be invisible in everything but wall-clock.
func TestDaemonParallelReplayBitEqual(t *testing.T) {
	defer par.SetWorkers(0)
	g := testGraph(t, 2, 3)
	const n, tenants = 8, 5
	budget := solver.Budget{Nodes: 10_000}

	seed := t.TempDir()
	d := openDaemon(t, DaemonConfig{Dir: seed, Serve: Config{Shards: 1}})
	for i := 0; i < tenants; i++ {
		tn := fmt.Sprintf("tenant-%d", i)
		m := testMatrix(rand.New(rand.NewSource(int64(60+i))), n)
		if _, _, err := d.AppendEpoch(tn, n, fullRows(m), nil); err != nil {
			t.Fatal(err)
		}
		adviseOK(t, d, AdviseRequest{
			Tenant: tn, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			SolverName: "cp", ClusterK: 3, RoundBudget: budget, Seed: int64(i),
		})
		// A partial second epoch, so replay exercises row deltas too.
		perturbed := append([]float64(nil), m.Row(i%n)...)
		for j := range perturbed {
			if j != i%n {
				perturbed[j] *= 1.5
			}
		}
		if _, _, err := d.AppendEpoch(tn, n, []wal.RowDelta{{Row: i % n, Values: perturbed}}, nil); err != nil {
			t.Fatal(err)
		}
	}
	if err := d.Close(); err != nil {
		t.Fatal(err)
	}

	dirSeq, dirPar := t.TempDir(), t.TempDir()
	copyDir(t, seed, dirSeq)
	copyDir(t, seed, dirPar)

	type recovered struct {
		fps    map[string]core.Fingerprint
		epochs map[string]int
		deps   map[string]core.Deployment
		costs  map[string]float64
	}
	recover := func(dir string) recovered {
		t.Helper()
		d := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
		defer d.Close()
		r := recovered{
			fps:    map[string]core.Fingerprint{},
			epochs: map[string]int{},
			deps:   map[string]core.Deployment{},
			costs:  map[string]float64{},
		}
		for _, tn := range d.Stats().Tenants {
			r.fps[tn.Tenant] = tn.Fingerprint
			r.epochs[tn.Tenant] = tn.Epoch
		}
		for i := 0; i < tenants; i++ {
			tn := fmt.Sprintf("tenant-%d", i)
			res := adviseOK(t, d, AdviseRequest{
				Tenant: tn, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
				SolverName: "cp", ClusterK: 3, RoundBudget: budget, Seed: 99,
			})
			r.deps[tn] = res.Outcome.Deployment
			r.costs[tn] = res.Outcome.Cost
		}
		return r
	}

	par.SetWorkers(1)
	seq := recover(dirSeq)
	par.SetWorkers(8)
	parl := recover(dirPar)

	if len(seq.fps) != tenants {
		t.Fatalf("sequential recovery found %d tenants, want %d", len(seq.fps), tenants)
	}
	if !reflect.DeepEqual(seq, parl) {
		t.Fatalf("parallel replay diverges from sequential:\nseq: %+v\npar: %+v", seq, parl)
	}
}
