package serve

import (
	"testing"
	"time"

	"cloudia/internal/solver"
)

// schedJob builds a minimal job carrying only what the scheduler reads.
func schedJob(tenant string, nodes int64) Job {
	return Job{Tenant: tenant, RoundBudget: solver.Budget{Nodes: nodes}}
}

// drain dispatches and immediately retires count tasks from one shard,
// returning the tenant order.
func drain(t *testing.T, s *sched, shard, count int) []string {
	t.Helper()
	order := make([]string, 0, count)
	for i := 0; i < count; i++ {
		tk, _, ok := s.next(shard)
		if !ok {
			t.Fatalf("scheduler drained after %d of %d dispatches", i, count)
		}
		order = append(order, tk.job.Tenant)
		s.done(tk.job.Tenant, tk)
	}
	return order
}

// A hot tenant's backlog must not delay other tenants: after the hot
// tenant's first dispatch charges its vtime, every light tenant sorts in
// front of the remaining backlog.
func TestSchedHotTenantYieldsToLights(t *testing.T) {
	s := newSched(1, 0, 0, 0, true)
	for i := 0; i < 4; i++ {
		if err := s.submit("hot", 0, 1, schedJob("hot", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	for _, l := range []string{"l1", "l2", "l3"} {
		if err := s.submit(l, 0, 1, schedJob(l, 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	want := []string{"hot", "l1", "l2", "l3", "hot", "hot", "hot"}
	got := drain(t, s, 0, 7)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v", got, want)
		}
	}
}

// A weight-2 tenant is entitled to twice the dispatches of a weight-1
// tenant over any fair window.
func TestSchedWeightedShare(t *testing.T) {
	s := newSched(1, 0, 0, 0, true)
	for i := 0; i < 6; i++ {
		if err := s.submit("heavy", 0, 2, schedJob("heavy", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 6; i++ {
		if err := s.submit("std", 0, 1, schedJob("std", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	counts := map[string]int{}
	for _, tenant := range drain(t, s, 0, 6) {
		counts[tenant]++
	}
	if counts["heavy"] != 4 || counts["std"] != 2 {
		t.Fatalf("first 6 dispatches heavy=%d std=%d, want 4 and 2", counts["heavy"], counts["std"])
	}
}

// A tenant that was idle must not bank credit: on re-arrival its vtime is
// raised to the virtual clock, so it gets its fair share from now on, not a
// burst of catch-up dispatches.
func TestSchedIdleTenantBanksNoCredit(t *testing.T) {
	s := newSched(1, 0, 0, 0, true)
	for i := 0; i < 3; i++ {
		if err := s.submit("a", 0, 1, schedJob("a", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	drain(t, s, 0, 3) // vclock advances to 2000 while b is idle
	for i := 0; i < 3; i++ {
		if err := s.submit("b", 0, 1, schedJob("b", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 2; i++ {
		if err := s.submit("a", 0, 1, schedJob("a", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	// Had b banked credit from vtime 0 it would drain its whole backlog
	// (b,b,b,a,a) before a ran again; with the start-time rule b starts at
	// the virtual clock and the two interleave once b catches up.
	want := []string{"b", "b", "a", "b", "a"}
	got := drain(t, s, 0, 5)
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("dispatch order %v, want %v (idle tenant banked credit)", got, want)
		}
	}
}

// Per-tenant execution is serialized: a tenant with a job in flight is not
// ready, however deep its backlog, so one tenant can never occupy two
// workers (preserving the warm-state guarantee of per-shard routing).
func TestSchedSerializesTenant(t *testing.T) {
	s := newSched(2, 0, 0, 0, false)
	for i := 0; i < 3; i++ {
		if err := s.submit("only", 0, 1, schedJob("only", 1000), &Ticket{}); err != nil {
			t.Fatal(err)
		}
	}
	tk, stolen, ok := s.next(0)
	if !ok || stolen {
		t.Fatalf("first dispatch ok=%v stolen=%v", ok, stolen)
	}
	// With "only" in flight, the other worker must find nothing to pull —
	// not even by stealing.
	s.mu.Lock()
	if got := s.pickLocked(1); got != nil {
		s.mu.Unlock()
		t.Fatalf("second worker pulled %q while the tenant was in flight", got.key)
	}
	s.mu.Unlock()
	s.done("only", tk)
	if tk2, _, ok := s.next(1); !ok || tk2.job.Tenant != "only" {
		t.Fatal("backlog not resumable after completion")
	}
}

// An idle worker steals the lowest-vtime ready tenant from another shard;
// with stealing disabled it finds nothing.
func TestSchedStealPicksMostStarved(t *testing.T) {
	s := newSched(3, 0, 0, 0, false)
	// Two tenants homed on shard 1 with different accumulated vtimes.
	if err := s.submit("ahead", 1, 1, schedJob("ahead", 5000), &Ticket{}); err != nil {
		t.Fatal(err)
	}
	tk, _, _ := s.next(1) // charges ahead.vtime to 5000
	s.done("ahead", tk)
	if err := s.submit("ahead", 1, 1, schedJob("ahead", 5000), &Ticket{}); err != nil {
		t.Fatal(err)
	}
	if err := s.submit("behind", 2, 1, schedJob("behind", 1000), &Ticket{}); err != nil {
		t.Fatal(err)
	}
	got, stolen, ok := s.next(0) // shard 0 homes nobody: must steal
	if !ok || !stolen || got.job.Tenant != "behind" {
		t.Fatalf("steal picked %q stolen=%v, want most-starved \"behind\"", got.job.Tenant, stolen)
	}
	if s.stealCount() != 1 {
		t.Fatalf("steals = %d, want 1", s.stealCount())
	}

	ns := newSched(2, 0, 0, 0, true)
	if err := ns.submit("x", 1, 1, schedJob("x", 1000), &Ticket{}); err != nil {
		t.Fatal(err)
	}
	ns.mu.Lock()
	defer ns.mu.Unlock()
	if got := ns.pickLocked(0); got != nil {
		t.Fatalf("noSteal scheduler let shard 0 pull %q from shard 1", got.key)
	}
}

// Per-tenant budget accounting rejects one tenant's excess without touching
// the others, and releases on completion.
func TestSchedPerTenantBudget(t *testing.T) {
	s := newSched(1, 0, 0, 250*time.Millisecond, true)
	j := Job{Tenant: "a", RoundBudget: solver.Budget{Time: 100 * time.Millisecond}}
	if err := s.submit("a", 0, 1, j, &Ticket{}); err != nil {
		t.Fatal(err)
	}
	if err := s.submit("a", 0, 1, j, &Ticket{}); err != nil {
		t.Fatal(err)
	}
	if err := s.submit("a", 0, 1, j, &Ticket{}); err != ErrOverBudget {
		t.Fatalf("third 100ms job for one tenant: %v, want ErrOverBudget", err)
	}
	jb := j
	jb.Tenant = "b"
	if err := s.submit("b", 0, 1, jb, &Ticket{}); err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	tk, _, _ := s.next(0)
	s.done("a", tk)
	if err := s.submit("a", 0, 1, j, &Ticket{}); err != nil {
		t.Fatalf("tenant budget not released on completion: %v", err)
	}
}
