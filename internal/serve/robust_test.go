package serve

import (
	"errors"
	"math/rand"
	"strings"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/solver"
)

// TestWorkerPanicIsolation: a job whose solve panics fails with
// ErrJobPanicked (stack attached) while the worker survives, the tenant's
// in-flight slot and pending budget are released, and the daemon serves
// the next job — same tenant, same worker — normally.
func TestWorkerPanicIsolation(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	g := testGraph(t, 2, 3)
	m := testMatrix(rng, 8)

	s := New(Config{Shards: 1, MaxPendingBudget: time.Minute})
	defer s.Close()

	poisoned := Job{
		Tenant:        "acme",
		Graph:         g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		Matrix:        m,
		SolverName:    "g2",
		RoundBudget:   solver.Budget{Nodes: 2_000, Time: time.Second},
		OnRound:       func(advisor.Round) { panic("poisoned job") },
	}
	res := mustSubmit(t, s, poisoned).Wait()
	if !errors.Is(res.Err, ErrJobPanicked) {
		t.Fatalf("poisoned job error = %v, want ErrJobPanicked", res.Err)
	}
	if res.Outcome != nil {
		t.Fatal("poisoned job carried an outcome")
	}
	if !strings.Contains(res.Err.Error(), "poisoned job") || !strings.Contains(res.Err.Error(), "goroutine") {
		t.Fatalf("panic error lacks value or stack: %v", res.Err)
	}

	// Accounting must be fully released: no pending budget, no queued work.
	if pb := s.Stats().PendingBudget; pb != 0 {
		t.Fatalf("pending budget leaked after panic: %v", pb)
	}
	if q := s.sched.queuedTasks(); q != 0 {
		t.Fatalf("%d tasks stuck in queues after panic", q)
	}

	// The same tenant's next job must be served by the surviving worker.
	clean := poisoned
	clean.OnRound = nil
	res2 := mustSubmit(t, s, clean).Wait()
	if res2.Err != nil {
		t.Fatalf("job after the poisoned one failed: %v", res2.Err)
	}
	if err := res2.Outcome.Deployment.Validate(8); err != nil {
		t.Fatalf("post-panic advice invalid: %v", err)
	}
	st := s.Stats()
	if st.Failed != 1 || st.Served != 1 {
		t.Fatalf("failed/served = %d/%d, want 1/1", st.Failed, st.Served)
	}
}

// TestJobTimeoutReturnsBestSoFar: a job whose deadline expires mid-solve
// completes with its best-so-far incumbent and Outcome.Interrupted — a
// usable, validated deployment, not an error.
func TestJobTimeoutReturnsBestSoFar(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	g := testGraph(t, 2, 3)
	m := testMatrix(rng, 8)

	s := New(Config{Shards: 1})
	defer s.Close()

	res := mustSubmit(t, s, Job{
		Tenant:        "slow",
		Graph:         g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		Matrix:        m,
		RoundBudget:   solver.Budget{Nodes: 500_000},
		Timeout:       time.Nanosecond, // expires before the first round
	}).Wait()
	if res.Err != nil {
		t.Fatalf("timed-out job failed: %v", res.Err)
	}
	if !res.Outcome.Interrupted {
		t.Fatal("timed-out job not marked Interrupted")
	}
	if err := res.Outcome.Deployment.Validate(8); err != nil {
		t.Fatalf("timed-out job returned no usable advice: %v", err)
	}
}

// TestJobWarmStartCarriesIncumbent: a warm-started job can only improve on
// the supplied deployment, even with a negligible round budget.
func TestJobWarmStartCarriesIncumbent(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	g := testGraph(t, 2, 3)
	m := testMatrix(rng, 8)

	s := New(Config{Shards: 1})
	defer s.Close()

	// First solve properly to obtain a good deployment.
	first := mustSubmit(t, s, Job{
		Tenant: "warm", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink}, Matrix: m,
		RoundBudget: solver.Budget{Nodes: 20_000},
	}).Wait()
	if first.Err != nil {
		t.Fatal(first.Err)
	}
	warm := first.Outcome.Deployment

	res := mustSubmit(t, s, Job{
		Tenant: "warm", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink}, Matrix: m,
		SolverName:  "g2",
		RoundBudget: solver.Budget{Nodes: 1},
		WarmStart:   warm,
	}).Wait()
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	if res.Outcome.Cost > first.Outcome.Cost {
		t.Fatalf("warm-started cost %g worse than its seed %g", res.Outcome.Cost, first.Outcome.Cost)
	}
}

func mustSubmit(t *testing.T, s *Server, job Job) *Ticket {
	t.Helper()
	tk, err := s.Submit(job)
	if err != nil {
		t.Fatal(err)
	}
	return tk
}
