// Package serve implements sharded multi-tenant advisor serving: one
// process hosting many concurrent advising problems instead of the
// one-problem-at-a-time advisor the paper describes. Jobs enter per-tenant
// FIFO queues behind a shared weighted-fair ready queue; shard workers
// *pull* the next job lazily — preferring tenants whose key hashes to their
// shard, stealing the most-starved tenant from other shards when their own
// are idle — and each runs warm-started portfolio rounds over the job's
// matrix epochs exactly as advisor.SolveStream does, so a served job's
// result is bit-equal to running the same tenant through the unsharded
// streaming path regardless of where (or when) it was dispatched. What the
// serving layer adds is sharing and isolation: a content-addressed Prep
// artifact cache (see Cache) lets tenants with identical cost matrices —
// common when they measure the same datacenter slice, or when a fleet of
// problems is re-advised against one published matrix — split the dominant
// preprocessing cost across the whole fleet, while per-tenant fairness
// accounting stops one hot tenant's backlog from starving everyone else
// (see sched.go for the scheduling model).
package serve

import (
	"context"
	"fmt"
	"hash/fnv"
	"runtime/debug"
	"sync"
	"sync/atomic"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/par"
	"cloudia/internal/solver"
)

// Job is one tenant's advising request: a deployment problem plus the
// epoch source feeding its cost matrices.
type Job struct {
	// Tenant identifies the requesting tenant; with Datacenter it forms the
	// scheduling key: one tenant's jobs run serialized in submission order
	// (never racing each other's warm state), with fairness accounted per
	// key. Required.
	Tenant string
	// Datacenter optionally scopes the scheduling key for tenants deployed
	// in several datacenters.
	Datacenter string

	// Graph defines the deployment problem's communication graph; required.
	Graph *core.Graph
	// ObjectiveSpec says what to optimize (advisor.ObjectiveSpec): the
	// objective, the metric — percentile metrics search the epochs'
	// published tail matrices, tie-breaking on the mean — and the
	// tie-break policy. The spec's Scheme is ignored here: served jobs
	// consume epochs or matrices, they do not measure.
	advisor.ObjectiveSpec

	// Epochs supplies the job's matrix epochs, as measure.Stream (or any
	// custom producer) publishes them; the job completes when the channel
	// closes. Epoch matrices are immutable snapshots and flow down to the
	// solvers by reference — the serving layer never copies them. Exactly
	// one of Epochs and Matrix must be set.
	Epochs <-chan measure.Epoch
	// Matrix is the single-epoch convenience: a job over one already
	// measured matrix, equivalent to a one-epoch stream (shared by
	// reference; the caller must not mutate it after Submit).
	Matrix *core.CostMatrix
	// TailMatrix extends the single-epoch convenience to percentile specs:
	// the pre-measured percentile matrix the one-shot epoch publishes as
	// its tail. Required when Matrix is set and the spec's metric is a
	// percentile; invalid otherwise. (Epoch-fed jobs instead carry tails
	// inside their epochs.)
	TailMatrix *core.CostMatrix

	// SolverName, ClusterK, RoundBudget, Seed, and Coalesce have their
	// advisor.StreamSolveConfig meanings. RoundBudget is required — beyond
	// bounding the solve, it is the job's fairness charge: each dispatch
	// advances the tenant's virtual time by the declared budget over its
	// weight, so tenants promising more work cede priority sooner.
	SolverName  string
	ClusterK    int
	RoundBudget solver.Budget
	Seed        int64
	Coalesce    bool

	// Weight is the tenant's fairness weight; <= 0 selects 1. A tenant with
	// weight 2 is entitled to twice the service share of a weight-1 tenant
	// before its jobs sort behind theirs. The first admitted job fixes the
	// tenant's weight for the server's lifetime.
	Weight float64

	// Timeout, when positive, bounds the job's solve wall clock from the
	// moment a worker picks it up. On expiry the job completes normally
	// with its best-so-far incumbent and Outcome.Interrupted set — a
	// deadline is degraded advice, not an error.
	Timeout time.Duration
	// WarmStart, when non-nil, seeds the job's incumbent before its first
	// round (advisor.StreamSolveConfig.WarmStart). The durable daemon uses
	// it to resume a recovered tenant from its last served advice.
	WarmStart core.Deployment
	// OnRound, when non-nil, observes each round as it completes, on the
	// worker goroutine. The daemon streams per-round advice through it.
	OnRound func(advisor.Round)
}

// Result is one served job's outcome.
type Result struct {
	Tenant string
	// Shard is the worker shard that executed the job; Stolen reports that
	// it was not the tenant's home shard (a cross-shard steal). Steals
	// affect only placement and latency, never the outcome.
	Shard  int
	Stolen bool
	// Outcome is the streaming solve outcome (nil when Err is set); its
	// final deployment and cost are bit-equal to unsharded
	// advisor.SolveStream over the same epochs and configuration.
	Outcome *advisor.StreamOutcome
	Err     error
	// CacheHits and CacheMisses count the job's Prep artifact requests
	// served from, respectively computed into, the shared cache.
	CacheHits, CacheMisses int
	// Queued is how long the job waited to be pulled by a worker; Ran is
	// the solve wall-clock time.
	Queued, Ran time.Duration
}

// Ticket is a handle on a submitted job.
type Ticket struct {
	done chan struct{}
	res  *Result
}

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() *Result {
	<-t.done
	return t.res
}

// Config sizes a Server.
type Config struct {
	// Shards is the number of worker goroutines; <= 0 selects 2. Jobs of
	// one tenant run sequentially; distinct tenants run concurrently, so
	// Shards bounds the number of portfolio solves racing for the machine
	// at once. Tenant keys hash to a home shard that its worker prefers,
	// but any idle worker steals ready work from other shards' tenants.
	Shards int
	// QueueDepth sizes admission: the server accepts at most
	// Shards*QueueDepth admitted-but-undispatched jobs in total (the
	// shared-queue successor of the old per-shard depth); <= 0 selects 16.
	// Submit rejects with ErrBusy beyond it — backpressure surfaces at
	// admission instead of as unbounded memory.
	QueueDepth int
	// MaxPendingBudget, when positive, caps the summed per-round solver
	// time budgets of admitted-but-unfinished jobs. It is admission
	// control on promised wall-clock solve work: a fleet of millions of
	// tenants cannot queue more concurrent budget than the operator
	// provisioned for. Submit rejects with ErrOverBudget beyond it. Only
	// RoundBudget.Time is counted: a purely node-budgeted job promises
	// machine-independent work with no wall-clock bound to charge, so it
	// is admitted without consuming the cap — operators capping pending
	// work should hand tenants time budgets (or both axes).
	MaxPendingBudget time.Duration
	// MaxTenantPendingBudget, when positive, is MaxPendingBudget per
	// tenant key: one tenant cannot hold more admitted-but-unfinished
	// declared wall-clock budget than this, however empty the rest of the
	// server is. It bounds how far a hot tenant's backlog can grow at all,
	// complementing the fairness accounting that bounds how much of it
	// runs ahead of other tenants.
	MaxTenantPendingBudget time.Duration
	// DisableStealing pins every tenant to its home shard's worker,
	// restoring the static routing of the push-based serving layer. It
	// exists for ablation — the skewed-tenant benchmark measures exactly
	// what stealing buys — and for operators who want hard shard isolation
	// over utilization.
	DisableStealing bool
	// Cache is the shared artifact cache; nil builds a fresh
	// NewCache(DefaultMaxMatrices). Several servers may share one cache.
	Cache *Cache
}

// Exported admission errors, so callers can tell transient rejection
// (retry later, or elsewhere) from permanent failure.
var (
	ErrBusy       = fmt.Errorf("serve: admission queue full")
	ErrOverBudget = fmt.Errorf("serve: pending solve budget exhausted")
	ErrClosed     = fmt.Errorf("serve: server closed")
	// ErrJobPanicked marks a Result whose solve panicked: the worker
	// recovered, released the tenant's in-flight slot and pending budget,
	// and kept serving — only the poisoned job failed. The wrapped error
	// carries the panic value and the captured stack.
	ErrJobPanicked = fmt.Errorf("serve: job panicked in the solver")
)

// Server schedules jobs onto pulling shard workers over the shared cache.
type Server struct {
	cfg   Config
	cache *Cache
	sched *sched
	wg    sync.WaitGroup

	closed    atomic.Bool
	submitted atomic.Int64
	rejected  atomic.Int64
	served    atomic.Int64
	failed    atomic.Int64
}

type task struct {
	job      Job
	ticket   *Ticket
	enqueued time.Time
	seq      int64
}

// New starts a server. Callers must Close it to release the workers.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache(0)
	}
	s := &Server{
		cfg:   cfg,
		cache: cache,
		sched: newSched(cfg.Shards, cfg.Shards*cfg.QueueDepth,
			cfg.MaxPendingBudget, cfg.MaxTenantPendingBudget, cfg.DisableStealing),
	}
	for i := 0; i < cfg.Shards; i++ {
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Cache returns the server's shared artifact cache.
func (s *Server) Cache() *Cache { return s.cache }

// shardFor maps a tenant/datacenter key to its home shard index.
func (s *Server) shardFor(tenant, datacenter string) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(datacenter))
	return int(h.Sum32() % uint32(s.cfg.Shards))
}

// schedKey is the per-tenant scheduling key.
func schedKey(tenant, datacenter string) string {
	return tenant + "\x00" + datacenter
}

// Submit validates and enqueues a job for the pulling workers. It never
// blocks: an exhausted pending budget (global or per-tenant) rejects with
// ErrOverBudget, a full admission queue with ErrBusy.
func (s *Server) Submit(job Job) (*Ticket, error) {
	if job.Tenant == "" {
		return nil, fmt.Errorf("serve: job without a tenant key")
	}
	if job.Graph == nil {
		return nil, fmt.Errorf("serve: job without a communication graph")
	}
	if err := job.ObjectiveSpec.Validate(); err != nil {
		return nil, err
	}
	if job.Metric == advisor.MetricMeanPlusStd {
		return nil, fmt.Errorf("serve: jobs do not support the %q metric (epochs carry mean and percentile matrices)", advisor.MetricMeanPlusStd)
	}
	if (job.Epochs == nil) == (job.Matrix == nil) {
		return nil, fmt.Errorf("serve: job must set exactly one of Epochs and Matrix")
	}
	if job.TailMatrix != nil && job.Matrix == nil {
		return nil, fmt.Errorf("serve: TailMatrix requires Matrix (epoch-fed jobs carry tails inside their epochs)")
	}
	if job.Matrix != nil && job.TailPercentile() > 0 && job.TailMatrix == nil {
		return nil, fmt.Errorf("serve: metric %q over a single matrix requires TailMatrix (the pre-measured percentile matrix)", job.Metric)
	}
	if job.RoundBudget.Unlimited() {
		return nil, fmt.Errorf("serve: job requires a bounded round budget")
	}
	// Build the graph's incidence caches up front (concurrent-safe; racing
	// Submits serialize behind one build) so shard workers never pay it
	// mid-solve on a graph shared by several jobs.
	job.Graph.EnsureIncidence()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	t := &Ticket{done: make(chan struct{})}
	err := s.sched.submit(schedKey(job.Tenant, job.Datacenter),
		s.shardFor(job.Tenant, job.Datacenter), job.Weight, job, t)
	switch err {
	case nil:
		s.submitted.Add(1)
		return t, nil
	case ErrBusy, ErrOverBudget:
		s.rejected.Add(1)
		return nil, err
	default:
		return nil, err
	}
}

// Close stops admission, drains the queued jobs, and waits for the workers
// to finish them. Safe to call once.
func (s *Server) Close() {
	if !s.closed.Swap(true) {
		s.sched.close()
	}
	s.wg.Wait()
}

// worker is one shard's pull loop: take the fairest ready job — own home
// tenants first, stolen otherwise — run it, retire it, repeat.
func (s *Server) worker(idx int) {
	defer s.wg.Done()
	for {
		tk, stolen, ok := s.sched.next(idx)
		if !ok {
			return
		}
		res := s.runJob(idx, tk)
		res.Stolen = stolen
		s.sched.done(schedKey(tk.job.Tenant, tk.job.Datacenter), tk)
		if res.Err != nil {
			s.failed.Add(1)
		} else {
			s.served.Add(1)
		}
		tk.ticket.res = res
		close(tk.ticket.done)
	}
}

// runJob serves one job: the unsharded streaming loop with the cache
// bridge plugged into its OnProblem hook. A panic anywhere in the solve —
// a poisoned matrix, a faulty solver, a hostile callback — is recovered
// into ErrJobPanicked on the job's own Result: the worker survives, and
// the caller in worker() still retires the task so the tenant's in-flight
// slot and pending budget are released exactly as for a clean failure.
func (s *Server) runJob(shard int, tk task) (res *Result) {
	job := tk.job
	res = &Result{Tenant: job.Tenant, Shard: shard, Queued: time.Since(tk.enqueued)}
	start := time.Now()
	defer func() {
		if r := recover(); r != nil {
			res.Ran = time.Since(start)
			res.Outcome = nil
			res.Err = fmt.Errorf("%w: %v\n%s", ErrJobPanicked, r, debug.Stack())
		}
	}()

	epochs := job.Epochs
	if epochs == nil {
		// The matrices flow down as-is: the one-epoch channel wraps the
		// caller's snapshots, it does not clone them.
		ep := measure.Epoch{Index: 1, Final: true, Matrix: job.Matrix}
		if job.TailMatrix != nil {
			ep.Tails = []measure.TailMatrix{{Pct: job.TailPercentile(), Matrix: job.TailMatrix}}
		}
		ch := make(chan measure.Epoch, 1)
		ch <- ep
		close(ch)
		epochs = ch
	}

	br := &cacheBridge{
		cache:      s.cache,
		solverName: job.SolverName,
		clusterK:   job.ClusterK,
		spec:       job.ObjectiveSpec,
		graph:      job.Graph,
	}
	var ctx context.Context
	if job.Timeout > 0 {
		var cancel context.CancelFunc
		ctx, cancel = context.WithTimeout(context.Background(), job.Timeout)
		defer cancel()
	}
	out, err := advisor.SolveStream(epochs, advisor.StreamSolveConfig{
		Graph:         job.Graph,
		ObjectiveSpec: job.ObjectiveSpec,
		SolverName:    job.SolverName,
		ClusterK:      job.ClusterK,
		RoundBudget:   job.RoundBudget,
		Seed:          job.Seed,
		Coalesce:      job.Coalesce,
		OnProblem:     br.onProblem,
		OnRound:       job.OnRound,
		Ctx:           ctx,
		WarmStart:     job.WarmStart,
	})
	res.Ran = time.Since(start)
	res.Outcome, res.Err = out, err
	res.CacheHits, res.CacheMisses = br.hits, br.misses
	return res
}

// Stats is a point-in-time server counter snapshot.
type Stats struct {
	// Submitted counts admitted jobs; Rejected counts ErrBusy and
	// ErrOverBudget refusals; Served and Failed partition completed jobs.
	Submitted, Rejected, Served, Failed int64
	// Steals counts dispatches where an idle worker pulled a tenant homed
	// on another shard.
	Steals int64
	// PendingBudget is the summed declared round budget of
	// admitted-but-unfinished jobs.
	PendingBudget time.Duration
	// Cache is the shared cache's snapshot.
	Cache CacheStats
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:     s.submitted.Load(),
		Rejected:      s.rejected.Load(),
		Served:        s.served.Load(),
		Failed:        s.failed.Load(),
		Steals:        s.sched.stealCount(),
		PendingBudget: s.sched.pending(),
		Cache:         s.cache.Stats(),
	}
}

// cacheBridge adapts the shared cache to advisor.SolveStream's OnProblem
// hook for one job. Fresh problems adopt (or compute and publish) the
// content-addressed artifacts their solver will need; evolved problems
// keep their incremental Prep lineage — bit-identical to the unsharded
// path — and instead emit the epoch's changed-row set as the cross-shard
// invalidation message retiring the previous fingerprint.
type cacheBridge struct {
	cache      *Cache
	solverName string
	clusterK   int
	spec       advisor.ObjectiveSpec
	graph      *core.Graph

	prevFP       core.Fingerprint
	hits, misses int
}

// epochFP returns the content fingerprint of the matrix the round actually
// searches: the epoch's tail fingerprint for percentile specs, the mean
// fingerprint otherwise. Percentile and mean matrices are distinct cache
// keys — their Prep artifacts are not interchangeable. The fallback is
// always correct because prob.Costs IS the searched (primary) matrix.
func (b *cacheBridge) epochFP(prob *solver.Problem, ep measure.Epoch) core.Fingerprint {
	var fp core.Fingerprint
	if pct := b.spec.TailPercentile(); pct > 0 {
		if tail := ep.Tail(pct); tail != nil {
			fp = tail.Fingerprint
		}
	} else {
		fp = ep.Fingerprint
	}
	if fp == 0 {
		fp = prob.Costs.Fingerprint()
	}
	return fp
}

func (b *cacheBridge) onProblem(prob, prev *solver.Problem, ep measure.Epoch, changedRows []int) error {
	fp := b.epochFP(prob, ep)
	defer func() { b.prevFP = fp }()

	if prev != nil {
		b.cache.Supersede(b.prevFP, fp, changedRows)
		return nil
	}

	// Resolve the same defaults SolveStream applies, so the bridge warms
	// the artifacts the solver will actually request.
	name := b.solverName
	if name == "" {
		name = "portfolio"
	}
	k := b.clusterK
	if k == 0 && (name == "cp" || name == "portfolio") {
		k = 20
	}
	prep := prob.Prep()

	// The known solver family maps to a fixed artifact set; the artifacts
	// are independent (distinct single-flight slots, distinct Prep cells),
	// so they prefetch concurrently instead of each solver faulting them in
	// serially under its sync.Once. Results are folded back in the fixed
	// rounded/rows/graph order after the join, so hit/miss counts and the
	// error a caller sees stay deterministic regardless of scheduling; with
	// one worker the closures run sequentially inline, exactly the old path.
	var (
		doRounded, doRows, doGraph    bool
		roundedHit, rowsHit, graphHit bool
		roundedErr                    error
	)
	switch name {
	case "cp", "portfolio":
		// CP consumes the pair list at every k, clustered or not.
		doRounded = true
	case "mip":
		// Unclustered MIP reads the raw matrix directly and never asks
		// Prep for the k<=0 entry; warming it would sort ~m^2 pairs
		// nobody reads.
		doRounded = k > 0
	}
	doRows = name == "g1" || name == "portfolio"
	// Longest-path problems run the branch-and-bound member over the
	// transposed graph; the transpose and its topological order are
	// graph-content artifacts shared under the graph's own fingerprint
	// (the per-family sub-key), so longest-path fleets share more than
	// matrix-derived entries.
	doGraph = b.spec.Objective == solver.LongestPath && (name == "mip" || name == "portfolio")

	warms := make([]func(), 0, 3)
	if doRounded {
		warms = append(warms, func() { roundedHit, roundedErr = b.cache.Rounded(fp, k, prep) })
	}
	if doRows {
		warms = append(warms, func() { rowsHit = b.cache.CheapestRows(fp, prep) })
	}
	if doGraph {
		warms = append(warms, func() { graphHit = b.cache.TransposedGraph(b.graph.Fingerprint(), prep) })
	}
	par.Do(warms...)

	if doRounded {
		if roundedErr != nil {
			return roundedErr
		}
		b.count(roundedHit)
	}
	if doRows {
		b.count(rowsHit)
	}
	if doGraph {
		b.count(graphHit)
	}
	return nil
}

func (b *cacheBridge) count(hit bool) {
	if hit {
		b.hits++
	} else {
		b.misses++
	}
}
