// Package serve implements sharded multi-tenant advisor serving: one
// process hosting many concurrent advising problems instead of the
// one-problem-at-a-time advisor the paper describes. Jobs are routed by a
// stable hash of their tenant/datacenter key onto worker-pool shards; each
// shard runs warm-started portfolio rounds over the job's matrix epochs
// exactly as advisor.SolveStream does, so a served job's result is
// bit-equal to running the same tenant through the unsharded streaming
// path. What the serving layer adds is sharing: a content-addressed Prep
// artifact cache (see Cache) lets tenants with identical cost matrices —
// common when they measure the same datacenter slice, or when a fleet of
// problems is re-advised against one published matrix — split the dominant
// preprocessing cost across the whole fleet, with streaming-epoch
// changed-row sets serving as the cross-shard invalidation messages.
package serve

import (
	"fmt"
	"hash/fnv"
	"sync"
	"sync/atomic"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// Job is one tenant's advising request: a deployment problem plus the
// epoch source feeding its cost matrices.
type Job struct {
	// Tenant identifies the requesting tenant; with Datacenter it forms the
	// routing key, so one tenant's jobs always land on one shard (and so
	// never race each other's warm state). Required.
	Tenant string
	// Datacenter optionally scopes the routing key for tenants deployed in
	// several datacenters.
	Datacenter string

	// Graph and Objective define the deployment problem; required.
	Graph     *core.Graph
	Objective solver.Objective

	// Epochs supplies the job's matrix epochs, as measure.Stream (or any
	// custom producer) publishes them; the job completes when the channel
	// closes. Exactly one of Epochs and Matrix must be set.
	Epochs <-chan measure.Epoch
	// Matrix is the single-epoch convenience: a job over one already
	// measured matrix, equivalent to a one-epoch stream.
	Matrix *core.CostMatrix

	// SolverName, ClusterK, RoundBudget, Seed, and Coalesce have their
	// advisor.StreamSolveConfig meanings. RoundBudget is required.
	SolverName  string
	ClusterK    int
	RoundBudget solver.Budget
	Seed        int64
	Coalesce    bool
}

// Result is one served job's outcome.
type Result struct {
	Tenant string
	// Shard is the worker shard that served the job.
	Shard int
	// Outcome is the streaming solve outcome (nil when Err is set); its
	// final deployment and cost are bit-equal to unsharded
	// advisor.SolveStream over the same epochs and configuration.
	Outcome *advisor.StreamOutcome
	Err     error
	// CacheHits and CacheMisses count the job's Prep artifact requests
	// served from, respectively computed into, the shared cache.
	CacheHits, CacheMisses int
	// Queued is how long the job waited for its shard; Ran is the solve
	// wall-clock time.
	Queued, Ran time.Duration
}

// Ticket is a handle on a submitted job.
type Ticket struct {
	done chan struct{}
	res  *Result
}

// Wait blocks until the job completes and returns its result.
func (t *Ticket) Wait() *Result {
	<-t.done
	return t.res
}

// Config sizes a Server.
type Config struct {
	// Shards is the number of worker-pool shards, each served by one
	// worker goroutine; <= 0 selects 2. Jobs on one shard run
	// sequentially; distinct shards run concurrently, so Shards bounds the
	// number of portfolio solves racing for the machine at once.
	Shards int
	// QueueDepth is each shard's pending-job capacity; <= 0 selects 16.
	// Submit rejects with ErrBusy when the routed shard's queue is full —
	// backpressure surfaces at admission instead of as unbounded memory.
	QueueDepth int
	// MaxPendingBudget, when positive, caps the summed per-round solver
	// time budgets of admitted-but-unfinished jobs. It is admission
	// control on promised wall-clock solve work: a fleet of millions of
	// tenants cannot queue more concurrent budget than the operator
	// provisioned for. Submit rejects with ErrOverBudget beyond it. Only
	// RoundBudget.Time is counted: a purely node-budgeted job promises
	// machine-independent work with no wall-clock bound to charge, so it
	// is admitted without consuming the cap — operators capping pending
	// work should hand tenants time budgets (or both axes).
	MaxPendingBudget time.Duration
	// Cache is the shared artifact cache; nil builds a fresh
	// NewCache(DefaultMaxMatrices). Several servers may share one cache.
	Cache *Cache
}

// Exported admission errors, so callers can tell transient rejection
// (retry later, or elsewhere) from permanent failure.
var (
	ErrBusy       = fmt.Errorf("serve: shard queue full")
	ErrOverBudget = fmt.Errorf("serve: pending solve budget exhausted")
	ErrClosed     = fmt.Errorf("serve: server closed")
)

// Server routes jobs onto shards and serves them against the shared cache.
type Server struct {
	cfg    Config
	cache  *Cache
	shards []chan task
	wg     sync.WaitGroup

	closed        atomic.Bool
	pendingBudget atomic.Int64 // summed RoundBudget.Time of admitted jobs, ns
	submitted     atomic.Int64
	rejected      atomic.Int64
	served        atomic.Int64
	failed        atomic.Int64

	// submitMu serializes Submit against Close: a send on a closed shard
	// channel would panic, so Close flips the flag and closes queues under
	// the same lock Submit holds while enqueueing.
	submitMu sync.Mutex
}

type task struct {
	job      Job
	ticket   *Ticket
	enqueued time.Time
}

// New starts a server. Callers must Close it to release the workers.
func New(cfg Config) *Server {
	if cfg.Shards <= 0 {
		cfg.Shards = 2
	}
	if cfg.QueueDepth <= 0 {
		cfg.QueueDepth = 16
	}
	cache := cfg.Cache
	if cache == nil {
		cache = NewCache(0)
	}
	s := &Server{cfg: cfg, cache: cache, shards: make([]chan task, cfg.Shards)}
	for i := range s.shards {
		s.shards[i] = make(chan task, cfg.QueueDepth)
		s.wg.Add(1)
		go s.worker(i)
	}
	return s
}

// Cache returns the server's shared artifact cache.
func (s *Server) Cache() *Cache { return s.cache }

// shardFor routes a tenant/datacenter key to a shard index.
func (s *Server) shardFor(tenant, datacenter string) int {
	h := fnv.New32a()
	h.Write([]byte(tenant))
	h.Write([]byte{0})
	h.Write([]byte(datacenter))
	return int(h.Sum32() % uint32(len(s.shards)))
}

// Submit validates and routes a job. It never blocks: a full shard queue
// rejects with ErrBusy, an exhausted pending budget with ErrOverBudget.
func (s *Server) Submit(job Job) (*Ticket, error) {
	if job.Tenant == "" {
		return nil, fmt.Errorf("serve: job without a tenant key")
	}
	if job.Graph == nil {
		return nil, fmt.Errorf("serve: job without a communication graph")
	}
	if (job.Epochs == nil) == (job.Matrix == nil) {
		return nil, fmt.Errorf("serve: job must set exactly one of Epochs and Matrix")
	}
	if job.RoundBudget.Unlimited() {
		return nil, fmt.Errorf("serve: job requires a bounded round budget")
	}
	// Build the graph's incidence caches up front (concurrent-safe; racing
	// Submits serialize behind one build) so shard workers never pay it
	// mid-solve on a graph shared by several jobs.
	job.Graph.EnsureIncidence()
	if s.closed.Load() {
		return nil, ErrClosed
	}
	if max := s.cfg.MaxPendingBudget; max > 0 {
		if pending := s.pendingBudget.Add(int64(job.RoundBudget.Time)); pending > int64(max) {
			s.pendingBudget.Add(-int64(job.RoundBudget.Time))
			s.rejected.Add(1)
			return nil, ErrOverBudget
		}
	}
	t := &Ticket{done: make(chan struct{})}
	tk := task{job: job, ticket: t, enqueued: time.Now()}

	s.submitMu.Lock()
	if s.closed.Load() {
		s.submitMu.Unlock()
		s.releaseBudget(job)
		return nil, ErrClosed
	}
	select {
	case s.shards[s.shardFor(job.Tenant, job.Datacenter)] <- tk:
		s.submitMu.Unlock()
		s.submitted.Add(1)
		return t, nil
	default:
		s.submitMu.Unlock()
		s.releaseBudget(job)
		s.rejected.Add(1)
		return nil, ErrBusy
	}
}

func (s *Server) releaseBudget(job Job) {
	if s.cfg.MaxPendingBudget > 0 {
		s.pendingBudget.Add(-int64(job.RoundBudget.Time))
	}
}

// Close stops admission, drains the queued jobs, and waits for the workers
// to finish them. Safe to call once.
func (s *Server) Close() {
	s.submitMu.Lock()
	if !s.closed.Swap(true) {
		for _, ch := range s.shards {
			close(ch)
		}
	}
	s.submitMu.Unlock()
	s.wg.Wait()
}

func (s *Server) worker(idx int) {
	defer s.wg.Done()
	for tk := range s.shards[idx] {
		res := s.runJob(idx, tk)
		s.releaseBudget(tk.job)
		if res.Err != nil {
			s.failed.Add(1)
		} else {
			s.served.Add(1)
		}
		tk.ticket.res = res
		close(tk.ticket.done)
	}
}

// runJob serves one job: the unsharded streaming loop with the cache
// bridge plugged into its OnProblem hook.
func (s *Server) runJob(shard int, tk task) *Result {
	job := tk.job
	res := &Result{Tenant: job.Tenant, Shard: shard, Queued: time.Since(tk.enqueued)}

	epochs := job.Epochs
	if epochs == nil {
		ch := make(chan measure.Epoch, 1)
		ch <- measure.Epoch{Index: 1, Final: true, Matrix: job.Matrix}
		close(ch)
		epochs = ch
	}

	br := &cacheBridge{cache: s.cache, solverName: job.SolverName, clusterK: job.ClusterK}
	start := time.Now()
	out, err := advisor.SolveStream(epochs, advisor.StreamSolveConfig{
		Graph:       job.Graph,
		Objective:   job.Objective,
		SolverName:  job.SolverName,
		ClusterK:    job.ClusterK,
		RoundBudget: job.RoundBudget,
		Seed:        job.Seed,
		Coalesce:    job.Coalesce,
		OnProblem:   br.onProblem,
	})
	res.Ran = time.Since(start)
	res.Outcome, res.Err = out, err
	res.CacheHits, res.CacheMisses = br.hits, br.misses
	return res
}

// Stats is a point-in-time server counter snapshot.
type Stats struct {
	// Submitted counts admitted jobs; Rejected counts ErrBusy and
	// ErrOverBudget refusals; Served and Failed partition completed jobs.
	Submitted, Rejected, Served, Failed int64
	// PendingBudget is the summed round budget of admitted-but-unfinished
	// jobs (0 unless MaxPendingBudget is configured).
	PendingBudget time.Duration
	// Cache is the shared cache's snapshot.
	Cache CacheStats
}

// Stats returns a snapshot of the server counters.
func (s *Server) Stats() Stats {
	return Stats{
		Submitted:     s.submitted.Load(),
		Rejected:      s.rejected.Load(),
		Served:        s.served.Load(),
		Failed:        s.failed.Load(),
		PendingBudget: time.Duration(s.pendingBudget.Load()),
		Cache:         s.cache.Stats(),
	}
}

// cacheBridge adapts the shared cache to advisor.SolveStream's OnProblem
// hook for one job. Fresh problems adopt (or compute and publish) the
// content-addressed artifacts their solver will need; evolved problems
// keep their incremental Prep lineage — bit-identical to the unsharded
// path — and instead emit the epoch's changed-row set as the cross-shard
// invalidation message retiring the previous fingerprint.
type cacheBridge struct {
	cache      *Cache
	solverName string
	clusterK   int

	prevFP       core.Fingerprint
	hits, misses int
}

func (b *cacheBridge) onProblem(prob, prev *solver.Problem, ep measure.Epoch, changedRows []int) error {
	fp := ep.Fingerprint
	if fp == 0 {
		fp = prob.Costs.Fingerprint()
	}
	defer func() { b.prevFP = fp }()

	if prev != nil {
		b.cache.Supersede(b.prevFP, fp, changedRows)
		return nil
	}

	// Resolve the same defaults SolveStream applies, so the bridge warms
	// the artifacts the solver will actually request.
	name := b.solverName
	if name == "" {
		name = "portfolio"
	}
	k := b.clusterK
	if k == 0 && (name == "cp" || name == "portfolio") {
		k = 20
	}
	prep := prob.Prep()
	switch name {
	case "cp", "portfolio":
		// CP consumes the pair list at every k, clustered or not.
		hit, err := b.cache.Rounded(fp, k, prep)
		if err != nil {
			return err
		}
		b.count(hit)
	case "mip":
		// Unclustered MIP reads the raw matrix directly and never asks
		// Prep for the k<=0 entry; warming it would sort ~m^2 pairs
		// nobody reads.
		if k > 0 {
			hit, err := b.cache.Rounded(fp, k, prep)
			if err != nil {
				return err
			}
			b.count(hit)
		}
	}
	switch name {
	case "g1", "portfolio":
		b.count(b.cache.CheapestRows(fp, prep))
	}
	return nil
}

func (b *cacheBridge) count(hit bool) {
	if hit {
		b.hits++
	} else {
		b.misses++
	}
}
