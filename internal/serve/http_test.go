package serve

import (
	"bufio"
	"bytes"
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"cloudia/internal/graphio"
)

func postJSON(t *testing.T, client *http.Client, url string, body any) *http.Response {
	t.Helper()
	var buf bytes.Buffer
	if err := json.NewEncoder(&buf).Encode(body); err != nil {
		t.Fatal(err)
	}
	resp, err := client.Post(url, "application/json", &buf)
	if err != nil {
		t.Fatal(err)
	}
	return resp
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
}

func graphPayload(t *testing.T, rows, cols int) json.RawMessage {
	t.Helper()
	var buf bytes.Buffer
	if err := graphio.WriteGraph(&buf, testGraph(t, rows, cols)); err != nil {
		t.Fatal(err)
	}
	return buf.Bytes()
}

func epochPayload(t *testing.T, tenant string, n int) map[string]any {
	t.Helper()
	rng := rand.New(rand.NewSource(71))
	m := testMatrix(rng, n)
	rows := make([]map[string]any, n)
	for i := 0; i < n; i++ {
		rows[i] = map[string]any{"row": i, "values": m.Row(i)}
	}
	return map[string]any{"tenant": tenant, "n": n, "rows": rows}
}

func TestHTTPEpochAdviseStats(t *testing.T) {
	d := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/epoch", epochPayload(t, "acme", 8))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("epoch status %d", resp.StatusCode)
	}
	var er epochResponse
	decodeBody(t, resp, &er)
	if er.Epoch != 1 || len(er.Fingerprint) != 16 {
		t.Fatalf("epoch response %+v", er)
	}

	resp = postJSON(t, ts.Client(), ts.URL+"/v1/advise", map[string]any{
		"tenant": "acme", "graph": graphPayload(t, 2, 3),
		"solver": "cp", "cluster_k": 4, "budget_nodes": 5000, "seed": 3,
	})
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("advise status %d", resp.StatusCode)
	}
	var ar adviseResponse
	decodeBody(t, resp, &ar)
	if ar.Err != "" || len(ar.Deployment) != 6 || ar.Rounds == 0 {
		t.Fatalf("advise response %+v", ar)
	}

	resp, err := ts.Client().Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var st statsResponse
	decodeBody(t, resp, &st)
	if len(st.Tenants) != 1 || st.Tenants[0].Tenant != "acme" || !st.Tenants[0].Advised {
		t.Fatalf("stats %+v", st)
	}
	if st.Server.Served != 1 {
		t.Fatalf("served = %d", st.Server.Served)
	}

	resp, err = ts.Client().Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d", resp.StatusCode)
	}
}

func TestHTTPAdviseStream(t *testing.T) {
	d := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/epoch", epochPayload(t, "acme", 8))
	resp.Body.Close()

	resp = postJSON(t, ts.Client(), ts.URL+"/v1/advise", map[string]any{
		"tenant": "acme", "graph": graphPayload(t, 2, 3),
		"solver": "cp", "cluster_k": 4, "budget_nodes": 5000, "stream": true,
	})
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); ct != "application/x-ndjson" {
		t.Fatalf("stream content type %q", ct)
	}
	var lines []string
	sc := bufio.NewScanner(resp.Body)
	for sc.Scan() {
		lines = append(lines, sc.Text())
	}
	if len(lines) < 2 {
		t.Fatalf("stream produced %d lines, want at least one round plus the advice", len(lines))
	}
	var round roundJSON
	if err := json.Unmarshal([]byte(lines[0]), &round); err != nil || round.Round != 1 {
		t.Fatalf("first stream line %q (err %v)", lines[0], err)
	}
	var final adviseResponse
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &final); err != nil || final.Err != "" || len(final.Deployment) != 6 {
		t.Fatalf("final stream line %q (err %v)", lines[len(lines)-1], err)
	}

	// Streaming against an unknown tenant delivers the error in-band.
	resp = postJSON(t, ts.Client(), ts.URL+"/v1/advise", map[string]any{
		"tenant": "ghost", "graph": graphPayload(t, 2, 3), "stream": true,
	})
	var inBand adviseResponse
	decodeBody(t, resp, &inBand)
	if !strings.Contains(inBand.Err, "unknown tenant") {
		t.Fatalf("in-band stream error %q", inBand.Err)
	}
}

func TestHTTPErrorMapping(t *testing.T) {
	d := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	defer d.Close()
	ts := httptest.NewServer(d.Handler())
	defer ts.Close()

	resp := postJSON(t, ts.Client(), ts.URL+"/v1/epoch", epochPayload(t, "acme", 8))
	resp.Body.Close()

	cases := []struct {
		name    string
		path    string
		body    any
		code    int
		errCode string
	}{
		{"malformed epoch", "/v1/epoch", "not json", http.StatusBadRequest, "bad_request"},
		{"invalid epoch", "/v1/epoch", map[string]any{"tenant": "acme", "n": 3}, http.StatusBadRequest, "bad_request"},
		{"malformed advise", "/v1/advise", "not json", http.StatusBadRequest, "bad_request"},
		{"advise without graph", "/v1/advise", map[string]any{"tenant": "acme"}, http.StatusBadRequest, "bad_request"},
		{"advise bad graph", "/v1/advise", map[string]any{"tenant": "acme", "graph": map[string]any{"bogus": 1}}, http.StatusBadRequest, "bad_request"},
		{"advise bad objective", "/v1/advise", map[string]any{
			"tenant": "acme", "graph": graphPayload(t, 2, 2), "objective": "shortest-selfie",
		}, http.StatusBadRequest, "bad_request"},
		{"advise bad metric", "/v1/advise", map[string]any{
			"tenant": "acme", "graph": graphPayload(t, 2, 2), "metric": "p42",
		}, http.StatusBadRequest, "bad_request"},
		{"advise unknown tenant", "/v1/advise", map[string]any{
			"tenant": "ghost", "graph": graphPayload(t, 2, 2),
		}, http.StatusNotFound, "unknown_tenant"},
	}
	for _, tc := range cases {
		resp := postJSON(t, ts.Client(), ts.URL+tc.path, tc.body)
		if resp.StatusCode != tc.code {
			t.Errorf("%s: status %d, want %d", tc.name, resp.StatusCode, tc.code)
		}
		var e errorJSON
		decodeBody(t, resp, &e)
		if e.Error.Message == "" {
			t.Errorf("%s: no error message", tc.name)
		}
		if e.Error.Code != tc.errCode {
			t.Errorf("%s: error code %q, want %q", tc.name, e.Error.Code, tc.errCode)
		}
	}

	// Transient admission rejections advertise a retry — in the Retry-After
	// header and as retry_after_ms in the structured body.
	decodeErr := func(rec *httptest.ResponseRecorder) errorBody {
		var e errorJSON
		if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
			t.Fatalf("error body %q: %v", rec.Body.String(), err)
		}
		return e.Error
	}
	rec := httptest.NewRecorder()
	httpError(rec, fmt.Errorf("wrapped: %w", ErrBusy))
	if rec.Code != http.StatusTooManyRequests || rec.Header().Get("Retry-After") == "" {
		t.Fatalf("ErrBusy mapped to %d (Retry-After %q)", rec.Code, rec.Header().Get("Retry-After"))
	}
	if e := decodeErr(rec); e.Code != "busy" || e.RetryAfterMS <= 0 {
		t.Fatalf("ErrBusy body = %+v", e)
	}
	rec = httptest.NewRecorder()
	httpError(rec, fmt.Errorf("wrapped: %w", ErrOverBudget))
	if e := decodeErr(rec); rec.Code != http.StatusTooManyRequests || e.Code != "over_budget" || e.RetryAfterMS <= 0 {
		t.Fatalf("ErrOverBudget mapped to %d, body %+v", rec.Code, e)
	}
	rec = httptest.NewRecorder()
	httpError(rec, fmt.Errorf("wrapped: %w", ErrClosed))
	if e := decodeErr(rec); rec.Code != http.StatusServiceUnavailable || e.Code != "closed" || e.RetryAfterMS <= 0 {
		t.Fatalf("ErrClosed mapped to %d, body %+v", rec.Code, e)
	}
}
