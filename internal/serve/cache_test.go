package serve

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

func cacheTestProblem(t testing.TB, m *core.CostMatrix) *solver.Problem {
	t.Helper()
	g := testGraph(t, 2, 4)
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// A cache hit must hand the adopter the donor's exact artifacts, and those
// must be bit-identical to what the adopter would have computed.
func TestCacheRoundedHitServesDonorArtifacts(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := testMatrix(rng, 12)
	fp := m.Fingerprint()
	c := NewCache(4)

	donor := cacheTestProblem(t, m)
	hit, err := c.Rounded(fp, 4, donor.Prep())
	if err != nil {
		t.Fatal(err)
	}
	if hit {
		t.Fatal("first request reported a hit")
	}
	adopter := cacheTestProblem(t, m.Clone())
	hit, err = c.Rounded(fp, 4, adopter.Prep())
	if err != nil {
		t.Fatal(err)
	}
	if !hit {
		t.Fatal("second request over equal content missed")
	}
	dm, dPairs, _ := donor.Prep().Rounded(4)
	am, aPairs, _ := adopter.Prep().Rounded(4)
	if dm != am || !reflect.DeepEqual(dPairs, aPairs) {
		t.Fatal("adopted artifacts are not the donor's")
	}
	cold := cacheTestProblem(t, m.Clone())
	cm, cPairs, _ := cold.Prep().Rounded(4)
	for i := 0; i < m.Size(); i++ {
		if !reflect.DeepEqual(cm.Row(i), am.Row(i)) {
			t.Fatalf("row %d of cached artifact differs from a cold compute", i)
		}
	}
	if !reflect.DeepEqual(cPairs, aPairs) {
		t.Fatal("cached pair list differs from a cold compute")
	}
}

func TestCacheCheapestRowsHit(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	m := testMatrix(rng, 10)
	fp := m.Fingerprint()
	c := NewCache(4)
	donor := cacheTestProblem(t, m)
	if hit := c.CheapestRows(fp, donor.Prep()); hit {
		t.Fatal("first rows request reported a hit")
	}
	adopter := cacheTestProblem(t, m.Clone())
	if hit := c.CheapestRows(fp, adopter.Prep()); !hit {
		t.Fatal("second rows request missed")
	}
	dr, ar := donor.Prep().CheapestRows(), adopter.Prep().CheapestRows()
	if &dr[0][0] != &ar[0][0] {
		t.Fatal("adopted rows are not shared with the donor")
	}
}

// Distinct cluster counts are distinct artifacts under one fingerprint.
func TestCachePerClusterK(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	m := testMatrix(rng, 10)
	fp := m.Fingerprint()
	c := NewCache(4)
	p := cacheTestProblem(t, m)
	if _, err := c.Rounded(fp, 3, p.Prep()); err != nil {
		t.Fatal(err)
	}
	if hit, _ := c.Rounded(fp, 5, p.Prep()); hit {
		t.Fatal("k=5 hit the k=3 artifact")
	}
	p2 := cacheTestProblem(t, m.Clone())
	if hit, _ := c.Rounded(fp, 5, p2.Prep()); !hit {
		t.Fatal("k=5 artifact not shared on second request")
	}
}

// LRU capacity must evict the least recently used fingerprint.
func TestCacheEviction(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	c := NewCache(2)
	var fps []core.Fingerprint
	for i := 0; i < 3; i++ {
		m := testMatrix(rng, 8)
		fp := m.Fingerprint()
		fps = append(fps, fp)
		p := cacheTestProblem(t, m)
		if _, err := c.Rounded(fp, 3, p.Prep()); err != nil {
			t.Fatal(err)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 || st.Matrices != 2 {
		t.Fatalf("evictions=%d matrices=%d, want 1 and 2", st.Evictions, st.Matrices)
	}
	// The first fingerprint was the LRU victim: re-requesting it misses.
	m := testMatrix(rand.New(rand.NewSource(4)), 8) // same seed: same first matrix
	p := cacheTestProblem(t, m)
	if hit, _ := c.Rounded(fps[0], 3, p.Prep()); hit {
		t.Fatal("evicted fingerprint still hit")
	}
}

// Supersede retires the old fingerprint's artifacts; the new fingerprint
// is unaffected, and superseding an absent or identical key is a no-op.
func TestCacheSupersede(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	m := testMatrix(rng, 8)
	fp := m.Fingerprint()
	c := NewCache(4)
	p := cacheTestProblem(t, m)
	if _, err := c.Rounded(fp, 3, p.Prep()); err != nil {
		t.Fatal(err)
	}
	c.Supersede(fp, fp, []int{1})  // same content: no-op
	c.Supersede(0, fp+1, []int{1}) // absent old: no-op
	c.Supersede(fp, fp+1, nil)     // empty change set: no-op
	if st := c.Stats(); st.Superseded != 0 || st.Matrices != 1 {
		t.Fatalf("no-op supersedes mutated the cache: %+v", st)
	}
	c.Supersede(fp, fp+1, []int{0, 3})
	st := c.Stats()
	if st.Superseded != 1 || st.Matrices != 0 {
		t.Fatalf("supersede did not retire the old fingerprint: %+v", st)
	}
}

// 16 goroutines hammer concurrent lookups over a handful of fingerprints
// while an invalidator races Supersede and capacity evictions against
// them. Run under -race; correctness assertion: every adopted artifact
// matches a cold compute for its content.
func TestCacheConcurrentLookupsRacingInvalidation(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	const matrices = 4
	type content struct {
		m  *core.CostMatrix
		fp core.Fingerprint
	}
	var contents []content
	for i := 0; i < matrices; i++ {
		m := testMatrix(rng, 10)
		contents = append(contents, content{m: m, fp: m.Fingerprint()})
	}
	// Reference artifacts from cold computes.
	refPairs := make([][]core.CostPair, matrices)
	for i, ct := range contents {
		p := cacheTestProblem(t, ct.m.Clone())
		_, pairs, err := p.Prep().Rounded(3)
		if err != nil {
			t.Fatal(err)
		}
		refPairs[i] = pairs
	}

	c := NewCache(2) // tight capacity: evictions race the lookups too
	stop := make(chan struct{})
	var invalidator sync.WaitGroup
	invalidator.Add(1)
	go func() {
		defer invalidator.Done()
		i := 0
		for {
			select {
			case <-stop:
				return
			default:
			}
			ct := contents[i%matrices]
			c.Supersede(ct.fp, ct.fp+1, []int{0})
			i++
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			for iter := 0; iter < 40; iter++ {
				idx := rng.Intn(matrices)
				ct := contents[idx]
				p := cacheTestProblem(t, ct.m.Clone())
				if _, err := c.Rounded(ct.fp, 3, p.Prep()); err != nil {
					t.Error(err)
					return
				}
				_, pairs, err := p.Prep().Rounded(3)
				if err != nil {
					t.Error(err)
					return
				}
				if !reflect.DeepEqual(pairs, refPairs[idx]) {
					t.Errorf("goroutine %d iter %d: adopted artifact diverged from cold compute", g, iter)
					return
				}
				c.CheapestRows(ct.fp, p.Prep())
			}
		}(g)
	}
	wg.Wait()
	close(stop)
	invalidator.Wait()
}
