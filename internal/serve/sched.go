package serve

import (
	"container/heap"
	"sync"
	"time"
)

// This file implements the pull-based job scheduler behind Server: a shared
// ready queue with per-tenant weighted-fair accounting, pulled by shard
// workers that steal across shard boundaries when their own tenants are
// idle. It replaces the push-based per-shard channel queues of the first
// serving layer, whose static hash routing let one hot tenant starve its
// shard's other tenants while neighbouring shards sat idle.
//
// The design is the iterator-composition/worker-pool shape of streaming
// query executors: producers (Submit) only append work to per-tenant FIFO
// queues; consumers (shard workers) lazily pull the next job when — and
// only when — they have capacity, so no stage ever buffers or copies epochs
// ahead of demand. Jobs flow as references the whole way down: an admitted
// task holds the caller's Job verbatim (epoch channel, matrix pointer,
// graph pointer), and nothing between Submit and SolveStream clones a
// matrix or a Prep artifact.
//
// Fairness is stride-scheduling over declared budgets. Every tenant carries
// a virtual time (vtime): dispatching one of its jobs charges the job's
// declared round budget divided by the tenant's weight, and the ready queue
// is a min-heap on vtime. A hot tenant's backlog therefore advances its
// vtime far ahead after a few dispatches, and every lightly-loaded tenant's
// next job sorts in front of the remaining backlog — the hot tenant can
// delay a light tenant by at most the one in-flight job (execution is
// non-preemptive), not by its whole queue. A tenant going idle does not
// bank credit: on re-arrival its vtime is raised to the scheduler's virtual
// clock (the vtime of the last dispatch), the standard start-time rule that
// stops a returning tenant from monopolizing the workers to "catch up".
//
// Shard affinity survives as a soft preference, not a hard route: every
// tenant still hashes to a home shard, and a worker always prefers its own
// home tenants (keeping one tenant's evolving jobs on one worker in the
// common balanced case). A worker whose home tenants are all idle or busy
// steals the lowest-vtime ready tenant from any other shard instead of
// idling. Stealing moves only the dispatch — a job runs the same
// deterministic SolveStream wherever it lands, so served results are
// bit-equal regardless of steal interleavings (asserted in the equivalence
// and determinism tests).
type sched struct {
	mu   sync.Mutex
	cond *sync.Cond

	tenants map[string]*tenantState
	ready   []readyHeap // one min-vtime heap per shard (home tenants only)

	// capacity bounds queued (admitted-but-undispatched tasks); budgetCap
	// and tenantBudgetCap bound the summed declared wall-clock budgets of
	// admitted-but-unfinished jobs, globally and per tenant. Zero caps are
	// unlimited. noSteal pins dispatch to home shards (the static-sharding
	// ablation the skewed-tenant benchmark compares against).
	capacity        int
	budgetCap       int64
	tenantBudgetCap int64
	noSteal         bool

	// vclock is the vtime of the most recent dispatch; newly arriving idle
	// tenants start at it (see above).
	vclock float64

	// queued counts admitted-but-undispatched tasks across all tenants;
	// outstanding additionally counts dispatched-but-unfinished ones, so
	// close() can wait for a full drain. pendingBudget sums the declared
	// time budgets (ns) of outstanding jobs.
	queued        int
	outstanding   int
	pendingBudget int64

	seq    int64 // admission counter, tie-break for equal vtimes
	closed bool
	steals int64
}

// tenantState is one tenant key's scheduling state. A tenant is on exactly
// one ready heap when it has pending jobs and none in flight; it is on no
// heap while idle or while a job runs (per-tenant execution is serialized,
// preserving the old one-tenant-one-shard warm-state guarantee).
type tenantState struct {
	key  string
	home int // home shard (hash of tenant/datacenter)

	pending []task  // FIFO backlog
	running bool    // a job is in flight
	vtime   float64 // accumulated charged service, ns per unit weight
	weight  float64 // fairness weight (Job.Weight of the first admission)

	// pendingBudget sums the declared time budgets (ns) of this tenant's
	// admitted-but-unfinished jobs — the per-tenant admission accounting
	// that replaced per-shard queue depth.
	pendingBudget int64

	// heapIdx locates the tenant on its home ready heap (-1 when off).
	heapIdx int

	seq int64 // seq of the head pending task, dispatch-order tie-break
}

// readyHeap orders ready tenants by (vtime, admission seq). The seq
// tie-break makes dispatch order deterministic for tenants with identical
// charges, e.g. a fresh fleet submitting equal jobs in a loop.
type readyHeap struct {
	ts []*tenantState
}

func (h readyHeap) Len() int           { return len(h.ts) }
func (h readyHeap) Less(i, j int) bool { return readyLess(h.ts[i], h.ts[j]) }
func (h readyHeap) Swap(i, j int) {
	h.ts[i], h.ts[j] = h.ts[j], h.ts[i]
	h.ts[i].heapIdx = i
	h.ts[j].heapIdx = j
}
func (h *readyHeap) Push(x any) {
	t := x.(*tenantState)
	t.heapIdx = len(h.ts)
	h.ts = append(h.ts, t)
}
func (h *readyHeap) Pop() any {
	t := h.ts[len(h.ts)-1]
	h.ts = h.ts[:len(h.ts)-1]
	t.heapIdx = -1
	return t
}

// readyLess compares ready tenants by (vtime, head-task admission order).
func readyLess(a, b *tenantState) bool {
	if a.vtime != b.vtime {
		return a.vtime < b.vtime
	}
	return a.seq < b.seq
}

func newSched(shards, capacity int, budgetCap, tenantBudgetCap time.Duration, noSteal bool) *sched {
	s := &sched{
		tenants:         make(map[string]*tenantState),
		ready:           make([]readyHeap, shards),
		capacity:        capacity,
		budgetCap:       int64(budgetCap),
		tenantBudgetCap: int64(tenantBudgetCap),
		noSteal:         noSteal,
	}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// charge converts a job's declared budget into fairness units (ns-like).
// Time budgets charge their duration; purely node-budgeted jobs charge
// their node count — nodes are the machine-independent work unit, and a
// fleet mixing the two axes still gets a consistent ordering within each
// kind.
func charge(j Job) float64 {
	if j.RoundBudget.Time > 0 {
		return float64(j.RoundBudget.Time)
	}
	return float64(j.RoundBudget.Nodes)
}

// timeBudget is the admission-accounting cost of a job: only wall-clock
// budgets count (a node-budgeted job promises machine-independent work with
// no wall-clock bound to charge, mirroring the original MaxPendingBudget
// contract).
func timeBudget(j Job) int64 { return int64(j.RoundBudget.Time) }

// submit performs admission control and enqueues the task atomically. The
// budget caps are checked before capacity, so an over-budget job reports
// the sharper error even when the queue is also full.
func (s *sched) submit(key string, home int, weight float64, j Job, tk *Ticket) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.closed {
		return ErrClosed
	}
	cost := timeBudget(j)
	if s.budgetCap > 0 && s.pendingBudget+cost > s.budgetCap {
		return ErrOverBudget
	}
	t, ok := s.tenants[key]
	if s.tenantBudgetCap > 0 && ok && t.pendingBudget+cost > s.tenantBudgetCap {
		return ErrOverBudget
	}
	if s.capacity > 0 && s.queued >= s.capacity {
		return ErrBusy
	}
	if !ok {
		if weight <= 0 {
			weight = 1
		}
		t = &tenantState{key: key, home: home, weight: weight, heapIdx: -1}
		s.tenants[key] = t
	}
	s.seq++
	task := task{job: j, ticket: tk, enqueued: time.Now(), seq: s.seq}
	if len(t.pending) == 0 && !t.running {
		// Returning from idle: no banked credit (see file comment).
		if t.vtime < s.vclock {
			t.vtime = s.vclock
		}
		t.seq = task.seq
		heap.Push(&s.ready[t.home], t)
	}
	t.pending = append(t.pending, task)
	t.pendingBudget += cost
	s.pendingBudget += cost
	s.queued++
	s.outstanding++
	s.cond.Signal()
	return nil
}

// next blocks until a task is ready and returns it, preferring the calling
// shard's own home tenants and stealing the lowest-vtime ready tenant from
// another shard otherwise. ok=false means the scheduler is closed and fully
// drained. stolen reports a cross-shard steal.
func (s *sched) next(shard int) (tk task, stolen bool, ok bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	for {
		if t := s.pickLocked(shard); t != nil {
			stolen = t.home != shard
			if stolen {
				s.steals++
			}
			tk = t.pending[0]
			t.pending[0] = task{} // release the Job's references early
			t.pending = t.pending[1:]
			t.running = true
			s.queued--
			if t.vtime > s.vclock {
				s.vclock = t.vtime
			}
			t.vtime += charge(tk.job) / t.weight
			return tk, stolen, true
		}
		if s.closed && s.outstanding == 0 {
			return task{}, false, false
		}
		s.cond.Wait()
	}
}

// pickLocked selects the next ready tenant for a shard: its own heap's
// minimum if any, else (stealing enabled) the lowest-vtime ready tenant
// across the other shards' heaps.
func (s *sched) pickLocked(shard int) *tenantState {
	if own := &s.ready[shard]; own.Len() > 0 {
		return heap.Pop(own).(*tenantState)
	}
	if s.noSteal {
		return nil
	}
	best := -1
	for i := range s.ready {
		if i == shard || s.ready[i].Len() == 0 {
			continue
		}
		if best < 0 || readyLess(s.ready[i].ts[0], s.ready[best].ts[0]) {
			best = i
		}
	}
	if best < 0 {
		return nil
	}
	return heap.Pop(&s.ready[best]).(*tenantState)
}

// done retires a dispatched task: the tenant's in-flight slot frees, its
// admission budget is released, and its next pending job (if any) re-enters
// the ready queue.
func (s *sched) done(key string, tk task) {
	s.mu.Lock()
	t := s.tenants[key]
	t.running = false
	cost := timeBudget(tk.job)
	t.pendingBudget -= cost
	s.pendingBudget -= cost
	s.outstanding--
	if len(t.pending) > 0 {
		t.seq = t.pending[0].seq
		heap.Push(&s.ready[t.home], t)
	}
	// Broadcast, not Signal: completion can unblock both a worker waiting
	// for work and Close waiting for the drain.
	s.cond.Broadcast()
	s.mu.Unlock()
}

// close stops admission and wakes every waiting worker so they can drain
// the backlog and exit.
func (s *sched) close() {
	s.mu.Lock()
	s.closed = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// pending reports the summed declared time budgets of outstanding jobs.
func (s *sched) pending() time.Duration {
	s.mu.Lock()
	defer s.mu.Unlock()
	return time.Duration(s.pendingBudget)
}

// queuedTasks reports the admitted-but-undispatched task count.
func (s *sched) queuedTasks() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.queued
}

// stealCount reports the number of cross-shard steals so far.
func (s *sched) stealCount() int64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.steals
}
