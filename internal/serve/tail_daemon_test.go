package serve

import (
	"math/rand"
	"reflect"
	"strings"
	"testing"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// tailRowsOf derives a full tail-row set from a mean matrix: each off-
// diagonal cell sits a deterministic link-dependent factor above the mean,
// so the percentile matrix orders links differently from the mean one.
func tailRowsOf(m *core.CostMatrix) []wal.RowDelta {
	n := m.Size()
	rows := make([]wal.RowDelta, n)
	for i := 0; i < n; i++ {
		vals := make([]float64, n)
		for j := 0; j < n; j++ {
			if i != j {
				vals[j] = m.At(i, j) * (1.1 + 0.5*float64((i*n+j)%7)/7)
			}
		}
		rows[i] = wal.RowDelta{Row: i, Values: vals}
	}
	return rows
}

// TestDaemonTailRestartBitEqual: a tenant posting tail rows with its epochs
// must get bit-equal p99 advice from a restarted daemon — tail rows ride
// the same WAL records as mean rows, compaction snapshots carry the tail
// matrix, and recovery verifies the tail fingerprint bit-for-bit.
// CompactEvery=2 forces the snapshot path into the replayed history.
func TestDaemonTailRestartBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	g := testGraph(t, 2, 3)
	const n = 8
	m := testMatrix(rng, n)
	budget := solver.Budget{Nodes: 20_000}
	p99 := AdviseRequest{
		Tenant: "acme", Graph: g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink, Metric: advisor.MetricP99},
		SolverName:    "cp", ClusterK: 4, RoundBudget: budget, Seed: 2,
	}

	drive := func(d *Daemon) core.Fingerprint {
		t.Helper()
		if _, _, err := d.AppendEpoch("acme", n, fullRows(m), &TailUpdate{Pct: 99, Rows: tailRowsOf(m)}); err != nil {
			t.Fatal(err)
		}
		adviseOK(t, d, p99)
		// Two partial epochs: one mean row and one tail row each, exercising
		// the delta fold on both matrices (and a compaction in between).
		meanRow := append([]float64(nil), m.Row(3)...)
		tailRow := append([]float64(nil), tailRowsOf(m)[5].Values...)
		var fp core.Fingerprint
		for e := 0; e < 2; e++ {
			for j := range meanRow {
				if j != 3 {
					meanRow[j] *= 1.2
				}
				if j != 5 {
					tailRow[j] *= 1.3
				}
			}
			var err error
			_, fp, err = d.AppendEpoch("acme", n,
				[]wal.RowDelta{{Row: 3, Values: append([]float64(nil), meanRow...)}},
				&TailUpdate{Pct: 99, Rows: []wal.RowDelta{{Row: 5, Values: append([]float64(nil), tailRow...)}}})
			if err != nil {
				t.Fatal(err)
			}
		}
		return fp
	}

	control := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}, CompactEvery: 2})
	ctrlFP := drive(control)
	want := adviseOK(t, control, p99)
	control.Close()

	dir := t.TempDir()
	crashed := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}, CompactEvery: 2})
	if fp := drive(crashed); fp != ctrlFP {
		t.Fatalf("workload fingerprints diverge before the restart: %016x != %016x", uint64(fp), uint64(ctrlFP))
	}
	crashed.Close()

	reopened := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}, CompactEvery: 2})
	defer reopened.Close()
	got := adviseOK(t, reopened, p99)
	if !reflect.DeepEqual(got.Outcome.Deployment, want.Outcome.Deployment) || got.Outcome.Cost != want.Outcome.Cost {
		t.Fatalf("post-restart p99 advice diverged: %v (%g) != %v (%g)",
			got.Outcome.Deployment, got.Outcome.Cost, want.Outcome.Deployment, want.Outcome.Cost)
	}
}

// TestDaemonTailValidation covers the tail-specific input contract: the
// percentile range, the one-percentile-per-tenant rule, tail row checks,
// and percentile advise against missing or mismatched tail state.
func TestDaemonTailValidation(t *testing.T) {
	d := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	defer d.Close()
	rng := rand.New(rand.NewSource(89))
	const n = 6
	m := testMatrix(rng, n)
	g := testGraph(t, 2, 3)
	budget := solver.Budget{Nodes: 5_000}

	appendTail := func(tenant string, tail *TailUpdate) error {
		_, _, err := d.AppendEpoch(tenant, n, fullRows(m), tail)
		return err
	}
	expectErr := func(name string, err error, want string) {
		t.Helper()
		if err == nil || !strings.Contains(err.Error(), want) {
			t.Fatalf("%s: err = %v, want mention of %q", name, err, want)
		}
	}

	expectErr("pct 0", appendTail("a", &TailUpdate{Pct: 0, Rows: tailRowsOf(m)}), "(0,100)")
	expectErr("pct 100", appendTail("a", &TailUpdate{Pct: 100, Rows: tailRowsOf(m)}), "(0,100)")
	expectErr("bad tail row", appendTail("a", &TailUpdate{
		Pct: 99, Rows: []wal.RowDelta{{Row: n, Values: make([]float64, n)}},
	}), "tail")

	// A mean-only tenant cannot be advised on a percentile metric.
	if err := appendTail("meanonly", nil); err != nil {
		t.Fatal(err)
	}
	_, err := d.Advise(AdviseRequest{
		Tenant: "meanonly", Graph: g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink, Metric: advisor.MetricP99},
		SolverName:    "cp", ClusterK: 4, RoundBudget: budget,
	})
	expectErr("percentile advise without tails", err, "has no percentile matrix")

	// One tail percentile per tenant, and advice must ask for that one.
	if err := appendTail("tailed", &TailUpdate{Pct: 99, Rows: tailRowsOf(m)}); err != nil {
		t.Fatal(err)
	}
	_, _, err = d.AppendEpoch("tailed", n,
		[]wal.RowDelta{{Row: 0, Values: append([]float64(nil), m.Row(0)...)}},
		&TailUpdate{Pct: 95, Rows: []wal.RowDelta{{Row: 0, Values: tailRowsOf(m)[0].Values}}})
	expectErr("pct change", err, "one tail percentile per tenant")
	_, err = d.Advise(AdviseRequest{
		Tenant: "tailed", Graph: g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink, Metric: advisor.MetricP95},
		SolverName:    "cp", ClusterK: 4, RoundBudget: budget,
	})
	expectErr("pct mismatch advise", err, "wants p95")

	// The happy path still holds after the rejections: p99 advice works.
	adviseOK(t, d, AdviseRequest{
		Tenant: "tailed", Graph: g,
		ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink, Metric: advisor.MetricP99},
		SolverName:    "cp", ClusterK: 4, RoundBudget: budget,
	})
}
