package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// testGraph builds a small mesh communication graph.
func testGraph(t testing.TB, rows, cols int) *core.Graph {
	t.Helper()
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testMatrix builds a random instances x instances cost matrix.
func testMatrix(rng *rand.Rand, instances int) *core.CostMatrix {
	m := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

// epochSeq materializes a fixed epoch sequence so it can be replayed for
// both the sharded and the unsharded side.
func epochSeq(epochs []measure.Epoch) <-chan measure.Epoch {
	ch := make(chan measure.Epoch, len(epochs))
	for _, ep := range epochs {
		ch <- ep
	}
	close(ch)
	return ch
}

// evolveEpochs builds an e-epoch sequence over one mutable matrix: each
// epoch perturbs a few rows, carrying exact changed-row sets and
// incremental fingerprints.
func evolveEpochs(t testing.TB, rng *rand.Rand, instances, epochs int) []measure.Epoch {
	t.Helper()
	mm := core.NewMutableCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				mm.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	out := make([]measure.Epoch, 0, epochs)
	for e := 1; e <= epochs; e++ {
		if e > 1 {
			for r := 0; r < 2; r++ {
				i := rng.Intn(instances)
				for j := 0; j < instances; j++ {
					if i != j {
						mm.Set(i, j, 0.2+rng.Float64())
					}
				}
			}
		}
		fp := mm.Fingerprint()
		m, changed := mm.Snapshot()
		out = append(out, measure.Epoch{
			Index: e, AtMS: float64(e), Final: e == epochs,
			Matrix: m, ChangedRows: changed, Fingerprint: fp,
		})
	}
	return out
}

// Served results must be bit-equal to the unsharded streaming path for the
// same tenant configuration — across solvers that use each cached artifact
// kind and across multi-epoch jobs that evolve their problems.
func TestServeMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testGraph(t, 3, 4) // 12 nodes
	const instances = 16
	budget := solver.Budget{Nodes: 30_000}

	for _, solverName := range []string{"cp", "g1", "sa"} {
		t.Run(solverName, func(t *testing.T) {
			shared := evolveEpochs(t, rng, instances, 3)
			srv := New(Config{Shards: 3})
			defer srv.Close()

			const tenants = 6
			tickets := make([]*Ticket, tenants)
			for tn := 0; tn < tenants; tn++ {
				var err error
				tickets[tn], err = srv.Submit(Job{
					Tenant:        fmt.Sprintf("tenant-%d", tn),
					Graph:         g,
					ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
					Epochs:        epochSeq(shared),
					SolverName:    solverName,
					ClusterK:      4,
					RoundBudget:   budget,
					Seed:          int64(100 + tn),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for tn := 0; tn < tenants; tn++ {
				res := tickets[tn].Wait()
				if res.Err != nil {
					t.Fatalf("tenant %d: %v", tn, res.Err)
				}
				want, err := advisor.SolveStream(epochSeq(shared), advisor.StreamSolveConfig{
					Graph:         g,
					ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
					SolverName:    solverName,
					ClusterK:      4,
					RoundBudget:   budget,
					Seed:          int64(100 + tn),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Outcome.Deployment, want.Deployment) {
					t.Fatalf("tenant %d: served deployment %v != unsharded %v", tn, res.Outcome.Deployment, want.Deployment)
				}
				if res.Outcome.Cost != want.Cost {
					t.Fatalf("tenant %d: served cost %v != unsharded %v", tn, res.Outcome.Cost, want.Cost)
				}
			}
		})
	}
}

// Tenants sharing one matrix must share one preprocessing pass: every
// artifact kind computes once and the rest of the fleet hits the cache.
func TestServeCrossTenantCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testGraph(t, 3, 4)
	m := testMatrix(rng, 16)
	srv := New(Config{Shards: 4})
	defer srv.Close()

	const tenants = 8
	tickets := make([]*Ticket, tenants)
	for tn := range tickets {
		var err error
		tickets[tn], err = srv.Submit(Job{
			Tenant:        fmt.Sprintf("t%d", tn),
			Graph:         g,
			ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			Matrix:        m,
			SolverName:    "cp",
			ClusterK:      4,
			RoundBudget:   solver.Budget{Nodes: 10_000},
			Seed:          int64(tn),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for _, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		hits += res.CacheHits
	}
	if hits != tenants-1 {
		t.Fatalf("cross-tenant hits = %d, want %d (one compute, rest adopt)", hits, tenants-1)
	}
	st := srv.Stats()
	if st.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 compute for the shared matrix", st.Cache.Misses)
	}
	if st.Served != tenants {
		t.Fatalf("served = %d, want %d", st.Served, tenants)
	}
}

// One tenant key must always land on one shard; distinct keys spread.
func TestServeRoutingStable(t *testing.T) {
	srv := New(Config{Shards: 4})
	defer srv.Close()
	a := srv.shardFor("alice", "dc1")
	for i := 0; i < 10; i++ {
		if srv.shardFor("alice", "dc1") != a {
			t.Fatal("routing is not stable")
		}
	}
	if srv.shardFor("alice", "dc1") == srv.shardFor("alice", "dc2") &&
		srv.shardFor("alice", "dc1") == srv.shardFor("bob", "dc1") &&
		srv.shardFor("alice", "dc1") == srv.shardFor("carol", "dc1") {
		t.Fatal("all distinct keys landed on one shard (suspicious hash)")
	}
}

// Admission control: full queues reject with ErrBusy, budget exhaustion
// with ErrOverBudget, closed servers with ErrClosed; rejected and drained
// jobs release their accounted budget.
func TestServeBackpressureAndBudget(t *testing.T) {
	g := testGraph(t, 2, 3)
	rng := rand.New(rand.NewSource(13))
	m := testMatrix(rng, 8)

	// Block the single shard with a job whose epoch channel we control, so
	// queue and budget accounting can be observed deterministically.
	gate := make(chan measure.Epoch)
	srv := New(Config{Shards: 1, QueueDepth: 1, MaxPendingBudget: 250 * time.Millisecond})
	blocker := Job{
		Tenant: "blocker", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		Epochs: gate, SolverName: "g1", RoundBudget: solver.Budget{Time: 100 * time.Millisecond},
	}
	quick := Job{
		Tenant: "quick", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		Matrix: m, SolverName: "g1", RoundBudget: solver.Budget{Time: 100 * time.Millisecond},
	}
	bt, err := srv.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker pulled the blocker, freeing the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for srv.sched.queuedTasks() > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	qt, err := srv.Submit(quick) // occupies the queue slot
	if err != nil {
		t.Fatal(err)
	}
	over := quick
	over.Tenant = "over"
	if _, err := srv.Submit(over); err != ErrOverBudget {
		t.Fatalf("third concurrent job error = %v, want ErrOverBudget", err)
	}
	cheap := quick
	cheap.Tenant = "cheap"
	cheap.RoundBudget = solver.Budget{Time: 10 * time.Millisecond}
	if _, err := srv.Submit(cheap); err != ErrBusy {
		t.Fatalf("queue-full error = %v, want ErrBusy", err)
	}
	if got := srv.Stats().Rejected; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}

	// Unblock: a single final epoch completes the blocker, then quick runs.
	ep := evolveEpochs(t, rng, 8, 1)[0]
	gate <- ep
	close(gate)
	if res := bt.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := qt.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := srv.Stats().PendingBudget; got != 0 {
		t.Fatalf("pending budget after drain = %v, want 0", got)
	}
	srv.Close()
	if _, err := srv.Submit(quick); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

// A job whose epoch source closes without publishing must surface its
// error through the ticket and count as failed, not served.
func TestServeJobFailureSurfaces(t *testing.T) {
	g := testGraph(t, 2, 3)
	empty := make(chan measure.Epoch)
	close(empty)
	srv := New(Config{Shards: 1})
	defer srv.Close()
	tk, err := srv.Submit(Job{
		Tenant: "t", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		Epochs: empty, SolverName: "g1", RoundBudget: solver.Budget{Nodes: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	if res.Err == nil {
		t.Fatal("empty epoch stream did not fail the job")
	}
	st := srv.Stats()
	if st.Failed != 1 || st.Served != 0 {
		t.Fatalf("failed=%d served=%d, want 1 and 0", st.Failed, st.Served)
	}
	if srv.Cache() == nil {
		t.Fatal("server has no cache")
	}
}

// A non-canonical first requester (an evolved problem keeping its patch
// lineage) must not poison the cache slot: it computes locally, and later
// fresh requesters compute for themselves too instead of adopting nothing.
func TestCacheRoundedNonCanonicalFirstRequester(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := testMatrix(rng, 10)
	g := testGraph(t, 2, 4)
	p1, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.Prep().Rounded(3); err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	m2.Set(0, 1, m2.At(0, 1)+1)
	p2, err := p1.Evolve(m2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	fp2 := m2.Fingerprint()
	// p2's entry is seeded for patching: computing it fills p2 but exports
	// nothing canonical.
	if hit, err := c.Rounded(fp2, 3, p2.Prep()); hit || err != nil {
		t.Fatalf("hit=%v err=%v, want miss without error", hit, err)
	}
	// A fresh problem over the same content must still get artifacts (a
	// local compute, reported as a miss) without erroring.
	p3, err := solver.NewProblem(g, m2.Clone(), solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Rounded(fp2, 3, p3.Prep()); hit || err != nil {
		t.Fatalf("hit=%v err=%v, want local-compute miss", hit, err)
	}
	if _, _, err := p3.Prep().Rounded(3); err != nil {
		t.Fatal(err)
	}
	// Repeated requests from one Prep adopt nothing new: counted as misses,
	// never as errors.
	if hit, err := c.Rounded(fp2, 3, p3.Prep()); hit || err != nil {
		t.Fatalf("repeat hit=%v err=%v, want miss", hit, err)
	}
}

// Submit must validate jobs before touching any shard.
func TestServeSubmitValidation(t *testing.T) {
	g := testGraph(t, 2, 3)
	rng := rand.New(rand.NewSource(17))
	m := testMatrix(rng, 8)
	srv := New(Config{Shards: 1})
	defer srv.Close()
	ok := Job{Tenant: "t", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink}, Matrix: m,
		SolverName: "g1", RoundBudget: solver.Budget{Nodes: 1000}}
	bad := []func(*Job){
		func(j *Job) { j.Tenant = "" },
		func(j *Job) { j.Graph = nil },
		func(j *Job) { j.Matrix = nil },
		func(j *Job) { j.Epochs = make(chan measure.Epoch) },
		func(j *Job) { j.RoundBudget = solver.Budget{} },
	}
	for i, mut := range bad {
		j := ok
		mut(&j)
		if _, err := srv.Submit(j); err == nil {
			t.Fatalf("bad job %d accepted", i)
		}
	}
	tk, err := srv.Submit(ok)
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
}

// End-to-end starvation check: with one worker, a hot tenant's 4-job
// backlog must yield to later-arriving light tenants after its first
// dispatch. Each job's epoch channel is an unbuffered gate, so the running
// job is exactly the one whose gate send succeeds — observing the true
// dispatch order without races.
func TestServeHotTenantCannotStarveLights(t *testing.T) {
	g := testGraph(t, 2, 3)
	rng := rand.New(rand.NewSource(29))
	ep := evolveEpochs(t, rng, 8, 1)[0]
	srv := New(Config{Shards: 1})
	defer srv.Close()

	type sub struct {
		tenant string
		gate   chan measure.Epoch
		tk     *Ticket
	}
	var subs []*sub
	submit := func(tenant string) {
		t.Helper()
		s := &sub{tenant: tenant, gate: make(chan measure.Epoch)}
		var err error
		s.tk, err = srv.Submit(Job{
			Tenant: tenant, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			Epochs: s.gate, SolverName: "g1", RoundBudget: solver.Budget{Nodes: 1000},
		})
		if err != nil {
			t.Fatal(err)
		}
		subs = append(subs, s)
	}
	for i := 0; i < 4; i++ {
		submit("hot")
	}
	for _, l := range []string{"light-a", "light-b", "light-c"} {
		submit(l)
	}

	var order []string
	remaining := subs
	for len(remaining) > 0 {
		cases := make([]reflect.SelectCase, len(remaining))
		for i, s := range remaining {
			cases[i] = reflect.SelectCase{
				Dir: reflect.SelectSend, Chan: reflect.ValueOf(s.gate), Send: reflect.ValueOf(ep),
			}
		}
		chosen, _, _ := reflect.Select(cases)
		s := remaining[chosen]
		close(s.gate)
		if res := s.tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
		order = append(order, s.tenant)
		remaining = append(remaining[:chosen:chosen], remaining[chosen+1:]...)
	}
	want := []string{"hot", "light-a", "light-b", "light-c", "hot", "hot", "hot"}
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("completion order %v, want %v", order, want)
	}
}

// Work stealing must occur when one shard homes all the load — and must not
// change a single output bit: stolen jobs produce deployments identical to
// the unsharded streaming path, and to a stealing-disabled server.
func TestServeWorkStealingBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	g := testGraph(t, 3, 4)
	shared := evolveEpochs(t, rng, 16, 3)
	budget := solver.Budget{Nodes: 30_000}

	// Two tenants whose keys both home on shard 0, so shard 1 can only ever
	// run stolen work.
	probe := New(Config{Shards: 2})
	var tenants []string
	for i := 0; len(tenants) < 2; i++ {
		name := fmt.Sprintf("tenant-%d", i)
		if probe.shardFor(name, "") == 0 {
			tenants = append(tenants, name)
		}
	}
	probe.Close()
	const jobsPer = 4
	run := func(srv *Server) map[string][]*advisor.StreamOutcome {
		t.Helper()
		defer srv.Close()
		var tks []*Ticket
		var names []string
		for j := 0; j < jobsPer; j++ {
			for _, tn := range tenants {
				tk, err := srv.Submit(Job{
					Tenant: tn, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
					Epochs: epochSeq(shared), SolverName: "cp", ClusterK: 4,
					RoundBudget: budget, Seed: int64(j),
				})
				if err != nil {
					t.Fatal(err)
				}
				tks = append(tks, tk)
				names = append(names, tn)
			}
		}
		out := map[string][]*advisor.StreamOutcome{}
		for i, tk := range tks {
			res := tk.Wait()
			if res.Err != nil {
				t.Fatal(res.Err)
			}
			out[names[i]] = append(out[names[i]], res.Outcome)
		}
		return out
	}

	// Whether a steal actually lands is a scheduler race — shard 0 can
	// drain both serialized tenants before shard 1's steal attempt finds
	// one ready — so retry the whole run until one does. The outputs are
	// deterministic either way; the retries only chase the counter.
	var stealing map[string][]*advisor.StreamOutcome
	stole := false
	for attempt := 0; attempt < 10 && !stole; attempt++ {
		srv := New(Config{Shards: 2})
		stealing = run(srv)
		stole = srv.Stats().Steals > 0
	}
	if !stole {
		t.Fatal("no steals in 10 runs despite an idle shard and a loaded one")
	}
	pinned := New(Config{Shards: 2, DisableStealing: true})
	static := run(pinned)
	if got := pinned.Stats().Steals; got != 0 {
		t.Fatalf("stealing-disabled server stole %d times", got)
	}

	for j := 0; j < jobsPer; j++ {
		for _, tn := range tenants {
			want, err := advisor.SolveStream(epochSeq(shared), advisor.StreamSolveConfig{
				Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink}, SolverName: "cp",
				ClusterK: 4, RoundBudget: budget, Seed: int64(j),
			})
			if err != nil {
				t.Fatal(err)
			}
			for name, got := range map[string]*advisor.StreamOutcome{
				"stealing": stealing[tn][j], "static": static[tn][j],
			} {
				if !reflect.DeepEqual(got.Deployment, want.Deployment) || got.Cost != want.Cost {
					t.Fatalf("%s server diverged from unsharded for %s seed %d", name, tn, j)
				}
			}
		}
	}
}

// The per-tenant pending-budget cap rejects one tenant's excess while other
// tenants keep submitting, through the public Config surface.
func TestServePerTenantBudget(t *testing.T) {
	g := testGraph(t, 2, 3)
	srv := New(Config{Shards: 1, MaxTenantPendingBudget: 250 * time.Millisecond})
	job := func(tenant string) (Job, chan measure.Epoch) {
		gate := make(chan measure.Epoch, 1)
		return Job{
			Tenant: tenant, Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			Epochs: gate, SolverName: "g1", RoundBudget: solver.Budget{Time: 100 * time.Millisecond},
		}, gate
	}
	var tks []*Ticket
	var gates []chan measure.Epoch
	for i := 0; i < 2; i++ {
		j, gate := job("greedy-tenant")
		tk, err := srv.Submit(j)
		if err != nil {
			t.Fatal(err)
		}
		tks, gates = append(tks, tk), append(gates, gate)
	}
	if j, _ := job("greedy-tenant"); func() error { _, err := srv.Submit(j); return err }() != ErrOverBudget {
		t.Fatal("third 100ms job for one tenant was not rejected with ErrOverBudget")
	}
	j, gate := job("modest-tenant")
	tk, err := srv.Submit(j)
	if err != nil {
		t.Fatalf("other tenant rejected: %v", err)
	}
	tks, gates = append(tks, tk), append(gates, gate)

	rng := rand.New(rand.NewSource(37))
	ep := evolveEpochs(t, rng, 8, 1)[0]
	for _, gate := range gates {
		gate <- ep
		close(gate)
	}
	for _, tk := range tks {
		if res := tk.Wait(); res.Err != nil {
			t.Fatal(res.Err)
		}
	}
	srv.Close()
}

// The transposed-graph family is keyed by graph content: tenants with
// different matrices over one topology share the transpose, and the adopted
// artifact is pointer-identical.
func TestCacheTransposedGraphFamily(t *testing.T) {
	g := core.NewGraph(4)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 3}, {0, 2}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	rng := rand.New(rand.NewSource(41))
	p1, err := solver.NewProblem(g, testMatrix(rng, 6), solver.LongestPath)
	if err != nil {
		t.Fatal(err)
	}
	p2, err := solver.NewProblem(g, testMatrix(rng, 6), solver.LongestPath)
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	gfp := g.Fingerprint()
	if c.TransposedGraph(gfp, p1.Prep()) {
		t.Fatal("first requester reported a hit")
	}
	if !c.TransposedGraph(gfp, p2.Prep()) {
		t.Fatal("second requester over the same graph missed")
	}
	if p1.Prep().TransposedGraph() != p2.Prep().TransposedGraph() {
		t.Fatal("transposed graph not shared by reference")
	}
	if st := c.Stats(); st.Graphs != 1 {
		t.Fatalf("graph entries = %d, want 1", st.Graphs)
	}
	// Repeated requests from a Prep that already holds its own build are
	// misses, never errors.
	if c.TransposedGraph(gfp, p1.Prep()) {
		t.Fatal("repeat adoption reported a hit")
	}
}

// 16 goroutines hammer submission, evolving epochs (Supersede), a
// 2-fingerprint cache (eviction), and 4 pulling shards (steals) at once;
// run under -race in CI, any ordering bug surfaces as a data race or a
// failed job.
func TestServeRaceHammer(t *testing.T) {
	g := testGraph(t, 2, 4)
	srv := New(Config{Shards: 4, Cache: NewCache(2), QueueDepth: 32})
	defer srv.Close()

	const workers = 16
	var wg sync.WaitGroup
	errs := make(chan error, workers*3)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(43 + w)))
			for j := 0; j < 3; j++ {
				tk, err := srv.Submit(Job{
					Tenant: fmt.Sprintf("tenant-%d", w%5), Graph: g,
					ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
					Epochs:        epochSeq(evolveEpochs(t, rng, 10, 3)),
					SolverName:    "cp", ClusterK: 3,
					RoundBudget: solver.Budget{Nodes: 2000}, Seed: int64(w*10 + j),
				})
				if err != nil {
					errs <- err
					continue
				}
				if res := tk.Wait(); res.Err != nil {
					errs <- res.Err
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}
