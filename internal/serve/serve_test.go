package serve

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// testGraph builds a small mesh communication graph.
func testGraph(t testing.TB, rows, cols int) *core.Graph {
	t.Helper()
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// testMatrix builds a random instances x instances cost matrix.
func testMatrix(rng *rand.Rand, instances int) *core.CostMatrix {
	m := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

// epochSeq materializes a fixed epoch sequence so it can be replayed for
// both the sharded and the unsharded side.
func epochSeq(epochs []measure.Epoch) <-chan measure.Epoch {
	ch := make(chan measure.Epoch, len(epochs))
	for _, ep := range epochs {
		ch <- ep
	}
	close(ch)
	return ch
}

// evolveEpochs builds an e-epoch sequence over one mutable matrix: each
// epoch perturbs a few rows, carrying exact changed-row sets and
// incremental fingerprints.
func evolveEpochs(t testing.TB, rng *rand.Rand, instances, epochs int) []measure.Epoch {
	t.Helper()
	mm := core.NewMutableCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				mm.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	out := make([]measure.Epoch, 0, epochs)
	for e := 1; e <= epochs; e++ {
		if e > 1 {
			for r := 0; r < 2; r++ {
				i := rng.Intn(instances)
				for j := 0; j < instances; j++ {
					if i != j {
						mm.Set(i, j, 0.2+rng.Float64())
					}
				}
			}
		}
		fp := mm.Fingerprint()
		m, changed := mm.Snapshot()
		out = append(out, measure.Epoch{
			Index: e, AtMS: float64(e), Final: e == epochs,
			Matrix: m, ChangedRows: changed, Fingerprint: fp,
		})
	}
	return out
}

// Served results must be bit-equal to the unsharded streaming path for the
// same tenant configuration — across solvers that use each cached artifact
// kind and across multi-epoch jobs that evolve their problems.
func TestServeMatchesUnsharded(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	g := testGraph(t, 3, 4) // 12 nodes
	const instances = 16
	budget := solver.Budget{Nodes: 30_000}

	for _, solverName := range []string{"cp", "g1", "sa"} {
		t.Run(solverName, func(t *testing.T) {
			shared := evolveEpochs(t, rng, instances, 3)
			srv := New(Config{Shards: 3})
			defer srv.Close()

			const tenants = 6
			tickets := make([]*Ticket, tenants)
			for tn := 0; tn < tenants; tn++ {
				var err error
				tickets[tn], err = srv.Submit(Job{
					Tenant:      fmt.Sprintf("tenant-%d", tn),
					Graph:       g,
					Objective:   solver.LongestLink,
					Epochs:      epochSeq(shared),
					SolverName:  solverName,
					ClusterK:    4,
					RoundBudget: budget,
					Seed:        int64(100 + tn),
				})
				if err != nil {
					t.Fatal(err)
				}
			}
			for tn := 0; tn < tenants; tn++ {
				res := tickets[tn].Wait()
				if res.Err != nil {
					t.Fatalf("tenant %d: %v", tn, res.Err)
				}
				want, err := advisor.SolveStream(epochSeq(shared), advisor.StreamSolveConfig{
					Graph:       g,
					Objective:   solver.LongestLink,
					SolverName:  solverName,
					ClusterK:    4,
					RoundBudget: budget,
					Seed:        int64(100 + tn),
				})
				if err != nil {
					t.Fatal(err)
				}
				if !reflect.DeepEqual(res.Outcome.Deployment, want.Deployment) {
					t.Fatalf("tenant %d: served deployment %v != unsharded %v", tn, res.Outcome.Deployment, want.Deployment)
				}
				if res.Outcome.Cost != want.Cost {
					t.Fatalf("tenant %d: served cost %v != unsharded %v", tn, res.Outcome.Cost, want.Cost)
				}
			}
		})
	}
}

// Tenants sharing one matrix must share one preprocessing pass: every
// artifact kind computes once and the rest of the fleet hits the cache.
func TestServeCrossTenantCacheHits(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := testGraph(t, 3, 4)
	m := testMatrix(rng, 16)
	srv := New(Config{Shards: 4})
	defer srv.Close()

	const tenants = 8
	tickets := make([]*Ticket, tenants)
	for tn := range tickets {
		var err error
		tickets[tn], err = srv.Submit(Job{
			Tenant:      fmt.Sprintf("t%d", tn),
			Graph:       g,
			Objective:   solver.LongestLink,
			Matrix:      m,
			SolverName:  "cp",
			ClusterK:    4,
			RoundBudget: solver.Budget{Nodes: 10_000},
			Seed:        int64(tn),
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	hits := 0
	for _, tk := range tickets {
		res := tk.Wait()
		if res.Err != nil {
			t.Fatal(res.Err)
		}
		hits += res.CacheHits
	}
	if hits != tenants-1 {
		t.Fatalf("cross-tenant hits = %d, want %d (one compute, rest adopt)", hits, tenants-1)
	}
	st := srv.Stats()
	if st.Cache.Misses != 1 {
		t.Fatalf("cache misses = %d, want exactly 1 compute for the shared matrix", st.Cache.Misses)
	}
	if st.Served != tenants {
		t.Fatalf("served = %d, want %d", st.Served, tenants)
	}
}

// One tenant key must always land on one shard; distinct keys spread.
func TestServeRoutingStable(t *testing.T) {
	srv := New(Config{Shards: 4})
	defer srv.Close()
	a := srv.shardFor("alice", "dc1")
	for i := 0; i < 10; i++ {
		if srv.shardFor("alice", "dc1") != a {
			t.Fatal("routing is not stable")
		}
	}
	if srv.shardFor("alice", "dc1") == srv.shardFor("alice", "dc2") &&
		srv.shardFor("alice", "dc1") == srv.shardFor("bob", "dc1") &&
		srv.shardFor("alice", "dc1") == srv.shardFor("carol", "dc1") {
		t.Fatal("all distinct keys landed on one shard (suspicious hash)")
	}
}

// Admission control: full queues reject with ErrBusy, budget exhaustion
// with ErrOverBudget, closed servers with ErrClosed; rejected and drained
// jobs release their accounted budget.
func TestServeBackpressureAndBudget(t *testing.T) {
	g := testGraph(t, 2, 3)
	rng := rand.New(rand.NewSource(13))
	m := testMatrix(rng, 8)

	// Block the single shard with a job whose epoch channel we control, so
	// queue and budget accounting can be observed deterministically.
	gate := make(chan measure.Epoch)
	srv := New(Config{Shards: 1, QueueDepth: 1, MaxPendingBudget: 250 * time.Millisecond})
	blocker := Job{
		Tenant: "blocker", Graph: g, Objective: solver.LongestLink,
		Epochs: gate, SolverName: "g1", RoundBudget: solver.Budget{Time: 100 * time.Millisecond},
	}
	quick := Job{
		Tenant: "quick", Graph: g, Objective: solver.LongestLink,
		Matrix: m, SolverName: "g1", RoundBudget: solver.Budget{Time: 100 * time.Millisecond},
	}
	bt, err := srv.Submit(blocker)
	if err != nil {
		t.Fatal(err)
	}
	// Wait until the worker picked the blocker up, freeing the queue slot.
	deadline := time.Now().Add(2 * time.Second)
	for len(srv.shards[0]) > 0 {
		if time.Now().After(deadline) {
			t.Fatal("worker never picked up the blocker")
		}
		time.Sleep(time.Millisecond)
	}
	qt, err := srv.Submit(quick) // occupies the queue slot
	if err != nil {
		t.Fatal(err)
	}
	over := quick
	over.Tenant = "over"
	if _, err := srv.Submit(over); err != ErrOverBudget {
		t.Fatalf("third concurrent job error = %v, want ErrOverBudget", err)
	}
	cheap := quick
	cheap.Tenant = "cheap"
	cheap.RoundBudget = solver.Budget{Time: 10 * time.Millisecond}
	if _, err := srv.Submit(cheap); err != ErrBusy {
		t.Fatalf("queue-full error = %v, want ErrBusy", err)
	}
	if got := srv.Stats().Rejected; got != 2 {
		t.Fatalf("rejected = %d, want 2", got)
	}

	// Unblock: a single final epoch completes the blocker, then quick runs.
	ep := evolveEpochs(t, rng, 8, 1)[0]
	gate <- ep
	close(gate)
	if res := bt.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if res := qt.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
	if got := srv.Stats().PendingBudget; got != 0 {
		t.Fatalf("pending budget after drain = %v, want 0", got)
	}
	srv.Close()
	if _, err := srv.Submit(quick); err != ErrClosed {
		t.Fatalf("submit after close = %v, want ErrClosed", err)
	}
}

// A job whose epoch source closes without publishing must surface its
// error through the ticket and count as failed, not served.
func TestServeJobFailureSurfaces(t *testing.T) {
	g := testGraph(t, 2, 3)
	empty := make(chan measure.Epoch)
	close(empty)
	srv := New(Config{Shards: 1})
	defer srv.Close()
	tk, err := srv.Submit(Job{
		Tenant: "t", Graph: g, Objective: solver.LongestLink,
		Epochs: empty, SolverName: "g1", RoundBudget: solver.Budget{Nodes: 1000},
	})
	if err != nil {
		t.Fatal(err)
	}
	res := tk.Wait()
	if res.Err == nil {
		t.Fatal("empty epoch stream did not fail the job")
	}
	st := srv.Stats()
	if st.Failed != 1 || st.Served != 0 {
		t.Fatalf("failed=%d served=%d, want 1 and 0", st.Failed, st.Served)
	}
	if srv.Cache() == nil {
		t.Fatal("server has no cache")
	}
}

// A non-canonical first requester (an evolved problem keeping its patch
// lineage) must not poison the cache slot: it computes locally, and later
// fresh requesters compute for themselves too instead of adopting nothing.
func TestCacheRoundedNonCanonicalFirstRequester(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	m := testMatrix(rng, 10)
	g := testGraph(t, 2, 4)
	p1, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p1.Prep().Rounded(3); err != nil {
		t.Fatal(err)
	}
	m2 := m.Clone()
	m2.Set(0, 1, m2.At(0, 1)+1)
	p2, err := p1.Evolve(m2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	c := NewCache(4)
	fp2 := m2.Fingerprint()
	// p2's entry is seeded for patching: computing it fills p2 but exports
	// nothing canonical.
	if hit, err := c.Rounded(fp2, 3, p2.Prep()); hit || err != nil {
		t.Fatalf("hit=%v err=%v, want miss without error", hit, err)
	}
	// A fresh problem over the same content must still get artifacts (a
	// local compute, reported as a miss) without erroring.
	p3, err := solver.NewProblem(g, m2.Clone(), solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if hit, err := c.Rounded(fp2, 3, p3.Prep()); hit || err != nil {
		t.Fatalf("hit=%v err=%v, want local-compute miss", hit, err)
	}
	if _, _, err := p3.Prep().Rounded(3); err != nil {
		t.Fatal(err)
	}
	// Repeated requests from one Prep adopt nothing new: counted as misses,
	// never as errors.
	if hit, err := c.Rounded(fp2, 3, p3.Prep()); hit || err != nil {
		t.Fatalf("repeat hit=%v err=%v, want miss", hit, err)
	}
}

// Submit must validate jobs before touching any shard.
func TestServeSubmitValidation(t *testing.T) {
	g := testGraph(t, 2, 3)
	rng := rand.New(rand.NewSource(17))
	m := testMatrix(rng, 8)
	srv := New(Config{Shards: 1})
	defer srv.Close()
	ok := Job{Tenant: "t", Graph: g, Objective: solver.LongestLink, Matrix: m,
		SolverName: "g1", RoundBudget: solver.Budget{Nodes: 1000}}
	bad := []func(*Job){
		func(j *Job) { j.Tenant = "" },
		func(j *Job) { j.Graph = nil },
		func(j *Job) { j.Matrix = nil },
		func(j *Job) { j.Epochs = make(chan measure.Epoch) },
		func(j *Job) { j.RoundBudget = solver.Budget{} },
	}
	for i, mut := range bad {
		j := ok
		mut(&j)
		if _, err := srv.Submit(j); err == nil {
			t.Fatalf("bad job %d accepted", i)
		}
	}
	tk, err := srv.Submit(ok)
	if err != nil {
		t.Fatal(err)
	}
	if res := tk.Wait(); res.Err != nil {
		t.Fatal(res.Err)
	}
}
