package serve

import (
	"sync"
	"sync/atomic"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Cache is the content-addressed Prep artifact store shared by every shard:
// cluster-K memo entries (rounded matrices, sorted pair lists, fitted
// clusterings) and cheapest-link row sets are immutable once built and are
// deterministic functions of the cost-matrix content, so they are keyed by
// core.CostMatrix.Fingerprint and shared across problems, tenants, and
// shards. Two tenants whose measurements produced identical matrices pay
// the dominant preprocessing cost — a k-means over all m^2 link costs, plus
// the m^2 log m pair sort — exactly once between them.
//
// Lookups are single-flight: concurrent requests for one (fingerprint, k)
// key serialize behind a sync.Once, so a burst of jobs over a fresh matrix
// computes each artifact once while the rest of the fleet blocks briefly
// and adopts, instead of every shard burning CPU on the same k-means.
//
// Invalidation is content-addressed too: a changed matrix has a new
// fingerprint, so stale artifacts can never be served for it. Supersede
// exists for memory, not correctness — when a streaming epoch replaces a
// tenant's matrix, the epoch's changed-row message retires the old
// fingerprint's artifacts unconditionally. Goroutines holding a retired
// entry simply finish adopting it; the content key guarantees what they
// adopted still matches their matrix.
type Cache struct {
	// maxMatrices bounds the number of distinct fingerprints retained;
	// beyond it the least-recently-used fingerprint's artifacts are
	// evicted.
	maxMatrices int

	mu       sync.Mutex
	matrices map[core.Fingerprint]*matrixEntry
	// graphs is the per-family sub-key space for graph-content artifacts:
	// the transposed-graph family is a function of the communication graph
	// alone, so it is keyed by core.Graph.Fingerprint in its own map —
	// longest-path fleets over one topology share the transpose across
	// every matrix epoch, and a matrix fingerprint can never alias a graph
	// fingerprint. Graph entries share the LRU tick but have their own
	// capacity (graphs weigh O(|E|), matrices O(n^2)).
	graphs map[core.Fingerprint]*graphEntry
	tick   int64

	hits       atomic.Int64
	misses     atomic.Int64
	evictions  atomic.Int64
	superseded atomic.Int64
}

// matrixEntry holds every artifact derived from one matrix content.
type matrixEntry struct {
	lastUse int64
	rounded map[int]*roundedSlot
	rows    *rowsSlot
}

type roundedSlot struct {
	once sync.Once
	art  *solver.RoundedArtifact
	err  error
}

type rowsSlot struct {
	once sync.Once
	art  *solver.RowsArtifact
}

// graphEntry holds the transposed-graph family for one graph content.
type graphEntry struct {
	lastUse int64
	once    sync.Once
	art     *solver.GraphArtifact
}

// DefaultMaxMatrices bounds a serving cache that was not given an explicit
// capacity. A 1000-instance matrix's artifacts weigh ~10^6 entries each, so
// the default keeps the cache in the low hundreds of MB at that scale.
const DefaultMaxMatrices = 16

// NewCache returns an empty cache retaining at most maxMatrices distinct
// matrix fingerprints (<= 0 selects DefaultMaxMatrices).
func NewCache(maxMatrices int) *Cache {
	if maxMatrices <= 0 {
		maxMatrices = DefaultMaxMatrices
	}
	return &Cache{
		maxMatrices: maxMatrices,
		matrices:    make(map[core.Fingerprint]*matrixEntry),
		graphs:      make(map[core.Fingerprint]*graphEntry),
	}
}

// entryLocked returns fp's artifact set, creating (and LRU-evicting) as
// needed. Callers hold c.mu, and must resolve the slot they are after
// before releasing it: an eviction between two lockings could orphan a
// half-registered entry, breaking the single-flight guarantee.
func (c *Cache) entryLocked(fp core.Fingerprint) *matrixEntry {
	c.tick++
	e, ok := c.matrices[fp]
	if !ok {
		if len(c.matrices) >= c.maxMatrices {
			var victim core.Fingerprint
			oldest := int64(1<<63 - 1)
			// Min over (lastUse, fingerprint): the fingerprint tie-break
			// makes the victim unique, so scan order cannot pick a
			// different entry on equal ticks.
			//cloudia:nondet-ok min over the totally ordered (lastUse, fingerprint) pair is order-insensitive
			for f, m := range c.matrices {
				if m.lastUse < oldest || (m.lastUse == oldest && f < victim) {
					victim, oldest = f, m.lastUse
				}
			}
			delete(c.matrices, victim)
			c.evictions.Add(1)
		}
		e = &matrixEntry{rounded: make(map[int]*roundedSlot)}
		c.matrices[fp] = e
	}
	e.lastUse = c.tick
	return e
}

// Rounded ensures prep holds the cluster-k artifacts for the matrix
// identified by fp, serving them from the cache on a hit and computing them
// through prep (then publishing the export) on a miss. It reports whether
// the artifacts came from the cache. The caller owns the content contract:
// fp must be the fingerprint of prep's problem matrix, and the call must
// happen before any solver consults the Prep. Misses whose computed entry
// is not canonical (an evolved problem's patched fit) leave the cache slot
// empty without poisoning it; prep still holds its own usable artifacts.
func (c *Cache) Rounded(fp core.Fingerprint, k int, prep *solver.Prep) (hit bool, err error) {
	if k < 0 {
		k = 0
	}
	c.mu.Lock()
	e := c.entryLocked(fp)
	slot, ok := e.rounded[k]
	if !ok {
		slot = &roundedSlot{}
		e.rounded[k] = slot
	}
	c.mu.Unlock()

	computed := false
	slot.once.Do(func() {
		computed = true
		if _, _, err := prep.Rounded(k); err != nil {
			slot.err = err
			return
		}
		slot.art, _ = prep.ExportRounded(k)
	})
	if computed || slot.err != nil {
		c.misses.Add(1)
		return false, slot.err
	}
	if slot.art == nil {
		// The first requester's entry was not canonical; compute locally.
		c.misses.Add(1)
		_, _, err := prep.Rounded(k)
		return false, err
	}
	adopted := prep.AdoptRounded(slot.art)
	if _, _, err := prep.Rounded(k); err != nil {
		return false, err
	}
	if !adopted {
		// The Prep already held an entry for k (repeated call, or an
		// evolved problem keeping its incremental lineage): not a hit.
		c.misses.Add(1)
		return false, nil
	}
	c.hits.Add(1)
	return true, nil
}

// CheapestRows is Rounded's analogue for the G1 candidate rows, keyed by
// fingerprint alone (the rows do not depend on a cluster count).
func (c *Cache) CheapestRows(fp core.Fingerprint, prep *solver.Prep) (hit bool) {
	c.mu.Lock()
	e := c.entryLocked(fp)
	if e.rows == nil {
		e.rows = &rowsSlot{}
	}
	slot := e.rows
	c.mu.Unlock()

	computed := false
	slot.once.Do(func() {
		computed = true
		prep.CheapestRows()
		slot.art, _ = prep.ExportCheapestRows()
	})
	if computed || slot.art == nil {
		c.misses.Add(1)
		return false
	}
	adopted := prep.AdoptCheapestRows(slot.art)
	prep.CheapestRows()
	if !adopted {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// TransposedGraph ensures prep holds the transposed-graph family (the
// reversed communication graph and its topological order) for the graph
// identified by gfp — which must be core.Graph.Fingerprint of prep's
// problem graph — serving it from the cache on a hit and computing through
// prep on a miss. Longest-path portfolios branch-and-bound over the
// transpose, so a fleet of tenants sharing one topology builds it once even
// as their cost matrices (and matrix-keyed artifacts) churn every epoch.
func (c *Cache) TransposedGraph(gfp core.Fingerprint, prep *solver.Prep) (hit bool) {
	c.mu.Lock()
	c.tick++
	e, ok := c.graphs[gfp]
	if !ok {
		if len(c.graphs) >= c.maxMatrices {
			var victim core.Fingerprint
			oldest := int64(1<<63 - 1)
			// Same deterministic (lastUse, fingerprint) victim selection as
			// the matrix cache above.
			//cloudia:nondet-ok min over the totally ordered (lastUse, fingerprint) pair is order-insensitive
			for f, g := range c.graphs {
				if g.lastUse < oldest || (g.lastUse == oldest && f < victim) {
					victim, oldest = f, g.lastUse
				}
			}
			delete(c.graphs, victim)
			c.evictions.Add(1)
		}
		e = &graphEntry{}
		c.graphs[gfp] = e
	}
	e.lastUse = c.tick
	c.mu.Unlock()

	computed := false
	e.once.Do(func() {
		computed = true
		prep.TransposedGraph()
		e.art, _ = prep.ExportTransposedGraph()
	})
	if computed || e.art == nil {
		c.misses.Add(1)
		return false
	}
	adopted := prep.AdoptTransposedGraph(e.art)
	prep.TransposedGraph()
	if !adopted {
		c.misses.Add(1)
		return false
	}
	c.hits.Add(1)
	return true
}

// Supersede is the inter-shard invalidation message derived from a
// streaming epoch: the matrix identified by old was replaced by the one
// identified by next, with changedRows differing. old's artifacts are
// retired from the cache — content addressing keeps correctness without
// this (next has a different key), Supersede just stops superseded epochs
// from occupying capacity until LRU eviction gets to them. Retirement is
// unconditional: when several tenants consume one shared evolving epoch
// stream, the first tenant to reach the next epoch retires the previous
// fingerprint under tenants still solving it, and those laggards recompute
// on their next miss (each recreated slot is its own single flight) —
// wasted work, never a wrong answer. Fleets whose jobs deliberately lag
// over shared content should rely on LRU capacity instead of wiring
// Supersede, or refcount fingerprints in a layer above. The changed-row
// set is accepted for symmetry with solver.Problem.Evolve and for
// observability; a future delta-aware cache could seed next's artifacts
// from old's over it.
func (c *Cache) Supersede(old, next core.Fingerprint, changedRows []int) {
	if old == 0 || old == next || len(changedRows) == 0 {
		return
	}
	c.mu.Lock()
	if _, ok := c.matrices[old]; ok {
		delete(c.matrices, old)
		c.superseded.Add(1)
	}
	c.mu.Unlock()
}

// CacheStats is a point-in-time counter snapshot.
type CacheStats struct {
	// Hits counts artifact requests served from a prior export; Misses
	// counts requests that computed (or recomputed) locally.
	Hits, Misses int64
	// Evictions counts LRU capacity evictions; Superseded counts
	// fingerprints retired by epoch invalidation messages.
	Evictions, Superseded int64
	// Matrices is the number of distinct matrix fingerprints currently
	// held; Graphs counts the graph-content family entries.
	Matrices int
	Graphs   int
}

// Stats returns a snapshot of the cache counters.
func (c *Cache) Stats() CacheStats {
	c.mu.Lock()
	n, ng := len(c.matrices), len(c.graphs)
	c.mu.Unlock()
	return CacheStats{
		Hits:       c.hits.Load(),
		Misses:     c.misses.Load(),
		Evictions:  c.evictions.Load(),
		Superseded: c.superseded.Load(),
		Matrices:   n,
		Graphs:     ng,
	}
}
