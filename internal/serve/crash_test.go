package serve

import (
	"errors"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"reflect"
	"testing"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// Fault-injection suite: kill the daemon at every WAL crashpoint — first by
// panicking out of the append (the in-process stand-in for SIGKILL: the
// abandoned log's buffered bytes are never flushed, exactly the file state
// a dead process leaves), then by re-execing the test binary and dying with
// os.Exit(137) for real. After each death the daemon is reopened over the
// same directory and must (a) recover to some exact prefix of the
// uninterrupted epoch/fingerprint history and (b) once the lost epochs are
// re-driven, serve advice bit-equal to a daemon that never died.

var crashpoints = []string{
	"append.start", "append.framed", "append.synced",
	"rotate.closed", "rotate.created",
	"compact.written", "compact.removed",
}

const (
	crashTenant = "crash-tenant"
	crashN      = 8
	crashEpochs = 6
	crashSeed   = 9
)

// crashConfig keeps segments tiny and compaction frequent so every
// crashpoint class — append, rotate, compact — fires inside a six-epoch
// workload.
func crashConfig(dir string) DaemonConfig {
	return DaemonConfig{
		Dir:          dir,
		Serve:        Config{Shards: 1},
		WAL:          wal.Options{SegmentBytes: 256},
		CompactEvery: 3,
	}
}

func crashBase() *core.CostMatrix {
	return testMatrix(rand.New(rand.NewSource(97)), crashN)
}

// crashRows is epoch e's delta: the full matrix at epoch 1, then one row
// rescaled per epoch — a pure function of e, so a resumed driver reproduces
// the uninterrupted history bit-for-bit.
func crashRows(m *core.CostMatrix, e int) []wal.RowDelta {
	if e == 1 {
		return fullRows(m)
	}
	row := e % crashN
	vals := make([]float64, crashN)
	copy(vals, m.Row(row))
	for j := range vals {
		if j != row {
			vals[j] *= 1 + 0.01*float64(e)
		}
	}
	return []wal.RowDelta{{Row: row, Values: vals}}
}

// driveCrashWorkload appends epochs from the daemon's recovered position up
// to crashEpochs, returning the fingerprint logged at each epoch it
// appended.
func driveCrashWorkload(d *Daemon) (map[int]core.Fingerprint, error) {
	start := 0
	if st := d.Stats(); len(st.Tenants) > 0 {
		start = st.Tenants[0].Epoch
	}
	m := crashBase()
	fps := map[int]core.Fingerprint{}
	for e := start + 1; e <= crashEpochs; e++ {
		epoch, fp, err := d.AppendEpoch(crashTenant, crashN, crashRows(m, e), nil)
		if err != nil {
			return fps, err
		}
		if epoch != e {
			return fps, fmt.Errorf("append numbered epoch %d, want %d", epoch, e)
		}
		fps[e] = fp
	}
	return fps, nil
}

func crashAdvise(t *testing.T, d *Daemon) *Result {
	t.Helper()
	return adviseOK(t, d, AdviseRequest{
		Tenant: crashTenant, Graph: testGraph(t, 2, 3), ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "cp", ClusterK: 4, RoundBudget: solver.Budget{Nodes: 10_000},
		Seed: crashSeed, NoWarmStart: true,
	})
}

// crashReference runs the uninterrupted workload once: the per-epoch
// fingerprint history and the advice every recovered daemon must reproduce.
func crashReference(t *testing.T) (map[int]core.Fingerprint, *Result) {
	t.Helper()
	d := openDaemon(t, crashConfig(t.TempDir()))
	defer d.Close()
	fps, err := driveCrashWorkload(d)
	if err != nil {
		t.Fatal(err)
	}
	return fps, crashAdvise(t, d)
}

// checkRecovered asserts the reopened daemon's state is an exact prefix of
// the reference history, re-drives the lost epochs, and demands bit-equal
// advice.
func checkRecovered(t *testing.T, dir string, fps map[int]core.Fingerprint, want *Result) {
	t.Helper()
	re := openDaemon(t, crashConfig(dir))
	defer re.Close()
	st := re.Stats()
	if len(st.Tenants) != 1 {
		t.Fatalf("recovered %d tenants, want 1", len(st.Tenants))
	}
	tn := st.Tenants[0]
	if tn.Epoch < 0 || tn.Epoch > crashEpochs {
		t.Fatalf("recovered epoch %d outside the driven history", tn.Epoch)
	}
	if tn.Epoch > 0 && tn.Fingerprint != fps[tn.Epoch] {
		t.Fatalf("recovered (epoch %d, fp %016x) is not a prefix: want fp %016x",
			tn.Epoch, uint64(tn.Fingerprint), uint64(fps[tn.Epoch]))
	}
	if _, err := driveCrashWorkload(re); err != nil {
		t.Fatalf("re-driving lost epochs: %v", err)
	}
	got := crashAdvise(t, re)
	if !reflect.DeepEqual(got.Outcome.Deployment, want.Outcome.Deployment) || got.Outcome.Cost != want.Outcome.Cost {
		t.Fatalf("post-crash advice diverged: %v (%g) != %v (%g)",
			got.Outcome.Deployment, got.Outcome.Cost, want.Outcome.Deployment, want.Outcome.Cost)
	}
}

// crashSentinel distinguishes an injected crash from a genuine panic.
type crashSentinel struct{ point string }

// TestCrashpointRecovery dies in-process at each crashpoint: the hook
// panics out of the append, the daemon is abandoned un-Closed (so, as after
// SIGKILL, nothing buffered ever reaches the disk), and a fresh daemon over
// the same directory must recover a prefix and re-serve identical advice.
func TestCrashpointRecovery(t *testing.T) {
	fps, want := crashReference(t)
	for _, point := range crashpoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			fired := false
			wal.SetCrashpointHook(func(name string) {
				if name == point && !fired {
					fired = true
					panic(crashSentinel{point})
				}
			})
			defer wal.SetCrashpointHook(nil)

			func() {
				defer func() {
					r := recover()
					if r == nil {
						return
					}
					if s, ok := r.(crashSentinel); !ok || s.point != point {
						panic(r)
					}
				}()
				d := openDaemon(t, crashConfig(dir))
				// Deliberately never Closed: the crash killed it.
				if _, err := driveCrashWorkload(d); err != nil {
					t.Fatal(err)
				}
			}()
			if !fired {
				t.Fatalf("crashpoint %q never fired", point)
			}
			wal.SetCrashpointHook(nil)

			checkRecovered(t, dir, fps, want)
		})
	}
}

// TestCrashKillRestart re-execs this test binary as a child that arms the
// crashpoint to os.Exit(137) — an actual process death, buffered writes and
// descriptors torn away by the kernel — then recovers the directory the
// corpse left behind.
func TestCrashKillRestart(t *testing.T) {
	if dir := os.Getenv("CLOUDIA_CRASH_DIR"); dir != "" {
		childCrashRun(dir, os.Getenv("CLOUDIA_CRASH_POINT"))
		return
	}
	if testing.Short() {
		t.Skip("re-exec suite skipped in -short")
	}
	fps, want := crashReference(t)
	for _, point := range crashpoints {
		t.Run(point, func(t *testing.T) {
			dir := t.TempDir()
			cmd := exec.Command(os.Args[0], "-test.run=TestCrashKillRestart$")
			cmd.Env = append(os.Environ(),
				"CLOUDIA_CRASH_DIR="+dir, "CLOUDIA_CRASH_POINT="+point)
			out, err := cmd.CombinedOutput()
			var exit *exec.ExitError
			if !errors.As(err, &exit) || exit.ExitCode() != 137 {
				t.Fatalf("child died with %v, want exit 137\n%s", err, out)
			}
			checkRecovered(t, dir, fps, want)
		})
	}
}

// childCrashRun is the re-execed child: run the workload, die mid-append.
func childCrashRun(dir, point string) {
	wal.SetCrashpointHook(func(name string) {
		if name == point {
			os.Exit(137)
		}
	})
	d, err := OpenDaemon(crashConfig(dir))
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if _, err := driveCrashWorkload(d); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	// The armed crashpoint should have killed us several epochs ago.
	fmt.Fprintf(os.Stderr, "crashpoint %q never fired\n", point)
	os.Exit(1)
}
