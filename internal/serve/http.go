package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/graphio"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// HTTP/JSON front end over the Daemon: a thin, stateless translation layer
// — all durable state and all scheduling live behind Daemon's Go API.
//
//	POST /v1/epoch    {"tenant","n","rows":[{"row","values"}]}
//	POST /v1/advise   {"tenant","graph",...} — add "stream":true for
//	                  one JSON line per solve round before the final advice
//	GET  /v1/stats    daemon + per-tenant counters
//	GET  /healthz     liveness
//
// Transient admission rejections (ErrBusy, ErrOverBudget) map to 429 with
// a Retry-After hint, so HTTP clients inherit the same retry-later
// contract the Go API documents.

// Handler returns the daemon's HTTP front end.
func (d *Daemon) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST /v1/epoch", d.handleEpoch)
	mux.HandleFunc("POST /v1/advise", d.handleAdvise)
	mux.HandleFunc("GET /v1/stats", d.handleStats)
	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		w.Write([]byte("ok\n"))
	})
	return mux
}

type rowDeltaJSON struct {
	Row    int       `json:"row"`
	Values []float64 `json:"values"`
}

type epochRequest struct {
	Tenant string         `json:"tenant"`
	N      int            `json:"n"`
	Rows   []rowDeltaJSON `json:"rows"`
	// TailPct and TailRows post the epoch's percentile-matrix rows in the
	// same durability unit as the mean rows (see Daemon.AppendEpoch);
	// required before the tenant can be advised with a percentile metric.
	TailPct  float64        `json:"tail_pct,omitempty"`
	TailRows []rowDeltaJSON `json:"tail_rows,omitempty"`
}

type epochResponse struct {
	Tenant      string `json:"tenant"`
	Epoch       int    `json:"epoch"`
	Fingerprint string `json:"fingerprint"`
}

func (d *Daemon) handleEpoch(w http.ResponseWriter, r *http.Request) {
	var req epochRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		httpError(w, fmt.Errorf("serve: bad epoch request: %w", err))
		return
	}
	toDeltas := func(rows []rowDeltaJSON) []wal.RowDelta {
		out := make([]wal.RowDelta, len(rows))
		for i, rd := range rows {
			out[i] = wal.RowDelta{Row: rd.Row, Values: rd.Values}
		}
		return out
	}
	var tail *TailUpdate
	if req.TailPct != 0 || len(req.TailRows) > 0 {
		tail = &TailUpdate{Pct: req.TailPct, Rows: toDeltas(req.TailRows)}
	}
	epoch, fp, err := d.AppendEpoch(req.Tenant, req.N, toDeltas(req.Rows), tail)
	if err != nil {
		httpError(w, err)
		return
	}
	writeJSON(w, epochResponse{Tenant: req.Tenant, Epoch: epoch, Fingerprint: fmt.Sprintf("%016x", uint64(fp))})
}

type adviseRequestJSON struct {
	Tenant string          `json:"tenant"`
	Graph  json.RawMessage `json:"graph"`
	// Objective, metric, and no_mean_tie_break are the wire form of
	// advisor.ObjectiveSpec; the strings are cast into the spec and
	// validated there, not here. Empty objective defaults to longest-link,
	// empty metric to mean. metric "p95"/"p99" searches the tenant's
	// posted tail matrix, tie-breaking on the mean.
	Objective      string  `json:"objective"`
	Metric         string  `json:"metric"`
	NoMeanTieBreak bool    `json:"no_mean_tie_break"`
	Solver         string  `json:"solver"`
	ClusterK       int     `json:"cluster_k"`
	BudgetMS       float64 `json:"budget_ms"`
	BudgetNodes    int64   `json:"budget_nodes"`
	Seed           int64   `json:"seed"`
	DeadlineMS     float64 `json:"deadline_ms"`
	NoWarmStart    bool    `json:"no_warm_start"`
	Stream         bool    `json:"stream"`
}

type roundJSON struct {
	Round    int     `json:"round"`
	Epoch    int     `json:"epoch"`
	Cost     float64 `json:"cost"`
	Improved bool    `json:"improved"`
	Winner   string  `json:"winner,omitempty"`
}

type adviseResponse struct {
	Tenant      string  `json:"tenant"`
	Deployment  []int   `json:"deployment"`
	Cost        float64 `json:"cost"`
	Winner      string  `json:"winner,omitempty"`
	Rounds      int     `json:"rounds"`
	Interrupted bool    `json:"interrupted"`
	CacheHits   int     `json:"cache_hits"`
	CacheMisses int     `json:"cache_misses"`
	Err         string  `json:"error,omitempty"`
}

func (d *Daemon) handleAdvise(w http.ResponseWriter, r *http.Request) {
	var jr adviseRequestJSON
	if err := json.NewDecoder(r.Body).Decode(&jr); err != nil {
		httpError(w, fmt.Errorf("serve: bad advise request: %w", err))
		return
	}
	if len(jr.Graph) == 0 {
		httpError(w, fmt.Errorf("serve: advise request without a graph"))
		return
	}
	g, err := graphio.ReadGraph(bytes.NewReader(jr.Graph))
	if err != nil {
		httpError(w, fmt.Errorf("serve: advise graph: %w", err))
		return
	}
	// Cast the raw strings into the spec and let its Validate (run by
	// Submit) be the single authority on objective/metric combinations —
	// no HTTP-side switch duplicating it. Only the empty-objective default
	// is resolved here.
	spec := advisor.ObjectiveSpec{
		Objective:      solver.Objective(jr.Objective),
		Metric:         advisor.Metric(jr.Metric),
		NoMeanTieBreak: jr.NoMeanTieBreak,
	}
	if spec.Objective == "" {
		spec.Objective = solver.LongestLink
	}
	req := AdviseRequest{
		Tenant:        jr.Tenant,
		Graph:         g,
		ObjectiveSpec: spec,
		SolverName:    jr.Solver,
		ClusterK:      jr.ClusterK,
		RoundBudget:   solver.Budget{Time: msToDuration(jr.BudgetMS), Nodes: jr.BudgetNodes},
		Seed:          jr.Seed,
		Timeout:       msToDuration(jr.DeadlineMS),
		NoWarmStart:   jr.NoWarmStart,
	}

	var flush func()
	if jr.Stream {
		// One JSON line per round, flushed as the solve produces it, then
		// the final advice as the last line. OnRound runs on the worker
		// goroutine, but strictly before Advise returns, so the writes
		// never interleave with the final one.
		w.Header().Set("Content-Type", "application/x-ndjson")
		enc := json.NewEncoder(w)
		if f, ok := w.(http.Flusher); ok {
			flush = f.Flush
		}
		round := 0
		req.OnRound = func(r advisor.Round) {
			round++
			enc.Encode(roundJSON{Round: round, Epoch: r.Epoch, Cost: r.Cost, Improved: r.Improved, Winner: r.Winner})
			if flush != nil {
				flush()
			}
		}
	}

	res, err := d.Advise(req)
	if err != nil {
		if jr.Stream {
			// Headers are potentially gone; deliver the error in-band.
			json.NewEncoder(w).Encode(adviseResponse{Tenant: jr.Tenant, Err: err.Error()})
			return
		}
		httpError(w, err)
		return
	}
	resp := adviseResponse{Tenant: jr.Tenant}
	if res.Err != nil {
		resp.Err = res.Err.Error()
	} else {
		resp.Deployment = res.Outcome.Deployment
		resp.Cost = res.Outcome.Cost
		resp.Winner = outcomeWinner(res.Outcome)
		resp.Rounds = len(res.Outcome.Rounds)
		resp.Interrupted = res.Outcome.Interrupted
	}
	resp.CacheHits, resp.CacheMisses = res.CacheHits, res.CacheMisses
	if jr.Stream {
		json.NewEncoder(w).Encode(resp)
		if flush != nil {
			flush()
		}
		return
	}
	writeJSON(w, resp)
}

type tenantStatusJSON struct {
	Tenant      string    `json:"tenant"`
	Epoch       int       `json:"epoch"`
	Fingerprint string    `json:"fingerprint"`
	Advised     bool      `json:"advised"`
	WAL         wal.Stats `json:"wal"`
}

type statsResponse struct {
	Server  Stats              `json:"server"`
	Tenants []tenantStatusJSON `json:"tenants"`
}

func (d *Daemon) handleStats(w http.ResponseWriter, r *http.Request) {
	st := d.Stats()
	resp := statsResponse{Server: st.Server, Tenants: []tenantStatusJSON{}}
	for _, tn := range st.Tenants {
		resp.Tenants = append(resp.Tenants, tenantStatusJSON{
			Tenant:      tn.Tenant,
			Epoch:       tn.Epoch,
			Fingerprint: fmt.Sprintf("%016x", uint64(tn.Fingerprint)),
			Advised:     tn.Advised,
			WAL:         tn.WAL,
		})
	}
	writeJSON(w, resp)
}

func msToDuration(ms float64) (d time.Duration) {
	if ms > 0 {
		d = time.Duration(ms * float64(time.Millisecond))
	}
	return d
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// errorJSON is the structured error body every non-2xx response carries:
//
//	{"error": {"code": "busy", "message": "...", "retry_after_ms": 1000}}
//
// The code is a stable machine-readable discriminator (clients previously
// had to substring-match the message); retry_after_ms is present exactly
// when retrying the same request later can succeed (429 and 503).
type errorJSON struct {
	Error errorBody `json:"error"`
}

type errorBody struct {
	Code         string `json:"code"`
	Message      string `json:"message"`
	RetryAfterMS int64  `json:"retry_after_ms,omitempty"`
}

// httpError maps daemon errors onto HTTP status codes: transient admission
// rejections become 429 with a Retry-After hint, unknown tenants 404,
// everything else a 400 — the daemon never blames itself for a request it
// validated and refused. The body is always a structured errorJSON.
func httpError(w http.ResponseWriter, err error) {
	code := http.StatusBadRequest
	body := errorBody{Code: "bad_request", Message: err.Error()}
	switch {
	case errors.Is(err, ErrBusy):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
		body.Code, body.RetryAfterMS = "busy", 1000
	case errors.Is(err, ErrOverBudget):
		w.Header().Set("Retry-After", "1")
		code = http.StatusTooManyRequests
		body.Code, body.RetryAfterMS = "over_budget", 1000
	case errors.Is(err, ErrUnknownTenant):
		code = http.StatusNotFound
		body.Code = "unknown_tenant"
	case errors.Is(err, ErrClosed):
		code = http.StatusServiceUnavailable
		body.Code, body.RetryAfterMS = "closed", 1000
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(errorJSON{Error: body})
}
