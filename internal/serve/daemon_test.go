package serve

import (
	"errors"
	"math"
	"math/rand"
	"os"
	"path/filepath"
	"reflect"
	"testing"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// fullRows turns a matrix into a complete RowDelta set (the first epoch of
// a tenant).
func fullRows(m *core.CostMatrix) []wal.RowDelta {
	rows := make([]wal.RowDelta, m.Size())
	for i := range rows {
		vals := make([]float64, m.Size())
		copy(vals, m.Row(i))
		rows[i] = wal.RowDelta{Row: i, Values: vals}
	}
	return rows
}

func openDaemon(t *testing.T, cfg DaemonConfig) *Daemon {
	t.Helper()
	d, err := OpenDaemon(cfg)
	if err != nil {
		t.Fatal(err)
	}
	return d
}

func adviseOK(t *testing.T, d *Daemon, req AdviseRequest) *Result {
	t.Helper()
	res, err := d.Advise(req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Err != nil {
		t.Fatal(res.Err)
	}
	return res
}

// TestDaemonRestartBitEqual is the tentpole contract: a daemon killed and
// reopened replays its WAL to the same fingerprints and serves advice
// bit-equal to a daemon that never died — same matrix bits, same recovered
// warm-start incumbent, same seeds, same deployment.
func TestDaemonRestartBitEqual(t *testing.T) {
	rng := rand.New(rand.NewSource(53))
	g := testGraph(t, 2, 3)
	const n = 8
	m := testMatrix(rng, n)
	budget := solver.Budget{Nodes: 20_000}

	// drive pushes the same workload into any daemon: a full first epoch,
	// one advise, then two partial epochs.
	drive := func(d *Daemon) (core.Fingerprint, *Result) {
		t.Helper()
		if _, _, err := d.AppendEpoch("acme", n, fullRows(m), nil); err != nil {
			t.Fatal(err)
		}
		first := adviseOK(t, d, AdviseRequest{
			Tenant: "acme", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
			SolverName: "cp", ClusterK: 4, RoundBudget: budget, Seed: 1,
		})
		perturbed := make([]float64, n)
		copy(perturbed, m.Row(2))
		for j := range perturbed {
			if j != 2 {
				perturbed[j] *= 1.25
			}
		}
		var fp core.Fingerprint
		var err error
		for i := 0; i < 2; i++ {
			_, fp, err = d.AppendEpoch("acme", n, []wal.RowDelta{{Row: 2, Values: perturbed}}, nil)
			if err != nil {
				t.Fatal(err)
			}
		}
		return fp, first
	}

	// The control daemon lives through the whole workload.
	control := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	ctrlFP, _ := drive(control)
	want := adviseOK(t, control, AdviseRequest{
		Tenant: "acme", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "cp", ClusterK: 4, RoundBudget: budget, Seed: 2,
	})
	control.Close()

	// The crashed daemon dies (Close stands in for the kill; the
	// fault-injection suite covers dirtier deaths) after the same workload
	// and is reopened.
	dir := t.TempDir()
	crashed := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
	crashFP, _ := drive(crashed)
	if crashFP != ctrlFP {
		t.Fatalf("workload fingerprints diverge before the restart: %016x != %016x", uint64(crashFP), uint64(ctrlFP))
	}
	crashed.Close()

	reopened := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
	defer reopened.Close()
	st := reopened.Stats()
	if len(st.Tenants) != 1 || st.Tenants[0].Fingerprint != ctrlFP || st.Tenants[0].Epoch != 3 {
		t.Fatalf("recovered state %+v, want epoch 3 fingerprint %016x", st.Tenants, uint64(ctrlFP))
	}
	if st.Tenants[0].WAL.RecoveredRecords == 0 {
		t.Fatal("recovery replayed no records")
	}

	got := adviseOK(t, reopened, AdviseRequest{
		Tenant: "acme", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "cp", ClusterK: 4, RoundBudget: budget, Seed: 2,
	})
	if !reflect.DeepEqual(got.Outcome.Deployment, want.Outcome.Deployment) || got.Outcome.Cost != want.Outcome.Cost {
		t.Fatalf("post-restart advice diverged: %v (%g) != %v (%g)",
			got.Outcome.Deployment, got.Outcome.Cost, want.Outcome.Deployment, want.Outcome.Cost)
	}

	// The recovered warm start means the reopened daemon cannot do worse
	// than the advice it had already served.
	if first := st.Tenants[0]; !first.Advised {
		t.Fatal("recovered session lost its advice")
	}
}

// TestDaemonCacheReseed: recovery warms the shared cache under the
// recovered fingerprint, so the first post-restart advise hits instead of
// recomputing the artifacts the dead process had already paid for.
func TestDaemonCacheReseed(t *testing.T) {
	rng := rand.New(rand.NewSource(59))
	g := testGraph(t, 2, 3)
	const n = 8
	m := testMatrix(rng, n)
	dir := t.TempDir()

	d := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
	if _, _, err := d.AppendEpoch("acme", n, fullRows(m), nil); err != nil {
		t.Fatal(err)
	}
	cold := adviseOK(t, d, AdviseRequest{
		Tenant: "acme", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "cp", ClusterK: 4, RoundBudget: solver.Budget{Nodes: 5_000},
	})
	if cold.CacheMisses == 0 {
		t.Fatal("first-ever advise missed no cache entries")
	}
	d.Close()

	re := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
	defer re.Close()
	hit := adviseOK(t, re, AdviseRequest{
		Tenant: "acme", Graph: g, ObjectiveSpec: advisor.ObjectiveSpec{Objective: solver.LongestLink},
		SolverName: "cp", ClusterK: 4, RoundBudget: solver.Budget{Nodes: 5_000},
	})
	if hit.CacheMisses != 0 || hit.CacheHits == 0 {
		t.Fatalf("post-restart advise hits/misses = %d/%d, want all hits", hit.CacheHits, hit.CacheMisses)
	}
}

// TestDaemonCompaction: the log compacts every CompactEvery epochs and the
// compacted tenant recovers to the same state.
func TestDaemonCompaction(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	const n = 6
	m := testMatrix(rng, n)
	dir := t.TempDir()

	d := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}, CompactEvery: 3})
	var lastFP core.Fingerprint
	for e := 0; e < 7; e++ {
		vals := make([]float64, n)
		copy(vals, m.Row(e%n))
		for j := range vals {
			if j != e%n {
				vals[j] += float64(e+1) * 0.01
			}
		}
		var err error
		_, lastFP, err = d.AppendEpoch("acme", n, []wal.RowDelta{{Row: e % n, Values: vals}}, nil)
		if err != nil {
			t.Fatal(err)
		}
	}
	st := d.Stats()
	if st.Tenants[0].WAL.Compactions != 2 {
		t.Fatalf("%d compactions after 7 epochs at CompactEvery=3, want 2", st.Tenants[0].WAL.Compactions)
	}
	d.Close()

	re := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}, CompactEvery: 3})
	defer re.Close()
	rst := re.Stats()
	if rst.Tenants[0].Fingerprint != lastFP || rst.Tenants[0].Epoch != 7 {
		t.Fatalf("compacted tenant recovered to %+v, want epoch 7 fingerprint %016x", rst.Tenants[0], uint64(lastFP))
	}
}

// TestDaemonRecoveryRefusesFingerprintMismatch: a log whose epoch
// fingerprint does not match the replayed matrix must fail recovery, not
// serve from divergent state.
func TestDaemonRecoveryRefusesFingerprintMismatch(t *testing.T) {
	dir := t.TempDir()
	tenantDir := filepath.Join(dir, "tenants", "61636d65") // hex("acme")
	log, err := wal.Open(tenantDir, wal.Options{}, nil)
	if err != nil {
		t.Fatal(err)
	}
	if err := log.Append(&wal.EpochRecord{
		Epoch: 1, Fingerprint: 0xdeadbeef, N: 2,
		Rows: []wal.RowDelta{{Row: 0, Values: []float64{0, 1}}},
	}); err != nil {
		t.Fatal(err)
	}
	log.Close()
	if _, err := OpenDaemon(DaemonConfig{Dir: dir, Serve: Config{Shards: 1}}); err == nil {
		t.Fatal("daemon opened over a fingerprint mismatch")
	}
}

// TestDaemonValidation covers AppendEpoch's input contract and the
// unknown-tenant advise path.
func TestDaemonValidation(t *testing.T) {
	d := openDaemon(t, DaemonConfig{Dir: t.TempDir(), Serve: Config{Shards: 1}})
	defer d.Close()

	cases := []struct {
		name   string
		tenant string
		n      int
		rows   []wal.RowDelta
	}{
		{"empty tenant", "", 2, nil},
		{"zero size", "t", 0, nil},
		{"row out of range", "t", 2, []wal.RowDelta{{Row: 2, Values: []float64{0, 0}}}},
		{"short values", "t", 2, []wal.RowDelta{{Row: 0, Values: []float64{0}}}},
		{"NaN", "t", 2, []wal.RowDelta{{Row: 0, Values: []float64{0, math.NaN()}}}},
		{"negative", "t", 2, []wal.RowDelta{{Row: 0, Values: []float64{0, -1}}}},
		{"nonzero diagonal", "t", 2, []wal.RowDelta{{Row: 0, Values: []float64{1, 1}}}},
	}
	for _, tc := range cases {
		if _, _, err := d.AppendEpoch(tc.tenant, tc.n, tc.rows, nil); err == nil {
			t.Errorf("%s accepted", tc.name)
		}
	}

	if _, _, err := d.AppendEpoch("t", 2, []wal.RowDelta{{Row: 0, Values: []float64{0, 1}}}, nil); err != nil {
		t.Fatal(err)
	}
	if _, _, err := d.AppendEpoch("t", 3, nil, nil); err == nil {
		t.Error("matrix resize accepted")
	}

	if _, err := d.Advise(AdviseRequest{Tenant: "ghost", Graph: testGraph(t, 2, 2)}); !errors.Is(err, ErrUnknownTenant) {
		t.Errorf("unknown tenant advise error = %v", err)
	}
	if _, err := OpenDaemon(DaemonConfig{}); err == nil {
		t.Error("daemon without a directory opened")
	}
}

// TestDaemonAlienTenantDir: recovery refuses a tenants/ entry it cannot
// decode rather than guessing.
func TestDaemonAlienTenantDir(t *testing.T) {
	dir := t.TempDir()
	d := openDaemon(t, DaemonConfig{Dir: dir, Serve: Config{Shards: 1}})
	d.Close()
	if err := os.MkdirAll(filepath.Join(dir, "tenants", "not-hex!"), 0o755); err != nil {
		t.Fatal(err)
	}
	if _, err := OpenDaemon(DaemonConfig{Dir: dir, Serve: Config{Shards: 1}}); err == nil {
		t.Fatal("daemon opened over an undecodable tenant directory")
	}
}
