package serve

import (
	"encoding/hex"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/par"
	"cloudia/internal/solver"
	"cloudia/internal/wal"
)

// This file implements the durable serve daemon: the long-lived, crash-safe
// face of the sharded Server. Where the Server is a scheduling fabric with
// no memory — every Job carries its own matrix and dies with the process —
// the Daemon owns per-tenant state that must survive restarts: each
// tenant's evolving cost matrix and its last served advice live in an
// append-only WAL (internal/wal), written before the mutation is
// acknowledged. On restart, recovery replays every tenant's log, rebuilds
// the MutableCostMatrix, verifies each epoch's fingerprint bit-for-bit
// against the logged one, and re-seeds the content-addressed artifact cache
// from the recovered matrices before any traffic is admitted — so a killed
// and restarted daemon serves advice bit-equal to one that never died.

// ErrUnknownTenant rejects an advise call for a tenant with no epochs.
var ErrUnknownTenant = fmt.Errorf("serve: unknown tenant")

// DaemonConfig sizes a Daemon.
type DaemonConfig struct {
	// Dir is the WAL root; each tenant's log lives in
	// Dir/tenants/<hex(tenant)>. Required.
	Dir string
	// Serve configures the underlying Server.
	Serve Config
	// WAL configures each tenant's log (fsync policy, segment size).
	WAL wal.Options
	// CompactEvery compacts a tenant's log to a snapshot record every this
	// many epochs; <= 0 selects 32.
	CompactEvery int
	// DefaultTimeout bounds jobs whose request carries no deadline; zero
	// leaves them unbounded.
	DefaultTimeout time.Duration
}

// Daemon is a Server plus durable per-tenant state.
type Daemon struct {
	cfg   DaemonConfig
	srv   *Server
	cache *Cache

	mu      sync.Mutex
	tenants map[string]*tenantSession
}

// tenantSession is one tenant's durable state: the mutable matrix its
// epochs fold into, the immutable snapshot jobs solve over, and the WAL
// that makes both survive a crash. Tenants serving percentile advice
// additionally carry one tail matrix — the percentile estimate their
// epochs post tail rows into — with its own snapshot and fingerprint
// chain, since percentile and mean matrices are distinct cache keys. The
// session lock serializes epoch appends, advice logging, and compaction,
// so WAL order always matches state mutation order — the property replay
// depends on.
type tenantSession struct {
	name string

	mu           sync.Mutex
	log          *wal.Log
	mm           *core.MutableCostMatrix
	snap         *core.CostMatrix
	fp           core.Fingerprint
	tailPct      float64
	tailMM       *core.MutableCostMatrix
	tailSnap     *core.CostMatrix
	tailFP       core.Fingerprint
	epoch        int
	lastAdvice   *wal.AdviceRecord
	sinceCompact int
}

// OpenDaemon opens (or creates) the WAL root, recovers every tenant found
// there — replaying epochs into rebuilt matrices, verifying fingerprints
// bit-for-bit, restoring each tenant's last advice as its warm-start
// incumbent, and re-seeding the shared artifact cache — and only then
// starts the serving fabric. A fingerprint mismatch or mid-log corruption
// fails the open: serving advice from silently divergent state is the one
// thing a durable daemon must never do.
func OpenDaemon(cfg DaemonConfig) (*Daemon, error) {
	if cfg.Dir == "" {
		return nil, fmt.Errorf("serve: daemon requires a WAL directory")
	}
	if cfg.CompactEvery <= 0 {
		cfg.CompactEvery = 32
	}
	if cfg.Serve.Cache == nil {
		cfg.Serve.Cache = NewCache(0)
	}
	root := filepath.Join(cfg.Dir, "tenants")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	d := &Daemon{cfg: cfg, cache: cfg.Serve.Cache, tenants: map[string]*tenantSession{}}

	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("serve: %w", err)
	}
	type recovery struct {
		tenant string
		dir    string
		sess   *tenantSession
		err    error
	}
	var recs []*recovery
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		raw, err := hex.DecodeString(e.Name())
		if err != nil {
			return nil, fmt.Errorf("serve: alien tenant directory %q", e.Name())
		}
		recs = append(recs, &recovery{tenant: string(raw), dir: filepath.Join(root, e.Name())})
	}

	// Replay tenant logs concurrently: per-tenant logs are independent by
	// construction, each replay applies its own records strictly in order,
	// and fingerprint verification stays per-epoch inside openSession — so
	// restart time scales with the slowest tenant, not the fleet. Everything
	// order-sensitive happens after the barrier, in directory (sorted,
	// os.ReadDir's contract) order: the error reported is the first failing
	// tenant's in that order, and cache re-seeding is a deterministic
	// sequential pass, so recovered cache state is bit-independent of how
	// replays were scheduled.
	par.For(len(recs), func(lo, hi int) {
		for _, r := range recs[lo:hi] {
			r.sess, r.err = openSession(r.dir, r.tenant, cfg.WAL)
		}
	})
	closeAll := func() {
		for _, r := range recs {
			if r.sess != nil {
				r.sess.log.Close()
			}
		}
	}
	for _, r := range recs {
		if r.err != nil {
			closeAll()
			return nil, r.err
		}
	}
	for _, r := range recs {
		if err := d.reseedCache(r.sess); err != nil {
			closeAll()
			return nil, err
		}
		d.tenants[r.sess.name] = r.sess
	}

	d.srv = New(cfg.Serve)
	return d, nil
}

// openSession opens one tenant's log and replays it into a fresh session.
// Every epoch's fingerprint is re-derived from the rebuilt matrix and
// compared bit-for-bit with the logged one.
func openSession(dir, tenant string, opts wal.Options) (*tenantSession, error) {
	sess := &tenantSession{name: tenant}
	var mm, tailMM *core.MutableCostMatrix
	apply := func(epoch int, fp core.Fingerprint) error {
		if got := mm.Fingerprint(); got != fp {
			return fmt.Errorf("serve: tenant %q epoch %d: recovered fingerprint %016x != logged %016x",
				tenant, epoch, uint64(got), uint64(fp))
		}
		sess.epoch, sess.fp = epoch, fp
		return nil
	}
	applyTail := func(epoch int, pct float64, fp core.Fingerprint) error {
		if got := tailMM.Fingerprint(); got != fp {
			return fmt.Errorf("serve: tenant %q epoch %d: recovered p%g fingerprint %016x != logged %016x",
				tenant, epoch, pct, uint64(got), uint64(fp))
		}
		sess.tailPct, sess.tailFP = pct, fp
		return nil
	}
	fold := func(dst *core.MutableCostMatrix, rows []wal.RowDelta) {
		for _, delta := range rows {
			for j, v := range delta.Values {
				dst.Set(delta.Row, j, v)
			}
		}
	}
	log, err := wal.Open(dir, opts, func(rec wal.Record) error {
		switch r := rec.(type) {
		case *wal.EpochRecord:
			if mm == nil {
				mm = core.NewMutableCostMatrix(r.N)
			} else if mm.Size() != r.N {
				return fmt.Errorf("serve: tenant %q: epoch %d resizes the matrix %d -> %d",
					tenant, r.Epoch, mm.Size(), r.N)
			}
			fold(mm, r.Rows)
			if r.TailPct != 0 {
				if tailMM == nil {
					tailMM = core.NewMutableCostMatrix(r.N)
				} else if sess.tailPct != r.TailPct {
					return fmt.Errorf("serve: tenant %q: epoch %d changes the tail percentile p%g -> p%g",
						tenant, r.Epoch, sess.tailPct, r.TailPct)
				}
				fold(tailMM, r.TailRows)
				if err := applyTail(r.Epoch, r.TailPct, r.TailFingerprint); err != nil {
					return err
				}
			}
			return apply(r.Epoch, r.Fingerprint)
		case *wal.AdviceRecord:
			sess.lastAdvice = r
			return nil
		case *wal.SnapshotRecord:
			// A snapshot resets state: whatever preceded it is history the
			// compaction already folded in.
			n := r.Matrix.Size()
			mm = core.NewMutableCostMatrix(n)
			for i := 0; i < n; i++ {
				for j, v := range r.Matrix.Row(i) {
					mm.Set(i, j, v)
				}
			}
			tailMM, sess.tailPct, sess.tailFP = nil, 0, 0
			if r.Tail != nil {
				tailMM = core.NewMutableCostMatrix(n)
				for i := 0; i < n; i++ {
					for j, v := range r.Tail.Row(i) {
						tailMM.Set(i, j, v)
					}
				}
				if err := applyTail(r.Epoch, r.TailPct, r.TailFingerprint); err != nil {
					return err
				}
			}
			sess.lastAdvice = r.Advice
			return apply(r.Epoch, r.Fingerprint)
		}
		return fmt.Errorf("serve: tenant %q: unexpected record %T", tenant, rec)
	})
	if err != nil {
		return nil, err
	}
	sess.log = log
	if mm != nil {
		snap, _ := mm.Snapshot()
		sess.mm, sess.snap = mm, snap
	}
	if tailMM != nil {
		snap, _ := tailMM.Snapshot()
		sess.tailMM, sess.tailSnap = tailMM, snap
	}
	return sess, nil
}

// reseedCache warms the shared cache with the recovered tenant's matrix
// artifacts under its current fingerprint, keyed by the solver
// configuration of its last advice — the configuration its next advise is
// overwhelmingly likely to repeat. Matrix artifacts derive from costs
// alone, so a minimal one-node problem is enough to compute them; graph
// family artifacts are not persisted and re-warm on first use.
func (d *Daemon) reseedCache(sess *tenantSession) error {
	adv := sess.lastAdvice
	if adv == nil || sess.snap == nil {
		return nil
	}
	// The matrix the next same-configuration advise searches is the one the
	// last advice recorded: percentile advice runs over the tail matrix, so
	// its artifacts live under the tail fingerprint, not the mean's.
	fp, snap := sess.fp, sess.snap
	spec := advisor.ObjectiveSpec{Metric: advisor.Metric(adv.Metric)}
	if spec.TailPercentile() > 0 {
		if sess.tailSnap == nil {
			return nil
		}
		fp, snap = sess.tailFP, sess.tailSnap
	}
	prob, err := solver.NewProblem(core.NewGraph(1), snap, solver.LongestLink)
	if err != nil {
		return fmt.Errorf("serve: tenant %q: re-seeding cache: %w", sess.name, err)
	}
	prep := prob.Prep()
	name := adv.SolverName
	if name == "" {
		name = "portfolio"
	}
	k := adv.ClusterK
	if k == 0 && (name == "cp" || name == "portfolio") {
		k = 20
	}
	switch name {
	case "cp", "portfolio":
		if _, err := d.cache.Rounded(fp, k, prep); err != nil {
			return err
		}
	case "mip":
		if k > 0 {
			if _, err := d.cache.Rounded(fp, k, prep); err != nil {
				return err
			}
		}
	}
	if name == "g1" || name == "portfolio" {
		d.cache.CheapestRows(fp, prep)
	}
	return nil
}

// session returns the tenant's session, creating its directory and log on
// first use when create is set.
func (d *Daemon) session(tenant string, create bool) (*tenantSession, error) {
	d.mu.Lock()
	defer d.mu.Unlock()
	if s, ok := d.tenants[tenant]; ok {
		return s, nil
	}
	if !create {
		return nil, fmt.Errorf("%w %q", ErrUnknownTenant, tenant)
	}
	dir := filepath.Join(d.cfg.Dir, "tenants", hex.EncodeToString([]byte(tenant)))
	s, err := openSession(dir, tenant, d.cfg.WAL)
	if err != nil {
		return nil, err
	}
	d.tenants[tenant] = s
	return s, nil
}

// TailUpdate carries one epoch's percentile-matrix rows, posted alongside
// the mean rows by producers that maintain quantile sketches (the CLI's
// streaming fleet, or any client mirroring measure.Epoch.Tails). A tenant
// keeps exactly one tail matrix; every posted update must carry the same
// percentile.
type TailUpdate struct {
	// Pct is the percentile the rows estimate (e.g. 95 or 99); required
	// and constant per tenant.
	Pct float64
	// Rows are the changed tail rows, full post-change contents, same
	// contract as the mean rows.
	Rows []wal.RowDelta
}

// validateRows checks one row-delta set against the epoch's matrix size.
func validateRows(what string, n int, rows []wal.RowDelta) error {
	for _, delta := range rows {
		if delta.Row < 0 || delta.Row >= n {
			return fmt.Errorf("serve: %s row %d out of range [0,%d)", what, delta.Row, n)
		}
		if len(delta.Values) != n {
			return fmt.Errorf("serve: %s row %d carries %d values, want %d", what, delta.Row, len(delta.Values), n)
		}
		for j, v := range delta.Values {
			if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
				return fmt.Errorf("serve: %s row %d col %d: invalid cost %g", what, delta.Row, j, v)
			}
			if j == delta.Row && v != 0 {
				return fmt.Errorf("serve: %s row %d: nonzero diagonal %g", what, delta.Row, v)
			}
		}
	}
	return nil
}

// logRows converts a published changed-row set into WAL row deltas.
func logRows(m *core.CostMatrix, changed []int, n int) []wal.RowDelta {
	rows := make([]wal.RowDelta, 0, len(changed))
	for _, row := range changed {
		vals := make([]float64, n)
		copy(vals, m.Row(row))
		rows = append(rows, wal.RowDelta{Row: row, Values: vals})
	}
	return rows
}

// AppendEpoch applies one epoch of cost updates to the tenant's matrix:
// validate, fold into the mutable matrix, log the actually-changed rows
// (with the new fingerprint) to the WAL, and only then publish the new
// snapshot and retire the previous fingerprint from the cache. When
// AppendEpoch returns, the epoch is as durable as the fsync policy
// promises. Rows beyond the changed set cost nothing: a Set that does not
// change a bit leaves the row clean and unlogged.
//
// tail, when non-nil, posts the epoch's percentile-matrix rows in the same
// durability unit: both matrices mutate under one WAL record, so replay can
// never observe a mean without its tail. Percentile advise calls
// (Metric p95/p99) require the tenant to have posted a tail of the matching
// percentile.
func (d *Daemon) AppendEpoch(tenant string, n int, rows []wal.RowDelta, tail *TailUpdate) (epoch int, fp core.Fingerprint, err error) {
	if tenant == "" {
		return 0, 0, fmt.Errorf("serve: epoch without a tenant")
	}
	if n <= 0 {
		return 0, 0, fmt.Errorf("serve: epoch with matrix size %d", n)
	}
	if err := validateRows("epoch", n, rows); err != nil {
		return 0, 0, err
	}
	if tail != nil {
		if tail.Pct <= 0 || tail.Pct >= 100 {
			return 0, 0, fmt.Errorf("serve: epoch tail percentile %g outside (0,100)", tail.Pct)
		}
		if err := validateRows("epoch tail", n, tail.Rows); err != nil {
			return 0, 0, err
		}
	}
	sess, err := d.session(tenant, true)
	if err != nil {
		return 0, 0, err
	}

	sess.mu.Lock()
	defer sess.mu.Unlock()
	if sess.mm == nil {
		sess.mm = core.NewMutableCostMatrix(n)
	} else if sess.mm.Size() != n {
		return 0, 0, fmt.Errorf("serve: tenant %q matrix is %d x %d, epoch says %d", tenant, sess.mm.Size(), sess.mm.Size(), n)
	}
	if tail != nil && sess.tailMM != nil && sess.tailPct != tail.Pct {
		return 0, 0, fmt.Errorf("serve: tenant %q tail matrix is p%g, epoch posts p%g (one tail percentile per tenant)",
			tenant, sess.tailPct, tail.Pct)
	}
	for _, delta := range rows {
		for j, v := range delta.Values {
			sess.mm.Set(delta.Row, j, v)
		}
	}
	oldFP := sess.fp
	ep := measure.PublishEpoch(sess.mm, 0, true, 0)
	sess.epoch++

	rec := &wal.EpochRecord{Epoch: sess.epoch, Fingerprint: ep.Fingerprint, N: n,
		Rows: logRows(ep.Matrix, ep.ChangedRows, n)}

	var tm measure.TailMatrix
	oldTailFP := sess.tailFP
	if tail != nil {
		if sess.tailMM == nil {
			sess.tailMM, sess.tailPct = core.NewMutableCostMatrix(n), tail.Pct
		}
		for _, delta := range tail.Rows {
			for j, v := range delta.Values {
				sess.tailMM.Set(delta.Row, j, v)
			}
		}
		tm = measure.PublishTail(sess.tailMM, tail.Pct)
		rec.TailPct, rec.TailFingerprint = tm.Pct, tm.Fingerprint
		rec.TailRows = logRows(tm.Matrix, tm.ChangedRows, n)
	}

	if err := sess.log.Append(rec); err != nil {
		return 0, 0, err
	}

	if oldFP != 0 && oldFP != ep.Fingerprint {
		d.cache.Supersede(oldFP, ep.Fingerprint, ep.ChangedRows)
	}
	sess.snap, sess.fp = ep.Matrix, ep.Fingerprint
	if tail != nil {
		if oldTailFP != 0 && oldTailFP != tm.Fingerprint {
			d.cache.Supersede(oldTailFP, tm.Fingerprint, tm.ChangedRows)
		}
		sess.tailSnap, sess.tailFP = tm.Matrix, tm.Fingerprint
	}

	sess.sinceCompact++
	if sess.sinceCompact >= d.cfg.CompactEvery {
		snap := &wal.SnapshotRecord{Epoch: sess.epoch, Fingerprint: sess.fp, Matrix: sess.snap, Advice: sess.lastAdvice,
			Tail: sess.tailSnap, TailPct: sess.tailPct, TailFingerprint: sess.tailFP}
		if err := sess.log.Compact(snap); err != nil {
			return 0, 0, err
		}
		sess.sinceCompact = 0
	}
	return sess.epoch, sess.fp, nil
}

// AdviseRequest is one advise call against a tenant's current matrix.
type AdviseRequest struct {
	// Tenant selects whose matrix to solve over; it must have at least one
	// epoch. Required.
	Tenant string
	// Graph defines the deployment problem's communication graph; required.
	Graph *core.Graph
	// ObjectiveSpec says what to optimize. Percentile metrics (p95, p99)
	// search the tenant's tail matrix — which its epochs must have posted
	// (TailUpdate) at the matching percentile — tie-breaking equal tail
	// costs on the mean matrix. The spec's Scheme is ignored: the daemon
	// serves posted matrices, it does not measure.
	advisor.ObjectiveSpec
	// SolverName, ClusterK, RoundBudget, Seed: as in Job.
	SolverName  string
	ClusterK    int
	RoundBudget solver.Budget
	Seed        int64
	// Timeout bounds the solve; zero selects DaemonConfig.DefaultTimeout.
	Timeout time.Duration
	// NoWarmStart suppresses seeding the solve from the tenant's last
	// logged advice.
	NoWarmStart bool
	// OnRound, when non-nil, streams each round as it completes (worker
	// goroutine; the HTTP front end flushes one JSON line per round).
	OnRound func(advisor.Round)
}

// Advise solves the request over the tenant's current matrix snapshot and,
// on success, logs the served advice to the tenant's WAL — making it the
// warm-start incumbent for the tenant's next advise, in this process
// lifetime or any later one. Admission errors (ErrBusy, ErrOverBudget)
// pass through for the caller's retry policy.
func (d *Daemon) Advise(req AdviseRequest) (*Result, error) {
	sess, err := d.session(req.Tenant, false)
	if err != nil {
		return nil, err
	}
	sess.mu.Lock()
	if sess.snap == nil {
		sess.mu.Unlock()
		return nil, fmt.Errorf("serve: tenant %q has no epochs", req.Tenant)
	}
	snap, fp, epoch := sess.snap, sess.fp, sess.epoch
	var tailSnap *core.CostMatrix
	if pct := req.TailPercentile(); pct > 0 {
		switch {
		case sess.tailSnap == nil:
			sess.mu.Unlock()
			return nil, fmt.Errorf("serve: tenant %q has no percentile matrix — metric %q needs tail rows posted with its epochs",
				req.Tenant, req.Metric)
		case sess.tailPct != pct:
			sess.mu.Unlock()
			return nil, fmt.Errorf("serve: tenant %q tail matrix is p%g, metric %q wants p%g",
				req.Tenant, sess.tailPct, req.Metric, pct)
		}
		tailSnap = sess.tailSnap
	}
	var warm core.Deployment
	if !req.NoWarmStart && sess.lastAdvice != nil && req.Graph != nil {
		dep := core.Deployment(sess.lastAdvice.Deployment)
		// Adopt the incumbent only when it fits this request's problem
		// shape; a tenant re-advising a different graph starts cold.
		if len(dep) == req.Graph.NumNodes() && dep.Validate(snap.Size()) == nil {
			warm = dep.Clone()
		}
	}
	sess.mu.Unlock()

	timeout := req.Timeout
	if timeout == 0 {
		timeout = d.cfg.DefaultTimeout
	}
	tk, err := d.srv.Submit(Job{
		Tenant:        req.Tenant,
		Graph:         req.Graph,
		ObjectiveSpec: req.ObjectiveSpec,
		Matrix:        snap,
		TailMatrix:    tailSnap,
		SolverName:    req.SolverName,
		ClusterK:      req.ClusterK,
		RoundBudget:   req.RoundBudget,
		Seed:          req.Seed,
		Timeout:       timeout,
		WarmStart:     warm,
		OnRound:       req.OnRound,
	})
	if err != nil {
		return nil, err
	}
	res := tk.Wait()
	if res.Err == nil && res.Outcome != nil && res.Outcome.Deployment != nil {
		rec := &wal.AdviceRecord{
			Epoch:       epoch,
			Fingerprint: fp,
			SolverName:  req.SolverName,
			ClusterK:    req.ClusterK,
			Objective:   string(req.Objective),
			Metric:      string(req.WithDefaults().Metric),
			Winner:      outcomeWinner(res.Outcome),
			Cost:        res.Outcome.Cost,
			Deployment:  res.Outcome.Deployment,
		}
		// The session lock holds advice logging and incumbent adoption
		// together, so WAL order matches incumbent order and replay
		// restores exactly the incumbent a living daemon would hold.
		sess.mu.Lock()
		err := sess.log.Append(rec)
		if err == nil {
			sess.lastAdvice = rec
		}
		sess.mu.Unlock()
		if err != nil {
			return nil, err
		}
	}
	return res, nil
}

// outcomeWinner is the most recent round winner, skipping rounds the
// carried incumbent survived.
func outcomeWinner(out *advisor.StreamOutcome) string {
	for i := len(out.Rounds) - 1; i >= 0; i-- {
		if out.Rounds[i].Winner != "" {
			return out.Rounds[i].Winner
		}
	}
	return ""
}

// TenantStatus is one tenant's durable-state snapshot.
type TenantStatus struct {
	Tenant      string
	Epoch       int
	Fingerprint core.Fingerprint
	Advised     bool
	WAL         wal.Stats
}

// DaemonStats combines the serving fabric's counters with every tenant's
// durable state.
type DaemonStats struct {
	Server  Stats
	Tenants []TenantStatus
}

// Stats snapshots the daemon.
func (d *Daemon) Stats() DaemonStats {
	st := DaemonStats{Server: d.srv.Stats()}
	d.mu.Lock()
	sessions := make([]*tenantSession, 0, len(d.tenants))
	//cloudia:nondet-ok collection order is irrelevant: st.Tenants is sorted by tenant name below
	for _, s := range d.tenants {
		sessions = append(sessions, s)
	}
	d.mu.Unlock()
	for _, s := range sessions {
		s.mu.Lock()
		st.Tenants = append(st.Tenants, TenantStatus{
			Tenant:      s.name,
			Epoch:       s.epoch,
			Fingerprint: s.fp,
			Advised:     s.lastAdvice != nil,
			WAL:         s.log.Stats(),
		})
		s.mu.Unlock()
	}
	sort.Slice(st.Tenants, func(i, j int) bool { return st.Tenants[i].Tenant < st.Tenants[j].Tenant })
	return st
}

// Server exposes the underlying serving fabric (tests and the batch CLI
// path share it).
func (d *Daemon) Server() *Server { return d.srv }

// Close drains the serving fabric — in-flight jobs finish, their advice is
// logged — then flushes and closes every tenant's WAL. This is the SIGTERM
// path: drain first, sync last, so nothing acknowledged is lost.
func (d *Daemon) Close() error {
	d.srv.Close()
	d.mu.Lock()
	defer d.mu.Unlock()
	// Close in tenant-name order so "first error" means the same tenant on
	// every run — map order would report a different one each time.
	names := make([]string, 0, len(d.tenants))
	//cloudia:nondet-ok key collection only; the close loop below runs in sorted order
	for name := range d.tenants {
		names = append(names, name)
	}
	sort.Strings(names)
	var firstErr error
	for _, name := range names {
		s := d.tenants[name]
		s.mu.Lock()
		if err := s.log.Close(); err != nil && firstErr == nil {
			firstErr = err
		}
		s.mu.Unlock()
	}
	return firstErr
}
