package measure

import (
	"sort"
	"testing"

	"cloudia/internal/par"
)

// bracket returns the order statistics lo, hi surrounding the linearly
// interpolated p-quantile rank of xs — the exact-value envelope the sketch
// estimate must land in after widening by its relative error bound.
func bracket(xs []float64, p float64) (lo, hi float64) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	r := p / 100 * float64(len(sorted)-1)
	i := int(r)
	j := i
	if float64(i) < r {
		j = i + 1
	}
	if j >= len(sorted) {
		j = len(sorted) - 1
	}
	return sorted[i], sorted[j]
}

// TestTailMatrixWithinBound pins the accuracy side of the tentpole: every
// sampled link's sketch p99 lands within the sketch's relative-error bound
// of the exact percentile, where "exact" is bracketed by the order
// statistics around stats.Percentile's interpolation point.
func TestTailMatrixWithinBound(t *testing.T) {
	dc, insts := testFleet(t, 12, 1701)
	res, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 4000, Seed: 7, TailAlpha: DefaultTailAlpha,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.TailAlpha() != DefaultTailAlpha {
		t.Fatalf("TailAlpha = %g, want %g", res.TailAlpha(), DefaultTailAlpha)
	}
	for _, pct := range []float64{95, 99} {
		tail, err := res.TailMatrix(pct)
		if err != nil {
			t.Fatal(err)
		}
		exact := res.PercentileMatrix(pct)
		alpha := res.TailAlpha()
		checked := 0
		for i := 0; i < res.N; i++ {
			for j := 0; j < res.N; j++ {
				if i == j {
					continue
				}
				if res.SampleCount(i, j) == 0 {
					// Fallback entries must agree exactly.
					if tail.At(i, j) != exact.At(i, j) {
						t.Fatalf("p%g (%d,%d): fallback mismatch %g vs %g",
							pct, i, j, tail.At(i, j), exact.At(i, j))
					}
					continue
				}
				lo, hi := bracket(res.samples[i*res.N+j], pct)
				got := tail.At(i, j)
				if got < lo*(1-alpha) || got > hi*(1+alpha) {
					t.Fatalf("p%g (%d,%d): sketch %g outside [%g, %g] (exact %g)",
						pct, i, j, got, lo*(1-alpha), hi*(1+alpha), exact.At(i, j))
				}
				checked++
			}
		}
		if checked == 0 {
			t.Fatalf("p%g: no sampled links checked", pct)
		}
	}
}

// TestStreamTailEpochs pins the streaming side: epochs carry p95/p99 tail
// matrices with exact changed-row sets and fingerprints, the final epoch's
// tails are bit-identical to the batch Result's TailMatrix, and the whole
// sequence is invariant under the par worker count.
func TestStreamTailEpochs(t *testing.T) {
	dc, insts := testFleet(t, 10, 1701)
	opts := Options{Scheme: Staged, DurationMS: 3000, Seed: 11, TailAlpha: DefaultTailAlpha}

	type tailState struct {
		pct     float64
		fp      uint64
		changed []int
		vals    []float64
	}
	collect := func(workers int) ([][]tailState, *Result) {
		defer par.SetWorkers(par.Workers())
		par.SetWorkers(workers)
		st, err := Stream(dc, insts, opts)
		if err != nil {
			t.Fatal(err)
		}
		var out [][]tailState
		var prev [][]float64
		for ep := range st.Epochs {
			if len(ep.Tails) != len(TailPercentiles) {
				t.Fatalf("epoch %d: %d tails, want %d", ep.Index, len(ep.Tails), len(TailPercentiles))
			}
			var states []tailState
			for x, tm := range ep.Tails {
				if tm.Pct != TailPercentiles[x] {
					t.Fatalf("epoch %d tail %d: pct %g, want %g", ep.Index, x, tm.Pct, TailPercentiles[x])
				}
				if tm.Fingerprint == 0 {
					t.Fatalf("epoch %d p%g: zero fingerprint", ep.Index, tm.Pct)
				}
				if got := tm.Matrix.Fingerprint(); got != tm.Fingerprint {
					t.Fatalf("epoch %d p%g: incremental fp %x != recomputed %x", ep.Index, tm.Pct, tm.Fingerprint, got)
				}
				n := tm.Matrix.Size()
				flat := make([]float64, 0, n*n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						flat = append(flat, tm.Matrix.At(i, j))
					}
				}
				if prev == nil {
					prev = make([][]float64, len(TailPercentiles))
				}
				// Changed-row contract: a row is listed iff it differs from
				// the previous epoch's matrix for the same percentile.
				if prev[x] != nil {
					listed := make(map[int]bool, len(tm.ChangedRows))
					for _, r := range tm.ChangedRows {
						listed[r] = true
					}
					for i := 0; i < n; i++ {
						differs := false
						for j := 0; j < n; j++ {
							if flat[i*n+j] != prev[x][i*n+j] {
								differs = true
								break
							}
						}
						if differs != listed[i] {
							t.Fatalf("epoch %d p%g row %d: differs=%v listed=%v", ep.Index, tm.Pct, i, differs, listed[i])
						}
					}
				}
				prev[x] = flat
				states = append(states, tailState{pct: tm.Pct, fp: uint64(tm.Fingerprint), changed: tm.ChangedRows, vals: flat})
			}
			out = append(out, states)
		}
		return out, st.Wait()
	}

	ref, res := collect(1)
	if len(ref) < 2 {
		t.Fatalf("only %d epochs", len(ref))
	}

	// Final epoch tails must be bit-identical to the batch-side sketches.
	final := ref[len(ref)-1]
	for _, ts := range final {
		batch, err := res.TailMatrix(ts.pct)
		if err != nil {
			t.Fatal(err)
		}
		n := batch.Size()
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if ts.vals[i*n+j] != batch.At(i, j) {
					t.Fatalf("final epoch p%g (%d,%d): %g != batch %g", ts.pct, i, j, ts.vals[i*n+j], batch.At(i, j))
				}
			}
		}
	}

	for _, w := range []int{2, 5, 8} {
		got, _ := collect(w)
		if len(got) != len(ref) {
			t.Fatalf("workers=%d: %d epochs, want %d", w, len(got), len(ref))
		}
		for e := range ref {
			for x := range ref[e] {
				a, b := ref[e][x], got[e][x]
				if a.fp != b.fp {
					t.Fatalf("workers=%d epoch %d p%g: fp %x != %x", w, e, a.pct, b.fp, a.fp)
				}
				if len(a.changed) != len(b.changed) {
					t.Fatalf("workers=%d epoch %d p%g: changed rows differ", w, e, a.pct)
				}
				for i := range a.changed {
					if a.changed[i] != b.changed[i] {
						t.Fatalf("workers=%d epoch %d p%g: changed rows differ at %d", w, e, a.pct, i)
					}
				}
				for i := range a.vals {
					if a.vals[i] != b.vals[i] {
						t.Fatalf("workers=%d epoch %d p%g: matrix bit-differs at flat index %d", w, e, a.pct, i)
					}
				}
			}
		}
	}
}

// TestStreamNoTailsWhenDisabled: without TailAlpha the epoch surface is
// unchanged from the mean-only contract.
func TestStreamNoTailsWhenDisabled(t *testing.T) {
	dc, insts := testFleet(t, 6, 1701)
	st, err := Stream(dc, insts, Options{Scheme: Staged, DurationMS: 1000, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	for ep := range st.Epochs {
		if len(ep.Tails) != 0 {
			t.Fatalf("epoch %d: unexpected tails", ep.Index)
		}
		if ep.Tail(99) != nil {
			t.Fatal("Tail(99) must be nil without sketches")
		}
	}
	if _, err := st.Wait().TailMatrix(99); err == nil {
		t.Fatal("TailMatrix must error when sketches are disabled")
	}
}

func TestTailAlphaValidation(t *testing.T) {
	dc, insts := testFleet(t, 4, 1701)
	if _, err := Run(dc, insts, Options{Scheme: Staged, DurationMS: 100, TailAlpha: -0.1}); err == nil {
		t.Fatal("negative TailAlpha must be rejected")
	}
	if _, err := Run(dc, insts, Options{Scheme: Staged, DurationMS: 100, TailAlpha: 1.5}); err == nil {
		t.Fatal("TailAlpha >= 1 must be rejected")
	}
}
