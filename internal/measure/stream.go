package measure

import (
	"fmt"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/topology"
)

// This file implements streaming measurement: instead of materializing the
// full m x m sample set before any solver sees a cost (the batch barrier of
// Run), Stream publishes the running mean-latency estimate as a sequence of
// matrix epochs while the measurement is still in flight. Each epoch carries
// the set of rows that actually changed, which is the invalidation unit of
// the solver preprocessing cache — advising can begin after the first epoch
// and refine against later ones, overlapping measurement with search the way
// the paper's staged scheme overlaps probes with each other (Sect. 5), and
// reproducing the Fig. 5 convergence story end to end.

// Epoch is one published state of the streaming mean-cost estimate.
type Epoch struct {
	// Index numbers epochs from 1 in publication order.
	Index int
	// AtMS is the virtual measurement time of the snapshot.
	AtMS float64
	// Final marks the epoch published after the measurement budget expired.
	// Its Matrix is bit-identical to batch Run's MeanMatrix for the same
	// options and seed.
	Final bool
	// Matrix is an immutable snapshot of the running mean estimate, with the
	// usual global-mean fallback on still-unsampled links.
	Matrix *core.CostMatrix
	// ChangedRows lists, in ascending order, the rows whose values differ
	// from the previous epoch's matrix. Rows not listed are bitwise
	// identical, so epoch consumers may reuse anything derived from them.
	ChangedRows []int
	// Fingerprint is Matrix's content hash, maintained incrementally by the
	// producer (only changed rows are rehashed per epoch). Zero means the
	// producer did not fill it; consumers needing a key then fall back to
	// Matrix.Fingerprint(). Content-addressed caches key shared
	// preprocessing artifacts by it.
	Fingerprint core.Fingerprint
	// Samples is the cumulative RTT observation count at the snapshot.
	Samples int64
	// Tails holds the percentile matrices published alongside the mean,
	// in ascending-percentile order (TailPercentiles). Present only when
	// the producer maintains quantile sketches (Options.TailAlpha > 0, or
	// a daemon tenant posting tail rows); empty otherwise.
	Tails []TailMatrix
}

// TailPercentiles lists the percentile matrices a sketch-enabled streaming
// measurement publishes with every epoch, ascending.
var TailPercentiles = []float64{95, 99}

// TailMatrix is one percentile matrix published with an epoch. It carries
// the same invariants as the epoch's mean matrix: an immutable snapshot,
// the exact ascending set of rows that changed since the previous epoch's
// matrix for the same percentile, and an incrementally maintained content
// fingerprint of its own — percentile matrices are distinct cache keys
// from the mean matrix they ride along with.
type TailMatrix struct {
	// Pct is the percentile, e.g. 95 or 99.
	Pct float64
	// Matrix is the immutable percentile estimate snapshot.
	Matrix *core.CostMatrix
	// ChangedRows lists, ascending, the rows that differ from the previous
	// epoch's matrix for this percentile. Rows not listed are bitwise
	// identical.
	ChangedRows []int
	// Fingerprint is Matrix's content hash, maintained incrementally by
	// the producer. Zero means unset; consumers fall back to
	// Matrix.Fingerprint().
	Fingerprint core.Fingerprint
}

// Tail returns the published percentile matrix for pct, or nil when this
// epoch carries none (producer without sketches, or an unpublished
// percentile).
func (e *Epoch) Tail(pct float64) *TailMatrix {
	for i := range e.Tails {
		if e.Tails[i].Pct == pct {
			return &e.Tails[i]
		}
	}
	return nil
}

// PublishEpoch folds one snapshot of a mutable estimate into an Epoch
// value: the immutable matrix copy, the exact changed-row set since the
// previous snapshot, and the incrementally maintained fingerprint. It is
// the single point where an epoch's invariants are assembled — the
// streaming measurement publishes through it, and so does the durable
// serve daemon when a tenant posts an epoch over HTTP, which is what keeps
// daemon-side fingerprints bit-compatible with measurement-side ones.
func PublishEpoch(mm *core.MutableCostMatrix, atMS float64, final bool, samples int64) Epoch {
	snap, changed := mm.Snapshot()
	return Epoch{
		Index:       mm.Epoch(),
		AtMS:        atMS,
		Final:       final,
		Matrix:      snap,
		ChangedRows: changed,
		Fingerprint: mm.Fingerprint(),
		Samples:     samples,
	}
}

// PublishTail folds one snapshot of a mutable percentile estimate into a
// TailMatrix, the tail counterpart of PublishEpoch: immutable snapshot,
// exact changed rows, incremental fingerprint. Shared by Stream and the
// durable daemon so tail fingerprints stay bit-compatible across both
// producers.
func PublishTail(mm *core.MutableCostMatrix, pct float64) TailMatrix {
	snap, changed := mm.Snapshot()
	return TailMatrix{
		Pct:         pct,
		Matrix:      snap,
		ChangedRows: changed,
		Fingerprint: mm.Fingerprint(),
	}
}

// Streamer is a measurement in flight. Epochs delivers the matrix epochs in
// order and is closed after the final epoch; Wait blocks until the
// measurement completes and returns the full aggregate result.
type Streamer struct {
	// Epochs is buffered to hold every epoch of the run, so the measurement
	// never blocks on a slow consumer: a consumer that falls behind (e.g. a
	// solver round outliving an epoch period) simply finds several epochs
	// pending and can skip to the newest.
	Epochs <-chan Epoch

	done chan struct{}
	res  *Result
}

// Wait blocks until the measurement completes and returns its aggregate
// result: the same per-link aggregates Run would have produced for the same
// options. When the caller set SnapshotEveryMS explicitly, one convergence
// snapshot per published epoch is recorded too; under the defaulted period
// the epoch channel alone carries the matrices.
func (s *Streamer) Wait() *Result {
	<-s.done
	return s.res
}

// Stream starts a measurement whose running mean estimate is published as
// matrix epochs every Options.SnapshotEveryMS of virtual time (one eighth of
// the measurement budget when unset), plus a final epoch when the budget
// expires. Options are validated synchronously; the simulation itself runs
// on its own goroutine so the caller can consume epochs while measurement
// progresses.
//
// Equivalence guarantee: the final epoch's Matrix is bit-identical to
// Run(dc, instances, opts).MeanMatrix() for the same options and seed. Epoch
// snapshots only read the sample aggregates — they never touch the
// simulator or its RNG — so publishing them cannot perturb the measurement.
func Stream(dc *topology.Datacenter, instances []cloud.Instance, opts Options) (*Streamer, error) {
	if opts.SnapshotEveryMS < 0 {
		return nil, fmt.Errorf("measure: negative snapshot period %g", opts.SnapshotEveryMS)
	}
	// Full per-epoch matrices are retained in Result.Snapshots only when the
	// caller asked for a snapshot period, mirroring Run's opt-in; under the
	// defaulted period the epoch channel is the streaming product and the
	// Result stays lean.
	recordSnapshots := opts.SnapshotEveryMS > 0
	if opts.SnapshotEveryMS == 0 {
		opts.SnapshotEveryMS = opts.DurationMS / 8
	}
	m, o, err := prepare(dc, instances, opts)
	if err != nil {
		return nil, err
	}

	epochs := int(o.DurationMS/o.SnapshotEveryMS) + 2
	ch := make(chan Epoch, epochs)
	st := &Streamer{Epochs: ch, done: make(chan struct{}), res: m.res}

	go func() {
		defer close(st.done)
		defer close(ch)

		mm := core.NewMutableCostMatrix(m.n)
		fold := func(dst *core.MutableCostMatrix, src *core.CostMatrix) {
			for i := 0; i < m.n; i++ {
				for j := 0; j < m.n; j++ {
					if i != j {
						dst.Set(i, j, src.At(i, j))
					}
				}
			}
		}
		// With sketches enabled, each published percentile gets its own
		// mutable matrix so its changed-row sets and fingerprint evolve
		// independently of the mean's.
		var tails []*core.MutableCostMatrix
		if o.TailAlpha > 0 {
			tails = make([]*core.MutableCostMatrix, len(TailPercentiles))
			for i := range tails {
				tails[i] = core.NewMutableCostMatrix(m.n)
			}
		}
		emit := func(at float64, final bool) {
			// Fold the current estimate — the same MeanMatrix computation
			// batch consumers see — into the mutable matrix; Set marks a row
			// dirty only on a real value change, so the published
			// changed-row set is exact even though every entry is re-folded.
			est := m.res.MeanMatrix()
			if recordSnapshots {
				// Mirror Run's convergence record so Wait's Result serves
				// the same Fig. 5 analyses: one snapshot per epoch.
				m.res.Snapshots = append(m.res.Snapshots, Snapshot{AtMS: at, Mean: est})
			}
			fold(mm, est)
			ep := PublishEpoch(mm, at, final, m.res.TotalSamples)
			if tails != nil {
				for x, pct := range TailPercentiles {
					// TailMatrix cannot fail here: tails is non-nil only
					// when o.TailAlpha > 0, which enabled the sketches.
					tm, err := m.res.TailMatrix(pct)
					if err != nil {
						break
					}
					fold(tails[x], tm)
					ep.Tails = append(ep.Tails, PublishTail(tails[x], pct))
				}
			}
			ch <- ep
		}

		// Schedule the intermediate epochs exactly where Run schedules its
		// convergence snapshots, then drive the measurement to completion
		// and publish the final epoch from the drained aggregates.
		for t := o.SnapshotEveryMS; t < o.DurationMS; t += o.SnapshotEveryMS {
			t := t
			m.sim.At(t, func() { emit(t, false) })
		}
		m.start()
		m.sim.RunUntil(o.DurationMS)
		emit(o.DurationMS, true)
	}()
	return st, nil
}
