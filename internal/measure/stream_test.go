package measure

import (
	"testing"
)

// TestStreamFinalEpochMatchesRun is the streaming-vs-batch equivalence
// property: for every scheme and a spread of seeds, the final Stream epoch's
// matrix must be bit-identical to batch Run's MeanMatrix — both for a batch
// run with the same snapshot schedule and for a plain batch run with no
// snapshots at all (epoch publication must not perturb the measurement).
func TestStreamFinalEpochMatchesRun(t *testing.T) {
	dc, insts := testFleet(t, 7, 21)
	for _, scheme := range []Scheme{Token, Uncoordinated, Staged} {
		for _, seed := range []int64{1, 42, 1 << 40} {
			opts := Options{Scheme: scheme, DurationMS: 600, Seed: seed, SnapshotEveryMS: 150}
			st, err := Stream(dc, insts, opts)
			if err != nil {
				t.Fatalf("%s/%d: Stream: %v", scheme, seed, err)
			}
			var final *Epoch
			count := 0
			for ep := range st.Epochs {
				count++
				if ep.Index != count {
					t.Fatalf("%s/%d: epoch index %d at position %d", scheme, seed, ep.Index, count)
				}
				if ep.Final {
					final = &ep
				}
			}
			if final == nil || final.Index != count {
				t.Fatalf("%s/%d: final epoch missing or not last", scheme, seed)
			}

			for name, batchOpts := range map[string]Options{
				"same-snapshots": opts,
				"no-snapshots":   {Scheme: scheme, DurationMS: 600, Seed: seed},
			} {
				res, err := Run(dc, insts, batchOpts)
				if err != nil {
					t.Fatalf("%s/%d: Run(%s): %v", scheme, seed, name, err)
				}
				want := res.MeanMatrix()
				for i := 0; i < want.Size(); i++ {
					for j := 0; j < want.Size(); j++ {
						if got := final.Matrix.At(i, j); got != want.At(i, j) {
							t.Fatalf("%s/%d vs Run(%s): final epoch differs at (%d,%d): %v vs %v",
								scheme, seed, name, i, j, got, want.At(i, j))
						}
					}
				}
				if final.Samples != res.TotalSamples {
					t.Fatalf("%s/%d vs Run(%s): samples %d vs %d",
						scheme, seed, name, final.Samples, res.TotalSamples)
				}
			}
		}
	}
}

// TestStreamChangedRowsExact verifies the changed-row contract: rows listed
// in ChangedRows differ from the previous epoch, rows not listed are bitwise
// identical.
func TestStreamChangedRowsExact(t *testing.T) {
	dc, insts := testFleet(t, 6, 23)
	st, err := Stream(dc, insts, Options{Scheme: Staged, DurationMS: 1000, Seed: 5, SnapshotEveryMS: 200})
	if err != nil {
		t.Fatal(err)
	}
	var prev *Epoch
	for ep := range st.Epochs {
		ep := ep
		if prev != nil {
			changed := make(map[int]bool, len(ep.ChangedRows))
			for _, r := range ep.ChangedRows {
				changed[r] = true
			}
			for i := 0; i < ep.Matrix.Size(); i++ {
				rowDiffers := false
				for j := 0; j < ep.Matrix.Size(); j++ {
					if ep.Matrix.At(i, j) != prev.Matrix.At(i, j) {
						rowDiffers = true
						break
					}
				}
				if rowDiffers != changed[i] {
					t.Fatalf("epoch %d row %d: differs=%v but changed-listed=%v",
						ep.Index, i, rowDiffers, changed[i])
				}
			}
			if ep.AtMS <= prev.AtMS {
				t.Fatalf("epoch %d at %g not after %g", ep.Index, ep.AtMS, prev.AtMS)
			}
			if ep.Samples < prev.Samples {
				t.Fatalf("epoch %d sample count went backwards", ep.Index)
			}
		}
		prev = &ep
	}
	if prev == nil || !prev.Final {
		t.Fatal("stream ended without a final epoch")
	}
	// The caller set SnapshotEveryMS explicitly, so the aggregate result
	// carries one convergence snapshot per epoch (Run's opt-in, mirrored).
	if res := st.Wait(); len(res.Snapshots) != prev.Index {
		t.Fatalf("Wait result has %d snapshots, want one per epoch (%d)", len(res.Snapshots), prev.Index)
	}
}

// TestStreamDefaultEpochPeriod checks the DurationMS/8 default: 7
// intermediate epochs plus the final one.
func TestStreamDefaultEpochPeriod(t *testing.T) {
	dc, insts := testFleet(t, 5, 27)
	st, err := Stream(dc, insts, Options{Scheme: Staged, DurationMS: 800, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	for range st.Epochs {
		n++
	}
	if n != 8 {
		t.Fatalf("default period published %d epochs, want 8", n)
	}
	res := st.Wait()
	if res == nil || res.TotalSamples == 0 {
		t.Fatal("Wait did not return the aggregate result")
	}
	if len(res.Snapshots) != 0 {
		t.Fatalf("defaulted epoch period recorded %d snapshots; retention is opt-in", len(res.Snapshots))
	}
}

// TestStreamValidatesSynchronously ensures option errors surface from Stream
// itself, not from the measurement goroutine.
func TestStreamValidatesSynchronously(t *testing.T) {
	dc, insts := testFleet(t, 3, 29)
	if _, err := Stream(dc, insts, Options{Scheme: "bogus", DurationMS: 10}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if _, err := Stream(dc, insts, Options{Scheme: Staged, DurationMS: 10, SnapshotEveryMS: -1}); err == nil {
		t.Fatal("negative snapshot period accepted")
	}
	if _, err := Stream(dc, insts[:1], Options{Scheme: Staged, DurationMS: 10}); err == nil {
		t.Fatal("single instance accepted")
	}
}
