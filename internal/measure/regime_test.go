package measure

import (
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// Tests for time-anchored measurement on non-stationary networks
// (Options.StartHours + topology.Profile.RegimeHours) and for overlapped
// measurement (Options.Background).

func shiftingFleet(t *testing.T, n int, regimeHours float64, seed int64) (*topology.Datacenter, []cloud.Instance) {
	t.Helper()
	prof := topology.EC2Profile()
	prof.RegimeHours = regimeHours
	dc, err := topology.New(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := p.RunInstances(n)
	if err != nil {
		t.Fatal(err)
	}
	return dc, insts
}

func TestStartHoursMeasuresTheRightRegime(t *testing.T) {
	dc, insts := shiftingFleet(t, 10, 8, 1)
	// Two measurements in different regimes must differ substantially;
	// two in the same regime must agree closely.
	measureAt := func(hours float64) []float64 {
		res, err := Run(dc, insts, Options{
			Scheme: Staged, DurationMS: 3000, Seed: 3, StartHours: hours,
		})
		if err != nil {
			t.Fatal(err)
		}
		return stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
	}
	epoch0 := measureAt(1)
	epoch0b := measureAt(2) // same 8h regime window
	epoch1 := measureAt(9)  // next regime

	same, err := stats.RMSE(epoch0, epoch0b)
	if err != nil {
		t.Fatal(err)
	}
	diff, err := stats.RMSE(epoch0, epoch1)
	if err != nil {
		t.Fatal(err)
	}
	if diff < 3*same {
		t.Fatalf("cross-regime RMSE %g not clearly above within-regime RMSE %g", diff, same)
	}
}

func TestStationaryNetworkIgnoresStartHours(t *testing.T) {
	dc, insts := shiftingFleet(t, 8, 0, 5) // RegimeHours 0: stationary
	truthEarly := cloud.MeanRTTMatrix(dc, insts)
	res, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 3000, Seed: 7, StartHours: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	tv := stats.NormalizeUnit(truthEarly.OffDiagonal())
	ev := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
	rmse, err := stats.RMSE(tv, ev)
	if err != nil {
		t.Fatal(err)
	}
	// Only drift separates hour 100 from hour 0 on a stationary profile.
	if rmse > 0.02 {
		t.Fatalf("stationary network measured at hour 100 deviates: RMSE %g", rmse)
	}
}

func TestBackgroundTrafficValidation(t *testing.T) {
	dc, insts := shiftingFleet(t, 6, 0, 9)
	if _, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 100, Seed: 1,
		Background: &BackgroundTraffic{Pairs: [][2]int{{0, 1}}, MsgBytes: 0, IntervalMS: 1},
	}); err == nil {
		t.Fatal("zero background message size accepted")
	}
	if _, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 100, Seed: 1,
		Background: &BackgroundTraffic{Pairs: [][2]int{{0, 9}}, MsgBytes: 1024, IntervalMS: 1},
	}); err == nil {
		t.Fatal("out-of-range background pair accepted")
	}
	if _, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 100, Seed: 1,
		Background: &BackgroundTraffic{Pairs: [][2]int{{2, 2}}, MsgBytes: 1024, IntervalMS: 1},
	}); err == nil {
		t.Fatal("self-pair background accepted")
	}
}

func TestBackgroundTrafficDegradesAccuracy(t *testing.T) {
	dc, insts := shiftingFleet(t, 10, 0, 11)
	truth := stats.NormalizeUnit(cloud.MeanRTTMatrix(dc, insts).OffDiagonal())
	errOf := func(bg *BackgroundTraffic) float64 {
		res, err := Run(dc, insts, Options{
			Scheme: Staged, DurationMS: 1500, Seed: 13, Background: bg,
		})
		if err != nil {
			t.Fatal(err)
		}
		ev := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
		errs, err := stats.RelativeErrors(ev, truth)
		if err != nil {
			t.Fatal(err)
		}
		p90, err := stats.Percentile(errs, 90)
		if err != nil {
			t.Fatal(err)
		}
		return p90
	}
	clean := errOf(nil)
	var pairs [][2]int
	for i := 0; i < 10; i++ {
		pairs = append(pairs, [2]int{i, (i + 1) % 10})
	}
	// Saturating traffic: 16 KB both ways every 0.2 ms on every ring link.
	busy := errOf(&BackgroundTraffic{Pairs: pairs, MsgBytes: 16384, IntervalMS: 0.2})
	if busy <= clean {
		t.Fatalf("background traffic did not degrade accuracy: %g <= %g", busy, clean)
	}
}
