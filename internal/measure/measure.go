// Package measure implements ClouDiA's pairwise latency measurement schemes
// (Sect. 5): token passing, uncoordinated, and staged. All three estimate the
// mean round-trip time of small TCP messages for every ordered instance
// pair, trading measurement speed against cross-link interference:
//
//   - Token passing: a unique token serializes all probes. Interference-free
//     but sequential, so coverage per unit time is worst. It is the accuracy
//     baseline in Fig. 4.
//   - Uncoordinated: every instance continuously probes, all in parallel.
//     Fast, but replies contend with the replier's own outstanding probe
//     (single-threaded event loop, hypervisor scheduling), inflating and
//     noising some links' estimates.
//   - Staged: a coordinator runs stages of pairwise-disjoint probes (circle
//     method tournament), Ks consecutive RTTs per pair per stage. Parallel
//     like uncoordinated, interference-free like token passing.
//
// The schemes run over the netsim discrete-event simulator, so a "5 minute"
// measurement completes in real milliseconds.
package measure

import (
	"fmt"
	"math/rand"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/netsim"
	"cloudia/internal/sketch"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// DefaultTailAlpha is the conventional relative-error bound for per-link
// quantile sketches (Options.TailAlpha): what StreamingAdvise configures
// when a percentile metric is requested.
const DefaultTailAlpha = sketch.DefaultAlpha

// Scheme selects a measurement strategy.
type Scheme string

// The three measurement schemes of Sect. 5.
const (
	Token         Scheme = "token"
	Uncoordinated Scheme = "uncoordinated"
	Staged        Scheme = "staged"
)

// Options configures a measurement run.
type Options struct {
	Scheme Scheme
	// MessageBytes is the probe payload size; the paper uses 1 KB to match
	// application workloads. Zero selects 1024.
	MessageBytes int
	// DurationMS is the virtual-time measurement budget. Required.
	DurationMS float64
	// Ks is the number of consecutive RTTs per pair within one stage of the
	// staged scheme (Sect. 5, optimization). Zero selects 10.
	Ks int
	// Seed drives all randomness (probe jitter, destination shuffles).
	Seed int64
	// StartHours anchors the measurement at an absolute datacenter time,
	// so non-stationary networks (topology.Profile.RegimeHours) are
	// measured in the regime that will hold during execution.
	StartHours float64
	// SnapshotEveryMS, when positive, records a snapshot of the running
	// mean-latency matrix at that period, for convergence analysis (Fig. 5).
	SnapshotEveryMS float64
	// Contention models the replier-side delay incurred when a probe
	// arrives at an instance that has its own probe outstanding (the
	// uncoordinated scheme's failure mode). Zero values select defaults:
	// scale 0.15 ms, spike probability 0.15, spike scale 0.6 ms.
	ContentionScale      float64
	ContentionSpikeProb  float64
	ContentionSpikeScale float64
	// TailAlpha, when positive, maintains a mergeable per-link quantile
	// sketch (internal/sketch) with that relative-error bound alongside the
	// mean aggregates, so TailMatrix and streaming epoch Tails can publish
	// percentile matrices incrementally. Zero disables sketches; negative is
	// an error. DefaultTailAlpha is the conventional setting.
	TailAlpha float64
	// Background, when non-nil, injects application traffic during the
	// measurement — the overlapped-execution mode of Sect. 2.2.2, where the
	// tenant starts the application on the initial allocation instead of
	// idling while ClouDiA measures. Probes then share NICs with the
	// application's messages, degrading measurement accuracy; the
	// extension-overlap experiment quantifies the trade.
	Background *BackgroundTraffic
}

// BackgroundTraffic describes the application traffic overlapping a
// measurement: every IntervalMS, each pair exchanges one MsgBytes message in
// each direction.
type BackgroundTraffic struct {
	Pairs      [][2]int
	MsgBytes   int
	IntervalMS float64
}

func (o *Options) withDefaults() (Options, error) {
	out := *o
	switch out.Scheme {
	case Token, Uncoordinated, Staged:
	default:
		return out, fmt.Errorf("measure: unknown scheme %q", out.Scheme)
	}
	if out.DurationMS <= 0 {
		return out, fmt.Errorf("measure: non-positive duration %g", out.DurationMS)
	}
	if out.MessageBytes == 0 {
		out.MessageBytes = 1024
	}
	if out.MessageBytes < 0 {
		return out, fmt.Errorf("measure: negative message size")
	}
	if out.Ks == 0 {
		out.Ks = 10
	}
	if out.Ks < 0 {
		return out, fmt.Errorf("measure: negative Ks")
	}
	if out.ContentionScale == 0 {
		out.ContentionScale = 0.15
	}
	if out.ContentionSpikeProb == 0 {
		out.ContentionSpikeProb = 0.15
	}
	if out.ContentionSpikeScale == 0 {
		out.ContentionSpikeScale = 0.6
	}
	if out.TailAlpha < 0 {
		return out, fmt.Errorf("measure: negative tail sketch alpha %g", out.TailAlpha)
	}
	if out.TailAlpha >= 1 {
		return out, fmt.Errorf("measure: tail sketch alpha %g outside (0, 1)", out.TailAlpha)
	}
	return out, nil
}

// Snapshot is the state of the running mean estimate at a point in virtual
// time.
type Snapshot struct {
	AtMS float64
	Mean *core.CostMatrix
}

// Result holds per-link latency sample aggregates from one measurement run.
type Result struct {
	N            int
	Scheme       Scheme
	DurationMS   float64
	TotalSamples int64
	Snapshots    []Snapshot

	agg     []stats.Welford // per ordered pair, row-major
	samples [][]float64     // per ordered pair, for percentile metrics

	// tailAlpha > 0 enables per-link quantile sketches, allocated lazily in
	// tails on the first sample of each ordered pair.
	tailAlpha float64
	tails     []*sketch.Sketch
}

func newResult(n int, scheme Scheme) *Result {
	return &Result{
		N:       n,
		Scheme:  scheme,
		agg:     make([]stats.Welford, n*n),
		samples: make([][]float64, n*n),
	}
}

// setTailAlpha enables per-link quantile sketches for subsequent samples.
func (r *Result) setTailAlpha(alpha float64) {
	r.tailAlpha = alpha
	if alpha > 0 {
		r.tails = make([]*sketch.Sketch, r.N*r.N)
	}
}

// TailAlpha reports the relative-error bound of the per-link quantile
// sketches, or 0 when sketches are disabled.
func (r *Result) TailAlpha() float64 { return r.tailAlpha }

func (r *Result) record(i, j int, rtt float64) {
	k := i*r.N + j
	r.agg[k].Add(rtt)
	r.samples[k] = append(r.samples[k], rtt)
	if r.tailAlpha > 0 {
		if r.tails[k] == nil {
			r.tails[k] = sketch.New(r.tailAlpha)
		}
		r.tails[k].Add(rtt)
	}
	r.TotalSamples++
}

// SampleCount reports the number of RTT observations for ordered pair (i,j).
func (r *Result) SampleCount(i, j int) int { return r.agg[i*r.N+j].N() }

// MinSamples reports the smallest per-link sample count across all ordered
// pairs, a coverage diagnostic.
func (r *Result) MinSamples() int {
	min := -1
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.N; j++ {
			if i == j {
				continue
			}
			n := r.SampleCount(i, j)
			if min < 0 || n < min {
				min = n
			}
		}
	}
	if min < 0 {
		min = 0
	}
	return min
}

// globalMean is the fallback cost for links that received no samples, so
// that solvers do not mistake an unmeasured link for a free one.
func (r *Result) globalMean() float64 {
	var w stats.Welford
	for k := range r.agg {
		if r.agg[k].N() > 0 {
			w.Add(r.agg[k].Mean())
		}
	}
	return w.Mean()
}

// MeanMatrix returns the estimated mean RTT per ordered pair. Unsampled
// links fall back to the global mean estimate.
func (r *Result) MeanMatrix() *core.CostMatrix {
	return r.matrix(func(w *stats.Welford, _ []float64) float64 { return w.Mean() })
}

// MeanPlusStdMatrix returns mean + standard deviation per link, the jitter-
// sensitive metric of Sect. 3.2.
func (r *Result) MeanPlusStdMatrix() *core.CostMatrix {
	return r.matrix(func(w *stats.Welford, _ []float64) float64 { return w.Mean() + w.Std() })
}

// P99Matrix returns the 99th-percentile RTT per link, the tail-latency
// metric of Sect. 3.2.
func (r *Result) P99Matrix() *core.CostMatrix { return r.PercentileMatrix(99) }

// PercentileMatrix returns the exact p-th percentile RTT per link from the
// retained samples (linear interpolation, stats.Percentile). Unsampled
// links fall back to the global mean estimate.
func (r *Result) PercentileMatrix(p float64) *core.CostMatrix {
	return r.matrix(func(_ *stats.Welford, xs []float64) float64 {
		v, err := stats.Percentile(xs, p)
		if err != nil {
			return 0
		}
		return v
	})
}

// TailMatrix returns the pct-percentile RTT per link estimated from the
// per-link quantile sketches: each sampled link reports a value within
// relative error TailAlpha of its exact nearest-rank percentile sample
// (see internal/sketch for the bound against interpolated percentiles).
// Unsampled links fall back to the global mean — the same fallback entries
// PercentileMatrix produces, so the two matrices agree exactly there.
// Requires Options.TailAlpha > 0 at measurement time.
func (r *Result) TailMatrix(pct float64) (*core.CostMatrix, error) {
	if r.tailAlpha <= 0 {
		return nil, fmt.Errorf("measure: tail sketches disabled (Options.TailAlpha = 0)")
	}
	q := pct / 100
	m := core.NewCostMatrix(r.N)
	fallback := r.globalMean()
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.N; j++ {
			if i == j {
				continue
			}
			k := i*r.N + j
			if r.agg[k].N() == 0 {
				m.Set(i, j, fallback)
				continue
			}
			m.Set(i, j, r.tails[k].Quantile(q))
		}
	}
	return m, nil
}

func (r *Result) matrix(f func(*stats.Welford, []float64) float64) *core.CostMatrix {
	m := core.NewCostMatrix(r.N)
	fallback := r.globalMean()
	for i := 0; i < r.N; i++ {
		for j := 0; j < r.N; j++ {
			if i == j {
				continue
			}
			k := i*r.N + j
			if r.agg[k].N() == 0 {
				m.Set(i, j, fallback)
				continue
			}
			m.Set(i, j, f(&r.agg[k], r.samples[k]))
		}
	}
	return m
}

// prepare validates opts and builds the simulator, result aggregate, and
// scheme runner shared by Run and Stream. The returned runner has background
// traffic scheduled but no scheme started.
func prepare(dc *topology.Datacenter, instances []cloud.Instance, opts Options) (*runner, Options, error) {
	o, err := opts.withDefaults()
	if err != nil {
		return nil, o, err
	}
	n := len(instances)
	if n < 2 {
		return nil, o, fmt.Errorf("measure: need >= 2 instances, got %d", n)
	}

	instLat := cloud.LatencyFunc(dc, instances, o.StartHours)
	// Endpoint n is the staged scheme's coordinator; its control messages
	// traverse an ordinary in-datacenter path.
	coordLat := dc.Profile().AggBase / 2
	lat := func(src, dst int, now netsim.Time, rng *rand.Rand) float64 {
		if src >= n || dst >= n {
			return coordLat
		}
		return instLat(src, dst, now, rng)
	}
	sim, err := netsim.New(n+1, lat, o.Seed, netsim.Config{})
	if err != nil {
		return nil, o, err
	}

	res := newResult(n, o.Scheme)
	res.DurationMS = o.DurationMS
	res.setTailAlpha(o.TailAlpha)
	m := &runner{sim: sim, res: res, opts: o, n: n,
		outstanding: make([]int, n),
		rng:         rand.New(rand.NewSource(o.Seed ^ 0x6d656173)),
	}

	if bg := o.Background; bg != nil {
		if bg.IntervalMS <= 0 || bg.MsgBytes <= 0 {
			return nil, o, fmt.Errorf("measure: invalid background traffic %+v", *bg)
		}
		for _, pr := range bg.Pairs {
			if pr[0] < 0 || pr[0] >= n || pr[1] < 0 || pr[1] >= n || pr[0] == pr[1] {
				return nil, o, fmt.Errorf("measure: background pair %v out of range", pr)
			}
		}
		var tick func()
		tick = func() {
			if sim.Now() >= o.DurationMS {
				return
			}
			for _, pr := range bg.Pairs {
				sim.Send(pr[0], pr[1], bg.MsgBytes, nil)
				sim.Send(pr[1], pr[0], bg.MsgBytes, nil)
			}
			sim.After(bg.IntervalMS, tick)
		}
		sim.At(0, tick)
	}
	return m, o, nil
}

// Run executes one measurement over the given instances and returns the
// aggregated result. At least two instances are required.
func Run(dc *topology.Datacenter, instances []cloud.Instance, opts Options) (*Result, error) {
	m, o, err := prepare(dc, instances, opts)
	if err != nil {
		return nil, err
	}
	res, sim := m.res, m.sim

	if o.SnapshotEveryMS > 0 {
		for t := o.SnapshotEveryMS; t <= o.DurationMS; t += o.SnapshotEveryMS {
			t := t
			sim.At(t, func() {
				res.Snapshots = append(res.Snapshots, Snapshot{AtMS: t, Mean: res.MeanMatrix()})
			})
		}
	}

	m.start()
	sim.RunUntil(o.DurationMS)
	return res, nil
}

// runner holds the per-run mutable state shared by the scheme drivers.
type runner struct {
	sim  *netsim.Sim
	res  *Result
	opts Options
	n    int
	rng  *rand.Rand
	// outstanding[i] counts instance i's own probes in flight; a reply
	// issued while the replier has an outstanding probe contends with it.
	outstanding []int
}

func (m *runner) done() bool { return m.sim.Now() >= m.opts.DurationMS }

// start launches the configured scheme's drivers. prepare validated the
// scheme, so the switch is exhaustive.
func (m *runner) start() {
	switch m.opts.Scheme {
	case Token:
		m.runToken()
	case Uncoordinated:
		m.runUncoordinated()
	case Staged:
		m.runStaged()
	}
}

// probe performs one RTT measurement from i to j and calls next when the
// reply lands. The replier contends if it is itself mid-probe.
func (m *runner) probe(i, j int, record bool, next func()) {
	start := m.sim.Now()
	m.outstanding[i]++
	m.sim.Send(i, j, m.opts.MessageBytes, func(netsim.Time) {
		// j received the entire probe; reply after any contention delay.
		delay := 0.0
		if m.outstanding[j] > 0 {
			delay = m.rng.ExpFloat64() * m.opts.ContentionScale
			if m.rng.Float64() < m.opts.ContentionSpikeProb {
				delay += m.rng.ExpFloat64() * m.opts.ContentionSpikeScale
			}
		}
		m.sim.After(delay, func() {
			m.sim.Send(j, i, m.opts.MessageBytes, func(at netsim.Time) {
				m.outstanding[i]--
				if record {
					m.res.record(i, j, at-start)
				}
				if next != nil {
					next()
				}
			})
		})
	})
}

// runToken drives the token-passing scheme: a single token visits ordered
// pairs in sweep order (offset rounds), so exactly one message is in flight
// at any time.
func (m *runner) runToken() {
	const tokenBytes = 64
	cur := 0
	round := 1
	idx := 0
	var step func()
	step = func() {
		if m.done() {
			return
		}
		i := idx
		j := (idx + round) % m.n
		idx++
		if idx == m.n {
			idx = 0
			round++
			if round == m.n {
				round = 1
			}
		}
		measure := func() {
			m.probe(i, j, true, step)
		}
		if cur != i {
			from := cur
			cur = i
			m.sim.Send(from, i, tokenBytes, func(netsim.Time) { measure() })
		} else {
			measure()
		}
	}
	step()
}

// runUncoordinated drives the uncoordinated scheme: every instance
// continuously probes destinations from its own shuffled cycle, all in
// parallel, with no coordination — and therefore with contention.
func (m *runner) runUncoordinated() {
	for i := 0; i < m.n; i++ {
		i := i
		perm := m.rng.Perm(m.n - 1)
		k := 0
		var loop func()
		loop = func() {
			if m.done() {
				return
			}
			j := perm[k%len(perm)]
			if j >= i {
				j++
			}
			k++
			m.probe(i, j, true, loop)
		}
		// Stagger starts slightly so instances do not fire in lockstep.
		m.sim.At(m.rng.Float64()*0.01, loop)
	}
}

// runStaged drives the staged scheme: the coordinator (endpoint n) runs
// circle-method tournament rounds; each stage probes floor(n/2) disjoint
// pairs in parallel, Ks RTTs in each direction, then reports back.
func (m *runner) runStaged() {
	const ctrlBytes = 64
	pairsByRound := circleRounds(m.n)
	round := 0
	var startStage func()
	startStage = func() {
		if m.done() {
			return
		}
		pairs := pairsByRound[round%len(pairsByRound)]
		// Alternate probe direction on odd sweeps so both ordered pairs get
		// sampled.
		flip := (round/len(pairsByRound))%2 == 1
		round++
		remaining := len(pairs)
		for _, pr := range pairs {
			a, b := pr[0], pr[1]
			if flip {
				a, b = b, a
			}
			// Coordinator notifies a of its partner b.
			m.sim.Send(m.n, a, ctrlBytes, func(netsim.Time) {
				k := 0
				var seq func()
				seq = func() {
					if k < m.opts.Ks && !m.done() {
						k++
						m.probe(a, b, true, seq)
						return
					}
					// Report back to the coordinator.
					m.sim.Send(a, m.n, ctrlBytes, func(netsim.Time) {
						remaining--
						if remaining == 0 {
							startStage()
						}
					})
				}
				seq()
			})
		}
	}
	startStage()
}

// circleRounds returns the circle-method round-robin tournament schedule
// over n players: a list of rounds, each a set of disjoint pairs, jointly
// covering every unordered pair exactly once. For odd n one player sits out
// each round.
func circleRounds(n int) [][][2]int {
	players := n
	odd := n%2 == 1
	if odd {
		players++ // add a bye
	}
	rounds := make([][][2]int, 0, players-1)
	ring := make([]int, players)
	for i := range ring {
		ring[i] = i
	}
	for r := 0; r < players-1; r++ {
		var pairs [][2]int
		for k := 0; k < players/2; k++ {
			a, b := ring[k], ring[players-1-k]
			if odd && (a == players-1 || b == players-1) {
				continue // bye
			}
			pairs = append(pairs, [2]int{a, b})
		}
		rounds = append(rounds, pairs)
		// Rotate all but the first element.
		last := ring[players-1]
		copy(ring[2:], ring[1:players-1])
		ring[1] = last
	}
	return rounds
}
