package measure

import (
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// testFleet allocates n instances on a fresh EC2-profile datacenter.
func testFleet(t *testing.T, n int, seed int64) (*topology.Datacenter, []cloud.Instance) {
	t.Helper()
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	p, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	insts, err := p.RunInstances(n)
	if err != nil {
		t.Fatalf("RunInstances: %v", err)
	}
	return dc, insts
}

func TestOptionsValidation(t *testing.T) {
	dc, insts := testFleet(t, 3, 1)
	if _, err := Run(dc, insts, Options{Scheme: "bogus", DurationMS: 10}); err == nil {
		t.Fatal("bogus scheme accepted")
	}
	if _, err := Run(dc, insts, Options{Scheme: Token}); err == nil {
		t.Fatal("zero duration accepted")
	}
	if _, err := Run(dc, insts, Options{Scheme: Token, DurationMS: 10, MessageBytes: -1}); err == nil {
		t.Fatal("negative message size accepted")
	}
	if _, err := Run(dc, insts[:1], Options{Scheme: Token, DurationMS: 10}); err == nil {
		t.Fatal("single instance accepted")
	}
}

func TestCircleRoundsCoverage(t *testing.T) {
	for _, n := range []int{2, 4, 5, 8, 9} {
		rounds := circleRounds(n)
		seen := make(map[[2]int]int)
		for _, round := range rounds {
			inRound := make(map[int]bool)
			for _, pr := range round {
				a, b := pr[0], pr[1]
				if a == b || a >= n || b >= n || a < 0 || b < 0 {
					t.Fatalf("n=%d: invalid pair %v", n, pr)
				}
				if inRound[a] || inRound[b] {
					t.Fatalf("n=%d: player repeated within a round", n)
				}
				inRound[a], inRound[b] = true, true
				if a > b {
					a, b = b, a
				}
				seen[[2]int{a, b}]++
			}
		}
		want := n * (n - 1) / 2
		if len(seen) != want {
			t.Fatalf("n=%d: covered %d pairs, want %d", n, len(seen), want)
		}
		for pr, c := range seen {
			if c != 1 {
				t.Fatalf("n=%d: pair %v covered %d times", n, pr, c)
			}
		}
	}
}

func TestTokenPassingSerial(t *testing.T) {
	dc, insts := testFleet(t, 6, 2)
	res, err := Run(dc, insts, Options{Scheme: Token, DurationMS: 500, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.TotalSamples == 0 {
		t.Fatal("no samples collected")
	}
	// Sequential: roughly duration / (RTT + token pass) samples; certainly
	// far fewer than a parallel scheme would collect.
	if res.TotalSamples > 1667 { // ~500 ms / 0.3 ms per serial round trip
		t.Fatalf("token collected %d samples; too many to be serial", res.TotalSamples)
	}
}

func TestStagedCoversAllLinksOverTime(t *testing.T) {
	dc, insts := testFleet(t, 6, 4)
	res, err := Run(dc, insts, Options{Scheme: Staged, DurationMS: 3000, Seed: 5, Ks: 3})
	if err != nil {
		t.Fatal(err)
	}
	if res.MinSamples() == 0 {
		t.Fatal("staged left some ordered pair unsampled after both sweeps")
	}
}

func TestUncoordinatedParallelThroughput(t *testing.T) {
	dc, insts := testFleet(t, 10, 6)
	tok, err := Run(dc, insts, Options{Scheme: Token, DurationMS: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	unc, err := Run(dc, insts, Options{Scheme: Uncoordinated, DurationMS: 200, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	// n instances probing in parallel must collect several times the
	// samples of the serial token scheme in the same budget.
	if unc.TotalSamples < 3*tok.TotalSamples {
		t.Fatalf("uncoordinated %d samples vs token %d; expected ~n-fold parallelism",
			unc.TotalSamples, tok.TotalSamples)
	}
}

func TestMeanEstimatesApproachGroundTruth(t *testing.T) {
	dc, insts := testFleet(t, 8, 8)
	res, err := Run(dc, insts, Options{Scheme: Staged, DurationMS: 5000, Seed: 9, Ks: 5})
	if err != nil {
		t.Fatal(err)
	}
	truth := cloud.MeanRTTMatrix(dc, insts)
	est := res.MeanMatrix()
	// Compare normalized vectors (the paper's methodology): jitter shifts
	// all links by the same expected amount, which normalization cancels.
	tv := stats.NormalizeUnit(truth.OffDiagonal())
	ev := stats.NormalizeUnit(est.OffDiagonal())
	errs, err := stats.RelativeErrors(ev, tv)
	if err != nil {
		t.Fatal(err)
	}
	med, err := stats.Percentile(errs, 50)
	if err != nil {
		t.Fatal(err)
	}
	if med > 0.10 {
		t.Fatalf("median normalized relative error %.3f; staged estimates too far from truth", med)
	}
}

func TestStagedMoreAccurateThanUncoordinated(t *testing.T) {
	dc, insts := testFleet(t, 12, 10)
	truth := cloud.MeanRTTMatrix(dc, insts)
	tv := stats.NormalizeUnit(truth.OffDiagonal())

	errOf := func(s Scheme) float64 {
		res, err := Run(dc, insts, Options{Scheme: s, DurationMS: 4000, Seed: 11})
		if err != nil {
			t.Fatal(err)
		}
		ev := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
		errs, err := stats.RelativeErrors(ev, tv)
		if err != nil {
			t.Fatal(err)
		}
		p90, err := stats.Percentile(errs, 90)
		if err != nil {
			t.Fatal(err)
		}
		return p90
	}
	staged := errOf(Staged)
	unc := errOf(Uncoordinated)
	if staged >= unc {
		t.Fatalf("staged p90 error %.4f >= uncoordinated %.4f; Fig. 4 ordering violated", staged, unc)
	}
}

func TestSnapshotsRecorded(t *testing.T) {
	dc, insts := testFleet(t, 5, 12)
	res, err := Run(dc, insts, Options{
		Scheme: Staged, DurationMS: 1000, Seed: 13, SnapshotEveryMS: 250,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Snapshots) != 4 {
		t.Fatalf("snapshots = %d, want 4", len(res.Snapshots))
	}
	for i := 1; i < len(res.Snapshots); i++ {
		if res.Snapshots[i].AtMS <= res.Snapshots[i-1].AtMS {
			t.Fatal("snapshots not in time order")
		}
	}
}

func TestMetricMatricesOrdered(t *testing.T) {
	dc, insts := testFleet(t, 6, 14)
	res, err := Run(dc, insts, Options{Scheme: Staged, DurationMS: 4000, Seed: 15})
	if err != nil {
		t.Fatal(err)
	}
	mean := res.MeanMatrix()
	msd := res.MeanPlusStdMatrix()
	p99 := res.P99Matrix()
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			if i == j {
				continue
			}
			if res.SampleCount(i, j) < 2 {
				continue
			}
			if msd.At(i, j) < mean.At(i, j) {
				t.Fatalf("mean+SD < mean at (%d,%d)", i, j)
			}
			if p99.At(i, j) < mean.At(i, j)-1e-9 && res.SampleCount(i, j) >= 10 {
				t.Fatalf("p99 %.4f < mean %.4f at (%d,%d) with %d samples",
					p99.At(i, j), mean.At(i, j), i, j, res.SampleCount(i, j))
			}
		}
	}
}

func TestResultMatricesValidate(t *testing.T) {
	dc, insts := testFleet(t, 5, 16)
	res, err := Run(dc, insts, Options{Scheme: Uncoordinated, DurationMS: 500, Seed: 17})
	if err != nil {
		t.Fatal(err)
	}
	for _, m := range []interface{ Validate() error }{res.MeanMatrix(), res.MeanPlusStdMatrix(), res.P99Matrix()} {
		if err := m.Validate(); err != nil {
			t.Fatalf("matrix invalid: %v", err)
		}
	}
}

func TestDeterministicRuns(t *testing.T) {
	dc, insts := testFleet(t, 6, 18)
	run := func() int64 {
		res, err := Run(dc, insts, Options{Scheme: Uncoordinated, DurationMS: 300, Seed: 19})
		if err != nil {
			t.Fatal(err)
		}
		return res.TotalSamples
	}
	if run() != run() {
		t.Fatal("measurement runs not deterministic")
	}
}
