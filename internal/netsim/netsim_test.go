package netsim

import (
	"math"
	"math/rand"
	"sort"
	"testing"
)

// constLat returns a latency function with a fixed one-way delay.
func constLat(d float64) LatencyFunc {
	return func(src, dst int, now Time, rng *rand.Rand) float64 { return d }
}

func newSim(t *testing.T, n int, lat LatencyFunc) *Sim {
	t.Helper()
	s, err := New(n, lat, 1, Config{})
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return s
}

func TestNewErrors(t *testing.T) {
	if _, err := New(0, constLat(1), 1, Config{}); err == nil {
		t.Fatal("zero endpoints accepted")
	}
	if _, err := New(2, nil, 1, Config{}); err == nil {
		t.Fatal("nil latency accepted")
	}
	if _, err := New(2, constLat(1), 1, Config{BandwidthMBps: -1}); err == nil {
		t.Fatal("negative bandwidth accepted")
	}
}

func TestScheduleOrdering(t *testing.T) {
	s := newSim(t, 1, constLat(0))
	var got []int
	s.At(5, func() { got = append(got, 2) })
	s.At(1, func() { got = append(got, 0) })
	s.At(3, func() { got = append(got, 1) })
	s.Run()
	if len(got) != 3 || got[0] != 0 || got[1] != 1 || got[2] != 2 {
		t.Fatalf("event order = %v", got)
	}
	if s.Now() != 5 {
		t.Fatalf("Now = %g, want 5", s.Now())
	}
}

func TestSimultaneousEventsFIFO(t *testing.T) {
	s := newSim(t, 1, constLat(0))
	var got []int
	for i := 0; i < 10; i++ {
		i := i
		s.At(1, func() { got = append(got, i) })
	}
	s.Run()
	if !sort.IntsAreSorted(got) {
		t.Fatalf("simultaneous events not FIFO: %v", got)
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	s := newSim(t, 1, constLat(0))
	fired := -1.0
	s.At(10, func() {
		s.At(5, func() { fired = s.Now() }) // in the past
	})
	s.Run()
	if fired != 10 {
		t.Fatalf("past event fired at %g, want 10", fired)
	}
}

func TestSendSingleMessageTiming(t *testing.T) {
	// 1 KB at 120 MB/s = 1024/120000 ms serialization on each side, plus
	// 0.2 ms propagation and 0.004 ms processing.
	s := newSim(t, 2, constLat(0.2))
	var at Time
	s.Send(0, 1, 1024, func(d Time) { at = d })
	s.Run()
	ser := 1024.0 / 120000.0
	want := ser + 0.2 + ser + 0.004
	if math.Abs(at-want) > 1e-12 {
		t.Fatalf("delivery at %g, want %g", at, want)
	}
}

func TestSendZeroSize(t *testing.T) {
	s := newSim(t, 2, constLat(0.5))
	var at Time
	s.Send(0, 1, 0, func(d Time) { at = d })
	s.Run()
	if math.Abs(at-(0.5+0.004)) > 1e-12 {
		t.Fatalf("delivery at %g", at)
	}
}

func TestTransmitSerialization(t *testing.T) {
	// Two messages sent back-to-back from the same source must serialize on
	// its TX NIC: second delivery is one serialization time later.
	s := newSim(t, 3, constLat(0.1))
	var d1, d2 Time
	s.Send(0, 1, 12000, func(d Time) { d1 = d })
	s.Send(0, 2, 12000, func(d Time) { d2 = d })
	s.Run()
	ser := 12000.0 / 120000.0 // 0.1 ms
	if math.Abs((d2-d1)-ser) > 1e-9 {
		t.Fatalf("tx serialization gap = %g, want %g", d2-d1, ser)
	}
}

func TestReceiveSerialization(t *testing.T) {
	// Two senders hitting one receiver simultaneously: deliveries separated
	// by at least serialization + processing.
	s := newSim(t, 3, constLat(0.1))
	var d1, d2 Time
	s.Send(0, 2, 12000, func(d Time) { d1 = d })
	s.Send(1, 2, 12000, func(d Time) { d2 = d })
	s.Run()
	gap := math.Abs(d2 - d1)
	ser := 12000.0/120000.0 + 0.004
	if gap < ser-1e-9 {
		t.Fatalf("rx gap = %g, want >= %g", gap, ser)
	}
}

func TestInterferenceRaisesLatency(t *testing.T) {
	// A message delivered while the receiver is idle vs while the receiver
	// is flooded: the flooded delivery must take longer end-to-end.
	quiet := newSim(t, 4, constLat(0.2))
	var quietAt Time
	quiet.Send(0, 1, 1024, func(d Time) { quietAt = d })
	quiet.Run()

	busy := newSim(t, 4, constLat(0.2))
	// Saturate endpoint 1's RX with large messages from endpoints 2 and 3
	// (each takes 1 ms to serialize), then probe while the flood is landing.
	for i := 0; i < 20; i++ {
		busy.Send(2, 1, 120000, nil)
		busy.Send(3, 1, 120000, nil)
	}
	var busyAt, probeStart Time
	busy.At(5, func() {
		probeStart = busy.Now()
		busy.Send(0, 1, 1024, func(d Time) { busyAt = d - probeStart })
	})
	busy.Run()
	if busyAt <= quietAt {
		t.Fatalf("no interference: busy %g <= quiet %g", busyAt, quietAt)
	}
}

func TestRunUntil(t *testing.T) {
	s := newSim(t, 1, constLat(0))
	fired := 0
	s.At(1, func() { fired++ })
	s.At(2, func() { fired++ })
	s.At(3, func() { fired++ })
	s.RunUntil(2)
	if fired != 2 {
		t.Fatalf("fired = %d, want 2", fired)
	}
	if s.Now() != 2 {
		t.Fatalf("Now = %g, want 2", s.Now())
	}
	if s.Pending() != 1 {
		t.Fatalf("Pending = %d, want 1", s.Pending())
	}
	s.Run()
	if fired != 3 {
		t.Fatalf("fired = %d, want 3", fired)
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	s := newSim(t, 1, constLat(0))
	s.RunUntil(42)
	if s.Now() != 42 {
		t.Fatalf("Now = %g, want 42", s.Now())
	}
}

func TestPingPongChain(t *testing.T) {
	// Request-reply RTT: send 0->1, then reply 1->0. Under constant latency
	// the RTT is exactly twice the one-way time.
	s := newSim(t, 2, constLat(0.25))
	var rtt Time
	start := s.Now()
	s.Send(0, 1, 1024, func(Time) {
		s.Send(1, 0, 1024, func(d Time) { rtt = d - start })
	})
	s.Run()
	ser := 1024.0 / 120000.0
	want := 2 * (ser + 0.25 + ser + 0.004)
	if math.Abs(rtt-want) > 1e-9 {
		t.Fatalf("RTT = %g, want %g", rtt, want)
	}
}

func TestDeterminismAcrossRuns(t *testing.T) {
	run := func() []Time {
		lat := func(src, dst int, now Time, rng *rand.Rand) float64 {
			return 0.1 + rng.Float64()*0.1
		}
		s, err := New(5, lat, 99, Config{})
		if err != nil {
			t.Fatal(err)
		}
		var deliveries []Time
		for i := 0; i < 50; i++ {
			src, dst := i%5, (i+1)%5
			s.Send(src, dst, 1024, func(d Time) { deliveries = append(deliveries, d) })
		}
		s.Run()
		return deliveries
	}
	a, b := run(), run()
	if len(a) != len(b) {
		t.Fatalf("delivery counts differ: %d vs %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("nondeterministic delivery %d: %g vs %g", i, a[i], b[i])
		}
	}
}

func TestMessagesSentCounter(t *testing.T) {
	s := newSim(t, 2, constLat(0.1))
	for i := 0; i < 7; i++ {
		s.Send(0, 1, 10, nil)
	}
	s.Run()
	if s.MessagesSent() != 7 {
		t.Fatalf("MessagesSent = %d, want 7", s.MessagesSent())
	}
}
