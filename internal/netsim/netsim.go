// Package netsim is a discrete-event network simulator over which ClouDiA's
// measurement schemes and the paper's application workloads run. It models a
// set of endpoints (cloud instances) exchanging messages whose end-to-end
// timing is composed of
//
//   - NIC serialization: each endpoint transmits one message at a time and
//     receives one message at a time; concurrent traffic queues,
//   - propagation: a one-way latency sample drawn from the latency function
//     (typically topology.Datacenter.SampleOneWay), and
//   - receive-side processing time.
//
// The serialization and processing terms are what make concurrent probes
// interfere, which is exactly the effect that separates the paper's
// uncoordinated measurement scheme from the staged and token-passing schemes
// (Fig. 4). The clock is virtual: experiments that span simulated minutes
// finish in real milliseconds.
package netsim

import (
	"container/heap"
	"fmt"
	"math/rand"
)

// Time is virtual time in milliseconds since simulation start.
type Time = float64

// LatencyFunc returns a one-way propagation latency sample in milliseconds
// for a message from endpoint src to endpoint dst at virtual time now.
type LatencyFunc func(src, dst int, now Time, rng *rand.Rand) float64

// Config tunes the NIC model.
type Config struct {
	// BandwidthMBps is the per-endpoint NIC bandwidth in megabytes per
	// second, applied independently to transmit and receive. Zero selects
	// the default of 120 MB/s (~1 Gb/s).
	BandwidthMBps float64
	// ProcessingMS is the fixed receive-side processing time per message.
	// Zero selects the default of 0.004 ms.
	ProcessingMS float64
}

const (
	defaultBandwidthMBps = 120
	defaultProcessingMS  = 0.004
)

// Sim is a discrete-event simulator over n endpoints. It is not safe for
// concurrent use; all callbacks run on the caller's goroutine inside Run.
type Sim struct {
	now   Time
	queue eventQueue
	seq   int64
	nics  []nic
	lat   LatencyFunc
	rng   *rand.Rand
	cfg   Config
	nsent int64
}

type nic struct {
	txFreeAt Time
	rxFreeAt Time
}

type event struct {
	at  Time
	seq int64 // FIFO tie-break for simultaneous events
	fn  func()
}

type eventQueue []event

func (q eventQueue) Len() int { return len(q) }
func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}
func (q eventQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *eventQueue) Push(x interface{}) { *q = append(*q, x.(event)) }
func (q *eventQueue) Pop() interface{} {
	old := *q
	n := len(old)
	e := old[n-1]
	*q = old[:n-1]
	return e
}

// New returns a simulator over n endpoints using lat for propagation delays
// and a deterministic RNG seeded with seed.
func New(n int, lat LatencyFunc, seed int64, cfg Config) (*Sim, error) {
	if n <= 0 {
		return nil, fmt.Errorf("netsim: invalid endpoint count %d", n)
	}
	if lat == nil {
		return nil, fmt.Errorf("netsim: nil latency function")
	}
	if cfg.BandwidthMBps == 0 {
		cfg.BandwidthMBps = defaultBandwidthMBps
	}
	if cfg.ProcessingMS == 0 {
		cfg.ProcessingMS = defaultProcessingMS
	}
	if cfg.BandwidthMBps < 0 || cfg.ProcessingMS < 0 {
		return nil, fmt.Errorf("netsim: negative config")
	}
	return &Sim{
		nics: make([]nic, n),
		lat:  lat,
		rng:  rand.New(rand.NewSource(seed)),
		cfg:  cfg,
	}, nil
}

// NumEndpoints reports the number of endpoints.
func (s *Sim) NumEndpoints() int { return len(s.nics) }

// Now returns the current virtual time.
func (s *Sim) Now() Time { return s.now }

// MessagesSent reports the total number of messages sent so far.
func (s *Sim) MessagesSent() int64 { return s.nsent }

// RNG exposes the simulator's RNG so components sharing the simulation can
// draw correlated randomness deterministically.
func (s *Sim) RNG() *rand.Rand { return s.rng }

// At schedules fn to run at virtual time t. Scheduling in the past runs the
// event at the current time (events never travel backwards).
func (s *Sim) At(t Time, fn func()) {
	if t < s.now {
		t = s.now
	}
	s.seq++
	heap.Push(&s.queue, event{at: t, seq: s.seq, fn: fn})
}

// After schedules fn to run d milliseconds from now.
func (s *Sim) After(d Time, fn func()) { s.At(s.now+d, fn) }

// serializeMS converts a message size to NIC occupancy time.
func (s *Sim) serializeMS(sizeBytes int) Time {
	return float64(sizeBytes) / (s.cfg.BandwidthMBps * 1000) // bytes / (bytes per ms)
}

// Send transmits sizeBytes from src to dst. delivered, if non-nil, runs at
// the virtual time the last byte has been received and processed at dst.
// Timing: the message waits for src's transmit NIC, occupies it for the
// serialization time, propagates with a sampled one-way latency, then waits
// for dst's receive NIC, occupying it for serialization plus processing.
func (s *Sim) Send(src, dst int, sizeBytes int, delivered func(at Time)) {
	if src < 0 || src >= len(s.nics) || dst < 0 || dst >= len(s.nics) {
		panic(fmt.Sprintf("netsim: endpoint out of range: %d -> %d", src, dst))
	}
	if sizeBytes < 0 {
		panic("netsim: negative message size")
	}
	s.nsent++
	ser := s.serializeMS(sizeBytes)

	txStart := s.now
	if s.nics[src].txFreeAt > txStart {
		txStart = s.nics[src].txFreeAt
	}
	txDone := txStart + ser
	s.nics[src].txFreeAt = txDone

	prop := s.lat(src, dst, s.now, s.rng)
	if prop < 0 {
		prop = 0
	}
	arrive := txDone + prop

	// Receive-side queuing is resolved when the first byte arrives, which
	// requires an event at the arrival time because rxFreeAt may change
	// between now and then.
	s.At(arrive, func() {
		rxStart := s.now
		if s.nics[dst].rxFreeAt > rxStart {
			rxStart = s.nics[dst].rxFreeAt
		}
		rxDone := rxStart + ser + s.cfg.ProcessingMS
		s.nics[dst].rxFreeAt = rxDone
		if delivered != nil {
			s.At(rxDone, func() { delivered(rxDone) })
		}
	})
}

// Run processes events until the queue is empty.
func (s *Sim) Run() {
	for s.queue.Len() > 0 {
		s.step()
	}
}

// RunUntil processes events with timestamps <= t, then advances the clock to
// t. Events scheduled beyond t remain queued.
func (s *Sim) RunUntil(t Time) {
	for s.queue.Len() > 0 && s.queue[0].at <= t {
		s.step()
	}
	if s.now < t {
		s.now = t
	}
}

func (s *Sim) step() {
	e := heap.Pop(&s.queue).(event)
	s.now = e.at
	e.fn()
}

// Pending reports the number of queued events.
func (s *Sim) Pending() int { return s.queue.Len() }
