package netsim

import (
	"math/rand"
	"testing"
	"testing/quick"
)

// Simulation invariants checked over randomized traffic patterns.

// TestDeliveryNeverBeforePhysics: every delivery happens no earlier than
// send time + serialization (both sides) + propagation + processing.
func TestDeliveryNeverBeforePhysics(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(10)
		prop := 0.05 + rng.Float64()*0.5
		lat := func(src, dst int, now Time, r *rand.Rand) float64 { return prop }
		sim, err := New(n, lat, seed, Config{})
		if err != nil {
			return false
		}
		ok := true
		for k := 0; k < 50; k++ {
			src := rng.Intn(n)
			dst := rng.Intn(n - 1)
			if dst >= src {
				dst++
			}
			size := rng.Intn(4096)
			sentAt := sim.Now()
			minLatency := 2*float64(size)/120000 + prop + 0.004
			sim.Send(src, dst, size, func(at Time) {
				if at < sentAt+minLatency-1e-12 {
					ok = false
				}
			})
			// Randomly interleave deliveries with new sends.
			if rng.Intn(3) == 0 {
				sim.Run()
			}
		}
		sim.Run()
		return ok
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Fatal(err)
	}
}

// TestPerPairFIFO: with a constant latency function, messages between one
// ordered pair are delivered in send order (NIC serialization preserves
// order; constant propagation cannot reorder).
func TestPerPairFIFO(t *testing.T) {
	lat := func(src, dst int, now Time, r *rand.Rand) float64 { return 0.3 }
	sim, err := New(4, lat, 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	var order []int
	for k := 0; k < 30; k++ {
		k := k
		sim.Send(0, 1, 512, func(Time) { order = append(order, k) })
	}
	sim.Run()
	if len(order) != 30 {
		t.Fatalf("delivered %d of 30", len(order))
	}
	for i := 1; i < len(order); i++ {
		if order[i] < order[i-1] {
			t.Fatalf("FIFO violated: %v", order)
		}
	}
}

// TestClockMonotoneAcrossCallbacks: Now() never decreases, even when events
// schedule more events.
func TestClockMonotoneAcrossCallbacks(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	lat := func(src, dst int, now Time, r *rand.Rand) float64 { return 0.05 + r.Float64() }
	sim, err := New(6, lat, 9, Config{})
	if err != nil {
		t.Fatal(err)
	}
	last := -1.0
	violations := 0
	var chain func(depth int)
	chain = func(depth int) {
		if sim.Now() < last {
			violations++
		}
		last = sim.Now()
		if depth == 0 {
			return
		}
		sim.Send(rng.Intn(6), rng.Intn(6), 256, func(Time) { chain(depth - 1) })
	}
	for i := 0; i < 10; i++ {
		chain(8)
	}
	sim.Run()
	if violations > 0 {
		t.Fatalf("clock went backwards %d times", violations)
	}
}

// TestMassConservation: every sent message with a callback is delivered
// exactly once when the queue drains.
func TestMassConservation(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	lat := func(src, dst int, now Time, r *rand.Rand) float64 { return 0.1 + r.Float64()*0.2 }
	sim, err := New(8, lat, 13, Config{})
	if err != nil {
		t.Fatal(err)
	}
	const total = 500
	delivered := 0
	for k := 0; k < total; k++ {
		src := rng.Intn(8)
		dst := rng.Intn(7)
		if dst >= src {
			dst++
		}
		sim.Send(src, dst, rng.Intn(2048), func(Time) { delivered++ })
	}
	sim.Run()
	if delivered != total {
		t.Fatalf("delivered %d of %d", delivered, total)
	}
	if sim.MessagesSent() != total {
		t.Fatalf("MessagesSent = %d, want %d", sim.MessagesSent(), total)
	}
	if sim.Pending() != 0 {
		t.Fatalf("queue not drained: %d", sim.Pending())
	}
}

// TestSendPanicsOnBadEndpoint documents the contract for programmer errors.
func TestSendPanicsOnBadEndpoint(t *testing.T) {
	sim, err := New(2, constLat(0.1), 1, Config{})
	if err != nil {
		t.Fatal(err)
	}
	assertPanics(t, func() { sim.Send(-1, 0, 10, nil) })
	assertPanics(t, func() { sim.Send(0, 2, 10, nil) })
	assertPanics(t, func() { sim.Send(0, 1, -5, nil) })
}

func assertPanics(t *testing.T, f func()) {
	t.Helper()
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	f()
}
