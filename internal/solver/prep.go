package solver

import (
	"math/rand"
	"sort"
	"sync"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
)

// Prep is a problem's shared preprocessing cache: every derived artifact the
// solvers consume — cost-clustered matrices and their sorted pair lists,
// transposed graph and matrices, degree orders, per-instance cheapest-link
// rows, off-diagonal extractions, bootstrap incumbents — computed at most
// once per Problem and shared by every portfolio member and repeated solver
// call. Before Prep, each portfolio member recomputed its own copies per
// Solve: CP and MIP each ran a full k-means over the m^2 link costs, MIP
// rebuilt the transposed graph and matrix, G1 re-sorted every cost row, and
// the bootstrap deployments were drawn from identical seeds multiple times.
//
// Prep is safe for concurrent use. Distinct artifacts (and distinct
// cluster-K values) are guarded by their own sync.Once, so racing portfolio
// members computing different artifacts never serialize behind one lock,
// while members demanding the same artifact block until the first
// computation lands and then share it.
//
// Everything returned by Prep is shared and immutable: callers must not
// modify returned matrices, graphs, slices, or pair lists. The only
// exception is Bootstrap, which returns a fresh copy of the memoized
// deployment because solvers mutate their incumbent in place.
type Prep struct {
	p *Problem

	mu      sync.Mutex
	rounded map[int]*prepRounded

	tGraphOnce sync.Once
	tGraph     *core.Graph
	tOrder     []core.NodeID
	tOrderErr  error

	degOnce  sync.Once
	degOrder []core.NodeID

	rowsOnce sync.Once
	rows     [][]int32

	offOnce sync.Once
	offDiag []float64

	bootMu sync.Mutex
	boots  map[bootKey]*prepBoot
}

// prepRounded memoizes one cluster-K's rounded matrix, pair list, and
// (lazily) the transpose of the rounded matrix.
type prepRounded struct {
	once  sync.Once
	m     *core.CostMatrix
	pairs []core.CostPair
	err   error

	tOnce sync.Once
	t     *core.CostMatrix
}

type bootKey struct {
	samples int
	seed    int64
}

type prepBoot struct {
	once sync.Once
	d    core.Deployment
	cost float64
}

func newPrep(p *Problem) *Prep {
	return &Prep{
		p:       p,
		rounded: make(map[int]*prepRounded),
		boots:   make(map[bootKey]*prepBoot),
	}
}

// entry returns the memo cell for cluster count k; every k <= 0 aliases the
// unclustered cell 0.
func (pp *Prep) entry(k int) *prepRounded {
	if k < 0 {
		k = 0
	}
	pp.mu.Lock()
	e, ok := pp.rounded[k]
	if !ok {
		e = &prepRounded{}
		pp.rounded[k] = e
	}
	pp.mu.Unlock()
	return e
}

// Rounded returns the problem's cost matrix rounded to at most k clusters
// (Sect. 6.3.1) together with the instance-pair list sorted ascending by
// rounded cost, memoized per k. k <= 0 disables clustering: the original
// matrix is served with its sorted pairs. The matrix and pair list are
// shared — callers must not modify them.
func (pp *Prep) Rounded(k int) (*core.CostMatrix, []core.CostPair, error) {
	e := pp.entry(k)
	e.once.Do(func() {
		if k <= 0 {
			e.m = pp.p.Costs
			e.pairs = pp.p.Costs.SortedPairs()
			return
		}
		e.m, e.pairs, e.err = cluster.RoundCostMatrixPairs(pp.p.Costs, k)
	})
	return e.m, e.pairs, e.err
}

// RoundedMatrix is Rounded without the pair list: for k <= 0 it serves the
// original matrix directly, skipping the m^2 log m pair sort consumers like
// the branch-and-bound solver never need. Shared; callers must not modify
// the result.
func (pp *Prep) RoundedMatrix(k int) (*core.CostMatrix, error) {
	if k <= 0 {
		return pp.p.Costs, nil
	}
	m, _, err := pp.Rounded(k)
	return m, err
}

// TransposedCosts returns the transpose of RoundedMatrix(k) — the matrix
// under which path costs on the transposed graph equal path costs on the
// original — memoized per k. Shared; callers must not modify it.
func (pp *Prep) TransposedCosts(k int) (*core.CostMatrix, error) {
	m, err := pp.RoundedMatrix(k)
	if err != nil {
		return nil, err
	}
	e := pp.entry(k)
	e.tOnce.Do(func() { e.t = m.Transposed() })
	return e.t, nil
}

// TransposedGraph returns the communication graph with every edge reversed
// (weights carried along), memoized. Shared; callers must not modify it.
func (pp *Prep) TransposedGraph() *core.Graph {
	pp.buildTransposed()
	return pp.tGraph
}

// TransposedTopoOrder returns a topological order of the transposed graph,
// memoized alongside it. Shared; callers must not modify it.
func (pp *Prep) TransposedTopoOrder() ([]core.NodeID, error) {
	pp.buildTransposed()
	return pp.tOrder, pp.tOrderErr
}

func (pp *Prep) buildTransposed() {
	pp.tGraphOnce.Do(func() {
		pp.tGraph = pp.p.Graph.Transposed()
		pp.tOrder, pp.tOrderErr = pp.tGraph.TopoOrder()
	})
}

// DegreeOrder returns the application nodes sorted by descending total
// degree (stable, so ties keep node order) — the branching order of the
// branch-and-bound LLNDP search. Shared; callers must not modify it.
func (pp *Prep) DegreeOrder() []core.NodeID {
	pp.degOnce.Do(func() {
		g := pp.p.Graph
		order := make([]core.NodeID, g.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return g.Degree(order[a]) > g.Degree(order[b])
		})
		pp.degOrder = order
	})
	return pp.degOrder
}

// CheapestRows returns, for every instance u, the other instances sorted
// ascending by (cost from u, index) — the candidate rows consumed by the G1
// greedy's cheapest-free cursors. One flat backing array serves all rows.
// Shared; callers must not modify the rows.
func (pp *Prep) CheapestRows() [][]int32 {
	pp.rowsOnce.Do(func() {
		m := pp.p.Costs
		n := m.Size()
		rows := make([][]int32, n)
		flat := make([]int32, 0, n*(n-1))
		for u := 0; u < n; u++ {
			row := flat[len(flat):len(flat) : len(flat)+n-1]
			for v := 0; v < n; v++ {
				if v != u {
					row = append(row, int32(v))
				}
			}
			flat = flat[:len(flat)+len(row)]
			cu := m.Row(u)
			sort.Slice(row, func(i, j int) bool {
				ci, cj := cu[row[i]], cu[row[j]]
				if ci != cj {
					return ci < cj
				}
				return row[i] < row[j]
			})
			rows[u] = row
		}
		pp.rows = rows
	})
	return pp.rows
}

// OffDiagonal returns the problem's off-diagonal cost values in row-major
// order (the "latency vector" of Sect. 6.2.2), memoized. Shared; callers
// must not modify it.
func (pp *Prep) OffDiagonal() []float64 {
	pp.offOnce.Do(func() { pp.offDiag = pp.p.Costs.OffDiagonal() })
	return pp.offDiag
}

// Bootstrap returns the best of `samples` seeded random deployments and its
// cost (Sect. 6.3.1's initial-solution strategy), memoized per
// (samples, seed) so portfolio members sharing a seed — CP, MIP, and the
// first SA restart all bootstrap identically — draw the incumbent once.
// The deployment is a fresh copy: callers may mutate it freely.
func (pp *Prep) Bootstrap(samples int, seed int64) (core.Deployment, float64) {
	if samples < 1 {
		samples = 1
	}
	key := bootKey{samples: samples, seed: seed}
	pp.bootMu.Lock()
	b, ok := pp.boots[key]
	if !ok {
		b = &prepBoot{}
		pp.boots[key] = b
	}
	pp.bootMu.Unlock()
	b.once.Do(func() {
		rng := rand.New(rand.NewSource(seed))
		b.d, b.cost = Bootstrap(pp.p, samples, rng)
	})
	return b.d.Clone(), b.cost
}
