package solver

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/par"
)

// Prep is a problem's shared preprocessing cache: every derived artifact the
// solvers consume — cost-clustered matrices and their sorted pair lists,
// transposed graph and matrices, degree orders, per-instance cheapest-link
// rows, off-diagonal extractions, bootstrap incumbents — computed at most
// once per Problem and shared by every portfolio member and repeated solver
// call. Before Prep, each portfolio member recomputed its own copies per
// Solve: CP and MIP each ran a full k-means over the m^2 link costs, MIP
// rebuilt the transposed graph and matrix, G1 re-sorted every cost row, and
// the bootstrap deployments were drawn from identical seeds multiple times.
//
// Prep is safe for concurrent use. Distinct artifacts (and distinct
// cluster-K values) are guarded by their own sync.Once, so racing portfolio
// members computing different artifacts never serialize behind one lock,
// while members demanding the same artifact block until the first
// computation lands and then share it.
//
// Everything returned by Prep is shared and immutable: callers must not
// modify returned matrices, graphs, slices, or pair lists. The only
// exception is Bootstrap, which returns a fresh copy of the memoized
// deployment because solvers mutate their incumbent in place.
//
// Prep is additionally epoch-aware: Problem.Evolve builds the next epoch's
// Prep from this one, adopting graph-derived artifacts outright and seeding
// matrix-derived artifacts for incremental recomputation over the changed
// rows (see prep_epoch.go). The done flags below let Evolve observe — via
// atomics, so racing portfolio members on the old epoch stay undisturbed —
// which artifacts the previous epoch actually materialized.
type Prep struct {
	p *Problem

	mu      sync.Mutex
	rounded map[int]*prepRounded

	tGraphOnce sync.Once
	tGraphDone atomic.Bool
	tGraph     *core.Graph
	tOrder     []core.NodeID
	tOrderErr  error

	degOnce  sync.Once
	degDone  atomic.Bool
	degOrder []core.NodeID

	rowsOnce sync.Once
	rowsDone atomic.Bool
	rows     [][]int32
	// rowsSeed, when non-nil, is the previous epoch's CheapestRows result;
	// only rowsSeedChanged rows are rebuilt, the rest are shared.
	rowsSeed        [][]int32
	rowsSeedChanged []int

	offOnce sync.Once
	offDone atomic.Bool
	offDiag []float64

	bootMu sync.Mutex
	boots  map[bootKey]*prepBoot

	warmMu   sync.Mutex
	warm     core.Deployment
	warmCost float64
}

// prepRounded memoizes one cluster-K's rounded matrix, pair list, fitted
// clustering, and (lazily) the transpose of the rounded matrix.
type prepRounded struct {
	once  sync.Once
	done  atomic.Bool
	m     *core.CostMatrix
	pairs []core.CostPair
	res   *cluster.Result // clustering behind m; nil when k <= 0
	err   error
	// staleRows marks the distinct rows re-assigned against res since it
	// was last fitted (stale is their count); once a majority of rows has
	// drifted the next epoch refits instead of patching. Distinctness
	// matters: one noisy row changing every epoch must not accumulate
	// into a spurious majority.
	staleRows []bool
	stale     int
	// patched marks an entry built by merge-patching a previous epoch's
	// entry rather than by a fresh fit. Patched artifacts depend on their
	// patch lineage (which fit the changed rows were re-assigned against),
	// so they are not canonical functions of the matrix content and are
	// excluded from content-addressed export (prep_share.go).
	patched bool

	tOnce sync.Once
	t     *core.CostMatrix

	// seed, when non-nil, is the previous epoch's computed entry for the
	// same cluster count; compute patches it over seedChanged rows instead
	// of re-running k-means. Cleared after use so retired epoch matrices
	// can be collected.
	seed        *prepRounded
	seedChanged []int
}

type bootKey struct {
	samples int
	seed    int64
}

type prepBoot struct {
	once sync.Once
	d    core.Deployment
	cost float64
}

func newPrep(p *Problem) *Prep {
	return &Prep{
		p:       p,
		rounded: make(map[int]*prepRounded),
		boots:   make(map[bootKey]*prepBoot),
	}
}

// entry returns the memo cell for cluster count k; every k <= 0 aliases the
// unclustered cell 0.
func (pp *Prep) entry(k int) *prepRounded {
	if k < 0 {
		k = 0
	}
	pp.mu.Lock()
	e, ok := pp.rounded[k]
	if !ok {
		e = &prepRounded{}
		pp.rounded[k] = e
	}
	pp.mu.Unlock()
	return e
}

// Rounded returns the problem's cost matrix rounded to at most k clusters
// (Sect. 6.3.1) together with the instance-pair list sorted ascending by
// rounded cost, memoized per k. k <= 0 disables clustering: the original
// matrix is served with its sorted pairs. The matrix and pair list are
// shared — callers must not modify them.
func (pp *Prep) Rounded(k int) (*core.CostMatrix, []core.CostPair, error) {
	e := pp.entry(k)
	e.once.Do(func() {
		e.compute(pp, k)
		e.done.Store(true)
	})
	return e.m, e.pairs, e.err
}

// compute fills the entry, preferring the incremental path when a previous
// epoch's entry seeds it: changed values are re-assigned to the existing
// centers and the pair list is merged, O(changed*n log) work instead of a
// full k-means refit — unless a majority of rows has gone stale since the
// last fit, in which case the clustering is fitted fresh.
func (e *prepRounded) compute(pp *Prep, k int) {
	if s := e.seed; s != nil {
		changed := e.seedChanged
		e.seed, e.seedChanged = nil, nil
		if s.err == nil {
			n := pp.p.Costs.Size()
			staleRows := make([]bool, n)
			copy(staleRows, s.staleRows)
			stale := s.stale
			for _, i := range changed {
				if !staleRows[i] {
					staleRows[i] = true
					stale++
				}
			}
			if 2*stale < n {
				if k <= 0 {
					e.m = pp.p.Costs
				} else {
					e.m = cluster.PatchRoundedRows(pp.p.Costs, s.m, s.res, changed)
				}
				e.pairs = cluster.PatchSortedPairs(e.m, s.pairs, changed)
				e.res = s.res
				e.staleRows, e.stale = staleRows, stale
				e.patched = true
				return
			}
		}
	}
	if k <= 0 {
		e.m = pp.p.Costs
		e.pairs = pp.p.Costs.SortedPairs()
		return
	}
	e.m, e.pairs, e.res, e.err = cluster.RoundCostMatrixPairsResult(pp.p.Costs, k)
}

// RoundedMatrix is Rounded without the pair list: for k <= 0 it serves the
// original matrix directly, skipping the m^2 log m pair sort consumers like
// the branch-and-bound solver never need. Shared; callers must not modify
// the result.
func (pp *Prep) RoundedMatrix(k int) (*core.CostMatrix, error) {
	if k <= 0 {
		return pp.p.Costs, nil
	}
	m, _, err := pp.Rounded(k)
	return m, err
}

// TransposedCosts returns the transpose of RoundedMatrix(k) — the matrix
// under which path costs on the transposed graph equal path costs on the
// original — memoized per k. Shared; callers must not modify it.
func (pp *Prep) TransposedCosts(k int) (*core.CostMatrix, error) {
	m, err := pp.RoundedMatrix(k)
	if err != nil {
		return nil, err
	}
	e := pp.entry(k)
	e.tOnce.Do(func() { e.t = m.Transposed() })
	return e.t, nil
}

// TransposedGraph returns the communication graph with every edge reversed
// (weights carried along), memoized. Shared; callers must not modify it.
func (pp *Prep) TransposedGraph() *core.Graph {
	pp.buildTransposed()
	return pp.tGraph
}

// TransposedTopoOrder returns a topological order of the transposed graph,
// memoized alongside it. Shared; callers must not modify it.
func (pp *Prep) TransposedTopoOrder() ([]core.NodeID, error) {
	pp.buildTransposed()
	return pp.tOrder, pp.tOrderErr
}

func (pp *Prep) buildTransposed() {
	pp.tGraphOnce.Do(func() {
		pp.tGraph = pp.p.Graph.Transposed()
		pp.tOrder, pp.tOrderErr = pp.tGraph.TopoOrder()
		pp.tGraphDone.Store(true)
	})
}

// DegreeOrder returns the application nodes sorted by descending total
// degree (stable, so ties keep node order) — the branching order of the
// branch-and-bound LLNDP search. Shared; callers must not modify it.
func (pp *Prep) DegreeOrder() []core.NodeID {
	pp.degOnce.Do(func() {
		g := pp.p.Graph
		order := make([]core.NodeID, g.NumNodes())
		for i := range order {
			order[i] = i
		}
		sort.SliceStable(order, func(a, b int) bool {
			return g.Degree(order[a]) > g.Degree(order[b])
		})
		pp.degOrder = order
		pp.degDone.Store(true)
	})
	return pp.degOrder
}

// cheapestRow builds instance u's candidate row: the other instances sorted
// ascending by (cost from u, index).
func cheapestRow(m *core.CostMatrix, u int, row []int32) []int32 {
	n := m.Size()
	for v := 0; v < n; v++ {
		if v != u {
			row = append(row, int32(v))
		}
	}
	cu := m.Row(u)
	sort.Slice(row, func(i, j int) bool {
		ci, cj := cu[row[i]], cu[row[j]]
		if ci != cj {
			return ci < cj
		}
		return row[i] < row[j]
	})
	return row
}

// CheapestRows returns, for every instance u, the other instances sorted
// ascending by (cost from u, index) — the candidate rows consumed by the G1
// greedy's cheapest-free cursors. One flat backing array serves all rows:
// row u owns the fixed stride [u*(n-1), (u+1)*(n-1)), so rows fill and sort
// in parallel while producing exactly the sequential build's bytes. When a
// previous epoch seeds the cache, only the changed rows are re-sorted (also
// in parallel; Evolve hands them over ascending and duplicate-free) and the
// rest are shared with that epoch. Shared; callers must not modify the rows.
func (pp *Prep) CheapestRows() [][]int32 {
	pp.rowsOnce.Do(func() {
		m := pp.p.Costs
		n := m.Size()
		if seed := pp.rowsSeed; seed != nil {
			rows := make([][]int32, n)
			copy(rows, seed)
			changed := pp.rowsSeedChanged
			par.For(len(changed), func(lo, hi int) {
				for _, u := range changed[lo:hi] {
					rows[u] = cheapestRow(m, u, make([]int32, 0, n-1))
				}
			})
			pp.rowsSeed, pp.rowsSeedChanged = nil, nil
			pp.rows = rows
			pp.rowsDone.Store(true)
			return
		}
		rows := make([][]int32, n)
		per := n - 1
		flat := make([]int32, n*per)
		par.For(n, func(lo, hi int) {
			for u := lo; u < hi; u++ {
				rows[u] = cheapestRow(m, u, flat[u*per:u*per:(u+1)*per])
			}
		})
		pp.rows = rows
		pp.rowsDone.Store(true)
	})
	return pp.rows
}

// OffDiagonal returns the problem's off-diagonal cost values in row-major
// order (the "latency vector" of Sect. 6.2.2), memoized. Shared; callers
// must not modify it.
func (pp *Prep) OffDiagonal() []float64 {
	pp.offOnce.Do(func() {
		pp.offDiag = pp.p.Costs.OffDiagonal()
		pp.offDone.Store(true)
	})
	return pp.offDiag
}

// WarmStart installs a warm incumbent for this problem epoch: every later
// Bootstrap call returns the better of its seeded random draw and d
// evaluated under this problem's matrix. Streaming advisors use this to
// carry the previous epoch's incumbent into the next round's portfolio, so
// each round refines rather than restarts (and the warm incumbent also
// becomes the shared starting point of the local-search members). The
// deployment is copied; WarmStart must be called before the solvers that
// should see it first consult Bootstrap, because completed bootstrap memo
// entries are not revisited.
func (pp *Prep) WarmStart(d core.Deployment) error {
	if len(d) != pp.p.NumNodes() {
		return fmt.Errorf("solver: warm start covers %d nodes, problem has %d", len(d), pp.p.NumNodes())
	}
	if err := d.Validate(pp.p.NumInstances()); err != nil {
		return err
	}
	cost := pp.p.Cost(d)
	pp.warmMu.Lock()
	if pp.warm == nil || cost < pp.warmCost {
		pp.warm, pp.warmCost = d.Clone(), cost
	}
	pp.warmMu.Unlock()
	return nil
}

// Bootstrap returns the best of `samples` seeded random deployments and its
// cost (Sect. 6.3.1's initial-solution strategy), memoized per
// (samples, seed) so portfolio members sharing a seed — CP, MIP, and the
// first SA restart all bootstrap identically — draw the incumbent once. Any
// installed WarmStart deployment competes with the random draw. The
// deployment is a fresh copy: callers may mutate it freely.
func (pp *Prep) Bootstrap(samples int, seed int64) (core.Deployment, float64) {
	if samples < 1 {
		samples = 1
	}
	key := bootKey{samples: samples, seed: seed}
	pp.bootMu.Lock()
	b, ok := pp.boots[key]
	if !ok {
		b = &prepBoot{}
		pp.boots[key] = b
	}
	pp.bootMu.Unlock()
	b.once.Do(func() {
		rng := rand.New(rand.NewSource(seed))
		b.d, b.cost = Bootstrap(pp.p, samples, rng)
		pp.warmMu.Lock()
		if pp.warm != nil && pp.warmCost < b.cost {
			b.d, b.cost = pp.warm.Clone(), pp.warmCost
		}
		pp.warmMu.Unlock()
	})
	return b.d.Clone(), b.cost
}
