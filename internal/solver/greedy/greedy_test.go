package greedy

import (
	"testing"
	"time"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

func TestNames(t *testing.T) {
	if New(G1).Name() != "G1" || New(G2).Name() != "G2" {
		t.Fatal("names wrong")
	}
}

func solveValid(t *testing.T, s solver.Solver, p *solver.Problem) *solver.Result {
	t.Helper()
	res, err := s.Solve(p, solver.Budget{Nodes: 1_000_000})
	if err != nil {
		t.Fatalf("%s: %v", s.Name(), err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatalf("%s produced invalid deployment: %v", s.Name(), err)
	}
	if len(res.Deployment) != p.NumNodes() {
		t.Fatalf("%s deployed %d nodes, want %d", s.Name(), len(res.Deployment), p.NumNodes())
	}
	if got := p.Cost(res.Deployment); got != res.Cost {
		t.Fatalf("%s reported cost %g, actual %g", s.Name(), res.Cost, got)
	}
	return res
}

func TestGreedyOnPlantedInstance(t *testing.T) {
	p, optCeil, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		res := solveValid(t, New(v), p)
		// Greedy follows cheap links, so on a planted instance it should
		// stay inside the clique.
		if res.Cost > optCeil {
			t.Errorf("%s cost %g, want <= %g (stuck outside planted clique)", New(v).Name(), res.Cost, optCeil)
		}
	}
}

func TestG2NoWorseThanG1OnRealistic(t *testing.T) {
	// The paper reports G2 improving on G1 significantly (Fig. 14). On any
	// single instance G2 may tie; across several seeds its mean must be at
	// least as good.
	g, err := core.Mesh2D(5, 5)
	if err != nil {
		t.Fatal(err)
	}
	var sum1, sum2 float64
	for seed := int64(0); seed < 5; seed++ {
		p, err := solvertest.Realistic(g, 28, solver.LongestLink, seed*31+1)
		if err != nil {
			t.Fatal(err)
		}
		sum1 += solveValid(t, New(G1), p).Cost
		sum2 += solveValid(t, New(G2), p).Cost
	}
	if sum2 > sum1*1.02 {
		t.Fatalf("G2 mean cost %.4f worse than G1 %.4f across seeds", sum2/5, sum1/5)
	}
}

func TestGreedyHandlesDisconnectedGraph(t *testing.T) {
	// Two disjoint edges plus an isolated node.
	g := core.NewGraph(5)
	for _, e := range [][2]int{{0, 1}, {2, 3}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	p, err := solvertest.Realistic(g, 8, solver.LongestLink, 3)
	_ = p
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		solveValid(t, New(v), p)
	}
}

func TestGreedyHandlesEdgelessGraph(t *testing.T) {
	g := core.NewGraph(4)
	p, err := solvertest.Realistic(g, 6, solver.LongestLink, 5)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		res := solveValid(t, New(v), p)
		if res.Cost != 0 {
			t.Fatalf("%s cost %g on edgeless graph, want 0", New(v).Name(), res.Cost)
		}
	}
}

func TestGreedyLPHeuristic(t *testing.T) {
	// Sect. 4.5.2: greedy solves LLNDP structure but is usable on LPNDP
	// problems as a heuristic; the result must simply be valid.
	g, err := core.TwoLevelAggregation(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 15, solver.LongestPath, 9)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		res := solveValid(t, New(v), p)
		if res.Cost <= 0 {
			t.Fatalf("%s LP cost %g, want positive", New(v).Name(), res.Cost)
		}
	}
}

func TestGreedyDeterministic(t *testing.T) {
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 20, solver.LongestLink, 11)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		a := solveValid(t, New(v), p)
		b := solveValid(t, New(v), p)
		for i := range a.Deployment {
			if a.Deployment[i] != b.Deployment[i] {
				t.Fatalf("%s not deterministic", New(v).Name())
			}
		}
	}
}

func TestGreedySingleEdgeGraph(t *testing.T) {
	g := core.NewGraph(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 5, solver.LongestLink, 13)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		res := solveValid(t, New(v), p)
		// The single edge must land on the globally cheapest link.
		min := p.Costs.DistinctValues()[0]
		if res.Cost != min {
			t.Fatalf("%s cost %g, want cheapest link %g", New(v).Name(), res.Cost, min)
		}
	}
}

// A nearly-spent time budget must trigger the cheap completion: the solver
// still returns a complete valid deployment, and a generous time budget
// produces the same deployment as an untimed run (the fallback never fires).
func TestGreedyTimeBudgetFallback(t *testing.T) {
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 24, solver.LongestLink, 23)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []Variant{G1, G2} {
		s := New(v)
		// A 1ns budget is spent before the first step: everything beyond the
		// seed placement goes through completeCheap.
		res, err := s.Solve(p, solver.Budget{Time: time.Nanosecond})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatalf("%s fallback produced invalid deployment: %v", s.Name(), err)
		}
		if len(res.Deployment) != p.NumNodes() {
			t.Fatalf("%s fallback deployed %d nodes, want %d", s.Name(), len(res.Deployment), p.NumNodes())
		}
		if got := p.Cost(res.Deployment); got != res.Cost {
			t.Fatalf("%s fallback reported cost %g, actual %g", s.Name(), res.Cost, got)
		}

		// With hours of budget the clock checks pass and the run matches the
		// node-budgeted (untimed) construction exactly.
		slow, err := s.Solve(p, solver.Budget{Time: time.Hour})
		if err != nil {
			t.Fatal(err)
		}
		want := solveValid(t, s, p)
		for i := range want.Deployment {
			if slow.Deployment[i] != want.Deployment[i] {
				t.Fatalf("%s with generous time budget diverged from untimed run", s.Name())
			}
		}
	}
}
