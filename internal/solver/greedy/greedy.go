// Package greedy implements the paper's two lightweight greedy algorithms
// for the Longest Link Node Deployment Problem (Sect. 4.3.2): G1 (Algorithm
// 1), which grows a partial deployment by repeatedly taking the cheapest
// available link, and G2 (Algorithm 2), which additionally charges each
// candidate for the implicit links it would add between the new instance and
// the already-deployed neighbours. For LPNDP, the greedy solution to LLNDP
// over the same graph serves as a heuristic (Sect. 4.5.2).
//
// Neither variant rescans all |S|^2 instance pairs per step. G1 keeps one
// sorted cheapest-free-instance cursor per mapped instance (the sorted rows
// come from the problem's shared Prep cache): instances only ever become
// used during a run, so each cursor advances monotonically and a step costs
// O(|S|) plus amortized cursor movement instead of O(|S|^2). G2 maintains
// each (frontier node, free instance) candidate's score — the worst link it
// would create towards mapped neighbours — incrementally: scores only grow
// as neighbours get mapped, so every assignment folds its links into the
// score matrix in O(deg * |S|) and a step just scans frontier rows, instead
// of rescoring every candidate against every mapped neighbour per step.
package greedy

import (
	"math"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Variant selects between Algorithm 1 and Algorithm 2.
type Variant int

// The two greedy variants.
const (
	G1 Variant = 1
	G2 Variant = 2
)

// Solver is a deterministic greedy solver.
type Solver struct {
	Variant Variant
}

// New returns a greedy solver for the given variant.
func New(v Variant) *Solver { return &Solver{Variant: v} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.Variant == G1 {
		return "G1"
	}
	return "G2"
}

// Solve implements solver.Solver. Greedy construction is single-pass and
// always returns a complete deployment, but it is budget-aware: when a
// wall-clock budget is nearly spent — checked on the same exponential
// warm-up cadence as solver.Clock, so the common unconstrained run pays a
// handful of clock reads — the remaining nodes are placed by a cheap O(|S|)
// completion per node instead of full greedy steps. Node budgets are left
// alone deliberately: they exist to make runs machine-independent, and the
// fallback is inherently wall-clock-dependent.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	clock := solver.NewClock(budget)
	st := newState(p)
	st.seedFirstEdge()
	// Fall back once 7/8 of the time budget is gone: the remaining eighth
	// comfortably covers the cheap completion, which costs less than one
	// greedy step per node.
	cutoff := budget.Time - budget.Time/8
	var steps, nextCheck int64 = 0, 1
	for st.mapped < p.NumNodes() {
		clock.Tick()
		if budget.Time > 0 {
			if steps++; steps >= nextCheck {
				if nextCheck <= 512 {
					nextCheck <<= 1
				} else {
					nextCheck = steps + 1024
				}
				if clock.Elapsed() >= cutoff {
					st.completeCheap()
					break
				}
			}
		}
		var ok bool
		if s.Variant == G1 {
			ok = st.stepG1()
		} else {
			ok = st.stepG2()
		}
		if !ok {
			// No mapped node has unmatched neighbours: remaining nodes are
			// in other connected components (or isolated). Seed the next
			// component and continue.
			st.seedComponent()
		}
	}
	d := core.Deployment(st.deploy)
	cost := p.Cost(d)
	res := &solver.Result{
		Deployment: d,
		Cost:       cost,
		Nodes:      clock.Nodes(),
		Elapsed:    clock.Elapsed(),
	}
	res.Trace = []solver.TracePoint{{Elapsed: res.Elapsed, Nodes: res.Nodes, Cost: cost}}
	return res, nil
}

// state is the partial deployment shared by both variants.
type state struct {
	p      *solver.Problem
	deploy []int // node -> instance, -1 if unmapped
	inv    []int // instance -> node, -1 if unused
	mapped int

	// G1 candidate frontier: rows[u] lists the instances != u sorted by
	// (cost from u, index), and cursor[u] points at the cheapest entry not
	// yet ruled out. Instances only become used during a run, so cursors
	// move forward only.
	rows   [][]int32
	cursor []int

	// G2 candidate scores: scores[w*|S|+v] is the worst link created by
	// placing unmapped node w on instance v, maximized over w's mapped
	// neighbours. A score only grows as neighbours get mapped, so each
	// assignment folds its links in incrementally (O(deg*|S|)) instead of
	// every step rescoring all frontier-instance pairs from scratch
	// (O(frontier*|S|*deg) per step — the difference between seconds and
	// tenths at 500 nodes on 1000 instances).
	scores []float64
}

func newState(p *solver.Problem) *state {
	st := &state{
		p:      p,
		deploy: make([]int, p.NumNodes()),
		inv:    make([]int, p.NumInstances()),
	}
	for i := range st.deploy {
		st.deploy[i] = -1
	}
	for i := range st.inv {
		st.inv[i] = -1
	}
	return st
}

// ensureRows fetches the per-instance sorted candidate rows for G1 on first
// use. The rows are memoized on the problem's Prep — sorting |S| rows of
// |S|-1 candidates is the dominant cost of a G1 run, and every portfolio
// member and repeated Solve shares one copy — while the cursors stay
// per-run, since they track which instances this construction has used.
func (st *state) ensureRows() {
	if st.rows != nil {
		return
	}
	st.rows = st.p.Prep().CheapestRows()
	st.cursor = make([]int, st.p.Costs.Size())
}

func (st *state) assign(node, inst int) {
	st.deploy[node] = inst
	st.inv[inst] = node
	st.mapped++
	if st.scores != nil {
		st.foldScores(node)
	}
}

// foldScores folds the links created by node's fresh assignment into the
// score rows of its still-unmapped neighbours. Called for every assignment
// once G2's score matrix exists.
func (st *state) foldScores(node int) {
	g := st.p.Graph
	m := st.p.Costs
	ns := m.Size()
	edges := g.Edges()
	x := st.deploy[node]
	for _, k := range g.IncidentEdgeIDs(node) {
		e := edges[k]
		w := e.From
		if w == node {
			w = e.To
		}
		if st.deploy[w] >= 0 {
			continue
		}
		weight := g.EdgeWeight(int(k))
		row := st.scores[w*ns : (w+1)*ns]
		if e.From == w {
			// Link would run w -> node: cost from candidate v to x.
			for v := range row {
				if c := weight * m.At(v, x); c > row[v] {
					row[v] = c
				}
			}
		} else {
			// Link would run node -> w: cost from x to candidate v.
			xr := m.Row(x)
			for v := range row {
				if c := weight * xr[v]; c > row[v] {
					row[v] = c
				}
			}
		}
	}
}

// ensureScores builds the G2 score matrix for the nodes mapped so far; all
// later assignments keep it current through foldScores.
func (st *state) ensureScores() {
	if st.scores != nil {
		return
	}
	st.scores = make([]float64, st.p.Graph.NumNodes()*st.p.Costs.Size())
	for node, inst := range st.deploy {
		if inst >= 0 {
			st.foldScores(node)
		}
	}
}

// unmatchedNeighbour iterates node's undirected neighbourhood (out then in).
func (st *state) unmatchedNeighbour(node int) (int, bool) {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	return 0, false
}

func (st *state) hasUnmatchedNeighbour(node int) bool {
	_, ok := st.unmatchedNeighbour(node)
	return ok
}

// hasMappedNeighbour reports whether any neighbour of node (either
// direction) is already deployed.
func (st *state) hasMappedNeighbour(node int) bool {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] >= 0 {
			return true
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] >= 0 {
			return true
		}
	}
	return false
}

// seedFirstEdge performs lines 1-3 of both algorithms: map an arbitrary edge
// (the first) onto the cheapest instance pair. Graphs without edges are
// seeded as a bare component instead.
func (st *state) seedFirstEdge() {
	g := st.p.Graph
	if g.NumEdges() == 0 {
		st.seedComponent()
		return
	}
	m := st.p.Costs
	n := m.Size()
	bu, bv, best := -1, -1, math.Inf(1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && m.At(u, v) < best {
				bu, bv, best = u, v, m.At(u, v)
			}
		}
	}
	e := g.Edges()[0]
	st.assign(e.From, bu)
	st.assign(e.To, bv)
}

// seedComponent maps one still-unmapped node. If that node has an unmapped
// neighbour, the pair is placed on the cheapest unused instance pair (a
// fresh copy of lines 1-3 restricted to unused instances); otherwise the
// isolated node takes the lowest-numbered unused instance, since no link
// constrains it.
func (st *state) seedComponent() {
	node := -1
	for v, inst := range st.deploy {
		if inst < 0 {
			node = v
			break
		}
	}
	if node < 0 {
		return
	}
	if nb, ok := st.unmatchedNeighbour(node); ok {
		m := st.p.Costs
		bu, bv, best := -1, -1, math.Inf(1)
		for u := 0; u < m.Size(); u++ {
			if st.inv[u] >= 0 {
				continue
			}
			for v := 0; v < m.Size(); v++ {
				if u == v || st.inv[v] >= 0 {
					continue
				}
				if m.At(u, v) < best {
					bu, bv, best = u, v, m.At(u, v)
				}
			}
		}
		st.assign(node, bu)
		st.assign(nb, bv)
		return
	}
	for inst, occupant := range st.inv {
		if occupant < 0 {
			st.assign(node, inst)
			return
		}
	}
}

// completeCheap finishes the deployment after the time budget's fallback
// cutoff: each remaining node (ascending) takes the free instance with the
// cheapest link from its first mapped neighbour's instance — one row scan,
// no frontier search — or the lowest-numbered free instance when none of
// its neighbours is mapped yet. Assignments bypass the G2 score folding:
// nothing reads the scores after completion.
func (st *state) completeCheap() {
	m := st.p.Costs
	n := m.Size()
	free := 0
	for w := range st.deploy {
		if st.deploy[w] >= 0 {
			continue
		}
		inst := -1
		if anchor := st.mappedNeighbourInstance(w); anchor >= 0 {
			row := m.Row(anchor)
			best := math.Inf(1)
			for v := 0; v < n; v++ {
				if st.inv[v] < 0 && row[v] < best {
					best, inst = row[v], v
				}
			}
		}
		if inst < 0 {
			for st.inv[free] >= 0 {
				free++
			}
			inst = free
		}
		st.deploy[w] = inst
		st.inv[inst] = w
		st.mapped++
	}
}

// mappedNeighbourInstance returns the instance of node's first mapped
// neighbour (out then in), or -1.
func (st *state) mappedNeighbourInstance(node int) int {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] >= 0 {
			return st.deploy[w]
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] >= 0 {
			return st.deploy[w]
		}
	}
	return -1
}

// stepG1 performs one iteration of Algorithm 1: take the cheapest link
// (u, v) from a mapped instance with unmatched neighbours to an unused
// instance, and map one unmatched neighbour onto v. Each mapped instance's
// candidate comes from its sorted cursor instead of a row rescan.
func (st *state) stepG1() bool {
	st.ensureRows()
	m := st.p.Costs
	n := m.Size()
	cmin := math.Inf(1)
	umin, vmin := -1, -1
	for u := 0; u < n; u++ {
		node := st.inv[u]
		if node < 0 || !st.hasUnmatchedNeighbour(node) {
			continue
		}
		row := st.rows[u]
		cur := st.cursor[u]
		for cur < len(row) && st.inv[row[cur]] >= 0 {
			cur++
		}
		st.cursor[u] = cur
		if cur == len(row) {
			continue
		}
		v := int(row[cur])
		if c := m.At(u, v); c < cmin {
			cmin = c
			umin, vmin = u, v
		}
	}
	if umin < 0 {
		return false
	}
	w, _ := st.unmatchedNeighbour(st.inv[umin])
	st.assign(w, vmin)
	return true
}

// stepG2 performs one iteration of Algorithm 2: cost each candidate (w, v) —
// a frontier node w placed on a free instance v — by the worst link it would
// create towards w's already-mapped neighbours (weighted and
// direction-aware), and take the candidate minimizing that worst cost. The
// scores come from the incrementally maintained matrix (see foldScores);
// candidates are visited in the same (w ascending, v ascending) order with
// a strict-improvement test, so the selected candidate is identical to the
// previous per-step rescoring.
func (st *state) stepG2() bool {
	st.ensureScores()
	g := st.p.Graph
	ns := st.p.Costs.Size()
	cmin := math.Inf(1)
	vmin, wmin := -1, -1
	for w := 0; w < g.NumNodes(); w++ {
		if st.deploy[w] >= 0 || !st.hasMappedNeighbour(w) {
			continue
		}
		row := st.scores[w*ns : (w+1)*ns]
		for v, worst := range row {
			if st.inv[v] >= 0 {
				continue
			}
			if worst < cmin {
				cmin = worst
				vmin, wmin = v, w
			}
		}
	}
	if wmin < 0 {
		return false
	}
	st.assign(wmin, vmin)
	return true
}
