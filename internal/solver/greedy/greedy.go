// Package greedy implements the paper's two lightweight greedy algorithms
// for the Longest Link Node Deployment Problem (Sect. 4.3.2): G1 (Algorithm
// 1), which grows a partial deployment by repeatedly taking the cheapest
// available link, and G2 (Algorithm 2), which additionally charges each
// candidate for the implicit links it would add between the new instance and
// the already-deployed neighbours. For LPNDP, the greedy solution to LLNDP
// over the same graph serves as a heuristic (Sect. 4.5.2).
package greedy

import (
	"math"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Variant selects between Algorithm 1 and Algorithm 2.
type Variant int

// The two greedy variants.
const (
	G1 Variant = 1
	G2 Variant = 2
)

// Solver is a deterministic greedy solver.
type Solver struct {
	Variant Variant
}

// New returns a greedy solver for the given variant.
func New(v Variant) *Solver { return &Solver{Variant: v} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.Variant == G1 {
		return "G1"
	}
	return "G2"
}

// Solve implements solver.Solver. Greedy construction is single-pass, so the
// budget is consulted only as a node counter; both variants always complete
// on any practical budget.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	clock := solver.NewClock(budget)
	st := newState(p)
	st.seedFirstEdge()
	for st.mapped < p.NumNodes() {
		clock.Tick()
		var ok bool
		if s.Variant == G1 {
			ok = st.stepG1()
		} else {
			ok = st.stepG2()
		}
		if !ok {
			// No mapped node has unmatched neighbours: remaining nodes are
			// in other connected components (or isolated). Seed the next
			// component and continue.
			st.seedComponent()
		}
	}
	d := core.Deployment(st.deploy)
	cost := p.Cost(d)
	res := &solver.Result{
		Deployment: d,
		Cost:       cost,
		Nodes:      clock.Nodes(),
		Elapsed:    clock.Elapsed(),
	}
	res.Trace = []solver.TracePoint{{Elapsed: res.Elapsed, Nodes: res.Nodes, Cost: cost}}
	return res, nil
}

// state is the partial deployment shared by both variants.
type state struct {
	p      *solver.Problem
	deploy []int // node -> instance, -1 if unmapped
	inv    []int // instance -> node, -1 if unused
	mapped int
}

func newState(p *solver.Problem) *state {
	st := &state{
		p:      p,
		deploy: make([]int, p.NumNodes()),
		inv:    make([]int, p.NumInstances()),
	}
	for i := range st.deploy {
		st.deploy[i] = -1
	}
	for i := range st.inv {
		st.inv[i] = -1
	}
	return st
}

func (st *state) assign(node, inst int) {
	st.deploy[node] = inst
	st.inv[inst] = node
	st.mapped++
}

// neighbours iterates node's undirected neighbourhood (out then in).
func (st *state) unmatchedNeighbour(node int) (int, bool) {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	return 0, false
}

func (st *state) hasUnmatchedNeighbour(node int) bool {
	_, ok := st.unmatchedNeighbour(node)
	return ok
}

// seedFirstEdge performs lines 1-3 of both algorithms: map an arbitrary edge
// (the first) onto the cheapest instance pair. Graphs without edges are
// seeded as a bare component instead.
func (st *state) seedFirstEdge() {
	g := st.p.Graph
	if g.NumEdges() == 0 {
		st.seedComponent()
		return
	}
	m := st.p.Costs
	n := m.Size()
	bu, bv, best := -1, -1, math.Inf(1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && m.At(u, v) < best {
				bu, bv, best = u, v, m.At(u, v)
			}
		}
	}
	e := g.Edges()[0]
	st.assign(e.From, bu)
	st.assign(e.To, bv)
}

// seedComponent maps one still-unmapped node. If that node has an unmapped
// neighbour, the pair is placed on the cheapest unused instance pair (a
// fresh copy of lines 1-3 restricted to unused instances); otherwise the
// isolated node takes the lowest-numbered unused instance, since no link
// constrains it.
func (st *state) seedComponent() {
	node := -1
	for v, inst := range st.deploy {
		if inst < 0 {
			node = v
			break
		}
	}
	if node < 0 {
		return
	}
	if nb, ok := st.unmatchedNeighbour(node); ok {
		m := st.p.Costs
		bu, bv, best := -1, -1, math.Inf(1)
		for u := 0; u < m.Size(); u++ {
			if st.inv[u] >= 0 {
				continue
			}
			for v := 0; v < m.Size(); v++ {
				if u == v || st.inv[v] >= 0 {
					continue
				}
				if m.At(u, v) < best {
					bu, bv, best = u, v, m.At(u, v)
				}
			}
		}
		st.assign(node, bu)
		st.assign(nb, bv)
		return
	}
	for inst, occupant := range st.inv {
		if occupant < 0 {
			st.assign(node, inst)
			return
		}
	}
}

// stepG1 performs one iteration of Algorithm 1: take the cheapest link
// (u, v) from a mapped instance with unmatched neighbours to an unused
// instance, and map one unmatched neighbour onto v.
func (st *state) stepG1() bool {
	m := st.p.Costs
	n := m.Size()
	cmin := math.Inf(1)
	umin, vmin := -1, -1
	for u := 0; u < n; u++ {
		node := st.inv[u]
		if node < 0 || !st.hasUnmatchedNeighbour(node) {
			continue
		}
		for v := 0; v < n; v++ {
			if u == v || st.inv[v] >= 0 {
				continue
			}
			if c := m.At(u, v); c < cmin {
				cmin = c
				umin, vmin = u, v
			}
		}
	}
	if umin < 0 {
		return false
	}
	w, _ := st.unmatchedNeighbour(st.inv[umin])
	st.assign(w, vmin)
	return true
}

// stepG2 performs one iteration of Algorithm 2: cost each candidate (v, w)
// by the worst among the explicit link (u, v) and every implicit link that
// mapping w onto v would create towards already-mapped neighbours of w, and
// take the candidate minimizing that worst cost.
func (st *state) stepG2() bool {
	g := st.p.Graph
	m := st.p.Costs
	n := m.Size()
	cmin := math.Inf(1)
	vmin, wmin := -1, -1
	for u := 0; u < n; u++ {
		node := st.inv[u]
		if node < 0 {
			continue
		}
		for v := 0; v < n; v++ {
			if u == v || st.inv[v] >= 0 {
				continue
			}
			// Each unmatched neighbour w of D^-1(u) is a candidate for
			// instance v; charge it for all implicit links to mapped nodes.
			// Edge weights scale each link's cost (the weighted-graph
			// extension); the explicit link additionally honours edge
			// direction, a small refinement over the paper's CL(u,v).
			for _, w := range undirectedNeighbours(g, node) {
				if st.deploy[w] >= 0 {
					continue
				}
				cuv := edgeCost(g, m, node, w, u, v)
				for _, x := range g.Out(w) {
					if dx := st.deploy[x]; dx >= 0 {
						if c := g.Weight(w, x) * m.At(v, dx); c > cuv {
							cuv = c
						}
					}
				}
				for _, x := range g.In(w) {
					if dx := st.deploy[x]; dx >= 0 {
						if c := g.Weight(x, w) * m.At(dx, v); c > cuv {
							cuv = c
						}
					}
				}
				if cuv < cmin {
					cmin = cuv
					vmin, wmin = v, w
				}
			}
		}
	}
	if wmin < 0 {
		return false
	}
	st.assign(wmin, vmin)
	return true
}

// edgeCost returns the worst weighted link cost the explicit edge(s) between
// nodes a and b would pay when deployed on instances ia and ib respectively.
func edgeCost(g *core.Graph, m *core.CostMatrix, a, b, ia, ib int) float64 {
	cost := 0.0
	if g.HasEdge(a, b) {
		cost = g.Weight(a, b) * m.At(ia, ib)
	}
	if g.HasEdge(b, a) {
		if c := g.Weight(b, a) * m.At(ib, ia); c > cost {
			cost = c
		}
	}
	return cost
}

// undirectedNeighbours returns node's neighbours in either direction,
// without deduplication (duplicates only cost a second evaluation).
func undirectedNeighbours(g *core.Graph, node int) []int {
	out := g.Out(node)
	in := g.In(node)
	all := make([]int, 0, len(out)+len(in))
	all = append(all, out...)
	all = append(all, in...)
	return all
}
