// Package greedy implements the paper's two lightweight greedy algorithms
// for the Longest Link Node Deployment Problem (Sect. 4.3.2): G1 (Algorithm
// 1), which grows a partial deployment by repeatedly taking the cheapest
// available link, and G2 (Algorithm 2), which additionally charges each
// candidate for the implicit links it would add between the new instance and
// the already-deployed neighbours. For LPNDP, the greedy solution to LLNDP
// over the same graph serves as a heuristic (Sect. 4.5.2).
//
// Neither variant rescans all |S|^2 instance pairs per step. G1 keeps one
// sorted cheapest-free-instance cursor per mapped instance: instances only
// ever become used during a run, so each cursor advances monotonically and a
// step costs O(|S|) plus amortized cursor movement instead of O(|S|^2). G2
// scores each (frontier node, free instance) candidate directly — the score
// depends only on the candidate, not on which mapped neighbour proposed it,
// so the old mapped-instance outer loop was pure rework.
package greedy

import (
	"math"
	"sort"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Variant selects between Algorithm 1 and Algorithm 2.
type Variant int

// The two greedy variants.
const (
	G1 Variant = 1
	G2 Variant = 2
)

// Solver is a deterministic greedy solver.
type Solver struct {
	Variant Variant
}

// New returns a greedy solver for the given variant.
func New(v Variant) *Solver { return &Solver{Variant: v} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.Variant == G1 {
		return "G1"
	}
	return "G2"
}

// Solve implements solver.Solver. Greedy construction is single-pass, so the
// budget is consulted only as a node counter; both variants always complete
// on any practical budget.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	clock := solver.NewClock(budget)
	st := newState(p)
	st.seedFirstEdge()
	for st.mapped < p.NumNodes() {
		clock.Tick()
		var ok bool
		if s.Variant == G1 {
			ok = st.stepG1()
		} else {
			ok = st.stepG2()
		}
		if !ok {
			// No mapped node has unmatched neighbours: remaining nodes are
			// in other connected components (or isolated). Seed the next
			// component and continue.
			st.seedComponent()
		}
	}
	d := core.Deployment(st.deploy)
	cost := p.Cost(d)
	res := &solver.Result{
		Deployment: d,
		Cost:       cost,
		Nodes:      clock.Nodes(),
		Elapsed:    clock.Elapsed(),
	}
	res.Trace = []solver.TracePoint{{Elapsed: res.Elapsed, Nodes: res.Nodes, Cost: cost}}
	return res, nil
}

// state is the partial deployment shared by both variants.
type state struct {
	p      *solver.Problem
	deploy []int // node -> instance, -1 if unmapped
	inv    []int // instance -> node, -1 if unused
	mapped int

	// G1 candidate frontier: rows[u] lists the instances != u sorted by
	// (cost from u, index), and cursor[u] points at the cheapest entry not
	// yet ruled out. Instances only become used during a run, so cursors
	// move forward only.
	rows   [][]int32
	cursor []int
}

func newState(p *solver.Problem) *state {
	st := &state{
		p:      p,
		deploy: make([]int, p.NumNodes()),
		inv:    make([]int, p.NumInstances()),
	}
	for i := range st.deploy {
		st.deploy[i] = -1
	}
	for i := range st.inv {
		st.inv[i] = -1
	}
	return st
}

// ensureRows builds the per-instance sorted candidate rows for G1 on first
// use.
func (st *state) ensureRows() {
	if st.rows != nil {
		return
	}
	m := st.p.Costs
	n := m.Size()
	st.rows = make([][]int32, n)
	st.cursor = make([]int, n)
	flat := make([]int32, 0, n*(n-1))
	for u := 0; u < n; u++ {
		row := flat[len(flat) : len(flat) : len(flat)+n-1]
		for v := 0; v < n; v++ {
			if v != u {
				row = append(row, int32(v))
			}
		}
		flat = flat[:len(flat)+len(row)]
		cu := m.Row(u)
		sort.Slice(row, func(i, j int) bool {
			ci, cj := cu[row[i]], cu[row[j]]
			if ci != cj {
				return ci < cj
			}
			return row[i] < row[j]
		})
		st.rows[u] = row
	}
}

func (st *state) assign(node, inst int) {
	st.deploy[node] = inst
	st.inv[inst] = node
	st.mapped++
}

// unmatchedNeighbour iterates node's undirected neighbourhood (out then in).
func (st *state) unmatchedNeighbour(node int) (int, bool) {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] < 0 {
			return w, true
		}
	}
	return 0, false
}

func (st *state) hasUnmatchedNeighbour(node int) bool {
	_, ok := st.unmatchedNeighbour(node)
	return ok
}

// hasMappedNeighbour reports whether any neighbour of node (either
// direction) is already deployed.
func (st *state) hasMappedNeighbour(node int) bool {
	for _, w := range st.p.Graph.Out(node) {
		if st.deploy[w] >= 0 {
			return true
		}
	}
	for _, w := range st.p.Graph.In(node) {
		if st.deploy[w] >= 0 {
			return true
		}
	}
	return false
}

// seedFirstEdge performs lines 1-3 of both algorithms: map an arbitrary edge
// (the first) onto the cheapest instance pair. Graphs without edges are
// seeded as a bare component instead.
func (st *state) seedFirstEdge() {
	g := st.p.Graph
	if g.NumEdges() == 0 {
		st.seedComponent()
		return
	}
	m := st.p.Costs
	n := m.Size()
	bu, bv, best := -1, -1, math.Inf(1)
	for u := 0; u < n; u++ {
		for v := 0; v < n; v++ {
			if u != v && m.At(u, v) < best {
				bu, bv, best = u, v, m.At(u, v)
			}
		}
	}
	e := g.Edges()[0]
	st.assign(e.From, bu)
	st.assign(e.To, bv)
}

// seedComponent maps one still-unmapped node. If that node has an unmapped
// neighbour, the pair is placed on the cheapest unused instance pair (a
// fresh copy of lines 1-3 restricted to unused instances); otherwise the
// isolated node takes the lowest-numbered unused instance, since no link
// constrains it.
func (st *state) seedComponent() {
	node := -1
	for v, inst := range st.deploy {
		if inst < 0 {
			node = v
			break
		}
	}
	if node < 0 {
		return
	}
	if nb, ok := st.unmatchedNeighbour(node); ok {
		m := st.p.Costs
		bu, bv, best := -1, -1, math.Inf(1)
		for u := 0; u < m.Size(); u++ {
			if st.inv[u] >= 0 {
				continue
			}
			for v := 0; v < m.Size(); v++ {
				if u == v || st.inv[v] >= 0 {
					continue
				}
				if m.At(u, v) < best {
					bu, bv, best = u, v, m.At(u, v)
				}
			}
		}
		st.assign(node, bu)
		st.assign(nb, bv)
		return
	}
	for inst, occupant := range st.inv {
		if occupant < 0 {
			st.assign(node, inst)
			return
		}
	}
}

// stepG1 performs one iteration of Algorithm 1: take the cheapest link
// (u, v) from a mapped instance with unmatched neighbours to an unused
// instance, and map one unmatched neighbour onto v. Each mapped instance's
// candidate comes from its sorted cursor instead of a row rescan.
func (st *state) stepG1() bool {
	st.ensureRows()
	m := st.p.Costs
	n := m.Size()
	cmin := math.Inf(1)
	umin, vmin := -1, -1
	for u := 0; u < n; u++ {
		node := st.inv[u]
		if node < 0 || !st.hasUnmatchedNeighbour(node) {
			continue
		}
		row := st.rows[u]
		cur := st.cursor[u]
		for cur < len(row) && st.inv[row[cur]] >= 0 {
			cur++
		}
		st.cursor[u] = cur
		if cur == len(row) {
			continue
		}
		v := int(row[cur])
		if c := m.At(u, v); c < cmin {
			cmin = c
			umin, vmin = u, v
		}
	}
	if umin < 0 {
		return false
	}
	w, _ := st.unmatchedNeighbour(st.inv[umin])
	st.assign(w, vmin)
	return true
}

// stepG2 performs one iteration of Algorithm 2: cost each candidate (w, v) —
// a frontier node w placed on a free instance v — by the worst link it would
// create towards w's already-mapped neighbours (weighted and
// direction-aware), and take the candidate minimizing that worst cost. The
// score depends only on (w, v), so candidates are enumerated once each
// rather than once per mapped neighbour as in a literal reading of the
// paper's pseudocode.
func (st *state) stepG2() bool {
	g := st.p.Graph
	m := st.p.Costs
	edges := g.Edges()
	cmin := math.Inf(1)
	vmin, wmin := -1, -1
	for w := 0; w < g.NumNodes(); w++ {
		if st.deploy[w] >= 0 || !st.hasMappedNeighbour(w) {
			continue
		}
		inc := g.IncidentEdgeIDs(w)
		for v := 0; v < m.Size(); v++ {
			if st.inv[v] >= 0 {
				continue
			}
			worst := 0.0
			for _, k := range inc {
				e := edges[k]
				if e.From == w {
					if dx := st.deploy[e.To]; dx >= 0 {
						if c := g.EdgeWeight(int(k)) * m.At(v, dx); c > worst {
							worst = c
						}
					}
				} else if dx := st.deploy[e.From]; dx >= 0 {
					if c := g.EdgeWeight(int(k)) * m.At(dx, v); c > worst {
						worst = c
					}
				}
			}
			if worst < cmin {
				cmin = worst
				vmin, wmin = v, w
			}
		}
	}
	if wmin < 0 {
		return false
	}
	st.assign(wmin, vmin)
	return true
}
