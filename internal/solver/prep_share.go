package solver

import "cloudia/internal/core"

// This file implements the export/adopt path that lets a serving layer
// share Prep artifacts across Problems: cluster-K memo entries and
// cheapest-link rows are immutable once built and are deterministic
// functions of the cost-matrix content, so a cache keyed by
// core.CostMatrix.Fingerprint can hand one tenant's computed artifacts to
// every later problem over an identical matrix (internal/serve).
//
// Only canonical artifacts are exportable: a cluster entry built by
// merge-patching a previous epoch's fit depends on its patch lineage, not
// just on the current matrix content, so exporting it under a pure content
// key could serve two different byte-level artifacts for one fingerprint.
// Fresh fits (and cheapest-link rows, which are per-row functions of the
// matrix regardless of how they were seeded) are canonical.

// RoundedArtifact is an exported cluster-K preprocessing artifact — the
// rounded matrix, its cost-sorted pair list, and the fitted clustering —
// opaque to callers and shared read-only between every Prep that adopts it.
type RoundedArtifact struct {
	k int
	e *prepRounded
}

// ClusterK reports the cluster count the artifact was built for (0 for the
// unclustered entry).
func (a *RoundedArtifact) ClusterK() int { return a.k }

// RowsArtifact is an exported cheapest-link row set (Prep.CheapestRows),
// shared read-only between every Prep that adopts it.
type RowsArtifact struct {
	rows [][]int32
}

// ExportRounded returns the computed cluster-k entry as a shareable
// artifact, or ok=false when the entry has not been computed, errored, or
// was built by patching a previous epoch (non-canonical; see above). k <= 0
// exports the unclustered entry.
func (pp *Prep) ExportRounded(k int) (*RoundedArtifact, bool) {
	if k < 0 {
		k = 0
	}
	pp.mu.Lock()
	e, ok := pp.rounded[k]
	pp.mu.Unlock()
	if !ok || !e.done.Load() || e.err != nil || e.patched {
		return nil, false
	}
	return &RoundedArtifact{k: k, e: e}, true
}

// AdoptRounded installs an exported cluster entry into this Prep, so that
// Rounded(k) (and TransposedCosts(k)) serve the shared artifact instead of
// recomputing it. Adoption only fills an empty slot: it reports false when
// this Prep already holds an entry for the artifact's k — computed, in
// flight, or seeded for incremental patching by Evolve — because replacing
// a seeded entry would silently change which bits an evolving problem
// chain computes. Callers must only adopt artifacts whose source matrix
// content (fingerprint) matches this problem's matrix, and must adopt
// before any solver consults the Prep.
func (pp *Prep) AdoptRounded(a *RoundedArtifact) bool {
	if a == nil || a.e == nil {
		return false
	}
	pp.mu.Lock()
	defer pp.mu.Unlock()
	if _, ok := pp.rounded[a.k]; ok {
		return false
	}
	pp.rounded[a.k] = a.e
	return true
}

// ExportCheapestRows returns the computed cheapest-link rows as a shareable
// artifact, or ok=false when they have not been computed yet. Rows are
// canonical per matrix content even when they were seeded incrementally:
// each row is an independent sort of that row's costs.
func (pp *Prep) ExportCheapestRows() (*RowsArtifact, bool) {
	if !pp.rowsDone.Load() {
		return nil, false
	}
	return &RowsArtifact{rows: pp.rows}, true
}

// GraphArtifact is an exported transposed-graph family — the reversed
// communication graph and its topological order — shared read-only between
// every Prep that adopts it. Unlike the matrix-derived artifacts it is keyed
// by the graph's content (core.Graph.Fingerprint), so longest-path fleets
// over one topology share the transpose even when their cost matrices all
// differ.
type GraphArtifact struct {
	g        *core.Graph
	order    []core.NodeID
	orderErr error
}

// ExportTransposedGraph returns the computed transposed-graph family as a
// shareable artifact, or ok=false when it has not been built yet. The
// transpose is a pure function of the graph's edge list (in order), so it is
// always canonical.
func (pp *Prep) ExportTransposedGraph() (*GraphArtifact, bool) {
	if !pp.tGraphDone.Load() {
		return nil, false
	}
	return &GraphArtifact{g: pp.tGraph, order: pp.tOrder, orderErr: pp.tOrderErr}, true
}

// AdoptTransposedGraph installs an exported transposed-graph family, so
// TransposedGraph and TransposedTopoOrder serve the shared artifact. It
// reports false when this Prep already built its own (adoption raced a
// solver, or was repeated). Callers must only adopt artifacts whose source
// graph content (fingerprint) matches this problem's graph.
func (pp *Prep) AdoptTransposedGraph(a *GraphArtifact) bool {
	if a == nil || a.g == nil {
		return false
	}
	adopted := false
	pp.tGraphOnce.Do(func() {
		pp.tGraph, pp.tOrder, pp.tOrderErr = a.g, a.order, a.orderErr
		pp.tGraphDone.Store(true)
		adopted = true
	})
	return adopted
}

// AdoptCheapestRows installs an exported row set, so CheapestRows serves
// the shared artifact. It reports false when this Prep already computed its
// rows (adoption raced a solver, or was repeated). The same content
// contract as AdoptRounded applies.
func (pp *Prep) AdoptCheapestRows(a *RowsArtifact) bool {
	if a == nil || a.rows == nil {
		return false
	}
	adopted := false
	pp.rowsOnce.Do(func() {
		pp.rowsSeed, pp.rowsSeedChanged = nil, nil
		pp.rows = a.rows
		pp.rowsDone.Store(true)
		adopted = true
	})
	return adopted
}
