package solver

import (
	"testing"
	"time"

	"cloudia/internal/core"
)

// tieFixture builds a 2-node line graph over 3 instances where deployments
// {0,1} and {1,0}... more usefully: primary costs tie between two
// deployments while the tie matrix separates them.
func tieFixture(t *testing.T) (*core.Graph, *core.CostMatrix, *core.CostMatrix) {
	t.Helper()
	g := core.NewGraph(2)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	n := 3
	primary := core.NewCostMatrix(n)
	tie := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			primary.Set(i, j, 5) // every link ties on primary cost
			tie.Set(i, j, float64(10*i+j))
		}
	}
	return g, primary, tie
}

func TestNewProblemTieValidation(t *testing.T) {
	g, primary, _ := tieFixture(t)
	small := core.NewCostMatrix(2)
	small.Set(0, 1, 1)
	small.Set(1, 0, 1)
	if _, err := NewProblemTie(g, primary, small, LongestLink); err == nil {
		t.Fatal("size-mismatched tie matrix accepted")
	}
	p, err := NewProblemTie(g, primary, nil, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if p.Tie != nil {
		t.Fatal("nil tie must stay nil")
	}
	if got := p.TieCost(core.Deployment{0, 1}); got != 0 {
		t.Fatalf("TieCost without tie matrix = %g, want 0", got)
	}
}

func TestTieCostAndBetter(t *testing.T) {
	g, primary, tie := tieFixture(t)
	p, err := NewProblemTie(g, primary, tie, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	a := core.Deployment{0, 1} // tie cost 1 (edge 0->1 on instances 0->1)
	b := core.Deployment{2, 1} // tie cost 21
	if ca, cb := p.Cost(a), p.Cost(b); ca != cb {
		t.Fatalf("fixture broken: primary costs %g vs %g should tie", ca, cb)
	}
	if got := p.TieCost(a); got != 1 {
		t.Fatalf("TieCost(a) = %g, want 1", got)
	}
	if got := p.TieCost(b); got != 21 {
		t.Fatalf("TieCost(b) = %g, want 21", got)
	}
	if !p.Better(a, b, p.Cost(a), p.Cost(b)) {
		t.Fatal("a must beat b on tie cost")
	}
	if p.Better(b, a, p.Cost(b), p.Cost(a)) {
		t.Fatal("b must not beat a")
	}
	// Strictly lower primary always wins regardless of tie.
	if !p.Better(b, a, 4, 5) {
		t.Fatal("lower primary cost must win outright")
	}
}

func TestEvolveTieCarriesMatrix(t *testing.T) {
	g, primary, tie := tieFixture(t)
	p, err := NewProblemTie(g, primary, tie, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	next := primary.Clone()
	next.Set(0, 1, 7)
	tie2 := tie.Clone()
	tie2.Set(0, 1, 99) // tie may change arbitrarily without being listed
	np, err := p.EvolveTie(next, []int{0}, tie2)
	if err != nil {
		t.Fatal(err)
	}
	if np.Tie != tie2 {
		t.Fatal("evolved problem must carry the new tie matrix")
	}
	// Clearing the tie matrix is allowed.
	np2, err := np.EvolveTie(next, nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if np2.Tie != nil {
		t.Fatal("nil tie must clear the matrix")
	}
	// A size-mismatched tie is rejected.
	if _, err := p.EvolveTie(next, []int{0}, core.NewCostMatrix(2)); err == nil {
		t.Fatal("size-mismatched tie accepted by EvolveTie")
	}
}

// fixedSolver returns a canned result, for pinning portfolio selection.
type fixedSolver struct {
	name string
	d    core.Deployment
	wait time.Duration
}

func (f fixedSolver) Name() string { return f.name }
func (f fixedSolver) Solve(p *Problem, _ Budget) (*Result, error) {
	time.Sleep(f.wait)
	return &Result{Deployment: f.d, Cost: p.Cost(f.d)}, nil
}

// TestPortfolioTieBreakDeterministic pins the post-join winner selection:
// on equal primary cost the lower tie cost wins even when that member
// finishes last, and with no tie matrix the earlier member index wins.
func TestPortfolioTieBreakDeterministic(t *testing.T) {
	g, primary, tie := tieFixture(t)
	worse := fixedSolver{name: "worse", d: core.Deployment{2, 1}}
	// The better-tie member finishes last to prove selection ignores
	// completion order.
	better := fixedSolver{name: "better", d: core.Deployment{0, 1}, wait: 20 * time.Millisecond}

	p, err := NewProblemTie(g, primary, tie, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewPortfolio(worse, better).Solve(p, Budget{Nodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "better" {
		t.Fatalf("winner = %q, want tie-break winner %q", res.Winner, "better")
	}

	// Without a tie matrix, equal costs resolve to the first member index.
	pp, err := NewProblem(g, primary, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	res, err = NewPortfolio(worse, better).Solve(pp, Budget{Nodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Winner != "worse" {
		t.Fatalf("winner = %q, want first member %q on pure tie", res.Winner, "worse")
	}
}
