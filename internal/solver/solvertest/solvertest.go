// Package solvertest provides shared problem-instance builders for testing
// the solver implementations: planted instances with a known optimal cost,
// and realistic instances drawn from the simulated datacenter.
package solvertest

import (
	"math/rand"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

// PlantedLL builds a LLNDP instance with a known optimum: a hidden clique of
// rows*cols instances is interconnected at ~lowCost, every other link costs
// ~highCost, and the communication graph is a rows x cols mesh. Any
// deployment confined to the clique has cost below lowCost*1.01; any other
// deployment pays at least highCost. It returns the problem and the
// optimal-cost ceiling.
func PlantedLL(rows, cols, extra int, lowCost, highCost float64, seed int64) (*solver.Problem, float64, error) {
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, 0, err
	}
	n := rows * cols
	s := n + extra
	rng := rand.New(rand.NewSource(seed))
	good := rng.Perm(s)[:n]
	isGood := make([]bool, s)
	for _, j := range good {
		isGood[j] = true
	}
	m := core.NewCostMatrix(s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i == j {
				continue
			}
			if isGood[i] && isGood[j] {
				m.Set(i, j, lowCost*(1+rng.Float64()*0.01))
			} else {
				m.Set(i, j, highCost*(1+rng.Float64()*0.01))
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		return nil, 0, err
	}
	return p, lowCost * 1.01, nil
}

// PlantedLP builds an LPNDP instance with a planted cheap chain: the
// communication graph is a directed path over n nodes, instances 0..n-1
// consecutively linked at ~lowCost, everything else at ~highCost, plus extra
// decoy instances. The optimal longest-path cost is below
// (n-1)*lowCost*1.01.
func PlantedLP(n, extra int, lowCost, highCost float64, seed int64) (*solver.Problem, float64, error) {
	g := core.NewGraph(n)
	for v := 0; v+1 < n; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			return nil, 0, err
		}
	}
	s := n + extra
	rng := rand.New(rand.NewSource(seed))
	m := core.NewCostMatrix(s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i == j {
				continue
			}
			if j == i+1 && j < n {
				m.Set(i, j, lowCost*(1+rng.Float64()*0.01))
			} else {
				m.Set(i, j, highCost*(1+rng.Float64()*0.01))
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestPath)
	if err != nil {
		return nil, 0, err
	}
	return p, float64(n-1) * lowCost * 1.01, nil
}

// Realistic builds a problem over a simulated EC2 allocation: nodes nodes,
// an over-allocated instance pool, and ground-truth mean RTTs as costs.
func Realistic(g *core.Graph, instances int, obj solver.Objective, seed int64) (*solver.Problem, error) {
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		return nil, err
	}
	prov, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		return nil, err
	}
	insts, err := prov.RunInstances(instances)
	if err != nil {
		return nil, err
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	return solver.NewProblem(g, m, obj)
}
