package solver

import (
	"math/rand"
	"reflect"
	"testing"

	"cloudia/internal/core"
)

func shareTestProblem(t *testing.T, seed int64) (*Problem, *Problem) {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := core.NewGraph(8)
	for v := 0; v+1 < 8; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	m := core.NewCostMatrix(12)
	for i := 0; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	pa, err := NewProblem(g, m, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	// A second problem over a distinct but bitwise-equal matrix, as two
	// tenants with identical measurements would hold.
	pb, err := NewProblem(g, m.Clone(), LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	return pa, pb
}

// Adopted artifacts must be the exact structures the donor computed, and
// must be what the adopter would have computed itself.
func TestExportAdoptRounded(t *testing.T) {
	pa, pb := shareTestProblem(t, 1)
	if _, ok := pa.Prep().ExportRounded(4); ok {
		t.Fatal("exported a never-computed entry")
	}
	ma, pairsA, err := pa.Prep().Rounded(4)
	if err != nil {
		t.Fatal(err)
	}
	art, ok := pa.Prep().ExportRounded(4)
	if !ok {
		t.Fatal("computed entry not exportable")
	}
	if art.ClusterK() != 4 {
		t.Fatalf("artifact k = %d, want 4", art.ClusterK())
	}
	if !pb.Prep().AdoptRounded(art) {
		t.Fatal("adoption into an empty slot failed")
	}
	mb, pairsB, err := pb.Prep().Rounded(4)
	if err != nil {
		t.Fatal(err)
	}
	if mb != ma {
		t.Fatal("adopted Prep did not serve the shared matrix")
	}
	if !reflect.DeepEqual(pairsA, pairsB) {
		t.Fatal("adopted pair list differs")
	}
	// Independently computed artifacts over equal content must be
	// bit-identical to the shared one (determinism of the fit).
	pc, _ := shareTestProblem(t, 1)
	mc, pairsC, err := pc.Prep().Rounded(4)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(mc.Row(3), ma.Row(3)) || !reflect.DeepEqual(pairsC, pairsA) {
		t.Fatal("fresh fit over equal content differs from shared artifact")
	}
	// Adoption must refuse occupied slots.
	if pa.Prep().AdoptRounded(art) {
		t.Fatal("adoption replaced an existing entry")
	}
}

// Entries built by Evolve's incremental patch are not canonical and must
// not export; a fresh fit after a majority drift must export again.
func TestExportRejectsPatchedEntries(t *testing.T) {
	pa, _ := shareTestProblem(t, 2)
	if _, _, err := pa.Prep().Rounded(4); err != nil {
		t.Fatal(err)
	}
	m2 := pa.Costs.Clone()
	m2.Set(0, 1, m2.At(0, 1)+1)
	p2, err := pa.Evolve(m2, []int{0})
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p2.Prep().Rounded(4); err != nil {
		t.Fatal(err)
	}
	if _, ok := p2.Prep().ExportRounded(4); ok {
		t.Fatal("patched entry was exported")
	}
	// Changing a majority of rows forces a refit, which is canonical again.
	m3 := p2.Costs.Clone()
	var rows []int
	for i := 0; i < m3.Size()-1; i++ {
		m3.Set(i, i+1, m3.At(i, i+1)+1)
		rows = append(rows, i)
	}
	p3, err := p2.Evolve(m3, rows)
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := p3.Prep().Rounded(4); err != nil {
		t.Fatal(err)
	}
	if _, ok := p3.Prep().ExportRounded(4); !ok {
		t.Fatal("refit entry after majority drift not exported")
	}
}

func TestExportAdoptCheapestRows(t *testing.T) {
	pa, pb := shareTestProblem(t, 3)
	if _, ok := pa.Prep().ExportCheapestRows(); ok {
		t.Fatal("exported never-computed rows")
	}
	rowsA := pa.Prep().CheapestRows()
	art, ok := pa.Prep().ExportCheapestRows()
	if !ok {
		t.Fatal("computed rows not exportable")
	}
	if !pb.Prep().AdoptCheapestRows(art) {
		t.Fatal("row adoption failed")
	}
	rowsB := pb.Prep().CheapestRows()
	if &rowsA[0][0] != &rowsB[0][0] {
		t.Fatal("adopted Prep did not serve the shared rows")
	}
	if pa.Prep().AdoptCheapestRows(art) {
		t.Fatal("adoption succeeded on a Prep that already computed rows")
	}
}
