package solver_test

import (
	"math/rand"
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// buildDeltaProblem constructs a random problem for the evaluator property
// tests: a random DAG-shaped graph (so the same graph works for both
// objectives), a random cost matrix with many duplicate values (exercising
// the witness logic's rescans and ties), and optional edge weights. With
// multiSink, the DAG's last two nodes have no out-edges, forcing the LP
// evaluator off its single-sink fast path.
func buildDeltaProblem(t testing.TB, obj solver.Objective, weighted, multiSink bool, nodes, instances int, seed int64) *solver.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := core.NewGraph(nodes)
	// Edges only from lower to higher node id: acyclic by construction.
	srcMax := nodes // one past the largest node allowed to have out-edges
	if multiSink {
		srcMax = nodes - 2
		if err := g.AddEdge(nodes-3, nodes-1); err != nil {
			t.Fatal(err)
		}
		if err := g.AddEdge(nodes-3, nodes-2); err != nil {
			t.Fatal(err)
		}
	}
	for v := 0; v+1 < srcMax; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 2*nodes; k++ {
		a, b := rng.Intn(srcMax), rng.Intn(nodes)
		if a > b {
			a, b = b, a
		}
		if a != b && a < srcMax && !g.HasEdge(a, b) {
			if err := g.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	if weighted {
		for _, e := range g.Edges() {
			if rng.Intn(2) == 0 {
				if err := g.SetWeight(e.From, e.To, 0.5+rng.Float64()); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	m := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				// Quantized costs: plenty of exact duplicates.
				m.Set(i, j, float64(1+rng.Intn(40))/8)
			}
		}
	}
	p, err := solver.NewProblem(g, m, obj)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestDeltaEvaluatorMatchesFullRecompute drives 10k random swap/relocate
// moves through the evaluator, randomly committing or rejecting each, and
// checks after every move that the proposed cost and the committed cost are
// bit-for-bit equal to a full Problem.Cost recomputation on a shadow
// deployment.
func TestDeltaEvaluatorMatchesFullRecompute(t *testing.T) {
	const moves = 10_000
	for _, tc := range []struct {
		name      string
		obj       solver.Objective
		weighted  bool
		multiSink bool
	}{
		{"LL-unweighted", solver.LongestLink, false, false},
		{"LL-weighted", solver.LongestLink, true, false},
		{"LP-unweighted", solver.LongestPath, false, false},
		{"LP-weighted", solver.LongestPath, true, false},
		{"LP-unweighted-multisink", solver.LongestPath, false, true},
		{"LP-weighted-multisink", solver.LongestPath, true, true},
	} {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			const n, m = 24, 31
			p := buildDeltaProblem(t, tc.obj, tc.weighted, tc.multiSink, n, m, 0xC10D1A)
			rng := rand.New(rand.NewSource(99))
			shadow := solver.RandomDeployment(p, rng)
			ev := solver.NewDeltaEvaluator(p, shadow)
			if got, want := ev.Cost(), p.Cost(shadow); got != want {
				t.Fatalf("initial cost %v != full recompute %v", got, want)
			}
			inv := make([]int, m)
			for i := range inv {
				inv[i] = -1
			}
			for node, inst := range shadow {
				inv[inst] = node
			}
			free := make([]int, 0, m-n)
			for inst, occ := range inv {
				if occ < 0 {
					free = append(free, inst)
				}
			}
			for i := 0; i < moves; i++ {
				var cand float64
				var apply func()
				if len(free) > 0 && rng.Intn(2) == 0 {
					node := rng.Intn(n)
					fi := rng.Intn(len(free))
					inst, old := free[fi], shadow[node]
					cand = ev.RelocateCost(node, inst)
					apply = func() {
						shadow[node] = inst
						inv[old], inv[inst] = -1, node
						free[fi] = old
					}
				} else {
					a := rng.Intn(n)
					b := rng.Intn(n - 1)
					if b >= a {
						b++
					}
					cand = ev.SwapCost(a, b)
					apply = func() {
						shadow[a], shadow[b] = shadow[b], shadow[a]
						inv[shadow[a]], inv[shadow[b]] = a, b
					}
				}
				if rng.Intn(2) == 0 {
					ev.Commit()
					apply()
					if want := p.Cost(shadow); cand != want {
						t.Fatalf("move %d: committed proposal cost %v != full recompute %v", i, cand, want)
					}
				} else {
					// Verify the proposal priced the would-be deployment
					// correctly even though we discard it: the evaluator's
					// internal deployment currently reflects the proposal.
					if want := p.Cost(ev.Deployment()); cand != want {
						t.Fatalf("move %d: proposal cost %v != full recompute %v", i, cand, want)
					}
					ev.Reject()
				}
				if got, want := ev.Cost(), p.Cost(shadow); got != want {
					t.Fatalf("move %d: evaluator cost %v != full recompute %v", i, got, want)
				}
				for node, inst := range ev.Deployment() {
					if shadow[node] != inst {
						t.Fatalf("move %d: evaluator deployment diverged at node %d", i, node)
					}
				}
			}
		})
	}
}

// TestDeltaEvaluatorReset checks that Reset reloads arbitrary deployments.
func TestDeltaEvaluatorReset(t *testing.T) {
	for _, obj := range []solver.Objective{solver.LongestLink, solver.LongestPath} {
		p := buildDeltaProblem(t, obj, true, false, 12, 17, 5)
		rng := rand.New(rand.NewSource(7))
		d := solver.RandomDeployment(p, rng)
		ev := solver.NewDeltaEvaluator(p, d)
		for i := 0; i < 50; i++ {
			d2 := solver.RandomDeployment(p, rng)
			if got, want := ev.Reset(d2), p.Cost(d2); got != want {
				t.Fatalf("%s reset %d: cost %v != %v", obj, i, got, want)
			}
		}
	}
}

// TestDeltaEvaluatorRelocatePanicsOnOccupied locks in the injectivity guard.
func TestDeltaEvaluatorRelocatePanicsOnOccupied(t *testing.T) {
	p := buildDeltaProblem(t, solver.LongestLink, false, false, 6, 9, 11)
	ev := solver.NewDeltaEvaluator(p, core.Identity(6))
	defer func() {
		if recover() == nil {
			t.Fatal("relocating onto an occupied instance did not panic")
		}
	}()
	ev.RelocateCost(0, 1) // instance 1 is occupied by node 1
}
