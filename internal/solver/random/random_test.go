package random

import (
	"testing"
	"time"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

func TestR1Validation(t *testing.T) {
	p, _, err := solvertest.PlantedLL(2, 2, 2, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewR1(0, 1).Solve(p, solver.Budget{}); err == nil {
		t.Fatal("zero samples accepted")
	}
}

func TestR1FindsValidSolution(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 2, 0.1, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewR1(500, 3).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatalf("invalid deployment: %v", err)
	}
	if res.Cost != p.Cost(res.Deployment) {
		t.Fatal("reported cost mismatch")
	}
	if res.Nodes == 0 || len(res.Trace) == 0 {
		t.Fatal("missing accounting")
	}
}

func TestR1MoreSamplesNoWorse(t *testing.T) {
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 20, solver.LongestLink, 4)
	if err != nil {
		t.Fatal(err)
	}
	// Same seed: the 5000-sample run sees a superset of the 50-sample run's
	// candidates.
	few, err := NewR1(50, 9).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := NewR1(5000, 9).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if many.Cost > few.Cost {
		t.Fatalf("5000 samples cost %g worse than 50 samples %g", many.Cost, few.Cost)
	}
}

func TestR1Deterministic(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 2, 0.1, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	a, err := NewR1(200, 7).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewR1(200, 7).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("R1 not deterministic: %g vs %g", a.Cost, b.Cost)
	}
}

func TestR1NodeBudgetTruncates(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 2, 0.1, 1, 6)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewR1(100000, 7).Solve(p, solver.Budget{Nodes: 100})
	if err != nil {
		t.Fatal(err)
	}
	if res.Nodes > 101 {
		t.Fatalf("node budget ignored: %d", res.Nodes)
	}
}

func TestR2RequiresBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(2, 2, 2, 0.1, 1, 8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewR2(1).Solve(p, solver.Budget{}); err == nil {
		t.Fatal("unlimited budget accepted")
	}
}

func TestR2FindsSolutionUnderTimeBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := NewR2(11).Solve(p, solver.Budget{Time: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatalf("invalid deployment: %v", err)
	}
	if res.Nodes == 0 {
		t.Fatal("no samples drawn")
	}
	if res.Elapsed <= 0 {
		t.Fatal("elapsed not recorded")
	}
}

func TestR2NodeBudgetSplitsAcrossWorkers(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	s := &R2{Seed: 13, Workers: 4}
	res, err := s.Solve(p, solver.Budget{Nodes: 4000})
	if err != nil {
		t.Fatal(err)
	}
	// Each of 4 workers gets 1000 nodes; total within rounding.
	if res.Nodes < 3900 || res.Nodes > 4100 {
		t.Fatalf("total nodes %d, want ~4000", res.Nodes)
	}
}

func TestR2BeatsSingleSampleOnAverage(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1, 12)
	if err != nil {
		t.Fatal(err)
	}
	one, err := NewR1(1, 5).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	many, err := (&R2{Seed: 5, Workers: 2}).Solve(p, solver.Budget{Nodes: 5000})
	if err != nil {
		t.Fatal(err)
	}
	if many.Cost > one.Cost {
		t.Fatalf("R2 over 5000 samples (%g) worse than a single sample (%g)", many.Cost, one.Cost)
	}
}

func TestRandomSolversOnLPNDP(t *testing.T) {
	p, _, err := solvertest.PlantedLP(6, 4, 0.1, 1, 14)
	if err != nil {
		t.Fatal(err)
	}
	r1, err := NewR1(2000, 15).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if err := r1.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	r2, err := (&R2{Seed: 15, Workers: 2}).Solve(p, solver.Budget{Nodes: 2000})
	if err != nil {
		t.Fatal(err)
	}
	if err := r2.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
}
