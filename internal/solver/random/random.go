// Package random implements the paper's randomized search baselines
// (Sects. 4.3.1 and 4.5.1): R1 draws a fixed number of uniformly random
// deployments and keeps the best; R2 draws random deployments in parallel
// across all CPUs for a wall-clock budget, matching the hardware budget
// given to the CP/MIP solvers (Sect. 6.5). Local ("R2L") upgrades R2 from
// blind sampling to restarted hill climbing: each worker repeatedly samples
// a start and then walks swap/relocate moves priced by solver.DeltaEvaluator
// in ~O(deg) per move. All three work unchanged for the longest-link and
// longest-path objectives.
package random

import (
	"context"
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// R1 is the fixed-sample-count randomized solver. The paper uses 1,000
// samples.
type R1 struct {
	Samples int
	Seed    int64
}

// NewR1 returns an R1 solver drawing the given number of samples.
func NewR1(samples int, seed int64) *R1 { return &R1{Samples: samples, Seed: seed} }

// Name implements solver.Solver.
func (s *R1) Name() string { return "R1" }

// Solve implements solver.Solver: sequential, fully deterministic sampling.
// The node budget, if smaller than Samples, truncates the run.
func (s *R1) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver.
func (s *R1) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if s.Samples <= 0 {
		return nil, fmt.Errorf("random: R1 needs positive sample count, got %d", s.Samples)
	}
	clock := solver.NewClockCtx(ctx, budget)
	rng := rand.New(rand.NewSource(s.Seed))
	smp := solver.NewSampler(p)
	cand := make(core.Deployment, p.NumNodes())
	res := &solver.Result{}
	for i := 0; i < s.Samples; i++ {
		smp.Sample(rng, cand)
		c := p.Cost(cand)
		if res.Deployment == nil || c < res.Cost {
			if res.Deployment == nil {
				res.Deployment = make(core.Deployment, len(cand))
			}
			copy(res.Deployment, cand)
			res.Cost = c
			res.Trace = append(res.Trace, solver.TracePoint{
				Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: c,
			})
		}
		if clock.Tick() {
			break
		}
	}
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// R2 is the budget-driven parallel randomized solver.
type R2 struct {
	Seed int64
	// Workers overrides the worker count; zero selects GOMAXPROCS.
	Workers int
}

// NewR2 returns an R2 solver.
func NewR2(seed int64) *R2 { return &R2{Seed: seed} }

// Name implements solver.Solver.
func (s *R2) Name() string { return "R2" }

// Solve implements solver.Solver: workers sample independently until the
// budget expires, then the global best is returned. With a pure node budget
// the total sample count is deterministic, though the winning sample may
// depend on scheduling when several workers tie.
func (s *R2) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver.
func (s *R2) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if budget.Unlimited() {
		return nil, fmt.Errorf("random: R2 requires a bounded budget")
	}
	return parallelWorkers(ctx, p, budget, s.Workers, func(w int, perWorker solver.Budget) workerBest {
		clock := solver.NewClockCtx(ctx, perWorker)
		rng := rand.New(rand.NewSource(s.Seed + int64(w)*0x9e37))
		smp := solver.NewSampler(p)
		cand := make(core.Deployment, p.NumNodes())
		b := workerBest{}
		for {
			smp.Sample(rng, cand)
			c := p.Cost(cand)
			if b.d == nil || c < b.cost {
				if b.d == nil {
					b.d = make(core.Deployment, len(cand))
				}
				copy(b.d, cand)
				b.cost = c
				b.trace = append(b.trace, solver.TracePoint{
					Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: c,
				})
			}
			if clock.Tick() {
				break
			}
		}
		b.nodes = clock.Nodes()
		return b
	})
}

// Local is the R2-style local-search solver ("R2L"): parallel workers, each
// running random-restart hill climbing over swap/relocate moves priced
// incrementally by a per-worker solver.DeltaEvaluator. It keeps R2's budget
// protocol — wall-clock or node budget split across GOMAXPROCS workers —
// but spends each evaluation on a neighbour of a good deployment instead of
// an independent uniform sample.
type Local struct {
	Seed int64
	// Workers overrides the worker count; zero selects GOMAXPROCS.
	Workers int
	// Patience is the number of consecutive non-improving moves before a
	// restart from a fresh random deployment; zero selects 60*|N|.
	Patience int
}

// NewLocal returns a Local solver.
func NewLocal(seed int64) *Local { return &Local{Seed: seed} }

// Name implements solver.Solver.
func (s *Local) Name() string { return "R2L" }

// Solve implements solver.Solver.
func (s *Local) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver.
func (s *Local) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if budget.Unlimited() {
		return nil, fmt.Errorf("random: R2L requires a bounded budget")
	}
	n := p.NumNodes()
	m := p.NumInstances()
	patience := s.Patience
	if patience <= 0 {
		patience = 60 * n
	}
	if n < 2 {
		// No swap exists and relocating a single edgeless node cannot
		// change the cost: any deployment is optimal.
		clock := solver.NewClockCtx(ctx, budget)
		rng := rand.New(rand.NewSource(s.Seed))
		d := solver.RandomDeployment(p, rng)
		clock.Tick()
		res := &solver.Result{Deployment: d, Cost: p.Cost(d), Nodes: clock.Nodes(), Elapsed: clock.Elapsed()}
		res.Trace = []solver.TracePoint{{Elapsed: res.Elapsed, Nodes: res.Nodes, Cost: res.Cost}}
		return res, nil
	}
	return parallelWorkers(ctx, p, budget, s.Workers, func(w int, perWorker solver.Budget) workerBest {
		clock := solver.NewClockCtx(ctx, perWorker)
		rng := rand.New(rand.NewSource(s.Seed + int64(w)*0x9e37))
		smp := solver.NewSampler(p)
		start := make(core.Deployment, n)
		free := make([]int, 0, m-n)
		// Each worker starts from the problem's shared bootstrap incumbent
		// (computed once per problem and handed out as a copy), so the
		// reported best is never worse than the paper's best-of-10 seed
		// even if every restart climbs into a poor basin.
		b := workerBest{}
		b.d, b.cost = p.Prep().Bootstrap(10, s.Seed)
		b.trace = append(b.trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: b.cost})
		var ev solver.DeltaEvaluator
		done := false
		for !done {
			// Restart: fresh random start, rebuilt free-instance list.
			smp.Sample(rng, start)
			var cur float64
			if ev == nil {
				ev = solver.NewDeltaEvaluator(p, start)
				cur = ev.Cost()
			} else {
				cur = ev.Reset(start)
			}
			free = free[:0]
			for inst := 0; inst < m; inst++ {
				if ev.InstanceNode(inst) < 0 {
					free = append(free, inst)
				}
			}
			if b.d == nil || cur < b.cost {
				if b.d == nil {
					b.d = make(core.Deployment, n)
				}
				copy(b.d, ev.Deployment())
				b.cost = cur
				b.trace = append(b.trace, solver.TracePoint{
					Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: cur,
				})
			}
			if clock.Tick() {
				break
			}
			// Hill climb: accept any non-worsening move; restart after
			// `patience` consecutive failures to strictly improve.
			streak := 0
			for streak < patience {
				var cand float64
				relocate := len(free) > 0 && n < m && rng.Intn(4) == 0
				var fi, vacated int
				if relocate {
					node := rng.Intn(n)
					fi = rng.Intn(len(free))
					vacated = ev.Deployment()[node]
					cand = ev.RelocateCost(node, free[fi])
				} else {
					a := rng.Intn(n)
					c := rng.Intn(n - 1)
					if c >= a {
						c++
					}
					cand = ev.SwapCost(a, c)
				}
				if cand <= cur {
					ev.Commit()
					if relocate {
						free[fi] = vacated
					}
					if cand < cur {
						streak = 0
					} else {
						streak++
					}
					cur = cand
					if cur < b.cost {
						copy(b.d, ev.Deployment())
						b.cost = cur
						b.trace = append(b.trace, solver.TracePoint{
							Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: cur,
						})
					}
				} else {
					ev.Reject()
					streak++
				}
				if clock.Tick() {
					done = true
					break
				}
			}
		}
		b.nodes = clock.Nodes()
		return b
	})
}

// workerBest is one worker's reduction state.
type workerBest struct {
	d     core.Deployment
	cost  float64
	nodes int64
	trace []solver.TracePoint
}

// parallelWorkers runs one goroutine per worker with R2's budget-splitting
// protocol (full time budget each, node budget divided) and reduces to the
// global best.
func parallelWorkers(ctx context.Context, p *solver.Problem, budget solver.Budget, workers int, run func(w int, perWorker solver.Budget) workerBest) (*solver.Result, error) {
	overall := solver.NewClockCtx(ctx, budget)
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perWorker := solver.Budget{Time: budget.Time}
	if budget.Nodes > 0 {
		perWorker.Nodes = (budget.Nodes + int64(workers) - 1) / int64(workers)
	}

	results := make([]workerBest, workers)
	//cloudia:nondet-ok per-worker seeded RNGs write disjoint slots; reduction below runs in worker-index order
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		//cloudia:nondet-ok worker w writes only results[w]; the post-join reduce is index-ordered
		go func() {
			defer wg.Done()
			results[w] = run(w, perWorker)
		}()
	}
	wg.Wait()

	res := &solver.Result{}
	for _, b := range results {
		res.Nodes += b.nodes
		if b.d != nil && (res.Deployment == nil || b.cost < res.Cost) {
			res.Deployment, res.Cost = b.d, b.cost
			res.Trace = b.trace
		}
	}
	res.Elapsed = overall.Elapsed()
	return res, nil
}
