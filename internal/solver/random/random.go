// Package random implements the paper's randomized search baselines
// (Sects. 4.3.1 and 4.5.1): R1 draws a fixed number of uniformly random
// deployments and keeps the best; R2 draws random deployments in parallel
// across all CPUs for a wall-clock budget, matching the hardware budget
// given to the CP/MIP solvers (Sect. 6.5). Both work unchanged for the
// longest-link and longest-path objectives.
package random

import (
	"fmt"
	"math/rand"
	"runtime"
	"sync"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// R1 is the fixed-sample-count randomized solver. The paper uses 1,000
// samples.
type R1 struct {
	Samples int
	Seed    int64
}

// NewR1 returns an R1 solver drawing the given number of samples.
func NewR1(samples int, seed int64) *R1 { return &R1{Samples: samples, Seed: seed} }

// Name implements solver.Solver.
func (s *R1) Name() string { return "R1" }

// Solve implements solver.Solver: sequential, fully deterministic sampling.
// The node budget, if smaller than Samples, truncates the run.
func (s *R1) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if s.Samples <= 0 {
		return nil, fmt.Errorf("random: R1 needs positive sample count, got %d", s.Samples)
	}
	clock := solver.NewClock(budget)
	rng := rand.New(rand.NewSource(s.Seed))
	res := &solver.Result{}
	for i := 0; i < s.Samples; i++ {
		d := solver.RandomDeployment(p, rng)
		c := p.Cost(d)
		if res.Deployment == nil || c < res.Cost {
			res.Deployment, res.Cost = d, c
			res.Trace = append(res.Trace, solver.TracePoint{
				Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: c,
			})
		}
		if clock.Tick() {
			break
		}
	}
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// R2 is the budget-driven parallel randomized solver.
type R2 struct {
	Seed int64
	// Workers overrides the worker count; zero selects GOMAXPROCS.
	Workers int
}

// NewR2 returns an R2 solver.
func NewR2(seed int64) *R2 { return &R2{Seed: seed} }

// Name implements solver.Solver.
func (s *R2) Name() string { return "R2" }

// Solve implements solver.Solver: workers sample independently until the
// budget expires, then the global best is returned. With a pure node budget
// the total sample count is deterministic, though the winning sample may
// depend on scheduling when several workers tie.
func (s *R2) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if budget.Unlimited() {
		return nil, fmt.Errorf("random: R2 requires a bounded budget")
	}
	overall := solver.NewClock(budget)
	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	perWorker := solver.Budget{Time: budget.Time}
	if budget.Nodes > 0 {
		perWorker.Nodes = (budget.Nodes + int64(workers) - 1) / int64(workers)
	}

	type best struct {
		d     core.Deployment
		cost  float64
		nodes int64
		trace []solver.TracePoint
	}
	results := make([]best, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			clock := solver.NewClock(perWorker)
			rng := rand.New(rand.NewSource(s.Seed + int64(w)*0x9e37))
			b := best{}
			for {
				d := solver.RandomDeployment(p, rng)
				c := p.Cost(d)
				if b.d == nil || c < b.cost {
					b.d, b.cost = d, c
					b.trace = append(b.trace, solver.TracePoint{
						Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: c,
					})
				}
				if clock.Tick() {
					break
				}
			}
			b.nodes = clock.Nodes()
			results[w] = b
		}()
	}
	wg.Wait()

	res := &solver.Result{}
	for _, b := range results {
		res.Nodes += b.nodes
		if b.d != nil && (res.Deployment == nil || b.cost < res.Cost) {
			res.Deployment, res.Cost = b.d, b.cost
			res.Trace = b.trace
		}
	}
	res.Elapsed = overall.Elapsed()
	return res, nil
}
