package solver

import (
	"fmt"

	"cloudia/internal/core"
)

// DeltaEvaluator evaluates the cost of local-search moves (swap the
// instances of two nodes, or relocate a node to a free instance)
// incrementally, in ~O(deg(u)+deg(v)) instead of the O(E) or O(V+E) full
// recomputation of Problem.Cost. The protocol is propose/commit/reject:
//
//	cand := ev.SwapCost(a, b)     // or ev.RelocateCost(node, inst)
//	if accept {
//		ev.Commit()
//	} else {
//		ev.Reject()
//	}
//
// Exactly one proposal may be outstanding at a time, and every proposal must
// be resolved by Commit or Reject before the next one (or before reading
// Cost or Deployment). The reported costs are bit-for-bit identical to the
// corresponding full recomputation. Evaluators allocate only at
// construction, so steady-state local search runs allocation-free. They are
// not safe for concurrent use; parallel solvers hold one per worker.
type DeltaEvaluator interface {
	// Cost reports the cost of the current (committed) deployment.
	Cost() float64
	// SwapCost proposes exchanging the instances of nodes a and b and
	// returns the resulting deployment cost.
	SwapCost(a, b int) float64
	// RelocateCost proposes moving node to the free instance inst and
	// returns the resulting deployment cost. It panics if inst is occupied.
	RelocateCost(node, inst int) float64
	// Commit accepts the outstanding proposal.
	Commit()
	// Reject discards the outstanding proposal, restoring the previous
	// deployment and cost.
	Reject()
	// Deployment returns the current deployment. The slice is owned by the
	// evaluator: callers must copy it to retain a snapshot and must not
	// modify it.
	Deployment() core.Deployment
	// InstanceNode reports which node occupies instance inst, or -1 if it
	// is free.
	InstanceNode(inst int) int
	// Reset reloads the evaluator from a fresh deployment (copied in) and
	// returns its cost.
	Reset(d core.Deployment) float64
}

// NewDeltaEvaluator returns an evaluator for the problem's objective,
// initialized at deployment d (copied in).
func NewDeltaEvaluator(p *Problem, d core.Deployment) DeltaEvaluator {
	switch p.Objective {
	case LongestLink:
		return newLLEvaluator(p, d)
	case LongestPath:
		return newLPEvaluator(p, d)
	}
	panic("solver: unreachable objective")
}

// moveKind tags the outstanding proposal.
type moveKind int8

const (
	moveNone moveKind = iota
	moveSwap
	moveRelocate
)

// moveBase holds the deployment state and proposal bookkeeping shared by the
// two evaluators.
type moveBase struct {
	d   core.Deployment
	inv []int32 // instance -> node+1, 0 if free

	kind moveKind
	mvA  int // swap: node a; relocate: node
	mvB  int // swap: node b; relocate: -1
	oldA int // previous instance of mvA
	oldB int // previous instance of mvB (swap only)
}

func (b *moveBase) init(p *Problem, d core.Deployment) {
	if len(d) != p.NumNodes() {
		panic(fmt.Sprintf("solver: deployment length %d != %d nodes", len(d), p.NumNodes()))
	}
	if b.d == nil {
		b.d = make(core.Deployment, len(d))
		b.inv = make([]int32, p.NumInstances())
	}
	copy(b.d, d)
	for i := range b.inv {
		b.inv[i] = 0
	}
	for node, inst := range b.d {
		b.inv[inst] = int32(node) + 1
	}
	b.kind = moveNone
}

func (b *moveBase) Deployment() core.Deployment { return b.d }

func (b *moveBase) InstanceNode(inst int) int { return int(b.inv[inst]) - 1 }

// beginSwap applies the deployment half of a swap proposal.
func (b *moveBase) beginSwap(x, y int) {
	if b.kind != moveNone {
		panic("solver: proposal already outstanding")
	}
	b.kind, b.mvA, b.mvB = moveSwap, x, y
	b.oldA, b.oldB = b.d[x], b.d[y]
	b.d[x], b.d[y] = b.oldB, b.oldA
	b.inv[b.oldA], b.inv[b.oldB] = int32(y)+1, int32(x)+1
}

// beginRelocate applies the deployment half of a relocate proposal.
func (b *moveBase) beginRelocate(node, inst int) {
	if b.kind != moveNone {
		panic("solver: proposal already outstanding")
	}
	if b.inv[inst] != 0 {
		panic(fmt.Sprintf("solver: relocate target instance %d occupied by node %d", inst, b.inv[inst]-1))
	}
	b.kind, b.mvA, b.mvB = moveRelocate, node, -1
	b.oldA = b.d[node]
	b.d[node] = inst
	b.inv[b.oldA] = 0
	b.inv[inst] = int32(node) + 1
}

// undoMove restores the deployment half of the outstanding proposal.
func (b *moveBase) undoMove() {
	switch b.kind {
	case moveSwap:
		b.d[b.mvA], b.d[b.mvB] = b.oldA, b.oldB
		b.inv[b.oldA], b.inv[b.oldB] = int32(b.mvA)+1, int32(b.mvB)+1
	case moveRelocate:
		inst := b.d[b.mvA]
		b.d[b.mvA] = b.oldA
		b.inv[inst] = 0
		b.inv[b.oldA] = int32(b.mvA) + 1
	default:
		panic("solver: no proposal outstanding")
	}
	b.kind = moveNone
}

// pendEntry is one edge-cost (LL) or node-dist (LP) change staged by the
// outstanding proposal.
type pendEntry struct {
	idx int32
	val float64
}

// ---------------------------------------------------------------------------
// Longest link: per-edge costs plus a witnessed running maximum.
// ---------------------------------------------------------------------------

// llEvaluator maintains the cost of every graph edge under the current
// deployment, the maximum edge cost, and one witness edge attaining it. A
// proposal re-prices only the edges incident to the moved node(s), writing
// changes through with an undo list. The candidate maximum follows from the
// witness rule — every unchanged edge still sits at or below maxVal, so:
//
//   - witness edge unchanged: candidate = max(maxVal, changed costs), O(1);
//   - witness changed but some changed cost reaches maxVal: that cost is
//     the maximum, O(1);
//   - witness changed and every changed cost dropped below maxVal (the
//     rare all-maxima-lowered case, ≈deg/E of moves): one O(E) rescan.
//
// Commit is O(1); Reject restores the undo list and two deployment words.
// Incidence is stored CSR-style, split into out-edges then in-edges per
// node, so each direction's inner loop keeps the moved node's side of the
// cost lookup fixed.
type llEvaluator struct {
	moveBase
	p        *Problem
	weighted bool

	incStart []int32   // CSR: node v's incidences are slots incStart[v]..incStart[v+1]
	incSplit []int32   // slots before incSplit[v] are out-edges, after are in-edges
	incOther []int32   // the neighbour endpoint in each slot
	incEdge  []int32   // the edge id in each slot
	incW     []float64 // the edge weight in each slot; nil when unweighted
	edgeCost []float64 // cost per edge id (written through during proposals)

	maxVal  float64 // max over committed edge costs
	maxEdge int32   // one edge attaining maxVal (-1 when there are no edges)

	pend     []pendEntry // (edge, previous cost) undo list
	pendCand float64     // staged candidate cost
	pendMax  int32       // staged witness edge for Commit
}

func newLLEvaluator(p *Problem, d core.Deployment) *llEvaluator {
	e := &llEvaluator{p: p}
	e.Reset(d)
	return e
}

// Reset implements DeltaEvaluator.
func (e *llEvaluator) Reset(d core.Deployment) float64 {
	e.init(e.p, d)
	g := e.p.Graph
	e.weighted = g.Weighted()
	if e.edgeCost == nil {
		ne := g.NumEdges()
		n := g.NumNodes()
		e.edgeCost = make([]float64, ne)
		e.incStart = make([]int32, n+1)
		e.incSplit = make([]int32, n)
		e.incOther = make([]int32, 2*ne)
		e.incEdge = make([]int32, 2*ne)
		if e.weighted {
			e.incW = make([]float64, 2*ne)
		}
		edges := g.Edges()
		idx := 0
		for v := 0; v < n; v++ {
			e.incStart[v] = int32(idx)
			for _, k := range g.IncidentEdgeIDs(v) {
				if edges[k].From == v {
					e.fillSlot(idx, k, int32(edges[k].To))
					idx++
				}
			}
			e.incSplit[v] = int32(idx)
			for _, k := range g.IncidentEdgeIDs(v) {
				if edges[k].To == v {
					e.fillSlot(idx, k, int32(edges[k].From))
					idx++
				}
			}
		}
		e.incStart[n] = int32(idx)
		// One proposal touches at most the edges incident to two nodes, so
		// sizing pend for twice the maximum degree up front keeps the
		// evaluator allocation-free in steady state — a smaller guess would
		// make the first dense-graph proposal grow the slice and smear
		// mystery bytes across benchmark windows.
		maxDeg := 0
		for v := 0; v < n; v++ {
			if deg := int(e.incStart[v+1] - e.incStart[v]); deg > maxDeg {
				maxDeg = deg
			}
		}
		e.pend = make([]pendEntry, 0, 2*maxDeg)
	}
	edges := g.Edges()
	for k := range e.edgeCost {
		c := e.p.Costs.At(e.d[edges[k].From], e.d[edges[k].To])
		if e.weighted {
			c = g.EdgeWeight(k) * c
		}
		e.edgeCost[k] = c
	}
	e.rescanCommitted()
	return e.maxVal
}

func (e *llEvaluator) fillSlot(idx int, k int32, other int32) {
	e.incEdge[idx] = k
	e.incOther[idx] = other
	if e.incW != nil {
		e.incW[idx] = e.p.Graph.EdgeWeight(int(k))
	}
}

// rescanCommitted recomputes maxVal/maxEdge from the committed edge costs.
func (e *llEvaluator) rescanCommitted() {
	e.maxVal, e.maxEdge = 0, -1
	for k, c := range e.edgeCost {
		if c > e.maxVal || e.maxEdge < 0 {
			e.maxVal, e.maxEdge = c, int32(k)
		}
	}
}

// scanIncident re-prices node's incident edges under the proposed
// deployment, writing changes through with an undo record. It returns
// whether the witness edge changed, plus the running maximum over changed
// costs and its edge. Writing through auto-deduplicates the edge a swap
// shares between its two endpoints: the second visit sees the already
// updated cost and skips it.
func (e *llEvaluator) scanIncident(node int, witnessHit bool, newMax float64, newMaxEdge int32) (bool, float64, int32) {
	m := e.p.Costs
	dn := e.d[node]
	start, split, end := e.incStart[node], e.incSplit[node], e.incStart[node+1]
	if e.weighted {
		for idx := start; idx < split; idx++ {
			c := e.incW[idx] * m.At(dn, e.d[e.incOther[idx]])
			k := e.incEdge[idx]
			if c != e.edgeCost[k] {
				witnessHit, newMax, newMaxEdge = e.writeThrough(k, c, witnessHit, newMax, newMaxEdge)
			}
		}
		for idx := split; idx < end; idx++ {
			c := e.incW[idx] * m.At(e.d[e.incOther[idx]], dn)
			k := e.incEdge[idx]
			if c != e.edgeCost[k] {
				witnessHit, newMax, newMaxEdge = e.writeThrough(k, c, witnessHit, newMax, newMaxEdge)
			}
		}
		return witnessHit, newMax, newMaxEdge
	}
	for idx := start; idx < split; idx++ {
		c := m.At(dn, e.d[e.incOther[idx]])
		k := e.incEdge[idx]
		if c != e.edgeCost[k] {
			witnessHit, newMax, newMaxEdge = e.writeThrough(k, c, witnessHit, newMax, newMaxEdge)
		}
	}
	for idx := split; idx < end; idx++ {
		c := m.At(e.d[e.incOther[idx]], dn)
		k := e.incEdge[idx]
		if c != e.edgeCost[k] {
			witnessHit, newMax, newMaxEdge = e.writeThrough(k, c, witnessHit, newMax, newMaxEdge)
		}
	}
	return witnessHit, newMax, newMaxEdge
}

func (e *llEvaluator) writeThrough(k int32, c float64, witnessHit bool, newMax float64, newMaxEdge int32) (bool, float64, int32) {
	e.pend = append(e.pend, pendEntry{idx: k, val: e.edgeCost[k]})
	e.edgeCost[k] = c
	if k == e.maxEdge {
		witnessHit = true
	}
	if c > newMax || newMaxEdge < 0 {
		newMax, newMaxEdge = c, k
	}
	return witnessHit, newMax, newMaxEdge
}

// finishProposal resolves the candidate cost and the staged witness by the
// witness rule; only the all-maxima-lowered case pays an O(E) rescan over
// the (already written-through) edge costs.
func (e *llEvaluator) finishProposal(witnessHit bool, newMax float64, newMaxEdge int32) float64 {
	if !witnessHit {
		e.pendCand, e.pendMax = e.maxVal, e.maxEdge
		if newMaxEdge >= 0 && newMax > e.maxVal {
			e.pendCand, e.pendMax = newMax, newMaxEdge
		}
		return e.pendCand
	}
	if newMaxEdge >= 0 && newMax >= e.maxVal {
		e.pendCand, e.pendMax = newMax, newMaxEdge
		return newMax
	}
	cand, candEdge := 0.0, int32(-1)
	for k, c := range e.edgeCost {
		if c > cand || candEdge < 0 {
			cand, candEdge = c, int32(k)
		}
	}
	e.pendCand, e.pendMax = cand, candEdge
	return cand
}

// Cost implements DeltaEvaluator.
func (e *llEvaluator) Cost() float64 { return e.maxVal }

// SwapCost implements DeltaEvaluator.
func (e *llEvaluator) SwapCost(a, b int) float64 {
	e.beginSwap(a, b)
	hit, newMax, newMaxEdge := e.scanIncident(a, false, 0, -1)
	hit, newMax, newMaxEdge = e.scanIncident(b, hit, newMax, newMaxEdge)
	return e.finishProposal(hit, newMax, newMaxEdge)
}

// RelocateCost implements DeltaEvaluator.
func (e *llEvaluator) RelocateCost(node, inst int) float64 {
	e.beginRelocate(node, inst)
	hit, newMax, newMaxEdge := e.scanIncident(node, false, 0, -1)
	return e.finishProposal(hit, newMax, newMaxEdge)
}

// Commit implements DeltaEvaluator.
func (e *llEvaluator) Commit() {
	if e.kind == moveNone {
		panic("solver: no proposal outstanding")
	}
	e.kind = moveNone
	e.maxVal, e.maxEdge = e.pendCand, e.pendMax
	e.pend = e.pend[:0]
}

// Reject implements DeltaEvaluator.
func (e *llEvaluator) Reject() {
	e.undoMove()
	for i := len(e.pend) - 1; i >= 0; i-- {
		e.edgeCost[e.pend[i].idx] = e.pend[i].val
	}
	e.pend = e.pend[:0]
}

// ---------------------------------------------------------------------------
// Longest path: affected-suffix recomputation over the cached topo order.
// ---------------------------------------------------------------------------

// lpEvaluator maintains the longest path cost ending at every node for the
// DAG under the current deployment, laid out in topological-position space
// (distP[i] belongs to the i-th node of the topo order), together with the
// maximum dist and one witness position attaining it. A proposal seeds the
// moved nodes and their out-neighbours into a min-heap of dirty positions
// and relaxes in ascending topo order, following only positions whose dist
// actually changed — the affected suffix of the cached order, skipping its
// unaffected middle. Changed dists are written through with an undo list,
// so the candidate cost is
//
//   - max(bestVal, changed dists) when the witness position is unchanged
//     (everything unchanged still sits at or below the committed maximum);
//   - one O(V) rescan over distP otherwise (≈|changed|/V of moves).
//
// Commit is O(1); Reject restores the undo list. In-adjacency is CSR by
// destination position so a relaxation is a tight flat-array loop.
type lpEvaluator struct {
	moveBase
	p        *Problem
	weighted bool

	orderNode []int32   // pos -> node
	pos       []int32   // node -> pos
	inStart   []int32   // CSR: in-edges of position i are slots inStart[i]..inStart[i+1]
	inSrcPos  []int32   // source position per slot
	inSrcNode []int32   // source node per slot (for deployment lookup)
	inW       []float64 // weight per slot; nil when unweighted
	outPos    [][]int32 // out-neighbour positions per position
	distP     []float64 // longest path cost ending at each position

	bestVal float64 // max over distP
	bestPos int32   // one position attaining bestVal (-1 when there are no nodes)
	// onlySink is the position of the DAG's unique sink, or -1. With one
	// sink, every node reaches it, and non-negative link costs make its
	// dist dominate all others — so the maximum is read off in O(1) and no
	// move ever needs a rescan. Aggregation trees, the paper's canonical
	// Class-2 workload, always hit this fast path.
	onlySink int32

	dirtyP []bool  // position queued in the heap; all false between proposals
	heap   []int32 // min-heap of dirty positions, relaxed in topo order

	pend     []pendEntry // (position, previous dist) undo list
	pendBest float64     // staged maximum for Commit
	pendPos  int32       // staged witness for Commit
}

func newLPEvaluator(p *Problem, d core.Deployment) *lpEvaluator {
	e := &lpEvaluator{p: p}
	e.Reset(d)
	return e
}

// Reset implements DeltaEvaluator.
func (e *lpEvaluator) Reset(d core.Deployment) float64 {
	e.init(e.p, d)
	g := e.p.Graph
	n := e.p.NumNodes()
	e.weighted = g.Weighted()
	if e.distP == nil {
		order := e.p.TopoOrder()
		e.orderNode = make([]int32, n)
		e.pos = make([]int32, n)
		for i, v := range order {
			e.orderNode[i] = int32(v)
			e.pos[v] = int32(i)
		}
		e.inStart = make([]int32, n+1)
		e.inSrcPos = make([]int32, g.NumEdges())
		e.inSrcNode = make([]int32, g.NumEdges())
		if e.weighted {
			e.inW = make([]float64, g.NumEdges())
		}
		edges := g.Edges()
		idx := 0
		for i := 0; i < n; i++ {
			e.inStart[i] = int32(idx)
			v := int(e.orderNode[i])
			for _, k := range g.InEdgeIDs(v) {
				u := edges[k].From
				e.inSrcPos[idx] = e.pos[u]
				e.inSrcNode[idx] = int32(u)
				if e.weighted {
					e.inW[idx] = g.EdgeWeight(int(k))
				}
				idx++
			}
		}
		e.inStart[n] = int32(idx)
		e.outPos = make([][]int32, n)
		for i := 0; i < n; i++ {
			v := int(e.orderNode[i])
			outs := g.Out(v)
			ops := make([]int32, len(outs))
			for j, w := range outs {
				ops[j] = e.pos[w]
			}
			e.outPos[i] = ops
		}
		e.distP = make([]float64, n)
		e.dirtyP = make([]bool, n)
		e.heap = make([]int32, 0, n)
		// Each node is dirtied at most once per proposal, so n entries keep
		// the propagation allocation-free even for moves that ripple across
		// the whole DAG (see the llEvaluator pend sizing note).
		e.pend = make([]pendEntry, 0, n)
		e.onlySink = -1
		for i := 0; i < n; i++ {
			if len(e.outPos[i]) == 0 {
				if e.onlySink >= 0 {
					e.onlySink = -2 // more than one sink
					break
				}
				e.onlySink = int32(i)
			}
		}
		if e.onlySink < 0 {
			e.onlySink = -1
		}
	}
	e.bestVal, e.bestPos = 0, -1
	for i := 0; i < n; i++ {
		e.distP[i] = e.relax(i)
		if e.distP[i] > e.bestVal || e.bestPos < 0 {
			e.bestVal, e.bestPos = e.distP[i], int32(i)
		}
	}
	return e.bestVal
}

// relax recomputes the longest path cost ending at position i from its
// in-edges with the same float operations as core.longestPathInOrder, so
// results match bit-for-bit.
func (e *lpEvaluator) relax(i int) float64 {
	m := e.p.Costs
	dv := e.d[e.orderNode[i]]
	nd := 0.0
	if e.weighted {
		for x := e.inStart[i]; x < e.inStart[i+1]; x++ {
			c := e.distP[e.inSrcPos[x]] + e.inW[x]*m.At(e.d[e.inSrcNode[x]], dv)
			if c > nd {
				nd = c
			}
		}
		return nd
	}
	for x := e.inStart[i]; x < e.inStart[i+1]; x++ {
		c := e.distP[e.inSrcPos[x]] + m.At(e.d[e.inSrcNode[x]], dv)
		if c > nd {
			nd = c
		}
	}
	return nd
}

// markDirty queues position j for relaxation unless already queued.
func (e *lpEvaluator) markDirty(j int32) {
	if e.dirtyP[j] {
		return
	}
	e.dirtyP[j] = true
	e.heap = append(e.heap, j)
	i := len(e.heap) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if e.heap[parent] <= e.heap[i] {
			break
		}
		e.heap[parent], e.heap[i] = e.heap[i], e.heap[parent]
		i = parent
	}
}

// popDirty removes and returns the smallest queued position.
func (e *lpEvaluator) popDirty() int32 {
	top := e.heap[0]
	n := len(e.heap) - 1
	e.heap[0] = e.heap[n]
	e.heap = e.heap[:n]
	i := 0
	for {
		l := 2*i + 1
		if l >= n {
			break
		}
		if r := l + 1; r < n && e.heap[r] < e.heap[l] {
			l = r
		}
		if e.heap[i] <= e.heap[l] {
			break
		}
		e.heap[i], e.heap[l] = e.heap[l], e.heap[i]
		i = l
	}
	return top
}

// markMoved seeds the dirty set for a moved node: its own dist depends on
// its in-edge costs, and its out-neighbours' dists on its out-edge costs.
func (e *lpEvaluator) markMoved(node int) {
	i := e.pos[node]
	e.markDirty(i)
	for _, j := range e.outPos[i] {
		e.markDirty(j)
	}
}

// propagate drains the dirty heap in ascending topo order, writing changed
// dists through (with an undo record), and resolves the candidate cost via
// the best-witness rule.
func (e *lpEvaluator) propagate() float64 {
	witnessHit := false
	newMax, newMaxPos := 0.0, int32(-1)
	for len(e.heap) > 0 {
		i := e.popDirty()
		e.dirtyP[i] = false
		nd := e.relax(int(i))
		if nd == e.distP[i] {
			continue
		}
		e.pend = append(e.pend, pendEntry{idx: i, val: e.distP[i]})
		e.distP[i] = nd
		for _, j := range e.outPos[i] {
			e.markDirty(j)
		}
		if i == e.bestPos {
			witnessHit = true
		}
		if nd > newMax || newMaxPos < 0 {
			newMax, newMaxPos = nd, i
		}
	}
	if e.onlySink >= 0 {
		e.pendBest, e.pendPos = e.distP[e.onlySink], e.onlySink
		return e.pendBest
	}
	if !witnessHit {
		e.pendBest, e.pendPos = e.bestVal, e.bestPos
		if newMaxPos >= 0 && newMax > e.bestVal {
			e.pendBest, e.pendPos = newMax, newMaxPos
		}
		return e.pendBest
	}
	if newMaxPos >= 0 && newMax >= e.bestVal {
		e.pendBest, e.pendPos = newMax, newMaxPos
		return newMax
	}
	best, bestPos := 0.0, int32(-1)
	for i, v := range e.distP {
		if v > best || bestPos < 0 {
			best, bestPos = v, int32(i)
		}
	}
	e.pendBest, e.pendPos = best, bestPos
	return best
}

// Cost implements DeltaEvaluator.
func (e *lpEvaluator) Cost() float64 { return e.bestVal }

// SwapCost implements DeltaEvaluator.
func (e *lpEvaluator) SwapCost(a, b int) float64 {
	e.beginSwap(a, b)
	e.markMoved(a)
	e.markMoved(b)
	return e.propagate()
}

// RelocateCost implements DeltaEvaluator.
func (e *lpEvaluator) RelocateCost(node, inst int) float64 {
	e.beginRelocate(node, inst)
	e.markMoved(node)
	return e.propagate()
}

// Commit implements DeltaEvaluator.
func (e *lpEvaluator) Commit() {
	if e.kind == moveNone {
		panic("solver: no proposal outstanding")
	}
	e.kind = moveNone
	e.bestVal, e.bestPos = e.pendBest, e.pendPos
	e.pend = e.pend[:0]
}

// Reject implements DeltaEvaluator.
func (e *lpEvaluator) Reject() {
	e.undoMove()
	for i := len(e.pend) - 1; i >= 0; i-- {
		e.distP[e.pend[i].idx] = e.pend[i].val
	}
	e.pend = e.pend[:0]
}
