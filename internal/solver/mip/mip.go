// Package mip implements a hand-rolled branch-and-bound stand-in for the
// paper's mixed-integer programming formulations (Sects. 4.1 and 4.4); the
// Go ecosystem has no CPLEX equivalent, so the MIP encodings are solved by
// systematic search over the assignment variables with objective-based
// pruning. The stand-in is complete — given enough budget it proves
// optimality, as the paper's MIP does at small scale (Sect. 6.5.3) — but it
// inherits the formulations' weaknesses: the LLNDP encoding's bound is weak
// (the relaxed constraint (3) only bites once both endpoints of an edge are
// fixed), so at 100 instances CP dominates it, reproducing Fig. 7.
//
// For LPNDP, branching follows a topological order so each node's longest
// incoming path is final at assignment time, and the bound adds an
// optimistic completion: the cheapest link cost times the remaining path
// depth. Cost clustering shrinks the number of distinct link costs but not
// the number of distinct path sums, which is why clustering does not help
// LPNDP (Fig. 9).
package mip

import (
	"context"
	"fmt"
	"math"
	"sort"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Solver is the branch-and-bound solver for both objectives.
type Solver struct {
	// ClusterK rounds link costs to at most K clusters before searching
	// (<= 0 disables). Reported costs always use the original matrix.
	ClusterK int
	// Seed drives bootstrap sampling.
	Seed int64
	// BootstrapSamples seeds the incumbent; zero selects the paper's 10.
	BootstrapSamples int
	// LPNodeCost is the budget charge per branch-and-bound node, modelling
	// the LP re-solve a real MIP solver performs at every node. Both
	// encodings have |E|*|S|^2 big-M constraints, but their usefulness
	// differs sharply: on LLNDP the relaxation is vacuous (Sect. 6.3.2), so
	// a real MIP solver pays the giant-LP price per node and gets nothing —
	// at 100 instances node throughput collapses, the root cause of
	// Fig. 7's CP >> MIP result. On LPNDP the t_i path variables make the
	// relaxation informative and the paper's CPLEX performs well (Figs. 9,
	// 15). Zero therefore derives the charge as 2*|E|*|S|^2 for LongestLink
	// (roughly one pass over the constraint matrix per LP re-solve) and
	// |E|*|S|^2/2000 for LongestPath (warm-started, informative LP); both
	// are floored at 1. Negative forces a charge of 1 (pure combinatorial
	// search, no LP emulation).
	LPNodeCost int
}

// New returns a MIP solver with the given cost-cluster count.
func New(clusterK int, seed int64) *Solver { return &Solver{ClusterK: clusterK, Seed: seed} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.ClusterK > 0 {
		return fmt.Sprintf("MIP(k=%d)", s.ClusterK)
	}
	return "MIP"
}

// Solve implements solver.Solver.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver: the search additionally
// stops once ctx is cancelled, reporting the incumbent.
func (s *Solver) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	clock := solver.NewClockCtx(ctx, budget)

	// All derived artifacts come from the problem's shared preprocessing
	// cache: the clustered matrix (with its cost-sorted pairs), the
	// degree branching order, the transposed graph/matrix/topo-order, and
	// the bootstrap incumbent are each computed once per problem and
	// shared with every other portfolio member and repeated Solve call.
	prep := p.Prep()
	search := p.Costs
	var pairs []core.CostPair // sorted by rounded cost; nil when unclustered
	if s.ClusterK > 0 {
		var err error
		search, pairs, err = prep.Rounded(s.ClusterK)
		if err != nil {
			return nil, err
		}
	}

	nboot := s.BootstrapSamples
	if nboot == 0 {
		nboot = 10
	}
	incumbent, _ := prep.Bootstrap(nboot, s.Seed)

	res := &solver.Result{Deployment: incumbent, Cost: p.Cost(incumbent)}
	res.Trace = append(res.Trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: res.Cost})

	lpCost := s.LPNodeCost
	switch {
	case lpCost < 0:
		lpCost = 1
	case lpCost == 0:
		ns := p.NumInstances()
		if p.Objective == solver.LongestLink {
			lpCost = 2 * p.Graph.NumEdges() * ns * ns
		} else {
			lpCost = p.Graph.NumEdges() * ns * ns / 2000
		}
		if lpCost < 1 {
			lpCost = 1
		}
	}
	b := &bnb{
		p:      p,
		search: search,
		pairs:  pairs,
		clock:  clock,
		res:    res,
		used:   make([]bool, p.NumInstances()),
		lpCost: lpCost,
	}
	switch p.Objective {
	case solver.LongestLink:
		b.searchCost = func(d core.Deployment) float64 { return core.LongestLink(d, p.Graph, search) }
		b.bestBound = b.searchCost(incumbent)
		b.order = prep.DegreeOrder()
		b.assigned = unassignedSlice(p.NumNodes())
		b.branchLL(0, 0)
	case solver.LongestPath:
		b.searchCost = func(d core.Deployment) float64 {
			return core.LongestPathWithOrder(d, p.Graph, search, p.TopoOrder())
		}
		b.bestBound = b.searchCost(incumbent)
		b.assigned = unassignedSlice(p.NumNodes())
		// Branching direction: the DP assigns nodes in topological order, so
		// nodes with no (assigned) predecessors carry no information when
		// branched early. Aggregation trees point child -> parent: all
		// leaves are sources, and forward order would fix every leaf before
		// any informative decision. When the graph has more sources than
		// sinks, solve the transposed problem instead — same optimum, same
		// deployments, but the constrained nodes branch first. The
		// transposed graph, matrix, and topological order all come
		// memoized from Prep.
		lpGraph, lpSearch, lpOrder := p.Graph, search, p.TopoOrder()
		if countSources(p.Graph) > countSinks(p.Graph) {
			lpGraph = prep.TransposedGraph()
			ts, err := prep.TransposedCosts(s.ClusterK)
			if err != nil {
				return nil, err
			}
			lpSearch = ts
			lpOrder, err = prep.TransposedTopoOrder()
			if err != nil {
				return nil, err
			}
		}
		b.lpGraph, b.lpSearch, b.order = lpGraph, lpSearch, lpOrder
		b.prepareLP()
		b.branchLP(0, make([]float64, p.NumNodes()))
	}
	// Clustering rounds the objective, so an exhausted search proves
	// optimality only for the rounded costs — never claim it for the true
	// problem (CP applies the same guard). A stray claim would also make
	// the portfolio runner cancel its other members on a false proof.
	res.Optimal = !b.limitHit && s.ClusterK <= 0
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// bnb carries the branch-and-bound state.
type bnb struct {
	p          *solver.Problem
	search     *core.CostMatrix
	pairs      []core.CostPair // search's pairs sorted by cost; nil when unclustered
	clock      *solver.Clock
	res        *solver.Result
	order      []core.NodeID
	assigned   core.Deployment
	used       []bool
	bestBound  float64 // incumbent cost under the search matrix
	limitHit   bool
	searchCost func(core.Deployment) float64

	// LPNDP search structures: possibly the transposed problem (see Solve).
	lpGraph  *core.Graph
	lpSearch *core.CostMatrix
	remDepth []int   // longest remaining path (edges) from each node
	minCost  float64 // cheapest off-diagonal link cost

	// scratch holds per-depth candidate buffers for value ordering.
	scratch [][]scored
	// lpCost is the budget charge per node (see Solver.LPNodeCost).
	lpCost int
}

// tickNode charges one branch-and-bound node against the budget, weighted by
// the emulated LP effort, and reports whether the budget is exhausted.
func (b *bnb) tickNode() bool {
	for i := 0; i < b.lpCost; i++ {
		if b.clock.Tick() {
			return true
		}
	}
	return false
}

// countSources reports nodes with no incoming edges.
func countSources(g *core.Graph) int {
	n := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.InDegree(v) == 0 {
			n++
		}
	}
	return n
}

// countSinks reports nodes with no outgoing edges.
func countSinks(g *core.Graph) int {
	n := 0
	for v := 0; v < g.NumNodes(); v++ {
		if g.OutDegree(v) == 0 {
			n++
		}
	}
	return n
}

func unassignedSlice(n int) core.Deployment {
	d := make(core.Deployment, n)
	for i := range d {
		d[i] = -1
	}
	return d
}

// accept records a complete assignment if it improves the incumbent.
func (b *bnb) accept() {
	cost := b.searchCost(b.assigned)
	if cost < b.bestBound {
		b.bestBound = cost
		b.res.Deployment = b.assigned.Clone()
		b.res.Cost = b.p.Cost(b.res.Deployment)
		b.res.Trace = append(b.res.Trace, solver.TracePoint{
			Elapsed: b.clock.Elapsed(), Nodes: b.clock.Nodes(), Cost: b.res.Cost,
		})
	}
}

// branchLL assigns nodes in degree order; partial is the largest link cost
// among edges with both endpoints assigned — the tightest bound the MIP
// encoding's relaxation provides.
func (b *bnb) branchLL(depth int, partial float64) {
	if b.limitHit {
		return
	}
	if depth == len(b.order) {
		b.accept()
		return
	}
	if b.tickNode() {
		b.limitHit = true
		return
	}
	node := b.order[depth]
	g := b.p.Graph
	m := b.search
	// No value ordering here, deliberately: the LLNDP encoding's LP
	// relaxation is weak — constraint (3) only binds once both endpoints of
	// an edge are integral — so a MIP solver branching on this formulation
	// gets no cost guidance (Sect. 6.3.2). Emulating that, instances are
	// tried in index order; only the incumbent bound prunes. This is what
	// makes CP dominate MIP on LLNDP at scale (Fig. 7).
	for inst := 0; inst < b.p.NumInstances(); inst++ {
		if b.used[inst] {
			continue
		}
		// New partial objective: fold in (weighted) edges to assigned
		// neighbours.
		cand := partial
		for _, w := range g.Out(node) {
			if jw := b.assigned[w]; jw >= 0 {
				if c := g.Weight(node, w) * m.At(inst, jw); c > cand {
					cand = c
				}
			}
		}
		for _, w := range g.In(node) {
			if jw := b.assigned[w]; jw >= 0 {
				if c := g.Weight(w, node) * m.At(jw, inst); c > cand {
					cand = c
				}
			}
		}
		if cand >= b.bestBound {
			continue
		}
		b.assigned[node] = inst
		b.used[inst] = true
		b.branchLL(depth+1, cand)
		b.assigned[node] = -1
		b.used[inst] = false
		if b.limitHit {
			return
		}
	}
}

// scored is a candidate instance with its branching score.
type scored struct {
	inst int
	cost float64
}

// candidates returns the per-depth scratch slice, emptied.
func (b *bnb) candidates(depth int) []scored {
	for len(b.scratch) <= depth {
		b.scratch = append(b.scratch, make([]scored, 0, b.p.NumInstances()))
	}
	return b.scratch[depth][:0]
}

// prepareLP computes the remaining-depth table and cheapest link cost used
// by the LPNDP lower bound.
func (b *bnb) prepareLP() {
	g := b.lpGraph
	order := b.order
	b.remDepth = make([]int, g.NumNodes())
	for i := len(order) - 1; i >= 0; i-- {
		v := order[i]
		for _, w := range g.Out(v) {
			if d := b.remDepth[w] + 1; d > b.remDepth[v] {
				b.remDepth[v] = d
			}
		}
	}
	// The cheapest off-diagonal link: the head of the cost-sorted pair
	// list when clustering supplied one (transposition does not change the
	// minimum), otherwise one scan.
	b.minCost = math.Inf(1)
	if len(b.pairs) > 0 {
		b.minCost = b.pairs[0].Cost
	} else {
		for i := 0; i < b.lpSearch.Size(); i++ {
			for j := 0; j < b.lpSearch.Size(); j++ {
				if i != j && b.lpSearch.At(i, j) < b.minCost {
					b.minCost = b.lpSearch.At(i, j)
				}
			}
		}
	}
	if math.IsInf(b.minCost, 1) {
		b.minCost = 0
	}
	// With weighted edges, the optimistic completion must use the smallest
	// weight so the bound stays a true lower bound.
	if b.lpGraph.Weighted() {
		minW := math.Inf(1)
		for _, w := range b.lpGraph.DistinctWeights() {
			if w < minW {
				minW = w
			}
		}
		if !math.IsInf(minW, 1) {
			b.minCost *= minW
		}
	}
}

// branchLP assigns nodes in topological order; dist[v] is the longest path
// cost ending at v over assigned nodes (final once v is assigned, because
// all predecessors precede v in the order). The lower bound for a partial
// assignment is max over assigned v of dist[v] + remDepth[v]*minCost.
func (b *bnb) branchLP(depth int, dist []float64) {
	if b.limitHit {
		return
	}
	if depth == len(b.order) {
		b.accept()
		return
	}
	if b.tickNode() {
		b.limitHit = true
		return
	}
	node := b.order[depth]
	g := b.lpGraph
	m := b.lpSearch
	// Value ordering: cheapest arrival cost first (see branchLL).
	cands := b.candidates(depth)
	for inst := 0; inst < b.p.NumInstances(); inst++ {
		if b.used[inst] {
			continue
		}
		// dist[node] from assigned predecessors (all predecessors are
		// assigned, thanks to topological branching order).
		dn := 0.0
		for _, w := range g.In(node) {
			c := dist[w] + g.Weight(w, node)*m.At(b.assigned[w], inst)
			if c > dn {
				dn = c
			}
		}
		cands = append(cands, scored{inst: inst, cost: dn})
	}
	sort.Slice(cands, func(x, y int) bool { return cands[x].cost < cands[y].cost })
	slack := float64(b.remDepth[node]) * b.minCost
	for _, c := range cands {
		if c.cost+slack >= b.bestBound {
			break // sorted: all remaining candidates are pruned too
		}
		b.assigned[node] = c.inst
		b.used[c.inst] = true
		old := dist[node]
		dist[node] = c.cost
		b.branchLP(depth+1, dist)
		dist[node] = old
		b.assigned[node] = -1
		b.used[c.inst] = false
		if b.limitHit {
			return
		}
	}
}
