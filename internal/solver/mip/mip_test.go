package mip

import (
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

func TestFindsPlantedLLOptimum(t *testing.T) {
	p, optCeil, err := solvertest.PlantedLL(2, 3, 3, 0.1, 1.0, 1)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 2).Solve(p, solver.Budget{Nodes: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	if res.Cost > optCeil {
		t.Fatalf("cost %g, want <= %g", res.Cost, optCeil)
	}
	if !res.Optimal {
		t.Fatal("optimality not proven on a tiny instance")
	}
}

func TestFindsPlantedLPOptimum(t *testing.T) {
	p, optCeil, err := solvertest.PlantedLP(5, 3, 0.1, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 4).Solve(p, solver.Budget{Nodes: 20_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > optCeil {
		t.Fatalf("LP cost %g, want <= %g", res.Cost, optCeil)
	}
	if !res.Optimal {
		t.Fatal("optimality not proven")
	}
}

func TestMatchesBruteForceLL(t *testing.T) {
	g, err := core.Mesh2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 6, solver.LongestLink, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 6).Solve(p, solver.Budget{Nodes: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(p)
	if !res.Optimal || res.Cost != want {
		t.Fatalf("MIP %g (optimal=%v) != brute force %g", res.Cost, res.Optimal, want)
	}
}

func TestMatchesBruteForceLP(t *testing.T) {
	g, err := core.TwoLevelAggregation(2, 3) // 6 nodes
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 7, solver.LongestPath, 7)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 8).Solve(p, solver.Budget{Nodes: 50_000_000})
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForce(p)
	if !res.Optimal || res.Cost != want {
		t.Fatalf("MIP %g (optimal=%v) != brute force %g", res.Cost, res.Optimal, want)
	}
}

func bruteForce(p *solver.Problem) float64 {
	n, s := p.NumNodes(), p.NumInstances()
	d := make(core.Deployment, n)
	used := make([]bool, s)
	best := -1.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := p.Cost(d)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for j := 0; j < s; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			d[i] = j
			rec(i + 1)
			used[j] = false
		}
	}
	rec(0)
	return best
}

func TestBudgetTruncationStillValid(t *testing.T) {
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 20, solver.LongestLink, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 10).Solve(p, solver.Budget{Nodes: 500})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	if res.Optimal {
		t.Fatal("claimed optimality under 500-node budget")
	}
}

func TestClusteringDoesNotBreakLP(t *testing.T) {
	p, _, err := solvertest.PlantedLP(5, 3, 0.1, 1.0, 11)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(5, 12).Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	// Reported cost must be under the original matrix.
	if got := p.Cost(res.Deployment); got != res.Cost {
		t.Fatalf("reported %g, actual %g", res.Cost, got)
	}
}

func TestTraceMonotone(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 12, solver.LongestLink, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 14).Solve(p, solver.Budget{Nodes: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cost > res.Trace[i-1].Cost+1e-12 {
			t.Fatalf("trace not monotone: %v", res.Trace)
		}
	}
}

func TestNames(t *testing.T) {
	if New(0, 1).Name() != "MIP" {
		t.Fatal("name")
	}
	if New(20, 1).Name() != "MIP(k=20)" {
		t.Fatal("clustered name")
	}
}
