// Package solver defines the optimization framework for the node deployment
// problem (Sect. 3.3): a Problem couples a communication graph, a measured
// cost matrix, and one of the two deployment cost objectives; Solver
// implementations search the space of injective node-to-instance mappings.
// Sub-packages provide the paper's search techniques: greedy (G1/G2),
// random (R1/R2), constraint programming (CP), branch-and-bound MIP, and a
// simulated-annealing extension.
package solver

import (
	"context"
	"fmt"
	"math/rand"
	"sync"
	"time"

	"cloudia/internal/core"
)

// Objective selects the deployment cost function.
type Objective string

// The two deployment cost classes of Sect. 3.3.
const (
	LongestLink Objective = "longest-link" // Class 1: max edge cost (LLNDP)
	LongestPath Objective = "longest-path" // Class 2: max path cost sum (LPNDP)
)

// Problem is one node deployment problem instance.
type Problem struct {
	Graph     *core.Graph
	Costs     *core.CostMatrix
	Objective Objective

	// Tie, when non-nil, is a secondary cost matrix for lexicographic
	// tie-breaking: search optimizes Costs, and candidates of equal primary
	// cost are ranked by TieCost. The multi-objective streaming mode sets
	// Costs to a percentile matrix and Tie to the mean matrix ("optimize
	// p99, tie-break on mean"). Solvers ignore Tie during search — only
	// winner selection (Portfolio, SolveStream incumbents) consults it, so
	// all Prep artifacts remain keyed off Costs alone.
	Tie *core.CostMatrix

	order []core.NodeID // topological order, cached for LongestPath

	prepOnce sync.Once
	prep     *Prep
}

// NewProblem validates and packages a problem instance. The instance set
// must be at least as large as the node set, and LongestPath requires an
// acyclic communication graph.
func NewProblem(g *core.Graph, m *core.CostMatrix, obj Objective) (*Problem, error) {
	if g == nil || m == nil {
		return nil, fmt.Errorf("solver: nil graph or cost matrix")
	}
	if err := g.Validate(); err != nil {
		return nil, err
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() > m.Size() {
		return nil, fmt.Errorf("solver: %d nodes exceed %d instances", g.NumNodes(), m.Size())
	}
	// Build the incidence caches up front: the delta evaluators and the
	// parallel solvers read them from multiple goroutines, so the lazy
	// build must not race.
	g.EnsureIncidence()
	p := &Problem{Graph: g, Costs: m, Objective: obj}
	switch obj {
	case LongestLink:
	case LongestPath:
		order, err := g.TopoOrder()
		if err != nil {
			return nil, err
		}
		p.order = order
	default:
		return nil, fmt.Errorf("solver: unknown objective %q", obj)
	}
	return p, nil
}

// NewProblemTie is NewProblem plus a secondary tie-break matrix: deployment
// search runs on primary alone, and equal-primary-cost candidates are
// ranked by their cost under tie. tie must match primary's size.
func NewProblemTie(g *core.Graph, primary, tie *core.CostMatrix, obj Objective) (*Problem, error) {
	p, err := NewProblem(g, primary, obj)
	if err != nil {
		return nil, err
	}
	if tie != nil {
		if err := validateTie(primary, tie); err != nil {
			return nil, err
		}
		p.Tie = tie
	}
	return p, nil
}

func validateTie(primary, tie *core.CostMatrix) error {
	if err := tie.Validate(); err != nil {
		return fmt.Errorf("solver: tie-break matrix: %w", err)
	}
	if tie.Size() != primary.Size() {
		return fmt.Errorf("solver: tie-break matrix size %d != primary %d", tie.Size(), primary.Size())
	}
	return nil
}

// NumNodes reports |N|, the number of application nodes.
func (p *Problem) NumNodes() int { return p.Graph.NumNodes() }

// NumInstances reports |S|, the number of allocated instances.
func (p *Problem) NumInstances() int { return p.Costs.Size() }

// Cost evaluates the deployment cost of d under the problem's objective.
func (p *Problem) Cost(d core.Deployment) float64 {
	switch p.Objective {
	case LongestLink:
		return core.LongestLink(d, p.Graph, p.Costs)
	case LongestPath:
		return core.LongestPathWithOrder(d, p.Graph, p.Costs, p.order)
	}
	panic("solver: unreachable objective")
}

// TieCost evaluates the deployment cost of d under the problem's tie-break
// matrix; with no tie matrix it reports 0 for every deployment, so a
// lexicographic (Cost, TieCost) comparison degrades to pure primary cost.
func (p *Problem) TieCost(d core.Deployment) float64 {
	if p.Tie == nil {
		return 0
	}
	switch p.Objective {
	case LongestLink:
		return core.LongestLink(d, p.Graph, p.Tie)
	case LongestPath:
		return core.LongestPathWithOrder(d, p.Graph, p.Tie, p.order)
	}
	panic("solver: unreachable objective")
}

// Better reports whether candidate res strictly improves on incumbent under
// the lexicographic (Cost, TieCost) order: lower primary cost wins, and on
// exact primary ties the lower tie-break cost wins. Both deployments are
// evaluated with the problem's own matrices, so results carried over from a
// previous epoch compare on current costs.
func (p *Problem) Better(cand, incumbent core.Deployment, candCost, incumbentCost float64) bool {
	if candCost != incumbentCost {
		return candCost < incumbentCost
	}
	if p.Tie == nil {
		return false
	}
	return p.TieCost(cand) < p.TieCost(incumbent)
}

// TopoOrder returns the cached topological order for LongestPath problems,
// or nil for LongestLink problems.
func (p *Problem) TopoOrder() []core.NodeID { return p.order }

// Prep returns the problem's shared preprocessing cache, creating it on
// first use. Safe for concurrent use; all artifacts are memoized per
// problem, so every portfolio member and repeated solver call shares one
// set of derived structures. Problems built by Evolve arrive with a Prep
// already seeded from the previous epoch, which is preserved.
func (p *Problem) Prep() *Prep {
	p.prepOnce.Do(func() {
		if p.prep == nil {
			p.prep = newPrep(p)
		}
	})
	return p.prep
}

// Budget bounds a solver run. A zero field means unlimited on that axis; at
// least one axis must be bounded for solvers that search exhaustively.
type Budget struct {
	// Time is the wall-clock limit.
	Time time.Duration
	// Nodes caps search-tree node expansions (or candidate evaluations for
	// sampling solvers), making runs deterministic regardless of machine
	// speed.
	Nodes int64
}

// Unlimited reports whether the budget bounds nothing.
func (b Budget) Unlimited() bool { return b.Time == 0 && b.Nodes == 0 }

// TracePoint records a solution improvement during search, for the
// convergence plots of Figs. 6, 7, and 9.
type TracePoint struct {
	Elapsed time.Duration
	Nodes   int64 // search nodes expanded when the improvement was found
	Cost    float64
}

// Result is the outcome of one solver run.
type Result struct {
	Deployment core.Deployment
	Cost       float64
	// Optimal is true when the solver proved no better deployment exists
	// (exhaustive search completed within budget).
	Optimal bool
	// Nodes is the number of search nodes expanded (or candidates tried).
	Nodes int64
	// Elapsed is the wall-clock duration of the run.
	Elapsed time.Duration
	// Trace records each improvement, ending with the final solution.
	Trace []TracePoint
	// Winner names the member that produced the deployment when the result
	// comes from a portfolio run; empty otherwise.
	Winner string
}

// Solver searches for low-cost deployments.
type Solver interface {
	// Name identifies the technique (G1, G2, R1, R2, CP, MIP, SA).
	Name() string
	// Solve searches within budget, starting from scratch. Implementations
	// must return a valid deployment even on a tiny budget (falling back to
	// a random or identity deployment) and must never return an error for a
	// well-formed problem.
	Solve(p *Problem, budget Budget) (*Result, error)
}

// Sampler draws uniformly random injective deployments without allocating:
// it owns a permutation buffer that is partially re-shuffled (Fisher-Yates on
// the first |N| slots) per sample. A Sampler is not safe for concurrent use;
// parallel solvers hold one per worker.
type Sampler struct {
	n    int
	perm []int
}

// NewSampler returns a sampler for the problem's node and instance counts.
func NewSampler(p *Problem) *Sampler {
	s := &Sampler{n: p.NumNodes(), perm: make([]int, p.NumInstances())}
	for i := range s.perm {
		s.perm[i] = i
	}
	return s
}

// Sample fills d (which must have length NumNodes) with a uniformly random
// injective deployment.
func (s *Sampler) Sample(rng *rand.Rand, d core.Deployment) {
	m := len(s.perm)
	for i := 0; i < s.n; i++ {
		j := i + rng.Intn(m-i)
		s.perm[i], s.perm[j] = s.perm[j], s.perm[i]
		d[i] = s.perm[i]
	}
}

// RandomDeployment returns a uniformly random injective deployment of the
// problem's nodes onto its instances. Loops drawing many samples should hold
// a Sampler instead to reuse its permutation buffer.
func RandomDeployment(p *Problem, rng *rand.Rand) core.Deployment {
	d := make(core.Deployment, p.NumNodes())
	NewSampler(p).Sample(rng, d)
	return d
}

// Bootstrap generates k random deployments and returns the best, the paper's
// initial-solution strategy for the solvers (Sect. 6.3.1, best of 10). Only
// two deployments are ever allocated regardless of k.
func Bootstrap(p *Problem, k int, rng *rand.Rand) (core.Deployment, float64) {
	if k < 1 {
		k = 1
	}
	s := NewSampler(p)
	best := make(core.Deployment, p.NumNodes())
	cand := make(core.Deployment, p.NumNodes())
	s.Sample(rng, best)
	bestCost := p.Cost(best)
	for i := 1; i < k; i++ {
		s.Sample(rng, cand)
		if c := p.Cost(cand); c < bestCost {
			best, cand = cand, best
			bestCost = c
		}
	}
	return best, bestCost
}

// Clock tracks a solver run's budget, optionally tied to a context so a
// portfolio runner can cancel members early.
type Clock struct {
	start     time.Time
	budget    Budget
	nodes     int64
	nextCheck int64
	ctx       context.Context
}

// NewClock starts tracking a run against budget.
func NewClock(budget Budget) *Clock {
	//cloudia:nondet-ok the Clock IS the wall-time authority; every budget read funnels through it
	return &Clock{start: time.Now(), budget: budget, nextCheck: 1}
}

// NewClockCtx starts tracking a run against budget and the context: the
// budget reads as exhausted once ctx is cancelled. A nil ctx behaves like
// NewClock.
func NewClockCtx(ctx context.Context, budget Budget) *Clock {
	//cloudia:nondet-ok the Clock IS the wall-time authority; every budget read funnels through it
	return &Clock{start: time.Now(), budget: budget, nextCheck: 1, ctx: ctx}
}

// Tick consumes one search node and reports whether the budget is exhausted.
// The wall clock and context are consulted on an exponential warm-up
// schedule (ticks 1, 2, 4, ... 1024) and every 1024 ticks thereafter: cheap
// for solvers that tick millions of times per second, yet solvers whose
// nodes cost milliseconds (CP/MIP propagation) still notice an expired time
// budget within a few nodes instead of overshooting by three orders of
// magnitude.
func (c *Clock) Tick() bool {
	c.nodes++
	if c.budget.Nodes > 0 && c.nodes >= c.budget.Nodes {
		return true
	}
	if c.nodes >= c.nextCheck {
		if c.nextCheck <= 512 {
			c.nextCheck <<= 1
		} else {
			c.nextCheck = c.nodes + 1024
		}
		//cloudia:nondet-ok Clock-internal deadline check; node budgets, not wall time, carry determinism
		if c.budget.Time > 0 && time.Since(c.start) >= c.budget.Time {
			return true
		}
		if c.ctx != nil && c.ctx.Err() != nil {
			return true
		}
	}
	return false
}

// NodeBudgeted reports whether the clock enforces a node budget. Node
// budgets exist to make runs deterministic regardless of machine speed, so
// parallel solvers consult this to fall back to their sequential engine
// rather than split the allowance across a machine-dependent worker count.
func (c *Clock) NodeBudgeted() bool { return c.budget.Nodes > 0 }

// Fork returns a child clock for one parallel worker: it shares the parent's
// start time, wall-clock budget, and cancellation context, with no node
// budget of its own. The parent is not advanced by the child's ticks; call
// Absorb after the workers join.
func (c *Clock) Fork() *Clock {
	return &Clock{
		start:     c.start,
		budget:    Budget{Time: c.budget.Time},
		nextCheck: 1,
		ctx:       c.ctx,
	}
}

// Absorb charges the nodes consumed by forked child clocks to the parent.
func (c *Clock) Absorb(children ...*Clock) {
	for _, ch := range children {
		c.nodes += ch.nodes
	}
}

// Expired reports whether the budget is exhausted without consuming a node.
func (c *Clock) Expired() bool {
	if c.budget.Nodes > 0 && c.nodes >= c.budget.Nodes {
		return true
	}
	if c.ctx != nil && c.ctx.Err() != nil {
		return true
	}
	//cloudia:nondet-ok Clock-internal deadline check; node budgets, not wall time, carry determinism
	return c.budget.Time > 0 && time.Since(c.start) >= c.budget.Time
}

// Nodes reports the nodes consumed so far.
func (c *Clock) Nodes() int64 { return c.nodes }

// Elapsed reports wall-clock time since the run started.
//
//cloudia:nondet-ok Elapsed is reporting-only; no search decision may read it
func (c *Clock) Elapsed() time.Duration { return time.Since(c.start) }
