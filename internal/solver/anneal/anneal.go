// Package anneal implements a simulated-annealing solver for both node
// deployment objectives. The paper's toolbox stops at greedy and randomized
// lightweight approaches (Sects. 4.3 and 4.5); annealing is the natural next
// rung — a local search over the same solution space — and serves as an
// ablation baseline between R2 and the systematic CP/MIP solvers.
//
// Moves either swap the instances of two deployed nodes or relocate a node
// to an unused (over-allocated) instance. Temperature decays geometrically
// from an initial value calibrated to the cost scale.
package anneal

import (
	"fmt"
	"math"
	"math/rand"

	"cloudia/internal/solver"
)

// Solver is a simulated-annealing solver.
type Solver struct {
	// Seed drives all randomness.
	Seed int64
	// InitialTempFraction scales the starting temperature relative to the
	// bootstrap cost; zero selects 0.5.
	InitialTempFraction float64
	// CoolingSteps is the number of moves over which temperature decays by
	// ~e^-7 (effectively to zero); zero derives it from the node budget or
	// defaults to 200k.
	CoolingSteps int64
}

// New returns an annealing solver.
func New(seed int64) *Solver { return &Solver{Seed: seed} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "SA" }

// Solve implements solver.Solver.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if budget.Unlimited() {
		return nil, fmt.Errorf("anneal: requires a bounded budget")
	}
	clock := solver.NewClock(budget)
	rng := rand.New(rand.NewSource(s.Seed))

	cur, curCost := solver.Bootstrap(p, 10, rng)
	cur = cur.Clone()
	best := cur.Clone()
	bestCost := curCost

	res := &solver.Result{}
	res.Trace = append(res.Trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: bestCost})

	frac := s.InitialTempFraction
	if frac == 0 {
		frac = 0.5
	}
	t0 := curCost * frac
	if t0 <= 0 {
		t0 = 1e-6
	}
	steps := s.CoolingSteps
	if steps == 0 {
		if budget.Nodes > 0 {
			steps = budget.Nodes
		} else {
			steps = 200_000
		}
	}
	decay := 7.0 / float64(steps)

	n := p.NumNodes()
	m := p.NumInstances()
	usedBy := make([]int, m) // instance -> node + 1, 0 if free
	for node, inst := range cur {
		usedBy[inst] = node + 1
	}

	step := int64(0)
	for !clock.Tick() {
		step++
		temp := t0 * math.Exp(-decay*float64(step))

		// Propose: swap two nodes, or move one node to a free instance.
		var apply, undo func()
		if m > n && rng.Intn(2) == 0 {
			node := rng.Intn(n)
			target := randFreeInstance(usedBy, rng)
			old := cur[node]
			apply = func() {
				usedBy[old] = 0
				usedBy[target] = node + 1
				cur[node] = target
			}
			undo = func() {
				usedBy[target] = 0
				usedBy[old] = node + 1
				cur[node] = old
			}
		} else {
			a := rng.Intn(n)
			bn := rng.Intn(n - 1)
			if bn >= a {
				bn++
			}
			ia, ib := cur[a], cur[bn]
			apply = func() {
				cur[a], cur[bn] = ib, ia
				usedBy[ia], usedBy[ib] = bn+1, a+1
			}
			undo = func() {
				cur[a], cur[bn] = ia, ib
				usedBy[ia], usedBy[ib] = a+1, bn+1
			}
		}

		apply()
		cand := p.Cost(cur)
		delta := cand - curCost
		if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			curCost = cand
			if curCost < bestCost {
				bestCost = curCost
				copy(best, cur)
				res.Trace = append(res.Trace, solver.TracePoint{
					Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: bestCost,
				})
			}
		} else {
			undo()
		}
	}

	res.Deployment = best
	res.Cost = bestCost
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// randFreeInstance picks a uniformly random free instance. usedBy must have
// at least one zero entry.
func randFreeInstance(usedBy []int, rng *rand.Rand) int {
	for {
		j := rng.Intn(len(usedBy))
		if usedBy[j] == 0 {
			return j
		}
	}
}
