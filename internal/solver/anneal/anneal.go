// Package anneal implements a simulated-annealing solver for both node
// deployment objectives. The paper's toolbox stops at greedy and randomized
// lightweight approaches (Sects. 4.3 and 4.5); annealing is the natural next
// rung — a local search over the same solution space — and serves as an
// ablation baseline between R2 and the systematic CP/MIP solvers.
//
// Moves either swap the instances of two deployed nodes or relocate a node
// to an unused (over-allocated) instance. Temperature decays geometrically
// from an initial value calibrated to the cost scale. Move evaluation goes
// through solver.DeltaEvaluator, so each step costs ~O(deg) instead of a
// full O(E) or O(V+E) recomputation, and the inner loop is allocation-free.
package anneal

import (
	"context"
	"fmt"
	"math"
	"math/rand"

	"cloudia/internal/solver"
)

// Solver is a simulated-annealing solver.
type Solver struct {
	// Seed drives all randomness.
	Seed int64
	// InitialTempFraction scales the starting temperature relative to the
	// bootstrap cost; zero selects 0.5.
	InitialTempFraction float64
	// CoolingSteps is the number of moves over which temperature decays by
	// ~e^-7 (effectively to zero); zero derives it from the node budget or
	// defaults to 200k.
	CoolingSteps int64
}

// New returns an annealing solver.
func New(seed int64) *Solver { return &Solver{Seed: seed} }

// Name implements solver.Solver.
func (s *Solver) Name() string { return "SA" }

// Solve implements solver.Solver.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver.
func (s *Solver) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if budget.Unlimited() {
		return nil, fmt.Errorf("anneal: requires a bounded budget")
	}
	clock := solver.NewClockCtx(ctx, budget)
	rng := rand.New(rand.NewSource(s.Seed))

	// The bootstrap incumbent comes from the problem's shared
	// preprocessing cache — CP, MIP, and same-seeded SA members all draw
	// the identical best-of-10, so it is computed once. The move rng is
	// separate, so the annealing trajectory no longer depends on how many
	// draws bootstrapping consumed.
	cur, curCost := p.Prep().Bootstrap(10, s.Seed)
	ev := solver.NewDeltaEvaluator(p, cur)
	best := cur.Clone()
	bestCost := curCost

	res := &solver.Result{}
	res.Trace = append(res.Trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: bestCost})

	frac := s.InitialTempFraction
	if frac == 0 {
		frac = 0.5
	}
	t0 := curCost * frac
	if t0 <= 0 {
		t0 = 1e-6
	}
	steps := s.CoolingSteps
	if steps == 0 {
		if budget.Nodes > 0 {
			steps = budget.Nodes
		} else {
			steps = 200_000
		}
	}
	decay := 7.0 / float64(steps)

	n := p.NumNodes()
	m := p.NumInstances()
	free := make([]int, 0, m-n)
	for inst := 0; inst < m; inst++ {
		if ev.InstanceNode(inst) < 0 {
			free = append(free, inst)
		}
	}
	if n < 2 {
		// No swap exists and relocating a single edgeless node cannot
		// change the cost: the bootstrap deployment is final.
		res.Deployment = best
		res.Cost = bestCost
		res.Nodes = clock.Nodes()
		res.Elapsed = clock.Elapsed()
		return res, nil
	}

	step := int64(0)
	for !clock.Tick() {
		step++
		temp := t0 * math.Exp(-decay*float64(step))

		// Propose: swap two nodes, or move one node to a free instance.
		// The evaluator prices the move in ~O(deg); no full recomputation.
		var cand float64
		relocate := len(free) > 0 && rng.Intn(2) == 0
		var node, fi, vacated int
		if relocate {
			node = rng.Intn(n)
			fi = rng.Intn(len(free))
			vacated = ev.Deployment()[node]
			cand = ev.RelocateCost(node, free[fi])
		} else {
			a := rng.Intn(n)
			b := rng.Intn(n - 1)
			if b >= a {
				b++
			}
			cand = ev.SwapCost(a, b)
		}

		delta := cand - curCost
		if delta <= 0 || rng.Float64() < math.Exp(-delta/math.Max(temp, 1e-12)) {
			ev.Commit()
			if relocate {
				free[fi] = vacated
			}
			curCost = cand
			if curCost < bestCost {
				bestCost = curCost
				copy(best, ev.Deployment())
				res.Trace = append(res.Trace, solver.TracePoint{
					Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: bestCost,
				})
			}
		} else {
			ev.Reject()
		}
	}

	res.Deployment = best
	res.Cost = bestCost
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}
