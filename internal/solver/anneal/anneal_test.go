package anneal

import (
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

func TestRequiresBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(2, 2, 2, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(1).Solve(p, solver.Budget{}); err == nil {
		t.Fatal("unlimited budget accepted")
	}
}

func TestFindsPlantedOptimum(t *testing.T) {
	p, optCeil, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(3).Solve(p, solver.Budget{Nodes: 200_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	if res.Cost > optCeil {
		t.Fatalf("SA cost %g, want <= %g", res.Cost, optCeil)
	}
}

func TestImprovesOnBootstrapForBothObjectives(t *testing.T) {
	gLL, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	pLL, err := solvertest.Realistic(gLL, 20, solver.LongestLink, 5)
	if err != nil {
		t.Fatal(err)
	}
	pLP, _, err := solvertest.PlantedLP(8, 4, 0.1, 1.0, 6)
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range []*solver.Problem{pLL, pLP} {
		res, err := New(7).Solve(p, solver.Budget{Nodes: 100_000})
		if err != nil {
			t.Fatal(err)
		}
		first := res.Trace[0].Cost
		if res.Cost > first {
			t.Fatalf("SA final %g worse than bootstrap %g", res.Cost, first)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatal(err)
		}
	}
}

func TestUsesOverAllocatedInstances(t *testing.T) {
	// With a planted clique of exactly n good instances among n+extra, the
	// optimum requires relocating onto unused instances; SA's move set
	// includes relocation, so it should reach it.
	p, optCeil, err := solvertest.PlantedLL(2, 3, 6, 0.1, 1.0, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(11).Solve(p, solver.Budget{Nodes: 300_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > optCeil {
		t.Fatalf("SA did not exploit over-allocation: %g > %g", res.Cost, optCeil)
	}
}

func TestDeterministicWithNodeBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 2, 0.1, 1.0, 13)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(15).Solve(p, solver.Budget{Nodes: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(15).Solve(p, solver.Budget{Nodes: 50_000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("SA not deterministic: %g vs %g", a.Cost, b.Cost)
	}
}

func TestName(t *testing.T) {
	if New(1).Name() != "SA" {
		t.Fatal("name")
	}
}
