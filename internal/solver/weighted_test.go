package solver_test

import (
	"math/rand"
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/anneal"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
)

// Weighted-graph extension: all solvers must solve weighted problems and the
// systematic solvers must find the weighted optimum, which generally differs
// from the unweighted one.

// weightedInstance builds a 4-node star where the heavy edge must land on
// the cheapest link: node 0 talks to 1, 2, 3; edge (0,1) has weight 10.
// Instance pair (4, 5) is the unique cheap link.
func weightedInstance(t *testing.T) (*solver.Problem, float64) {
	t.Helper()
	g := core.NewGraph(4)
	for _, to := range []int{1, 2, 3} {
		if err := g.AddEdge(0, to); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetWeight(0, 1, 10); err != nil {
		t.Fatal(err)
	}
	const s = 6
	rng := rand.New(rand.NewSource(11))
	m := core.NewCostMatrix(s)
	for i := 0; i < s; i++ {
		for j := 0; j < s; j++ {
			if i != j {
				m.Set(i, j, 0.9+0.2*rng.Float64())
			}
		}
	}
	m.Set(4, 5, 0.1) // the one cheap link
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: node 0 on instance 4, node 1 on instance 5 -> heavy edge
	// costs 10*0.1 = 1.0; other edges cost ~1.1 at most => cost ~1.1.
	// Any deployment with the heavy edge elsewhere costs >= 10*0.9 = 9.
	return p, 2.0
}

func TestWeightedOptimumCP(t *testing.T) {
	p, ceil := weightedInstance(t)
	res, err := cp.New(0, 3).Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > ceil {
		t.Fatalf("CP weighted cost %g, want <= %g (heavy edge not placed on cheap link)", res.Cost, ceil)
	}
	if !res.Optimal {
		t.Fatal("CP did not prove weighted optimality")
	}
	// The heavy edge must occupy the cheap (4,5) link.
	if !(res.Deployment[0] == 4 && res.Deployment[1] == 5) {
		t.Fatalf("heavy edge deployed on (%d,%d), want (4,5)", res.Deployment[0], res.Deployment[1])
	}
}

func TestWeightedOptimumMIP(t *testing.T) {
	p, ceil := weightedInstance(t)
	s := &mip.Solver{Seed: 5, LPNodeCost: -1} // pure search: no LP emulation
	res, err := s.Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if res.Cost > ceil {
		t.Fatalf("MIP weighted cost %g, want <= %g", res.Cost, ceil)
	}
	if !res.Optimal {
		t.Fatal("MIP did not prove weighted optimality")
	}
}

func TestWeightedLPNDPMIP(t *testing.T) {
	// Chain 0->1->2 with the first edge weighted 5: the optimum routes that
	// edge over the cheapest link.
	g := core.NewGraph(3)
	if err := g.AddEdge(0, 1); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(0, 1, 5); err != nil {
		t.Fatal(err)
	}
	m := core.NewCostMatrix(4)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			if i != j {
				m.Set(i, j, 1.0)
			}
		}
	}
	m.Set(2, 3, 0.1)
	p, err := solver.NewProblem(g, m, solver.LongestPath)
	if err != nil {
		t.Fatal(err)
	}
	s := &mip.Solver{Seed: 7, LPNodeCost: -1}
	res, err := s.Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Optimum: heavy edge on (2,3): 5*0.1 + 1*1 = 1.5.
	if res.Cost > 1.5+1e-9 {
		t.Fatalf("weighted LPNDP cost %g, want <= 1.5", res.Cost)
	}
	if !res.Optimal {
		t.Fatal("optimality not proven")
	}
}

func TestWeightedLightweightSolversValid(t *testing.T) {
	p, _ := weightedInstance(t)
	solvers := []solver.Solver{
		greedy.New(greedy.G1),
		greedy.New(greedy.G2),
		random.NewR1(2000, 9),
		anneal.New(9),
	}
	for _, s := range solvers {
		res, err := s.Solve(p, solver.Budget{Nodes: 100_000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := p.Cost(res.Deployment); got != res.Cost {
			t.Fatalf("%s reported %g, actual %g", s.Name(), res.Cost, got)
		}
	}
}

func TestWeightedG2PrefersCheapLinkForHeavyEdge(t *testing.T) {
	p, ceil := weightedInstance(t)
	res, err := greedy.New(greedy.G2).Solve(p, solver.Budget{Nodes: 1_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// G2's weighted implicit-cost refinement should avoid paying 10x a
	// regular link for the heavy edge.
	if res.Cost > ceil {
		t.Fatalf("G2 weighted cost %g, want <= %g", res.Cost, ceil)
	}
}

// Property: all solvers produce valid deployments on random weighted
// problems.
func TestWeightedRandomProblemsAllSolvers(t *testing.T) {
	for trial := 0; trial < 10; trial++ {
		rng := rand.New(rand.NewSource(int64(trial) * 131))
		n := 4 + rng.Intn(6)
		s := n + 2 + rng.Intn(4)
		g, err := core.RandomDAG(n, 0.5, rng)
		if err != nil {
			t.Fatal(err)
		}
		for _, e := range g.Edges() {
			if rng.Intn(2) == 0 {
				if err := g.SetWeight(e.From, e.To, 1+rng.Float64()*4); err != nil {
					t.Fatal(err)
				}
			}
		}
		m := core.NewCostMatrix(s)
		for i := 0; i < s; i++ {
			for j := 0; j < s; j++ {
				if i != j {
					m.Set(i, j, 0.1+rng.Float64())
				}
			}
		}
		for _, obj := range []solver.Objective{solver.LongestLink, solver.LongestPath} {
			p, err := solver.NewProblem(g, m, obj)
			if err != nil {
				t.Fatal(err)
			}
			var solvers []solver.Solver
			solvers = append(solvers,
				greedy.New(greedy.G1), greedy.New(greedy.G2),
				random.NewR1(200, 3), anneal.New(3),
				&mip.Solver{Seed: 3, LPNodeCost: -1})
			if obj == solver.LongestLink {
				solvers = append(solvers, cp.New(0, 3))
			}
			for _, sol := range solvers {
				res, err := sol.Solve(p, solver.Budget{Nodes: 30_000})
				if err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, obj, sol.Name(), err)
				}
				if err := res.Deployment.Validate(s); err != nil {
					t.Fatalf("trial %d %s %s: %v", trial, obj, sol.Name(), err)
				}
			}
		}
	}
}
