package solver

import (
	"context"
	"fmt"
	"runtime/debug"
	"strings"
	"sync"
)

// ContextSolver is a Solver that can additionally be cancelled early through
// a context: its budget reads as exhausted once ctx is done. All solvers in
// this repository implement it; third-party solvers that don't are still
// usable in a Portfolio, they just run to their own budget.
type ContextSolver interface {
	Solver
	SolveContext(ctx context.Context, p *Problem, budget Budget) (*Result, error)
}

// Portfolio runs member solvers concurrently on the same problem — one
// goroutine per member — and returns the best result found. Every member
// receives the full budget, so on a k-core machine a k-member portfolio
// matches the paper's deployment-time budget while exploring k search
// strategies at once; under a node budget the result is never worse than
// the best member run sequentially with the same seeds (under a wall-clock
// budget on fewer cores than members, CPU time-sharing trades single-member
// depth for strategy diversity). Members that error (e.g. CP on a
// longest-path problem) are skipped; members that prove optimality cancel
// the rest through the shared context.
//
// Members share the problem's Prep cache: derived artifacts — clustered
// cost matrices, sorted pair lists, transposed structures, bootstrap
// incumbents — are computed by whichever member asks first and reused by
// the rest (and by any later run on the same Problem), instead of each
// member burning its budget recomputing them.
type Portfolio struct {
	Members []Solver
}

// NewPortfolio returns a portfolio over the given members.
func NewPortfolio(members ...Solver) *Portfolio { return &Portfolio{Members: members} }

// Name implements Solver.
func (pf *Portfolio) Name() string {
	names := make([]string, len(pf.Members))
	for i, s := range pf.Members {
		names[i] = s.Name()
	}
	return "portfolio(" + strings.Join(names, "+") + ")"
}

// Solve implements Solver.
func (pf *Portfolio) Solve(p *Problem, budget Budget) (*Result, error) {
	return pf.SolveContext(context.Background(), p, budget)
}

// SolveContext implements ContextSolver. The returned result carries the
// winner's deployment, cost, and trace; Nodes sums every member's expansions
// and Optimal is set when any member proved optimality.
func (pf *Portfolio) SolveContext(ctx context.Context, p *Problem, budget Budget) (*Result, error) {
	if len(pf.Members) == 0 {
		return nil, fmt.Errorf("solver: empty portfolio")
	}
	if budget.Unlimited() {
		return nil, fmt.Errorf("solver: portfolio requires a bounded budget")
	}
	clock := NewClockCtx(ctx, budget)
	ctx, cancel := context.WithCancel(ctx)
	if budget.Time > 0 {
		var cancelTimeout context.CancelFunc
		ctx, cancelTimeout = context.WithTimeout(ctx, budget.Time)
		defer cancelTimeout()
	}
	defer cancel()

	// Each member writes only its own slot; the winner is selected after the
	// join, in member-index order, so ties are broken by portfolio position
	// rather than goroutine completion order. That keeps advice
	// bit-reproducible across runs and machine speeds — essential for the
	// percentile mode, whose cluster-rounded matrices tie frequently.
	results := make([]*Result, len(pf.Members))
	errs := make([]error, len(pf.Members))
	//cloudia:nondet-ok members write disjoint slots; the winner is chosen post-join in member-index order
	var wg sync.WaitGroup
	for i, member := range pf.Members {
		i, member := i, member
		wg.Add(1)
		//cloudia:nondet-ok member i writes only results[i]/errs[i]; selection happens after the join
		go func() {
			defer wg.Done()
			// A panicking member loses only its own lane: the panic is
			// captured as that member's error (with the stack, for the
			// serving layer's logs) while the other members keep racing.
			defer func() {
				if r := recover(); r != nil {
					errs[i] = fmt.Errorf("solver: portfolio member %s panicked: %v\n%s", member.Name(), r, debug.Stack())
				}
			}()
			var res *Result
			var err error
			if cs, ok := member.(ContextSolver); ok {
				res, err = cs.SolveContext(ctx, p, budget)
			} else {
				res, err = member.Solve(p, budget)
			}
			if err != nil {
				errs[i] = fmt.Errorf("solver: portfolio member %s: %w", member.Name(), err)
				return
			}
			results[i] = res
			if res.Optimal {
				cancel() // a proven optimum makes further search pointless
			}
		}()
	}
	wg.Wait()

	var (
		best    *Result
		winner  string
		nodes   int64
		optimal bool
		lastErr error
	)
	for i, res := range results {
		if errs[i] != nil {
			lastErr = errs[i]
			continue
		}
		if res == nil {
			continue
		}
		nodes += res.Nodes
		if res.Optimal {
			optimal = true
		}
		if res.Deployment == nil {
			continue
		}
		if best == nil || p.Better(res.Deployment, best.Deployment, res.Cost, best.Cost) {
			best, winner = res, pf.Members[i].Name()
		}
	}

	if best == nil {
		if lastErr != nil {
			return nil, lastErr
		}
		return nil, fmt.Errorf("solver: no portfolio member produced a deployment")
	}
	return &Result{
		Deployment: best.Deployment,
		Cost:       best.Cost,
		Optimal:    optimal,
		Nodes:      nodes,
		Elapsed:    clock.Elapsed(),
		Trace:      best.Trace,
		Winner:     winner,
	}, nil
}
