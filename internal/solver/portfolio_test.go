package solver_test

import (
	"math/rand"
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/anneal"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
)

// Cross-solver consistency properties: on instances small enough for the
// systematic solvers to prove optimality, their optima must agree with each
// other and lower-bound every lightweight technique.

func randomLLProblem(t *testing.T, seed int64, nodes, instances int) *solver.Problem {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	g := core.NewGraph(nodes)
	// Random connected-ish graph: a spanning path plus random extra edges.
	for v := 0; v+1 < nodes; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < nodes; k++ {
		a, b := rng.Intn(nodes), rng.Intn(nodes)
		if a != b && !g.HasEdge(a, b) {
			if err := g.AddEdge(a, b); err != nil {
				t.Fatal(err)
			}
		}
	}
	m := core.NewCostMatrix(instances)
	for i := 0; i < instances; i++ {
		for j := 0; j < instances; j++ {
			if i != j {
				m.Set(i, j, 0.1+rng.Float64())
			}
		}
	}
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestProvenOptimaAgreeCPvsMIP(t *testing.T) {
	for seed := int64(1); seed <= 8; seed++ {
		p := randomLLProblem(t, seed, 5, 7)
		cpRes, err := cp.New(0, seed).Solve(p, solver.Budget{Nodes: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		pure := &mip.Solver{Seed: seed, LPNodeCost: -1}
		mipRes, err := pure.Solve(p, solver.Budget{Nodes: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !cpRes.Optimal || !mipRes.Optimal {
			t.Fatalf("seed %d: optimality not proven (cp=%v mip=%v)", seed, cpRes.Optimal, mipRes.Optimal)
		}
		if cpRes.Cost != mipRes.Cost {
			t.Fatalf("seed %d: CP optimum %g != MIP optimum %g", seed, cpRes.Cost, mipRes.Cost)
		}
	}
}

func TestProvenOptimumLowerBoundsLightweights(t *testing.T) {
	for seed := int64(1); seed <= 6; seed++ {
		p := randomLLProblem(t, seed*17, 5, 7)
		opt, err := cp.New(0, seed).Solve(p, solver.Budget{Nodes: 50_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if !opt.Optimal {
			t.Fatalf("seed %d: CP did not prove optimality", seed)
		}
		lightweights := []solver.Solver{
			greedy.New(greedy.G1),
			greedy.New(greedy.G2),
			random.NewR1(300, seed),
			anneal.New(seed),
		}
		for _, s := range lightweights {
			res, err := s.Solve(p, solver.Budget{Nodes: 50_000})
			if err != nil {
				t.Fatalf("%s: %v", s.Name(), err)
			}
			if res.Cost < opt.Cost-1e-12 {
				t.Fatalf("seed %d: %s cost %g beats proven optimum %g", seed, s.Name(), res.Cost, opt.Cost)
			}
		}
	}
}

func TestAllSolversTracesMonotone(t *testing.T) {
	p := randomLLProblem(t, 99, 9, 12)
	solvers := []solver.Solver{
		greedy.New(greedy.G1),
		greedy.New(greedy.G2),
		random.NewR1(500, 3),
		anneal.New(3),
		cp.New(10, 3),
		&mip.Solver{Seed: 3, LPNodeCost: -1},
	}
	for _, s := range solvers {
		res, err := s.Solve(p, solver.Budget{Nodes: 100_000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if len(res.Trace) == 0 {
			t.Fatalf("%s: empty trace", s.Name())
		}
		for i := 1; i < len(res.Trace); i++ {
			if res.Trace[i].Cost > res.Trace[i-1].Cost+1e-12 {
				t.Fatalf("%s: trace not monotone: %v", s.Name(), res.Trace)
			}
		}
		if last := res.Trace[len(res.Trace)-1].Cost; last != res.Cost {
			t.Fatalf("%s: trace ends at %g, result cost %g", s.Name(), last, res.Cost)
		}
	}
}

func TestAllSolversHonourReportedCost(t *testing.T) {
	p := randomLLProblem(t, 123, 8, 11)
	solvers := []solver.Solver{
		greedy.New(greedy.G1),
		greedy.New(greedy.G2),
		random.NewR1(300, 5),
		anneal.New(5),
		cp.New(10, 5),
		mip.New(10, 5),
	}
	for _, s := range solvers {
		res, err := s.Solve(p, solver.Budget{Nodes: 50_000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if got := p.Cost(res.Deployment); got != res.Cost {
			t.Fatalf("%s: reported %g, actual %g", s.Name(), res.Cost, got)
		}
	}
}

func TestCPNeverWorseThanBootstrapAcrossSeeds(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		p := randomLLProblem(t, seed*31+7, 12, 16)
		rng := rand.New(rand.NewSource(seed))
		_, bootCost := solver.Bootstrap(p, 10, rng)
		res, err := cp.New(15, seed).Solve(p, solver.Budget{Nodes: 30_000})
		if err != nil {
			t.Fatal(err)
		}
		// CP bootstraps with the same protocol (best of 10), so even under
		// a tiny budget the result can't be drastically worse than an
		// independent bootstrap; allow slack for the different RNG stream.
		if res.Cost > bootCost*1.5 {
			t.Fatalf("seed %d: CP %g vs independent bootstrap %g", seed, res.Cost, bootCost)
		}
	}
}
