package solver

import (
	"reflect"
	"runtime"
	"testing"

	"cloudia/internal/par"
)

// prepArtifacts computes every Prep artifact kind from a fresh problem built
// with the given seeds, at the current worker count. Fresh problems per call
// keep Prep memoization from hiding the rebuild.
type prepArtifacts struct {
	rounded0, rounded8 [][]float64
	pairs0, pairs8     []float64
	rows               [][]int32
	off                []float64
	transposed         [][]float64
	patched            [][]float64
	patchedPairs       []float64
	seededRows         [][]int32
}

func collectPrepArtifacts(t *testing.T) prepArtifacts {
	t.Helper()
	p := prepProblem(t, 14, 26, 41)
	prep := p.Prep()
	var a prepArtifacts

	dump := func(m interface {
		Size() int
		Row(int) []float64
	}) [][]float64 {
		out := make([][]float64, m.Size())
		for i := range out {
			out[i] = append([]float64(nil), m.Row(i)...)
		}
		return out
	}
	m0, pairs0, err := prep.Rounded(0)
	if err != nil {
		t.Fatal(err)
	}
	a.rounded0 = dump(m0)
	for _, pr := range pairs0 {
		a.pairs0 = append(a.pairs0, float64(pr.From), float64(pr.To), pr.Cost)
	}
	m8, pairs8, err := prep.Rounded(8)
	if err != nil {
		t.Fatal(err)
	}
	a.rounded8 = dump(m8)
	for _, pr := range pairs8 {
		a.pairs8 = append(a.pairs8, float64(pr.From), float64(pr.To), pr.Cost)
	}
	a.rows = prep.CheapestRows()
	a.off = prep.OffDiagonal()
	tc, err := prep.TransposedCosts(0)
	if err != nil {
		t.Fatal(err)
	}
	a.transposed = dump(tc)

	// Epoch path: evolve with three changed rows and rebuild the patched
	// artifacts (seeded cheapest rows, patched rounded matrix and pairs).
	changed := []int{3, 9, 11}
	np, err := p.Evolve(perturbRows(p.Costs, changed, 77), changed)
	if err != nil {
		t.Fatal(err)
	}
	nprep := np.Prep()
	pm, ppairs, err := nprep.Rounded(8)
	if err != nil {
		t.Fatal(err)
	}
	a.patched = dump(pm)
	for _, pr := range ppairs {
		a.patchedPairs = append(a.patchedPairs, float64(pr.From), float64(pr.To), pr.Cost)
	}
	a.seededRows = nprep.CheapestRows()
	return a
}

// TestPrepArtifactsBitEqualAcrossWorkers pins every artifact kind the Prep
// layer builds — rounded matrices, sorted pair lists, cheapest rows,
// off-diagonal extraction, transposed costs, and the evolved/seeded epoch
// variants — bit-identical across worker counts.
func TestPrepArtifactsBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	par.SetWorkers(1)
	want := collectPrepArtifacts(t)
	counts := []int{2, runtime.GOMAXPROCS(0)}
	if runtime.GOMAXPROCS(0) < 2 {
		counts = append(counts, 8)
	}
	for _, w := range counts {
		par.SetWorkers(w)
		got := collectPrepArtifacts(t)
		if !reflect.DeepEqual(got, want) {
			t.Fatalf("workers=%d: Prep artifacts diverge from sequential build", w)
		}
	}
}
