package solver

import (
	"math/rand"
	"testing"
	"time"

	"cloudia/internal/core"
)

func randomMatrix(n int, seed int64) *core.CostMatrix {
	rng := rand.New(rand.NewSource(seed))
	m := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

func TestNewProblemValidation(t *testing.T) {
	g, err := core.Mesh2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	m := randomMatrix(4, 1)
	if _, err := NewProblem(nil, m, LongestLink); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := NewProblem(g, core.NewCostMatrix(3), LongestLink); err == nil {
		t.Fatal("undersized instance set accepted")
	}
	if _, err := NewProblem(g, m, Objective("nope")); err == nil {
		t.Fatal("bogus objective accepted")
	}
	// Mesh is cyclic (bidirectional edges): LongestPath must reject it.
	if _, err := NewProblem(g, m, LongestPath); err == nil {
		t.Fatal("cyclic graph accepted for longest-path")
	}
	if _, err := NewProblem(g, m, LongestLink); err != nil {
		t.Fatalf("valid problem rejected: %v", err)
	}
}

func TestProblemCostMatchesCore(t *testing.T) {
	g, err := core.TwoLevelAggregation(2, 4)
	if err != nil {
		t.Fatal(err)
	}
	m := randomMatrix(8, 2)
	pLL, err := NewProblem(g, m, LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	pLP, err := NewProblem(g, m, LongestPath)
	if err != nil {
		t.Fatal(err)
	}
	d := core.Identity(7)
	if got, want := pLL.Cost(d), core.LongestLink(d, g, m); got != want {
		t.Fatalf("LL cost %g != %g", got, want)
	}
	wantLP, err := core.LongestPath(d, g, m)
	if err != nil {
		t.Fatal(err)
	}
	if got := pLP.Cost(d); got != wantLP {
		t.Fatalf("LP cost %g != %g", got, wantLP)
	}
}

func TestRandomDeploymentValid(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, randomMatrix(12, 3), LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(4))
	for k := 0; k < 20; k++ {
		d := RandomDeployment(p, rng)
		if len(d) != 9 {
			t.Fatalf("deployment length %d", len(d))
		}
		if err := d.Validate(12); err != nil {
			t.Fatalf("invalid random deployment: %v", err)
		}
	}
}

func TestBootstrapImproves(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := NewProblem(g, randomMatrix(12, 5), LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	rng1 := rand.New(rand.NewSource(6))
	_, one := Bootstrap(p, 1, rng1)
	rng2 := rand.New(rand.NewSource(6))
	_, fifty := Bootstrap(p, 50, rng2)
	if fifty > one {
		t.Fatalf("best of 50 (%g) worse than best of 1 (%g)", fifty, one)
	}
}

func TestClockNodeBudget(t *testing.T) {
	c := NewClock(Budget{Nodes: 10})
	stops := 0
	for i := 0; i < 20; i++ {
		if c.Tick() {
			stops++
		}
	}
	if stops == 0 {
		t.Fatal("node budget never triggered")
	}
	if c.Nodes() != 20 {
		t.Fatalf("Nodes = %d, want 20", c.Nodes())
	}
	if !c.Expired() {
		t.Fatal("Expired = false after budget exceeded")
	}
}

func TestClockTimeBudget(t *testing.T) {
	c := NewClock(Budget{Time: time.Millisecond})
	time.Sleep(2 * time.Millisecond)
	// Tick checks wall clock every 1024 ticks.
	hit := false
	for i := 0; i < 2048; i++ {
		if c.Tick() {
			hit = true
			break
		}
	}
	if !hit {
		t.Fatal("time budget never triggered")
	}
}

func TestClockUnlimited(t *testing.T) {
	if !(Budget{}).Unlimited() {
		t.Fatal("zero budget should be unlimited")
	}
	c := NewClock(Budget{})
	for i := 0; i < 5000; i++ {
		if c.Tick() {
			t.Fatal("unlimited budget triggered")
		}
	}
}
