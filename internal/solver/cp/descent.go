package cp

import (
	"slices"
	"sync"
	"sync/atomic"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// descent is the persistent state of one threshold descent, built once per
// Solve call and carried across every feasibility check. It exploits the
// monotonicity of the descent: thresholds only decrease, so the threshold
// graph G_c' is a subgraph of G_c and the root domains only shrink. Instead
// of rebuilding m^2 adjacency bits per weight class at every iteration, the
// instance pairs are held sorted by cost and a per-class cursor walks
// backwards on each tightening, clearing exactly the bits for pairs whose
// cost falls in (c', c]. Instance degrees are maintained alongside, so the
// value-ordering heuristic and the root degree filter never re-count bitsets.
type descent struct {
	g    *core.Graph
	n, m int
	wpd  int // words per m-bit instance set

	weights  []float64 // distinct edge weight classes (index = class id)
	loosest  int       // class with the smallest weight (loosest threshold)
	outClass [][]int   // weight class per out-adjacency slot of each node
	inClass  [][]int   // weight class per in-adjacency slot of each node
	nodeDeg  []int     // g.Degree per node, for variable-selection tie-breaks
	// pickOrder holds the variables sorted by (degree descending, index
	// ascending) — the static tie-break order of pickVar: given the
	// smallest populated domain size from the engine's bucket counts, the
	// first variable of that size in this order is exactly the variable
	// the old full scan selected.
	pickOrder []int32

	pairs  []core.CostPair // all ordered instance pairs, ascending by cost
	cursor []int           // per class: pairs[:cursor[ci]] are present in adj

	adjOut []bitsetRow // [class]: adjacency rows, adjOut[ci].row(j) = out-neighbours of j
	adjIn  []bitsetRow
	outDeg [][]int32 // [class][instance]: out-degree in the threshold graph
	inDeg  [][]int32

	// Root domains with compatibility filtering; they shrink monotonically
	// across the descent and are copied into each engine per check.
	rootWords []uint64
	root      []bitset
	rootSize  []int32
	degFilter bool

	// Value-ordering heuristic state, refreshed after each tightening:
	// instances sorted by threshold-graph degree in the loosest class,
	// densest first (ties by index for determinism).
	instDeg  []int32
	valOrder []int32
	rootVals []int32 // scratch: current root variable's candidates, in order

	// Degree-filter profiles. Node profiles depend only on the communication
	// graph and are computed once; instance profiles are rebuilt per
	// tightening into reused rows, sorted by a shared counting buffer —
	// profile entries are threshold-graph degrees in [0, 2m), and the
	// comparison sorts here used to eat ~20% of a whole threshold descent.
	nodeProfile [][]int32
	instProfile [][]int32
	countBuf    []int32

	engines []*engine
}

// bitsetRow is a slab of m fixed-size bitsets backed by one allocation.
type bitsetRow struct {
	words []uint64
	wpd   int
}

func newBitsetRow(m, wpd int) bitsetRow {
	return bitsetRow{words: make([]uint64, m*wpd), wpd: wpd}
}

func (r bitsetRow) row(j int) bitset { return view(r.words[j*r.wpd : (j+1)*r.wpd]) }

// newDescent builds the descent state with the threshold graphs at c = +inf
// (every pair present); the first tighten call walks them down to the first
// threshold. workers engines are preallocated and reused across checks.
func newDescent(p *solver.Problem, pairs []core.CostPair, workers int, degFilter bool) *descent {
	g := p.Graph
	n, m := p.NumNodes(), p.NumInstances()
	d := &descent{
		g: g, n: n, m: m, wpd: wordsPerSet(m),
		pairs:     pairs,
		degFilter: degFilter,
	}

	d.weights = []float64{1}
	if g.Weighted() {
		d.weights = g.DistinctWeights()
	}
	classOf := make(map[float64]int, len(d.weights))
	for ci, w := range d.weights {
		classOf[w] = ci
		if w < d.weights[d.loosest] {
			d.loosest = ci
		}
	}
	d.outClass = make([][]int, n)
	d.inClass = make([][]int, n)
	d.nodeDeg = make([]int, n)
	d.pickOrder = make([]int32, n)
	for v := 0; v < n; v++ {
		d.pickOrder[v] = int32(v)
		d.nodeDeg[v] = g.Degree(v)
		for _, w := range g.Out(v) {
			d.outClass[v] = append(d.outClass[v], classOf[g.Weight(v, w)])
		}
		for _, u := range g.In(v) {
			d.inClass[v] = append(d.inClass[v], classOf[g.Weight(u, v)])
		}
	}

	slices.SortFunc(d.pickOrder, func(a, b int32) int {
		if d.nodeDeg[a] != d.nodeDeg[b] {
			return d.nodeDeg[b] - d.nodeDeg[a] // higher degree first
		}
		return int(a - b)
	})

	nc := len(d.weights)
	d.cursor = make([]int, nc)
	d.adjOut = make([]bitsetRow, nc)
	d.adjIn = make([]bitsetRow, nc)
	d.outDeg = make([][]int32, nc)
	d.inDeg = make([][]int32, nc)
	for ci := 0; ci < nc; ci++ {
		d.cursor[ci] = len(pairs)
		d.adjOut[ci] = newBitsetRow(m, d.wpd)
		d.adjIn[ci] = newBitsetRow(m, d.wpd)
		d.outDeg[ci] = make([]int32, m)
		d.inDeg[ci] = make([]int32, m)
		for j := 0; j < m; j++ {
			d.adjOut[ci].row(j).setFirst(m)
			d.adjOut[ci].row(j).clear(j)
			d.adjIn[ci].row(j).setFirst(m)
			d.adjIn[ci].row(j).clear(j)
			d.outDeg[ci][j] = int32(m - 1)
			d.inDeg[ci][j] = int32(m - 1)
		}
	}

	d.rootWords = make([]uint64, n*d.wpd)
	d.root = make([]bitset, n)
	d.rootSize = make([]int32, n)
	for i := 0; i < n; i++ {
		d.root[i] = view(d.rootWords[i*d.wpd : (i+1)*d.wpd])
		d.root[i].setFirst(m)
		d.rootSize[i] = int32(m)
	}

	d.instDeg = make([]int32, m)
	d.valOrder = make([]int32, m)
	d.rootVals = make([]int32, 0, m)

	if degFilter {
		d.nodeProfile = make([][]int32, n)
		for i := 0; i < n; i++ {
			var prof []int32
			for _, w := range g.Out(i) {
				prof = append(prof, int32(g.Degree(w)))
			}
			for _, w := range g.In(i) {
				prof = append(prof, int32(g.Degree(w)))
			}
			sortDesc(prof)
			d.nodeProfile[i] = prof
		}
		d.instProfile = make([][]int32, m)
		d.countBuf = make([]int32, 2*m)
	}

	if workers < 1 {
		workers = 1
	}
	d.engines = make([]*engine, workers)
	for t := range d.engines {
		d.engines[t] = newEngine(d)
	}
	d.refreshValueOrder()
	return d
}

// tighten lowers every weight class's threshold graph to threshold c: class
// ci keeps exactly the pairs with cost <= c/weights[ci]. Thresholds must be
// non-increasing across calls; the cursors only ever walk backwards, so the
// whole descent clears each pair at most once per class — O(m^2) total per
// class, where the old engine paid O(m^2) per class per iteration rebuilding
// the adjacency from scratch.
func (d *descent) tighten(c float64) {
	cleared := false
	for ci, w := range d.weights {
		limit := c / w
		cur := d.cursor[ci]
		adjOut, adjIn := d.adjOut[ci], d.adjIn[ci]
		outDeg, inDeg := d.outDeg[ci], d.inDeg[ci]
		for cur > 0 && d.pairs[cur-1].Cost > limit {
			cur--
			pr := d.pairs[cur]
			adjOut.row(int(pr.From)).clear(int(pr.To))
			adjIn.row(int(pr.To)).clear(int(pr.From))
			outDeg[pr.From]--
			inDeg[pr.To]--
			cleared = true
		}
		d.cursor[ci] = cur
	}
	if cleared {
		d.refreshValueOrder()
	}
}

// refreshValueOrder recomputes the degree-ranked instance order consumed by
// every search node, so engine.search never sorts candidate values itself.
func (d *descent) refreshValueOrder() {
	outDeg, inDeg := d.outDeg[d.loosest], d.inDeg[d.loosest]
	for j := 0; j < d.m; j++ {
		d.instDeg[j] = outDeg[j] + inDeg[j]
		d.valOrder[j] = int32(j)
	}
	slices.SortFunc(d.valOrder, func(a, b int32) int {
		if d.instDeg[a] != d.instDeg[b] {
			return int(d.instDeg[b] - d.instDeg[a]) // denser first
		}
		return int(a - b)
	})
}

// refilter re-runs the root-level degree/neighbourhood compatibility filter
// of Zampelli et al. [70] against the current threshold graph. The filter is
// monotone in the threshold (degrees and profiles only shrink as c drops),
// so it is sound to test only the instances still in each root domain.
func (d *descent) refilter() {
	instOut, instIn := d.outDeg[0], d.inDeg[0]
	for j := 0; j < d.m; j++ {
		prof := d.instProfile[j][:0]
		collect := func(k int) bool {
			prof = append(prof, instOut[k]+instIn[k])
			return true
		}
		d.adjOut[0].row(j).forEach(collect)
		d.adjIn[0].row(j).forEach(collect)
		d.sortProfileDesc(prof)
		d.instProfile[j] = prof
	}
	for i := 0; i < d.n; i++ {
		needOut := int32(d.g.OutDegree(i))
		needIn := int32(d.g.InDegree(i))
		dom := d.root[i]
		dom.forEach(func(j int) bool {
			if instOut[j] < needOut || instIn[j] < needIn ||
				!dominates(d.instProfile[j], d.nodeProfile[i]) {
				dom.clear(j)
				d.rootSize[i]--
			}
			return true
		})
	}
}

func (d *descent) anyRootEmpty() bool {
	for i := 0; i < d.n; i++ {
		if d.rootSize[i] == 0 {
			return true
		}
	}
	return false
}

// pickRoot selects the search's root variable: smallest root domain,
// tie-breaking on higher communication-graph degree (most constrained
// first), matching engine.pickVar on the remaining variables.
func (d *descent) pickRoot() int {
	best, bestDeg := -1, -1
	var bestSize int32
	for i := 0; i < d.n; i++ {
		size := d.rootSize[i]
		deg := d.nodeDeg[i]
		if best < 0 || size < bestSize || (size == bestSize && deg > bestDeg) {
			best, bestSize, bestDeg = i, size, deg
		}
	}
	return best
}

// rootValues fills the scratch candidate list for the root variable, in
// value order (threshold-graph degree descending).
func (d *descent) rootValues(rootVar int) []int32 {
	d.rootVals = d.rootVals[:0]
	dom := d.root[rootVar]
	for _, j := range d.valOrder {
		if dom.has(int(j)) {
			d.rootVals = append(d.rootVals, j)
		}
	}
	return d.rootVals
}

// feasible searches for a deployment whose every communication edge e maps to
// a link of weighted cost w(e)*CL <= c, tightening the persistent threshold
// graphs down to c first. The root variable's candidate values are split
// round-robin across up to `workers` engines; the embedding from the
// lowest-indexed successful branch wins, and a branch is cancelled only by a
// lower-indexed winner, which keeps the verdict deterministic. Infeasibility
// ("exhausted") is proven only when every branch exhausted its subtree
// within budget. Node-budgeted clocks force the sequential engine: splitting
// a node allowance across a machine-dependent worker count would both leave
// budget stranded on idle workers and break the machine-independence that
// node budgets exist to provide.
func (d *descent) feasible(c float64, clock *solver.Clock) (ok bool, dep core.Deployment, exhausted bool) {
	d.tighten(c)
	if d.degFilter {
		d.refilter()
		if d.anyRootEmpty() {
			return false, nil, true
		}
	}
	rootVar := d.pickRoot()
	vals := d.rootValues(rootVar)
	if len(vals) == 0 {
		return false, nil, true
	}
	w := len(d.engines)
	if w > len(vals) {
		w = len(vals)
	}
	if clock.NodeBudgeted() {
		w = 1
	}

	if w <= 1 {
		eng := d.engines[0]
		eng.winner = nil
		if eng.run(rootVar, vals, 0, 1, clock) {
			return true, eng.deployment(), false
		}
		return false, nil, !eng.limitHit
	}

	// Parallel split. winner holds the lowest branch index that found an
	// embedding; w is the "none yet" sentinel.
	var winner atomic.Int32
	winner.Store(int32(w))
	clocks := make([]*solver.Clock, w)
	//cloudia:nondet-ok engine race with deterministic reduction: winner is the lowest branch index via CAS-min, not completion order
	var wg sync.WaitGroup
	for t := 0; t < w; t++ {
		eng := d.engines[t]
		eng.winner = &winner
		eng.branch = int32(t)
		clocks[t] = clock.Fork()
		wg.Add(1)
		//cloudia:nondet-ok each engine owns preallocated state; the winner CAS-min join is order-insensitive
		go func(t int, eng *engine) {
			defer wg.Done()
			if eng.run(rootVar, vals, t, w, clocks[t]) {
				for {
					cur := winner.Load()
					if cur <= int32(t) || winner.CompareAndSwap(cur, int32(t)) {
						break
					}
				}
			}
		}(t, eng)
	}
	wg.Wait()

	clock.Absorb(clocks...)
	if b := int(winner.Load()); b < w {
		return true, d.engines[b].deployment(), false
	}
	exhausted = true
	for t := 0; t < w; t++ {
		if d.engines[t].limitHit {
			exhausted = false
		}
	}
	return false, nil, exhausted
}

// sortDesc sorts a profile descending in place.
func sortDesc(p []int32) {
	slices.SortFunc(p, func(a, b int32) int { return int(b - a) })
}

// sortProfileDesc counting-sorts a degree profile descending: entries are
// threshold-graph degrees in [0, 2m), so bucketing beats a comparison sort
// for the per-tightening instance-profile rebuilds. The shared buffer is
// zeroed as it drains, keeping each call O(len(p) + len(countBuf)).
func (d *descent) sortProfileDesc(p []int32) {
	buf := d.countBuf
	for _, v := range p {
		buf[v]++
	}
	idx := 0
	for v := len(buf) - 1; v >= 0; v-- {
		for c := buf[v]; c > 0; c-- {
			p[idx] = int32(v)
			idx++
		}
		buf[v] = 0
	}
}

// dominates reports whether the instance profile can host the node profile:
// elementwise a[k] >= b[k] over b's length (both sorted descending).
func dominates(a, b []int32) bool {
	if len(a) < len(b) {
		return false
	}
	for k := range b {
		if a[k] < b[k] {
			return false
		}
	}
	return true
}

// distinctCosts compacts the sorted pair list into its distinct cost values,
// the CP threshold ladder for unweighted graphs.
func distinctCosts(pairs []core.CostPair) []float64 {
	out := make([]float64, 0, len(pairs))
	for _, pr := range pairs {
		if len(out) == 0 || pr.Cost != out[len(out)-1] {
			out = append(out, pr.Cost)
		}
	}
	return out
}
