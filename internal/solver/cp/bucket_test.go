package cp

import (
	"math/rand"
	"reflect"
	"testing"

	"cloudia/internal/cluster"
	"cloudia/internal/solver"
)

// The bucketed domain-size index must make exactly the choices of the
// pre-index O(n) scan: on identical descents walked down the full threshold
// ladder, every feasibility verdict, embedding, and node count must match
// between an engine using the bucket index and one using the scan.
func TestBucketedPickVarMatchesScan(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 40; trial++ {
		weighted := trial%3 == 2
		p := randomTinyProblem(t, rng, weighted)
		k := 0
		if trial%2 == 1 {
			k = 3
		}
		_, pairs, err := cluster.RoundCostMatrixPairs(p.Costs, k)
		if err != nil {
			t.Fatal(err)
		}
		thresholds := distinctCosts(pairs)
		if p.Graph.Weighted() {
			thresholds = weightedThresholds(thresholds, p.Graph)
		}
		degFilter := !p.Graph.Weighted()
		bucketed := newDescent(p, pairs, 1, degFilter)
		scanning := newDescent(p, pairs, 1, degFilter)
		scanning.engines[0].scanPick = true

		for idx := len(thresholds) - 1; idx >= 0; idx-- {
			c := thresholds[idx]
			bClock := solver.NewClock(solver.Budget{Nodes: 5_000_000})
			sClock := solver.NewClock(solver.Budget{Nodes: 5_000_000})
			bOK, bDep, bEx := bucketed.feasible(c, bClock)
			sOK, sDep, sEx := scanning.feasible(c, sClock)
			if bOK != sOK || bEx != sEx {
				t.Fatalf("trial %d (weighted=%v k=%d) c=%g: bucketed (ok=%v ex=%v) != scan (ok=%v ex=%v)",
					trial, weighted, k, c, bOK, bEx, sOK, sEx)
			}
			if !reflect.DeepEqual(bDep, sDep) {
				t.Fatalf("trial %d c=%g: embeddings diverge: %v vs %v", trial, c, bDep, sDep)
			}
			if bClock.Nodes() != sClock.Nodes() {
				t.Fatalf("trial %d c=%g: node counts diverge: %d vs %d (different search trees)",
					trial, c, bClock.Nodes(), sClock.Nodes())
			}
		}
	}
}

// The index must stay consistent across reuse: after a full descent the
// engine is reset per check, so interleaving feasible calls at jumping
// thresholds (as the real descent does when the incumbent improves in big
// steps) must keep verdicts equal too.
func TestBucketedPickVarDescentReuse(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	for trial := 0; trial < 10; trial++ {
		p := randomTinyProblem(t, rng, false)
		_, pairs, err := cluster.RoundCostMatrixPairs(p.Costs, 0)
		if err != nil {
			t.Fatal(err)
		}
		thresholds := distinctCosts(pairs)
		bucketed := newDescent(p, pairs, 1, true)
		scanning := newDescent(p, pairs, 1, true)
		scanning.engines[0].scanPick = true
		// Walk every other threshold, descending, then the lowest.
		for idx := len(thresholds) - 1; idx >= 0; idx -= 2 {
			c := thresholds[idx]
			bOK, _, bEx := bucketed.feasible(c, solver.NewClock(solver.Budget{Nodes: 5_000_000}))
			sOK, _, sEx := scanning.feasible(c, solver.NewClock(solver.Budget{Nodes: 5_000_000}))
			if bOK != sOK || bEx != sEx {
				t.Fatalf("trial %d c=%g: reuse divergence (ok %v/%v ex %v/%v)", trial, c, bOK, sOK, bEx, sEx)
			}
		}
	}
}
