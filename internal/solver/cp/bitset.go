package cp

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used for CP
// variable domains and for the threshold graph's adjacency rows. Capacity is
// fixed at construction; all binary operations assume equal capacity.
type bitset struct {
	words []uint64
}

func newBitset(capacity int) bitset {
	return bitset{words: make([]uint64, (capacity+63)/64)}
}

// wordsPerSet reports the backing-array length of a capacity-bit bitset, for
// callers that slab-allocate many sets out of one flat []uint64.
func wordsPerSet(capacity int) int { return (capacity + 63) / 64 }

// view wraps words as a bitset without copying; the caller owns the slice.
func view(words []uint64) bitset { return bitset{words: words} }

// setFirst sets bits [0, n) and clears every bit from n up.
func (b bitset) setFirst(n int) {
	for i := range b.words {
		switch {
		case (i+1)*64 <= n:
			b.words[i] = ^uint64(0)
		case i*64 >= n:
			b.words[i] = 0
		default:
			b.words[i] = (1 << (uint(n) & 63)) - 1
		}
	}
}

func (b bitset) set(i int)      { b.words[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b.words[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// intersect performs b &= other in place.
func (b bitset) intersect(other bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

// intersectCount performs b &= other in place and returns the resulting
// population count in the same pass.
func (b bitset) intersectCount(other bitset) int {
	n := 0
	for i := range b.words {
		w := b.words[i] & other.words[i]
		b.words[i] = w
		n += bits.OnesCount64(w)
	}
	return n
}

// subsetOf reports whether every member of b is also in other.
func (b bitset) subsetOf(other bitset) bool {
	for i := range b.words {
		if b.words[i]&^other.words[i] != 0 {
			return false
		}
	}
	return true
}

func (b bitset) clone() bitset {
	out := bitset{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

// forEach calls f for every member in ascending order; f returning false
// stops the iteration.
func (b bitset) forEach(f func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !f(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}
