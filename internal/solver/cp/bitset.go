package cp

import "math/bits"

// bitset is a fixed-capacity set of small non-negative integers, used for CP
// variable domains and for the threshold graph's adjacency rows. Capacity is
// fixed at construction; all binary operations assume equal capacity.
type bitset struct {
	words []uint64
}

func newBitset(capacity int) bitset {
	return bitset{words: make([]uint64, (capacity+63)/64)}
}

func (b bitset) set(i int)      { b.words[i>>6] |= 1 << (uint(i) & 63) }
func (b bitset) clear(i int)    { b.words[i>>6] &^= 1 << (uint(i) & 63) }
func (b bitset) has(i int) bool { return b.words[i>>6]&(1<<(uint(i)&63)) != 0 }

func (b bitset) count() int {
	n := 0
	for _, w := range b.words {
		n += bits.OnesCount64(w)
	}
	return n
}

func (b bitset) empty() bool {
	for _, w := range b.words {
		if w != 0 {
			return false
		}
	}
	return true
}

// intersect performs b &= other in place.
func (b bitset) intersect(other bitset) {
	for i := range b.words {
		b.words[i] &= other.words[i]
	}
}

func (b bitset) clone() bitset {
	out := bitset{words: make([]uint64, len(b.words))}
	copy(out.words, b.words)
	return out
}

func (b bitset) copyFrom(other bitset) {
	copy(b.words, other.words)
}

// forEach calls f for every member in ascending order; f returning false
// stops the iteration.
func (b bitset) forEach(f func(i int) bool) {
	for wi, w := range b.words {
		for w != 0 {
			bit := bits.TrailingZeros64(w)
			if !f(wi<<6 + bit) {
				return
			}
			w &= w - 1
		}
	}
}
