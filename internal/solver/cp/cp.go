// Package cp implements the paper's constraint programming approach to the
// Longest Link Node Deployment Problem (Sect. 4.2). The solver exploits the
// relation between LLNDP and subgraph isomorphism: a deployment of cost at
// most c exists iff the threshold graph Gc — instances joined by links of
// cost <= c — contains a subgraph isomorphic to the communication graph. The
// solver iterates: find any deployment below the current best cost, tighten
// the threshold to the next lower distinct cost value, and repeat until the
// feasibility search proves no cheaper deployment exists. Fewer distinct
// cost values mean fewer iterations, which is why k-means cost clustering
// (Sect. 6.3.1) speeds up CP.
//
// The feasibility search is backtracking with alldifferent forward checking,
// adjacency propagation, dynamic smallest-domain variable selection, and the
// root-level degree/neighbourhood compatibility filtering of Zampelli et
// al. [70] that the paper adopts.
//
// The engine is persistent across the descent (see descent.go): thresholds
// only decrease, so the threshold graphs are tightened incrementally from a
// cost-sorted pair list instead of being rebuilt per iteration, root domains
// and the degree filter are carried forward, and the backtracking search
// (engine.go) runs out of preallocated arenas with zero steady-state
// allocations. Each feasibility check can additionally split the root
// variable's branches across parallel workers.
package cp

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sort"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Solver is the CP solver for LLNDP.
type Solver struct {
	// ClusterK rounds link costs to at most K clusters before searching
	// (<= 0 disables clustering). The reported cost is always evaluated on
	// the original matrix.
	ClusterK int
	// Seed drives the bootstrap sampling.
	Seed int64
	// DisableDegreeFilter turns off root-level compatibility filtering
	// (ablation).
	DisableDegreeFilter bool
	// BootstrapSamples is the number of random deployments used to seed the
	// incumbent; zero selects the paper's 10.
	BootstrapSamples int
	// Workers bounds the goroutines that split one feasibility check's root
	// branches (<= 0 selects GOMAXPROCS). The feasibility verdict at every
	// threshold is independent of the worker count. The split applies only
	// under wall-clock or unlimited budgets: node-budgeted runs always use
	// the sequential engine, so node budgets stay deterministic regardless
	// of machine or worker count, exactly as before.
	Workers int
}

// New returns a CP solver with the given cost-cluster count (<= 0 disables
// clustering).
func New(clusterK int, seed int64) *Solver { return &Solver{ClusterK: clusterK, Seed: seed} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.ClusterK > 0 {
		return fmt.Sprintf("CP(k=%d)", s.ClusterK)
	}
	return "CP"
}

// Solve implements solver.Solver. Only the LongestLink objective is
// supported: the longest-path objective does not decompose into a series of
// subgraph isomorphism feasibility problems (Sect. 4.4), so LPNDP is handled
// by the MIP solver instead.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver: the search additionally
// stops once ctx is cancelled, reporting the incumbent.
func (s *Solver) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if p.Objective != solver.LongestLink {
		return nil, fmt.Errorf("cp: unsupported objective %q (use mip for longest-path)", p.Objective)
	}
	clock := solver.NewClockCtx(ctx, budget)

	// All derived artifacts come from the problem's shared preprocessing
	// cache: the clustered matrix and cost-sorted pair list are computed
	// once per (problem, k) and the bootstrap incumbent once per
	// (samples, seed), no matter how many portfolio members or repeated
	// Solve calls ask for them.
	prep := p.Prep()
	search, pairs, err := prep.Rounded(s.ClusterK)
	if err != nil {
		return nil, err
	}

	nboot := s.BootstrapSamples
	if nboot == 0 {
		nboot = 10
	}
	best, _ := prep.Bootstrap(nboot, s.Seed)
	res := &solver.Result{
		Deployment: best,
		Cost:       p.Cost(best),
	}
	res.Trace = append(res.Trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: res.Cost})

	thresholds := distinctCosts(pairs)
	if p.Graph.Weighted() {
		// The objective values live on the weighted scale: every distinct
		// weight class stretches the raw link costs, so the threshold
		// ladder is the union of w*CL over all weight classes.
		thresholds = weightedThresholds(thresholds, p.Graph)
	}
	bestSearchCost := core.LongestLink(best, p.Graph, search)

	workers := s.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if budget.Nodes > 0 {
		// Node-budgeted checks always run sequentially (see
		// descent.feasible); don't allocate engines that can never run.
		workers = 1
	}
	d := newDescent(p, pairs, workers, !s.DisableDegreeFilter && !p.Graph.Weighted())

	for {
		// Next threshold: the largest distinct cost strictly below the
		// incumbent's cost under the search matrix.
		idx := sort.SearchFloat64s(thresholds, bestSearchCost) - 1
		if idx < 0 {
			// No lower threshold exists; with exact costs the incumbent is
			// optimal. Clustering approximates the objective, so optimality
			// holds only for the rounded costs.
			res.Optimal = s.ClusterK <= 0
			break
		}
		if clock.Expired() {
			break
		}
		c := thresholds[idx]
		feasible, dep, exhausted := d.feasible(c, clock)
		if feasible {
			best = dep
			bestSearchCost = core.LongestLink(best, p.Graph, search)
			res.Deployment = best
			res.Cost = p.Cost(best)
			res.Trace = append(res.Trace, solver.TracePoint{
				Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: res.Cost,
			})
			continue
		}
		if exhausted {
			// Proved no deployment of cost <= c exists: incumbent optimal
			// (under the search matrix).
			res.Optimal = s.ClusterK <= 0
		}
		break
	}
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// weightedThresholds returns the sorted distinct values of w*CL over all
// weight classes w and the distinct raw link costs CL, by sort+compact — a
// float-keyed map would hash-box every product and return them unordered.
func weightedThresholds(raw []float64, g *core.Graph) []float64 {
	ws := g.DistinctWeights()
	out := make([]float64, 0, len(raw)*len(ws))
	for _, w := range ws {
		for _, v := range raw {
			out = append(out, w*v)
		}
	}
	sort.Float64s(out)
	return slices.Compact(out)
}
