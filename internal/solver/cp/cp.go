// Package cp implements the paper's constraint programming approach to the
// Longest Link Node Deployment Problem (Sect. 4.2). The solver exploits the
// relation between LLNDP and subgraph isomorphism: a deployment of cost at
// most c exists iff the threshold graph Gc — instances joined by links of
// cost <= c — contains a subgraph isomorphic to the communication graph. The
// solver iterates: find any deployment below the current best cost, tighten
// the threshold to the next lower distinct cost value, and repeat until the
// feasibility search proves no cheaper deployment exists. Fewer distinct
// cost values mean fewer iterations, which is why k-means cost clustering
// (Sect. 6.3.1) speeds up CP.
//
// The feasibility search is backtracking with alldifferent forward checking,
// adjacency propagation, dynamic smallest-domain variable selection, and the
// root-level degree/neighbourhood compatibility filtering of Zampelli et
// al. [70] that the paper adopts.
package cp

import (
	"context"
	"fmt"
	"math/rand"
	"sort"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// Solver is the CP solver for LLNDP.
type Solver struct {
	// ClusterK rounds link costs to at most K clusters before searching
	// (<= 0 disables clustering). The reported cost is always evaluated on
	// the original matrix.
	ClusterK int
	// Seed drives the bootstrap sampling.
	Seed int64
	// DisableDegreeFilter turns off root-level compatibility filtering
	// (ablation).
	DisableDegreeFilter bool
	// BootstrapSamples is the number of random deployments used to seed the
	// incumbent; zero selects the paper's 10.
	BootstrapSamples int
}

// New returns a CP solver with the given cost-cluster count (<= 0 disables
// clustering).
func New(clusterK int, seed int64) *Solver { return &Solver{ClusterK: clusterK, Seed: seed} }

// Name implements solver.Solver.
func (s *Solver) Name() string {
	if s.ClusterK > 0 {
		return fmt.Sprintf("CP(k=%d)", s.ClusterK)
	}
	return "CP"
}

// Solve implements solver.Solver. Only the LongestLink objective is
// supported: the longest-path objective does not decompose into a series of
// subgraph isomorphism feasibility problems (Sect. 4.4), so LPNDP is handled
// by the MIP solver instead.
func (s *Solver) Solve(p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	return s.SolveContext(context.Background(), p, budget)
}

// SolveContext implements solver.ContextSolver: the search additionally
// stops once ctx is cancelled, reporting the incumbent.
func (s *Solver) SolveContext(ctx context.Context, p *solver.Problem, budget solver.Budget) (*solver.Result, error) {
	if p.Objective != solver.LongestLink {
		return nil, fmt.Errorf("cp: unsupported objective %q (use mip for longest-path)", p.Objective)
	}
	clock := solver.NewClockCtx(ctx, budget)

	search := p.Costs
	if s.ClusterK > 0 {
		rounded, err := cluster.RoundCostMatrix(p.Costs, s.ClusterK)
		if err != nil {
			return nil, err
		}
		search = rounded
	}

	nboot := s.BootstrapSamples
	if nboot == 0 {
		nboot = 10
	}
	rng := rand.New(rand.NewSource(s.Seed))
	best, _ := solver.Bootstrap(p, nboot, rng)
	res := &solver.Result{
		Deployment: best,
		Cost:       p.Cost(best),
	}
	res.Trace = append(res.Trace, solver.TracePoint{Elapsed: clock.Elapsed(), Cost: res.Cost})

	thresholds := search.DistinctValues()
	if p.Graph.Weighted() {
		// The objective values live on the weighted scale: every distinct
		// weight class stretches the raw link costs, so the threshold
		// ladder is the union of w*CL over all weight classes.
		thresholds = weightedThresholds(search, p.Graph)
	}
	bestSearchCost := core.LongestLink(best, p.Graph, search)

	for {
		// Next threshold: the largest distinct cost strictly below the
		// incumbent's cost under the search matrix.
		idx := sort.SearchFloat64s(thresholds, bestSearchCost) - 1
		if idx < 0 {
			// No lower threshold exists; with exact costs the incumbent is
			// optimal. Clustering approximates the objective, so optimality
			// holds only for the rounded costs.
			res.Optimal = s.ClusterK <= 0
			break
		}
		c := thresholds[idx]
		feasible, d, exhausted := s.feasible(p, search, c, clock)
		if feasible {
			best = d
			bestSearchCost = core.LongestLink(best, p.Graph, search)
			res.Deployment = best
			res.Cost = p.Cost(best)
			res.Trace = append(res.Trace, solver.TracePoint{
				Elapsed: clock.Elapsed(), Nodes: clock.Nodes(), Cost: res.Cost,
			})
			continue
		}
		if exhausted {
			// Proved no deployment of cost <= c exists: incumbent optimal
			// (under the search matrix).
			res.Optimal = s.ClusterK <= 0
		}
		break
	}
	res.Nodes = clock.Nodes()
	res.Elapsed = clock.Elapsed()
	return res, nil
}

// feasible searches for a deployment whose every communication edge e maps
// to a link of weighted cost w(e)*CL <= c. For unweighted graphs there is a
// single threshold adjacency; a weighted graph gets one adjacency per
// distinct weight class, with edge (i, j) consulting the class of its own
// weight (threshold c/w). It returns the deployment if found; exhausted
// reports whether the search space was fully explored (as opposed to the
// budget running out).
func (s *Solver) feasible(p *solver.Problem, search *core.CostMatrix, c float64, clock *solver.Clock) (ok bool, d core.Deployment, exhausted bool) {
	n := p.NumNodes()
	m := p.NumInstances()
	g := p.Graph

	weights := []float64{1}
	if g.Weighted() {
		weights = g.DistinctWeights()
	}
	classOf := make(map[float64]int, len(weights))
	for ci, w := range weights {
		classOf[w] = ci
	}

	// Threshold graph adjacency per weight class: adjOut[ci][j] = instances
	// reachable from j by a link of cost <= c/weights[ci].
	adjOut := make([][]bitset, len(weights))
	adjIn := make([][]bitset, len(weights))
	for ci, w := range weights {
		limit := c / w
		adjOut[ci] = make([]bitset, m)
		adjIn[ci] = make([]bitset, m)
		for j := 0; j < m; j++ {
			adjOut[ci][j] = newBitset(m)
			adjIn[ci][j] = newBitset(m)
		}
		for j := 0; j < m; j++ {
			for k := 0; k < m; k++ {
				if j != k && search.At(j, k) <= limit {
					adjOut[ci][j].set(k)
					adjIn[ci][k].set(j)
				}
			}
		}
	}

	// Per-adjacency-slot weight classes for the propagation loops.
	outClass := make([][]int, n)
	inClass := make([][]int, n)
	for v := 0; v < n; v++ {
		for _, w := range g.Out(v) {
			outClass[v] = append(outClass[v], classOf[g.Weight(v, w)])
		}
		for _, u := range g.In(v) {
			inClass[v] = append(inClass[v], classOf[g.Weight(u, v)])
		}
	}

	// Root domains with compatibility filtering. The degree filter assumes
	// a single threshold graph, so it only applies to unweighted graphs.
	domains := make([]bitset, n)
	for i := 0; i < n; i++ {
		domains[i] = newBitset(m)
		for j := 0; j < m; j++ {
			domains[i].set(j)
		}
	}
	if !s.DisableDegreeFilter && !g.Weighted() {
		filterByDegree(g, adjOut[0], adjIn[0], domains)
		if anyEmpty(domains) {
			return false, nil, true
		}
	}

	// Value-ordering heuristic: instances with more threshold-graph links
	// (in the loosest class) first — they are likeliest to extend a partial
	// embedding of a dense communication graph.
	loosest := 0
	for ci, w := range weights {
		if w < weights[loosest] {
			loosest = ci
		}
	}
	deg := make([]int, m)
	for j := 0; j < m; j++ {
		deg[j] = adjOut[loosest][j].count() + adjIn[loosest][j].count()
	}
	e := &engine{
		g:        g,
		n:        n,
		m:        m,
		adjOut:   adjOut,
		adjIn:    adjIn,
		outClass: outClass,
		inClass:  inClass,
		instDeg:  deg,
		domains:  domains,
		assigned: make([]int, n),
		clock:    clock,
	}
	for i := range e.assigned {
		e.assigned[i] = -1
	}
	if e.search(0) {
		return true, append(core.Deployment(nil), e.assigned...), false
	}
	return false, nil, !e.limitHit
}

// weightedThresholds returns the sorted distinct values of w*CL over all
// weight classes w and raw link costs CL.
func weightedThresholds(search *core.CostMatrix, g *core.Graph) []float64 {
	raw := search.DistinctValues()
	seen := make(map[float64]struct{})
	for _, w := range g.DistinctWeights() {
		for _, v := range raw {
			seen[w*v] = struct{}{}
		}
	}
	out := make([]float64, 0, len(seen))
	for v := range seen {
		out = append(out, v)
	}
	sort.Float64s(out)
	return out
}

// filterByDegree removes from each node's domain every instance whose
// threshold-graph degrees cannot host the node: the instance needs at least
// the node's out- and in-degree, and — one refinement round, following the
// labeling of [70] — its neighbours' degree profile must dominate the
// node's neighbours' degree profile.
func filterByDegree(g *core.Graph, adjOut, adjIn []bitset, domains []bitset) {
	n := g.NumNodes()
	m := len(adjOut)
	// Instance degrees.
	instOut := make([]int, m)
	instIn := make([]int, m)
	for j := 0; j < m; j++ {
		instOut[j] = adjOut[j].count()
		instIn[j] = adjIn[j].count()
	}
	// Node and instance neighbour-degree profiles (total degree, sorted
	// descending) for the refinement round.
	nodeProfile := make([][]int, n)
	for i := 0; i < n; i++ {
		var prof []int
		for _, w := range g.Out(i) {
			prof = append(prof, g.Degree(w))
		}
		for _, w := range g.In(i) {
			prof = append(prof, g.Degree(w))
		}
		sort.Sort(sort.Reverse(sort.IntSlice(prof)))
		nodeProfile[i] = prof
	}
	instProfile := make([][]int, m)
	for j := 0; j < m; j++ {
		var prof []int
		adjOut[j].forEach(func(k int) bool {
			prof = append(prof, instOut[k]+instIn[k])
			return true
		})
		adjIn[j].forEach(func(k int) bool {
			prof = append(prof, instOut[k]+instIn[k])
			return true
		})
		sort.Sort(sort.Reverse(sort.IntSlice(prof)))
		instProfile[j] = prof
	}
	for i := 0; i < n; i++ {
		needOut := g.OutDegree(i)
		needIn := g.InDegree(i)
		domains[i].forEach(func(j int) bool {
			if instOut[j] < needOut || instIn[j] < needIn ||
				!dominates(instProfile[j], nodeProfile[i]) {
				domains[i].clear(j)
			}
			return true
		})
	}
}

// dominates reports whether the instance profile can host the node profile:
// elementwise a[k] >= b[k] over b's length (both sorted descending).
func dominates(a, b []int) bool {
	if len(a) < len(b) {
		return false
	}
	for k := range b {
		if a[k] < b[k] {
			return false
		}
	}
	return true
}

func anyEmpty(domains []bitset) bool {
	for _, d := range domains {
		if d.empty() {
			return true
		}
	}
	return false
}

// engine is the backtracking feasibility search.
type engine struct {
	g        *core.Graph
	n, m     int
	adjOut   [][]bitset // per weight class
	adjIn    [][]bitset
	outClass [][]int // weight class per out-adjacency slot
	inClass  [][]int // weight class per in-adjacency slot
	instDeg  []int
	domains  []bitset
	assigned []int
	clock    *solver.Clock
	limitHit bool
	valBuf   [][]int // per-depth value-ordering scratch
}

// search assigns the remaining variables; depth counts assigned variables.
func (e *engine) search(depth int) bool {
	if depth == e.n {
		return true
	}
	if e.clock.Tick() {
		e.limitHit = true
		return false
	}
	i := e.pickVar()
	if i < 0 {
		return false
	}
	// Order candidate instances by threshold-graph degree, densest first.
	for len(e.valBuf) <= depth {
		e.valBuf = append(e.valBuf, make([]int, 0, e.m))
	}
	values := e.valBuf[depth][:0]
	e.domains[i].forEach(func(j int) bool {
		values = append(values, j)
		return true
	})
	sort.SliceStable(values, func(a, b int) bool {
		return e.instDeg[values[a]] > e.instDeg[values[b]]
	})
	e.valBuf[depth] = values

	for _, j := range values {
		saved := e.assignAndPropagate(i, j)
		if saved != nil {
			if e.search(depth + 1) {
				return true
			}
			e.undo(i, saved)
		}
		if e.limitHit {
			return false
		}
	}
	return false
}

// pickVar selects the unassigned variable with the smallest domain,
// tie-breaking on higher graph degree (most constrained first).
func (e *engine) pickVar() int {
	best := -1
	bestSize := 0
	bestDeg := -1
	for i := 0; i < e.n; i++ {
		if e.assigned[i] >= 0 {
			continue
		}
		size := e.domains[i].count()
		deg := e.g.Degree(i)
		if best < 0 || size < bestSize || (size == bestSize && deg > bestDeg) {
			best, bestSize, bestDeg = i, size, deg
		}
	}
	return best
}

// savedDomain is a trail entry for backtracking.
type savedDomain struct {
	v   int
	dom bitset
}

// assignAndPropagate assigns node i to instance j and runs forward checking:
// j leaves every other domain (alldifferent), and unassigned neighbours of i
// shrink to instances adjacent to j in the right direction. It returns the
// trail for undo, or nil if propagation wiped out a domain (the assignment
// is rolled back internally in that case).
func (e *engine) assignAndPropagate(i, j int) []savedDomain {
	e.assigned[i] = j
	var trail []savedDomain
	touched := make(map[int]bool, 8)
	save := func(v int) {
		if !touched[v] {
			touched[v] = true
			trail = append(trail, savedDomain{v: v, dom: e.domains[v].clone()})
		}
	}
	wipeout := false
	prune := func(v int, allowed bitset) {
		if wipeout || e.assigned[v] >= 0 {
			return
		}
		save(v)
		e.domains[v].intersect(allowed)
		e.domains[v].clear(j)
		if e.domains[v].empty() {
			wipeout = true
		}
	}
	// Alldifferent: remove j everywhere.
	for v := 0; v < e.n; v++ {
		if v == i || e.assigned[v] >= 0 || !e.domains[v].has(j) {
			continue
		}
		save(v)
		e.domains[v].clear(j)
		if e.domains[v].empty() {
			wipeout = true
			break
		}
	}
	if !wipeout {
		for k, w := range e.g.Out(i) {
			prune(w, e.adjOut[e.outClass[i][k]][j])
		}
	}
	if !wipeout {
		for k, w := range e.g.In(i) {
			prune(w, e.adjIn[e.inClass[i][k]][j])
		}
	}
	if wipeout {
		e.undo(i, trail)
		return nil
	}
	if trail == nil {
		trail = []savedDomain{} // non-nil marker for a successful assignment
	}
	return trail
}

// undo rolls back an assignment and its propagation trail.
func (e *engine) undo(i int, trail []savedDomain) {
	e.assigned[i] = -1
	for k := len(trail) - 1; k >= 0; k-- {
		e.domains[trail[k].v].copyFrom(trail[k].dom)
	}
}
