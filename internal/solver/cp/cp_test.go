package cp

import (
	"testing"

	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

func TestRejectsLongestPath(t *testing.T) {
	p, _, err := solvertest.PlantedLP(4, 2, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(0, 1).Solve(p, solver.Budget{Nodes: 100}); err == nil {
		t.Fatal("CP accepted longest-path objective")
	}
}

func TestFindsPlantedOptimum(t *testing.T) {
	p, optCeil, err := solvertest.PlantedLL(3, 3, 4, 0.1, 1.0, 2)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(0, 3).Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatalf("invalid deployment: %v", err)
	}
	if res.Cost > optCeil {
		t.Fatalf("cost %g, want <= %g", res.Cost, optCeil)
	}
	if !res.Optimal {
		t.Fatal("optimality not proven on a small planted instance")
	}
}

func TestProvenOptimalMatchesExhaustive(t *testing.T) {
	// Tiny instance: 4 nodes on 5 instances; brute-force all injections.
	g, err := core.Mesh2D(2, 2)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 5, solver.LongestLink, 3)
	if err != nil {
		t.Fatal(err)
	}
	want := bruteForceLL(p)
	res, err := New(0, 4).Solve(p, solver.Budget{Nodes: 10_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("optimality not proven")
	}
	if res.Cost != want {
		t.Fatalf("CP optimum %g != brute force %g", res.Cost, want)
	}
}

// bruteForceLL enumerates all injective deployments.
func bruteForceLL(p *solver.Problem) float64 {
	n, s := p.NumNodes(), p.NumInstances()
	d := make(core.Deployment, n)
	used := make([]bool, s)
	best := -1.0
	var rec func(i int)
	rec = func(i int) {
		if i == n {
			c := p.Cost(d)
			if best < 0 || c < best {
				best = c
			}
			return
		}
		for j := 0; j < s; j++ {
			if used[j] {
				continue
			}
			used[j] = true
			d[i] = j
			rec(i + 1)
			used[j] = false
		}
	}
	rec(0)
	return best
}

func TestClusteringTradesPrecisionForIterations(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 12, solver.LongestLink, 5)
	if err != nil {
		t.Fatal(err)
	}
	exact, err := New(0, 7).Solve(p, solver.Budget{Nodes: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	k5, err := New(5, 7).Solve(p, solver.Budget{Nodes: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	// Coarse clusters cannot beat the exact optimum, and the exact solver
	// must prove optimality here.
	if !exact.Optimal {
		t.Fatal("exact CP failed to prove optimality")
	}
	if k5.Cost < exact.Cost-1e-12 {
		t.Fatalf("k=5 cost %g beats exact optimum %g", k5.Cost, exact.Cost)
	}
	if err := k5.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
	// Clustered search must never claim exact optimality.
	if k5.Optimal {
		t.Fatal("clustered CP claimed exact optimality")
	}
}

func TestBudgetTruncationStillValid(t *testing.T) {
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 20, solver.LongestLink, 9)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(20, 11).Solve(p, solver.Budget{Nodes: 200})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatalf("budget-truncated deployment invalid: %v", err)
	}
	if res.Optimal {
		t.Fatal("claimed optimality under a 200-node budget")
	}
}

func TestTraceMonotone(t *testing.T) {
	g, err := core.Mesh2D(3, 4)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 16, solver.LongestLink, 13)
	if err != nil {
		t.Fatal(err)
	}
	res, err := New(10, 15).Solve(p, solver.Budget{Nodes: 500_000})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) == 0 {
		t.Fatal("no trace")
	}
	for i := 1; i < len(res.Trace); i++ {
		if res.Trace[i].Cost > res.Trace[i-1].Cost+1e-12 {
			t.Fatalf("trace not monotone: %v", res.Trace)
		}
	}
	if res.Trace[len(res.Trace)-1].Cost != res.Cost {
		t.Fatal("trace does not end at final cost")
	}
}

func TestDegreeFilterSoundness(t *testing.T) {
	// With and without the degree filter the proven optimum must agree.
	g, err := core.Mesh2D(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 8, solver.LongestLink, 17)
	if err != nil {
		t.Fatal(err)
	}
	with, err := New(0, 19).Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	without := &Solver{ClusterK: 0, Seed: 19, DisableDegreeFilter: true}
	wo, err := without.Solve(p, solver.Budget{Nodes: 5_000_000})
	if err != nil {
		t.Fatal(err)
	}
	if !with.Optimal || !wo.Optimal {
		t.Fatal("optimality not proven in both configurations")
	}
	if with.Cost != wo.Cost {
		t.Fatalf("degree filter changed the optimum: %g vs %g", with.Cost, wo.Cost)
	}
}

func TestDeterministic(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 14, solver.LongestLink, 21)
	if err != nil {
		t.Fatal(err)
	}
	a, err := New(10, 23).Solve(p, solver.Budget{Nodes: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(10, 23).Solve(p, solver.Budget{Nodes: 100_000})
	if err != nil {
		t.Fatal(err)
	}
	if a.Cost != b.Cost {
		t.Fatalf("CP not deterministic: %g vs %g", a.Cost, b.Cost)
	}
}

func TestBitset(t *testing.T) {
	b := newBitset(130)
	b.set(0)
	b.set(64)
	b.set(129)
	if !b.has(0) || !b.has(64) || !b.has(129) || b.has(1) {
		t.Fatal("set/has broken")
	}
	if b.count() != 3 {
		t.Fatalf("count = %d, want 3", b.count())
	}
	var got []int
	b.forEach(func(i int) bool { got = append(got, i); return true })
	if len(got) != 3 || got[0] != 0 || got[1] != 64 || got[2] != 129 {
		t.Fatalf("forEach = %v", got)
	}
	c := b.clone()
	c.clear(64)
	if !b.has(64) || c.has(64) {
		t.Fatal("clone shares storage")
	}
	other := newBitset(130)
	other.set(0)
	b.intersect(other)
	if b.count() != 1 || !b.has(0) {
		t.Fatal("intersect broken")
	}
	if other.empty() {
		t.Fatal("empty() wrong")
	}
	if !newBitset(130).empty() {
		t.Fatal("fresh bitset not empty")
	}
}

func TestBitsetForEachEarlyStop(t *testing.T) {
	b := newBitset(10)
	for i := 0; i < 10; i++ {
		b.set(i)
	}
	n := 0
	b.forEach(func(i int) bool { n++; return n < 3 })
	if n != 3 {
		t.Fatalf("early stop visited %d", n)
	}
}
