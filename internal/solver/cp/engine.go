package cp

import (
	"sync/atomic"

	"cloudia/internal/core"
	"cloudia/internal/solver"
)

// engine is one backtracking feasibility searcher. All of its state — the
// domain words, the incremental domain sizes, and the per-depth trail arena —
// is allocated once at construction and reused across every feasibility
// check of the descent, so steady-state search performs zero allocations.
// Each parallel worker owns one engine; the descent's threshold graphs and
// value order are shared read-only.
type engine struct {
	d     *descent
	clock *solver.Clock

	// Parallel-branch coordination. winner (nil when sequential) holds the
	// lowest branch index that found an embedding; a branch aborts when a
	// strictly lower branch has won, and never because of a higher one, so
	// every branch at or below the eventual winner runs deterministically.
	winner *atomic.Int32
	branch int32

	domWords []uint64 // n * wpd: current domain of every variable
	dom      []bitset // views into domWords
	domSize  []int32  // |dom[i]|, maintained incrementally
	assigned []int32  // instance per variable, -1 if unassigned

	// Bucketed domain-size index: bCnt[s] counts the unassigned variables
	// whose current domain size is s, maintained by the same incremental
	// updates that keep domSize exact (two counter bumps per size change —
	// anything heavier, like per-variable bucket lists, costs more in the
	// alldifferent loop than pickVar ever saved). pickVar walks bCnt up
	// from the bMin hint to find the smallest populated size, then resolves
	// the degree tie-break by walking the descent's static degree-ranked
	// variable order and returning the first variable of that size — the
	// smallest-domain variable is usually high-degree (that is why the
	// heuristic tie-breaks on degree), so the walk exits within a few
	// entries instead of scanning all n variables per search node (the
	// scan was ~25% of BenchmarkCPThresholdDescent). bMin is a lower
	// bound: size drops below it lower it; pickVar advances it past
	// drained counts.
	bCnt []int32 // per size s in [0, m]: unassigned variables with |dom| = s
	bMin int32

	// scanPick selects the pre-index O(n) pickVar scan; it exists so the
	// equivalence property test can race both selectors on one descent.
	scanPick bool

	// Trail arenas; depth d's entries live in slots [d*n, d*n+len). The
	// alldifferent constraint removes one known bit (the depth's assigned
	// instance) from up to n-1 domains per assignment, so those removals are
	// logged as bare variable indices in bitVar instead of full domain
	// snapshots; only adjacency intersections snapshot domain words. savedAt
	// stamps the epoch (one per assignment) at which a variable's domain was
	// last snapshotted, so each assignment snapshots a variable at most once
	// no matter how many adjacency constraints touch it.
	bitVar    []int32
	bitLen    []int32
	snapVar   []int32
	snapSize  []int32
	snapWords []uint64
	snapLen   []int32
	savedAt   []int64
	epoch     int64

	limitHit bool
}

func newEngine(d *descent) *engine {
	n := d.n
	e := &engine{
		d:         d,
		domWords:  make([]uint64, n*d.wpd),
		dom:       make([]bitset, n),
		domSize:   make([]int32, n),
		assigned:  make([]int32, n),
		bitVar:    make([]int32, n*n),
		bitLen:    make([]int32, n),
		snapVar:   make([]int32, n*n),
		snapSize:  make([]int32, n*n),
		snapWords: make([]uint64, n*n*d.wpd),
		snapLen:   make([]int32, n),
		savedAt:   make([]int64, n),
		bCnt:      make([]int32, d.m+1),
	}
	for i := 0; i < n; i++ {
		e.dom[i] = view(e.domWords[i*d.wpd : (i+1)*d.wpd])
	}
	return e
}

// reset loads the descent's current root domains, clearing any leftover
// search state from the previous check, and rebuilds the bucket index.
func (e *engine) reset() {
	copy(e.domWords, e.d.rootWords)
	copy(e.domSize, e.d.rootSize)
	for i := range e.assigned {
		e.assigned[i] = -1
	}
	for s := range e.bCnt {
		e.bCnt[s] = 0
	}
	e.bMin = int32(e.d.m)
	for i := 0; i < e.d.n; i++ {
		s := e.domSize[i]
		e.bCnt[s]++
		if s < e.bMin {
			e.bMin = s
		}
	}
	e.limitHit = false
}

// bucketMove re-files one unassigned variable's count from size from to
// size to, lowering the minimum hint when to undercuts it.
func (e *engine) bucketMove(from, to int32) {
	e.bCnt[from]--
	e.bCnt[to]++
	if to < e.bMin {
		e.bMin = to
	}
}

// run explores the root branches vals[start], vals[start+stride], ... and
// reports whether an embedding was found; on success e.assigned holds it.
func (e *engine) run(rootVar int, vals []int32, start, stride int, clock *solver.Clock) bool {
	e.clock = clock
	e.reset()
	if e.clock.Tick() {
		e.limitHit = true
		return false
	}
	for idx := start; idx < len(vals); idx += stride {
		if e.cancelled() {
			e.limitHit = true
			return false
		}
		if e.assign(rootVar, int(vals[idx]), 0) {
			if e.search(1) {
				return true
			}
			e.undo(rootVar, 0)
		}
		if e.limitHit {
			return false
		}
	}
	return false
}

// cancelled reports whether a strictly lower-indexed branch already won.
func (e *engine) cancelled() bool {
	return e.winner != nil && e.winner.Load() < e.branch
}

// search assigns the remaining variables; depth counts assigned variables.
func (e *engine) search(depth int) bool {
	if depth == e.d.n {
		return true
	}
	if e.clock.Tick() || e.cancelled() {
		e.limitHit = true
		return false
	}
	i := e.pickVar()
	dom := e.dom[i]
	for _, v := range e.d.valOrder {
		j := int(v)
		if !dom.has(j) {
			continue
		}
		if e.assign(i, j, depth) {
			if e.search(depth + 1) {
				return true
			}
			e.undo(i, depth)
		}
		if e.limitHit {
			return false
		}
	}
	return false
}

// pickVar selects the unassigned variable with the smallest domain,
// tie-breaking on higher graph degree then lower index (most constrained
// first) — exactly the choice the pre-index O(n) scan made. The bucket
// index narrows the candidates to the smallest non-empty bucket, so the
// cost per search node is that bucket's population, not n.
func (e *engine) pickVar() int {
	if e.scanPick {
		return e.pickVarScan()
	}
	s := e.bMin
	for e.bCnt[s] == 0 {
		s++
	}
	e.bMin = s
	for _, v := range e.d.pickOrder {
		if e.assigned[v] < 0 && e.domSize[v] == s {
			return int(v)
		}
	}
	return -1 // unreachable while any variable is unassigned
}

// pickVarScan is the pre-index selector, kept for the equivalence property
// test: both selectors must pick the same variable at every node.
func (e *engine) pickVarScan() int {
	best, bestDeg := -1, -1
	var bestSize int32
	for i := 0; i < e.d.n; i++ {
		if e.assigned[i] >= 0 {
			continue
		}
		size := e.domSize[i]
		deg := e.d.nodeDeg[i]
		if best < 0 || size < bestSize || (size == bestSize && deg > bestDeg) {
			best, bestSize, bestDeg = i, size, deg
		}
	}
	return best
}

// snapSave snapshots variable v's domain into depth's snapshot arena slot,
// at most once per assignment epoch.
func (e *engine) snapSave(v, depth int) {
	if e.savedAt[v] == e.epoch {
		return
	}
	e.savedAt[v] = e.epoch
	n, wpd := e.d.n, e.d.wpd
	slot := depth*n + int(e.snapLen[depth])
	e.snapVar[slot] = int32(v)
	e.snapSize[slot] = e.domSize[v]
	copy(e.snapWords[slot*wpd:(slot+1)*wpd], e.domWords[v*wpd:(v+1)*wpd])
	e.snapLen[depth]++
}

// assign maps variable i to instance j and runs forward checking: j leaves
// every other open domain (alldifferent), and unassigned neighbours of i
// shrink to instances adjacent to j in the right weight class and direction.
// It reports whether the assignment survived propagation; a wiped-out domain
// rolls the trail back internally.
func (e *engine) assign(i, j, depth int) bool {
	e.bCnt[e.domSize[i]]-- // i leaves the unassigned pool
	e.assigned[i] = int32(j)
	e.epoch++
	e.bitLen[depth] = 0
	e.snapLen[depth] = 0
	n, wpd := e.d.n, e.d.wpd
	wipe := false

	// Alldifferent: remove j from every open domain. The removal is logged
	// as a bare variable index — undo knows which bit to put back.
	jw, jb := j>>6, uint64(1)<<(uint(j)&63)
	for v := 0; v < n; v++ {
		if v == i || e.assigned[v] >= 0 || e.domWords[v*wpd+jw]&jb == 0 {
			continue
		}
		e.bitVar[depth*n+int(e.bitLen[depth])] = int32(v)
		e.bitLen[depth]++
		e.domWords[v*wpd+jw] &^= jb
		e.domSize[v]--
		e.bucketMove(e.domSize[v]+1, e.domSize[v])
		if e.domSize[v] == 0 {
			wipe = true
			break
		}
	}
	// Adjacency propagation, per edge direction and weight class. j is
	// already gone from every open domain, so intersecting is enough; a
	// domain already inside the allowed set is left untouched (no snapshot).
	if !wipe {
		for k, w := range e.d.g.Out(i) {
			if e.assigned[w] >= 0 {
				continue
			}
			allowed := e.d.adjOut[e.d.outClass[i][k]].row(j)
			nd := e.dom[w]
			if nd.subsetOf(allowed) {
				continue
			}
			e.snapSave(w, depth)
			sz := int32(nd.intersectCount(allowed))
			e.bucketMove(e.domSize[w], sz)
			e.domSize[w] = sz
			if sz == 0 {
				wipe = true
				break
			}
		}
	}
	if !wipe {
		for k, u := range e.d.g.In(i) {
			if e.assigned[u] >= 0 {
				continue
			}
			allowed := e.d.adjIn[e.d.inClass[i][k]].row(j)
			nd := e.dom[u]
			if nd.subsetOf(allowed) {
				continue
			}
			e.snapSave(u, depth)
			sz := int32(nd.intersectCount(allowed))
			e.bucketMove(e.domSize[u], sz)
			e.domSize[u] = sz
			if sz == 0 {
				wipe = true
				break
			}
		}
	}
	if wipe {
		e.undo(i, depth)
		return false
	}
	return true
}

// undo rolls back an assignment and its propagation trail: snapshots are
// restored first (they were taken after the alldifferent removals of the
// same epoch), then the alldifferent bit goes back into every logged domain.
func (e *engine) undo(i, depth int) {
	n, wpd := e.d.n, e.d.wpd
	for k := int(e.snapLen[depth]) - 1; k >= 0; k-- {
		slot := depth*n + k
		v := int(e.snapVar[slot])
		copy(e.domWords[v*wpd:(v+1)*wpd], e.snapWords[slot*wpd:(slot+1)*wpd])
		e.bucketMove(e.domSize[v], e.snapSize[slot])
		e.domSize[v] = e.snapSize[slot]
	}
	e.snapLen[depth] = 0
	j := int(e.assigned[i])
	jw, jb := j>>6, uint64(1)<<(uint(j)&63)
	for k := int(e.bitLen[depth]) - 1; k >= 0; k-- {
		v := int(e.bitVar[depth*n+k])
		e.domWords[v*wpd+jw] |= jb
		e.domSize[v]++
		e.bucketMove(e.domSize[v]-1, e.domSize[v])
	}
	e.bitLen[depth] = 0
	e.assigned[i] = -1
	e.bCnt[e.domSize[i]]++ // i rejoins the unassigned pool
	if e.domSize[i] < e.bMin {
		e.bMin = e.domSize[i]
	}
}

// deployment copies the found embedding out of the engine.
func (e *engine) deployment() core.Deployment {
	out := make(core.Deployment, len(e.assigned))
	for i, v := range e.assigned {
		out[i] = int(v)
	}
	return out
}
