package cp

import (
	"testing"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

// benchDescent builds a 45-node / 50-instance descent (k=20 cost clusters,
// the paper's default) and locates the lowest feasible threshold with a
// bounded probe descent. It returns a fresh descent settled exactly at that
// threshold, ready for steady-state search benchmarking.
func benchDescent(b *testing.B, workers int) (*descent, float64) {
	b.Helper()
	g, err := core.Mesh2D(5, 9)
	if err != nil {
		b.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 50, solver.LongestLink, 3)
	if err != nil {
		b.Fatal(err)
	}
	_, probePairs, err := cluster.RoundCostMatrixPairs(p.Costs, 20)
	if err != nil {
		b.Fatal(err)
	}
	thresholds := distinctCosts(probePairs)
	probe := newDescent(p, probePairs, 1, true)
	probeClock := solver.NewClock(solver.Budget{Nodes: 2_000_000})
	best := -1
	for idx := len(thresholds) - 1; idx >= 0; idx-- {
		ok, _, _ := probe.feasible(thresholds[idx], probeClock)
		if !ok {
			break
		}
		best = idx
	}
	if best < 0 {
		b.Fatal("no feasible threshold found")
	}
	_, pairs, err := cluster.RoundCostMatrixPairs(p.Costs, 20)
	if err != nil {
		b.Fatal(err)
	}
	d := newDescent(p, pairs, workers, true)
	c := thresholds[best]
	if ok, _, _ := d.feasible(c, solver.NewClock(solver.Budget{Nodes: 2_000_000})); !ok {
		b.Fatal("settling check not feasible")
	}
	return d, c
}

// BenchmarkCPSearchNode measures steady-state backtracking: one complete
// feasibility search per op at the tightest feasible threshold, on the
// persistent engine. Everything — domains, trail arenas, value order — is
// preallocated, so this must report 0 allocs/op.
func BenchmarkCPSearchNode(b *testing.B) {
	d, _ := benchDescent(b, 1)
	rootVar := d.pickRoot()
	vals := d.rootValues(rootVar)
	eng := d.engines[0]
	eng.winner = nil
	clock := solver.NewClock(solver.Budget{})
	b.ReportAllocs()
	b.ResetTimer()
	start := clock.Nodes()
	for i := 0; i < b.N; i++ {
		if !eng.run(rootVar, vals, 0, 1, clock) {
			b.Fatal("expected feasible search")
		}
	}
	b.StopTimer()
	b.ReportMetric(float64(clock.Nodes()-start)/float64(b.N), "nodes/op")
}

// BenchmarkCPTighten measures one full incremental descent of the threshold
// graphs: every distinct threshold from the top of the ladder to the bottom.
// The old engine paid an O(m^2)-per-weight-class rebuild at every threshold;
// the persistent descent clears each adjacency bit exactly once in total.
func BenchmarkCPTighten(b *testing.B) {
	g, err := core.Mesh2D(5, 9)
	if err != nil {
		b.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 50, solver.LongestLink, 3)
	if err != nil {
		b.Fatal(err)
	}
	_, pairs, err := cluster.RoundCostMatrixPairs(p.Costs, 0)
	if err != nil {
		b.Fatal(err)
	}
	thresholds := distinctCosts(pairs)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		b.StopTimer()
		d := newDescent(p, pairs, 1, true)
		b.StartTimer()
		for idx := len(thresholds) - 1; idx >= 0; idx-- {
			d.tighten(thresholds[idx])
		}
	}
}
