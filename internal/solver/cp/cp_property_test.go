package cp

import (
	"math/rand"
	"testing"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/solvertest"
)

// randomTinyProblem builds a random LLNDP instance small enough to brute
// force: n in [3,7] nodes, m in [n, n+3] instances, a random directed
// communication graph, and integer costs drawn from a handful of values so
// the threshold ladder is full of ties. Weighted instances scatter weights
// from {0.5, 2, 3} over roughly half the edges.
func randomTinyProblem(t *testing.T, rng *rand.Rand, weighted bool) *solver.Problem {
	t.Helper()
	n := 3 + rng.Intn(5)
	m := n + rng.Intn(4)
	g := core.NewGraph(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j && rng.Float64() < 0.4 {
				if err := g.AddEdge(i, j); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	if g.NumEdges() == 0 {
		if err := g.AddEdge(0, 1); err != nil {
			t.Fatal(err)
		}
	}
	if weighted {
		choices := []float64{0.5, 2, 3}
		for _, e := range g.Edges() {
			if rng.Float64() < 0.5 {
				if err := g.SetWeight(e.From, e.To, choices[rng.Intn(len(choices))]); err != nil {
					t.Fatal(err)
				}
			}
		}
	}
	cm := core.NewCostMatrix(m)
	for i := 0; i < m; i++ {
		for j := 0; j < m; j++ {
			if i != j {
				cm.Set(i, j, float64(1+rng.Intn(5)))
			}
		}
	}
	p, err := solver.NewProblem(g, cm, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestCPMatchesExhaustiveRandom is the CP-vs-exhaustive optimality property
// test: on random tiny instances — weighted and unweighted — the CP solver
// must prove optimality and land exactly on the brute-force optimum.
func TestCPMatchesExhaustiveRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 24; trial++ {
		weighted := trial%2 == 1
		p := randomTinyProblem(t, rng, weighted)
		want := bruteForceLL(p)
		res, err := New(0, int64(trial)).Solve(p, solver.Budget{Nodes: 20_000_000})
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatalf("trial %d (weighted=%v): invalid deployment: %v", trial, weighted, err)
		}
		if !res.Optimal {
			t.Fatalf("trial %d (weighted=%v): optimality not proven", trial, weighted)
		}
		if res.Cost != want {
			t.Fatalf("trial %d (weighted=%v): CP optimum %g != brute force %g",
				trial, weighted, res.Cost, want)
		}
	}
}

// TestParallelSequentialSameVerdicts descends the full threshold ladder with
// a sequential and a 4-worker descent side by side: the feasibility verdict
// and the exhaustion proof must agree at every threshold, and every found
// embedding must actually fit under its threshold.
func TestParallelSequentialSameVerdicts(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 12, solver.LongestLink, 31)
	if err != nil {
		t.Fatal(err)
	}
	search, pairsSeq, err := cluster.RoundCostMatrixPairs(p.Costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	_, pairsPar, err := cluster.RoundCostMatrixPairs(p.Costs, 0)
	if err != nil {
		t.Fatal(err)
	}
	thresholds := distinctCosts(pairsSeq)
	dSeq := newDescent(p, pairsSeq, 1, true)
	dPar := newDescent(p, pairsPar, 4, true)
	clockSeq := solver.NewClock(solver.Budget{})
	clockPar := solver.NewClock(solver.Budget{})
	checked := 0
	for idx := len(thresholds) - 1; idx >= 0; idx-- {
		c := thresholds[idx]
		okS, depS, exS := dSeq.feasible(c, clockSeq)
		okP, depP, exP := dPar.feasible(c, clockPar)
		if okS != okP || exS != exP {
			t.Fatalf("threshold %g: sequential (ok=%v exhausted=%v) != parallel (ok=%v exhausted=%v)",
				c, okS, exS, okP, exP)
		}
		for _, dep := range []core.Deployment{depS, depP} {
			if dep == nil {
				continue
			}
			if err := dep.Validate(p.NumInstances()); err != nil {
				t.Fatalf("threshold %g: invalid deployment: %v", c, err)
			}
			if got := core.LongestLink(dep, p.Graph, search); got > c {
				t.Fatalf("threshold %g: embedding cost %g exceeds threshold", c, got)
			}
		}
		checked++
	}
	if checked == 0 {
		t.Fatal("no thresholds checked")
	}
}

// TestParallelSolveMatchesSequential runs the full solver sequentially and
// with 4 workers on the same instance: both must prove optimality at the
// same cost.
func TestParallelSolveMatchesSequential(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	p, err := solvertest.Realistic(g, 13, solver.LongestLink, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Unlimited budgets: a node budget would force the sequential engine on
	// both sides; unbounded, the parallel side really splits branches.
	seq, err := (&Solver{Seed: 7, Workers: 1}).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	par, err := (&Solver{Seed: 7, Workers: 4}).Solve(p, solver.Budget{})
	if err != nil {
		t.Fatal(err)
	}
	if !seq.Optimal || !par.Optimal {
		t.Fatalf("optimality not proven: sequential %v, parallel %v", seq.Optimal, par.Optimal)
	}
	if seq.Cost != par.Cost {
		t.Fatalf("sequential optimum %g != parallel optimum %g", seq.Cost, par.Cost)
	}
}

// TestWeightedThresholdsSortCompact checks the sort+compact ladder against a
// map-based reference.
func TestWeightedThresholdsSortCompact(t *testing.T) {
	g := core.NewGraph(3)
	for _, e := range [][2]int{{0, 1}, {1, 2}, {2, 0}} {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			t.Fatal(err)
		}
	}
	if err := g.SetWeight(0, 1, 2); err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(1, 2, 0.5); err != nil {
		t.Fatal(err)
	}
	raw := []float64{1, 2, 3, 4}
	got := weightedThresholds(raw, g)
	seen := map[float64]bool{}
	for _, w := range g.DistinctWeights() {
		for _, v := range raw {
			seen[w*v] = true
		}
	}
	if len(got) != len(seen) {
		t.Fatalf("got %d thresholds, want %d distinct", len(got), len(seen))
	}
	for i, v := range got {
		if !seen[v] {
			t.Fatalf("unexpected threshold %g", v)
		}
		if i > 0 && got[i-1] >= v {
			t.Fatalf("thresholds not strictly increasing: %v", got)
		}
	}
}
