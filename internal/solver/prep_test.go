package solver

import (
	"math/rand"
	"reflect"
	"sort"
	"sync"
	"testing"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
)

// prepProblem builds a weighted-free LL problem with a DAG variant for the
// transpose artifacts.
func prepProblem(t *testing.T, nodes, instances int, seed int64) *Problem {
	t.Helper()
	g := core.NewGraph(nodes)
	rng := rand.New(rand.NewSource(seed))
	for v := 0; v+1 < nodes; v++ {
		if err := g.AddEdge(v, v+1); err != nil {
			t.Fatal(err)
		}
	}
	for k := 0; k < 3*nodes; k++ {
		x, y := rng.Intn(nodes), rng.Intn(nodes)
		if x > y {
			x, y = y, x
		}
		if x != y && !g.HasEdge(x, y) {
			if err := g.AddEdge(x, y); err != nil {
				t.Fatal(err)
			}
		}
	}
	p, err := NewProblem(g, randomMatrix(instances, seed+7), LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

// TestPrepRoundedMatchesDirect pins Prep-served artifacts bit-identical to
// the per-solver computations they replaced.
func TestPrepRoundedMatchesDirect(t *testing.T) {
	p := prepProblem(t, 12, 20, 3)
	prep := p.Prep()

	for _, k := range []int{0, 3, 8} {
		m, pairs, err := prep.Rounded(k)
		if err != nil {
			t.Fatalf("Rounded(%d): %v", k, err)
		}
		wantM, wantPairs, err := cluster.RoundCostMatrixPairs(p.Costs, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < m.Size(); i++ {
			for j := 0; j < m.Size(); j++ {
				if m.At(i, j) != wantM.At(i, j) {
					t.Fatalf("Rounded(%d) matrix differs at (%d,%d): %g vs %g", k, i, j, m.At(i, j), wantM.At(i, j))
				}
			}
		}
		if !reflect.DeepEqual(pairs, wantPairs) {
			t.Fatalf("Rounded(%d) pairs differ from RoundCostMatrixPairs", k)
		}
		if k > 0 {
			// The matrix must also be bit-identical to the old MIP path
			// (k-means over the row-major off-diagonal extraction).
			wantMIP, err := cluster.RoundCostMatrix(p.Costs, k)
			if err != nil {
				t.Fatal(err)
			}
			for i := 0; i < m.Size(); i++ {
				for j := 0; j < m.Size(); j++ {
					if m.At(i, j) != wantMIP.At(i, j) {
						t.Fatalf("Rounded(%d) differs from RoundCostMatrix at (%d,%d)", k, i, j)
					}
				}
			}
		}
		// Memoization: identical pointers on a second call.
		m2, pairs2, _ := prep.Rounded(k)
		if m2 != m || (len(pairs) > 0 && &pairs2[0] != &pairs[0]) {
			t.Fatalf("Rounded(%d) not memoized", k)
		}
	}
	if m0, _, _ := prep.Rounded(0); m0 != p.Costs {
		t.Fatal("Rounded(0) should serve the original matrix")
	}
	if m0, err := prep.RoundedMatrix(-1); err != nil || m0 != p.Costs {
		t.Fatal("RoundedMatrix(k<=0) should serve the original matrix")
	}
}

func TestPrepTransposedMatchesDirect(t *testing.T) {
	p := prepProblem(t, 10, 14, 5)
	prep := p.Prep()

	tg := prep.TransposedGraph()
	if tg.NumNodes() != p.Graph.NumNodes() || tg.NumEdges() != p.Graph.NumEdges() {
		t.Fatal("transposed graph shape mismatch")
	}
	for _, e := range p.Graph.Edges() {
		if !tg.HasEdge(e.To, e.From) {
			t.Fatalf("missing reversed edge (%d,%d)", e.To, e.From)
		}
		if tg.Weight(e.To, e.From) != p.Graph.Weight(e.From, e.To) {
			t.Fatalf("weight not carried for edge (%d,%d)", e.From, e.To)
		}
	}
	order, err := prep.TransposedTopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	wantOrder, err := tg.TopoOrder()
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(order, wantOrder) {
		t.Fatal("transposed topo order differs from direct computation")
	}

	for _, k := range []int{0, 4} {
		tm, err := prep.TransposedCosts(k)
		if err != nil {
			t.Fatal(err)
		}
		base, err := prep.RoundedMatrix(k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < tm.Size(); i++ {
			for j := 0; j < tm.Size(); j++ {
				if tm.At(i, j) != base.At(j, i) {
					t.Fatalf("TransposedCosts(%d) wrong at (%d,%d)", k, i, j)
				}
			}
		}
	}
}

func TestPrepDegreeOrderAndRows(t *testing.T) {
	p := prepProblem(t, 14, 18, 9)
	prep := p.Prep()

	order := prep.DegreeOrder()
	want := make([]core.NodeID, p.Graph.NumNodes())
	for i := range want {
		want[i] = i
	}
	sort.SliceStable(want, func(a, b int) bool {
		return p.Graph.Degree(want[a]) > p.Graph.Degree(want[b])
	})
	if !reflect.DeepEqual(order, want) {
		t.Fatalf("DegreeOrder = %v, want %v", order, want)
	}

	rows := prep.CheapestRows()
	n := p.Costs.Size()
	if len(rows) != n {
		t.Fatalf("CheapestRows has %d rows, want %d", len(rows), n)
	}
	for u := 0; u < n; u++ {
		if len(rows[u]) != n-1 {
			t.Fatalf("row %d has %d entries", u, len(rows[u]))
		}
		seen := map[int32]bool{int32(u): true}
		for i, v := range rows[u] {
			if seen[v] {
				t.Fatalf("row %d repeats or self-references %d", u, v)
			}
			seen[v] = true
			if i > 0 {
				prev := rows[u][i-1]
				cp, cv := p.Costs.At(u, int(prev)), p.Costs.At(u, int(v))
				if cp > cv || (cp == cv && prev > v) {
					t.Fatalf("row %d not sorted by (cost, index) at %d", u, i)
				}
			}
		}
	}
}

func TestPrepOffDiagonalAndBootstrap(t *testing.T) {
	p := prepProblem(t, 8, 12, 11)
	prep := p.Prep()

	if !reflect.DeepEqual(prep.OffDiagonal(), p.Costs.OffDiagonal()) {
		t.Fatal("OffDiagonal differs from direct extraction")
	}

	// Bootstrap must be bit-identical to the previous per-solver pattern:
	// a fresh rand source from the seed feeding solver.Bootstrap.
	for _, seed := range []int64{0, 42, -7} {
		d, cost := prep.Bootstrap(10, seed)
		rng := rand.New(rand.NewSource(seed))
		wantD, wantCost := Bootstrap(p, 10, rng)
		if cost != wantCost || !reflect.DeepEqual(d, wantD) {
			t.Fatalf("Bootstrap(10,%d) differs from direct computation", seed)
		}
		// Returned deployments are private copies: mutating one must not
		// leak into the next call.
		d[0] = -99
		d2, _ := prep.Bootstrap(10, seed)
		if d2[0] == -99 {
			t.Fatal("Bootstrap returned a shared deployment")
		}
	}
}

// TestPrepConcurrentHammer drives one Problem's Prep from many goroutines —
// identical and distinct cluster-K values, plus every other artifact — the
// way racing portfolio members do. Run under -race (CI does), it also
// verifies all callers observe the same memoized instances.
func TestPrepConcurrentHammer(t *testing.T) {
	p := prepProblem(t, 12, 16, 13)
	prep := p.Prep()

	const workers = 16
	ks := []int{0, 2, 5, 9}
	mats := make([]*core.CostMatrix, workers)
	boots := make([]float64, workers)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		w := w
		wg.Add(1)
		go func() {
			defer wg.Done()
			for rep := 0; rep < 3; rep++ {
				for _, k := range ks {
					m, pairs, err := prep.Rounded(k)
					if err != nil || m == nil || (m.Size() > 1 && len(pairs) == 0) {
						t.Errorf("Rounded(%d): m=%v err=%v", k, m, err)
						return
					}
					if k == ks[w%len(ks)] {
						mats[w] = m
					}
					if _, err := prep.TransposedCosts(k); err != nil {
						t.Errorf("TransposedCosts(%d): %v", k, err)
						return
					}
				}
				prep.TransposedGraph()
				if _, err := prep.TransposedTopoOrder(); err != nil {
					t.Errorf("TransposedTopoOrder: %v", err)
					return
				}
				prep.DegreeOrder()
				prep.CheapestRows()
				prep.OffDiagonal()
				_, boots[w] = prep.Bootstrap(10, int64(w%4))
			}
		}()
	}
	wg.Wait()
	// Same-K callers must have received the same memoized matrix.
	for w := 0; w < workers; w++ {
		for w2 := w + 1; w2 < workers; w2++ {
			if w%len(ks) == w2%len(ks) && mats[w] != mats[w2] {
				t.Fatalf("workers %d and %d got different matrices for the same k", w, w2)
			}
			if w%4 == w2%4 && boots[w] != boots[w2] {
				t.Fatalf("workers %d and %d got different bootstrap costs for the same seed", w, w2)
			}
		}
	}
}

// TestPrepSolversShareProblem runs the portfolio members' access pattern:
// concurrent CP-style and MIP-style artifact pulls against one Problem while
// local searches bootstrap, mirroring an advisor portfolio run.
func TestPrepSolversShareProblem(t *testing.T) {
	p := prepProblem(t, 10, 15, 17)
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		i := i
		wg.Add(1)
		go func() {
			defer wg.Done()
			prep := p.Prep()
			switch i % 3 {
			case 0: // CP: clustered pairs + bootstrap
				if _, _, err := prep.Rounded(5); err != nil {
					t.Errorf("Rounded: %v", err)
				}
				prep.Bootstrap(10, 99)
			case 1: // MIP: degree order + transposed artifacts + bootstrap
				prep.DegreeOrder()
				prep.TransposedGraph()
				if _, err := prep.TransposedCosts(5); err != nil {
					t.Errorf("TransposedCosts: %v", err)
				}
				prep.Bootstrap(10, 99)
			default: // greedy/local: rows + bootstrap
				prep.CheapestRows()
				prep.Bootstrap(10, 99)
			}
		}()
	}
	wg.Wait()
}
