package solver

import (
	"fmt"

	"cloudia/internal/core"
)

// This file implements epoch-aware Prep invalidation for streaming
// measurement: as measure.Stream publishes successive cost-matrix epochs,
// Evolve derives the next epoch's Problem whose Prep keeps every artifact
// untouched by the changed rows and recomputes the rest incrementally —
// re-assigning changed values to the existing k-means centers and merging
// pair lists — instead of rebuilding the full preprocessing per epoch.

// Evolve returns a Problem for the next cost-matrix epoch: the same graph
// and objective over matrix m, of which only changedRows differ (bitwise)
// from p.Costs. The new Problem's Prep is seeded from p's:
//
//   - graph-derived artifacts (transposed graph, topological orders, degree
//     order) are adopted outright — the graph did not change;
//   - with no changed rows, every matrix-derived artifact already built is
//     adopted too, so re-advising on an unchanged network is free;
//   - otherwise, cluster-rounded matrices and pair lists are patched by
//     incremental k-means reassignment of the changed rows (refitted only
//     once a majority of rows has drifted since the last full fit), and
//     cheapest-link rows are re-sorted only for changed rows;
//   - bootstrap incumbents are dropped: their costs are stale under the new
//     matrix. Carry search state across epochs with Prep.WarmStart instead.
//
// The changed-row contract is verified: rows not listed must be bitwise
// identical between p.Costs and m (listing an unchanged row is allowed).
// Adoption is race-safe against solvers still running on p — artifact
// completion is observed through atomic flags, and anything the old epoch
// has not finished building is simply rebuilt lazily by the new one.
func (p *Problem) Evolve(m *core.CostMatrix, changedRows []int) (*Problem, error) {
	return p.EvolveTie(m, changedRows, nil)
}

// EvolveTie is Evolve plus a tie-break matrix for the new epoch (see
// NewProblemTie). The changed-row contract applies to the primary matrix m
// only: Prep artifacts all derive from the primary, so the tie matrix may
// change arbitrarily between epochs without invalidating anything. Passing
// a nil tie clears any tie matrix the previous epoch had.
func (p *Problem) EvolveTie(m *core.CostMatrix, changedRows []int, tie *core.CostMatrix) (*Problem, error) {
	if m == nil {
		return nil, fmt.Errorf("solver: nil epoch matrix")
	}
	if m.Size() != p.Costs.Size() {
		return nil, fmt.Errorf("solver: epoch matrix size %d, problem has %d instances (the instance set is fixed across epochs)", m.Size(), p.Costs.Size())
	}
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.Size()
	changed := make([]bool, n)
	for _, i := range changedRows {
		if i < 0 || i >= n {
			return nil, fmt.Errorf("solver: changed row %d out of range [0,%d)", i, n)
		}
		changed[i] = true
	}
	for i := 0; i < n; i++ {
		if changed[i] {
			continue
		}
		a, b := p.Costs.Row(i), m.Row(i)
		for j := range a {
			if a[j] != b[j] {
				return nil, fmt.Errorf("solver: row %d differs between epochs but is not listed as changed", i)
			}
		}
	}
	// Normalize to an ascending, duplicate-free list: the pair-list patch
	// appends each listed row's pairs once per occurrence, so feeding it a
	// caller's duplicated entries would corrupt the merged list.
	rows := make([]int, 0, len(changedRows))
	for i := 0; i < n; i++ {
		if changed[i] {
			rows = append(rows, i)
		}
	}

	if tie != nil {
		if err := validateTie(m, tie); err != nil {
			return nil, err
		}
	}
	np := &Problem{Graph: p.Graph, Costs: m, Objective: p.Objective, Tie: tie, order: p.order}
	np.prep = evolvePrep(np, p.Prep(), rows)
	return np, nil
}

// evolvePrep builds the next epoch's Prep from the previous one. old may be
// in concurrent use; only artifacts whose done flag is set are read.
func evolvePrep(np *Problem, old *Prep, changedRows []int) *Prep {
	pp := newPrep(np)

	// Graph-derived artifacts never depend on the matrix.
	if old.tGraphDone.Load() {
		pp.tGraphOnce.Do(func() {
			pp.tGraph, pp.tOrder, pp.tOrderErr = old.tGraph, old.tOrder, old.tOrderErr
			pp.tGraphDone.Store(true)
		})
	}
	if old.degDone.Load() {
		pp.degOnce.Do(func() {
			pp.degOrder = old.degOrder
			pp.degDone.Store(true)
		})
	}

	identical := len(changedRows) == 0
	if identical {
		if old.offDone.Load() {
			pp.offOnce.Do(func() {
				pp.offDiag = old.offDiag
				pp.offDone.Store(true)
			})
		}
		if old.rowsDone.Load() {
			pp.rowsOnce.Do(func() {
				pp.rows = old.rows
				pp.rowsDone.Store(true)
			})
		}
	} else if old.rowsDone.Load() {
		pp.rowsSeed, pp.rowsSeedChanged = old.rows, changedRows
	}

	// Rounded entries: adopt computed entries wholesale when nothing
	// changed (they are immutable), otherwise seed them for incremental
	// patching on first use. Entries the old epoch never finished are left
	// to fresh lazy computation.
	old.mu.Lock()
	computed := make(map[int]*prepRounded, len(old.rounded))
	//cloudia:nondet-ok map-to-map filter; entries are independent per key, no order is observable
	for k, e := range old.rounded {
		if e.done.Load() {
			computed[k] = e
		}
	}
	old.mu.Unlock()
	//cloudia:nondet-ok map-to-map seed; each key writes only its own pp.rounded slot
	for k, e := range computed {
		if identical && e.err == nil {
			pp.rounded[k] = e
			continue
		}
		pp.rounded[k] = &prepRounded{seed: e, seedChanged: changedRows}
	}
	return pp
}
