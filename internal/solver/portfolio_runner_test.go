package solver_test

import (
	"strings"
	"testing"
	"time"

	"cloudia/internal/advisor"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/anneal"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
	"cloudia/internal/solver/solvertest"
)

func TestPortfolioRequiresBoundedBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(2, 2, 2, 0.1, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	pf := solver.NewPortfolio(greedy.New(greedy.G1))
	if _, err := pf.Solve(p, solver.Budget{}); err == nil {
		t.Fatal("unlimited budget accepted")
	}
	if _, err := solver.NewPortfolio().Solve(p, solver.Budget{Nodes: 10}); err == nil {
		t.Fatal("empty portfolio accepted")
	}
}

// TestPortfolioNotWorseThanMembers verifies the defining property: on the
// same problem and seeds, the portfolio's cost is <= every member's
// sequential cost. Exercised with -race in CI, this also covers the
// reduction's synchronization.
func TestPortfolioNotWorseThanMembers(t *testing.T) {
	for seed := int64(1); seed <= 4; seed++ {
		p, _, err := solvertest.PlantedLL(3, 3, 4, 0.1, 1.0, seed)
		if err != nil {
			t.Fatal(err)
		}
		budget := solver.Budget{Nodes: 30_000}
		members := func() []solver.Solver {
			return []solver.Solver{
				cp.New(10, seed),
				mip.New(10, seed),
				greedy.New(greedy.G1),
				greedy.New(greedy.G2),
				random.NewLocal(seed),
				anneal.New(seed),
			}
		}
		pf := solver.NewPortfolio(members()...)
		res, err := pf.Solve(p, budget)
		if err != nil {
			t.Fatal(err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatal(err)
		}
		if got := p.Cost(res.Deployment); got != res.Cost {
			t.Fatalf("reported %g, actual %g", res.Cost, got)
		}
		if res.Winner == "" {
			t.Fatal("winner not recorded")
		}
		for _, m := range members() {
			mres, err := m.Solve(p, budget)
			if err != nil {
				t.Fatalf("%s: %v", m.Name(), err)
			}
			if res.Cost > mres.Cost+1e-12 {
				t.Fatalf("seed %d: portfolio %g worse than member %s %g", seed, res.Cost, m.Name(), mres.Cost)
			}
		}
	}
}

// TestPortfolioSkipsInapplicableMembers: CP rejects longest-path problems;
// the portfolio must fall back to the remaining members rather than fail.
func TestPortfolioSkipsInapplicableMembers(t *testing.T) {
	p, _, err := solvertest.PlantedLP(6, 3, 0.1, 1.0, 3)
	if err != nil {
		t.Fatal(err)
	}
	pf := solver.NewPortfolio(cp.New(0, 3), anneal.New(3), random.NewLocal(3))
	res, err := pf.Solve(p, solver.Budget{Nodes: 20_000})
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
}

// TestPortfolioRespectsTimeBudget: the runner must come back close to the
// wall-clock budget even though every member gets the full budget.
func TestPortfolioRespectsTimeBudget(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 3, 0.1, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	budget := 250 * time.Millisecond
	pf := advisor.NewPortfolio(10, 5)
	start := time.Now()
	res, err := pf.Solve(p, solver.Budget{Time: budget})
	if err != nil {
		t.Fatal(err)
	}
	elapsed := time.Since(start)
	// Acceptance bound is budget+10%; allow scheduling slack on loaded CI
	// machines without letting a runaway member through.
	if elapsed > budget+budget/2 {
		t.Fatalf("portfolio took %v against a %v budget", elapsed, budget)
	}
	if err := res.Deployment.Validate(p.NumInstances()); err != nil {
		t.Fatal(err)
	}
}

// TestPortfolioOptimalShortCircuit: when a member proves optimality the
// portfolio must report it.
func TestPortfolioOptimalShortCircuit(t *testing.T) {
	p, _, err := solvertest.PlantedLL(2, 2, 2, 0.1, 1.0, 7)
	if err != nil {
		t.Fatal(err)
	}
	pf := solver.NewPortfolio(cp.New(0, 7), anneal.New(7))
	res, err := pf.Solve(p, solver.Budget{Nodes: 50_000_000, Time: 30 * time.Second})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Optimal {
		t.Fatal("CP proved optimality but the portfolio did not report it")
	}
}

// TestLocalSearchSingleNodeProblem: a 1-node problem is valid; the local
// searches must not panic proposing swaps (a portfolio member panicking
// would kill the whole process).
func TestLocalSearchSingleNodeProblem(t *testing.T) {
	g := core.NewGraph(1)
	m := core.NewCostMatrix(3)
	m.Set(1, 2, 0.5)
	m.Set(2, 1, 0.5)
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	for _, s := range []solver.Solver{anneal.New(1), random.NewLocal(1)} {
		res, err := s.Solve(p, solver.Budget{Nodes: 1000})
		if err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if err := res.Deployment.Validate(p.NumInstances()); err != nil {
			t.Fatalf("%s: %v", s.Name(), err)
		}
		if res.Cost != 0 {
			t.Fatalf("%s: cost %g on edgeless graph, want 0", s.Name(), res.Cost)
		}
	}
	pf := advisor.NewPortfolio(0, 1)
	if _, err := pf.Solve(p, solver.Budget{Nodes: 1000}); err != nil {
		t.Fatal(err)
	}
}

// panicSolver is a portfolio member that dies mid-search.
type panicSolver struct{}

func (panicSolver) Name() string { return "panicker" }
func (panicSolver) Solve(*solver.Problem, solver.Budget) (*solver.Result, error) {
	panic("injected solver fault")
}

// TestPortfolioIsolatesPanickingMember: a member that panics loses only its
// own lane — the panic is captured as that member's error (with its stack)
// and the surviving members still produce the result.
func TestPortfolioIsolatesPanickingMember(t *testing.T) {
	p, _, err := solvertest.PlantedLL(3, 3, 4, 0.1, 1.0, 5)
	if err != nil {
		t.Fatal(err)
	}
	pf := solver.NewPortfolio(panicSolver{}, greedy.New(greedy.G2))
	res, err := pf.Solve(p, solver.Budget{Nodes: 5_000})
	if err != nil {
		t.Fatalf("surviving member's result lost: %v", err)
	}
	if res.Winner != "G2" {
		t.Fatalf("winner = %q, want the surviving member", res.Winner)
	}

	// With every member panicking there is no result; the error must carry
	// the panic value and a stack trace.
	all := solver.NewPortfolio(panicSolver{}, panicSolver{})
	if _, err := all.Solve(p, solver.Budget{Nodes: 100}); err == nil {
		t.Fatal("all-panicked portfolio returned a result")
	} else if !strings.Contains(err.Error(), "injected solver fault") || !strings.Contains(err.Error(), "goroutine") {
		t.Fatalf("panic error lacks value or stack: %v", err)
	}
}
