package solver

import (
	"math/rand"
	"reflect"
	"sync"
	"testing"
	"time"

	"cloudia/internal/cluster"
	"cloudia/internal/core"
)

// perturbRows returns a copy of m with the off-diagonal entries of the given
// rows redrawn, plus the changed-row list.
func perturbRows(m *core.CostMatrix, rows []int, seed int64) *core.CostMatrix {
	rng := rand.New(rand.NewSource(seed))
	out := m.Clone()
	for _, i := range rows {
		for j := 0; j < m.Size(); j++ {
			if i != j {
				out.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return out
}

func matricesEqual(a, b *core.CostMatrix) bool {
	for i := 0; i < a.Size(); i++ {
		if !reflect.DeepEqual(a.Row(i), b.Row(i)) {
			return false
		}
	}
	return true
}

// TestEvolveIdenticalEpochAdoptsEverything: with no changed rows, every
// artifact the previous epoch built is served by pointer from the new one.
func TestEvolveIdenticalEpochAdoptsEverything(t *testing.T) {
	p := prepProblem(t, 12, 18, 31)
	prep := p.Prep()
	m0, pairs0, err := prep.Rounded(5)
	if err != nil {
		t.Fatal(err)
	}
	rows0 := prep.CheapestRows()
	tg0 := prep.TransposedGraph()
	deg0 := prep.DegreeOrder()
	off0 := prep.OffDiagonal()

	np, err := p.Evolve(p.Costs.Clone(), nil)
	if err != nil {
		t.Fatal(err)
	}
	nprep := np.Prep()
	m1, pairs1, err := nprep.Rounded(5)
	if err != nil {
		t.Fatal(err)
	}
	if m1 != m0 || &pairs1[0] != &pairs0[0] {
		t.Fatal("identical epoch did not adopt the rounded entry")
	}
	if &nprep.CheapestRows()[0] != &rows0[0] {
		t.Fatal("identical epoch did not adopt cheapest rows")
	}
	if nprep.TransposedGraph() != tg0 {
		t.Fatal("identical epoch did not adopt the transposed graph")
	}
	if &nprep.DegreeOrder()[0] != &deg0[0] {
		t.Fatal("identical epoch did not adopt the degree order")
	}
	if &nprep.OffDiagonal()[0] != &off0[0] {
		t.Fatal("identical epoch did not adopt the off-diagonal vector")
	}
}

// TestEvolvePatchedRoundedMatchesIncrementalContract: changed rows are
// re-assigned to the previous epoch's centers; unchanged rows keep their
// rounded values; the pair list stays sorted and covers the patched matrix.
func TestEvolvePatchedRounded(t *testing.T) {
	p := prepProblem(t, 14, 20, 33)
	prep := p.Prep()
	const k = 6
	r0, _, err := prep.Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	_, _, res, err := cluster.RoundCostMatrixPairsResult(p.Costs, k)
	if err != nil {
		t.Fatal(err)
	}

	changed := []int{1, 7}
	m1 := perturbRows(p.Costs, changed, 35)
	np, err := p.Evolve(m1, changed)
	if err != nil {
		t.Fatal(err)
	}
	r1, pairs1, err := np.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	isChanged := map[int]bool{1: true, 7: true}
	for i := 0; i < m1.Size(); i++ {
		for j := 0; j < m1.Size(); j++ {
			if i == j {
				continue
			}
			want := r0.At(i, j)
			if isChanged[i] {
				want = res.Assign(m1.At(i, j))
			}
			if r1.At(i, j) != want {
				t.Fatalf("patched rounded(%d,%d) = %g, want %g", i, j, r1.At(i, j), want)
			}
		}
	}
	if len(pairs1) != m1.Size()*(m1.Size()-1) {
		t.Fatalf("patched pairs length %d", len(pairs1))
	}
	for i := 1; i < len(pairs1); i++ {
		if pairs1[i].Cost < pairs1[i-1].Cost {
			t.Fatalf("patched pairs not ascending at %d", i)
		}
	}
	for _, pr := range pairs1 {
		if r1.At(int(pr.From), int(pr.To)) != pr.Cost {
			t.Fatalf("pair (%d,%d) cost %g disagrees with patched matrix %g",
				pr.From, pr.To, pr.Cost, r1.At(int(pr.From), int(pr.To)))
		}
	}

	// The unclustered entry must serve the new matrix itself.
	if um, _, err := np.Prep().Rounded(0); err != nil || um != np.Costs {
		t.Fatal("unclustered entry does not serve the epoch matrix")
	}
}

// TestEvolveMajorityDriftRefits: once a majority of rows has drifted since
// the last fit, the clustering is re-fitted from scratch — the entry must
// then be bit-identical to a fresh computation on the new matrix.
func TestEvolveMajorityDriftRefits(t *testing.T) {
	p := prepProblem(t, 10, 12, 37)
	const k = 4
	if _, _, err := p.Prep().Rounded(k); err != nil {
		t.Fatal(err)
	}
	changed := []int{0, 1, 2, 3, 4, 5, 6}
	m1 := perturbRows(p.Costs, changed, 39)
	np, err := p.Evolve(m1, changed)
	if err != nil {
		t.Fatal(err)
	}
	got, gotPairs, err := np.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	want, wantPairs, err := cluster.RoundCostMatrixPairs(m1, k)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want) {
		t.Fatal("majority-drift epoch did not refit the clustering")
	}
	if !reflect.DeepEqual(gotPairs, wantPairs) {
		t.Fatal("refit pair list differs from fresh computation")
	}
}

// TestEvolveStaleAccumulates: drift below the refit threshold accumulates
// across epochs until it crosses the majority line.
func TestEvolveStaleAccumulates(t *testing.T) {
	p := prepProblem(t, 10, 12, 41)
	const k = 4
	if _, _, err := p.Prep().Rounded(k); err != nil {
		t.Fatal(err)
	}
	cur := p
	// Two epochs, each drifting 3 of 12 rows: the first stays patched
	// (stale 3 < 6), the second accumulates to stale 6 — no longer a
	// minority — and must refit.
	for step, rows := range [][]int{{0, 1, 2}, {3, 4, 5}} {
		m := perturbRows(cur.Costs, rows, int64(43+step))
		np, err := cur.Evolve(m, rows)
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := np.Prep().Rounded(k); err != nil {
			t.Fatal(err)
		}
		cur = np
	}
	got, _, err := cur.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	want, _, err := cluster.RoundCostMatrixPairs(cur.Costs, k)
	if err != nil {
		t.Fatal(err)
	}
	if !matricesEqual(got, want) {
		t.Fatal("accumulated drift past the majority line did not trigger a refit")
	}
}

// TestEvolveRepeatedRowNeverRefits: the refit trigger counts distinct
// drifted rows, so the same minority of rows changing every epoch keeps the
// patch path (and the original fit) forever — unchanged rows must still
// carry their epoch-0 rounded values after many epochs.
func TestEvolveRepeatedRowNeverRefits(t *testing.T) {
	p := prepProblem(t, 10, 12, 81)
	const k = 4
	rounded0, _, err := p.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	cur := p
	for e := 0; e < 6; e++ {
		m := perturbRows(cur.Costs, []int{0, 1}, int64(83+e))
		np, err := cur.Evolve(m, []int{0, 1})
		if err != nil {
			t.Fatal(err)
		}
		if _, _, err := np.Prep().Rounded(k); err != nil {
			t.Fatal(err)
		}
		cur = np
	}
	got, _, err := cur.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	for i := 2; i < 12; i++ {
		for j := 0; j < 12; j++ {
			if i != j && got.At(i, j) != rounded0.At(i, j) {
				t.Fatalf("unchanged row %d drifted after repeated same-row epochs: a refit fired", i)
			}
		}
	}
}

// TestEvolveCheapestRowsPatched: changed rows are re-sorted against the new
// matrix, unchanged rows are shared with the previous epoch.
func TestEvolveCheapestRowsPatched(t *testing.T) {
	p := prepProblem(t, 10, 16, 45)
	rows0 := p.Prep().CheapestRows()
	changed := []int{2, 9}
	m1 := perturbRows(p.Costs, changed, 47)
	np, err := p.Evolve(m1, changed)
	if err != nil {
		t.Fatal(err)
	}
	rows1 := np.Prep().CheapestRows()
	fresh, err := NewProblem(p.Graph, m1, p.Objective)
	if err != nil {
		t.Fatal(err)
	}
	want := fresh.Prep().CheapestRows()
	for u := 0; u < 16; u++ {
		if !reflect.DeepEqual(rows1[u], want[u]) {
			t.Fatalf("patched cheapest row %d differs from fresh computation", u)
		}
	}
	for u := 0; u < 16; u++ {
		if u == 2 || u == 9 {
			continue
		}
		if &rows1[u][0] != &rows0[u][0] {
			t.Fatalf("unchanged cheapest row %d was rebuilt", u)
		}
	}
}

// TestEvolveDeduplicatesChangedRows: a caller may repeat (or leave
// unsorted) entries in changedRows; the patched pair list must still cover
// each pair exactly once.
func TestEvolveDeduplicatesChangedRows(t *testing.T) {
	p := prepProblem(t, 10, 12, 77)
	const k = 4
	if _, _, err := p.Prep().Rounded(k); err != nil {
		t.Fatal(err)
	}
	m1 := perturbRows(p.Costs, []int{5, 2}, 79)
	np, err := p.Evolve(m1, []int{5, 2, 5, 5, 2})
	if err != nil {
		t.Fatal(err)
	}
	_, pairs, err := np.Prep().Rounded(k)
	if err != nil {
		t.Fatal(err)
	}
	n := m1.Size()
	if len(pairs) != n*(n-1) {
		t.Fatalf("patched pair list has %d entries, want %d", len(pairs), n*(n-1))
	}
	seen := make(map[[2]int32]bool, len(pairs))
	for _, pr := range pairs {
		key := [2]int32{pr.From, pr.To}
		if seen[key] {
			t.Fatalf("pair (%d,%d) duplicated", pr.From, pr.To)
		}
		seen[key] = true
	}
}

// TestEvolveRejectsBadEpochs: wrong sizes, invalid matrices, out-of-range
// rows, and unlisted changed rows are all rejected.
func TestEvolveRejectsBadEpochs(t *testing.T) {
	p := prepProblem(t, 8, 10, 49)
	if _, err := p.Evolve(nil, nil); err == nil {
		t.Fatal("nil matrix accepted")
	}
	if _, err := p.Evolve(core.NewCostMatrix(11), nil); err == nil {
		t.Fatal("size change accepted")
	}
	bad := p.Costs.Clone()
	bad.Set(0, 1, -1)
	if _, err := p.Evolve(bad, []int{0}); err == nil {
		t.Fatal("invalid matrix accepted")
	}
	if _, err := p.Evolve(p.Costs.Clone(), []int{10}); err == nil {
		t.Fatal("out-of-range changed row accepted")
	}
	lied := perturbRows(p.Costs, []int{3}, 51)
	if _, err := p.Evolve(lied, nil); err == nil {
		t.Fatal("unlisted changed row accepted")
	}
}

// TestWarmStartFoldsIntoBootstrap: a warm incumbent better than the random
// draw is served by Bootstrap; an invalid one is rejected.
func TestWarmStartFoldsIntoBootstrap(t *testing.T) {
	p := prepProblem(t, 8, 12, 53)
	rng := rand.New(rand.NewSource(99))
	// Search a deployment better than the 10-sample bootstrap by sampling
	// more.
	warm, warmCost := Bootstrap(p, 500, rng)
	_, plainCost := Bootstrap(p, 10, rand.New(rand.NewSource(7)))
	if warmCost >= plainCost {
		t.Skipf("500-sample bootstrap (%g) did not beat 10-sample (%g)", warmCost, plainCost)
	}

	prep := p.Prep()
	if err := prep.WarmStart(warm); err != nil {
		t.Fatal(err)
	}
	d, cost := prep.Bootstrap(10, 7)
	if cost != warmCost || !reflect.DeepEqual(d, warm) {
		t.Fatalf("Bootstrap ignored the warm incumbent: cost %g, warm %g", cost, warmCost)
	}
	// Mutating the returned deployment must not corrupt the stored warm
	// incumbent.
	d[0] = -1
	d2, _ := prep.Bootstrap(10, 8)
	if d2[0] == -1 {
		t.Fatal("warm incumbent shared with callers")
	}

	if err := prep.WarmStart(core.Deployment{0, 1}); err == nil {
		t.Fatal("short warm deployment accepted")
	}
	if err := prep.WarmStart(core.Deployment{0, 0, 1, 2, 3, 4, 5, 6}); err == nil {
		t.Fatal("non-injective warm deployment accepted")
	}
}

// TestEvolveConcurrentWithSolves is the epoch-publication race hammer: a
// publisher goroutine evolves the problem chain through fresh epochs while
// portfolio-style readers hammer every Prep artifact of the epochs already
// published. Run under -race (CI does).
func TestEvolveConcurrentWithSolves(t *testing.T) {
	p := prepProblem(t, 10, 14, 55)
	const epochs = 6

	published := make(chan *Problem, epochs+1)
	published <- p

	var wg sync.WaitGroup
	wg.Add(1)
	go func() { // publisher
		defer wg.Done()
		defer close(published)
		cur := p
		rng := rand.New(rand.NewSource(57))
		for e := 0; e < epochs; e++ {
			rows := []int{rng.Intn(14), rng.Intn(14)}
			m := perturbRows(cur.Costs, rows, int64(59+e))
			np, err := cur.Evolve(m, rows)
			if err != nil {
				t.Errorf("Evolve: %v", err)
				return
			}
			published <- np
			cur = np
			time.Sleep(time.Millisecond)
		}
	}()

	var readers sync.WaitGroup
	for prob := range published {
		prob := prob
		for w := 0; w < 3; w++ {
			readers.Add(1)
			go func() {
				defer readers.Done()
				prep := prob.Prep()
				if _, _, err := prep.Rounded(5); err != nil {
					t.Errorf("Rounded: %v", err)
				}
				if _, err := prep.TransposedCosts(5); err != nil {
					t.Errorf("TransposedCosts: %v", err)
				}
				prep.TransposedGraph()
				prep.DegreeOrder()
				prep.CheapestRows()
				prep.OffDiagonal()
				prep.Bootstrap(10, 1)
			}()
		}
	}
	wg.Wait()
	readers.Wait()
}
