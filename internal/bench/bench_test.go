package bench

import (
	"strings"
	"testing"
)

// All figures run in Quick mode as part of the ordinary test suite, so a
// regression anywhere in the pipeline (topology -> cloud -> measure ->
// solver -> workload) is caught by `go test ./...` without waiting for the
// full-scale bench run.

func TestAllFiguresRunQuick(t *testing.T) {
	for _, id := range IDs() {
		id := id
		t.Run(id, func(t *testing.T) {
			t.Parallel()
			fig, err := Run(id, Options{Seed: 1, Quick: true})
			if err != nil {
				t.Fatalf("%s: %v", id, err)
			}
			if fig.ID != id {
				t.Fatalf("figure id %q != requested %q", fig.ID, id)
			}
			if len(fig.Series) == 0 {
				t.Fatalf("%s produced no series", id)
			}
			for _, s := range fig.Series {
				if len(s.X) != len(s.Y) {
					t.Fatalf("%s series %q: len(X)=%d len(Y)=%d", id, s.Name, len(s.X), len(s.Y))
				}
			}
			out := fig.String()
			if !strings.Contains(out, fig.Title) {
				t.Fatalf("%s String() missing title", id)
			}
		})
	}
}

func TestRunUnknownID(t *testing.T) {
	if _, err := Run("fig99", Options{}); err == nil {
		t.Fatal("unknown figure accepted")
	}
}

func TestIDsComplete(t *testing.T) {
	want := []string{
		"fig01", "fig02", "fig04", "fig05", "fig06", "fig07", "fig08",
		"fig09", "fig10", "fig11", "fig12", "fig13", "fig14", "fig15",
		"fig16", "fig17", "fig18", "fig19", "fig20", "fig21",
		"ablation-clusterk", "ablation-contention", "ablation-cpworkers",
		"ablation-degreefilter", "ablation-sa",
		"extension-redeploy", "extension-overlap", "extension-weighted",
		"extension-costmodel", "extension-bandwidth",
	}
	have := map[string]bool{}
	for _, id := range IDs() {
		have[id] = true
	}
	for _, id := range want {
		if !have[id] {
			t.Errorf("missing experiment %s", id)
		}
	}
	if len(IDs()) != len(want) {
		t.Errorf("registry has %d experiments, want %d: %v", len(IDs()), len(want), IDs())
	}
}

func TestMeshDims(t *testing.T) {
	// meshDims returns the most square rows x cols with rows*cols <= n.
	for _, n := range []int{1, 4, 18, 27, 45, 90, 100} {
		r, c := meshDims(n)
		if r*c > n {
			t.Errorf("meshDims(%d) overflows: %d*%d", n, r, c)
		}
		if r > c {
			t.Errorf("meshDims(%d) = (%d,%d): rows exceed cols", n, r, c)
		}
		// Most-square: (r+1)^2 must exceed n.
		if (r+1)*(r+1) <= n {
			t.Errorf("meshDims(%d) = (%d,%d) not most-square", n, r, c)
		}
	}
	if r, c := meshDims(90); r != 9 || c != 10 {
		t.Errorf("meshDims(90) = (%d,%d), want (9,10)", r, c)
	}
}
