package bench

import (
	"time"

	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/anneal"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/random"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// Ablations for the design choices DESIGN.md calls out. These are not paper
// figures; they isolate the mechanisms behind them.

func init() {
	register("ablation-degreefilter", AblationDegreeFilter)
	register("ablation-contention", AblationContention)
	register("ablation-sa", AblationSimulatedAnnealing)
	register("ablation-clusterk", AblationClusterK)
	register("ablation-cpworkers", AblationCPWorkers)
}

// AblationDegreeFilter measures the effect of the root-level degree /
// neighbourhood compatibility filtering on CP search effort: nodes expanded
// and final cost with and without the filter, same budget.
func AblationDegreeFilter(opts Options) (*Figure, error) {
	nInst, rows, cols := 60, 6, 9
	budget := solver.Budget{Time: time.Second}
	if opts.Quick {
		nInst, rows, cols = 30, 5, 5
		budget = solver.Budget{Time: 150 * time.Millisecond}
	}
	p, err := llProblem(nInst, rows, cols, opts.Seed+201)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "ablation-degreefilter", Title: "CP degree/neighbourhood filtering ablation",
		XLabel: "config_idx", YLabel: "final_cost_ms",
	}
	s := Series{Name: "final cost"}
	nodes := Series{Name: "search nodes"}
	for i, disable := range []bool{false, true} {
		sol := &cp.Solver{ClusterK: 20, Seed: opts.Seed + 21, DisableDegreeFilter: disable}
		res, err := sol.Solve(p, budget)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, res.Cost)
		nodes.X = append(nodes.X, float64(i+1))
		nodes.Y = append(nodes.Y, float64(res.Nodes))
		name := "with filter"
		if disable {
			name = "without filter"
		}
		fig.note("%s: cost %.3f, %d search nodes", name, res.Cost, res.Nodes)
	}
	fig.Series = append(fig.Series, s, nodes)
	return fig, nil
}

// AblationCPWorkers measures the parallel embedding search: the same CP
// descent under the same wall-clock budget with 1, 2, and 4 workers
// splitting each feasibility check's root branches. On a multi-core machine
// more workers reach a given threshold verdict sooner, which shows up as a
// lower final cost within the budget; the verdicts themselves are
// worker-count independent.
func AblationCPWorkers(opts Options) (*Figure, error) {
	nInst, rows, cols := 60, 6, 9
	budget := solver.Budget{Time: time.Second}
	if opts.Quick {
		nInst, rows, cols = 30, 5, 5
		budget = solver.Budget{Time: 150 * time.Millisecond}
	}
	p, err := llProblem(nInst, rows, cols, opts.Seed+205)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "ablation-cpworkers", Title: "CP parallel embedding search ablation",
		XLabel: "workers", YLabel: "value",
	}
	cost := Series{Name: "final cost (ms)"}
	nodes := Series{Name: "search nodes"}
	for _, w := range []int{1, 2, 4} {
		sol := &cp.Solver{ClusterK: 20, Seed: opts.Seed + 25, Workers: w}
		res, err := sol.Solve(p, budget)
		if err != nil {
			return nil, err
		}
		cost.X = append(cost.X, float64(w))
		cost.Y = append(cost.Y, res.Cost)
		nodes.X = append(nodes.X, float64(w))
		nodes.Y = append(nodes.Y, float64(res.Nodes))
		fig.note("workers=%d: cost %.3f, %d search nodes", w, res.Cost, res.Nodes)
	}
	fig.Series = append(fig.Series, cost, nodes)
	return fig, nil
}

// AblationContention verifies the mechanism behind Fig. 4: with replier-side
// contention switched (effectively) off, the uncoordinated scheme's accuracy
// approaches staged accuracy — interference, not parallelism itself, is what
// costs accuracy.
func AblationContention(opts Options) (*Figure, error) {
	n := 30
	durMS := 4000.0
	if opts.Quick {
		n = 14
		durMS = 1500
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+202)
	if err != nil {
		return nil, err
	}
	baseline, err := measure.Run(dc, insts, measure.Options{
		Scheme: measure.Token, DurationMS: 8 * durMS, Seed: opts.Seed + 22,
	})
	if err != nil {
		return nil, err
	}
	base := stats.NormalizeUnit(baseline.MeanMatrix().OffDiagonal())

	p90Of := func(o measure.Options) (float64, error) {
		res, err := measure.Run(dc, insts, o)
		if err != nil {
			return 0, err
		}
		est := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
		errs, err := stats.RelativeErrors(est, base)
		if err != nil {
			return 0, err
		}
		return stats.Percentile(errs, 90)
	}
	withC, err := p90Of(measure.Options{
		Scheme: measure.Uncoordinated, DurationMS: durMS, Seed: opts.Seed + 23,
	})
	if err != nil {
		return nil, err
	}
	withoutC, err := p90Of(measure.Options{
		Scheme: measure.Uncoordinated, DurationMS: durMS, Seed: opts.Seed + 23,
		ContentionScale: 1e-9, ContentionSpikeProb: 1e-12, ContentionSpikeScale: 1e-9,
	})
	if err != nil {
		return nil, err
	}
	staged, err := p90Of(measure.Options{
		Scheme: measure.Staged, DurationMS: durMS, Seed: opts.Seed + 23,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "ablation-contention", Title: "Uncoordinated-scheme error with and without contention",
		XLabel: "config_idx", YLabel: "p90_relative_error",
	}
	fig.Series = append(fig.Series, Series{
		Name: "p90 error",
		X:    []float64{1, 2, 3},
		Y:    []float64{withC, withoutC, staged},
	})
	fig.note("uncoordinated with contention: %.4f; without: %.4f; staged: %.4f", withC, withoutC, staged)
	fig.note("removing contention closes most of the gap to staged")
	return fig, nil
}

// AblationSimulatedAnnealing compares the SA extension against R2 under the
// same node budget on LLNDP.
func AblationSimulatedAnnealing(opts Options) (*Figure, error) {
	nInst, rows, cols := 50, 5, 9
	budget := solver.Budget{Nodes: 400_000}
	allocations := 5
	if opts.Quick {
		nInst, rows, cols = 20, 3, 6
		budget = solver.Budget{Nodes: 40_000}
		allocations = 2
	}
	var saSum, r2Sum float64
	for a := 0; a < allocations; a++ {
		p, err := llProblem(nInst, rows, cols, opts.Seed+int64(203+a*11))
		if err != nil {
			return nil, err
		}
		sa, err := anneal.New(opts.Seed+int64(a)).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		r2, err := (&random.R2{Seed: opts.Seed + int64(a), Workers: 4}).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		saSum += sa.Cost
		r2Sum += r2.Cost
	}
	fig := &Figure{
		ID: "ablation-sa", Title: "Simulated annealing vs R2 (same node budget)",
		XLabel: "technique_idx", YLabel: "mean_cost_ms",
	}
	fig.Series = append(fig.Series, Series{
		Name: "mean cost",
		X:    []float64{1, 2},
		Y:    []float64{saSum / float64(allocations), r2Sum / float64(allocations)},
	})
	fig.note("SA %.3f vs R2 %.3f over %d allocations", saSum/float64(allocations), r2Sum/float64(allocations), allocations)
	return fig, nil
}

// AblationClusterK sweeps the CP cost-cluster count, extending Fig. 6 to a
// full curve of final cost and time-to-best against k.
func AblationClusterK(opts Options) (*Figure, error) {
	nInst, rows, cols := 60, 6, 9
	budget := solver.Budget{Time: time.Second}
	ks := []int{5, 10, 20, 40, -1}
	if opts.Quick {
		nInst, rows, cols = 24, 4, 5
		budget = solver.Budget{Time: 150 * time.Millisecond}
		ks = []int{5, 20, -1}
	}
	p, err := llProblem(nInst, rows, cols, opts.Seed+204)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "ablation-clusterk", Title: "CP final cost and time-to-best vs cluster count",
		XLabel: "k", YLabel: "value",
	}
	cost := Series{Name: "final cost (ms)"}
	ttb := Series{Name: "time to best (ms)"}
	for _, k := range ks {
		res, err := cp.New(k, opts.Seed+24).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		kx := float64(k)
		if k < 0 {
			kx = 1000 // sentinel for "no clustering" on the x axis
		}
		cost.X = append(cost.X, kx)
		cost.Y = append(cost.Y, res.Cost)
		last := res.Trace[len(res.Trace)-1]
		ttb.X = append(ttb.X, kx)
		ttb.Y = append(ttb.Y, float64(last.Elapsed)/float64(time.Millisecond))
		fig.note("k=%d: cost %.3f, time-to-best %.1f ms", k, res.Cost, float64(last.Elapsed)/float64(time.Millisecond))
	}
	fig.Series = append(fig.Series, cost, ttb)
	return fig, nil
}
