package bench

import (
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/workload"
)

// ExtensionCostModel quantifies the paper's other named future-work item
// (Sect. 8): the impact of over-allocation on total *cost-to-solution*.
// Over-allocated instances are billed for at least one hour under the
// round-up pricing model (Sect. 6.4.4), so the tenant trades an up-front
// charge for a faster run. For long-running HPC jobs the trade wins quickly;
// this experiment finds the crossover.

func init() {
	register("extension-costmodel", ExtensionCostModel)
}

// ExtensionCostModel sweeps the over-allocation ratio and reports total
// cost-to-solution (instance-hours) for a behavioral-simulation job,
// charging every over-allocated instance the paper's 1-hour round-up.
func ExtensionCostModel(opts Options) (*Figure, error) {
	w := &workload.BehavioralSim{Rows: 6, Cols: 6, Ticks: 60}
	budget := solver.Budget{Nodes: 800_000}
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.5}
	// jobScale converts the short measured run into a long production job
	// (a multi-day simulation campaign): the paper's simulations run 100K+
	// ticks, ours measures 60 and extrapolates linearly. With ~hour-scale
	// runtimes the round-up billing of the over-allocated instances can be
	// recouped by the faster run.
	jobScale := 1.5e6
	if opts.Quick {
		w = &workload.BehavioralSim{Rows: 3, Cols: 3, Ticks: 20}
		budget = solver.Budget{Nodes: 80_000}
		ratios = []float64{0, 0.2, 0.5}
	}
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	maxInstances := n + n/2
	fleet, err := newBenchFleet(maxInstances, 30*float64(maxInstances), opts.Seed+401)
	if err != nil {
		return nil, err
	}
	meanAll := fleet.meas.MeanMatrix()

	fig := &Figure{
		ID: "extension-costmodel", Title: "Total cost-to-solution vs over-allocation (future work, Sect. 8)",
		XLabel: "over_allocation_pct", YLabel: "instance_hours",
	}
	cost := Series{Name: "cost-to-solution"}
	runtime := Series{Name: "runtime_hours"}
	best := -1.0
	bestRatio := 0.0
	for _, r := range ratios {
		avail := n + int(float64(n)*r)
		if avail > maxInstances {
			avail = maxInstances
		}
		sub := core.NewCostMatrix(avail)
		for i := 0; i < avail; i++ {
			for j := 0; j < avail; j++ {
				if i != j {
					sub.Set(i, j, meanAll.At(i, j))
				}
			}
		}
		p, err := solver.NewProblem(g, sub, solver.LongestLink)
		if err != nil {
			return nil, err
		}
		res, err := cp.New(20, opts.Seed+41).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		perfMS, err := w.Run(fleet.dc, fleet.insts[:avail], res.Deployment, opts.Seed+42)
		if err != nil {
			return nil, err
		}
		// Production job runtime in hours, then billing: n instances for the
		// whole job, plus (avail - n) over-allocated instances billed one
		// round-up hour each.
		jobHours := perfMS * jobScale / 3.6e6
		totalCost := float64(n)*ceilHours(jobHours) + float64(avail-n)*1
		cost.X = append(cost.X, r*100)
		cost.Y = append(cost.Y, totalCost)
		runtime.X = append(runtime.X, r*100)
		runtime.Y = append(runtime.Y, jobHours)
		if best < 0 || totalCost < best {
			best = totalCost
			bestRatio = r
		}
		fig.note("over-allocation %.0f%%: runtime %.2f h, cost %.1f instance-hours", r*100, jobHours, totalCost)
	}
	fig.Series = append(fig.Series, cost, runtime)
	fig.note("cost-optimal over-allocation for this job: %.0f%%", bestRatio*100)
	return fig, nil
}

// ceilHours rounds a duration up to whole billing hours, minimum 1.
func ceilHours(h float64) float64 {
	n := float64(int(h))
	if h > n {
		n++
	}
	if n < 1 {
		n = 1
	}
	return n
}
