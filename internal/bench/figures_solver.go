package bench

import (
	"fmt"
	"sort"
	"time"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// Solver figures: CP/MIP convergence and clustering (Figs. 6, 7, 9), CP
// scalability (Fig. 8), and the lightweight-approach comparisons (Figs. 14,
// 15), plus the Appendix 2 distance-approximation negative results (Figs.
// 16, 17).

func init() {
	register("fig06", Fig06CPClusters)
	register("fig07", Fig07CPvsMIP)
	register("fig08", Fig08CPScalability)
	register("fig09", Fig09LPNDPClusters)
	register("fig14", Fig14LightweightLL)
	register("fig15", Fig15LightweightLP)
	register("fig16", Fig16IPDistance)
	register("fig17", Fig17HopCount)
}

// llProblem builds the standard LLNDP benchmark instance: a 2D mesh over
// 90% of an EC2-like allocation, with ground-truth mean RTTs as costs.
func llProblem(nInstances int, rows, cols int, seed int64) (*solver.Problem, error) {
	dc, insts, err := allocate(topology.EC2Profile(), nInstances, seed)
	if err != nil {
		return nil, err
	}
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, err
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	return solver.NewProblem(g, m, solver.LongestLink)
}

// lpProblem builds the standard LPNDP benchmark instance: an aggregation
// tree of depth <= 4 over an EC2-like allocation.
func lpProblem(nInstances, fanout, depth int, seed int64) (*solver.Problem, error) {
	dc, insts, err := allocate(topology.EC2Profile(), nInstances, seed)
	if err != nil {
		return nil, err
	}
	g, err := core.AggregationTree(fanout, depth)
	if err != nil {
		return nil, err
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	return solver.NewProblem(g, m, solver.LongestPath)
}

// traceSeries converts a solver convergence trace into a plot series
// (elapsed milliseconds vs cost).
func traceSeries(name string, res *solver.Result) Series {
	s := Series{Name: name}
	for _, tp := range res.Trace {
		s.X = append(s.X, float64(tp.Elapsed)/float64(time.Millisecond))
		s.Y = append(s.Y, tp.Cost)
	}
	// Close the series at the final elapsed time so flat tails are visible.
	s.X = append(s.X, float64(res.Elapsed)/float64(time.Millisecond))
	s.Y = append(s.Y, res.Cost)
	return s
}

// Fig06CPClusters reproduces Fig. 6: CP convergence on LLNDP under k=5,
// k=20, and no clustering. Paper headline: k=20 converges fastest to the
// best cost; k=5 converges fast but to a worse cost; no clustering is slow.
func Fig06CPClusters(opts Options) (*Figure, error) {
	nInst, rows, cols := 100, 9, 10
	budget := solver.Budget{Time: 3 * time.Second}
	if opts.Quick {
		nInst, rows, cols = 40, 6, 6
		budget = solver.Budget{Time: 300 * time.Millisecond}
	}
	p, err := llProblem(nInst, rows, cols, opts.Seed+106)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig06", Title: "CP convergence on LLNDP by cost-cluster count",
		XLabel: "elapsed_ms", YLabel: "longest_link_ms",
	}
	configs := []struct {
		name string
		k    int
	}{{"k=5", 5}, {"k=20", 20}, {"no clustering", -1}}
	finals := map[string]float64{}
	for _, cfg := range configs {
		res, err := cp.New(cfg.k, opts.Seed+7).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, traceSeries(cfg.name, res))
		finals[cfg.name] = res.Cost
	}
	fig.note("final costs: k=5 %.3f, k=20 %.3f, none %.3f (paper: k=5 stuck high; k=20 fast and good)",
		finals["k=5"], finals["k=20"], finals["no clustering"])
	return fig, nil
}

// Fig07CPvsMIP reproduces Fig. 7: CP vs MIP convergence on LLNDP with k=20
// at 100 instances. Paper headline: CP finds a significantly better solution.
func Fig07CPvsMIP(opts Options) (*Figure, error) {
	nInst, rows, cols := 100, 9, 10
	budget := solver.Budget{Time: 3 * time.Second}
	if opts.Quick {
		nInst, rows, cols = 40, 6, 6
		budget = solver.Budget{Time: 300 * time.Millisecond}
	}
	p, err := llProblem(nInst, rows, cols, opts.Seed+107)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig07", Title: "CP vs MIP convergence on LLNDP (k=20)",
		XLabel: "elapsed_ms", YLabel: "longest_link_ms",
	}
	cpRes, err := cp.New(20, opts.Seed+7).Solve(p, budget)
	if err != nil {
		return nil, err
	}
	mipRes, err := mip.New(20, opts.Seed+7).Solve(p, budget)
	if err != nil {
		return nil, err
	}
	fig.Series = append(fig.Series, traceSeries("CP", cpRes), traceSeries("MIP", mipRes))
	fig.note("final: CP %.3f vs MIP %.3f (paper: CP significantly better at this scale)", cpRes.Cost, mipRes.Cost)
	return fig, nil
}

// Fig08CPScalability reproduces Fig. 8: average CP convergence time versus
// instance count. Convergence time is when the last improvement was found
// within a fixed search budget, averaged over several random sub-allocations
// per size. Paper headline: convergence time grows acceptably with size.
func Fig08CPScalability(opts Options) (*Figure, error) {
	sizes := []int{20, 40, 60, 80, 100}
	subsets := 5
	budget := solver.Budget{Time: 1500 * time.Millisecond}
	if opts.Quick {
		sizes = []int{12, 20, 30}
		subsets = 2
		budget = solver.Budget{Time: 200 * time.Millisecond}
	}
	fig := &Figure{
		ID: "fig08", Title: "CP convergence time vs number of instances",
		XLabel: "instances", YLabel: "convergence_ms",
	}
	s := Series{Name: "mean convergence"}
	for _, size := range sizes {
		nodes := size * 9 / 10
		rows, cols := meshDims(nodes)
		var sum float64
		for sub := 0; sub < subsets; sub++ {
			p, err := llProblem(size, rows, cols, opts.Seed+int64(108+size*10+sub))
			if err != nil {
				return nil, err
			}
			res, err := cp.New(20, opts.Seed+int64(sub)).Solve(p, budget)
			if err != nil {
				return nil, err
			}
			last := res.Trace[len(res.Trace)-1]
			sum += float64(last.Elapsed) / float64(time.Millisecond)
		}
		s.X = append(s.X, float64(size))
		s.Y = append(s.Y, sum/float64(subsets))
	}
	fig.Series = append(fig.Series, s)
	if len(s.Y) >= 2 && s.Y[0] > 0 {
		fig.note("convergence time grows %.1fx from %d to %d instances",
			s.Y[len(s.Y)-1]/s.Y[0], sizes[0], sizes[len(sizes)-1])
	}
	return fig, nil
}

// meshDims factors n into the most square rows x cols mesh with rows*cols <= n
// and at least 2 rows when possible.
func meshDims(n int) (rows, cols int) {
	best := 1
	for r := 1; r*r <= n; r++ {
		if n/r >= r {
			best = r
		}
	}
	return best, n / best
}

// Fig09LPNDPClusters reproduces Fig. 9: MIP convergence on LPNDP under
// different cluster counts. Paper headline: clustering does NOT improve
// LPNDP (sums of clustered costs are still almost all distinct), and k=5
// hurts.
func Fig09LPNDPClusters(opts Options) (*Figure, error) {
	nInst, fanout, depth := 50, 3, 3 // 40-node tree, depth 3 <= 4
	budget := solver.Budget{Time: 2 * time.Second}
	if opts.Quick {
		nInst, fanout, depth = 20, 2, 3 // 15-node tree
		budget = solver.Budget{Time: 300 * time.Millisecond}
	}
	p, err := lpProblem(nInst, fanout, depth, opts.Seed+109)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig09", Title: "MIP convergence on LPNDP by cost-cluster count",
		XLabel: "elapsed_ms", YLabel: "longest_path_ms",
	}
	configs := []struct {
		name string
		k    int
	}{{"k=5", 5}, {"k=20", 20}, {"no clustering", -1}}
	finals := map[string]float64{}
	for _, cfg := range configs {
		res, err := mip.New(cfg.k, opts.Seed+9).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		fig.Series = append(fig.Series, traceSeries(cfg.name, res))
		finals[cfg.name] = res.Cost
	}
	fig.note("final costs: k=5 %.3f, k=20 %.3f, none %.3f (paper: clustering does not help LPNDP)",
		finals["k=5"], finals["k=20"], finals["no clustering"])
	return fig, nil
}

// lightweightComparison runs the Figs. 14/15 protocol: average final cost of
// each technique over several allocations, with R2 and the systematic solver
// sharing the same budget.
func lightweightComparison(id, title string, objective solver.Objective, opts Options) (*Figure, error) {
	allocations := 20
	nInst := 50
	heavyBudget := solver.Budget{Time: 500 * time.Millisecond}
	if opts.Quick {
		allocations = 4
		nInst = 20
		heavyBudget = solver.Budget{Time: 100 * time.Millisecond}
	}
	nodes := nInst * 9 / 10

	sums := map[string]float64{}
	order := []string{"G1", "G2", "R1", "R2", "heavy"}
	heavyName := "CP"
	if objective == solver.LongestPath {
		heavyName = "MIP"
	}

	for a := 0; a < allocations; a++ {
		seed := opts.Seed + int64(114+a*97)
		var p *solver.Problem
		var err error
		if objective == solver.LongestLink {
			rows, cols := meshDims(nodes)
			p, err = llProblem(nInst, rows, cols, seed)
		} else {
			mids := nodes / 8
			if mids < 2 {
				mids = 2
			}
			leaves := nodes - 1 - mids
			dc, insts, aerr := allocate(topology.EC2Profile(), nInst, seed)
			if aerr != nil {
				return nil, aerr
			}
			g, gerr := core.TwoLevelAggregation(mids, leaves)
			if gerr != nil {
				return nil, gerr
			}
			p, err = solver.NewProblem(g, cloud.MeanRTTMatrix(dc, insts), objective)
		}
		if err != nil {
			return nil, err
		}

		solvers := map[string]solver.Solver{
			"G1": greedy.New(greedy.G1),
			"G2": greedy.New(greedy.G2),
			"R1": random.NewR1(1000, seed+1),
			"R2": random.NewR2(seed + 2),
		}
		if objective == solver.LongestLink {
			solvers["heavy"] = cp.New(20, seed+3)
		} else {
			solvers["heavy"] = mip.New(0, seed+3)
		}
		for name, sol := range solvers {
			budget := solver.Budget{Nodes: 1_000_000}
			if name == "R2" || name == "heavy" {
				budget = heavyBudget
			}
			res, err := sol.Solve(p, budget)
			if err != nil {
				return nil, err
			}
			sums[name] += res.Cost
		}
	}

	fig := &Figure{ID: id, Title: title, XLabel: "technique_idx", YLabel: "mean_cost_ms"}
	s := Series{Name: "mean final cost"}
	for i, name := range order {
		s.X = append(s.X, float64(i+1))
		s.Y = append(s.Y, sums[name]/float64(allocations))
	}
	fig.Series = append(fig.Series, s)
	fig.note("techniques: 1=G1 2=G2 3=R1 4=R2 5=%s", heavyName)
	fig.note("G1 %.3f, G2 %.3f, R1 %.3f, R2 %.3f, %s %.3f",
		sums["G1"]/float64(allocations), sums["G2"]/float64(allocations),
		sums["R1"]/float64(allocations), sums["R2"]/float64(allocations),
		heavyName, sums["heavy"]/float64(allocations))
	if objective == solver.LongestLink {
		fig.note("paper: G1 worst (+66.7%% vs CP); G2 better; R1 ~3%% below G2; R2 within ~9%% of CP")
	} else {
		fig.note("paper: R2 ~5%% BETTER than MIP; G1/G2 comparable to R1")
	}
	return fig, nil
}

// Fig14LightweightLL reproduces Fig. 14 (LLNDP lightweight comparison).
func Fig14LightweightLL(opts Options) (*Figure, error) {
	return lightweightComparison("fig14", "Lightweight approaches vs CP for LLNDP",
		solver.LongestLink, opts)
}

// Fig15LightweightLP reproduces Fig. 15 (LPNDP lightweight comparison).
func Fig15LightweightLP(opts Options) (*Figure, error) {
	return lightweightComparison("fig15", "Lightweight approaches vs MIP for LPNDP",
		solver.LongestPath, opts)
}

// distanceGrouping implements the Figs. 16/17 protocol: group links by a
// cheap distance proxy, sort each group by measured latency, and quantify
// how badly group membership predicts latency ordering.
func distanceGrouping(id, title, proxyName string, proxy func(dc *topology.Datacenter, a, b int) int, opts Options) (*Figure, error) {
	n := 100
	if opts.Quick {
		n = 40
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+116)
	if err != nil {
		return nil, err
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	groups := map[int][]float64{}
	var proxyVec, latVec []float64
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			g := proxy(dc, insts[i].Host, insts[j].Host)
			lat := m.At(i, j)
			groups[g] = append(groups[g], lat)
			proxyVec = append(proxyVec, float64(g))
			latVec = append(latVec, lat)
		}
	}
	fig := &Figure{ID: id, Title: title, XLabel: "rank_in_group", YLabel: "mean_latency_ms"}
	keys := sortedKeys(groups)
	for _, k := range keys {
		lats := groups[k]
		sort.Float64s(lats)
		s := Series{Name: fmt.Sprintf("%s=%d", proxyName, k)}
		for r, v := range lats {
			s.X = append(s.X, float64(r+1))
			s.Y = append(s.Y, v)
		}
		fig.Series = append(fig.Series, s)
	}
	r, _ := stats.Pearson(proxyVec, latVec)
	fig.note("Pearson(%s, latency) = %.3f (weak: %s does not order latency)", proxyName, r, proxyName)
	// Overlap headline: max of a lower group vs min of a higher group.
	for i := 0; i+1 < len(keys); i++ {
		lo, hi := groups[keys[i]], groups[keys[i+1]]
		if len(lo) > 0 && len(hi) > 0 && lo[len(lo)-1] > hi[0] {
			fig.note("group %s=%d overlaps %s=%d: %.3f > %.3f (monotonicity violated)",
				proxyName, keys[i], proxyName, keys[i+1], lo[len(lo)-1], hi[0])
		}
	}
	return fig, nil
}

// Fig16IPDistance reproduces Appendix 2's Fig. 16: latency ordered by IP
// distance. Paper headline: monotonicity does not hold.
func Fig16IPDistance(opts Options) (*Figure, error) {
	return distanceGrouping("fig16", "Latency order by IP distance", "ip_distance",
		func(dc *topology.Datacenter, a, b int) int { return dc.IPDistance(a, b) }, opts)
}

// Fig17HopCount reproduces Appendix 2's Fig. 17: latency ordered by hop
// count. Paper headline: many link pairs are ordered inconsistently.
func Fig17HopCount(opts Options) (*Figure, error) {
	return distanceGrouping("fig17", "Latency order by hop count", "hops",
		func(dc *topology.Datacenter, a, b int) int { return dc.Hops(a, b) }, opts)
}

func sortedKeys(m map[int][]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}
