package bench

import (
	"math"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/topology"
)

// ExtensionBandwidth exercises the bandwidth deployment criterion (future
// work, Sect. 8): minimize the longest link of an inverse-bandwidth cost
// matrix, which maximizes the bottleneck bandwidth over communication edges.

func init() {
	register("extension-bandwidth", ExtensionBandwidth)
}

// ExtensionBandwidth compares the bottleneck bandwidth of the default
// deployment against a ClouDiA deployment optimized on inverse bandwidth,
// and reports the latency cost of ignoring latency.
func ExtensionBandwidth(opts Options) (*Figure, error) {
	nInst, rows, cols := 44, 6, 6
	budget := solver.Budget{Nodes: 800_000}
	if opts.Quick {
		nInst, rows, cols = 18, 4, 4
		budget = solver.Budget{Nodes: 80_000}
	}
	dc, insts, err := allocate(topology.EC2Profile(), nInst, opts.Seed+402)
	if err != nil {
		return nil, err
	}
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()

	invBW := cloud.InverseBandwidthMatrix(dc, insts)
	pBW, err := solver.NewProblem(g, invBW, solver.LongestLink)
	if err != nil {
		return nil, err
	}
	res, err := cp.New(20, opts.Seed+43).Solve(pBW, budget)
	if err != nil {
		return nil, err
	}

	// Bottleneck bandwidth of a deployment: min over edges.
	bottleneck := func(d core.Deployment) float64 {
		min := math.Inf(1)
		for _, e := range g.Edges() {
			bw := dc.BandwidthMBps(insts[d[e.From]].Host, insts[d[e.To]].Host)
			if bw < min {
				min = bw
			}
		}
		return min
	}
	// Worst-link latency of the same deployments, to show the criteria are
	// related but not identical.
	lat := cloud.MeanRTTMatrix(dc, insts)
	pLat, err := solver.NewProblem(g, lat, solver.LongestLink)
	if err != nil {
		return nil, err
	}

	def := core.Identity(n)
	fig := &Figure{
		ID: "extension-bandwidth", Title: "Bandwidth deployment criterion (future work, Sect. 8)",
		XLabel: "config_idx", YLabel: "value",
	}
	fig.Series = append(fig.Series,
		Series{Name: "bottleneck_MBps", X: []float64{1, 2}, Y: []float64{bottleneck(def), bottleneck(res.Deployment)}},
		Series{Name: "worst_link_ms", X: []float64{1, 2}, Y: []float64{pLat.Cost(def), pLat.Cost(res.Deployment)}},
	)
	fig.note("bottleneck bandwidth: default %.0f MB/s vs bandwidth-optimized %.0f MB/s",
		bottleneck(def), bottleneck(res.Deployment))
	fig.note("worst-link latency of the same plans: %.3f ms vs %.3f ms (bandwidth optimization also helps latency: both avoid bad hosts)",
		pLat.Cost(def), pLat.Cost(res.Deployment))
	return fig, nil
}
