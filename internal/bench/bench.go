// Package bench regenerates every figure of the paper's evaluation
// (Sect. 6 and Appendices 2-3) on the simulated substrate. Each FigNN
// function runs the corresponding experiment and returns the figure's data
// series plus headline numbers, so `cmd/cloudia-bench` and the bench_test.go
// targets print the same rows the paper plots. Absolute values differ from
// the paper (the substrate is a simulator, not EC2); the shapes and
// orderings are the reproduction targets, recorded in EXPERIMENTS.md.
package bench

import (
	"fmt"
	"sort"
	"strings"
)

// Series is one plotted line/group of a figure.
type Series struct {
	Name string
	X    []float64
	Y    []float64
}

// Figure is one reproduced experiment.
type Figure struct {
	ID     string
	Title  string
	XLabel string
	YLabel string
	Series []Series
	// Notes carry the headline comparisons the paper states in prose
	// (e.g. "~10% of pairs above 0.7 ms").
	Notes []string
}

// note appends a formatted headline to the figure.
func (f *Figure) note(format string, args ...interface{}) {
	f.Notes = append(f.Notes, fmt.Sprintf(format, args...))
}

// String renders the figure as aligned text rows, one row per X value and
// one column per series.
func (f *Figure) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", f.ID, f.Title)
	if len(f.Series) > 0 {
		fmt.Fprintf(&b, "%-12s", f.XLabel)
		for _, s := range f.Series {
			fmt.Fprintf(&b, " %16s", s.Name)
		}
		b.WriteString("\n")
		rows := 0
		for _, s := range f.Series {
			if len(s.X) > rows {
				rows = len(s.X)
			}
		}
		for r := 0; r < rows; r++ {
			wrote := false
			for si, s := range f.Series {
				if r < len(s.X) {
					if !wrote {
						fmt.Fprintf(&b, "%-12.4g", s.X[r])
						wrote = true
					}
					_ = si
					fmt.Fprintf(&b, " %16.6g", s.Y[r])
				} else if wrote {
					fmt.Fprintf(&b, " %16s", "")
				}
			}
			if wrote {
				b.WriteString("\n")
			}
		}
	}
	for _, n := range f.Notes {
		fmt.Fprintf(&b, "  note: %s\n", n)
	}
	return b.String()
}

// CSV renders the figure as comma-separated rows: one header, then one row
// per (series, point), ready for any plotting tool.
func (f *Figure) CSV() string {
	var b strings.Builder
	fmt.Fprintf(&b, "figure,series,%s,%s\n", f.XLabel, f.YLabel)
	for _, s := range f.Series {
		for i := range s.X {
			fmt.Fprintf(&b, "%s,%s,%g,%g\n", f.ID, s.Name, s.X[i], s.Y[i])
		}
	}
	return b.String()
}

// Options tunes experiment scale. Zero values select defaults sized to run
// each figure in seconds on a laptop; the paper-scale values are noted per
// figure in EXPERIMENTS.md.
type Options struct {
	Seed int64
	// Quick shrinks instance counts and budgets further for smoke tests.
	Quick bool
}

// Runner executes a figure experiment.
type Runner func(Options) (*Figure, error)

// registry maps figure ids to runners; populated by init functions in the
// figure files.
var registry = map[string]Runner{}

func register(id string, r Runner) { registry[id] = r }

// Run executes the experiment with the given id ("fig01" ... "fig21",
// "ablation-*").
func Run(id string, opts Options) (*Figure, error) {
	r, ok := registry[id]
	if !ok {
		return nil, fmt.Errorf("bench: unknown figure %q (known: %s)", id, strings.Join(IDs(), ", "))
	}
	return r(opts)
}

// IDs lists the registered experiment ids in sorted order.
func IDs() []string {
	out := make([]string, 0, len(registry))
	for id := range registry {
		out = append(out, id)
	}
	sort.Strings(out)
	return out
}
