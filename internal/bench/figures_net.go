package bench

import (
	"fmt"

	"cloudia/internal/cloud"
	"cloudia/internal/measure"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// Network-level figures: latency heterogeneity and stability (Figs. 1, 2,
// 18-21) and measurement-scheme accuracy and convergence (Figs. 4, 5).

func init() {
	register("fig01", Fig01LatencyCDF)
	register("fig02", Fig02LatencyStability)
	register("fig04", Fig04MeasurementError)
	register("fig05", Fig05MeasurementConvergence)
	register("fig18", providerCDF("fig18", "Latency heterogeneity in Google Compute Engine", topology.GCEProfile, 50))
	register("fig19", providerStability("fig19", "Mean latency stability in Google Compute Engine", topology.GCEProfile, 60))
	register("fig20", providerCDF("fig20", "Latency heterogeneity in Rackspace Cloud Server", topology.RackspaceProfile, 50))
	register("fig21", providerStability("fig21", "Mean latency stability in Rackspace Cloud Server", topology.RackspaceProfile, 60))
}

// allocate builds the standard experimental fleet.
func allocate(prof topology.Profile, n int, seed int64) (*topology.Datacenter, []cloud.Instance, error) {
	dc, err := topology.New(prof, seed)
	if err != nil {
		return nil, nil, err
	}
	prov, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		return nil, nil, err
	}
	insts, err := prov.RunInstances(n)
	if err != nil {
		return nil, nil, err
	}
	return dc, insts, nil
}

// Fig01LatencyCDF reproduces Fig. 1: the CDF of mean pairwise latencies
// among 100 EC2-like instances. Paper headline: ~10% of pairs above 0.7 ms,
// bottom ~10% below 0.4 ms.
func Fig01LatencyCDF(opts Options) (*Figure, error) {
	n := 100
	if opts.Quick {
		n = 40
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+101)
	if err != nil {
		return nil, err
	}
	lat := cloud.MeanRTTMatrix(dc, insts).OffDiagonal()
	fig := &Figure{
		ID: "fig01", Title: "Latency heterogeneity in EC2 (CDF of mean pairwise latency)",
		XLabel: "latency_ms", YLabel: "CDF",
	}
	pts := stats.CDF(lat)
	s := Series{Name: "CDF"}
	for _, p := range pts {
		s.X = append(s.X, p.Value)
		s.Y = append(s.Y, p.Fraction)
	}
	fig.Series = append(fig.Series, s)
	fig.note("fraction of pairs above 0.7 ms: %.3f (paper: ~0.10)", stats.FractionAbove(lat, 0.7))
	fig.note("fraction of pairs below 0.4 ms: %.3f (paper: ~0.10)", stats.FractionBelow(lat, 0.4))
	return fig, nil
}

// Fig02LatencyStability reproduces Fig. 2: mean latencies of four
// representative links over 200 hours, averaged every 2 hours. Paper
// headline: means are stable over time.
func Fig02LatencyStability(opts Options) (*Figure, error) {
	dc, insts, err := allocate(topology.EC2Profile(), 100, opts.Seed+102)
	if err != nil {
		return nil, err
	}
	hours := 200.0
	if opts.Quick {
		hours = 40
	}
	// Four representative links spanning the latency range: pick pairs at
	// distinct layers.
	m := cloud.MeanRTTMatrix(dc, insts)
	lat := m.OffDiagonal()
	// Representative targets: min, 1/3, 2/3, max quantiles.
	q := func(p float64) float64 {
		v, _ := stats.Percentile(lat, p)
		return v
	}
	targets := []float64{q(5), q(40), q(70), q(97)}
	type link struct{ a, b int }
	links := make([]link, len(targets))
	for li, target := range targets {
		bestDiff := -1.0
		for i := 0; i < len(insts); i++ {
			for j := 0; j < len(insts); j++ {
				if i == j {
					continue
				}
				d := m.At(i, j) - target
				if d < 0 {
					d = -d
				}
				if bestDiff < 0 || d < bestDiff {
					bestDiff = d
					links[li] = link{i, j}
				}
			}
		}
	}
	fig := &Figure{
		ID: "fig02", Title: "Mean latency stability in EC2 (4 links, 2 h averages)",
		XLabel: "time_hours", YLabel: "mean_latency_ms",
	}
	var maxRel float64
	for li, lk := range links {
		s := Series{Name: fmt.Sprintf("Link %d", li+1)}
		var w stats.Welford
		for h := 0.0; h <= hours; h += 2 {
			rtt := dc.MeanRTTAt(insts[lk.a].Host, insts[lk.b].Host, h)
			s.X = append(s.X, h)
			s.Y = append(s.Y, rtt)
			w.Add(rtt)
		}
		rel := (w.Max() - w.Min()) / w.Mean()
		if rel > maxRel {
			maxRel = rel
		}
		fig.Series = append(fig.Series, s)
	}
	fig.note("max relative wobble of any link's 2 h mean: %.1f%% (paper: visually flat lines)", 100*maxRel)
	return fig, nil
}

// Fig04MeasurementError reproduces Fig. 4: CDF of per-link normalized
// relative error of the staged and uncoordinated schemes against the token
// passing baseline, on 50 instances. Paper headline: staged has 90% of links
// under 10% error and max under 30%; uncoordinated has 10% of links above
// 50% error.
func Fig04MeasurementError(opts Options) (*Figure, error) {
	n := 50
	// The parallel schemes get a short budget on purpose: the paper
	// compares schemes under equal (limited) measurement time, where the
	// uncoordinated scheme's contention noise has not yet averaged out.
	tokenMS, parMS := 60000.0, 1500.0
	if opts.Quick {
		n = 16
		tokenMS, parMS = 8000, 800
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+104)
	if err != nil {
		return nil, err
	}
	baseline, err := measure.Run(dc, insts, measure.Options{
		Scheme: measure.Token, DurationMS: tokenMS, Seed: opts.Seed + 1,
	})
	if err != nil {
		return nil, err
	}
	base := stats.NormalizeUnit(baseline.MeanMatrix().OffDiagonal())

	fig := &Figure{
		ID: "fig04", Title: "Normalized relative error vs token passing (CDF)",
		XLabel: "relative_error", YLabel: "CDF",
	}
	for _, scheme := range []measure.Scheme{measure.Staged, measure.Uncoordinated} {
		res, err := measure.Run(dc, insts, measure.Options{
			Scheme: scheme, DurationMS: parMS, Seed: opts.Seed + 2,
		})
		if err != nil {
			return nil, err
		}
		est := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
		errs, err := stats.RelativeErrors(est, base)
		if err != nil {
			return nil, err
		}
		pts := stats.CDF(errs)
		s := Series{Name: string(scheme)}
		for _, p := range pts {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		fig.Series = append(fig.Series, s)
		p90, _ := stats.Percentile(errs, 90)
		pmax, _ := stats.Percentile(errs, 100)
		fig.note("%s: p90 error %.3f, max %.3f, fraction above 0.5: %.3f",
			scheme, p90, pmax, stats.FractionAbove(errs, 0.5))
	}
	return fig, nil
}

// Fig05MeasurementConvergence reproduces Fig. 5: RMSE of the staged scheme's
// running mean estimate against the final (long-run) estimate, over
// measurement time. Paper headline: error drops quickly within the first ~1/6
// of the budget and smooths out.
func Fig05MeasurementConvergence(opts Options) (*Figure, error) {
	n := 100
	durMS := 6000.0
	if opts.Quick {
		n = 30
		durMS = 2000
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+105)
	if err != nil {
		return nil, err
	}
	res, err := measure.Run(dc, insts, measure.Options{
		Scheme: measure.Staged, DurationMS: durMS, Seed: opts.Seed + 3,
		SnapshotEveryMS: durMS / 30,
	})
	if err != nil {
		return nil, err
	}
	truth := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
	fig := &Figure{
		ID: "fig05", Title: "Staged measurement convergence (RMSE vs ground truth)",
		XLabel: "measurement_ms", YLabel: "rmse",
	}
	s := Series{Name: "RMSE"}
	for _, snap := range res.Snapshots {
		est := stats.NormalizeUnit(snap.Mean.OffDiagonal())
		rmse, err := stats.RMSE(est, truth)
		if err != nil {
			return nil, err
		}
		s.X = append(s.X, snap.AtMS)
		s.Y = append(s.Y, rmse)
	}
	fig.Series = append(fig.Series, s)
	if len(s.Y) >= 6 {
		early := s.Y[len(s.Y)/6]
		late := s.Y[len(s.Y)-2]
		fig.note("RMSE at 1/6 budget: %.4g; near end: %.4g (fast early drop, then flat)", early, late)
	}
	return fig, nil
}

// providerCDF builds the Appendix 3 heterogeneity CDFs (Figs. 18 and 20).
func providerCDF(id, title string, prof func() topology.Profile, n int) Runner {
	return func(opts Options) (*Figure, error) {
		if opts.Quick {
			n = 25
		}
		dc, insts, err := allocate(prof(), n, opts.Seed+180)
		if err != nil {
			return nil, err
		}
		lat := cloud.MeanRTTMatrix(dc, insts).OffDiagonal()
		fig := &Figure{ID: id, Title: title, XLabel: "latency_ms", YLabel: "CDF"}
		s := Series{Name: "CDF"}
		for _, p := range stats.CDF(lat) {
			s.X = append(s.X, p.Value)
			s.Y = append(s.Y, p.Fraction)
		}
		fig.Series = append(fig.Series, s)
		p5, _ := stats.Percentile(lat, 5)
		p95, _ := stats.Percentile(lat, 95)
		fig.note("p5 = %.3f ms, p95 = %.3f ms (heterogeneity present, narrower than EC2)", p5, p95)
		return fig, nil
	}
}

// providerStability builds the Appendix 3 stability plots (Figs. 19 and 21).
func providerStability(id, title string, prof func() topology.Profile, hours float64) Runner {
	return func(opts Options) (*Figure, error) {
		if opts.Quick {
			hours = 20
		}
		dc, insts, err := allocate(prof(), 50, opts.Seed+190)
		if err != nil {
			return nil, err
		}
		fig := &Figure{ID: id, Title: title, XLabel: "time_hours", YLabel: "mean_latency_ms"}
		// Four arbitrary distinct links.
		pairs := [][2]int{{0, 1}, {2, 17}, {5, 33}, {8, 44}}
		var maxRel float64
		for li, pr := range pairs {
			s := Series{Name: fmt.Sprintf("Link %d", li+1)}
			var w stats.Welford
			for h := 0.0; h <= hours; h += 1 {
				rtt := dc.MeanRTTAt(insts[pr[0]].Host, insts[pr[1]].Host, h)
				s.X = append(s.X, h)
				s.Y = append(s.Y, rtt)
				w.Add(rtt)
			}
			rel := (w.Max() - w.Min()) / w.Mean()
			if rel > maxRel {
				maxRel = rel
			}
			fig.Series = append(fig.Series, s)
		}
		fig.note("max relative wobble of hourly means: %.1f%%", 100*maxRel)
		return fig, nil
	}
}
