package bench

import (
	"fmt"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/mip"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
	"cloudia/internal/workload"
)

// System figures: metric correlation and robustness (Figs. 10, 11), overall
// effectiveness across allocations (Fig. 12), and the over-allocation sweep
// (Fig. 13).

func init() {
	register("fig10", Fig10MetricCorrelation)
	register("fig11", Fig11MetricImprovement)
	register("fig12", Fig12OverallEffectiveness)
	register("fig13", Fig13OverAllocation)
}

// Fig10MetricCorrelation reproduces Fig. 10: per-link scatter of mean
// latency against mean+SD and against p99, on one representative allocation
// of 110 instances. Paper headline: correlated but not perfectly.
func Fig10MetricCorrelation(opts Options) (*Figure, error) {
	n := 110
	durMS := 4000.0
	if opts.Quick {
		n = 30
		durMS = 1500
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+110)
	if err != nil {
		return nil, err
	}
	res, err := measure.Run(dc, insts, measure.Options{
		Scheme: measure.Staged, DurationMS: durMS, Seed: opts.Seed + 10,
	})
	if err != nil {
		return nil, err
	}
	mean := res.MeanMatrix().OffDiagonal()
	msd := res.MeanPlusStdMatrix().OffDiagonal()
	p99 := res.P99Matrix().OffDiagonal()

	fig := &Figure{
		ID: "fig10", Title: "Correlation between latency cost metrics",
		XLabel: "mean_ms", YLabel: "metric_ms",
	}
	// Subsample the scatter for readability.
	stride := len(mean)/500 + 1
	sMSD := Series{Name: "mean+SD"}
	sP99 := Series{Name: "99%"}
	for i := 0; i < len(mean); i += stride {
		sMSD.X = append(sMSD.X, mean[i])
		sMSD.Y = append(sMSD.Y, msd[i])
		sP99.X = append(sP99.X, mean[i])
		sP99.Y = append(sP99.Y, p99[i])
	}
	fig.Series = append(fig.Series, sMSD, sP99)
	rMSD, _ := stats.Pearson(mean, msd)
	rP99, _ := stats.Pearson(mean, p99)
	fig.note("Pearson(mean, mean+SD) = %.3f; Pearson(mean, p99) = %.3f (correlated, not perfectly)", rMSD, rP99)
	return fig, nil
}

// benchFleet is a reusable measured allocation for the workload experiments.
type benchFleet struct {
	dc    *topology.Datacenter
	insts []cloud.Instance
	meas  *measure.Result
}

func newBenchFleet(n int, measureMS float64, seed int64) (*benchFleet, error) {
	dc, insts, err := allocate(topology.EC2Profile(), n, seed)
	if err != nil {
		return nil, err
	}
	meas, err := measure.Run(dc, insts, measure.Options{
		Scheme: measure.Staged, DurationMS: measureMS, Seed: seed + 1,
	})
	if err != nil {
		return nil, err
	}
	return &benchFleet{dc: dc, insts: insts, meas: meas}, nil
}

// solveDeployment searches a deployment for graph g on the fleet under the
// given metric and objective, using the paper's default solvers.
func (f *benchFleet) solveDeployment(g *core.Graph, obj solver.Objective, metric string, budget solver.Budget, seed int64) (core.Deployment, error) {
	var costs *core.CostMatrix
	switch metric {
	case "mean":
		costs = f.meas.MeanMatrix()
	case "mean+sd":
		costs = f.meas.MeanPlusStdMatrix()
	case "p99":
		costs = f.meas.P99Matrix()
	default:
		return nil, fmt.Errorf("bench: unknown metric %q", metric)
	}
	p, err := solver.NewProblem(g, costs, obj)
	if err != nil {
		return nil, err
	}
	var sol solver.Solver
	if obj == solver.LongestPath {
		sol = mip.New(0, seed)
	} else {
		sol = cp.New(20, seed)
	}
	res, err := sol.Solve(p, budget)
	if err != nil {
		return nil, err
	}
	return res.Deployment, nil
}

// benchWorkloads returns the three paper workloads at bench scale: the
// behavioral simulation (LL), aggregation query (LP), and key-value store
// (LL proxy).
func benchWorkloads(quick bool) []struct {
	w   workload.Workload
	obj solver.Objective
} {
	if quick {
		return []struct {
			w   workload.Workload
			obj solver.Objective
		}{
			{&workload.BehavioralSim{Rows: 3, Cols: 3, Ticks: 20}, solver.LongestLink},
			{&workload.AggregationQuery{Mids: 2, Leaves: 6, Queries: 20}, solver.LongestPath},
			{&workload.KVStore{Frontends: 3, Storage: 6, Queries: 40, TouchK: 2}, solver.LongestLink},
		}
	}
	// Paper scale: 100 nodes for the simulation and key-value store, 50 for
	// the aggregation query (Sect. 6.4.3).
	return []struct {
		w   workload.Workload
		obj solver.Objective
	}{
		{&workload.BehavioralSim{Rows: 10, Cols: 10, Ticks: 60}, solver.LongestLink},
		{&workload.AggregationQuery{Mids: 4, Leaves: 45, Queries: 150}, solver.LongestPath},
		{&workload.KVStore{Frontends: 10, Storage: 90, Queries: 300, TouchK: 20}, solver.LongestLink},
	}
}

// Fig11MetricImprovement reproduces Fig. 11: relative performance change of
// deployments optimized under mean+SD or p99 versus deployments optimized
// under mean, per workload. Paper headline: mean is robust; p99 hurts all
// three workloads; mean+SD mixed.
func Fig11MetricImprovement(opts Options) (*Figure, error) {
	budget := solver.Budget{Nodes: 1_500_000}
	if opts.Quick {
		budget = solver.Budget{Nodes: 100_000}
	}
	fig := &Figure{
		ID: "fig11", Title: "Relative improvement of alternative cost metrics vs mean",
		XLabel: "workload_idx", YLabel: "improvement_pct",
	}
	metrics := []string{"mean+sd", "p99"}
	series := make([]Series, len(metrics))
	for i, m := range metrics {
		series[i] = Series{Name: m}
	}
	var names []string
	for wi, entry := range benchWorkloads(opts.Quick) {
		g, err := entry.w.Graph()
		if err != nil {
			return nil, err
		}
		fleet, err := newBenchFleet(g.NumNodes()+g.NumNodes()/10+1, 30*float64(g.NumNodes()), opts.Seed+int64(111+wi))
		if err != nil {
			return nil, err
		}
		base, err := fleet.solveDeployment(g, entry.obj, "mean", budget, opts.Seed+11)
		if err != nil {
			return nil, err
		}
		basePerf, err := entry.w.Run(fleet.dc, fleet.insts, base, opts.Seed+12)
		if err != nil {
			return nil, err
		}
		for mi, metric := range metrics {
			d, err := fleet.solveDeployment(g, entry.obj, metric, budget, opts.Seed+11)
			if err != nil {
				return nil, err
			}
			perf, err := entry.w.Run(fleet.dc, fleet.insts, d, opts.Seed+12)
			if err != nil {
				return nil, err
			}
			imp := (basePerf - perf) / basePerf * 100
			series[mi].X = append(series[mi].X, float64(wi+1))
			series[mi].Y = append(series[mi].Y, imp)
			fig.note("%s under %s: %+.1f%% vs mean", entry.w.Name(), metric, imp)
		}
		names = append(names, entry.w.Name())
	}
	fig.Series = series
	fig.note("workloads: 1=%s 2=%s 3=%s (paper: differences small; mean is robust)", names[0], names[1], names[2])
	return fig, nil
}

// Fig12OverallEffectiveness reproduces Fig. 12: percentage reduction in
// time-to-solution / response time of the ClouDiA deployment versus the
// default deployment, over five allocations and three workloads. Paper
// headline: 15-55% reduction.
func Fig12OverallEffectiveness(opts Options) (*Figure, error) {
	allocations := 5
	budget := solver.Budget{Nodes: 1_500_000}
	if opts.Quick {
		allocations = 2
		budget = solver.Budget{Nodes: 100_000}
	}
	fig := &Figure{
		ID: "fig12", Title: "Time reduction over allocations (ClouDiA vs default)",
		XLabel: "allocation", YLabel: "reduction_pct",
	}
	wls := benchWorkloads(opts.Quick)
	series := make([]Series, len(wls))
	minRed, maxRed := 100.0, -100.0
	for wi, entry := range wls {
		series[wi] = Series{Name: entry.w.Name()}
		g, err := entry.w.Graph()
		if err != nil {
			return nil, err
		}
		n := g.NumNodes()
		for a := 0; a < allocations; a++ {
			fleet, err := newBenchFleet(n+n/10+1, 30*float64(n), opts.Seed+int64(112+wi*31+a*7))
			if err != nil {
				return nil, err
			}
			tuned, err := fleet.solveDeployment(g, entry.obj, "mean", budget, opts.Seed+int64(a))
			if err != nil {
				return nil, err
			}
			defPerf, err := entry.w.Run(fleet.dc, fleet.insts, core.Identity(n), opts.Seed+13)
			if err != nil {
				return nil, err
			}
			tunedPerf, err := entry.w.Run(fleet.dc, fleet.insts, tuned, opts.Seed+13)
			if err != nil {
				return nil, err
			}
			red := (defPerf - tunedPerf) / defPerf * 100
			if red < minRed {
				minRed = red
			}
			if red > maxRed {
				maxRed = red
			}
			series[wi].X = append(series[wi].X, float64(a+1))
			series[wi].Y = append(series[wi].Y, red)
		}
	}
	fig.Series = series
	fig.note("reduction range across workloads and allocations: %.1f%% to %.1f%% (paper: 15-55%%)", minRed, maxRed)
	return fig, nil
}

// Fig13OverAllocation reproduces Fig. 13: behavioral-simulation
// time-to-solution for the default deployment versus ClouDiA deployments
// searched over increasingly over-allocated instance pools. Paper headline:
// 16% improvement with no over-allocation, 28% at 10%, 38% at 50%; the first
// 10% of extra instances buys the most.
func Fig13OverAllocation(opts Options) (*Figure, error) {
	w := &workload.BehavioralSim{Rows: 10, Cols: 10, Ticks: 60}
	budget := solver.Budget{Nodes: 1_500_000}
	ratios := []float64{0, 0.1, 0.2, 0.3, 0.5}
	if opts.Quick {
		w = &workload.BehavioralSim{Rows: 3, Cols: 3, Ticks: 20}
		budget = solver.Budget{Nodes: 100_000}
		ratios = []float64{0, 0.2, 0.5}
	}
	g, err := w.Graph()
	if err != nil {
		return nil, err
	}
	n := g.NumNodes()
	maxInstances := n + n/2
	fleet, err := newBenchFleet(maxInstances, 30*float64(maxInstances), opts.Seed+113)
	if err != nil {
		return nil, err
	}
	defPerf, err := w.Run(fleet.dc, fleet.insts[:n], core.Identity(n), opts.Seed+14)
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "fig13", Title: "Time-to-solution vs over-allocation ratio",
		XLabel: "over_allocation_pct", YLabel: "time_to_solution_ms",
	}
	def := Series{Name: "Default"}
	tuned := Series{Name: "ClouDiA"}
	meanAll := fleet.meas.MeanMatrix()
	for _, r := range ratios {
		avail := n + int(float64(n)*r)
		if avail > maxInstances {
			avail = maxInstances
		}
		// Restrict the cost matrix to the first avail instances, mirroring
		// the paper's use of the first (1+x)*100 instances in EC2 order.
		sub := core.NewCostMatrix(avail)
		for i := 0; i < avail; i++ {
			for j := 0; j < avail; j++ {
				if i != j {
					sub.Set(i, j, meanAll.At(i, j))
				}
			}
		}
		p, err := solver.NewProblem(g, sub, solver.LongestLink)
		if err != nil {
			return nil, err
		}
		res, err := cp.New(20, opts.Seed+15).Solve(p, budget)
		if err != nil {
			return nil, err
		}
		perf, err := w.Run(fleet.dc, fleet.insts[:avail], res.Deployment, opts.Seed+14)
		if err != nil {
			return nil, err
		}
		def.X = append(def.X, r*100)
		def.Y = append(def.Y, defPerf)
		tuned.X = append(tuned.X, r*100)
		tuned.Y = append(tuned.Y, perf)
		fig.note("over-allocation %.0f%%: improvement %.1f%%", r*100, (defPerf-perf)/defPerf*100)
	}
	fig.Series = append(fig.Series, def, tuned)
	return fig, nil
}
