package bench

import (
	"cloudia/internal/advisor"
	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/stats"
	"cloudia/internal/topology"
)

// Extension experiments for the paper's discussed-but-unevaluated modes:
// iterative re-deployment under changing network conditions (Sect. 2.2.1),
// overlapped measurement and application execution (Sect. 2.2.2), and the
// weighted-communication-graph formulation (future work, Sect. 8).

func init() {
	register("extension-redeploy", ExtensionRedeploy)
	register("extension-overlap", ExtensionOverlap)
	register("extension-weighted", ExtensionWeighted)
}

// ExtensionRedeploy runs the Sect. 2.2.1 adaptive session on a
// non-stationary network: the regime shifts every period, the static plan
// decays, and the adaptive plan re-measures and re-deploys.
func ExtensionRedeploy(opts Options) (*Figure, error) {
	prof := topology.EC2Profile()
	prof.RegimeHours = 8
	rows, cols, periods := 5, 5, 5
	budget := solver.Budget{Nodes: 600_000}
	if opts.Quick {
		rows, cols, periods = 3, 3, 3
		budget = solver.Budget{Nodes: 80_000}
	}
	dc, err := topology.New(prof, opts.Seed+301)
	if err != nil {
		return nil, err
	}
	prov, err := cloud.NewProvider(dc, 0.6, opts.Seed+302)
	if err != nil {
		return nil, err
	}
	g, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, err
	}
	rep, err := advisor.RunRedeploy(prov, advisor.RedeployConfig{
		Graph:          g,
		Objective:      solver.LongestLink,
		OverAllocation: 0.25,
		PeriodHours:    prof.RegimeHours,
		Periods:        periods,
		MinImprovement: 0.05,
		Seed:           opts.Seed + 303,
		SolverBudget:   budget,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "extension-redeploy", Title: "Adaptive re-deployment under regime changes (Sect. 2.2.1)",
		XLabel: "time_hours", YLabel: "longest_link_ms",
	}
	static := Series{Name: "static plan"}
	adaptive := Series{Name: "adaptive plan"}
	for _, p := range rep.Periods {
		static.X = append(static.X, p.Hours)
		static.Y = append(static.Y, p.StaticCost)
		adaptive.X = append(adaptive.X, p.Hours)
		adaptive.Y = append(adaptive.Y, p.AdaptiveCost)
	}
	fig.Series = append(fig.Series, static, adaptive)
	fig.note("mean cost: static %.3f vs adaptive %.3f; %d re-deployments moving %d nodes total",
		rep.MeanStaticCost(), rep.MeanAdaptiveCost(), rep.Redeployments, rep.TotalMoves)
	return fig, nil
}

// ExtensionOverlap quantifies the Sect. 2.2.2 trade-off: measuring while the
// application runs saves idle time but application traffic interferes with
// probes. Compares staged-measurement accuracy with and without a running
// mesh application.
func ExtensionOverlap(opts Options) (*Figure, error) {
	n := 30
	durMS := 2500.0
	if opts.Quick {
		n = 12
		durMS = 1000
	}
	dc, insts, err := allocate(topology.EC2Profile(), n, opts.Seed+304)
	if err != nil {
		return nil, err
	}
	truth := stats.NormalizeUnit(cloud.MeanRTTMatrix(dc, insts).OffDiagonal())

	p90Of := func(bg *measure.BackgroundTraffic) (float64, error) {
		res, err := measure.Run(dc, insts, measure.Options{
			Scheme:     measure.Staged,
			DurationMS: durMS,
			Seed:       opts.Seed + 305,
			Background: bg,
		})
		if err != nil {
			return 0, err
		}
		est := stats.NormalizeUnit(res.MeanMatrix().OffDiagonal())
		errs, err := stats.RelativeErrors(est, truth)
		if err != nil {
			return 0, err
		}
		return stats.Percentile(errs, 90)
	}

	dedicated, err := p90Of(nil)
	if err != nil {
		return nil, err
	}
	// Application traffic: a ring over all instances exchanging 4 KB every
	// 0.5 ms — a busy service.
	var pairs [][2]int
	for i := 0; i < n; i++ {
		pairs = append(pairs, [2]int{i, (i + 1) % n})
	}
	overlapped, err := p90Of(&measure.BackgroundTraffic{
		Pairs: pairs, MsgBytes: 4096, IntervalMS: 0.5,
	})
	if err != nil {
		return nil, err
	}
	fig := &Figure{
		ID: "extension-overlap", Title: "Overlapped measurement accuracy (Sect. 2.2.2)",
		XLabel: "config_idx", YLabel: "p90_relative_error",
	}
	fig.Series = append(fig.Series, Series{
		Name: "p90 error",
		X:    []float64{1, 2},
		Y:    []float64{dedicated, overlapped},
	})
	fig.note("dedicated measurement p90 error %.4f; overlapped with app traffic %.4f", dedicated, overlapped)
	fig.note("overlap degrades accuracy but remains usable for good/bad link discrimination")
	return fig, nil
}

// ExtensionWeighted evaluates the weighted-graph formulation: a mesh whose
// vertical links carry 4x the traffic of horizontal links. The weighted
// solver places heavy links on cheap instance pairs; the unweighted solver
// treats all links alike and pays more weighted cost.
func ExtensionWeighted(opts Options) (*Figure, error) {
	nInst, rows, cols := 44, 6, 6
	budget := solver.Budget{Nodes: 800_000}
	if opts.Quick {
		nInst, rows, cols = 18, 4, 4
		budget = solver.Budget{Nodes: 80_000}
	}
	dc, insts, err := allocate(topology.EC2Profile(), nInst, opts.Seed+306)
	if err != nil {
		return nil, err
	}
	m := cloud.MeanRTTMatrix(dc, insts)

	weighted, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, err
	}
	// Vertical mesh edges (stride cols apart) carry weight 4.
	for _, e := range weighted.Edges() {
		if e.From-e.To == cols || e.To-e.From == cols {
			if err := weighted.SetWeight(e.From, e.To, 4); err != nil {
				return nil, err
			}
		}
	}
	unweighted, err := core.Mesh2D(rows, cols)
	if err != nil {
		return nil, err
	}

	pWeighted, err := solver.NewProblem(weighted, m, solver.LongestLink)
	if err != nil {
		return nil, err
	}
	pUnweighted, err := solver.NewProblem(unweighted, m, solver.LongestLink)
	if err != nil {
		return nil, err
	}
	wRes, err := cp.New(20, opts.Seed+31).Solve(pWeighted, budget)
	if err != nil {
		return nil, err
	}
	uRes, err := cp.New(20, opts.Seed+31).Solve(pUnweighted, budget)
	if err != nil {
		return nil, err
	}
	// Evaluate both deployments under the weighted objective.
	uCostWeighted := pWeighted.Cost(uRes.Deployment)
	fig := &Figure{
		ID: "extension-weighted", Title: "Weighted communication graphs (future work, Sect. 8)",
		XLabel: "config_idx", YLabel: "weighted_longest_link_ms",
	}
	fig.Series = append(fig.Series, Series{
		Name: "weighted cost",
		X:    []float64{1, 2},
		Y:    []float64{wRes.Cost, uCostWeighted},
	})
	fig.note("weight-aware solve %.3f vs weight-blind solve %.3f (evaluated under weighted objective)",
		wRes.Cost, uCostWeighted)
	return fig, nil
}
