// Package stats provides the small statistical toolkit used throughout the
// ClouDiA reproduction: streaming mean/variance, percentiles, vector error
// measures, and correlation. All functions are deterministic and
// allocation-conscious so they can run inside the discrete-event simulator
// and inside solver inner loops.
package stats

import (
	"errors"
	"math"
	"sort"
)

// ErrEmpty is returned by aggregations that require at least one sample.
var ErrEmpty = errors.New("stats: empty sample set")

// Welford accumulates a running mean and variance using Welford's online
// algorithm. The zero value is ready to use.
type Welford struct {
	n    int
	mean float64
	m2   float64
	min  float64
	max  float64
}

// Add incorporates one observation.
func (w *Welford) Add(x float64) {
	if w.n == 0 {
		w.min, w.max = x, x
	} else {
		if x < w.min {
			w.min = x
		}
		if x > w.max {
			w.max = x
		}
	}
	w.n++
	delta := x - w.mean
	w.mean += delta / float64(w.n)
	w.m2 += delta * (x - w.mean)
}

// N reports the number of observations added.
func (w *Welford) N() int { return w.n }

// Mean reports the running mean, or 0 if no observations were added.
func (w *Welford) Mean() float64 { return w.mean }

// Var reports the population variance, or 0 for fewer than two observations.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n)
}

// Std reports the population standard deviation.
func (w *Welford) Std() float64 { return math.Sqrt(w.Var()) }

// Min reports the smallest observation, or 0 if none were added.
func (w *Welford) Min() float64 { return w.min }

// Max reports the largest observation, or 0 if none were added.
func (w *Welford) Max() float64 { return w.max }

// Merge folds other into w, as if every observation added to other had been
// added to w. Merging with an empty accumulator is a no-op.
func (w *Welford) Merge(other Welford) {
	if other.n == 0 {
		return
	}
	if w.n == 0 {
		*w = other
		return
	}
	n := w.n + other.n
	delta := other.mean - w.mean
	w.mean += delta * float64(other.n) / float64(n)
	w.m2 += other.m2 + delta*delta*float64(w.n)*float64(other.n)/float64(n)
	if other.min < w.min {
		w.min = other.min
	}
	if other.max > w.max {
		w.max = other.max
	}
	w.n = n
}

// Mean returns the arithmetic mean of xs.
func Mean(xs []float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	sum := 0.0
	for _, x := range xs {
		sum += x
	}
	return sum / float64(len(xs)), nil
}

// Std returns the population standard deviation of xs.
func Std(xs []float64) (float64, error) {
	m, err := Mean(xs)
	if err != nil {
		return 0, err
	}
	ss := 0.0
	for _, x := range xs {
		d := x - m
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(xs))), nil
}

// Percentile returns the p-th percentile (0 <= p <= 100) of xs using linear
// interpolation between closest ranks. xs is not modified.
func Percentile(xs []float64, p float64) (float64, error) {
	if len(xs) == 0 {
		return 0, ErrEmpty
	}
	if p < 0 || p > 100 {
		return 0, errors.New("stats: percentile out of range [0,100]")
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	if len(sorted) == 1 {
		return sorted[0], nil
	}
	rank := p / 100 * float64(len(sorted)-1)
	lo := int(math.Floor(rank))
	hi := int(math.Ceil(rank))
	if lo == hi {
		return sorted[lo], nil
	}
	frac := rank - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac, nil
}

// RMSE returns the root-mean-square error between two equal-length vectors.
func RMSE(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: RMSE length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	ss := 0.0
	for i := range a {
		d := a[i] - b[i]
		ss += d * d
	}
	return math.Sqrt(ss / float64(len(a))), nil
}

// NormalizeUnit scales xs to a unit (L2) vector, returning a fresh slice. If
// xs has zero norm the result is a zero vector of the same length. The paper
// normalizes latency vectors to unit length before comparing measurement
// schemes so that a uniform over/under-estimation factor does not count as
// error (Sect. 6.2.2).
func NormalizeUnit(xs []float64) []float64 {
	out := make([]float64, len(xs))
	norm := 0.0
	for _, x := range xs {
		norm += x * x
	}
	norm = math.Sqrt(norm)
	if norm == 0 {
		return out
	}
	for i, x := range xs {
		out[i] = x / norm
	}
	return out
}

// RelativeErrors returns |a[i]-b[i]| / b[i] for every i with b[i] != 0;
// entries with b[i] == 0 yield 0 when a[i] == 0 and +Inf otherwise.
func RelativeErrors(a, b []float64) ([]float64, error) {
	if len(a) != len(b) {
		return nil, errors.New("stats: RelativeErrors length mismatch")
	}
	out := make([]float64, len(a))
	for i := range a {
		switch {
		case b[i] != 0:
			out[i] = math.Abs(a[i]-b[i]) / math.Abs(b[i])
		case a[i] == 0:
			out[i] = 0
		default:
			out[i] = math.Inf(1)
		}
	}
	return out, nil
}

// Pearson returns the Pearson correlation coefficient of two equal-length
// vectors. It returns 0 when either vector has zero variance.
func Pearson(a, b []float64) (float64, error) {
	if len(a) != len(b) {
		return 0, errors.New("stats: Pearson length mismatch")
	}
	if len(a) == 0 {
		return 0, ErrEmpty
	}
	ma, _ := Mean(a)
	mb, _ := Mean(b)
	var sab, saa, sbb float64
	for i := range a {
		da, db := a[i]-ma, b[i]-mb
		sab += da * db
		saa += da * da
		sbb += db * db
	}
	if saa == 0 || sbb == 0 {
		return 0, nil
	}
	return sab / math.Sqrt(saa*sbb), nil
}

// CDFPoint is one step of an empirical CDF.
type CDFPoint struct {
	Value    float64 // sample value
	Fraction float64 // fraction of samples <= Value
}

// CDF returns the empirical CDF of xs as a sorted sequence of points, one per
// distinct value.
func CDF(xs []float64) []CDFPoint {
	if len(xs) == 0 {
		return nil
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	out := make([]CDFPoint, 0, len(sorted))
	n := float64(len(sorted))
	for i := 0; i < len(sorted); i++ {
		// Collapse runs of equal values into a single step.
		if i+1 < len(sorted) && sorted[i+1] == sorted[i] {
			continue
		}
		out = append(out, CDFPoint{Value: sorted[i], Fraction: float64(i+1) / n})
	}
	return out
}

// FractionAbove returns the fraction of samples strictly greater than
// threshold.
func FractionAbove(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x > threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}

// FractionBelow returns the fraction of samples strictly less than threshold.
func FractionBelow(xs []float64, threshold float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	n := 0
	for _, x := range xs {
		if x < threshold {
			n++
		}
	}
	return float64(n) / float64(len(xs))
}
