package stats

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b, eps float64) bool { return math.Abs(a-b) <= eps }

func TestWelfordAgainstDirect(t *testing.T) {
	xs := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	var w Welford
	for _, x := range xs {
		w.Add(x)
	}
	if w.N() != len(xs) {
		t.Fatalf("N = %d, want %d", w.N(), len(xs))
	}
	if !almostEqual(w.Mean(), 5, 1e-12) {
		t.Fatalf("Mean = %g, want 5", w.Mean())
	}
	if !almostEqual(w.Std(), 2, 1e-12) {
		t.Fatalf("Std = %g, want 2", w.Std())
	}
	if w.Min() != 2 || w.Max() != 9 {
		t.Fatalf("Min/Max = %g/%g, want 2/9", w.Min(), w.Max())
	}
}

func TestWelfordEmptyAndSingle(t *testing.T) {
	var w Welford
	if w.Mean() != 0 || w.Var() != 0 {
		t.Fatal("empty Welford not zero")
	}
	w.Add(3)
	if w.Mean() != 3 || w.Var() != 0 {
		t.Fatalf("single-sample Welford mean=%g var=%g", w.Mean(), w.Var())
	}
}

func TestWelfordMerge(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n1, n2 := 1+rng.Intn(50), 1+rng.Intn(50)
		var a, b, all Welford
		for i := 0; i < n1; i++ {
			x := rng.NormFloat64()
			a.Add(x)
			all.Add(x)
		}
		for i := 0; i < n2; i++ {
			x := rng.NormFloat64()
			b.Add(x)
			all.Add(x)
		}
		a.Merge(b)
		return a.N() == all.N() &&
			almostEqual(a.Mean(), all.Mean(), 1e-9) &&
			almostEqual(a.Var(), all.Var(), 1e-9) &&
			a.Min() == all.Min() && a.Max() == all.Max()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}

func TestWelfordMergeEmpty(t *testing.T) {
	var a, b Welford
	a.Add(1)
	a.Add(3)
	a.Merge(b) // merging empty is a no-op
	if a.N() != 2 || a.Mean() != 2 {
		t.Fatalf("merge with empty changed state: n=%d mean=%g", a.N(), a.Mean())
	}
	b.Merge(a) // merging into empty copies
	if b.N() != 2 || b.Mean() != 2 {
		t.Fatalf("merge into empty: n=%d mean=%g", b.N(), b.Mean())
	}
}

func TestMeanStdErrors(t *testing.T) {
	if _, err := Mean(nil); err != ErrEmpty {
		t.Fatalf("Mean(nil) err = %v, want ErrEmpty", err)
	}
	if _, err := Std(nil); err != ErrEmpty {
		t.Fatalf("Std(nil) err = %v, want ErrEmpty", err)
	}
}

func TestPercentile(t *testing.T) {
	xs := []float64{1, 2, 3, 4, 5}
	cases := []struct {
		p    float64
		want float64
	}{
		{0, 1}, {50, 3}, {100, 5}, {25, 2}, {75, 4}, {90, 4.6},
	}
	for _, c := range cases {
		got, err := Percentile(xs, c.p)
		if err != nil {
			t.Fatalf("Percentile(%g): %v", c.p, err)
		}
		if !almostEqual(got, c.want, 1e-12) {
			t.Fatalf("Percentile(%g) = %g, want %g", c.p, got, c.want)
		}
	}
	if _, err := Percentile(xs, 101); err == nil {
		t.Fatal("Percentile(101) accepted")
	}
	if _, err := Percentile(nil, 50); err != ErrEmpty {
		t.Fatal("Percentile(nil) should be ErrEmpty")
	}
	one, err := Percentile([]float64{7}, 99)
	if err != nil || one != 7 {
		t.Fatalf("Percentile single = %g, %v", one, err)
	}
}

func TestPercentileDoesNotMutate(t *testing.T) {
	xs := []float64{3, 1, 2}
	if _, err := Percentile(xs, 50); err != nil {
		t.Fatal(err)
	}
	if xs[0] != 3 || xs[1] != 1 || xs[2] != 2 {
		t.Fatalf("input mutated: %v", xs)
	}
}

func TestRMSE(t *testing.T) {
	got, err := RMSE([]float64{1, 2, 3}, []float64{1, 2, 3})
	if err != nil || got != 0 {
		t.Fatalf("RMSE identical = %g, %v", got, err)
	}
	got, err = RMSE([]float64{0, 0}, []float64{3, 4})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(got, math.Sqrt(12.5), 1e-12) {
		t.Fatalf("RMSE = %g, want %g", got, math.Sqrt(12.5))
	}
	if _, err := RMSE([]float64{1}, []float64{1, 2}); err == nil {
		t.Fatal("length mismatch accepted")
	}
}

func TestNormalizeUnit(t *testing.T) {
	v := NormalizeUnit([]float64{3, 4})
	if !almostEqual(v[0], 0.6, 1e-12) || !almostEqual(v[1], 0.8, 1e-12) {
		t.Fatalf("NormalizeUnit = %v", v)
	}
	z := NormalizeUnit([]float64{0, 0, 0})
	for _, x := range z {
		if x != 0 {
			t.Fatalf("zero vector normalized to %v", z)
		}
	}
	// Scale invariance: normalizing k*x equals normalizing x.
	a := NormalizeUnit([]float64{1, 2, 3})
	b := NormalizeUnit([]float64{10, 20, 30})
	for i := range a {
		if !almostEqual(a[i], b[i], 1e-12) {
			t.Fatalf("not scale invariant: %v vs %v", a, b)
		}
	}
}

func TestRelativeErrors(t *testing.T) {
	out, err := RelativeErrors([]float64{1.1, 2}, []float64{1, 2})
	if err != nil {
		t.Fatal(err)
	}
	if !almostEqual(out[0], 0.1, 1e-9) || out[1] != 0 {
		t.Fatalf("RelativeErrors = %v", out)
	}
	out, err = RelativeErrors([]float64{0, 1}, []float64{0, 0})
	if err != nil {
		t.Fatal(err)
	}
	if out[0] != 0 || !math.IsInf(out[1], 1) {
		t.Fatalf("zero-baseline handling = %v", out)
	}
}

func TestPearson(t *testing.T) {
	// Perfect positive and negative correlation.
	x := []float64{1, 2, 3, 4}
	r, err := Pearson(x, []float64{2, 4, 6, 8})
	if err != nil || !almostEqual(r, 1, 1e-12) {
		t.Fatalf("Pearson = %g, %v, want 1", r, err)
	}
	r, err = Pearson(x, []float64{8, 6, 4, 2})
	if err != nil || !almostEqual(r, -1, 1e-12) {
		t.Fatalf("Pearson = %g, want -1", r)
	}
	// Zero variance yields 0.
	r, err = Pearson(x, []float64{5, 5, 5, 5})
	if err != nil || r != 0 {
		t.Fatalf("Pearson constant = %g, want 0", r)
	}
}

func TestCDF(t *testing.T) {
	pts := CDF([]float64{3, 1, 1, 2})
	if len(pts) != 3 {
		t.Fatalf("CDF points = %d, want 3", len(pts))
	}
	if pts[0].Value != 1 || !almostEqual(pts[0].Fraction, 0.5, 1e-12) {
		t.Fatalf("first point = %+v", pts[0])
	}
	if pts[2].Value != 3 || pts[2].Fraction != 1 {
		t.Fatalf("last point = %+v", pts[2])
	}
	if CDF(nil) != nil {
		t.Fatal("CDF(nil) should be nil")
	}
}

func TestFractions(t *testing.T) {
	xs := []float64{1, 2, 3, 4}
	if got := FractionAbove(xs, 2.5); got != 0.5 {
		t.Fatalf("FractionAbove = %g, want 0.5", got)
	}
	if got := FractionBelow(xs, 2); got != 0.25 {
		t.Fatalf("FractionBelow = %g, want 0.25", got)
	}
	if FractionAbove(nil, 0) != 0 || FractionBelow(nil, 0) != 0 {
		t.Fatal("empty fractions should be 0")
	}
}

// Property: CDF fractions are nondecreasing and end at 1.
func TestCDFMonotoneProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		xs := make([]float64, 1+rng.Intn(100))
		for i := range xs {
			xs[i] = rng.NormFloat64()
		}
		pts := CDF(xs)
		prev := 0.0
		for _, p := range pts {
			if p.Fraction < prev {
				return false
			}
			prev = p.Fraction
		}
		return almostEqual(pts[len(pts)-1].Fraction, 1, 1e-12)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Fatal(err)
	}
}
