// Package par is the repo's bounded data-parallelism primitive: a tiny,
// dependency-free worker fan-out used by the cold paths (Prep artifact
// construction, multi-tenant WAL replay) to use every core while keeping
// outputs bit-equal to the sequential build.
//
// The determinism contract is structural, not scheduling-based: For splits
// an index range into contiguous chunks and every body writes only into its
// own index range, so the bytes produced are independent of how chunks are
// scheduled; reductions that need an order (pair-list merges, error
// selection, cache re-seeding) happen after the barrier in ascending index
// order. Nothing in this package introduces ordering of its own — a caller
// whose body writes outside its chunk gets the race it wrote.
//
// Workers() == 1 is the standing fallback: For and Do then run their bodies
// inline on the calling goroutine, spawning nothing, so the sequential path
// is byte-for-byte and allocation-for-allocation the code that ran before
// parallelism existed.
package par

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// workers holds the configured bound; 0 means "GOMAXPROCS at call time",
// which tracks runtime changes instead of freezing a boot-time snapshot.
var workers atomic.Int64

// SetWorkers bounds the fan-out of every later For and Do call. n <= 0
// restores the default (GOMAXPROCS at each call). n == 1 disables
// goroutine spawning entirely. Values above GOMAXPROCS are honored as
// given — explicit oversubscription is how 1-core machines exercise the
// concurrent paths under the race detector — but the default never
// exceeds GOMAXPROCS.
func SetWorkers(n int) {
	if n < 0 {
		n = 0
	}
	workers.Store(int64(n))
}

// Workers reports the effective fan-out bound.
func Workers() int {
	if n := int(workers.Load()); n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// For runs body over the index range [0, n) split into at most Workers()
// contiguous chunks, one goroutine per chunk, and returns after every chunk
// completes. body(lo, hi) must confine its writes to data indexed by
// [lo, hi); under that contract the result is bit-equal to body(0, n).
// With one worker (or n <= 1) body runs inline with zero overhead.
func For(n int, body func(lo, hi int)) {
	if n <= 0 {
		return
	}
	w := Workers()
	if w > n {
		w = n
	}
	if w <= 1 {
		body(0, n)
		return
	}
	chunk := (n + w - 1) / w
	var wg sync.WaitGroup
	for lo := chunk; lo < n; lo += chunk {
		hi := lo + chunk
		if hi > n {
			hi = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			body(lo, hi)
		}(lo, hi)
	}
	// The first chunk runs on the calling goroutine: one fewer handoff, and
	// the w == 1 inline semantics fall out of the same code path.
	body(0, chunk)
	wg.Wait()
}

// Do runs the given independent functions concurrently — one goroutine per
// function beyond the first, which runs on the caller — and returns after
// all complete. With one worker the functions run sequentially inline in
// argument order, so error/result selection by argument order is
// deterministic either way.
func Do(fns ...func()) {
	if len(fns) == 0 {
		return
	}
	if len(fns) == 1 || Workers() <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns[1:] {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	fns[0]()
	wg.Wait()
}
