package par

import (
	"runtime"
	"sync/atomic"
	"testing"
)

func TestWorkersDefaultsToGOMAXPROCS(t *testing.T) {
	SetWorkers(0)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() = %d, want GOMAXPROCS %d", got, want)
	}
	SetWorkers(-3)
	if got, want := Workers(), runtime.GOMAXPROCS(0); got != want {
		t.Fatalf("Workers() after negative set = %d, want %d", got, want)
	}
}

func TestWorkersHonorsExplicitOversubscription(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(7)
	if got := Workers(); got != 7 {
		t.Fatalf("Workers() = %d, want the explicit 7", got)
	}
}

func TestForCoversRangeExactlyOnce(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 2, 3, 8} {
		SetWorkers(w)
		for _, n := range []int{0, 1, 2, 7, 64, 1000} {
			hits := make([]int32, n)
			For(n, func(lo, hi int) {
				if lo < 0 || hi > n || lo > hi {
					t.Errorf("workers=%d n=%d: chunk [%d,%d) out of range", w, n, lo, hi)
				}
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", w, n, i, h)
				}
			}
		}
	}
}

func TestForSingleWorkerRunsInline(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	calls := 0
	For(100, func(lo, hi int) {
		calls++
		if lo != 0 || hi != 100 {
			t.Fatalf("inline chunk [%d,%d), want [0,100)", lo, hi)
		}
	})
	if calls != 1 {
		t.Fatalf("single-worker For made %d calls, want 1", calls)
	}
}

func TestDoRunsEverything(t *testing.T) {
	defer SetWorkers(0)
	for _, w := range []int{1, 4} {
		SetWorkers(w)
		var ran [5]atomic.Bool
		fns := make([]func(), len(ran))
		for i := range fns {
			i := i
			fns[i] = func() { ran[i].Store(true) }
		}
		Do(fns...)
		for i := range ran {
			if !ran[i].Load() {
				t.Fatalf("workers=%d: fn %d did not run", w, i)
			}
		}
	}
	Do() // no-op
}

func TestDoSingleWorkerPreservesOrder(t *testing.T) {
	defer SetWorkers(0)
	SetWorkers(1)
	var order []int
	Do(
		func() { order = append(order, 0) },
		func() { order = append(order, 1) },
		func() { order = append(order, 2) },
	)
	for i, v := range order {
		if v != i {
			t.Fatalf("sequential Do order = %v", order)
		}
	}
	if len(order) != 3 {
		t.Fatalf("sequential Do ran %d fns, want 3", len(order))
	}
}
