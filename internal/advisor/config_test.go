package advisor

import (
	"math"
	"strings"
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

// The naive ceil(n*(1+ratio)) over-allocated one extra instance whenever
// the float product landed just above an integer (10*1.1 =
// 11.000000000000002 -> 12). The robust rounding must give exactly
// n + ceil(n*ratio) across a table that includes the pathological cases.
func TestOverAllocateTable(t *testing.T) {
	cases := []struct {
		n     int
		ratio float64
		want  int
	}{
		{10, 0.1, 11},   // the reported bug: 10*1.1 lands one ulp above 11
		{10, 0, 10},     // no over-allocation
		{10, 0.15, 12},  // fractional extra rounds up: 1.5 -> 2
		{100, 0.1, 110}, // 100*1.1 = 110.00000000000001
		{7, 0.1, 8},     // 0.7 extra -> 1
		{3, 1.0 / 3.0, 4},
		{49, 0.1, 54}, // 4.9 extra -> 5
		{55, 0.2, 66}, // 55*1.2 = 66.00000000000001
		{1000, 0.001, 1001},
		{2, 2.0, 6},
		{12, 0.25, 15},
		{10, 1e-12, 10}, // sub-epsilon ratios round to no extras
	}
	for _, c := range cases {
		if got := OverAllocate(c.n, c.ratio); got != c.want {
			t.Errorf("OverAllocate(%d, %g) = %d, want %d", c.n, c.ratio, got, c.want)
		}
	}
	// Sweep: the result must always lie in [n + floor(n*r), n + ceil(n*r)]
	// and never exceed the exact extra count by a whole instance.
	for n := 2; n < 200; n++ {
		for _, r := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
			exact := float64(n) * r
			got := OverAllocate(n, r)
			lo, hi := n+int(math.Floor(exact)), n+int(math.Ceil(exact+1e-9))
			if got < lo || got > hi {
				t.Fatalf("OverAllocate(%d, %g) = %d outside [%d, %d]", n, r, got, lo, hi)
			}
		}
	}
}

func validationProvider(t *testing.T) *cloud.Provider {
	t.Helper()
	dc, err := topology.New(topology.EC2Profile(), 11)
	if err != nil {
		t.Fatal(err)
	}
	prov, err := cloud.NewProvider(dc, 0.5, 12)
	if err != nil {
		t.Fatal(err)
	}
	return prov
}

// A bad metric, scheme, objective, or solver name must be rejected before
// any instance is allocated, by both pipelines.
func TestConfigValidatedBeforeAllocation(t *testing.T) {
	g, err := core.Mesh2D(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	base := Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}}
	bad := []struct {
		name string
		mut  func(*Config)
		want string
	}{
		{"metric", func(c *Config) { c.Metric = "p42" }, "unknown metric"},
		{"scheme", func(c *Config) { c.Scheme = "osmosis" }, "unknown measurement scheme"},
		{"objective", func(c *Config) { c.Objective = "shortest-link" }, "unknown objective"},
		{"solver", func(c *Config) { c.SolverName = "oracle" }, "unknown solver"},
	}
	for _, tc := range bad {
		t.Run(tc.name, func(t *testing.T) {
			prov := validationProvider(t)
			cfg := base
			tc.mut(&cfg)
			if _, err := Advise(prov, cfg); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("Advise error = %v, want %q", err, tc.want)
			}
			if prov.LiveInstances() != 0 {
				t.Fatalf("Advise allocated %d instances before validating", prov.LiveInstances())
			}
			if _, err := StreamingAdvise(prov, StreamingConfig{Config: cfg}); err == nil || !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("StreamingAdvise error = %v, want %q", err, tc.want)
			}
			if prov.LiveInstances() != 0 {
				t.Fatalf("StreamingAdvise allocated %d instances before validating", prov.LiveInstances())
			}
		})
	}
}

// The streaming pipeline additionally rejects mean+sd up front — the one
// metric with no incremental per-epoch form. Percentile metrics, which the
// old pipeline also refused, now pass validation: epochs carry
// sketch-based tail matrices.
func TestStreamingRejectsMeanPlusStdEarly(t *testing.T) {
	g, err := core.Mesh2D(2, 3)
	if err != nil {
		t.Fatal(err)
	}
	prov := validationProvider(t)
	_, err = StreamingAdvise(prov, StreamingConfig{Config: Config{
		Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink, Metric: MetricMeanPlusStd},
	}})
	if err == nil || !strings.Contains(err.Error(), "does not support") {
		t.Fatalf("mean+sd: error = %v, want streaming-metric rejection", err)
	}
	if prov.LiveInstances() != 0 {
		t.Fatal("mean+sd: instances allocated before validation")
	}
	// Mean (and the empty default) and the percentile metrics must pass.
	for _, metric := range []Metric{MetricMean, MetricP95, MetricP99} {
		cfg := StreamingConfig{Config: Config{
			Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink, Metric: metric},
		}}
		if err := cfg.validate(); err != nil {
			t.Fatalf("metric %q rejected: %v", metric, err)
		}
	}
}
