package advisor

import (
	"strings"
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

// Failure-injection tests: the advisor must fail cleanly, not panic or leak
// instances, when the environment misbehaves.

func tinyProvider(t *testing.T) *cloud.Provider {
	t.Helper()
	prof := topology.EC2Profile()
	prof.Racks = 2
	prof.HostsPerRack = 2
	prof.RacksPerAgg = 1
	prof.SlotsPerHost = 2 // 8 slots total
	dc, err := topology.New(prof, 1)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cloud.NewProvider(dc, 0, 2)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestAdviseCapacityExhausted(t *testing.T) {
	p := tinyProvider(t)
	g, err := core.Mesh2D(4, 4) // 16 nodes > 8 slots
	if err != nil {
		t.Fatal(err)
	}
	_, err = Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, Seed: 3})
	if err == nil {
		t.Fatal("over-capacity advise succeeded")
	}
	if !strings.Contains(err.Error(), "capacity") {
		t.Fatalf("unhelpful error: %v", err)
	}
	// Nothing may leak: a failed allocation leaves no live instances.
	if p.LiveInstances() != 0 {
		t.Fatalf("%d instances leaked after failed advise", p.LiveInstances())
	}
}

func TestAdviseOverAllocationPushesOverCapacity(t *testing.T) {
	p := tinyProvider(t)
	g, err := core.Mesh2D(2, 4) // 8 nodes == capacity; 10% extra won't fit
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Advise(p, Config{
		Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, OverAllocation: 0.25, Seed: 5,
	}); err == nil {
		t.Fatal("over-capacity over-allocation succeeded")
	}
	if p.LiveInstances() != 0 {
		t.Fatalf("%d instances leaked", p.LiveInstances())
	}
}

func TestAdviseExactCapacityWorks(t *testing.T) {
	p := tinyProvider(t)
	g, err := core.Mesh2D(2, 4) // exactly 8 nodes on 8 slots
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Advise(p, Config{
		Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, Seed: 7,
		SolverBudget: solver.Budget{Nodes: 50_000},
	})
	if err != nil {
		t.Fatalf("exact-capacity advise failed: %v", err)
	}
	if len(rep.TerminatedIDs) != 0 {
		t.Fatal("terminated instances despite zero over-allocation")
	}
	if p.LiveInstances() != 8 {
		t.Fatalf("live instances %d, want 8", p.LiveInstances())
	}
}

func TestRedeployCapacityExhausted(t *testing.T) {
	p := tinyProvider(t)
	g, err := core.Mesh2D(4, 4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := RunRedeploy(p, RedeployConfig{
		Graph: g, Objective: solver.LongestLink, PeriodHours: 1, Periods: 1,
	}); err == nil {
		t.Fatal("over-capacity redeploy succeeded")
	}
	if p.LiveInstances() != 0 {
		t.Fatalf("%d instances leaked", p.LiveInstances())
	}
}

func TestAdviseSingleNodeGraphRejected(t *testing.T) {
	p := tinyProvider(t)
	g := core.NewGraph(1)
	if _, err := Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}}); err == nil {
		t.Fatal("single-node graph accepted")
	}
}

func TestAdviseCyclicGraphForLongestPathRejected(t *testing.T) {
	p := tinyProvider(t)
	g, err := core.Ring(4)
	if err != nil {
		t.Fatal(err)
	}
	_, err = Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestPath}, Seed: 9})
	if err == nil {
		t.Fatal("cyclic graph accepted for longest-path")
	}
	// The failure happens after allocation; the advisor must clean up.
	if p.LiveInstances() != 0 {
		t.Fatalf("%d instances leaked after post-allocation failure", p.LiveInstances())
	}
}
