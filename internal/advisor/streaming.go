package advisor

import (
	"context"
	"fmt"
	"math"
	"time"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// This file implements incremental advising over streaming measurement: the
// batch pipeline (Advise) pays measurement budget + solve budget end to end
// because measure.Run materializes the full m x m sample set before any
// solver sees a cost. StreamingAdvise instead consumes measure.Stream's
// matrix epochs as they mature, interleaving a portfolio solve against each
// epoch and warm-starting every round from the previous incumbent, so the
// first feasible advice lands after one epoch plus one short round — and
// advice quality converges while measurement is still in flight,
// reproducing the Fig. 5 convergence story end to end.

// StreamingConfig drives one incremental advising run. The embedded Config
// fields keep their batch meanings; SolverName defaults to the full
// portfolio here, because short warm-started rounds are exactly the regime
// the racing portfolio was built for.
type StreamingConfig struct {
	Config

	// EpochMS is the virtual-time period between matrix epochs; zero
	// selects one eighth of the measurement budget.
	EpochMS float64

	// RoundBudget bounds each per-epoch solve. Zero splits SolverBudget
	// (or its 2M-node default) evenly across the expected epoch count.
	RoundBudget solver.Budget
}

// Round records one epoch's solve in a streaming advising run.
type Round struct {
	// Epoch and AtMS identify the consumed matrix epoch; Final marks the
	// epoch published at measurement completion; Skipped counts older
	// pending epochs that were coalesced over to reach this one.
	Epoch   int
	AtMS    float64
	Final   bool
	Skipped int
	// ChangedRows is how many matrix rows changed versus the previous
	// epoch — the work the Prep invalidation actually had to redo.
	ChangedRows int
	// Cost is the incumbent's deployment cost under this epoch's matrix,
	// and Improved reports whether this round's solve beat the
	// warm-started incumbent carried into it.
	Cost     float64
	Improved bool
	// Winner names the portfolio member that produced the incumbent (empty
	// when the carried incumbent survived the round).
	Winner string
	// Elapsed is the wall-clock time from the start of the advising loop
	// to the end of this round; the first round's value is the
	// time-to-first-advice the streaming pipeline exists to shrink.
	Elapsed time.Duration
}

// StreamOutcome is the result of consuming an epoch stream to completion.
type StreamOutcome struct {
	// Deployment is the final incumbent and Cost its deployment cost under
	// the final epoch's matrix.
	Deployment core.Deployment
	Cost       float64
	// Problem is the final epoch's problem; its matrix is bit-identical to
	// what batch measurement would have produced, and its Prep carries the
	// accumulated preprocessing for any follow-up solves.
	Problem *solver.Problem
	// Rounds records every solve round in order.
	Rounds []Round
	// FirstAdvice is the wall-clock time to the first feasible advice.
	FirstAdvice time.Duration
	// Interrupted reports that cfg.Ctx expired before the stream closed:
	// Deployment is the best incumbent found so far rather than the final
	// epoch's, and any unconsumed epochs were left on the channel.
	Interrupted bool
}

// StreamSolveConfig drives SolveStream.
type StreamSolveConfig struct {
	// Graph defines the deployment problem's communication graph; required.
	Graph *core.Graph
	// ObjectiveSpec says what to optimize. With a percentile metric each
	// round searches the epoch's published percentile matrix (ep.Tail) and,
	// unless NoMeanTieBreak is set, tie-breaks equal-cost candidates on the
	// epoch's mean matrix. The spec's Scheme is ignored here — SolveStream
	// consumes epochs, it does not measure.
	ObjectiveSpec
	// SolverName picks the per-round search technique (as in Config);
	// empty selects the racing portfolio.
	SolverName string
	// ClusterK rounds costs for cp/portfolio members; zero selects the
	// paper's k=20 for them, mirroring Advise.
	ClusterK int
	// RoundBudget bounds each round's solve; required (an unbounded round
	// would swallow the stream).
	RoundBudget solver.Budget
	// Seed drives the per-round solver seeds.
	Seed int64
	// Coalesce, when set, skips over older pending epochs before each
	// round so a solve that outlived several epoch periods resumes against
	// the newest matrix instead of replaying history. The final epoch is
	// never skipped.
	Coalesce bool
	// OnProblem, when non-nil, observes each round's problem immediately
	// after it is built — before the warm start is installed and before any
	// solver touches its Prep — so a serving layer can adopt shared,
	// content-addressed preprocessing artifacts into fresh problems and
	// publish invalidations for evolved ones (internal/serve). prev is the
	// previous round's problem (nil on the first round) and changedRows the
	// union of the changed-row sets between prev's epoch and ep. A non-nil
	// error aborts the run.
	OnProblem func(prob, prev *solver.Problem, ep measure.Epoch, changedRows []int) error
	// OnRound, when non-nil, observes each round as it completes.
	OnRound func(Round)
	// Ctx, when non-nil, bounds the whole run: once it is done (deadline
	// or cancellation) the loop stops consuming epochs, cuts short the
	// round in flight (context-aware solvers return their best-so-far
	// immediately), and returns the incumbent with Outcome.Interrupted
	// set. A context that expires before the first round still gets one
	// short round — solvers produce a feasible deployment even on an
	// exhausted budget — so an interrupted run returns advice, not an
	// error, as long as one epoch arrived.
	Ctx context.Context
	// WarmStart, when non-nil, seeds the incumbent before the first round,
	// exactly as if a previous round had produced it: it is priced under
	// the first epoch's matrix and survives until a round beats it. It is
	// validated against the first problem; an out-of-range deployment
	// fails the run.
	WarmStart core.Deployment
}

// SolveStream runs the incremental advising loop over an epoch stream: for
// each matrix epoch it evolves the problem (preserving untouched Prep
// artifacts, incrementally re-rounding the changed rows), installs the
// previous incumbent as a warm start, and races the configured solver for
// one round. It returns after the stream closes, with the incumbent of the
// final epoch. Callers with their own epoch source (anything that can fill
// measure.Epoch values) can drive it directly; StreamingAdvise wires it to
// measure.Stream.
func SolveStream(epochs <-chan measure.Epoch, cfg StreamSolveConfig) (*StreamOutcome, error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("advisor: nil communication graph")
	}
	if err := cfg.ObjectiveSpec.Validate(); err != nil {
		return nil, err
	}
	if cfg.Metric == MetricMeanPlusStd {
		return nil, fmt.Errorf("advisor: streaming advising does not support the %q metric (epochs carry mean and percentile matrices)", MetricMeanPlusStd)
	}
	if cfg.RoundBudget.Unlimited() {
		return nil, fmt.Errorf("advisor: streaming rounds require a bounded budget")
	}
	pct := cfg.TailPercentile()
	name := cfg.SolverName
	if name == "" {
		name = "portfolio"
	}
	clusterK := cfg.ClusterK
	if clusterK == 0 && (name == "cp" || name == "portfolio") {
		clusterK = 20
	}

	ctx := cfg.Ctx
	if ctx == nil {
		ctx = context.Background()
	}

	start := time.Now()
	out := &StreamOutcome{}
	var incumbent core.Deployment
	incumbentCost := math.Inf(1)

	for {
		ep, ok, interrupted := nextEpoch(epochs, ctx)
		if interrupted {
			out.Interrupted = true
			break
		}
		if !ok {
			break
		}
		skipped := 0
		primary, changedRows, tie, err := epochPrimary(ep, pct, cfg.TieBreak())
		if err != nil {
			return nil, err
		}
		if cfg.Coalesce {
			for {
				next, ok := pendingEpoch(epochs)
				if !ok {
					break
				}
				// Each epoch's ChangedRows is relative to its predecessor,
				// so skipping epochs means the rows they changed must be
				// carried: the union is the change set between the last
				// solved epoch and the one this round consumes. For
				// percentile metrics the union runs over the tail matrices'
				// own changed-row sets — they drive the Evolve contract.
				np, nc, nt, err := epochPrimary(next, pct, cfg.TieBreak())
				if err != nil {
					return nil, err
				}
				changedRows = unionRows(changedRows, nc)
				primary, tie = np, nt
				ep = next
				skipped++
			}
		}

		var prob *solver.Problem
		prev := out.Problem
		if prev == nil {
			prob, err = solver.NewProblemTie(cfg.Graph, primary, tie, cfg.Objective)
		} else {
			prob, err = prev.EvolveTie(primary, changedRows, tie)
		}
		if err != nil {
			return nil, err
		}
		if cfg.OnProblem != nil {
			if err := cfg.OnProblem(prob, prev, ep, changedRows); err != nil {
				return nil, err
			}
		}
		out.Problem = prob

		if prev == nil && cfg.WarmStart != nil {
			if err := cfg.WarmStart.Validate(prob.NumInstances()); err != nil {
				return nil, fmt.Errorf("advisor: warm start: %w", err)
			}
			incumbent = cfg.WarmStart
		}
		if incumbent != nil {
			if err := prob.Prep().WarmStart(incumbent); err != nil {
				return nil, err
			}
			incumbentCost = prob.Cost(incumbent)
		}

		// A fresh solver per round keeps member seeds decorrelated across
		// rounds while staying deterministic per (Seed, round).
		round := len(out.Rounds)
		sol, err := NewSolver(name, clusterK, cfg.Seed+int64(round)*0x9e3779b9)
		if err != nil {
			return nil, err
		}
		var res *solver.Result
		if cs, isCtx := sol.(solver.ContextSolver); isCtx {
			res, err = cs.SolveContext(ctx, prob, cfg.RoundBudget)
		} else {
			res, err = sol.Solve(prob, cfg.RoundBudget)
		}
		if err != nil {
			return nil, err
		}

		// Keep the better of the round's result and the carried incumbent,
		// both priced under this epoch's matrix (solver-reported costs may
		// be measured on cluster-rounded matrices).
		r := Round{
			Epoch:       ep.Index,
			AtMS:        ep.AtMS,
			Final:       ep.Final,
			Skipped:     skipped,
			ChangedRows: len(changedRows),
		}
		if candCost := prob.Cost(res.Deployment); incumbent == nil ||
			prob.Better(res.Deployment, incumbent, candCost, incumbentCost) {
			incumbent, incumbentCost = res.Deployment, candCost
			r.Improved = true
			r.Winner = res.Winner
			if r.Winner == "" {
				r.Winner = sol.Name()
			}
		}
		r.Cost = incumbentCost
		r.Elapsed = time.Since(start)
		out.Rounds = append(out.Rounds, r)
		if cfg.OnRound != nil {
			cfg.OnRound(r)
		}
		if ctx.Err() != nil {
			// The deadline landed during this round; its (possibly cut
			// short) result stands as the best-so-far advice.
			out.Interrupted = true
			break
		}
	}
	if out.Problem == nil {
		if out.Interrupted {
			return nil, fmt.Errorf("advisor: %w before the first epoch", ctx.Err())
		}
		return nil, fmt.Errorf("advisor: epoch stream closed before the first epoch")
	}
	out.Deployment = incumbent
	out.Cost = incumbentCost
	out.FirstAdvice = out.Rounds[0].Elapsed
	return out, nil
}

// epochPrimary selects the matrix a round searches: the epoch's mean matrix
// for mean metrics, or its published pct-percentile tail matrix (with the
// mean as tie-break when enabled) for percentile metrics. An epoch without
// the requested tail is a configuration error — the producer was not built
// with quantile sketches.
func epochPrimary(ep measure.Epoch, pct float64, tieBreak bool) (*core.CostMatrix, []int, *core.CostMatrix, error) {
	if pct == 0 {
		return ep.Matrix, ep.ChangedRows, nil, nil
	}
	tail := ep.Tail(pct)
	if tail == nil {
		return nil, nil, nil, fmt.Errorf("advisor: epoch %d carries no p%g matrix — percentile streaming needs a sketch-enabled producer (measure.Options.TailAlpha > 0, or tail rows posted to the daemon)", ep.Index, pct)
	}
	var tie *core.CostMatrix
	if tieBreak {
		tie = ep.Matrix
	}
	return tail.Matrix, tail.ChangedRows, tie, nil
}

// unionRows merges two ascending row lists into one ascending list without
// duplicates.
func unionRows(a, b []int) []int {
	out := make([]int, 0, len(a)+len(b))
	i, j := 0, 0
	for i < len(a) && j < len(b) {
		switch {
		case a[i] < b[j]:
			out = append(out, a[i])
			i++
		case a[i] > b[j]:
			out = append(out, b[j])
			j++
		default:
			out = append(out, a[i])
			i++
			j++
		}
	}
	out = append(out, a[i:]...)
	return append(out, b[j:]...)
}

// nextEpoch receives the next epoch or reports an interrupt. A pending
// epoch wins over an already-expired context: the round it feeds still runs
// (context-aware solvers cut it short), so an interrupted run returns
// best-so-far advice instead of nothing; the post-round ctx check then
// stops the loop.
func nextEpoch(epochs <-chan measure.Epoch, ctx context.Context) (ep measure.Epoch, ok, interrupted bool) {
	select {
	case ep, ok = <-epochs:
		return ep, ok, false
	default:
	}
	select {
	case ep, ok = <-epochs:
		return ep, ok, false
	case <-ctx.Done():
		return measure.Epoch{}, false, true
	}
}

// pendingEpoch performs a non-blocking receive. A closed channel reports no
// pending epoch; the outer range loop observes the close.
func pendingEpoch(epochs <-chan measure.Epoch) (measure.Epoch, bool) {
	select {
	case ep, ok := <-epochs:
		if !ok {
			return measure.Epoch{}, false
		}
		return ep, true
	default:
		return measure.Epoch{}, false
	}
}

// StreamingReport is a Report extended with the streaming run's round
// trajectory.
type StreamingReport struct {
	Report
	Rounds []Round
	// FirstAdvice is the wall-clock time from the start of measurement to
	// the first feasible advice — the latency the batch pipeline pays
	// (full measurement + full solve) before producing anything.
	FirstAdvice time.Duration
}

// StreamingAdvise runs the incremental ClouDiA pipeline: allocate, start a
// streaming measurement, interleave warm-started portfolio rounds against
// its matrix epochs, and terminate the extra instances once the final epoch
// is solved. The final epoch's matrix is bit-identical to what batch Advise
// would have measured with the same options, so streaming trades nothing
// for its earlier first advice. As in Advise, a failure after allocation
// terminates every instance before returning.
func StreamingAdvise(prov *cloud.Provider, cfg StreamingConfig) (rep *StreamingReport, err error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.NumNodes()

	total := OverAllocate(n, cfg.OverAllocation)
	instances, err := prov.RunInstances(total)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			err = terminateAll(prov, instances, err)
		}
	}()

	scheme := cfg.Scheme
	if scheme == "" {
		scheme = measure.Staged
	}
	dur := cfg.MeasureDurationMS
	if dur == 0 {
		dur = 20 * float64(total)
	}
	epochMS := cfg.EpochMS
	if epochMS == 0 {
		epochMS = dur / 8
	}
	roundBudget := cfg.RoundBudget
	if roundBudget.Unlimited() {
		total := cfg.SolverBudget
		if total.Unlimited() {
			total = solver.Budget{Nodes: 2_000_000}
		}
		// measure.Stream publishes intermediate epochs in [epochMS, dur)
		// plus the final one: ceil(dur/epochMS) rounds in total.
		rounds := int64(math.Ceil(dur / epochMS))
		if rounds < 1 {
			rounds = 1
		}
		roundBudget = solver.Budget{
			Time:  total.Time / time.Duration(rounds),
			Nodes: total.Nodes / rounds,
		}
		if total.Time > 0 && roundBudget.Time <= 0 {
			roundBudget.Time = time.Millisecond
		}
		if total.Nodes > 0 && roundBudget.Nodes <= 0 {
			roundBudget.Nodes = 1
		}
	}

	// Percentile metrics need the measurement to maintain per-link quantile
	// sketches so epochs publish tail matrices.
	var tailAlpha float64
	if cfg.TailPercentile() > 0 {
		tailAlpha = measure.DefaultTailAlpha
	}
	st, err := measure.Stream(prov.Datacenter(), instances, measure.Options{
		Scheme:          scheme,
		DurationMS:      dur,
		Seed:            cfg.Seed,
		SnapshotEveryMS: epochMS,
		TailAlpha:       tailAlpha,
	})
	if err != nil {
		return nil, err
	}

	// Every epoch gets a round (no coalescing): the simulated measurement
	// completes in real milliseconds, so its epochs are all pending by the
	// time the loop starts, and replaying them preserves the per-epoch
	// convergence trajectory a real deployment would see. Epoch sources
	// that mature in real time should set Coalesce instead.
	out, err := SolveStream(st.Epochs, StreamSolveConfig{
		Graph:         cfg.Graph,
		ObjectiveSpec: cfg.ObjectiveSpec,
		SolverName:    cfg.SolverName,
		ClusterK:      cfg.ClusterK,
		RoundBudget:   roundBudget,
		Seed:          cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	meas := st.Wait()

	// Terminate the extra instances (Fig. 3, "Terminate Extra Instances").
	used := make([]bool, total)
	for _, inst := range out.Deployment {
		used[inst] = true
	}
	var terminated []string
	for i, inst := range instances {
		if !used[i] {
			terminated = append(terminated, inst.ID)
		}
	}
	if err := prov.TerminateInstances(terminated); err != nil {
		return nil, err
	}

	assignments := make([]cloud.Instance, n)
	for node, inst := range out.Deployment {
		assignments[node] = instances[inst]
	}
	last := out.Rounds[len(out.Rounds)-1]
	rep = &StreamingReport{
		Report: Report{
			AllInstances:  instances,
			Deployment:    out.Deployment,
			Assignments:   assignments,
			TerminatedIDs: terminated,
			DefaultCost:   out.Problem.Cost(core.Identity(n)),
			TunedCost:     out.Cost,
			Measurement:   meas,
			Search: &solver.Result{
				Deployment: out.Deployment,
				Cost:       out.Cost,
				Elapsed:    last.Elapsed,
				Winner:     lastWinner(out.Rounds),
			},
			SolverName: "streaming-" + streamSolverName(cfg.SolverName),
		},
		Rounds:      out.Rounds,
		FirstAdvice: out.FirstAdvice,
	}
	return rep, nil
}

func streamSolverName(name string) string {
	if name == "" {
		return "portfolio"
	}
	return name
}

// lastWinner returns the most recent round winner, skipping rounds where
// the carried incumbent survived.
func lastWinner(rounds []Round) string {
	for i := len(rounds) - 1; i >= 0; i-- {
		if rounds[i].Winner != "" {
			return rounds[i].Winner
		}
	}
	return ""
}
