// Package advisor implements ClouDiA's end-to-end tuning methodology
// (Sect. 2.2, Fig. 3): allocate instances (over-allocating by a configurable
// ratio), measure pairwise latencies, search for a deployment plan
// minimizing the tenant's objective, and terminate the extra instances. The
// tenant provides only a communication graph and an objective; everything
// else — measurement scheme, latency metric, search technique — has paper
// defaults and can be overridden.
package advisor

import (
	"fmt"
	"math"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/solver/anneal"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/greedy"
	"cloudia/internal/solver/mip"
	"cloudia/internal/solver/random"
)

// Metric selects how per-link latency samples are summarized into the
// communication cost (Sect. 3.2).
type Metric string

// The latency metrics the paper evaluates (Fig. 10, Fig. 11), plus p95.
// Percentile metrics select the multi-objective mode described on
// ObjectiveSpec.
const (
	MetricMean        Metric = "mean"
	MetricMeanPlusStd Metric = "mean+sd"
	MetricP95         Metric = "p95"
	MetricP99         Metric = "p99"
)

// Config drives one advising run.
type Config struct {
	// Graph is the application's communication graph; required.
	Graph *core.Graph
	// ObjectiveSpec says what to optimize — objective, metric, measurement
	// scheme, tie-break policy — and is validated once here for every
	// entry point (see its doc).
	ObjectiveSpec
	// OverAllocation is the fraction of extra instances to allocate beyond
	// the node count (the paper's default experiments use 0.1).
	OverAllocation float64
	// MeasureDurationMS is the virtual measurement budget; zero scales the
	// paper's rule of 5 minutes per 100 instances down to simulator scale:
	// 20 ms of staged measurement per instance.
	MeasureDurationMS float64
	// SolverName picks the search technique: cp, mip, g1, g2, r1, r2, r2l,
	// sa, or portfolio (every technique plus multi-seed SA restarts racing
	// concurrently, one goroutine each). Empty selects cp for longest link
	// and mip for longest path, the paper's choices (Sect. 6.3).
	SolverName string
	// ClusterK rounds costs into k clusters for cp/mip; zero selects the
	// paper's k=20 for CP and no clustering for MIP (Sect. 6.3).
	ClusterK int
	// SolverBudget bounds the search; zero selects 2M search nodes.
	SolverBudget solver.Budget
	// Seed drives all randomness.
	Seed int64
}

// Report is the outcome of an advising run.
type Report struct {
	// AllInstances is the full (over-)allocation in provider order.
	AllInstances []cloud.Instance
	// Deployment maps node -> index into AllInstances.
	Deployment core.Deployment
	// Assignments maps node -> the instance it should run on.
	Assignments []cloud.Instance
	// TerminatedIDs are the over-allocated instances ClouDiA shut down.
	TerminatedIDs []string
	// DefaultCost and TunedCost are deployment costs under the measured
	// cost matrix for the provider-order default deployment and the tuned
	// one.
	DefaultCost float64
	TunedCost   float64
	// Measurement carries the raw measurement result.
	Measurement *measure.Result
	// Search carries the solver result (trace, optimality, budget use).
	Search *solver.Result
	// SolverName records which technique ran.
	SolverName string
}

// Improvement reports the predicted relative cost reduction of the tuned
// deployment versus the default, in [0, 1].
func (r *Report) Improvement() float64 {
	if r.DefaultCost == 0 {
		return 0
	}
	return (r.DefaultCost - r.TunedCost) / r.DefaultCost
}

// validate checks every tenant-facing configuration field that does not
// require allocated instances to judge, so both Advise and StreamingAdvise
// reject a bad metric, scheme, objective, or solver name before a single
// instance is allocated or measured — previously an unknown metric
// surfaced only after the full measurement, and a streaming-unsupported
// metric deep inside the run.
func (cfg *Config) validate() error {
	if cfg.Graph == nil {
		return fmt.Errorf("advisor: nil communication graph")
	}
	if n := cfg.Graph.NumNodes(); n < 2 {
		return fmt.Errorf("advisor: need >= 2 application nodes, got %d", n)
	}
	if cfg.OverAllocation < 0 {
		return fmt.Errorf("advisor: negative over-allocation %g", cfg.OverAllocation)
	}
	if err := cfg.ObjectiveSpec.Validate(); err != nil {
		return err
	}
	if cfg.SolverName != "" {
		if _, err := NewSolver(cfg.SolverName, 1, 0); err != nil {
			return err
		}
	}
	return nil
}

// validateStreaming extends validate with the one remaining streaming-only
// restriction: mean+sd has no incremental per-epoch form (the epoch fold
// maintains means and quantile sketches, not standard deviations).
// Percentile metrics stream fine — epochs publish sketch-based p95/p99
// matrices — so the old flag-level `-stream -metric p99` rejection is gone.
func (cfg *StreamingConfig) validate() error {
	if err := cfg.Config.validate(); err != nil {
		return err
	}
	if cfg.Metric == MetricMeanPlusStd {
		return fmt.Errorf("advisor: streaming advising does not support the %q metric (epochs carry mean and percentile matrices)", MetricMeanPlusStd)
	}
	return nil
}

// OverAllocate returns the instance count for n application nodes at the
// given over-allocation ratio: n plus ceil(n*ratio) extra instances,
// computed robustly against float rounding. The naive
// ceil(n*(1+ratio)) over-allocates one whole extra instance whenever the
// product lands one ulp above an integer — n=10 at the paper's default 0.1
// gives 10*1.1 = 11.000000000000002, so ceil returned 12 where 11 extra-ish
// instances were intended.
func OverAllocate(n int, ratio float64) int {
	const eps = 1e-9
	extra := int(math.Ceil(float64(n)*ratio - eps))
	if extra < 0 {
		extra = 0
	}
	return n + extra
}

// NewSolver builds a solver by name. clusterK applies to cp and mip only.
func NewSolver(name string, clusterK int, seed int64) (solver.Solver, error) {
	switch name {
	case "cp":
		return cp.New(clusterK, seed), nil
	case "mip":
		return mip.New(clusterK, seed), nil
	case "g1":
		return greedy.New(greedy.G1), nil
	case "g2":
		return greedy.New(greedy.G2), nil
	case "r1":
		return random.NewR1(1000, seed), nil
	case "r2":
		return random.NewR2(seed), nil
	case "r2l":
		return random.NewLocal(seed), nil
	case "sa":
		return anneal.New(seed), nil
	case "portfolio":
		return NewPortfolio(clusterK, seed), nil
	}
	return nil, fmt.Errorf("advisor: unknown solver %q", name)
}

// NewPortfolio builds the default parallel solver portfolio: the systematic
// solvers, both greedies, the local searches, and three differently-seeded
// simulated-annealing restarts, all racing on their own goroutine under one
// shared deployment-time budget. Members that do not apply to the problem's
// objective (CP on longest-path) drop out by erroring; the portfolio keeps
// the best of the rest. The R2L member and CP's parallel embedding search
// are each capped at two workers so a single member does not oversubscribe
// the CPU the other members share.
func NewPortfolio(clusterK int, seed int64) *solver.Portfolio {
	return solver.NewPortfolio(
		&cp.Solver{ClusterK: clusterK, Seed: seed, Workers: 2},
		mip.New(clusterK, seed),
		greedy.New(greedy.G1),
		greedy.New(greedy.G2),
		&random.Local{Seed: seed, Workers: 2},
		anneal.New(seed),
		anneal.New(seed+0x51ed),
		anneal.New(seed+2*0x51ed),
	)
}

// Advise runs the full ClouDiA pipeline against the provider: allocate,
// measure, search, terminate extras. If any step after allocation fails,
// every allocated instance is terminated before returning — a failed tuning
// run must not leave the tenant paying for idle instances.
func Advise(prov *cloud.Provider, cfg Config) (rep *Report, err error) {
	if err := cfg.validate(); err != nil {
		return nil, err
	}
	n := cfg.Graph.NumNodes()

	// Step 1: allocate instances (Fig. 3, "Allocate Instances").
	total := OverAllocate(n, cfg.OverAllocation)
	instances, err := prov.RunInstances(total)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			err = terminateAll(prov, instances, err)
		}
	}()

	// Step 2: get measurements (Fig. 3, "Get Measurements").
	scheme := cfg.Scheme
	if scheme == "" {
		scheme = measure.Staged
	}
	dur := cfg.MeasureDurationMS
	if dur == 0 {
		dur = 20 * float64(total)
	}
	meas, err := measure.Run(prov.Datacenter(), instances, measure.Options{
		Scheme:     scheme,
		DurationMS: dur,
		Seed:       cfg.Seed,
	})
	if err != nil {
		return nil, err
	}
	costs, err := cfg.ObjectiveSpec.metricMatrix(meas)
	if err != nil {
		return nil, err
	}
	// Percentile metrics tie-break equal-cost deployments on the mean
	// matrix (unless disabled), matching the streaming path's
	// multi-objective mode.
	var tie *core.CostMatrix
	if cfg.TieBreak() {
		tie = meas.MeanMatrix()
	}

	// Step 3: search deployment (Fig. 3, "Search Deployment").
	prob, err := solver.NewProblemTie(cfg.Graph, costs, tie, cfg.Objective)
	if err != nil {
		return nil, err
	}
	name := cfg.SolverName
	if name == "" {
		if cfg.Objective == solver.LongestPath {
			name = "mip"
		} else {
			name = "cp"
		}
	}
	clusterK := cfg.ClusterK
	if clusterK == 0 && (name == "cp" || name == "portfolio") {
		clusterK = 20 // the paper's sweet spot (Fig. 6); also CP-in-portfolio
	}
	sol, err := NewSolver(name, clusterK, cfg.Seed)
	if err != nil {
		return nil, err
	}
	budget := cfg.SolverBudget
	if budget.Unlimited() {
		budget = solver.Budget{Nodes: 2_000_000}
	}
	res, err := sol.Solve(prob, budget)
	if err != nil {
		return nil, err
	}

	// Step 4: terminate extra instances (Fig. 3, "Terminate Extra
	// Instances").
	used := make([]bool, total)
	for _, inst := range res.Deployment {
		used[inst] = true
	}
	var terminated []string
	for i, inst := range instances {
		if !used[i] {
			terminated = append(terminated, inst.ID)
		}
	}
	if err := prov.TerminateInstances(terminated); err != nil {
		return nil, err
	}

	assignments := make([]cloud.Instance, n)
	for node, inst := range res.Deployment {
		assignments[node] = instances[inst]
	}
	rep = &Report{
		AllInstances:  instances,
		Deployment:    res.Deployment,
		Assignments:   assignments,
		TerminatedIDs: terminated,
		DefaultCost:   prob.Cost(core.Identity(n)),
		TunedCost:     res.Cost,
		Measurement:   meas,
		Search:        res,
		SolverName:    sol.Name(),
	}
	return rep, nil
}

// terminateAll releases every instance after a failed run, preserving the
// original error and noting any cleanup failure alongside it.
func terminateAll(prov *cloud.Provider, instances []cloud.Instance, cause error) error {
	ids := make([]string, len(instances))
	for i, inst := range instances {
		ids[i] = inst.ID
	}
	if terr := prov.TerminateInstances(ids); terr != nil {
		return fmt.Errorf("%w (cleanup also failed: %v)", cause, terr)
	}
	return cause
}
