package advisor

import (
	"fmt"

	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// ObjectiveSpec is the one tenant-facing description of *what to optimize*,
// accepted uniformly by Advise, StreamingAdvise, serve.Submit, the durable
// daemon, the HTTP API, and the CLI. It replaces the scattered
// objective/metric/scheme plumbing those entry points used to validate
// independently (and inconsistently — the CLI rejected `-stream -metric
// p99` at flag level while the HTTP layer had its own objective switch).
// Entry points cast their raw strings into a spec and call Validate; the
// spec is the single authority on which combinations exist.
//
// Percentile metrics (p95, p99) select the multi-objective mode: search
// optimizes the percentile matrix and, unless NoMeanTieBreak is set,
// candidates of equal percentile cost are ranked by mean cost
// (solver.Problem.Tie) — "optimize the tail, tie-break on the mean".
type ObjectiveSpec struct {
	// Objective selects longest link or longest path; required.
	Objective solver.Objective
	// Metric summarizes per-link latency samples into the cost matrix
	// searched; empty selects MetricMean, the paper's robust default
	// (Sect. 6.4.2).
	Metric Metric
	// Scheme is the measurement scheme; empty selects measure.Staged. Only
	// meaningful at entry points that measure (Advise, StreamingAdvise, the
	// CLI's serve fleets); serving paths fed pre-measured matrices or
	// posted epochs ignore it.
	Scheme measure.Scheme
	// NoMeanTieBreak disables the mean-cost tie-break for percentile
	// metrics, making the search single-objective on the percentile matrix
	// alone. Ignored for non-percentile metrics.
	NoMeanTieBreak bool
}

// WithDefaults returns the spec with empty fields resolved to the paper's
// defaults (MetricMean, measure.Staged). The objective has no default; a
// zero objective fails Validate.
func (s ObjectiveSpec) WithDefaults() ObjectiveSpec {
	if s.Metric == "" {
		s.Metric = MetricMean
	}
	if s.Scheme == "" {
		s.Scheme = measure.Staged
	}
	return s
}

// Validate checks the spec. Empty metric and scheme are accepted (they
// default); an unknown value of any field is rejected here, once, for
// every entry point.
func (s ObjectiveSpec) Validate() error {
	switch s.Objective {
	case solver.LongestLink, solver.LongestPath:
	default:
		return fmt.Errorf("advisor: unknown objective %q", s.Objective)
	}
	switch s.Metric {
	case "", MetricMean, MetricMeanPlusStd, MetricP95, MetricP99:
	default:
		return fmt.Errorf("advisor: unknown metric %q", s.Metric)
	}
	switch s.Scheme {
	case "", measure.Token, measure.Uncoordinated, measure.Staged:
	default:
		return fmt.Errorf("advisor: unknown measurement scheme %q", s.Scheme)
	}
	return nil
}

// TailPercentile returns the percentile a percentile metric selects (95 or
// 99), or 0 for non-percentile metrics. A non-zero return means the search
// runs on a percentile matrix, which streaming producers must publish
// (measure.Options.TailAlpha > 0).
func (s ObjectiveSpec) TailPercentile() float64 {
	switch s.Metric {
	case MetricP95:
		return 95
	case MetricP99:
		return 99
	}
	return 0
}

// TieBreak reports whether the search should tie-break equal-cost
// candidates on the mean matrix: on for percentile metrics unless
// NoMeanTieBreak is set.
func (s ObjectiveSpec) TieBreak() bool {
	return s.TailPercentile() > 0 && !s.NoMeanTieBreak
}

// metricMatrix summarizes a batch measurement result under the spec's
// metric. For percentile metrics this is the exact sample percentile — the
// streaming path instead consumes the sketch-based estimates the epochs
// publish (measure.TailMatrix), which land within the sketch's
// relative-error bound of these.
func (s ObjectiveSpec) metricMatrix(meas *measure.Result) (*core.CostMatrix, error) {
	switch s.Metric {
	case "", MetricMean:
		return meas.MeanMatrix(), nil
	case MetricMeanPlusStd:
		return meas.MeanPlusStdMatrix(), nil
	case MetricP95:
		return meas.PercentileMatrix(95), nil
	case MetricP99:
		return meas.P99Matrix(), nil
	}
	return nil, fmt.Errorf("advisor: unknown metric %q", s.Metric)
}
