package advisor

import (
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

// shiftingProvider builds a provider over a non-stationary EC2-like network
// whose regime changes every regimeHours.
func shiftingProvider(t *testing.T, regimeHours float64, seed int64) *cloud.Provider {
	t.Helper()
	prof := topology.EC2Profile()
	prof.RegimeHours = regimeHours
	dc, err := topology.New(prof, seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func TestRedeployValidation(t *testing.T) {
	p := shiftingProvider(t, 8, 1)
	g := meshGraph(t, 3, 3)
	if _, err := RunRedeploy(p, RedeployConfig{Graph: nil, PeriodHours: 1, Periods: 1}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := RunRedeploy(p, RedeployConfig{Graph: g, Objective: solver.LongestLink, Periods: 1}); err == nil {
		t.Fatal("zero period accepted")
	}
	if _, err := RunRedeploy(p, RedeployConfig{
		Graph: g, Objective: solver.LongestLink, PeriodHours: 1, Periods: 1,
		MigrationCostPerNode: -1,
	}); err == nil {
		t.Fatal("negative migration cost accepted")
	}
}

func TestRedeployAdaptsToRegimeChanges(t *testing.T) {
	p := shiftingProvider(t, 8, 3)
	g := meshGraph(t, 4, 4)
	rep, err := RunRedeploy(p, RedeployConfig{
		Graph:          g,
		Objective:      solver.LongestLink,
		OverAllocation: 0.25,
		PeriodHours:    8, // aligned with regime changes: each period sees a new network
		Periods:        4,
		MinImprovement: 0.05,
		Seed:           5,
		SolverBudget:   solver.Budget{Nodes: 400_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Periods) != 4 {
		t.Fatalf("recorded %d periods, want 4", len(rep.Periods))
	}
	if rep.Redeployments == 0 {
		t.Fatal("never re-deployed despite regime changes every period")
	}
	// The adaptive plan must beat the frozen initial plan on average.
	if rep.MeanAdaptiveCost() >= rep.MeanStaticCost() {
		t.Fatalf("adaptive %.4f >= static %.4f", rep.MeanAdaptiveCost(), rep.MeanStaticCost())
	}
	if err := rep.Final.Validate(len(rep.Instances)); err != nil {
		t.Fatalf("final deployment invalid: %v", err)
	}
}

func TestRedeployStableNetworkStaysPut(t *testing.T) {
	// On a stationary network (RegimeHours = 0) the initial plan stays
	// near-optimal, so with a meaningful hysteresis threshold there should
	// be no re-deployments.
	p := shiftingProvider(t, 0, 7)
	g := meshGraph(t, 4, 4)
	rep, err := RunRedeploy(p, RedeployConfig{
		Graph:          g,
		Objective:      solver.LongestLink,
		OverAllocation: 0.25,
		PeriodHours:    8,
		Periods:        3,
		MinImprovement: 0.10,
		Seed:           9,
		SolverBudget:   solver.Budget{Nodes: 400_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redeployments != 0 {
		t.Fatalf("re-deployed %d times on a stable network", rep.Redeployments)
	}
}

func TestRedeployMigrationCostSuppressesChurn(t *testing.T) {
	// With a prohibitive migration cost, the adaptive plan must freeze even
	// under regime changes.
	p := shiftingProvider(t, 8, 11)
	g := meshGraph(t, 4, 4)
	rep, err := RunRedeploy(p, RedeployConfig{
		Graph:                g,
		Objective:            solver.LongestLink,
		OverAllocation:       0.25,
		PeriodHours:          8,
		Periods:              3,
		MinImprovement:       0.05,
		MigrationCostPerNode: 100, // ~1600 ms charge vs ~1 ms gains
		Seed:                 13,
		SolverBudget:         solver.Budget{Nodes: 200_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Redeployments != 0 {
		t.Fatalf("re-deployed %d times despite prohibitive migration cost", rep.Redeployments)
	}
	// Static and adaptive must then coincide.
	for i, p := range rep.Periods {
		if p.AdaptiveCost != p.StaticCost {
			t.Fatalf("period %d: adaptive %.4f != static %.4f with frozen plan",
				i, p.AdaptiveCost, p.StaticCost)
		}
	}
}

func TestRedeployKeepsSpareInstances(t *testing.T) {
	p := shiftingProvider(t, 8, 15)
	g := meshGraph(t, 3, 3)
	before := p.LiveInstances()
	rep, err := RunRedeploy(p, RedeployConfig{
		Graph:          g,
		Objective:      solver.LongestLink,
		OverAllocation: 0.5,
		PeriodHours:    8,
		Periods:        2,
		Seed:           17,
		SolverBudget:   solver.Budget{Nodes: 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	// Adaptive sessions retain the full allocation (no termination).
	if p.LiveInstances() != before+len(rep.Instances) {
		t.Fatalf("live instances %d, want %d", p.LiveInstances(), before+len(rep.Instances))
	}
}
