package advisor

import (
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
	"cloudia/internal/topology"
)

func provider(t *testing.T, seed int64) *cloud.Provider {
	t.Helper()
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	return p
}

func meshGraph(t *testing.T, r, c int) *core.Graph {
	t.Helper()
	g, err := core.Mesh2D(r, c)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestAdviseValidation(t *testing.T) {
	p := provider(t, 1)
	if _, err := Advise(p, Config{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := meshGraph(t, 3, 3)
	if _, err := Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, OverAllocation: -1}); err == nil {
		t.Fatal("negative over-allocation accepted")
	}
	if _, err := Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink, Metric: "bogus"}}); err == nil {
		t.Fatal("bogus metric accepted")
	}
	if _, err := Advise(p, Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, SolverName: "bogus"}); err == nil {
		t.Fatal("bogus solver accepted")
	}
}

func TestNewSolverNames(t *testing.T) {
	for _, name := range []string{"cp", "mip", "g1", "g2", "r1", "r2", "sa"} {
		s, err := NewSolver(name, 10, 1)
		if err != nil {
			t.Fatalf("NewSolver(%q): %v", name, err)
		}
		if s == nil {
			t.Fatalf("NewSolver(%q) returned nil", name)
		}
	}
	if _, err := NewSolver("nope", 0, 1); err == nil {
		t.Fatal("unknown solver accepted")
	}
}

func TestAdviseEndToEndLongestLink(t *testing.T) {
	p := provider(t, 3)
	g := meshGraph(t, 4, 4)
	rep, err := Advise(p, Config{
		Graph:          g,
		ObjectiveSpec:  ObjectiveSpec{Objective: solver.LongestLink},
		OverAllocation: 0.25,
		Seed:           5,
		SolverBudget:   solver.Budget{Nodes: 500_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.AllInstances) != 20 {
		t.Fatalf("allocated %d instances, want 20", len(rep.AllInstances))
	}
	if err := rep.Deployment.Validate(20); err != nil {
		t.Fatalf("invalid deployment: %v", err)
	}
	if len(rep.Assignments) != 16 {
		t.Fatalf("assignments cover %d nodes, want 16", len(rep.Assignments))
	}
	// Over-allocated leftovers terminated: 20 - 16 = 4.
	if len(rep.TerminatedIDs) != 4 {
		t.Fatalf("terminated %d instances, want 4", len(rep.TerminatedIDs))
	}
	if p.LiveInstances() != 16 {
		t.Fatalf("provider has %d live instances, want 16", p.LiveInstances())
	}
	// The tuned deployment must not be worse than the default under the
	// measured costs (the solver bootstraps from random and only improves).
	if rep.TunedCost > rep.DefaultCost {
		t.Fatalf("tuned cost %g worse than default %g", rep.TunedCost, rep.DefaultCost)
	}
	if rep.Improvement() < 0 {
		t.Fatalf("negative improvement %g", rep.Improvement())
	}
	if rep.SolverName == "" || rep.Search == nil || rep.Measurement == nil {
		t.Fatal("report missing provenance")
	}
}

func TestAdviseEndToEndLongestPath(t *testing.T) {
	p := provider(t, 7)
	g, err := core.TwoLevelAggregation(3, 9)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Advise(p, Config{
		Graph:          g,
		ObjectiveSpec:  ObjectiveSpec{Objective: solver.LongestPath},
		OverAllocation: 0.1,
		Seed:           9,
		SolverBudget:   solver.Budget{Nodes: 500_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolverName != "MIP" {
		t.Fatalf("default LP solver = %s, want MIP", rep.SolverName)
	}
	if rep.TunedCost > rep.DefaultCost {
		t.Fatalf("tuned %g worse than default %g", rep.TunedCost, rep.DefaultCost)
	}
}

func TestAdviseDefaultsToCPWithK20(t *testing.T) {
	p := provider(t, 11)
	g := meshGraph(t, 3, 3)
	rep, err := Advise(p, Config{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		Seed:          13,
		SolverBudget:  solver.Budget{Nodes: 100_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.SolverName != "CP(k=20)" {
		t.Fatalf("default LL solver = %s, want CP(k=20)", rep.SolverName)
	}
}

func TestAdviseAlternativeMetricsAndSchemes(t *testing.T) {
	for _, m := range []Metric{MetricMean, MetricMeanPlusStd, MetricP99} {
		for _, s := range []measure.Scheme{measure.Staged, measure.Uncoordinated} {
			p := provider(t, 17)
			g := meshGraph(t, 3, 3)
			rep, err := Advise(p, Config{
				Graph:          g,
				ObjectiveSpec:  ObjectiveSpec{Objective: solver.LongestLink, Metric: m, Scheme: s},
				OverAllocation: 0.2,
				Seed:           19,
				SolverName:     "g2",
				SolverBudget:   solver.Budget{Nodes: 50_000},
			})
			if err != nil {
				t.Fatalf("metric %s scheme %s: %v", m, s, err)
			}
			if err := rep.Deployment.Validate(len(rep.AllInstances)); err != nil {
				t.Fatalf("metric %s scheme %s: %v", m, s, err)
			}
		}
	}
}

func TestAdviseZeroOverAllocation(t *testing.T) {
	// Without over-allocation ClouDiA still helps by finding a good
	// injection (the paper reports 16% improvement at 0%). All instances
	// stay alive.
	p := provider(t, 23)
	g := meshGraph(t, 3, 3)
	rep, err := Advise(p, Config{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		Seed:          29,
		SolverBudget:  solver.Budget{Nodes: 300_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.TerminatedIDs) != 0 {
		t.Fatalf("terminated %d instances with zero over-allocation", len(rep.TerminatedIDs))
	}
	if rep.TunedCost > rep.DefaultCost {
		t.Fatalf("tuned %g worse than default %g", rep.TunedCost, rep.DefaultCost)
	}
}

func TestAssignmentsMatchDeployment(t *testing.T) {
	p := provider(t, 31)
	g := meshGraph(t, 2, 3)
	rep, err := Advise(p, Config{
		Graph:          g,
		ObjectiveSpec:  ObjectiveSpec{Objective: solver.LongestLink},
		OverAllocation: 0.5,
		Seed:           37,
		SolverName:     "r1",
		SolverBudget:   solver.Budget{Nodes: 10_000},
	})
	if err != nil {
		t.Fatal(err)
	}
	for node, inst := range rep.Deployment {
		if rep.Assignments[node].ID != rep.AllInstances[inst].ID {
			t.Fatalf("assignment mismatch at node %d", node)
		}
	}
	// No assigned instance may appear in the terminated list.
	dead := make(map[string]bool)
	for _, id := range rep.TerminatedIDs {
		dead[id] = true
	}
	for _, inst := range rep.Assignments {
		if dead[inst.ID] {
			t.Fatalf("assigned instance %s was terminated", inst.ID)
		}
	}
}
