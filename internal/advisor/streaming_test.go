package advisor

import (
	"context"
	"testing"
	"time"

	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

func TestStreamingAdviseValidation(t *testing.T) {
	p := provider(t, 61)
	if _, err := StreamingAdvise(p, StreamingConfig{}); err == nil {
		t.Fatal("nil graph accepted")
	}
	g := meshGraph(t, 3, 3)
	if _, err := StreamingAdvise(p, StreamingConfig{
		Config: Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, OverAllocation: -1},
	}); err == nil {
		t.Fatal("negative over-allocation accepted")
	}
	// p95/p99 stream now (epochs carry sketch-based tails); mean+sd is the
	// one metric with no incremental per-epoch form.
	if _, err := StreamingAdvise(p, StreamingConfig{
		Config: Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink, Metric: MetricMeanPlusStd}},
	}); err == nil {
		t.Fatal("mean+sd metric accepted by streaming")
	}
	if _, err := StreamingAdvise(p, StreamingConfig{
		Config: Config{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, SolverName: "bogus"},
	}); err == nil {
		t.Fatal("bogus solver accepted")
	}
}

// TestStreamingAdviseEndToEnd runs the full incremental pipeline on a small
// mesh and checks the report invariants: a round per epoch, first advice
// strictly before the last round, a valid final deployment with the extra
// instances terminated, and a tuned cost no worse than the default.
func TestStreamingAdviseEndToEnd(t *testing.T) {
	p := provider(t, 63)
	g := meshGraph(t, 3, 3)
	rep, err := StreamingAdvise(p, StreamingConfig{
		Config: Config{
			Graph:             g,
			ObjectiveSpec:     ObjectiveSpec{Objective: solver.LongestLink},
			OverAllocation:    0.25,
			MeasureDurationMS: 400,
			SolverBudget:      solver.Budget{Nodes: 90_000},
			Seed:              7,
		},
		EpochMS: 100,
	})
	if err != nil {
		t.Fatal(err)
	}
	// 400 ms at a 100 ms period: epochs at 100, 200, 300 plus the final.
	if len(rep.Rounds) != 4 {
		t.Fatalf("got %d rounds, want 4", len(rep.Rounds))
	}
	if !rep.Rounds[len(rep.Rounds)-1].Final {
		t.Fatal("last round did not consume the final epoch")
	}
	for i, r := range rep.Rounds {
		if r.Epoch != i+1 {
			t.Fatalf("round %d consumed epoch %d", i, r.Epoch)
		}
		if i > 0 && r.Cost > rep.Rounds[i-1].Cost && r.ChangedRows == 0 {
			t.Fatalf("cost rose on an unchanged matrix: round %d %g -> %g", i, rep.Rounds[i-1].Cost, r.Cost)
		}
	}
	if rep.FirstAdvice <= 0 || rep.FirstAdvice > rep.Rounds[len(rep.Rounds)-1].Elapsed {
		t.Fatalf("FirstAdvice %v outside (0, %v]", rep.FirstAdvice, rep.Rounds[len(rep.Rounds)-1].Elapsed)
	}

	n := g.NumNodes()
	if err := rep.Deployment.Validate(len(rep.AllInstances)); err != nil {
		t.Fatalf("final deployment invalid: %v", err)
	}
	if len(rep.Assignments) != n {
		t.Fatalf("%d assignments for %d nodes", len(rep.Assignments), n)
	}
	if len(rep.AllInstances)-len(rep.TerminatedIDs) != n {
		t.Fatalf("%d instances kept for %d nodes", len(rep.AllInstances)-len(rep.TerminatedIDs), n)
	}
	if rep.TunedCost > rep.DefaultCost {
		t.Fatalf("tuned cost %g worse than default %g", rep.TunedCost, rep.DefaultCost)
	}
	if rep.Measurement == nil || rep.Measurement.TotalSamples == 0 {
		t.Fatal("measurement result missing")
	}
}

// TestStreamingAdviseFinalMatrixMatchesBatch: the final streaming epoch is
// bit-identical to what the batch pipeline measures with the same options,
// so the last round's cost is a cost under the batch matrix.
func TestStreamingAdviseFinalMatrixMatchesBatch(t *testing.T) {
	p := provider(t, 65)
	g := meshGraph(t, 2, 3)
	rep, err := StreamingAdvise(p, StreamingConfig{
		Config: Config{
			Graph:             g,
			ObjectiveSpec:     ObjectiveSpec{Objective: solver.LongestLink},
			MeasureDurationMS: 300,
			SolverBudget:      solver.Budget{Nodes: 40_000},
			Seed:              11,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	want := rep.Measurement.MeanMatrix()
	// The aggregate the streamer hands back is the same one batch Run would
	// return (see measure.Stream's equivalence guarantee, property-tested in
	// the measure package); here we pin the advising side: the reported
	// tuned cost must be the deployment's cost under that matrix.
	prob, err := solver.NewProblem(g, want, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	if got := prob.Cost(rep.Deployment); got != rep.TunedCost {
		t.Fatalf("TunedCost %g is not the final-matrix cost %g", rep.TunedCost, got)
	}
	if got := prob.Cost(core.Identity(g.NumNodes())); got != rep.DefaultCost {
		t.Fatalf("DefaultCost %g is not the final-matrix cost %g", rep.DefaultCost, got)
	}
}

// TestSolveStreamWarmStartMonotone: over a constant matrix the incumbent
// cost never rises between rounds — the warm start carries it.
func TestSolveStreamWarmStartMonotone(t *testing.T) {
	g := meshGraph(t, 3, 3)
	m := core.NewCostMatrix(12)
	rngFill(m, 67)

	ch := make(chan measure.Epoch, 4)
	ch <- measure.Epoch{Index: 1, AtMS: 1, Matrix: m.Clone()}
	for i := 2; i <= 4; i++ {
		ch <- measure.Epoch{Index: i, AtMS: float64(i), Matrix: m.Clone(), Final: i == 4}
	}
	close(ch)

	out, err := SolveStream(ch, StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		RoundBudget:   solver.Budget{Nodes: 15_000},
		Seed:          13,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rounds) != 4 {
		t.Fatalf("got %d rounds", len(out.Rounds))
	}
	for i := 1; i < len(out.Rounds); i++ {
		if out.Rounds[i].Cost > out.Rounds[i-1].Cost {
			t.Fatalf("incumbent cost rose: round %d %g -> %g", i, out.Rounds[i-1].Cost, out.Rounds[i].Cost)
		}
	}
	if out.Cost != out.Rounds[3].Cost {
		t.Fatal("outcome cost differs from the last round")
	}
	if err := out.Deployment.Validate(12); err != nil {
		t.Fatal(err)
	}
}

// TestSolveStreamCoalesce: with several epochs already pending, a coalescing
// consumer skips straight to the newest and records how many it passed over.
func TestSolveStreamCoalesce(t *testing.T) {
	g := meshGraph(t, 2, 3)
	base := core.NewCostMatrix(8)
	rngFill(base, 69)

	ch := make(chan measure.Epoch, 3)
	for i := 1; i <= 3; i++ {
		ch <- measure.Epoch{Index: i, AtMS: float64(i), Matrix: base.Clone(), Final: i == 3}
	}
	close(ch)

	out, err := SolveStream(ch, StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		SolverName:    "g2",
		RoundBudget:   solver.Budget{Nodes: 5_000},
		Coalesce:      true,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rounds) != 1 {
		t.Fatalf("coalescing consumer ran %d rounds, want 1", len(out.Rounds))
	}
	if out.Rounds[0].Epoch != 3 || out.Rounds[0].Skipped != 2 || !out.Rounds[0].Final {
		t.Fatalf("coalesced round = %+v, want epoch 3 with 2 skipped", out.Rounds[0])
	}
}

// TestSolveStreamRejectsBadInput covers the error paths: nil graph,
// unbounded rounds, empty streams, and mid-stream size changes.
func TestSolveStreamRejectsBadInput(t *testing.T) {
	g := meshGraph(t, 2, 2)
	if _, err := SolveStream(nil, StreamSolveConfig{RoundBudget: solver.Budget{Nodes: 1}}); err == nil {
		t.Fatal("nil graph accepted")
	}
	if _, err := SolveStream(nil, StreamSolveConfig{Graph: g}); err == nil {
		t.Fatal("unbounded round budget accepted")
	}

	empty := make(chan measure.Epoch)
	close(empty)
	if _, err := SolveStream(empty, StreamSolveConfig{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, RoundBudget: solver.Budget{Nodes: 10}}); err == nil {
		t.Fatal("empty stream accepted")
	}

	m4, m5 := core.NewCostMatrix(4), core.NewCostMatrix(5)
	rngFill(m4, 71)
	rngFill(m5, 73)
	ch := make(chan measure.Epoch, 2)
	ch <- measure.Epoch{Index: 1, Matrix: m4}
	ch <- measure.Epoch{Index: 2, Matrix: m5, Final: true}
	close(ch)
	if _, err := SolveStream(ch, StreamSolveConfig{Graph: g, ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink}, SolverName: "g1", RoundBudget: solver.Budget{Nodes: 10}}); err == nil {
		t.Fatal("mid-stream size change accepted")
	}
}

// TestSolveStreamConcurrentPublication is the advisor-level race hammer:
// a producer publishes epochs in real time while SolveStream races portfolio
// rounds against them. Run under -race (CI does).
func TestSolveStreamConcurrentPublication(t *testing.T) {
	g := meshGraph(t, 3, 3)
	const n, epochs = 12, 5
	m := core.NewCostMatrix(n)
	rngFill(m, 75)

	ch := make(chan measure.Epoch) // unbuffered: publication overlaps solving
	go func() {
		defer close(ch)
		cur := m
		for e := 1; e <= epochs; e++ {
			next := cur.Clone()
			changed := []int{e % n, (e * 3) % n}
			for _, i := range changed {
				for j := 0; j < n; j++ {
					if i != j {
						next.Set(i, j, cur.At(i, j)*1.01+0.001)
					}
				}
			}
			ch <- measure.Epoch{Index: e, AtMS: float64(e), Final: e == epochs, Matrix: next, ChangedRows: changed}
			cur = next
			time.Sleep(2 * time.Millisecond)
		}
	}()

	out, err := SolveStream(ch, StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		RoundBudget:   solver.Budget{Time: 20 * time.Millisecond},
		Seed:          17,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Rounds) == 0 || !out.Rounds[len(out.Rounds)-1].Final {
		t.Fatal("stream did not reach the final epoch")
	}
	if err := out.Deployment.Validate(n); err != nil {
		t.Fatal(err)
	}
}

// rngFill populates a matrix with uniform off-diagonal costs.
func rngFill(m *core.CostMatrix, seed int64) {
	s := uint64(seed)
	next := func() float64 {
		// xorshift64*: deterministic filler without pulling in math/rand.
		s ^= s >> 12
		s ^= s << 25
		s ^= s >> 27
		return float64(s*0x2545F4914F6CDD1D>>11) / float64(1<<53)
	}
	for i := 0; i < m.Size(); i++ {
		for j := 0; j < m.Size(); j++ {
			if i != j {
				m.Set(i, j, 0.2+next())
			}
		}
	}
}

// TestSolveStreamWarmStart: a supplied warm start is adopted as the round-0
// incumbent — the outcome can only improve on it — and an invalid one fails
// the run before any solving.
func TestSolveStreamWarmStart(t *testing.T) {
	g := meshGraph(t, 3, 3)
	m := core.NewCostMatrix(12)
	rngFill(m, 81)

	oneEpoch := func() chan measure.Epoch {
		ch := make(chan measure.Epoch, 1)
		ch <- measure.Epoch{Index: 1, AtMS: 1, Final: true, Matrix: m.Clone()}
		close(ch)
		return ch
	}
	warm := core.Identity(g.NumNodes())
	out, err := SolveStream(oneEpoch(), StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		SolverName:    "g1",
		RoundBudget:   solver.Budget{Nodes: 1},
		WarmStart:     warm,
	})
	if err != nil {
		t.Fatal(err)
	}
	if out.Cost > out.Problem.Cost(warm) {
		t.Fatalf("outcome cost %g worse than the warm start's %g", out.Cost, out.Problem.Cost(warm))
	}

	for _, bad := range []core.Deployment{
		{0, 1},                                 // wrong length
		{0, 1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 99}, // instance out of range
	} {
		if _, err := SolveStream(oneEpoch(), StreamSolveConfig{
			Graph:         g,
			ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
			SolverName:    "g1",
			RoundBudget:   solver.Budget{Nodes: 1},
			WarmStart:     bad,
		}); err == nil {
			t.Fatalf("warm start %v accepted", bad)
		}
	}
}

// TestSolveStreamDeadline covers the ctx-bounded run: an expired context
// still yields one round of best-so-far advice when an epoch is pending, a
// mid-stream cancellation stops consuming epochs after the round in flight,
// and a context that dies before any epoch arrives is an error.
func TestSolveStreamDeadline(t *testing.T) {
	g := meshGraph(t, 3, 3)
	m := core.NewCostMatrix(12)
	rngFill(m, 83)
	fill := func(n int) chan measure.Epoch {
		ch := make(chan measure.Epoch, n)
		for i := 1; i <= n; i++ {
			ch <- measure.Epoch{Index: i, AtMS: float64(i), Final: i == n, Matrix: m.Clone()}
		}
		close(ch)
		return ch
	}

	expired, cancel := context.WithCancel(context.Background())
	cancel()
	out, err := SolveStream(fill(3), StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		RoundBudget:   solver.Budget{Nodes: 50_000},
		Seed:          3,
		Ctx:           expired,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out.Interrupted {
		t.Fatal("expired-context run not marked Interrupted")
	}
	if len(out.Rounds) != 1 {
		t.Fatalf("expired-context run consumed %d epochs, want 1", len(out.Rounds))
	}
	if err := out.Deployment.Validate(12); err != nil {
		t.Fatalf("interrupted run returned no usable advice: %v", err)
	}

	ctx2, cancel2 := context.WithCancel(context.Background())
	defer cancel2()
	out2, err := SolveStream(fill(4), StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		SolverName:    "g2",
		RoundBudget:   solver.Budget{Nodes: 2_000},
		OnRound: func(r Round) {
			if r.Epoch == 2 {
				cancel2()
			}
		},
		Ctx: ctx2,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !out2.Interrupted || len(out2.Rounds) != 2 {
		t.Fatalf("mid-stream cancel: interrupted=%v rounds=%d, want true/2", out2.Interrupted, len(out2.Rounds))
	}

	starved := make(chan measure.Epoch) // open, never fed
	if _, err := SolveStream(starved, StreamSolveConfig{
		Graph:         g,
		ObjectiveSpec: ObjectiveSpec{Objective: solver.LongestLink},
		RoundBudget:   solver.Budget{Nodes: 10},
		Ctx:           expired,
	}); err == nil {
		t.Fatal("interrupt before the first epoch produced advice from nothing")
	}
}
