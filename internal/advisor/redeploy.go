package advisor

import (
	"fmt"
	"math"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/measure"
	"cloudia/internal/solver"
)

// This file implements the iterative re-deployment extension of Sect. 2.2.1:
// when network conditions change over time (the optimal plan is no longer
// optimal), ClouDiA can iterate its architecture — get new measurements,
// search for a new plan, re-deploy the application. The paper leaves this as
// an envisioned mode because public clouds lacked VM live migration; here
// the migration cost is modelled explicitly, so the decision "is
// re-deploying worth it?" is part of the loop.

// RedeployConfig drives a long-running adaptive deployment session.
type RedeployConfig struct {
	// Graph and Objective define the deployment problem (as in Config).
	Graph     *core.Graph
	Objective solver.Objective
	// OverAllocation is applied once at session start. The extra instances
	// are retained for the whole session: they are the freedom future
	// re-deployments exploit. (Terminating them, as one-shot ClouDiA does,
	// would forfeit adaptation.)
	OverAllocation float64
	// PeriodHours is the re-measurement interval; Periods is how many
	// periods to run.
	PeriodHours float64
	Periods     int
	// MinImprovement is the predicted relative cost reduction required to
	// trigger a re-deployment (hysteresis against churn). Zero selects 10%.
	MinImprovement float64
	// MigrationCostPerNode, in deployment-cost units (ms), is charged —
	// amortized over one period — for every node that moves, modelling
	// state-migration downtime. It participates in the re-deploy decision.
	MigrationCostPerNode float64
	// MeasureDurationMS and SolverBudget mirror Config; zeros select the
	// same defaults.
	MeasureDurationMS float64
	SolverBudget      solver.Budget
	SolverName        string
	ClusterK          int
	Seed              int64
}

// PeriodOutcome records one re-measurement period.
type PeriodOutcome struct {
	Hours float64
	// StaticCost is the cost of the initial (period-0) plan under this
	// period's measured network.
	StaticCost float64
	// AdaptiveCost is the cost of the adaptive plan after any re-deployment
	// this period, including the amortized migration charge.
	AdaptiveCost float64
	// Redeployed reports whether the adaptive plan changed this period, and
	// MovedNodes how many nodes migrated.
	Redeployed bool
	MovedNodes int
}

// RedeployReport summarizes an adaptive session.
type RedeployReport struct {
	Instances     []cloud.Instance
	Initial       core.Deployment
	Final         core.Deployment
	Periods       []PeriodOutcome
	Redeployments int
	TotalMoves    int
}

// MeanStaticCost averages the static plan's cost over all periods.
func (r *RedeployReport) MeanStaticCost() float64 {
	return r.meanCost(func(p PeriodOutcome) float64 { return p.StaticCost })
}

// MeanAdaptiveCost averages the adaptive plan's cost over all periods.
func (r *RedeployReport) MeanAdaptiveCost() float64 {
	return r.meanCost(func(p PeriodOutcome) float64 { return p.AdaptiveCost })
}

func (r *RedeployReport) meanCost(f func(PeriodOutcome) float64) float64 {
	if len(r.Periods) == 0 {
		return 0
	}
	sum := 0.0
	for _, p := range r.Periods {
		sum += f(p)
	}
	return sum / float64(len(r.Periods))
}

// RunRedeploy executes the adaptive session against the provider. If any
// step after allocation fails, every allocated instance is terminated before
// returning, mirroring Advise.
func RunRedeploy(prov *cloud.Provider, cfg RedeployConfig) (rep *RedeployReport, err error) {
	if cfg.Graph == nil {
		return nil, fmt.Errorf("advisor: nil communication graph")
	}
	if cfg.PeriodHours <= 0 || cfg.Periods <= 0 {
		return nil, fmt.Errorf("advisor: non-positive period configuration")
	}
	if cfg.MinImprovement == 0 {
		cfg.MinImprovement = 0.10
	}
	if cfg.MinImprovement < 0 || cfg.MigrationCostPerNode < 0 {
		return nil, fmt.Errorf("advisor: negative re-deployment thresholds")
	}
	n := cfg.Graph.NumNodes()
	total := int(math.Ceil(float64(n) * (1 + cfg.OverAllocation)))
	if total < n {
		total = n
	}
	instances, err := prov.RunInstances(total)
	if err != nil {
		return nil, err
	}
	defer func() {
		if err != nil {
			err = terminateAll(prov, instances, err)
		}
	}()

	dur := cfg.MeasureDurationMS
	if dur == 0 {
		dur = 20 * float64(total)
	}
	budget := cfg.SolverBudget
	if budget.Unlimited() {
		budget = solver.Budget{Nodes: 2_000_000}
	}
	name := cfg.SolverName
	if name == "" {
		if cfg.Objective == solver.LongestPath {
			name = "mip"
		} else {
			name = "cp"
		}
	}
	clusterK := cfg.ClusterK
	if clusterK == 0 && name == "cp" {
		clusterK = 20
	}

	// solveAt measures the network at the given hour and searches a plan.
	// The problem is returned so each period's cost evaluations reuse it —
	// and with it the shared Prep artifacts its solver already computed —
	// instead of rebuilding an identical problem from the same matrix.
	solveAt := func(hours float64, seed int64) (*solver.Problem, core.Deployment, error) {
		meas, err := measure.Run(prov.Datacenter(), instances, measure.Options{
			Scheme:     measure.Staged,
			DurationMS: dur,
			Seed:       seed,
			StartHours: hours,
		})
		if err != nil {
			return nil, nil, err
		}
		prob, err := solver.NewProblem(cfg.Graph, meas.MeanMatrix(), cfg.Objective)
		if err != nil {
			return nil, nil, err
		}
		sol, err := NewSolver(name, clusterK, seed)
		if err != nil {
			return nil, nil, err
		}
		res, err := sol.Solve(prob, budget)
		if err != nil {
			return nil, nil, err
		}
		return prob, res.Deployment, nil
	}

	_, initial, err := solveAt(0, cfg.Seed)
	if err != nil {
		return nil, err
	}
	rep = &RedeployReport{
		Instances: instances,
		Initial:   initial.Clone(),
		Final:     initial.Clone(),
	}
	current := initial.Clone()

	for p := 1; p <= cfg.Periods; p++ {
		hours := float64(p) * cfg.PeriodHours
		prob, candidate, err := solveAt(hours, cfg.Seed+int64(p)*101)
		if err != nil {
			return nil, err
		}
		out := PeriodOutcome{
			Hours:      hours,
			StaticCost: prob.Cost(initial),
		}
		curCost := prob.Cost(current)
		candCost := prob.Cost(candidate)
		moves := diffCount(current, candidate)
		// Re-deploy when the predicted gain clears both the hysteresis
		// threshold and the amortized migration charge.
		migration := cfg.MigrationCostPerNode * float64(moves)
		if curCost > 0 && (curCost-candCost-migration)/curCost >= cfg.MinImprovement {
			current = candidate.Clone()
			out.Redeployed = true
			out.MovedNodes = moves
			out.AdaptiveCost = candCost + migration
			rep.Redeployments++
			rep.TotalMoves += moves
		} else {
			out.AdaptiveCost = curCost
		}
		rep.Periods = append(rep.Periods, out)
	}
	rep.Final = current
	return rep, nil
}

// diffCount reports how many nodes map to different instances in a and b.
func diffCount(a, b core.Deployment) int {
	n := 0
	for i := range a {
		if a[i] != b[i] {
			n++
		}
	}
	return n
}
