// Package graphio serializes communication graphs and cost matrices to and
// from JSON, the interchange format of the cloudia CLI. The graph format is
//
//	{
//	  "nodes": 4,
//	  "edges": [[0,1], [1,2], [2,3]],
//	  "weights": {"0-1": 4.0}            // optional, defaults to 1
//	}
//
// and the cost-matrix format is
//
//	{"size": 3, "costs": [[0,0.5,0.6],[0.5,0,0.7],[0.6,0.7,0]]}
package graphio

import (
	"encoding/json"
	"fmt"
	"io"
	"strconv"
	"strings"

	"cloudia/internal/core"
)

// graphJSON is the wire form of a communication graph.
type graphJSON struct {
	Nodes   int                `json:"nodes"`
	Edges   [][2]int           `json:"edges"`
	Weights map[string]float64 `json:"weights,omitempty"`
}

// WriteGraph encodes g as JSON.
func WriteGraph(w io.Writer, g *core.Graph) error {
	out := graphJSON{Nodes: g.NumNodes()}
	for _, e := range g.Edges() {
		out.Edges = append(out.Edges, [2]int{e.From, e.To})
		if wt := g.Weight(e.From, e.To); wt != 1 {
			if out.Weights == nil {
				out.Weights = make(map[string]float64)
			}
			out.Weights[edgeKey(e.From, e.To)] = wt
		}
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(out)
}

// ReadGraph decodes a communication graph from JSON, validating node ranges,
// duplicate edges, and weight references.
func ReadGraph(r io.Reader) (*core.Graph, error) {
	var in graphJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if in.Nodes < 0 {
		return nil, fmt.Errorf("graphio: negative node count %d", in.Nodes)
	}
	g := core.NewGraph(in.Nodes)
	for _, e := range in.Edges {
		if err := g.AddEdge(e[0], e[1]); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
	}
	for key, wt := range in.Weights {
		from, to, err := parseEdgeKey(key)
		if err != nil {
			return nil, err
		}
		if err := g.SetWeight(from, to, wt); err != nil {
			return nil, fmt.Errorf("graphio: %w", err)
		}
	}
	return g, nil
}

func edgeKey(from, to int) string {
	return strconv.Itoa(from) + "-" + strconv.Itoa(to)
}

func parseEdgeKey(key string) (from, to int, err error) {
	parts := strings.SplitN(key, "-", 2)
	if len(parts) != 2 {
		return 0, 0, fmt.Errorf("graphio: bad weight key %q (want \"from-to\")", key)
	}
	from, err = strconv.Atoi(parts[0])
	if err != nil {
		return 0, 0, fmt.Errorf("graphio: bad weight key %q: %v", key, err)
	}
	to, err = strconv.Atoi(parts[1])
	if err != nil {
		return 0, 0, fmt.Errorf("graphio: bad weight key %q: %v", key, err)
	}
	return from, to, nil
}

// matrixJSON is the wire form of a cost matrix.
type matrixJSON struct {
	Size  int         `json:"size"`
	Costs [][]float64 `json:"costs"`
}

// WriteCostMatrix encodes m as JSON.
func WriteCostMatrix(w io.Writer, m *core.CostMatrix) error {
	out := matrixJSON{Size: m.Size()}
	for i := 0; i < m.Size(); i++ {
		row := make([]float64, m.Size())
		copy(row, m.Row(i))
		out.Costs = append(out.Costs, row)
	}
	enc := json.NewEncoder(w)
	return enc.Encode(out)
}

// ReadCostMatrix decodes and validates a cost matrix from JSON.
func ReadCostMatrix(r io.Reader) (*core.CostMatrix, error) {
	var in matrixJSON
	dec := json.NewDecoder(r)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&in); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	if in.Size < 0 || len(in.Costs) != in.Size {
		return nil, fmt.Errorf("graphio: matrix has %d rows, want %d", len(in.Costs), in.Size)
	}
	m := core.NewCostMatrix(in.Size)
	for i, row := range in.Costs {
		if len(row) != in.Size {
			return nil, fmt.Errorf("graphio: row %d has %d entries, want %d", i, len(row), in.Size)
		}
		for j, v := range row {
			m.Set(i, j, v)
		}
	}
	if err := m.Validate(); err != nil {
		return nil, fmt.Errorf("graphio: %w", err)
	}
	return m, nil
}
