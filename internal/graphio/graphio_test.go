package graphio

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"
	"testing/quick"

	"cloudia/internal/core"
)

func TestGraphRoundTrip(t *testing.T) {
	g, err := core.Mesh2D(3, 3)
	if err != nil {
		t.Fatal(err)
	}
	if err := g.SetWeight(0, 1, 4.5); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := WriteGraph(&buf, g); err != nil {
		t.Fatal(err)
	}
	got, err := ReadGraph(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
		t.Fatalf("round trip changed shape: %d/%d vs %d/%d",
			got.NumNodes(), got.NumEdges(), g.NumNodes(), g.NumEdges())
	}
	for _, e := range g.Edges() {
		if !got.HasEdge(e.From, e.To) {
			t.Fatalf("lost edge %v", e)
		}
		if got.Weight(e.From, e.To) != g.Weight(e.From, e.To) {
			t.Fatalf("weight mismatch on %v", e)
		}
	}
}

func TestReadGraphErrors(t *testing.T) {
	cases := []string{
		`{"nodes": -1}`,
		`{"nodes": 2, "edges": [[0,2]]}`,
		`{"nodes": 2, "edges": [[0,1],[0,1]]}`,
		`{"nodes": 2, "edges": [[0,1]], "weights": {"0": 2}}`,
		`{"nodes": 2, "edges": [[0,1]], "weights": {"x-y": 2}}`,
		`{"nodes": 2, "edges": [[0,1]], "weights": {"1-0": 2}}`, // weight on missing edge
		`{"nodes": 2, "edges": [[0,1]], "weights": {"0-1": -2}}`,
		`{"nodes": 2, "bogus": true}`,
		`not json`,
	}
	for _, c := range cases {
		if _, err := ReadGraph(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid graph: %s", c)
		}
	}
}

func TestReadGraphMinimal(t *testing.T) {
	g, err := ReadGraph(strings.NewReader(`{"nodes": 3, "edges": [[0,1],[1,2]]}`))
	if err != nil {
		t.Fatal(err)
	}
	if g.NumNodes() != 3 || g.NumEdges() != 2 {
		t.Fatalf("got %d nodes %d edges", g.NumNodes(), g.NumEdges())
	}
	if g.Weight(0, 1) != 1 {
		t.Fatal("missing weights should default to 1")
	}
}

func TestMatrixRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	m := core.NewCostMatrix(5)
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if i != j {
				m.Set(i, j, rng.Float64())
			}
		}
	}
	var buf bytes.Buffer
	if err := WriteCostMatrix(&buf, m); err != nil {
		t.Fatal(err)
	}
	got, err := ReadCostMatrix(&buf)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		for j := 0; j < 5; j++ {
			if got.At(i, j) != m.At(i, j) {
				t.Fatalf("(%d,%d): %g != %g", i, j, got.At(i, j), m.At(i, j))
			}
		}
	}
}

func TestReadCostMatrixErrors(t *testing.T) {
	cases := []string{
		`{"size": 2, "costs": [[0,1]]}`,
		`{"size": 2, "costs": [[0,1],[1]]}`,
		`{"size": 2, "costs": [[1,1],[1,0]]}`, // nonzero diagonal
		`{"size": 2, "costs": [[0,-1],[1,0]]}`,
		`{"size": -1, "costs": []}`,
		`garbage`,
	}
	for _, c := range cases {
		if _, err := ReadCostMatrix(strings.NewReader(c)); err == nil {
			t.Errorf("accepted invalid matrix: %s", c)
		}
	}
}

// Property: any random weighted DAG round-trips losslessly.
func TestGraphRoundTripProperty(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(15)
		g, err := core.RandomDAG(n, 0.3, rng)
		if err != nil {
			return false
		}
		for _, e := range g.Edges() {
			if rng.Intn(3) == 0 {
				if err := g.SetWeight(e.From, e.To, 0.5+rng.Float64()*5); err != nil {
					return false
				}
			}
		}
		var buf bytes.Buffer
		if err := WriteGraph(&buf, g); err != nil {
			return false
		}
		got, err := ReadGraph(&buf)
		if err != nil {
			return false
		}
		if got.NumNodes() != g.NumNodes() || got.NumEdges() != g.NumEdges() {
			return false
		}
		for _, e := range g.Edges() {
			if !got.HasEdge(e.From, e.To) || got.Weight(e.From, e.To) != g.Weight(e.From, e.To) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Fatal(err)
	}
}
