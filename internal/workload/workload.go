// Package workload implements the paper's three benchmark applications
// (Sect. 6.1) on top of the netsim discrete-event simulator:
//
//   - behavioral simulation: a 2D-mesh BSP computation whose per-tick
//     progress is gated by the slowest neighbour link (longest-link
//     sensitive),
//   - synthetic aggregation query: a two-level top-k aggregation tree whose
//     response time is the slowest leaf-to-root path (longest-path
//     sensitive), and
//   - key-value store: front-end servers querying random subsets of storage
//     nodes (neither objective matches exactly; the paper uses longest link
//     as a proxy).
//
// Each workload runs a given deployment plan over a given allocation and
// reports its performance metric in virtual milliseconds, so the effect of
// deployment optimization is measured the same way the paper measures it:
// by running the application.
package workload

import (
	"fmt"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/netsim"
	"cloudia/internal/topology"
)

// Workload is a runnable benchmark application.
type Workload interface {
	// Name identifies the workload.
	Name() string
	// Graph returns the communication graph a deployment must cover.
	Graph() (*core.Graph, error)
	// Run executes the workload under the given deployment and returns its
	// performance metric in virtual milliseconds (lower is better):
	// time-to-solution for HPC-style workloads, mean response time for
	// service-style workloads.
	Run(dc *topology.Datacenter, instances []cloud.Instance, d core.Deployment, seed int64) (float64, error)
}

// newSim builds a simulator over the instances.
func newSim(dc *topology.Datacenter, instances []cloud.Instance, seed int64) (*netsim.Sim, error) {
	return netsim.New(len(instances), cloud.LatencyFunc(dc, instances, 0), seed, netsim.Config{})
}

// validateDeployment checks d against the workload's node count and the
// allocation size.
func validateDeployment(d core.Deployment, nodes, instances int) error {
	if len(d) != nodes {
		return fmt.Errorf("workload: deployment covers %d nodes, want %d", len(d), nodes)
	}
	return d.Validate(instances)
}

// BehavioralSim is the fish-school style simulation of Sect. 6.1.1: a
// Rows x Cols processor mesh advancing in ticks; every tick each node
// exchanges MsgBytes with each mesh neighbour and may only advance once all
// neighbours' messages for the current tick have arrived (a local barrier).
type BehavioralSim struct {
	Rows, Cols int
	// Ticks is the number of simulation steps to run. The paper runs 100K
	// ticks; time-to-solution scales linearly in ticks, so experiments use
	// fewer and report the same relative improvements.
	Ticks int
	// MsgBytes per link per tick; zero selects the paper's 1 KB.
	MsgBytes int
	// ComputeMS is the per-tick computation time; the paper hides
	// CPU-intensive computation to focus on network effects, so the default
	// is a small 0.02 ms.
	ComputeMS float64
}

// Name implements Workload.
func (w *BehavioralSim) Name() string { return "behavioral-simulation" }

// Graph implements Workload: a 2D mesh.
func (w *BehavioralSim) Graph() (*core.Graph, error) { return core.Mesh2D(w.Rows, w.Cols) }

// Run implements Workload, returning total time-to-solution.
func (w *BehavioralSim) Run(dc *topology.Datacenter, instances []cloud.Instance, d core.Deployment, seed int64) (float64, error) {
	if w.Ticks <= 0 {
		return 0, fmt.Errorf("workload: non-positive tick count %d", w.Ticks)
	}
	g, err := w.Graph()
	if err != nil {
		return 0, err
	}
	if err := validateDeployment(d, g.NumNodes(), len(instances)); err != nil {
		return 0, err
	}
	msg := w.MsgBytes
	if msg == 0 {
		msg = 1024
	}
	compute := w.ComputeMS
	if compute == 0 {
		compute = 0.02
	}
	sim, err := newSim(dc, instances, seed)
	if err != nil {
		return 0, err
	}

	n := g.NumNodes()
	// Undirected neighbour sets; mesh edges are bidirectional so Out
	// suffices and preserves symmetry.
	neighbours := make([][]int, n)
	for v := 0; v < n; v++ {
		neighbours[v] = g.Out(v)
	}
	curTick := make([]int, n)
	received := make([]map[int]int, n) // node -> tick -> messages received
	doneAt := -1.0
	completed := 0
	for v := range received {
		received[v] = make(map[int]int)
	}

	// sent[v] guards the local barrier: a node may only advance past tick t
	// once it has both sent its own tick-t messages and received all
	// neighbours' tick-t messages.
	sent := make([]bool, n)
	var enter func(v int)
	var tryAdvance func(v int)
	tryAdvance = func(v int) {
		t := curTick[v]
		if !sent[v] || received[v][t] < len(neighbours[v]) {
			return
		}
		delete(received[v], t)
		curTick[v] = t + 1
		sent[v] = false
		if curTick[v] == w.Ticks {
			completed++
			if completed == n {
				doneAt = sim.Now()
			}
			return
		}
		enter(v)
	}
	enter = func(v int) {
		tick := curTick[v]
		// Compute, then exchange this tick's messages. The tick is captured
		// here: curTick[v] cannot change until sent[v] is set below.
		sim.After(compute, func() {
			for _, u := range neighbours[v] {
				u := u
				sim.Send(d[v], d[u], msg, func(netsim.Time) {
					received[u][tick]++
					tryAdvance(u)
				})
			}
			sent[v] = true
			tryAdvance(v) // nodes with zero neighbours advance immediately
		})
	}
	for v := 0; v < n; v++ {
		enter(v)
	}
	sim.Run()
	if doneAt < 0 {
		return 0, fmt.Errorf("workload: simulation did not complete")
	}
	return doneAt, nil
}
