package workload

import (
	"math/rand"
	"testing"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/solver"
	"cloudia/internal/solver/cp"
	"cloudia/internal/solver/mip"
	"cloudia/internal/topology"
)

func fleet(t *testing.T, n int, seed int64) (*topology.Datacenter, []cloud.Instance) {
	t.Helper()
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		t.Fatal(err)
	}
	p, err := cloud.NewProvider(dc, 0.6, seed+1)
	if err != nil {
		t.Fatal(err)
	}
	insts, err := p.RunInstances(n)
	if err != nil {
		t.Fatal(err)
	}
	return dc, insts
}

func TestBehavioralSimValidation(t *testing.T) {
	dc, insts := fleet(t, 10, 1)
	w := &BehavioralSim{Rows: 3, Cols: 3, Ticks: 0}
	if _, err := w.Run(dc, insts, core.Identity(9), 1); err == nil {
		t.Fatal("zero ticks accepted")
	}
	w.Ticks = 5
	if _, err := w.Run(dc, insts, core.Identity(4), 1); err == nil {
		t.Fatal("wrong deployment size accepted")
	}
}

func TestBehavioralSimCompletes(t *testing.T) {
	dc, insts := fleet(t, 10, 2)
	w := &BehavioralSim{Rows: 3, Cols: 3, Ticks: 20}
	tts, err := w.Run(dc, insts, core.Identity(9), 3)
	if err != nil {
		t.Fatal(err)
	}
	if tts <= 0 {
		t.Fatalf("time-to-solution %g, want positive", tts)
	}
	// Lower bound: 20 ticks x (compute + one-way latency) is well above
	// 20 x 0.02 ms.
	if tts < 20*0.02 {
		t.Fatalf("time-to-solution %g implausibly small", tts)
	}
}

func TestBehavioralSimScalesWithTicks(t *testing.T) {
	dc, insts := fleet(t, 10, 4)
	short := &BehavioralSim{Rows: 3, Cols: 3, Ticks: 10}
	long := &BehavioralSim{Rows: 3, Cols: 3, Ticks: 40}
	s, err := short.Run(dc, insts, core.Identity(9), 5)
	if err != nil {
		t.Fatal(err)
	}
	l, err := long.Run(dc, insts, core.Identity(9), 5)
	if err != nil {
		t.Fatal(err)
	}
	ratio := l / s
	if ratio < 3 || ratio > 5 {
		t.Fatalf("4x ticks took %gx time; want ~4x", ratio)
	}
}

func TestBehavioralSimDeterministic(t *testing.T) {
	dc, insts := fleet(t, 10, 6)
	w := &BehavioralSim{Rows: 3, Cols: 3, Ticks: 15}
	a, err := w.Run(dc, insts, core.Identity(9), 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := w.Run(dc, insts, core.Identity(9), 7)
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Fatalf("nondeterministic: %g vs %g", a, b)
	}
}

func TestAggregationQueryCompletes(t *testing.T) {
	dc, insts := fleet(t, 15, 8)
	w := &AggregationQuery{Mids: 3, Leaves: 9, Queries: 10}
	resp, err := w.Run(dc, insts, core.Identity(13), 9)
	if err != nil {
		t.Fatal(err)
	}
	// A query crosses two hops; response must exceed one mean RTT.
	if resp < 0.3 {
		t.Fatalf("mean response %g implausibly small", resp)
	}
}

func TestAggregationValidation(t *testing.T) {
	dc, insts := fleet(t, 15, 10)
	w := &AggregationQuery{Mids: 3, Leaves: 9, Queries: 0}
	if _, err := w.Run(dc, insts, core.Identity(13), 1); err == nil {
		t.Fatal("zero queries accepted")
	}
}

func TestKVStoreCompletes(t *testing.T) {
	dc, insts := fleet(t, 14, 12)
	w := &KVStore{Frontends: 4, Storage: 10, Queries: 20, TouchK: 3}
	resp, err := w.Run(dc, insts, core.Identity(14), 13)
	if err != nil {
		t.Fatal(err)
	}
	if resp < 0.3 {
		t.Fatalf("mean response %g implausibly small", resp)
	}
}

func TestKVStoreValidation(t *testing.T) {
	dc, insts := fleet(t, 14, 14)
	w := &KVStore{Frontends: 4, Storage: 10, Queries: 5, TouchK: 11}
	if _, err := w.Run(dc, insts, core.Identity(14), 1); err == nil {
		t.Fatal("TouchK > Storage accepted")
	}
}

// The central claim of the paper: an optimized deployment runs the workload
// faster than the default deployment. Verified end-to-end per workload.

func TestOptimizedDeploymentBeatsDefaultBehavioral(t *testing.T) {
	dc, insts := fleet(t, 20, 16) // 16 nodes on 20 instances: 25% over-alloc
	w := &BehavioralSim{Rows: 4, Cols: 4, Ticks: 30}
	g, err := w.Graph()
	if err != nil {
		t.Fatal(err)
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	p, err := solver.NewProblem(g, m, solver.LongestLink)
	if err != nil {
		t.Fatal(err)
	}
	res, err := cp.New(20, 17).Solve(p, solver.Budget{Nodes: 2_000_000})
	if err != nil {
		t.Fatal(err)
	}
	def, err := w.Run(dc, insts, core.Identity(16), 18)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := w.Run(dc, insts, res.Deployment, 18)
	if err != nil {
		t.Fatal(err)
	}
	if opt >= def {
		t.Fatalf("optimized %g >= default %g; deployment tuning had no effect", opt, def)
	}
}

func TestOptimizedDeploymentBeatsDefaultAggregation(t *testing.T) {
	dc, insts := fleet(t, 17, 20)
	w := &AggregationQuery{Mids: 3, Leaves: 9, Queries: 30}
	g, err := w.Graph()
	if err != nil {
		t.Fatal(err)
	}
	m := cloud.MeanRTTMatrix(dc, insts)
	p, err := solver.NewProblem(g, m, solver.LongestPath)
	if err != nil {
		t.Fatal(err)
	}
	res, err := mip.New(0, 21).Solve(p, solver.Budget{Nodes: 3_000_000})
	if err != nil {
		t.Fatal(err)
	}
	def, err := w.Run(dc, insts, core.Identity(13), 22)
	if err != nil {
		t.Fatal(err)
	}
	opt, err := w.Run(dc, insts, res.Deployment, 22)
	if err != nil {
		t.Fatal(err)
	}
	if opt >= def {
		t.Fatalf("optimized %g >= default %g", opt, def)
	}
}

func TestWorkloadGraphShapes(t *testing.T) {
	b := &BehavioralSim{Rows: 5, Cols: 4}
	g, err := b.Graph()
	if err != nil || g.NumNodes() != 20 {
		t.Fatalf("behavioral graph: %v, %d nodes", err, g.NumNodes())
	}
	a := &AggregationQuery{Mids: 4, Leaves: 12}
	g, err = a.Graph()
	if err != nil || g.NumNodes() != 17 {
		t.Fatalf("aggregation graph: %v, %d nodes", err, g.NumNodes())
	}
	if !g.IsDAG() {
		t.Fatal("aggregation graph not a DAG")
	}
	k := &KVStore{Frontends: 3, Storage: 7}
	g, err = k.Graph()
	if err != nil || g.NumNodes() != 10 {
		t.Fatalf("kv graph: %v, %d nodes", err, g.NumNodes())
	}
}

// Property-flavoured check: a deployment placed entirely on a low-latency
// clique must beat a deployment placed across the worst links.
func TestBehavioralSimSensitiveToPlacement(t *testing.T) {
	dc, insts := fleet(t, 30, 24)
	m := cloud.MeanRTTMatrix(dc, insts)
	w := &BehavioralSim{Rows: 2, Cols: 2, Ticks: 25}
	// Choose 4 instances greedily around the cheapest link vs 4 around the
	// most expensive link.
	type pair struct {
		i, j int
		c    float64
	}
	var best, worst pair
	best.c = 1e18
	for i := 0; i < 30; i++ {
		for j := 0; j < 30; j++ {
			if i == j {
				continue
			}
			c := m.At(i, j)
			if c < best.c {
				best = pair{i, j, c}
			}
			if c > worst.c {
				worst = pair{i, j, c}
			}
		}
	}
	pick := func(a, b int) core.Deployment {
		d := core.Deployment{a, b}
		for x := 0; len(d) < 4; x++ {
			if x != a && x != b {
				d = append(d, x)
			}
		}
		return d
	}
	_ = rand.Int // placate unused-import linters in some configurations
	goodD := pick(best.i, best.j)
	badD := pick(worst.i, worst.j)
	good, err := w.Run(dc, insts, goodD, 25)
	if err != nil {
		t.Fatal(err)
	}
	bad, err := w.Run(dc, insts, badD, 25)
	if err != nil {
		t.Fatal(err)
	}
	if good >= bad {
		t.Fatalf("placement on cheapest link (%g) not faster than on worst link (%g)", good, bad)
	}
}
