package workload

import (
	"fmt"
	"math/rand"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/netsim"
	"cloudia/internal/topology"
)

// KVStore is the distributed key-value store workload of Sect. 6.1.3:
// front-end servers query random subsets of storage nodes; a query completes
// when the slowest touched storage node has replied. Neither longest link
// nor longest path matches this average-response-time objective exactly —
// the paper optimizes it with longest link as a proxy and still observes
// 15-31% improvements.
type KVStore struct {
	Frontends int
	Storage   int
	// Queries is the number of queries to run back-to-back.
	Queries int
	// TouchK is the number of storage nodes each query reads; zero selects
	// Storage/4 (at least 1).
	TouchK int
	// ReqBytes and RespBytes are the request/reply sizes; zeros select
	// 512 B requests and 2 KB replies.
	ReqBytes  int
	RespBytes int
	// ComputeMS is the storage-side lookup time; zero selects 0.02 ms.
	ComputeMS float64
}

// Name implements Workload.
func (w *KVStore) Name() string { return "key-value-store" }

// Graph implements Workload: a complete bipartite graph, front-ends 0..F-1
// and storage nodes F..F+S-1.
func (w *KVStore) Graph() (*core.Graph, error) { return core.Bipartite(w.Frontends, w.Storage) }

// Run implements Workload, returning the mean query response time.
func (w *KVStore) Run(dc *topology.Datacenter, instances []cloud.Instance, d core.Deployment, seed int64) (float64, error) {
	if w.Queries <= 0 {
		return 0, fmt.Errorf("workload: non-positive query count %d", w.Queries)
	}
	g, err := w.Graph()
	if err != nil {
		return 0, err
	}
	if err := validateDeployment(d, g.NumNodes(), len(instances)); err != nil {
		return 0, err
	}
	touch := w.TouchK
	if touch == 0 {
		touch = w.Storage / 4
		if touch < 1 {
			touch = 1
		}
	}
	if touch > w.Storage {
		return 0, fmt.Errorf("workload: TouchK %d exceeds storage count %d", touch, w.Storage)
	}
	req := w.ReqBytes
	if req == 0 {
		req = 512
	}
	resp := w.RespBytes
	if resp == 0 {
		resp = 2048
	}
	compute := w.ComputeMS
	if compute == 0 {
		compute = 0.02
	}
	sim, err := newSim(dc, instances, seed)
	if err != nil {
		return 0, err
	}
	rng := rand.New(rand.NewSource(seed ^ 0x6b76))

	var totalResp float64
	var runQuery func(q int)
	runQuery = func(q int) {
		if q == w.Queries {
			return
		}
		fe := rng.Intn(w.Frontends)
		targets := rng.Perm(w.Storage)[:touch]
		start := sim.Now()
		remaining := touch
		for _, s := range targets {
			node := w.Frontends + s
			sim.Send(d[fe], d[node], req, func(netsim.Time) {
				sim.After(compute, func() {
					sim.Send(d[node], d[fe], resp, func(netsim.Time) {
						remaining--
						if remaining == 0 {
							totalResp += sim.Now() - start
							runQuery(q + 1)
						}
					})
				})
			})
		}
	}
	runQuery(0)
	sim.Run()
	return totalResp / float64(w.Queries), nil
}
