package workload

import (
	"fmt"

	"cloudia/internal/cloud"
	"cloudia/internal/core"
	"cloudia/internal/netsim"
	"cloudia/internal/topology"
)

// AggregationQuery is the synthetic top-k aggregation workload of
// Sect. 6.1.2: a two-level aggregation tree in which each leaf computes a
// partial result and forwards it to its aggregator, aggregators combine and
// forward to the root, and the query completes when the root has heard from
// every aggregator. Response time is therefore the slowest leaf-to-root
// path — the longest-path deployment cost in action.
type AggregationQuery struct {
	Mids   int // intermediate aggregators
	Leaves int // leaf nodes (>= Mids)
	// Queries is the number of queries to run back-to-back; the report is
	// the mean response time.
	Queries int
	// MsgBytes is the forwarded partial-result size; zero selects the
	// paper's 4 KB average.
	MsgBytes int
	// ComputeMS is the per-hop ranking/aggregation time; zero selects
	// 0.02 ms (the paper hides ranking computation).
	ComputeMS float64
}

// Name implements Workload.
func (w *AggregationQuery) Name() string { return "aggregation-query" }

// Graph implements Workload: a two-level aggregation tree with edges
// pointing child -> parent; node 0 is the root.
func (w *AggregationQuery) Graph() (*core.Graph, error) {
	return core.TwoLevelAggregation(w.Mids, w.Leaves)
}

// Run implements Workload, returning the mean query response time.
func (w *AggregationQuery) Run(dc *topology.Datacenter, instances []cloud.Instance, d core.Deployment, seed int64) (float64, error) {
	if w.Queries <= 0 {
		return 0, fmt.Errorf("workload: non-positive query count %d", w.Queries)
	}
	g, err := w.Graph()
	if err != nil {
		return 0, err
	}
	if err := validateDeployment(d, g.NumNodes(), len(instances)); err != nil {
		return 0, err
	}
	msg := w.MsgBytes
	if msg == 0 {
		msg = 4096
	}
	compute := w.ComputeMS
	if compute == 0 {
		compute = 0.02
	}
	sim, err := newSim(dc, instances, seed)
	if err != nil {
		return 0, err
	}

	// Children of each internal node, from the child->parent edges.
	children := make([][]int, g.NumNodes())
	for _, e := range g.Edges() {
		children[e.To] = append(children[e.To], e.From)
	}

	var totalResp float64
	var runQuery func(q int)
	runQuery = func(q int) {
		if q == w.Queries {
			return
		}
		start := sim.Now()
		pending := make([]int, g.NumNodes())
		var sendUp func(v int)
		sendUp = func(v int) {
			// v has all its inputs: aggregate, then forward to the parent
			// (or finish at the root).
			sim.After(compute, func() {
				if v == 0 {
					totalResp += sim.Now() - start
					runQuery(q + 1)
					return
				}
				parent := g.Out(v)[0]
				sim.Send(d[v], d[parent], msg, func(netsim.Time) {
					pending[parent]++
					if pending[parent] == len(children[parent]) {
						sendUp(parent)
					}
				})
			})
		}
		for v := 0; v < g.NumNodes(); v++ {
			if len(children[v]) == 0 {
				sendUp(v) // leaves fire immediately
			}
		}
	}
	runQuery(0)
	sim.Run()
	return totalResp / float64(w.Queries), nil
}
