// Package cloud simulates a public cloud provider over a topology.Datacenter:
// tenants allocate and terminate VM instances, and the provider places them
// on physical hosts without exposing any placement or topology information —
// exactly the API surface the paper's tenant faces. Placement is
// deliberately non-contiguous: the datacenter is pre-fragmented by other
// tenants, and new instances are scattered over whatever slots are free,
// producing the heterogeneous pairwise latencies of Fig. 1.
package cloud

import (
	"fmt"
	"math/rand"
	"sort"

	"cloudia/internal/core"
	"cloudia/internal/topology"
)

// Instance is one allocated VM. The tenant sees the ID and internal IP; Host
// is the hidden physical placement, exposed only to the simulation layers
// (and to Appendix-2 style analyses that compute the ground truth).
type Instance struct {
	ID   string
	Host int
	IP   [4]byte
}

// Provider is a simulated cloud provider. It is not safe for concurrent use.
type Provider struct {
	dc    *topology.Datacenter
	rng   *rand.Rand
	used  []int // used VM slots per host
	live  map[string]Instance
	next  int
	slots int
}

// NewProvider creates a provider over dc. occupancy in [0,1) pre-fills that
// fraction of all VM slots with other tenants' instances, rack by rack with
// random skew, so a subsequent allocation fragments across the datacenter.
func NewProvider(dc *topology.Datacenter, occupancy float64, seed int64) (*Provider, error) {
	if occupancy < 0 || occupancy >= 1 {
		return nil, fmt.Errorf("cloud: occupancy %g out of [0,1)", occupancy)
	}
	p := &Provider{
		dc:    dc,
		rng:   rand.New(rand.NewSource(seed)),
		used:  make([]int, dc.NumHosts()),
		live:  make(map[string]Instance),
		slots: dc.Profile().SlotsPerHost,
	}
	// Pre-fragment: every host gets a binomially distributed number of
	// foreign VMs, with per-rack skew so some racks are nearly full and
	// others nearly empty (hot and cold zones).
	for h := range p.used {
		rackSkew := 0.5 + p.rng.Float64() // in [0.5, 1.5)
		prob := occupancy * rackSkew
		if prob > 0.95 {
			prob = 0.95
		}
		for s := 0; s < p.slots; s++ {
			if p.rng.Float64() < prob {
				p.used[h]++
			}
		}
	}
	return p, nil
}

// Datacenter exposes the underlying datacenter for simulation layers.
func (p *Provider) Datacenter() *topology.Datacenter { return p.dc }

// FreeSlots reports the number of free VM slots datacenter-wide.
func (p *Provider) FreeSlots() int {
	free := 0
	for _, u := range p.used {
		free += p.slots - u
	}
	return free
}

// LiveInstances reports the number of instances currently allocated by this
// provider's tenants.
func (p *Provider) LiveInstances() int { return len(p.live) }

// RunInstances allocates count instances, scattering them over free slots.
// The returned order is the provider's allocation order — the paper's
// "default deployment" uses it as-is. Placement policy: repeatedly pick a
// random host weighted by free slots; the tenant has no influence, matching
// ec2-run-instances semantics.
func (p *Provider) RunInstances(count int) ([]Instance, error) {
	if count <= 0 {
		return nil, fmt.Errorf("cloud: invalid instance count %d", count)
	}
	if count > p.FreeSlots() {
		return nil, fmt.Errorf("cloud: insufficient capacity: want %d, free %d", count, p.FreeSlots())
	}
	out := make([]Instance, 0, count)
	for len(out) < count {
		h := p.pickHost()
		p.used[h]++
		inst := Instance{
			ID:   fmt.Sprintf("i-%08x", p.next),
			Host: h,
			IP:   p.dc.IP(h),
		}
		p.next++
		p.live[inst.ID] = inst
		out = append(out, inst)
	}
	return out, nil
}

// pickHost selects a host with free capacity, weighted by free slots.
func (p *Provider) pickHost() int {
	free := p.FreeSlots()
	k := p.rng.Intn(free)
	for h, u := range p.used {
		k -= p.slots - u
		if k < 0 {
			return h
		}
	}
	panic("cloud: pickHost ran past capacity") // unreachable: k < free
}

// TerminateInstances releases the given instances. Unknown IDs are an error;
// partial termination is applied for the prefix preceding the error.
func (p *Provider) TerminateInstances(ids []string) error {
	for _, id := range ids {
		inst, ok := p.live[id]
		if !ok {
			return fmt.Errorf("cloud: unknown instance %q", id)
		}
		delete(p.live, id)
		p.used[inst.Host]--
	}
	return nil
}

// MeanRTTMatrix returns the ground-truth mean RTT matrix over the given
// instances at time 0: entry (i, j) is the stable mean RTT between
// instances[i] and instances[j]. This is what an oracle (or an infinitely
// long measurement) would report; the measure package estimates it.
func MeanRTTMatrix(dc *topology.Datacenter, instances []Instance) *core.CostMatrix {
	n := len(instances)
	m := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, dc.MeanRTT(instances[i].Host, instances[j].Host))
			}
		}
	}
	return m
}

// InverseBandwidthMatrix returns a cost matrix whose entry (i, j) is
// 1000 / bandwidth(i, j) in MB/s — so minimizing the longest-link deployment
// cost maximizes the bottleneck bandwidth across communication edges. This
// is the bandwidth criterion the paper names as future work (Sect. 8).
func InverseBandwidthMatrix(dc *topology.Datacenter, instances []Instance) *core.CostMatrix {
	n := len(instances)
	m := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 1000/dc.BandwidthMBps(instances[i].Host, instances[j].Host))
			}
		}
	}
	return m
}

// LatencyFunc adapts the datacenter's one-way sampler to a set of instances,
// for use as a netsim.LatencyFunc. startHours anchors the virtual clock to
// an absolute datacenter time (virtual ms are added on top).
func LatencyFunc(dc *topology.Datacenter, instances []Instance, startHours float64) func(src, dst int, nowMS float64, rng *rand.Rand) float64 {
	hosts := make([]int, len(instances))
	for i, inst := range instances {
		hosts[i] = inst.Host
	}
	return func(src, dst int, nowMS float64, rng *rand.Rand) float64 {
		hours := startHours + nowMS/3.6e6
		return dc.SampleOneWay(hosts[src], hosts[dst], hours, rng)
	}
}

// DistinctRacks reports how many racks the instances span, a fragmentation
// diagnostic used by tests.
func DistinctRacks(dc *topology.Datacenter, instances []Instance) int {
	racks := make(map[int]struct{})
	for _, inst := range instances {
		racks[dc.Rack(inst.Host)] = struct{}{}
	}
	return len(racks)
}

// SortByID returns a copy of instances sorted by instance ID, the canonical
// presentation order in provider consoles. Allocation order is preserved in
// the original slice.
func SortByID(instances []Instance) []Instance {
	out := append([]Instance(nil), instances...)
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}
