package cloud

import (
	"math/rand"
	"testing"

	"cloudia/internal/topology"
)

func newProvider(t *testing.T, occupancy float64, seed int64) *Provider {
	t.Helper()
	dc, err := topology.New(topology.EC2Profile(), seed)
	if err != nil {
		t.Fatalf("topology.New: %v", err)
	}
	p, err := NewProvider(dc, occupancy, seed+1)
	if err != nil {
		t.Fatalf("NewProvider: %v", err)
	}
	return p
}

func TestNewProviderRejectsOccupancy(t *testing.T) {
	dc, err := topology.New(topology.EC2Profile(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewProvider(dc, -0.1, 1); err == nil {
		t.Fatal("negative occupancy accepted")
	}
	if _, err := NewProvider(dc, 1.0, 1); err == nil {
		t.Fatal("full occupancy accepted")
	}
}

func TestRunInstancesBasics(t *testing.T) {
	p := newProvider(t, 0.6, 7)
	insts, err := p.RunInstances(100)
	if err != nil {
		t.Fatalf("RunInstances: %v", err)
	}
	if len(insts) != 100 {
		t.Fatalf("got %d instances", len(insts))
	}
	if p.LiveInstances() != 100 {
		t.Fatalf("LiveInstances = %d", p.LiveInstances())
	}
	ids := make(map[string]bool)
	for _, in := range insts {
		if ids[in.ID] {
			t.Fatalf("duplicate instance ID %s", in.ID)
		}
		ids[in.ID] = true
		if in.Host < 0 || in.Host >= p.Datacenter().NumHosts() {
			t.Fatalf("host %d out of range", in.Host)
		}
		if in.IP != p.Datacenter().IP(in.Host) {
			t.Fatalf("instance IP %v != host IP", in.IP)
		}
	}
}

func TestRunInstancesErrors(t *testing.T) {
	p := newProvider(t, 0.0, 1)
	if _, err := p.RunInstances(0); err == nil {
		t.Fatal("count 0 accepted")
	}
	if _, err := p.RunInstances(p.FreeSlots() + 1); err == nil {
		t.Fatal("over-capacity allocation accepted")
	}
}

func TestAllocationFragmentsAcrossRacks(t *testing.T) {
	p := newProvider(t, 0.6, 3)
	insts, err := p.RunInstances(100)
	if err != nil {
		t.Fatal(err)
	}
	racks := DistinctRacks(p.Datacenter(), insts)
	// 100 instances on a 64-rack datacenter should span many racks; a
	// contiguous allocator would use ~2 racks (80 slots each).
	if racks < 20 {
		t.Fatalf("allocation spans only %d racks; not fragmented", racks)
	}
}

func TestSlotCapacityRespected(t *testing.T) {
	p := newProvider(t, 0.5, 9)
	insts, err := p.RunInstances(300)
	if err != nil {
		t.Fatal(err)
	}
	perHost := make(map[int]int)
	for _, in := range insts {
		perHost[in.Host]++
	}
	slots := p.Datacenter().Profile().SlotsPerHost
	for h, n := range perHost {
		if n > slots {
			t.Fatalf("host %d holds %d instances, slots %d", h, n, slots)
		}
	}
}

func TestTerminateInstances(t *testing.T) {
	p := newProvider(t, 0.3, 5)
	before := p.FreeSlots()
	insts, err := p.RunInstances(10)
	if err != nil {
		t.Fatal(err)
	}
	if p.FreeSlots() != before-10 {
		t.Fatalf("free slots %d, want %d", p.FreeSlots(), before-10)
	}
	ids := []string{insts[0].ID, insts[5].ID}
	if err := p.TerminateInstances(ids); err != nil {
		t.Fatalf("TerminateInstances: %v", err)
	}
	if p.LiveInstances() != 8 {
		t.Fatalf("LiveInstances = %d, want 8", p.LiveInstances())
	}
	if p.FreeSlots() != before-8 {
		t.Fatalf("free slots %d after terminate, want %d", p.FreeSlots(), before-8)
	}
	if err := p.TerminateInstances([]string{"i-nonexistent"}); err == nil {
		t.Fatal("unknown ID accepted")
	}
	// Double-terminate is an error.
	if err := p.TerminateInstances([]string{insts[0].ID}); err == nil {
		t.Fatal("double termination accepted")
	}
}

func TestMeanRTTMatrixMatchesTopology(t *testing.T) {
	p := newProvider(t, 0.4, 11)
	insts, err := p.RunInstances(20)
	if err != nil {
		t.Fatal(err)
	}
	m := MeanRTTMatrix(p.Datacenter(), insts)
	if err := m.Validate(); err != nil {
		t.Fatalf("matrix invalid: %v", err)
	}
	for i := 0; i < 20; i++ {
		for j := 0; j < 20; j++ {
			if i == j {
				continue
			}
			want := p.Datacenter().MeanRTT(insts[i].Host, insts[j].Host)
			if m.At(i, j) != want {
				t.Fatalf("matrix (%d,%d) = %g, want %g", i, j, m.At(i, j), want)
			}
		}
	}
}

func TestLatencyFuncPositive(t *testing.T) {
	p := newProvider(t, 0.4, 13)
	insts, err := p.RunInstances(5)
	if err != nil {
		t.Fatal(err)
	}
	lf := LatencyFunc(p.Datacenter(), insts, 0)
	r := randSource()
	for k := 0; k < 100; k++ {
		v := lf(k%5, (k+1)%5, float64(k), r)
		if v <= 0 {
			t.Fatalf("latency sample %g not positive", v)
		}
	}
}

func TestDeterministicAllocation(t *testing.T) {
	a := newProvider(t, 0.5, 21)
	b := newProvider(t, 0.5, 21)
	ia, err := a.RunInstances(30)
	if err != nil {
		t.Fatal(err)
	}
	ib, err := b.RunInstances(30)
	if err != nil {
		t.Fatal(err)
	}
	for i := range ia {
		if ia[i].Host != ib[i].Host || ia[i].ID != ib[i].ID {
			t.Fatalf("allocation not deterministic at %d: %+v vs %+v", i, ia[i], ib[i])
		}
	}
}

func TestSortByID(t *testing.T) {
	insts := []Instance{{ID: "i-2"}, {ID: "i-0"}, {ID: "i-1"}}
	sorted := SortByID(insts)
	if sorted[0].ID != "i-0" || sorted[2].ID != "i-2" {
		t.Fatalf("sorted = %v", sorted)
	}
	if insts[0].ID != "i-2" {
		t.Fatal("SortByID mutated input")
	}
}

// randSource returns a deterministic rand for latency sampling in tests.
func randSource() *rand.Rand { return rand.New(rand.NewSource(99)) }
