package cluster

import (
	"slices"
	"testing"

	"cloudia/internal/par"
)

// Every parallelized artifact in this package promises bit-equality with the
// single-worker build. These tests run the same inputs at several worker
// counts and require identical bytes out — rounded matrices, re-rounded pair
// lists, and patched epoch artifacts alike.
func TestRoundingBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	const n, k = 30, 5
	m := randMatrix(n, 17)

	par.SetWorkers(1)
	wantM, wantPairs, wantRes, err := RoundCostMatrixPairsResult(m, k)
	if err != nil {
		t.Fatal(err)
	}
	wantPlain, err := RoundCostMatrix(m, k)
	if err != nil {
		t.Fatal(err)
	}

	for _, w := range []int{2, 3, 8} {
		par.SetWorkers(w)
		gotM, gotPairs, gotRes, err := RoundCostMatrixPairsResult(m, k)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(gotPairs, wantPairs) {
			t.Fatalf("workers=%d: rounded pair list diverges from sequential", w)
		}
		if !slices.Equal(gotRes.Centers, wantRes.Centers) {
			t.Fatalf("workers=%d: k-means centers diverge from sequential", w)
		}
		gotPlain, err := RoundCostMatrix(m, k)
		if err != nil {
			t.Fatal(err)
		}
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if gotM.At(i, j) != wantM.At(i, j) || gotPlain.At(i, j) != wantPlain.At(i, j) {
					t.Fatalf("workers=%d: rounded matrix diverges from sequential at (%d,%d)", w, i, j)
				}
			}
		}
	}
}

func TestPatchBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	const n, k = 24, 4
	m0 := randMatrix(n, 5)
	rounded0, pairs0, res, err := RoundCostMatrixPairsResult(m0, k)
	if err != nil {
		t.Fatal(err)
	}
	// Unsorted with a duplicate: normalization must make worker chunking
	// independent of the caller's row order.
	changed := []int{9, 2, 17, 2, 0}
	m1 := perturbRows(m0, changed, 23)

	par.SetWorkers(1)
	wantM := PatchRoundedRows(m1, rounded0, res, changed)
	wantPairs := PatchSortedPairs(m1, pairs0, changed)

	for _, w := range []int{2, 3, 8} {
		par.SetWorkers(w)
		gotM := PatchRoundedRows(m1, rounded0, res, changed)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if gotM.At(i, j) != wantM.At(i, j) {
					t.Fatalf("workers=%d: PatchRoundedRows diverges at (%d,%d)", w, i, j)
				}
			}
		}
		if got := PatchSortedPairs(m1, pairs0, changed); !slices.Equal(got, wantPairs) {
			t.Fatalf("workers=%d: PatchSortedPairs diverges from sequential", w)
		}
	}
}

// KMeans1D drives the dominant share of cold Prep time; its forward/backward
// meet split must not change the fitted centers at any worker count.
func TestKMeansBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	vals := randMatrix(90, 31).OffDiagonal() // > parallelMin values

	par.SetWorkers(1)
	want, err := KMeans1D(vals, 20)
	if err != nil {
		t.Fatal(err)
	}
	for _, w := range []int{2, 8} {
		par.SetWorkers(w)
		got, err := KMeans1D(vals, 20)
		if err != nil {
			t.Fatal(err)
		}
		if !slices.Equal(got.Centers, want.Centers) {
			t.Fatalf("workers=%d: k-means centers diverge from sequential", w)
		}
	}
}
