// Package cluster implements optimal one-dimensional k-means clustering via
// dynamic programming, used by ClouDiA to round link costs to cost clusters
// before solving (Sect. 6.3.1). Fewer distinct cost values means fewer CP
// threshold iterations, trading objective precision for search speed
// (Fig. 6). The paper solves the same 1-D problem with k-means over distinct
// values; our DP is exact for the sum-of-squares objective.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
	"sync"

	"cloudia/internal/par"
)

// Result describes a clustering of one-dimensional values.
type Result struct {
	// Centers holds the cluster means in increasing order.
	Centers []float64
	// Boundaries[i] is the index (into the sorted distinct values) of the
	// first value belonging to cluster i.
	Boundaries []int
	// Cost is the total within-cluster sum of squared deviations.
	Cost float64
}

// KMeans1D clusters xs into at most k clusters, minimizing the within-cluster
// sum of squared deviations exactly via DP over the sorted distinct values.
// Duplicate values are weighted by multiplicity. If k exceeds the number of
// distinct values, each distinct value becomes its own cluster.
//
// Value storage is two rolling layers everywhere — O(n), never O(kn) — and
// the implementation picks its layer-fill engine and boundary recovery by
// instance size:
//
//   - Above choiceCap entries (e.g. the ~10^6 distinct values of a
//     1000-instance cost matrix, where a k-layer choice matrix would dwarf
//     the cost matrix itself), layers are filled by SMAWK row-minima in
//     O(n) per layer — the interval sum-of-squares cost satisfies the
//     quadrangle inequality, so each layer's cost matrix is totally
//     monotone — for O(kn) total time, and boundaries are recovered in
//     O(n) memory by Hirschberg-style recursion: split the cluster count
//     in half, meet a forward prefix DP and a backward suffix DP in the
//     middle, and recurse on the two independent sub-ranges (the geometric
//     recursion keeps total time O(kn), down from the previous
//     divide-and-conquer O(kn log n) and the textbook O(kn^2)). On
//     machines with spare cores the meet passes of large splits run
//     concurrently; the result does not depend on the schedule.
//
//   - Below the cap, a single sweep stores each layer's argmin row (a
//     bounded <=16 MB allocation) and backtracks directly, filling layers
//     by monotone divide-and-conquer narrowed with the Knuth-Yao bound
//     (the leftmost optimal last-cluster start never moves left as the
//     cluster budget grows, so the previous layer's argmin row bounds this
//     layer's search from below). At these sizes its branch-predictable
//     linear scans beat SMAWK's pointer-chasing reduce stage on real
//     hardware, while SMAWK's O(kn) wins asymptotically above the cap.
//
// Both engines produce optimal clusterings and identical costs; the
// property tests pin each against the textbook DP.
func KMeans1D(xs []float64, k int) (*Result, error) {
	if len(xs) == 0 {
		return nil, errors.New("cluster: no values")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: invalid k=%d", k)
	}
	vals, weights := distinctWeighted(xs)
	n := len(vals)
	if k > n {
		k = n
	}

	ps := newPrefixSums(vals, weights)
	boundaries := make([]int, k)
	var cost float64
	switch {
	case k == n:
		// Each distinct value is its own cluster.
		for c := range boundaries {
			boundaries[c] = c
		}
	case k == 1:
		cost = ps.cost(0, n-1)
	default:
		h := newHirschberg(ps, n)
		if (k-1)*n <= choiceCap {
			cost = h.singlePass(n, k, boundaries)
		} else {
			cost = h.split(0, n-1, k, boundaries)
		}
	}

	centers := make([]float64, k)
	for c := 0; c < k; c++ {
		lo := boundaries[c]
		hi := n - 1
		if c+1 < k {
			hi = boundaries[c+1] - 1
		}
		centers[c] = ps.mean(lo, hi)
	}
	return &Result{Centers: centers, Boundaries: boundaries, Cost: cost}, nil
}

// prefixSums provides O(1) weighted interval statistics over the sorted
// distinct values. When every multiplicity is 1 (the common case for
// measured cost matrices, where all off-diagonal values are distinct) the
// interval weight is the interval length and a reciprocal table replaces
// the division in the hot interval-cost evaluation.
type prefixSums struct {
	pw    []float64 // prefix weights
	pwv   []float64 // prefix weight*value
	pwv2  []float64 // prefix weight*value^2
	recip []float64 // recip[m] = 1/m when all weights are 1, else nil
}

func newPrefixSums(vals []float64, weights []int) *prefixSums {
	n := len(vals)
	ps := &prefixSums{
		pw:   make([]float64, n+1),
		pwv:  make([]float64, n+1),
		pwv2: make([]float64, n+1),
	}
	unit := true
	for i := 0; i < n; i++ {
		w := float64(weights[i])
		unit = unit && weights[i] == 1
		ps.pw[i+1] = ps.pw[i] + w
		ps.pwv[i+1] = ps.pwv[i] + w*vals[i]
		ps.pwv2[i+1] = ps.pwv2[i] + w*vals[i]*vals[i]
	}
	if unit {
		ps.recip = make([]float64, n+1)
		for m := 1; m <= n; m++ {
			ps.recip[m] = 1 / float64(m)
		}
	}
	return ps
}

// cost is the within-cluster sum of squared deviations of values [i, j]
// (inclusive): sum w*v^2 - (sum w*v)^2 / sum w.
func (ps *prefixSums) cost(i, j int) float64 {
	s := ps.pwv[j+1] - ps.pwv[i]
	s2 := ps.pwv2[j+1] - ps.pwv2[i]
	var c float64
	if ps.recip != nil {
		c = s2 - s*s*ps.recip[j-i+1]
	} else {
		c = s2 - s*s/(ps.pw[j+1]-ps.pw[i])
	}
	if c < 0 { // numeric noise
		c = 0
	}
	return c
}

// mean is the weighted mean of values [i, j] (inclusive).
func (ps *prefixSums) mean(i, j int) float64 {
	return (ps.pwv[j+1] - ps.pwv[i]) / (ps.pw[j+1] - ps.pw[i])
}

// dpScratch is one independent set of rolling-DP and SMAWK buffers, all of
// size O(n); the forward and backward meet passes of a split each own one
// so they can run concurrently.
type dpScratch struct {
	prev, curr []float64 // rolling DP layers (only two live at a time)
	argmin     []int32   // SMAWK row-minima output, indexed by row
	minval     []float64 // SMAWK row-minima values, indexed by row
	colArena   []int32   // bump arena for the recursion's reduced columns
	valArena   []float64 // cached entry value per reduce-stack slot
	// Mirrored prefix sums of the backward pass, allocated on first use
	// (see hirschberg.backward); the single-sweep path never needs them.
	mpwv, mpwv2, mpw []float64
}

func newDPScratch(n int) *dpScratch {
	// The SMAWK buffers (argmin, minval, colArena, valArena) are allocated
	// lazily by layerMinima; the single-sweep path never touches them.
	return &dpScratch{
		prev: make([]float64, n),
		curr: make([]float64, n),
	}
}

// hirschberg carries the reusable O(n) scratch of the boundary recovery.
// Nothing here grows with k: the DP keeps only two rolling layers per pass
// plus the two materialized meet layers, instead of the k-layer cost and
// choice matrices of the previous implementation.
type hirschberg struct {
	ps       *prefixSums
	fwd, bwd []float64  // meet layers F_h and B_{k-h}, allocated on first split
	sf, sb   *dpScratch // forward- and backward-pass scratch (sb lazy)
}

// parallelMin is the segment length above which a split's forward and
// backward passes run on two goroutines. Below it the goroutine handoff
// costs more than the pass.
const parallelMin = 4096

// choiceCap bounds the choice-matrix entries of the single-sweep path:
// 4M int32 entries (16 MB). Below it, storing every layer's argmin row and
// backtracking directly skips the Hirschberg meet recursion's second set of
// DP passes — 2x fewer entry evaluations for an O(1)-bounded allocation.
// Beyond it (e.g. the ~1M distinct values of a 1000-instance cost matrix,
// where k*n int32 would be 80 MB) the meet recursion keeps memory at O(n).
const choiceCap = 1 << 22

func newHirschberg(ps *prefixSums, n int) *hirschberg {
	return &hirschberg{ps: ps, sf: newDPScratch(n)}
}

// singlePass fills the DP with one forward sweep over all k layers,
// storing each layer's argmin row for direct backtracking. The choice
// matrix costs (k-1)*n int32 — only taken when that is at most choiceCap —
// and the rolling value storage stays two layers as everywhere else.
// Layers are filled by dcFill, with each stored argmin row serving as the
// next layer's Knuth-Yao lower bounds. The final layer is a plain scan:
// only row n-1's minimum and argmin are ever consulted.
func (h *hirschberg) singlePass(n, k int, out []int) float64 {
	sc := h.sf
	le := layerEval{pwv: h.ps.pwv, pwv2: h.ps.pwv2, pw: h.ps.pw, recip: h.ps.recip}
	prev, curr := sc.prev[:n], sc.curr[:n]
	for j := 0; j < n; j++ {
		prev[j] = le.interval(0, j)
	}
	choice := make([]int32, (k-1)*n)
	// Layer 1's "argmin" is 0 for every row (the single cluster starts at
	// the first value), so a zero row serves as layer 2's Knuth-Yao bound.
	prevArg := make([]int32, n)
	// comb folds the rolling layer and the square prefix sums into one
	// array — comb[i] = prev[i-1] - pwv2[i] — so the hot scan loads two
	// streams instead of three and spends one fewer fp op per entry.
	comb := make([]float64, n)
	var stack [4 * 64]int32
	for c := 2; c < k; c++ {
		for i := c - 1; i < n; i++ {
			comb[i] = prev[i-1] - h.ps.pwv2[i]
		}
		curArg := choice[(c-2)*n : (c-1)*n]
		for j := 0; j < c-1; j++ {
			curr[j] = math.Inf(1)
		}
		dcLayer(&le, comb, prevArg, curArg, curr, int32(c-1), int32(n-1), stack[:])
		prevArg = curArg
		prev, curr = curr, prev
	}
	// Final layer, restricted to row n-1 (with its Knuth-Yao lower bound).
	lastRow := choice[(k-2)*n:]
	j := n - 1
	{
		lo := k - 1
		if k > 2 {
			if pa := int(choice[(k-3)*n+j]); pa > lo {
				lo = pa
			}
		}
		best, bi := math.Inf(1), int32(lo)
		for i := lo; i <= j; i++ {
			if v := le.interval(i, j) + prev[i-1]; v < best {
				best, bi = v, int32(i)
			}
		}
		lastRow[j] = bi
	}
	// Backtrack: out[c-1] is the first value index of cluster c. Stale
	// argmin entries below each layer's row range are never visited, since
	// boundaries strictly descend.
	cost := 0.0
	for c := k; c >= 2; c-- {
		i := int(choice[(c-2)*n+j])
		out[c-1] = i
		cost += h.ps.cost(i, j)
		j = i - 1
	}
	out[0] = 0
	return cost + h.ps.cost(0, j)
}

// dcLayer computes one DP layer's row minima and argmins over rows
// [start, end] by monotone divide-and-conquer: the layer matrix's
// quadrangle inequality makes the leftmost argmin nondecreasing in the
// row, so solving the middle row exactly narrows both halves ([ilo, bi]
// and [bi, ihi]). Each row's scan is additionally clipped from below by
// the previous layer's argmin (prevArg, the Knuth-Yao bound: granting one
// more cluster never moves the leftmost optimal last-cluster start left),
// which both halves' bounds preserve — parent argmins on either side are
// themselves >= their rows' Knuth-Yao bounds, so every scan range stays
// nonempty. Worst case O(n log n) evaluations per layer; with the
// Knuth-Yao clip, measured counts on measured-latency-like inputs are a
// small multiple of n. Tie-breaks take the leftmost minimizer, matching
// the plain DP. The traversal is iterative — it walks left spines and
// stacks right halves as (jlo, jhi, ilo, ihi) frames — because at ~n nodes
// per layer, recursive call overhead would rival the scans themselves; the
// stack needs one frame per spine level, so 64 frames cover any int32 n.
func dcLayer(le *layerEval, comb []float64, prevArg, curArg []int32, curr []float64, start, end int32, stack []int32) {
	pwv, pwv2, pw, recip := le.pwv, le.pwv2, le.pw, le.recip
	unit := recip != nil
	stack[0], stack[1], stack[2], stack[3] = start, end, start, end
	sp := 4
	for sp > 0 {
		sp -= 4
		jlo, jhi := int(stack[sp]), int(stack[sp+1])
		ilo, ihi := int(stack[sp+2]), int(stack[sp+3])
		for jlo <= jhi {
			j := (jlo + jhi) / 2
			lo, hi := ilo, ihi
			if pa := int(prevArg[j]); pa > lo {
				lo = pa
			}
			if hi > j {
				hi = j
			}
			pj, pj2 := pwv[j+1], pwv2[j+1]
			best := math.Inf(1)
			bi := lo
			if unit {
				// Exact-length window subslices let the prove pass drop
				// every bounds check from the scan.
				w := hi - lo + 1
				qv := pwv[lo : hi+1]
				cb := comb[lo : hi+1]
				rc := recip[j-hi+1 : j-lo+2]
				// Two accumulators split the serial min-update chain so the
				// independent entry computations pipeline.
				best1, bi1 := math.Inf(1), 0
				t := 0
				for ; t+1 < w; t += 2 { // inlined layer entry, see layerEval.interval
					s0 := pj - qv[t]
					v0 := pj2 - s0*s0*rc[w-1-t] + cb[t]
					s1 := pj - qv[t+1]
					v1 := pj2 - s1*s1*rc[w-2-t] + cb[t+1]
					if v0 < best {
						best, bi = v0, lo+t
					}
					if v1 < best1 {
						best1, bi1 = v1, lo+t+1
					}
				}
				if t < w {
					s := pj - qv[t]
					if v := pj2 - s*s*rc[w-1-t] + cb[t]; v < best {
						best, bi = v, lo+t
					}
				}
				// Merge, keeping the leftmost on exact ties.
				if best1 < best || (best1 == best && bi1 < bi) {
					best, bi = best1, bi1
				}
			} else {
				pjw := pw[j+1]
				for i := lo; i <= hi; i++ { // inlined layer entry
					s := pj - pwv[i]
					v := pj2 - s*s/(pjw-pw[i]) + comb[i]
					if v < best {
						best, bi = v, i
					}
				}
			}
			curr[j] = best
			curArg[j] = int32(bi)
			if j < jhi {
				stack[sp], stack[sp+1], stack[sp+2], stack[sp+3] = int32(j+1), int32(jhi), int32(bi), int32(ihi)
				sp += 4
			}
			jhi = j - 1
			ihi = bi
		}
	}
}

// split optimally clusters vals[lo..hi] into k clusters, writing the k
// segment start indices into out (out[0] == lo) and returning the total
// cost. Requires 1 <= k <= hi-lo+1.
func (h *hirschberg) split(lo, hi, k int, out []int) float64 {
	out[0] = lo
	if k == 1 {
		return h.ps.cost(lo, hi)
	}
	if k == hi-lo+1 {
		for c := range out {
			out[c] = lo + c
		}
		return 0
	}
	if h.fwd == nil {
		n := len(h.sf.prev)
		h.fwd = make([]float64, n)
		h.bwd = make([]float64, n)
	}
	half := k / 2
	var f, b []float64
	if hi-lo+1 >= parallelMin && par.Workers() > 1 {
		// The two meet passes touch disjoint scratch and disjoint outputs;
		// racing them halves the wall time of the dominant top split on
		// multi-core machines. par.Workers() == 1 keeps the solve strictly
		// single-goroutine, matching the rest of the cold path's fallback.
		if h.sb == nil {
			h.sb = newDPScratch(len(h.sf.prev))
		}
		//cloudia:nondet-ok the two meet passes touch disjoint scratch and outputs; the join is a plain barrier
		var wg sync.WaitGroup
		wg.Add(1)
		//cloudia:nondet-ok backward pass writes only its own scratch (h.sb) and b
		go func() {
			defer wg.Done()
			b = h.backward(lo, hi, k-half, h.sb)
		}()
		f = h.forward(lo, hi, half, h.sf)
		wg.Wait()
	} else {
		f = h.forward(lo, hi, half, h.sf)
		b = h.backward(lo, hi, k-half, h.sf)
	}
	// Meet in the middle: cluster half+1 starts at the s minimizing
	// F_half[s-1] + B_{k-half}[s]; ties take the smallest s, matching the
	// plain DP's smallest-minimizer choice.
	bestS, bestCost := -1, math.Inf(1)
	for s := lo + half; s <= hi-(k-half)+1; s++ {
		if c := f[s-1-lo] + b[s-lo]; c < bestCost {
			bestCost, bestS = c, s
		}
	}
	// Only bestS survives the recursion; the scratch layers are reused.
	left := h.split(lo, bestS-1, half, out[:half])
	right := h.split(bestS, hi, k-half, out[half:])
	return left + right
}

// forward computes F_layers over [lo..hi]: the returned slice r (backed by
// h.fwd) holds at r[j-lo] the optimal cost of clustering vals[lo..j] into
// `layers` clusters (+Inf where fewer than `layers` values are available).
func (h *hirschberg) forward(lo, hi, layers int, sc *dpScratch) []float64 {
	m := hi - lo + 1
	prev, curr := sc.prev[:m], sc.curr[:m]
	le := layerEval{
		pwv:   h.ps.pwv[lo:],
		pwv2:  h.ps.pwv2[lo:],
		pw:    h.ps.pw[lo:],
		recip: h.ps.recip,
	}
	for j := 0; j < m; j++ {
		prev[j] = le.interval(0, j)
	}
	for c := 2; c <= layers; c++ {
		le.prev = prev
		h.layerMinima(&le, c, m, curr, sc)
		prev, curr = curr, prev
	}
	copy(h.fwd[:m], prev)
	return h.fwd[:m]
}

// backward computes B_layers over [lo..hi]: the returned slice r (backed by
// h.bwd) holds at r[j-lo] the optimal cost of clustering vals[j..hi] into
// `layers` clusters (+Inf where fewer than `layers` values remain). Suffix
// clustering of an ascending array is prefix clustering of its reversal,
// and the interval cost's quadrangle inequality is symmetric under
// reversal, so the pass mirrors the prefix sums once (mpwv[x] - mpwv[y] is
// the value sum of the window's last x..y positions) and then runs through
// exactly the forward machinery.
func (h *hirschberg) backward(lo, hi, layers int, sc *dpScratch) []float64 {
	m := hi - lo + 1
	if sc.mpwv == nil {
		n := len(sc.prev)
		sc.mpwv = make([]float64, n+1)
		sc.mpwv2 = make([]float64, n+1)
		sc.mpw = make([]float64, n+1)
	}
	mpwv, mpwv2, mpw := sc.mpwv[:m+1], sc.mpwv2[:m+1], sc.mpw[:m+1]
	top := hi + 1
	for x := 0; x <= m; x++ {
		mpwv[x] = h.ps.pwv[top] - h.ps.pwv[top-x]
		mpwv2[x] = h.ps.pwv2[top] - h.ps.pwv2[top-x]
		mpw[x] = h.ps.pw[top] - h.ps.pw[top-x]
	}
	le := layerEval{pwv: mpwv, pwv2: mpwv2, pw: mpw, recip: h.ps.recip}
	prev, curr := sc.prev[:m], sc.curr[:m]
	for r := 0; r < m; r++ {
		prev[r] = le.interval(0, r)
	}
	for c := 2; c <= layers; c++ {
		le.prev = prev
		h.layerMinima(&le, c, m, curr, sc)
		prev, curr = curr, prev
	}
	out := h.bwd[:m]
	for r := 0; r < m; r++ {
		out[m-1-r] = prev[r]
	}
	return out
}

// layerMinima fills curr[j] for j in [c-1, m-1] with the layer-c row minima
// via SMAWK; entries below c-1 (too few values for c clusters) become +Inf.
// Rows and columns are both the index range [c-1, m-1]; the minima values
// land in sc.minval, so no entry is ever re-evaluated.
func (h *hirschberg) layerMinima(le *layerEval, c, m int, curr []float64, sc *dpScratch) {
	if sc.argmin == nil {
		n := len(sc.prev)
		sc.argmin = make([]int32, n)
		sc.minval = make([]float64, n)
		sc.colArena = make([]int32, n)
		sc.valArena = make([]float64, n)
	}
	start := int32(c - 1)
	cnt := int32(m - c + 1)
	smawkRun(le, sc, start, 1, cnt, nil, start, cnt, 0)
	for j := 0; j < c-1; j++ {
		curr[j] = math.Inf(1)
	}
	copy(curr[c-1:m], sc.minval[c-1:m])
}

// layerEval holds the window-relative arrays of one DP pass. Entry (j, i)
// of the implicit layer matrix is prev[i-1] + the sum-of-squares cost of
// window positions [i, j]; columns beyond the row (i > j, last cluster
// empty) are +Inf, which preserves total monotonicity. The hot SMAWK loops
// hand-inline this evaluation against hoisted locals — the method form
// exceeds the compiler's inlining budget, and a call per matrix entry
// roughly doubles the cost of the whole clustering. The hot path also skips
// the cosmetic negative-noise clamp: a few ulps below zero cannot change
// which entry is minimal beyond fp noise, and the final reported cost is
// recomputed with the clamped form.
type layerEval struct {
	pwv, pwv2, pw []float64 // window prefix sums (index 0 = window start)
	recip         []float64 // recip[m] = 1/m for unit weights, else nil
	prev          []float64 // previous DP layer, window-relative
}

// interval is the within-cluster cost of window positions [i, j], the
// reference form of the arithmetic inlined in smawkRun.
func (le *layerEval) interval(i, j int) float64 {
	s := le.pwv[j+1] - le.pwv[i]
	s2 := le.pwv2[j+1] - le.pwv2[i]
	var c float64
	if le.recip != nil {
		c = s2 - s*s*le.recip[j-i+1]
	} else {
		c = s2 - s*s/(le.pw[j+1]-le.pw[i])
	}
	if c < 0 { // numeric noise
		c = 0
	}
	return c
}

// smawkRun computes the row minima of the totally monotone layer matrix,
// writing the minimizing column of each row j into sc.argmin[j] and its
// value into sc.minval[j]. Rows are the implicit arithmetic sequence
// rowStart + rowStride*x for x in [0, rowCount): the odd-row recursion only
// ever produces such sequences, so row subsets cost neither memory nor
// loads. Columns are cols[:colCount], or the identity range
// [colStart, colStart+colCount) while cols is nil (every call until the
// first REDUCE materializes a subset into sc.colArena at cursor colOff).
// Ties resolve to the leftmost column throughout, matching the plain DP's
// smallest-minimizer tie-break. O(rowCount + colCount) entry evaluations,
// zero allocations.
func smawkRun(le *layerEval, sc *dpScratch, rowStart, rowStride, rowCount int32, cols []int32, colStart, colCount int32, colOff int) {
	pwv, pwv2, pw, recip, prev := le.pwv, le.pwv2, le.pw, le.recip, le.prev
	unit := recip != nil
	inf := math.Inf(1)
	argmin, minval := sc.argmin, sc.minval
	if colCount > rowCount {
		// REDUCE: prune columns that cannot host any surviving row's
		// minimum, keeping at most rowCount candidates. A push only records
		// NaN in valArena; the slot's entry value is computed lazily on its
		// first challenge, so columns that are pushed and never challenged
		// (the survivors) cost one evaluation, not two.
		kept := sc.colArena[colOff : colOff : colOff+int(rowCount)]
		kvals := sc.valArena[colOff : colOff+int(rowCount)]
		nan := math.NaN()
		for t := int32(0); t < colCount; t++ {
			c := colStart + t
			if cols != nil {
				c = cols[t]
			}
			// Column-invariant terms of the entry evaluation.
			pc, pc2, pv := pwv[c], pwv2[c], prev[c-1]
			var pcw float64
			if !unit {
				pcw = pw[c]
			}
			for {
				d := len(kept)
				if d == 0 {
					break
				}
				j := rowStart + rowStride*int32(d-1)
				v := inf
				if c <= j { // inlined layer entry, see layerEval.interval
					s := pwv[j+1] - pc
					s2 := pwv2[j+1] - pc2
					if unit {
						v = s2 - s*s*recip[j-c+1] + pv
					} else {
						v = s2 - s*s/(pw[j+1]-pcw) + pv
					}
				}
				kv := kvals[d-1]
				if kv != kv { // NaN: lazily price this stack slot
					b := kept[d-1]
					kv = inf
					if b <= j { // inlined layer entry
						s := pwv[j+1] - pwv[b]
						s2 := pwv2[j+1] - pwv2[b]
						if unit {
							kv = s2 - s*s*recip[j-b+1] + prev[b-1]
						} else {
							kv = s2 - s*s/(pw[j+1]-pw[b]) + prev[b-1]
						}
					}
					kvals[d-1] = kv
				}
				if kv > v {
					kept = kept[:d-1]
					continue
				}
				break
			}
			if d := len(kept); d < int(rowCount) {
				kept = append(kept, c)
				kvals[d] = nan
			}
		}
		cols = kept
		colCount = int32(len(kept))
		colOff += len(kept)
	}
	if rowCount == 1 {
		j := rowStart
		var best int32
		bv := inf
		for t := int32(0); t < colCount; t++ {
			c := colStart + t
			if cols != nil {
				c = cols[t]
			}
			v := inf
			if c <= j {
				v = le.interval(int(c), int(j)) + prev[c-1]
			}
			if v < bv {
				bv, best = v, c
			}
		}
		argmin[j], minval[j] = best, bv
		return
	}
	// INTERPOLATE: solve the odd rows recursively, then fill each even row
	// by scanning only the columns between its odd neighbours' minima.
	smawkRun(le, sc, rowStart+rowStride, rowStride*2, rowCount/2, cols, colStart, colCount, colOff)
	ci := int32(0)
	for x := int32(0); x < rowCount; x += 2 {
		j := rowStart + rowStride*x
		var stop int32
		switch {
		case x+1 < rowCount:
			stop = argmin[rowStart+rowStride*(x+1)]
		case cols == nil:
			stop = colStart + colCount - 1
		default:
			stop = cols[colCount-1]
		}
		var best int32
		bv := inf
		if cols == nil {
			// Identity columns: the window [i0, stop] clips to i <= j (the
			// +Inf region beyond the row can never host a minimum, and
			// advancing the shared cursor over it is free), leaving a pure
			// linear scan over exact-length subslices — no +Inf guard and
			// no bounds check survives in the loop.
			i0 := colStart + ci
			hi := stop
			if hi > j {
				hi = j
			}
			w := int(hi - i0 + 1)
			qv := pwv[i0 : int(i0)+w]
			qv2 := pwv2[i0 : int(i0)+w]
			pvp := prev[i0-1 : int(i0)-1+w]
			pj, pj2 := pwv[j+1], pwv2[j+1]
			if unit {
				rc := recip[j-hi+1 : int(j-i0+1)+1]
				for t := 0; t < w; t++ {
					s := pj - qv[t]
					v := pj2 - qv2[t] - s*s*rc[w-1-t] + pvp[t]
					if v < bv {
						bv, best = v, i0+int32(t)
					}
				}
			} else {
				pjw := pw[j+1]
				qw := pw[i0 : int(i0)+w]
				for t := 0; t < w; t++ {
					s := pj - qv[t]
					v := pj2 - qv2[t] - s*s/(pjw-qw[t]) + pvp[t]
					if v < bv {
						bv, best = v, i0+int32(t)
					}
				}
			}
			ci = stop - colStart
		} else {
			pj, pj2 := pwv[j+1], pwv2[j+1]
			var pjw float64
			if !unit {
				pjw = pw[j+1]
			}
			for {
				i := cols[ci]
				v := inf
				if i <= j { // inlined layer entry
					s := pj - pwv[i]
					s2 := pj2 - pwv2[i]
					if unit {
						v = s2 - s*s*recip[j-i+1] + prev[i-1]
					} else {
						v = s2 - s*s/(pjw-pw[i]) + prev[i-1]
					}
				}
				if v < bv {
					bv, best = v, i
				}
				if i == stop {
					break
				}
				ci++
			}
		}
		argmin[j], minval[j] = best, bv
	}
}

// Assign returns the center of the cluster that value x falls into: the
// cluster whose mean is nearest. Centers must be sorted ascending, as
// produced by KMeans1D.
func (r *Result) Assign(x float64) float64 {
	cs := r.Centers
	// Binary search for the insertion point, then compare neighbours.
	i := sort.SearchFloat64s(cs, x)
	if i == 0 {
		return cs[0]
	}
	if i == len(cs) {
		return cs[len(cs)-1]
	}
	if x-cs[i-1] <= cs[i]-x {
		return cs[i-1]
	}
	return cs[i]
}

// distinctWeighted returns the sorted distinct values of xs and their
// multiplicities.
func distinctWeighted(xs []float64) ([]float64, []int) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	vals := make([]float64, 0, len(sorted))
	weights := make([]int, 0, len(sorted))
	for _, v := range sorted {
		if len(vals) > 0 && vals[len(vals)-1] == v {
			weights[len(weights)-1]++
			continue
		}
		vals = append(vals, v)
		weights = append(weights, 1)
	}
	return vals, weights
}

// RoundValues maps every value in xs to its cluster mean under an optimal
// k-clustering and returns the rounded copy.
func RoundValues(xs []float64, k int) ([]float64, error) {
	r, err := KMeans1D(xs, k)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = r.Assign(x)
	}
	return out, nil
}
