// Package cluster implements optimal one-dimensional k-means clustering via
// dynamic programming, used by ClouDiA to round link costs to cost clusters
// before solving (Sect. 6.3.1). Fewer distinct cost values means fewer CP
// threshold iterations, trading objective precision for search speed
// (Fig. 6). The paper solves the same 1-D problem with k-means over distinct
// values; our DP is exact for the sum-of-squares objective.
package cluster

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Result describes a clustering of one-dimensional values.
type Result struct {
	// Centers holds the cluster means in increasing order.
	Centers []float64
	// Boundaries[i] is the index (into the sorted distinct values) of the
	// first value belonging to cluster i.
	Boundaries []int
	// Cost is the total within-cluster sum of squared deviations.
	Cost float64
}

// KMeans1D clusters xs into at most k clusters, minimizing the within-cluster
// sum of squared deviations exactly via DP over the sorted distinct values.
// Duplicate values are weighted by multiplicity. If k exceeds the number of
// distinct values, each distinct value becomes its own cluster.
func KMeans1D(xs []float64, k int) (*Result, error) {
	if len(xs) == 0 {
		return nil, errors.New("cluster: no values")
	}
	if k <= 0 {
		return nil, fmt.Errorf("cluster: invalid k=%d", k)
	}
	vals, weights := distinctWeighted(xs)
	n := len(vals)
	if k > n {
		k = n
	}

	// Prefix sums for O(1) interval cost: cost(i..j) = sum w*v^2 - (sum w*v)^2 / sum w.
	pw := make([]float64, n+1)  // prefix weights
	pwv := make([]float64, n+1) // prefix weight*value
	pwv2 := make([]float64, n+1)
	for i := 0; i < n; i++ {
		w := float64(weights[i])
		pw[i+1] = pw[i] + w
		pwv[i+1] = pwv[i] + w*vals[i]
		pwv2[i+1] = pwv2[i] + w*vals[i]*vals[i]
	}
	intervalCost := func(i, j int) float64 { // values [i, j] inclusive
		w := pw[j+1] - pw[i]
		s := pwv[j+1] - pwv[i]
		s2 := pwv2[j+1] - pwv2[i]
		c := s2 - s*s/w
		if c < 0 { // numeric noise
			c = 0
		}
		return c
	}

	// dp[c][j] = min cost of clustering values [0..j] into c+1 clusters.
	dp := make([][]float64, k)
	choice := make([][]int, k)
	for c := range dp {
		dp[c] = make([]float64, n)
		choice[c] = make([]int, n)
	}
	for j := 0; j < n; j++ {
		dp[0][j] = intervalCost(0, j)
	}
	// Each layer is filled by divide-and-conquer DP optimization: the
	// interval sum-of-squares cost is Monge, so the smallest optimal split
	// index for the last cluster is non-decreasing in j. Solving the middle
	// column exactly and recursing with the narrowed split range takes
	// O(n log n) per layer instead of the textbook O(n^2) — the difference
	// between ~10s and ~10ms of preprocessing for a 150-instance cost
	// matrix, where every off-diagonal value is distinct. Scanning splits in
	// ascending order with a strict improvement test picks the smallest
	// minimizer, matching the plain DP's choices exactly.
	var fill func(c, jlo, jhi, ilo, ihi int)
	fill = func(c, jlo, jhi, ilo, ihi int) {
		if jlo > jhi {
			return
		}
		j := (jlo + jhi) / 2
		// Last cluster covers [i, j]; need i >= c so earlier clusters are
		// non-empty.
		lo, hi := ilo, ihi
		if lo < c {
			lo = c
		}
		if hi > j {
			hi = j
		}
		if hi < lo { // j < c: not enough values for c+1 clusters
			dp[c][j] = math.Inf(1)
			choice[c][j] = 0
			fill(c, jlo, j-1, ilo, ihi)
			fill(c, j+1, jhi, ilo, ihi)
			return
		}
		best := math.Inf(1)
		bestI := 0
		for i := lo; i <= hi; i++ {
			cost := dp[c-1][i-1] + intervalCost(i, j)
			if cost < best {
				best = cost
				bestI = i
			}
		}
		dp[c][j] = best
		choice[c][j] = bestI
		fill(c, jlo, j-1, ilo, bestI)
		fill(c, j+1, jhi, bestI, ihi)
	}
	for c := 1; c < k; c++ {
		fill(c, 0, n-1, c, n-1)
	}

	// Recover boundaries for exactly k clusters over all n values.
	boundaries := make([]int, k)
	j := n - 1
	for c := k - 1; c >= 1; c-- {
		i := choice[c][j]
		boundaries[c] = i
		j = i - 1
	}
	boundaries[0] = 0

	centers := make([]float64, k)
	for c := 0; c < k; c++ {
		lo := boundaries[c]
		hi := n - 1
		if c+1 < k {
			hi = boundaries[c+1] - 1
		}
		w := pw[hi+1] - pw[lo]
		s := pwv[hi+1] - pwv[lo]
		centers[c] = s / w
	}
	return &Result{Centers: centers, Boundaries: boundaries, Cost: dp[k-1][n-1]}, nil
}

// Assign returns the center of the cluster that value x falls into: the
// cluster whose mean is nearest. Centers must be sorted ascending, as
// produced by KMeans1D.
func (r *Result) Assign(x float64) float64 {
	cs := r.Centers
	// Binary search for the insertion point, then compare neighbours.
	i := sort.SearchFloat64s(cs, x)
	if i == 0 {
		return cs[0]
	}
	if i == len(cs) {
		return cs[len(cs)-1]
	}
	if x-cs[i-1] <= cs[i]-x {
		return cs[i-1]
	}
	return cs[i]
}

// distinctWeighted returns the sorted distinct values of xs and their
// multiplicities.
func distinctWeighted(xs []float64) ([]float64, []int) {
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	vals := make([]float64, 0, len(sorted))
	weights := make([]int, 0, len(sorted))
	for _, v := range sorted {
		if len(vals) > 0 && vals[len(vals)-1] == v {
			weights[len(weights)-1]++
			continue
		}
		vals = append(vals, v)
		weights = append(weights, 1)
	}
	return vals, weights
}

// RoundValues maps every value in xs to its cluster mean under an optimal
// k-clustering and returns the rounded copy.
func RoundValues(xs []float64, k int) ([]float64, error) {
	r, err := KMeans1D(xs, k)
	if err != nil {
		return nil, err
	}
	out := make([]float64, len(xs))
	for i, x := range xs {
		out[i] = r.Assign(x)
	}
	return out, nil
}
