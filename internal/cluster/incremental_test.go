package cluster

import (
	"math/rand"
	"sort"
	"testing"

	"cloudia/internal/core"
)

func randMatrix(n int, seed int64) *core.CostMatrix {
	rng := rand.New(rand.NewSource(seed))
	m := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

// perturbRows returns a copy of m with every off-diagonal entry of the given
// rows redrawn.
func perturbRows(m *core.CostMatrix, rows []int, seed int64) *core.CostMatrix {
	rng := rand.New(rand.NewSource(seed))
	out := m.Clone()
	for _, i := range rows {
		for j := 0; j < m.Size(); j++ {
			if i != j {
				out.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return out
}

// TestPatchRoundedRows pins the incremental re-rounding contract: unchanged
// rows keep their previous rounded values bit-for-bit, changed rows carry
// the nearest-center assignment of the new source values.
func TestPatchRoundedRows(t *testing.T) {
	const n, k = 12, 4
	m0 := randMatrix(n, 3)
	rounded0, _, res, err := RoundCostMatrixPairsResult(m0, k)
	if err != nil {
		t.Fatal(err)
	}
	changed := []int{2, 7, 9}
	m1 := perturbRows(m0, changed, 11)

	patched := PatchRoundedRows(m1, rounded0, res, changed)
	isChanged := map[int]bool{2: true, 7: true, 9: true}
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			want := rounded0.At(i, j)
			if isChanged[i] {
				want = res.Assign(m1.At(i, j))
			}
			if patched.At(i, j) != want {
				t.Fatalf("patched(%d,%d) = %g, want %g", i, j, patched.At(i, j), want)
			}
		}
	}
	// prev must not be modified.
	check, _, _, _ := RoundCostMatrixPairsResult(m0, k)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if rounded0.At(i, j) != check.At(i, j) {
				t.Fatal("PatchRoundedRows mutated its prev argument")
			}
		}
	}
}

// TestPatchRoundedRowsUnclustered covers the k<=0 path (nil Result): changed
// rows take raw source values.
func TestPatchRoundedRowsUnclustered(t *testing.T) {
	m0 := randMatrix(6, 5)
	m1 := perturbRows(m0, []int{1, 4}, 7)
	patched := PatchRoundedRows(m1, m0, nil, []int{1, 4})
	for i := 0; i < 6; i++ {
		for j := 0; j < 6; j++ {
			want := m0.At(i, j)
			if i == 1 || i == 4 {
				want = m1.At(i, j)
			}
			if patched.At(i, j) != want {
				t.Fatalf("patched(%d,%d) = %g, want %g", i, j, patched.At(i, j), want)
			}
		}
	}
}

// TestPatchSortedPairs verifies the merged pair list is sorted ascending and
// is, as a multiset, exactly the pair list of the patched matrix.
func TestPatchSortedPairs(t *testing.T) {
	const n = 15
	m0 := randMatrix(n, 9)
	pairs0 := m0.SortedPairs()
	changed := []int{0, 5, 14}
	m1 := perturbRows(m0, changed, 13)

	got := PatchSortedPairs(m1, pairs0, changed)
	if len(got) != n*(n-1) {
		t.Fatalf("patched pair list has %d entries, want %d", len(got), n*(n-1))
	}
	for i := 1; i < len(got); i++ {
		if got[i].Cost < got[i-1].Cost {
			t.Fatalf("pair list not ascending at %d", i)
		}
	}
	key := func(p core.CostPair) [3]float64 {
		return [3]float64{float64(p.From), float64(p.To), p.Cost}
	}
	want := m1.SortedPairs()
	gotKeys := make([][3]float64, len(got))
	wantKeys := make([][3]float64, len(want))
	for i := range got {
		gotKeys[i] = key(got[i])
		wantKeys[i] = key(want[i])
	}
	less := func(ks [][3]float64) func(i, j int) bool {
		return func(i, j int) bool {
			a, b := ks[i], ks[j]
			for x := 0; x < 3; x++ {
				if a[x] != b[x] {
					return a[x] < b[x]
				}
			}
			return false
		}
	}
	sort.Slice(gotKeys, less(gotKeys))
	sort.Slice(wantKeys, less(wantKeys))
	for i := range gotKeys {
		if gotKeys[i] != wantKeys[i] {
			t.Fatalf("pair multiset differs at %d: %v vs %v", i, gotKeys[i], wantKeys[i])
		}
	}
	// Every pair from an unchanged row must keep its previous cost.
	isChanged := map[int32]bool{0: true, 5: true, 14: true}
	prevCost := make(map[[2]int32]float64, len(pairs0))
	for _, p := range pairs0 {
		prevCost[[2]int32{p.From, p.To}] = p.Cost
	}
	for _, p := range got {
		if !isChanged[p.From] && prevCost[[2]int32{p.From, p.To}] != p.Cost {
			t.Fatalf("unchanged pair (%d,%d) cost drifted", p.From, p.To)
		}
	}
}

// TestPatchSortedPairsAllRows degenerates to a full rebuild: every row
// changed.
func TestPatchSortedPairsAllRows(t *testing.T) {
	m0 := randMatrix(5, 17)
	all := []int{0, 1, 2, 3, 4}
	m1 := perturbRows(m0, all, 19)
	got := PatchSortedPairs(m1, m0.SortedPairs(), all)
	want := m1.SortedPairs()
	if len(got) != len(want) {
		t.Fatalf("length %d vs %d", len(got), len(want))
	}
	for i := range got {
		if got[i].Cost != want[i].Cost {
			t.Fatalf("cost sequence differs at %d", i)
		}
	}
}
