package cluster

import (
	"slices"

	"cloudia/internal/core"
	"cloudia/internal/par"
)

// RoundCostMatrix returns a copy of m whose off-diagonal costs are rounded to
// the means of an optimal k-clustering of the original cost values. This is
// the preprocessing step the paper applies before handing the matrix to the
// CP or MIP solvers (Sect. 6.3.1): it shrinks the number of distinct cost
// values (and hence CP threshold iterations) at the price of objective
// precision. k <= 0 disables clustering and returns m itself — rounded
// matrices are shared immutable snapshots everywhere downstream, so the
// disabled path is zero-copy; callers must not modify the result.
func RoundCostMatrix(m *core.CostMatrix, k int) (*core.CostMatrix, error) {
	if k <= 0 || m.Size() < 2 {
		return m, nil
	}
	r, err := KMeans1D(m.OffDiagonal(), k)
	if err != nil {
		return nil, err
	}
	n := m.Size()
	out := core.NewCostMatrix(n)
	// Assign is a read-only binary search and each row writes only its own
	// backing range, so rounding is row-parallel and bit-equal.
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			for j := 0; j < n; j++ {
				if i != j {
					out.Set(i, j, r.Assign(m.At(i, j)))
				}
			}
		}
	})
	return out, nil
}

// RoundCostMatrixPairs is RoundCostMatrix plus the instance-pair order sorted
// ascending by rounded cost. Cluster assignment is monotone in the original
// cost, so the pair order is derived from one sort of the original values and
// shared with the rounded matrix; the CP solver's incremental threshold
// graphs consume it directly instead of re-sorting m^2 pairs per solve.
func RoundCostMatrixPairs(m *core.CostMatrix, k int) (*core.CostMatrix, []core.CostPair, error) {
	out, pairs, _, err := RoundCostMatrixPairsResult(m, k)
	return out, pairs, err
}

// RoundCostMatrixPairsResult is RoundCostMatrixPairs exposing the underlying
// clustering as well, so epoch-aware caches can later re-assign changed
// values to the fitted centers without re-running k-means. The Result is nil
// when clustering is disabled (k <= 0 or a sub-2x2 matrix).
func RoundCostMatrixPairsResult(m *core.CostMatrix, k int) (*core.CostMatrix, []core.CostPair, *Result, error) {
	if k <= 0 || m.Size() < 2 {
		return m, m.SortedPairs(), nil, nil
	}
	pairs := m.SortedPairs()
	vals := make([]float64, len(pairs))
	for i, pr := range pairs {
		vals[i] = pr.Cost
	}
	r, err := KMeans1D(vals, k)
	if err != nil {
		return nil, nil, nil, err
	}
	out := core.NewCostMatrix(m.Size())
	// Each pair index appears once, so pair chunks write disjoint matrix
	// cells and disjoint pair entries; Assign is a read-only binary search.
	// The chunked loop is therefore bit-equal to the sequential one.
	par.For(len(pairs), func(lo, hi int) {
		for i := lo; i < hi; i++ {
			c := r.Assign(pairs[i].Cost)
			out.Set(int(pairs[i].From), int(pairs[i].To), c)
			pairs[i].Cost = c
		}
	})
	return out, pairs, r, nil
}

// PatchRoundedRows advances a rounded matrix to a new cost-matrix epoch
// where only the given source rows changed: unchanged rows are copied from
// prev, while every off-diagonal entry of a changed row is re-assigned to
// the nearest center of the existing clustering r — the incremental k-means
// reassignment that keeps per-epoch re-rounding O(changed * n * log k)
// instead of a full O(n^2) k-means refit. A nil r means clustering is
// disabled and changed rows take their raw source values. prev is not
// modified.
func PatchRoundedRows(src, prev *core.CostMatrix, r *Result, rows []int) *core.CostMatrix {
	out := prev.Clone()
	n := src.Size()
	// Normalize to a duplicate-free list so chunks of it touch disjoint
	// output rows; re-rounding the changed rows is then row-parallel.
	rs := slices.Clone(rows)
	slices.Sort(rs)
	rs = slices.Compact(rs)
	par.For(len(rs), func(lo, hi int) {
		for _, i := range rs[lo:hi] {
			for j := 0; j < n; j++ {
				if i == j {
					continue
				}
				v := src.At(i, j)
				if r != nil {
					v = r.Assign(v)
				}
				out.Set(i, j, v)
			}
		}
	})
	return out
}

// PatchSortedPairs advances a cost-sorted pair list to a new matrix epoch
// where only the given rows of m changed. A row change affects exactly the
// pairs originating at that row, so the changed rows' pairs are rebuilt as
// per-row sorted runs merged into one ascending run (O(n log n) per row plus
// an O(changed*n*log changed) run merge), and that run is merged into the
// output in a single fused pass over prevPairs that skips superseded pairs
// as it goes — no intermediate kept-pair list is materialized, and unbroken
// spans of kept pairs are copied in bulk rather than element-at-a-time.
// Total O(n^2 + changed * n * log(changed * n)) with one output-sized
// allocation, against the O(n^2 log n) full re-sort (and against the older
// delta path's second output-sized intermediate). Ties between kept and
// rebuilt pairs keep the kept pair first, so the output is deterministic
// (though tie order may differ from a full SortedPairs re-sort; consumers
// only require ascending cost). prevPairs is not modified.
func PatchSortedPairs(m *core.CostMatrix, prevPairs []core.CostPair, rows []int) []core.CostPair {
	n := m.Size()
	// Normalize rows ascending and duplicate-free: run construction order
	// (and therefore tie order among rebuilt pairs) must not depend on the
	// caller's row order.
	rs := slices.Clone(rows)
	slices.Sort(rs)
	rs = slices.Compact(rs)

	changed := make([]bool, n)
	for _, i := range rs {
		changed[i] = true
	}
	fresh := freshSortedRuns(m, rs)

	out := make([]core.CostPair, 0, len(prevPairs))
	i, j := 0, 0
	for i < len(prevPairs) {
		pr := prevPairs[i]
		if changed[pr.From] {
			i++
			continue
		}
		if j < len(fresh) && fresh[j].Cost < pr.Cost {
			out = append(out, fresh[j])
			j++
			continue
		}
		// Copy the longest span of kept pairs sorting at or before the next
		// rebuilt pair in one append.
		s := i
		for i < len(prevPairs) && !changed[prevPairs[i].From] &&
			(j >= len(fresh) || prevPairs[i].Cost <= fresh[j].Cost) {
			i++
		}
		out = append(out, prevPairs[s:i]...)
	}
	return append(out, fresh[j:]...)
}

// freshSortedRuns rebuilds the given (ascending, duplicate-free) rows' pairs
// from m as one cost-ascending run: each row's n-1 pairs are materialized
// into its own fixed-stride range and sorted independently — row-parallel —
// then equal-length row runs are merged bottom-up, left run first on ties
// (core.MergeSortedPairRuns, shared with the full-matrix SortedPairs build)
// — so equal costs keep (row, To) order exactly as the previous full-list
// stable sort produced.
func freshSortedRuns(m *core.CostMatrix, rows []int) []core.CostPair {
	n := m.Size()
	if len(rows) == 0 || n < 2 {
		return nil
	}
	per := n - 1
	a := make([]core.CostPair, len(rows)*per)
	par.For(len(rows), func(lo, hi int) {
		for ri := lo; ri < hi; ri++ {
			i := rows[ri]
			run := a[ri*per : (ri+1)*per]
			row := m.Row(i)
			w := 0
			for j := 0; j < n; j++ {
				if i != j {
					run[w] = core.CostPair{From: int32(i), To: int32(j), Cost: row[j]}
					w++
				}
			}
			core.SortPairRun(run)
		}
	})
	return core.MergeSortedPairRuns(a, per)
}
