package cluster

import (
	"slices"

	"cloudia/internal/core"
)

// RoundCostMatrix returns a copy of m whose off-diagonal costs are rounded to
// the means of an optimal k-clustering of the original cost values. This is
// the preprocessing step the paper applies before handing the matrix to the
// CP or MIP solvers (Sect. 6.3.1): it shrinks the number of distinct cost
// values (and hence CP threshold iterations) at the price of objective
// precision. k <= 0 disables clustering and returns a plain clone.
func RoundCostMatrix(m *core.CostMatrix, k int) (*core.CostMatrix, error) {
	if k <= 0 || m.Size() < 2 {
		return m.Clone(), nil
	}
	r, err := KMeans1D(m.OffDiagonal(), k)
	if err != nil {
		return nil, err
	}
	n := m.Size()
	out := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out.Set(i, j, r.Assign(m.At(i, j)))
			}
		}
	}
	return out, nil
}

// RoundCostMatrixPairs is RoundCostMatrix plus the instance-pair order sorted
// ascending by rounded cost. Cluster assignment is monotone in the original
// cost, so the pair order is derived from one sort of the original values and
// shared with the rounded matrix; the CP solver's incremental threshold
// graphs consume it directly instead of re-sorting m^2 pairs per solve.
func RoundCostMatrixPairs(m *core.CostMatrix, k int) (*core.CostMatrix, []core.CostPair, error) {
	out, pairs, _, err := RoundCostMatrixPairsResult(m, k)
	return out, pairs, err
}

// RoundCostMatrixPairsResult is RoundCostMatrixPairs exposing the underlying
// clustering as well, so epoch-aware caches can later re-assign changed
// values to the fitted centers without re-running k-means. The Result is nil
// when clustering is disabled (k <= 0 or a sub-2x2 matrix).
func RoundCostMatrixPairsResult(m *core.CostMatrix, k int) (*core.CostMatrix, []core.CostPair, *Result, error) {
	if k <= 0 || m.Size() < 2 {
		out := m.Clone()
		return out, out.SortedPairs(), nil, nil
	}
	pairs := m.SortedPairs()
	vals := make([]float64, len(pairs))
	for i, pr := range pairs {
		vals[i] = pr.Cost
	}
	r, err := KMeans1D(vals, k)
	if err != nil {
		return nil, nil, nil, err
	}
	out := core.NewCostMatrix(m.Size())
	for i := range pairs {
		c := r.Assign(pairs[i].Cost)
		out.Set(int(pairs[i].From), int(pairs[i].To), c)
		pairs[i].Cost = c
	}
	return out, pairs, r, nil
}

// PatchRoundedRows advances a rounded matrix to a new cost-matrix epoch
// where only the given source rows changed: unchanged rows are copied from
// prev, while every off-diagonal entry of a changed row is re-assigned to
// the nearest center of the existing clustering r — the incremental k-means
// reassignment that keeps per-epoch re-rounding O(changed * n * log k)
// instead of a full O(n^2) k-means refit. A nil r means clustering is
// disabled and changed rows take their raw source values. prev is not
// modified.
func PatchRoundedRows(src, prev *core.CostMatrix, r *Result, rows []int) *core.CostMatrix {
	out := prev.Clone()
	n := src.Size()
	for _, i := range rows {
		for j := 0; j < n; j++ {
			if i == j {
				continue
			}
			v := src.At(i, j)
			if r != nil {
				v = r.Assign(v)
			}
			out.Set(i, j, v)
		}
	}
	return out
}

// PatchSortedPairs advances a cost-sorted pair list to a new matrix epoch
// where only the given rows of m changed. A row change affects exactly the
// pairs originating at that row, so the unchanged pairs are filtered out of
// prevPairs in their existing order (one linear pass), the changed rows'
// pairs are rebuilt from m and sorted, and the two sorted runs are merged —
// O(n^2 + changed * n * log(changed * n)) against the O(n^2 log n) full
// re-sort. Ties between kept and rebuilt pairs keep the kept pair first, so
// the output is deterministic (though tie order may differ from a full
// SortedPairs re-sort; consumers only require ascending cost). prevPairs is
// not modified.
func PatchSortedPairs(m *core.CostMatrix, prevPairs []core.CostPair, rows []int) []core.CostPair {
	n := m.Size()
	changed := make([]bool, n)
	for _, i := range rows {
		changed[i] = true
	}

	kept := make([]core.CostPair, 0, len(prevPairs))
	for _, pr := range prevPairs {
		if !changed[pr.From] {
			kept = append(kept, pr)
		}
	}
	fresh := make([]core.CostPair, 0, len(rows)*(n-1))
	for _, i := range rows {
		for j := 0; j < n; j++ {
			if i != j {
				fresh = append(fresh, core.CostPair{From: int32(i), To: int32(j), Cost: m.At(i, j)})
			}
		}
	}
	slices.SortStableFunc(fresh, func(a, b core.CostPair) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		}
		return 0
	})

	out := make([]core.CostPair, 0, len(kept)+len(fresh))
	i, j := 0, 0
	for i < len(kept) && j < len(fresh) {
		if kept[i].Cost <= fresh[j].Cost {
			out = append(out, kept[i])
			i++
		} else {
			out = append(out, fresh[j])
			j++
		}
	}
	out = append(out, kept[i:]...)
	out = append(out, fresh[j:]...)
	return out
}
