package cluster

import "cloudia/internal/core"

// RoundCostMatrix returns a copy of m whose off-diagonal costs are rounded to
// the means of an optimal k-clustering of the original cost values. This is
// the preprocessing step the paper applies before handing the matrix to the
// CP or MIP solvers (Sect. 6.3.1): it shrinks the number of distinct cost
// values (and hence CP threshold iterations) at the price of objective
// precision. k <= 0 disables clustering and returns a plain clone.
func RoundCostMatrix(m *core.CostMatrix, k int) (*core.CostMatrix, error) {
	if k <= 0 {
		return m.Clone(), nil
	}
	vals := m.OffDiagonal()
	if len(vals) == 0 {
		return m.Clone(), nil
	}
	r, err := KMeans1D(vals, k)
	if err != nil {
		return nil, err
	}
	n := m.Size()
	out := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out.Set(i, j, r.Assign(m.At(i, j)))
			}
		}
	}
	return out, nil
}
