package cluster

import "cloudia/internal/core"

// RoundCostMatrix returns a copy of m whose off-diagonal costs are rounded to
// the means of an optimal k-clustering of the original cost values. This is
// the preprocessing step the paper applies before handing the matrix to the
// CP or MIP solvers (Sect. 6.3.1): it shrinks the number of distinct cost
// values (and hence CP threshold iterations) at the price of objective
// precision. k <= 0 disables clustering and returns a plain clone.
func RoundCostMatrix(m *core.CostMatrix, k int) (*core.CostMatrix, error) {
	if k <= 0 || m.Size() < 2 {
		return m.Clone(), nil
	}
	r, err := KMeans1D(m.OffDiagonal(), k)
	if err != nil {
		return nil, err
	}
	n := m.Size()
	out := core.NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out.Set(i, j, r.Assign(m.At(i, j)))
			}
		}
	}
	return out, nil
}

// RoundCostMatrixPairs is RoundCostMatrix plus the instance-pair order sorted
// ascending by rounded cost. Cluster assignment is monotone in the original
// cost, so the pair order is derived from one sort of the original values and
// shared with the rounded matrix; the CP solver's incremental threshold
// graphs consume it directly instead of re-sorting m^2 pairs per solve.
func RoundCostMatrixPairs(m *core.CostMatrix, k int) (*core.CostMatrix, []core.CostPair, error) {
	if k <= 0 || m.Size() < 2 {
		out := m.Clone()
		return out, out.SortedPairs(), nil
	}
	pairs := m.SortedPairs()
	vals := make([]float64, len(pairs))
	for i, pr := range pairs {
		vals[i] = pr.Cost
	}
	r, err := KMeans1D(vals, k)
	if err != nil {
		return nil, nil, err
	}
	out := core.NewCostMatrix(m.Size())
	for i := range pairs {
		c := r.Assign(pairs[i].Cost)
		out.Set(int(pairs[i].From), int(pairs[i].To), c)
		pairs[i].Cost = c
	}
	return out, pairs, nil
}
