package cluster

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"cloudia/internal/core"
)

func TestKMeansErrors(t *testing.T) {
	if _, err := KMeans1D(nil, 3); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, err := KMeans1D([]float64{1}, 0); err == nil {
		t.Fatal("k=0 accepted")
	}
}

func TestKMeansSingleCluster(t *testing.T) {
	r, err := KMeans1D([]float64{1, 2, 3}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Centers) != 1 || math.Abs(r.Centers[0]-2) > 1e-12 {
		t.Fatalf("centers = %v, want [2]", r.Centers)
	}
	if math.Abs(r.Cost-2) > 1e-12 { // (1-2)^2+(2-2)^2+(3-2)^2
		t.Fatalf("cost = %g, want 2", r.Cost)
	}
}

func TestKMeansPerfectSplit(t *testing.T) {
	xs := []float64{1, 1.1, 0.9, 10, 10.1, 9.9}
	r, err := KMeans1D(xs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Centers) != 2 {
		t.Fatalf("centers = %v, want 2 clusters", r.Centers)
	}
	if math.Abs(r.Centers[0]-1) > 1e-9 || math.Abs(r.Centers[1]-10) > 1e-9 {
		t.Fatalf("centers = %v, want ~[1 10]", r.Centers)
	}
	// All low values assign to the low center.
	for _, x := range []float64{0.9, 1, 1.1} {
		if got := r.Assign(x); math.Abs(got-1) > 1e-9 {
			t.Fatalf("Assign(%g) = %g, want ~1", x, got)
		}
	}
}

func TestKMeansKExceedsDistinct(t *testing.T) {
	r, err := KMeans1D([]float64{5, 5, 7, 7}, 10)
	if err != nil {
		t.Fatal(err)
	}
	if len(r.Centers) != 2 {
		t.Fatalf("centers = %v, want one per distinct value", r.Centers)
	}
	if r.Cost != 0 {
		t.Fatalf("cost = %g, want 0", r.Cost)
	}
}

func TestKMeansDuplicatesWeighted(t *testing.T) {
	// Three 0s and one 10 with k=1: mean must be weighted, 2.5.
	r, err := KMeans1D([]float64{0, 0, 0, 10}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(r.Centers[0]-2.5) > 1e-12 {
		t.Fatalf("weighted center = %g, want 2.5", r.Centers[0])
	}
}

// bruteForce finds the optimal k-clustering cost by trying all contiguous
// partitions of the sorted distinct values.
func bruteForce(vals []float64, weights []int, k int) float64 {
	n := len(vals)
	if k >= n {
		return 0
	}
	best := math.Inf(1)
	// Choose k-1 boundaries among positions 1..n-1.
	var rec func(start, remaining int, cost float64)
	intervalCost := func(i, j int) float64 {
		var w, s float64
		for x := i; x <= j; x++ {
			w += float64(weights[x])
			s += float64(weights[x]) * vals[x]
		}
		mean := s / w
		c := 0.0
		for x := i; x <= j; x++ {
			d := vals[x] - mean
			c += float64(weights[x]) * d * d
		}
		return c
	}
	rec = func(start, remaining int, cost float64) {
		if remaining == 1 {
			total := cost + intervalCost(start, n-1)
			if total < best {
				best = total
			}
			return
		}
		for end := start; end <= n-remaining; end++ {
			rec(end+1, remaining-1, cost+intervalCost(start, end))
		}
	}
	rec(0, k, 0)
	return best
}

func TestKMeansMatchesBruteForce(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(8)
		k := 1 + rng.Intn(4)
		xs := make([]float64, n)
		for i := range xs {
			xs[i] = math.Round(rng.Float64()*10) / 2 // induce duplicates
		}
		r, err := KMeans1D(xs, k)
		if err != nil {
			return false
		}
		vals, weights := distinctWeighted(xs)
		kk := k
		if kk > len(vals) {
			kk = len(vals)
		}
		want := bruteForce(vals, weights, kk)
		return math.Abs(r.Cost-want) < 1e-9
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// referenceDP is the textbook O(kn^2) layered DP over sorted distinct
// values, kept as the specification the SMAWK + Hirschberg implementation
// must match: dp[c][j] = min over i of dp[c-1][i-1] + intervalCost(i, j).
func referenceDP(vals []float64, weights []int, k int) float64 {
	n := len(vals)
	if k > n {
		k = n
	}
	ps := newPrefixSums(vals, weights)
	prev := make([]float64, n)
	curr := make([]float64, n)
	for j := 0; j < n; j++ {
		prev[j] = ps.cost(0, j)
	}
	for c := 1; c < k; c++ {
		for j := 0; j < n; j++ {
			best := math.Inf(1)
			for i := c; i <= j; i++ {
				if v := prev[i-1] + ps.cost(i, j); v < best {
					best = v
				}
			}
			curr[j] = best
		}
		prev, curr = curr, prev
	}
	return prev[n-1]
}

// TestSMAWKHirschbergMatchesReferenceDP is the equal-cost property test for
// the SMAWK layer fill and Hirschberg boundary recovery. KMeans1D routes
// instances below choiceCap to the single-sweep engine, so this drives the
// split path directly: the cost must match the plain DP and the boundaries
// must reproduce exactly the reported cost.
func TestSMAWKHirschbergMatchesReferenceDP(t *testing.T) {
	f := func(seed int64, rawK uint8, dup bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(400)
		k := 1 + int(rawK)%40
		xs := make([]float64, n)
		for i := range xs {
			if dup {
				xs[i] = math.Round(rng.Float64()*40) / 4 // induce duplicates
			} else {
				xs[i] = rng.Float64() * 100
			}
		}
		vals, weights := distinctWeighted(xs)
		if k > len(vals) {
			k = len(vals)
		}
		ps := newPrefixSums(vals, weights)
		boundaries := make([]int, k)
		h := newHirschberg(ps, len(vals))
		var got float64
		switch {
		case k == len(vals):
			return true // no DP runs; covered elsewhere
		case k == 1:
			got = ps.cost(0, len(vals)-1)
		default:
			got = h.split(0, len(vals)-1, k, boundaries)
		}
		want := referenceDP(vals, weights, k)
		if math.Abs(got-want) > 1e-6*(1+want) {
			t.Logf("seed=%d n=%d k=%d: SMAWK cost %g, reference %g", seed, n, k, got, want)
			return false
		}
		if k > 1 {
			sum := 0.0
			for c := range boundaries {
				lo := boundaries[c]
				hi := len(vals) - 1
				if c+1 < len(boundaries) {
					hi = boundaries[c+1] - 1
				}
				if lo > hi || (c == 0 && lo != 0) {
					t.Logf("seed=%d n=%d k=%d: bad boundaries %v", seed, n, k, boundaries)
					return false
				}
				sum += ps.cost(lo, hi)
			}
			if math.Abs(sum-got) > 1e-9*(1+got) {
				t.Logf("seed=%d n=%d k=%d: boundary cost %g != reported %g", seed, n, k, sum, got)
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

// TestHirschbergParallelMeet drives split() above parallelMin so the
// concurrent forward/backward meet passes run (they never do at the
// property tests' sizes), both pinning the parallel path's result against
// the single-sweep engine and giving `go test -race` a real schedule to
// check.
func TestHirschbergParallelMeet(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	n := parallelMin + 513
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = rng.Float64() * 100
	}
	const k = 8
	vals, weights := distinctWeighted(xs)
	ps := newPrefixSums(vals, weights)
	h := newHirschberg(ps, len(vals))
	boundaries := make([]int, k)
	got := h.split(0, len(vals)-1, k, boundaries)

	r, err := KMeans1D(xs, k) // routed to the single-sweep engine
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(got-r.Cost) > 1e-6*(1+r.Cost) {
		t.Fatalf("parallel meet cost %g != single-sweep cost %g", got, r.Cost)
	}
	sum := 0.0
	for c := range boundaries {
		lo := boundaries[c]
		hi := len(vals) - 1
		if c+1 < k {
			hi = boundaries[c+1] - 1
		}
		if lo > hi {
			t.Fatalf("bad boundaries %v", boundaries)
		}
		sum += ps.cost(lo, hi)
	}
	if math.Abs(sum-got) > 1e-9*(1+got) {
		t.Fatalf("boundary cost %g != reported %g", sum, got)
	}
}

// TestKMeansMatchesReferenceDP is the equal-cost property test for the
// single-sweep engine (Knuth-Yao-narrowed layer fill with direct
// backtracking, the path KMeans1D takes below choiceCap): at sizes beyond
// the brute-force test's reach, the optimal cost must match the plain DP,
// and the reported boundaries must reproduce exactly the reported cost.
func TestKMeansMatchesReferenceDP(t *testing.T) {
	f := func(seed int64, rawK uint8, dup bool) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 2 + rng.Intn(300)
		k := 1 + int(rawK)%40
		xs := make([]float64, n)
		for i := range xs {
			if dup {
				xs[i] = math.Round(rng.Float64()*40) / 4 // induce duplicates
			} else {
				xs[i] = rng.Float64() * 100
			}
		}
		r, err := KMeans1D(xs, k)
		if err != nil {
			return false
		}
		vals, weights := distinctWeighted(xs)
		want := referenceDP(vals, weights, k)
		if math.Abs(r.Cost-want) > 1e-6*(1+want) {
			t.Logf("seed=%d n=%d k=%d: cost %g, reference %g", seed, n, k, r.Cost, want)
			return false
		}
		// Boundaries must be a valid ascending partition whose segment costs
		// sum to the reported cost.
		ps := newPrefixSums(vals, weights)
		sum := 0.0
		for c := range r.Boundaries {
			lo := r.Boundaries[c]
			hi := len(vals) - 1
			if c+1 < len(r.Boundaries) {
				hi = r.Boundaries[c+1] - 1
			}
			if lo > hi || (c == 0 && lo != 0) {
				t.Logf("seed=%d n=%d k=%d: bad boundaries %v", seed, n, k, r.Boundaries)
				return false
			}
			sum += ps.cost(lo, hi)
		}
		if math.Abs(sum-r.Cost) > 1e-9*(1+r.Cost) {
			t.Logf("seed=%d n=%d k=%d: boundary cost %g != reported %g", seed, n, k, sum, r.Cost)
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Fatal(err)
	}
}

func TestRoundValues(t *testing.T) {
	out, err := RoundValues([]float64{1, 1.2, 9.8, 10}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(out[0]-1.1) > 1e-9 || math.Abs(out[3]-9.9) > 1e-9 {
		t.Fatalf("rounded = %v", out)
	}
	// Rounding never changes the value ordering across clusters.
	if !(out[0] < out[2]) {
		t.Fatalf("ordering broken: %v", out)
	}
}

func TestRoundCostMatrix(t *testing.T) {
	m := core.NewCostMatrix(3)
	m.Set(0, 1, 1.0)
	m.Set(1, 0, 1.1)
	m.Set(0, 2, 5.0)
	m.Set(2, 0, 5.2)
	m.Set(1, 2, 1.05)
	m.Set(2, 1, 5.1)
	out, err := RoundCostMatrix(m, 2)
	if err != nil {
		t.Fatal(err)
	}
	dv := out.DistinctValues()
	if len(dv) != 2 {
		t.Fatalf("distinct after rounding = %v, want 2 values", dv)
	}
	if err := out.Validate(); err != nil {
		t.Fatalf("rounded matrix invalid: %v", err)
	}
	// Diagonal untouched.
	if out.At(1, 1) != 0 {
		t.Fatal("diagonal modified")
	}
}

func TestRoundCostMatrixDisabled(t *testing.T) {
	m := core.NewCostMatrix(2)
	m.Set(0, 1, 3)
	m.Set(1, 0, 4)
	out, err := RoundCostMatrix(m, 0)
	if err != nil {
		t.Fatal(err)
	}
	if out.At(0, 1) != 3 || out.At(1, 0) != 4 {
		t.Fatal("k<=0 should pass values through unchanged")
	}
	if out != m {
		t.Fatal("k<=0 should share the matrix, not clone it")
	}
}

// Property: rounding to k clusters leaves at most k distinct values and
// preserves the min<=x<=max envelope.
func TestRoundValuesProperty(t *testing.T) {
	f := func(seed int64, rawK uint8) bool {
		rng := rand.New(rand.NewSource(seed))
		k := int(rawK%10) + 1
		xs := make([]float64, 3+rng.Intn(40))
		lo, hi := math.Inf(1), math.Inf(-1)
		for i := range xs {
			xs[i] = rng.Float64() * 100
			lo = math.Min(lo, xs[i])
			hi = math.Max(hi, xs[i])
		}
		out, err := RoundValues(xs, k)
		if err != nil {
			return false
		}
		distinct := map[float64]struct{}{}
		for _, v := range out {
			distinct[v] = struct{}{}
			if v < lo-1e-9 || v > hi+1e-9 {
				return false
			}
		}
		return len(distinct) <= k
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}
