package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"unicode"
)

// WALRecord guards the WAL's on-disk format. Two rules:
//
//  1. Every encoding/binary write in internal/wal must live inside the
//     framed-record codec — the appendPayload methods, the append*
//     helpers in record.go, or the frame writer in wal.go. A stray
//     binary.PutUint32 elsewhere is a second, unreviewed encoding path:
//     it bypasses the CRC framing and the byte-for-byte determinism the
//     replay fingerprint checks depend on.
//
//  2. Every `kind*` record-kind constant must appear as a case in a
//     switch somewhere in the package (the decodeRecord dispatch). A new
//     kind with an encoder but no decode case writes records that the
//     next restart cannot replay — recovery fails on live logs, which is
//     exactly the kind of skew this catches at compile time.
var WALRecord = &Analyzer{
	Name:  "walrecord",
	Doc:   "confines encoding/binary writes in internal/wal to the framed-record codec and pairs kind constants with decode cases",
	Scope: scopePaths("cloudia/internal/wal"),
	Run:   runWALRecord,
}

// walCodecFuncs are the only functions allowed to call encoding/binary
// write helpers: the record payload encoders, the low-level append
// helpers, and the frame writer that seals length+CRC headers.
var walCodecFuncs = map[string]bool{
	"appendPayload": true,
	"appendUint":    true,
	"appendF64":     true,
	"appendString":  true,
	"frame":         true,
}

func runWALRecord(pass *Pass) {
	kindConsts := map[string]token.Pos{}
	caseIdents := map[string]bool{}
	for _, f := range pass.Files {
		collectKindDecls(pass, f, kindConsts, caseIdents)
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[sel.Sel].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "encoding/binary" {
				return true
			}
			if !isBinaryWrite(fn.Name()) {
				return true
			}
			if fd := funcFor(f, sel.Pos()); fd != nil && walCodecFuncs[fd.Name.Name] {
				return true
			}
			pass.Report(sel.Pos(),
				"binary.%s outside the framed-record codec: route writes through appendPayload/append* helpers or the frame writer so every byte is CRC-framed and replay-deterministic",
				fn.Name())
			return true
		})
	}
	// Stable report order: kindConsts is keyed by name, so walk sorted.
	names := make([]string, 0, len(kindConsts))
	for name := range kindConsts {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		if !caseIdents[name] {
			pass.Report(kindConsts[name],
				"record kind constant %s has no decode case: add it to the decodeRecord switch or restarts cannot replay the records it frames",
				name)
		}
	}
}

// collectKindDecls gathers package-level `kindX` byte constants and every
// identifier used in a switch case clause.
func collectKindDecls(pass *Pass, f *ast.File, kindConsts map[string]token.Pos, caseIdents map[string]bool) {
	for _, d := range f.Decls {
		gd, ok := d.(*ast.GenDecl)
		if !ok || gd.Tok != token.CONST {
			continue
		}
		for _, spec := range gd.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok {
				continue
			}
			for _, name := range vs.Names {
				if isKindName(name.Name) {
					kindConsts[name.Name] = name.Pos()
				}
			}
		}
	}
	ast.Inspect(f, func(n ast.Node) bool {
		cc, ok := n.(*ast.CaseClause)
		if !ok {
			return true
		}
		for _, e := range cc.List {
			if id, ok := e.(*ast.Ident); ok {
				caseIdents[id.Name] = true
			}
		}
		return true
	})
}

// isKindName matches the record-kind naming convention: "kind" followed by
// an exported-style suffix (kindEpoch, kindAdvice, ...).
func isKindName(name string) bool {
	return strings.HasPrefix(name, "kind") && len(name) > 4 &&
		unicode.IsUpper(rune(name[4]))
}

// isBinaryWrite reports whether the encoding/binary function or ByteOrder
// method with this name writes bytes (as opposed to the decode helpers the
// payloadReader uses).
func isBinaryWrite(name string) bool {
	return name == "Write" ||
		strings.HasPrefix(name, "Put") ||
		strings.HasPrefix(name, "Append") ||
		strings.HasPrefix(name, "Encode")
}
