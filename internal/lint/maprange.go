package lint

import (
	"go/ast"
	"go/types"
)

// MapRange flags `for k := range m` over map values in the deterministic
// packages. Go randomizes map iteration order per run, so any loop whose
// body can observe the key (append to a slice, fold into a float, pick a
// "first" match) is a bit-equality hazard: the same inputs produce
// differently-ordered artifacts on the next run. The fix is to iterate a
// sorted key slice (or a deterministic index structure); genuinely
// order-insensitive bodies — pure membership counting, building another
// map, max over a total order — are annotated with
// //cloudia:nondet-ok <reason>.
//
// A keyless `for range m` only runs the body len(m) times and cannot
// observe the order, so it is not flagged.
var MapRange = &Analyzer{
	Name:  "maprange",
	Doc:   "flags range over maps in deterministic packages (iteration order is randomized per run)",
	Scope: IsDeterministic,
	Run:   runMapRange,
}

func runMapRange(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || rs.Key == nil {
				return true
			}
			t := pass.Info.TypeOf(rs.X)
			if t == nil {
				return true
			}
			if _, isMap := t.Underlying().(*types.Map); isMap {
				pass.Report(rs.For,
					"range over map %s: iteration order is randomized per run; iterate sorted keys, or annotate the loop with %s <why the body is order-insensitive>",
					types.ExprString(rs.X), SuppressionMarker)
			}
			return true
		})
	}
}
