package lint_test

import (
	"testing"

	"cloudia/internal/lint"
	"cloudia/internal/lint/linttest"
)

// Each fixture package is loaded under an import path chosen by the test,
// which is how scope rules (deterministic vs exempt vs out-of-scope
// packages) are exercised without fixtures living at the real paths.

func TestMapRangeDeterministic(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/maprange/det", "cloudia/internal/core")
}

func TestMapRangeSubpackageInheritsScope(t *testing.T) {
	// A subpackage of a deterministic package is in scope too.
	linttest.Run(t, lint.MapRange, "testdata/maprange/det", "cloudia/internal/solver/cp")
}

func TestMapRangeSuppressions(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/maprange/suppress", "cloudia/internal/wal")
}

func TestMapRangeOutOfScope(t *testing.T) {
	linttest.Run(t, lint.MapRange, "testdata/maprange/free", "cloudia/internal/workload")
}

func TestMapRangePrefixIsNotScope(t *testing.T) {
	// Path-prefix lookalikes ("servemetrics" vs "serve") are not in scope.
	linttest.Run(t, lint.MapRange, "testdata/maprange/free", "cloudia/internal/servemetrics")
}

func TestBareGoroutineDeterministic(t *testing.T) {
	linttest.Run(t, lint.BareGoroutine, "testdata/baregoroutine/det", "cloudia/internal/solver")
}

func TestBareGoroutineServeDispatchExemption(t *testing.T) {
	// serve.go is exempt dispatch plumbing; other.go in the same package
	// is not.
	linttest.Run(t, lint.BareGoroutine, "testdata/baregoroutine/serve", "cloudia/internal/serve")
}

func TestBareGoroutineMeasureStreamExemption(t *testing.T) {
	linttest.Run(t, lint.BareGoroutine, "testdata/baregoroutine/measure", "cloudia/internal/measure")
}

func TestBareGoroutineOutOfScope(t *testing.T) {
	linttest.Run(t, lint.BareGoroutine, "testdata/baregoroutine/free", "cloudia/internal/par")
}

func TestBareGoroutineExemptFileNameBoundToPackage(t *testing.T) {
	// A file that happens to be called stream.go outside internal/measure
	// gets no exemption.
	linttest.Run(t, lint.BareGoroutine, "testdata/baregoroutine/streamfile", "cloudia/internal/sketch")
}

func TestWallClockDeterministic(t *testing.T) {
	linttest.Run(t, lint.WallClock, "testdata/wallclock/det", "cloudia/internal/solver/anneal")
}

func TestWallClockOutOfScope(t *testing.T) {
	// serve and advisor measure real latency; wallclock binds only the
	// solver/cluster/sketch search paths.
	linttest.Run(t, lint.WallClock, "testdata/wallclock/free", "cloudia/internal/serve")
}

func TestWALRecordCodec(t *testing.T) {
	linttest.Run(t, lint.WALRecord, "testdata/walrecord/wal", "cloudia/internal/wal")
}

func TestWALRecordOutOfScope(t *testing.T) {
	linttest.Run(t, lint.WALRecord, "testdata/walrecord/free", "cloudia/internal/netsim")
}
