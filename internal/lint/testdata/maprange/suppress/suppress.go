// Fixture: suppression forms. A //cloudia:nondet-ok with a reason (same
// line or the line above) silences the finding; a bare marker does not —
// it reports once itself and the finding still fires.
package suppress

func suppressed(m map[string]int) map[string]int {
	out := make(map[string]int, len(m))
	for k, v := range m { //cloudia:nondet-ok map-to-map copy, no order observable
		out[k] = v
	}
	//cloudia:nondet-ok membership count only; the body folds with +, which commutes
	for k := range m {
		out[k]++
	}
	return out
}

func bareMarker(m map[string]int) int {
	sum := 0
	/* want "needs a reason" */ //cloudia:nondet-ok
	for k := range m {          // want "range over map m"
		sum += len(k)
	}
	return sum
}

func markerWithOtherSuffixIsNotOurs(m map[string]int) int {
	sum := 0
	//cloudia:nondet-okay this is a different marker and suppresses nothing
	for k := range m { // want "range over map m"
		sum += len(k)
	}
	return sum
}
