// Fixture: map ranges inside a deterministic package. Loaded under a
// cloudia/internal import path by the test, so every keyed map range must
// be flagged.
package det

type registry map[string]int

func hits(m map[string]int, r registry, byPtr *map[int]bool) {
	sum := 0
	for k := range m { // want "range over map m"
		sum += len(k)
	}
	for k, v := range m { // want "range over map m"
		sum += len(k) + v
	}
	for name := range r { // want "range over map r"
		sum += len(name)
	}
	for k := range *byPtr { // want "range over map"
		sum += k
	}
	_ = sum
}

func nonHits(m map[string]int, s []int, c chan int, str string) {
	n := 0
	// A keyless range cannot observe iteration order: the body runs
	// len(m) indistinguishable times.
	for range m {
		n++
	}
	for i, v := range s {
		n += i + v
	}
	for i := range str {
		n += i
	}
	for v := range c {
		n += v
	}
	_ = n
}
