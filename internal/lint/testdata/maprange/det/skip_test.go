// Fixture: _test.go files are excluded from analysis entirely — this map
// range must produce no diagnostic even though the file sits in a
// deterministic package.
package det

func testOnlyHelper(m map[string]int) int {
	sum := 0
	for k := range m {
		sum += len(k)
	}
	return sum
}
