// Fixture: the cross-package false-positive guard. Loaded under an
// import path outside the deterministic set (e.g. internal/workload), so
// nothing here may be flagged.
package free

func unflagged(m map[string]int) int {
	sum := 0
	for k, v := range m {
		sum += len(k) + v
	}
	return sum
}
