// Fixture: internal/measure's stream pump (stream.go) is exempt — its
// single publisher goroutine is the tested streaming plumbing.
package measure

func pump(out chan int, n int) {
	go func() {
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
}
