// Fixture: cross-package guard. Loaded under cloudia/internal/par (or any
// out-of-scope path): the combinator library itself spawns freely.
package free

import "sync"

func fanOut(fns []func()) {
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(f func()) {
			defer wg.Done()
			f()
		}(fn)
	}
	wg.Wait()
}
