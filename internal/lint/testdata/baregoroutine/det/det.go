// Fixture: raw goroutines and WaitGroup fan-out in a deterministic
// package: every spawn and every WaitGroup declaration must be flagged
// unless annotated with a reasoned suppression.
package det

import "sync"

func spawns(n int) {
	done := make(chan struct{})
	go func() { // want "raw go statement"
		close(done)
	}()
	<-done

	var wg sync.WaitGroup // want "sync.WaitGroup fan-out"
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() { // want "raw go statement"
			defer wg.Done()
		}()
	}
	wg.Wait()
}

func byPointer(wg *sync.WaitGroup) { // want "sync.WaitGroup fan-out"
	wg.Wait()
}

func annotated(out []int) {
	//cloudia:nondet-ok each goroutine writes a disjoint slot; the join is a plain barrier
	var wg sync.WaitGroup
	for i := range out {
		wg.Add(1)
		//cloudia:nondet-ok writes only out[i], reduced in index order after the join
		go func(i int) {
			defer wg.Done()
			out[i] = i
		}(i)
	}
	wg.Wait()
}
