// Fixture: the worker-dispatch exemption. This file is named serve.go and
// the package is loaded as cloudia/internal/serve, so its spawns are the
// tested dispatch plumbing and must not be flagged.
package serve

func dispatch(jobs chan func(), workers int) {
	for i := 0; i < workers; i++ {
		go func() {
			for j := range jobs {
				j()
			}
		}()
	}
}
