// Fixture: the serve exemption is per-file, not per-package — a goroutine
// in any other file of internal/serve is still flagged.
package serve

func elsewhere(done chan struct{}) {
	go func() { // want "raw go statement"
		close(done)
	}()
	<-done
}
