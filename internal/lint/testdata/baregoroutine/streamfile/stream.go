// Fixture: the stream.go exemption is bound to internal/measure — a file
// with the same name in any other deterministic package is still flagged.
package streamfile

func pump(out chan int, n int) {
	go func() { // want "raw go statement"
		defer close(out)
		for i := 0; i < n; i++ {
			out <- i
		}
	}()
}
