// Fixture: cross-package guard. encoding/binary use outside internal/wal
// (here: a network frame writer in some other package) is not walrecord's
// business.
package free

import "encoding/binary"

const kindPacket byte = 7

func header(v uint32) []byte {
	buf := make([]byte, 4)
	binary.BigEndian.PutUint32(buf, v)
	return buf
}
