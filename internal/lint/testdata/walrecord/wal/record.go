// Fixture: the WAL codec shape. Payload encoders, append helpers, and the
// frame writer are the only places encoding/binary writes may live.
package wal

import (
	"encoding/binary"
	"hash/crc32"
	"math"
)

const (
	kindEpoch  byte = 1
	kindAdvice byte = 2
	kindOrphan byte = 3 // want "kind constant kindOrphan has no decode case"
)

type record struct {
	epoch int
	cost  float64
}

func appendUint(buf []byte, v int) []byte {
	return binary.AppendUvarint(buf, uint64(v))
}

func appendF64(buf []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
}

func (r *record) appendPayload(buf []byte) []byte {
	buf = appendUint(buf, r.epoch)
	return appendF64(buf, r.cost)
}

func frame(rec *record, buf []byte) []byte {
	buf = append(buf[:0], 0, 0, 0, 0, 0, 0, 0, 0)
	buf = rec.appendPayload(buf)
	binary.LittleEndian.PutUint32(buf, uint32(len(buf)-8))
	binary.LittleEndian.PutUint32(buf[4:], crc32.ChecksumIEEE(buf[8:]))
	return buf
}

func decode(kind byte, payload []byte) *record {
	switch kind {
	case kindEpoch, kindAdvice:
		v, n := binary.Uvarint(payload) // reads are not writes: unflagged
		cost := binary.LittleEndian.Uint64(payload[n:])
		return &record{epoch: int(v), cost: math.Float64frombits(cost)}
	}
	return nil
}
