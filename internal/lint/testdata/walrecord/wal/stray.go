// Fixture: binary writes outside the codec functions are second encoding
// paths and must be flagged (or carry a reasoned suppression).
package wal

import (
	"bytes"
	"encoding/binary"
)

func sidechannel(v uint32) []byte {
	buf := make([]byte, 4)
	binary.LittleEndian.PutUint32(buf, v) // want "binary.PutUint32 outside the framed-record codec"
	return buf
}

func reflected(v uint64) []byte {
	var b bytes.Buffer
	_ = binary.Write(&b, binary.LittleEndian, v) // want "binary.Write outside the framed-record codec"
	return b.Bytes()
}

func annotatedScratch(v uint64) []byte {
	//cloudia:nondet-ok test-only scratch encoding, never reaches a log segment
	return binary.LittleEndian.AppendUint64(nil, v)
}

// lowercase "kinds" and non-kind constants are not record kinds.
const kindly = "adverb"

const notAKind byte = 9

// A package-level write is outside every function, let alone the codec.
var sentinel = binary.LittleEndian.AppendUint16(nil, 0xCDCD) // want "binary.AppendUint16 outside the framed-record codec"
