// Fixture: cross-package guard. The serving layer (out of wallclock's
// scope) measures queue latency with real time; none of this is flagged.
package free

import (
	"math/rand"
	"time"
)

func queueLatency(enqueued time.Time) time.Duration {
	return time.Since(enqueued)
}

func jitter(n int) int {
	return rand.Intn(n)
}
