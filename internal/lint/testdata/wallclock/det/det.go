// Fixture: wall-clock reads and global randomness in a search-path
// package (loaded as a cloudia/internal/solver subpackage).
package det

import (
	"math/rand"
	"time"

	clock "time"
)

func wallClock() time.Duration {
	start := time.Now()     // want "time.Now in a search path"
	d := time.Since(start)  // want "time.Since in a search path"
	d += clock.Since(start) // want "time.Since in a search path"
	return d
}

func aliasedNow() time.Time {
	return clock.Now() // want "time.Now in a search path"
}

func globalRand(n int) int {
	v := rand.Intn(n)                  // want "global rand.Intn"
	f := rand.Float64()                // want "global rand.Float64"
	p := rand.Perm(n)                  // want "global rand.Perm"
	rand.Shuffle(n, func(i, j int) {}) // want "global rand.Shuffle"
	w := rand.Intn(1 + rand.Intn(n))   // want "global rand.Intn" "global rand.Intn"
	return v + int(f) + p[0] + w
}

func seededRand(seed int64, n int) int {
	rng := rand.New(rand.NewSource(seed))
	return rng.Intn(n) + int(rng.Float64())
}

func notTheClock(t time.Time) (time.Duration, time.Month) {
	// Methods and non-clock time functions are fine: only Now/Since read
	// the machine's clock.
	d := time.Duration(3) * time.Second
	return d, t.Month()
}

func annotated() time.Time {
	//cloudia:nondet-ok this fixture stands in for the Clock implementation
	return time.Now()
}
