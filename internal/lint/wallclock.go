package lint

import (
	"go/ast"
	"go/types"
)

// WallClock flags wall-clock reads (time.Now, time.Since) and the global
// math/rand source in the solver, cluster, and sketch search paths. Search
// budgets there must flow through the machine-independent solver.Clock —
// which meters node counts deterministically and confines wall time to one
// audited implementation — and randomness through an explicitly seeded
// *rand.Rand, so the same seed replays the same search on any machine.
// A time.Now in a pruning heuristic or a global rand.Intn in a tie-break
// makes advice depend on machine speed and process-global state, which is
// precisely what the bit-equality suites exist to forbid.
//
// Seeded construction (rand.New, rand.NewSource, rand.NewZipf) is allowed;
// only the package-level convenience functions that consult the global
// source are flagged. The Clock implementation's own time.Now/time.Since
// calls carry //cloudia:nondet-ok annotations — they are the single place
// wall time is allowed to enter.
var WallClock = &Analyzer{
	Name: "wallclock",
	Doc:  "flags time.Now/time.Since and global math/rand in solver/cluster/sketch search paths",
	Scope: scopePaths(
		"cloudia/internal/cluster",
		"cloudia/internal/sketch",
		"cloudia/internal/solver",
	),
	Run: runWallClock,
}

// globalRandFuncs are the math/rand package-level functions backed by the
// process-global source. Constructors (New, NewSource, NewZipf) are not
// listed: they are how seeded, replayable randomness is built.
var globalRandFuncs = map[string]bool{
	"ExpFloat64": true, "Float32": true, "Float64": true,
	"Int": true, "Int31": true, "Int31n": true, "Int63": true,
	"Int63n": true, "IntN": true, "Intn": true, "N": true,
	"NormFloat64": true, "Perm": true, "Read": true, "Seed": true,
	"Shuffle": true, "Uint32": true, "Uint64": true,
}

func runWallClock(pass *Pass) {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok {
				return true
			}
			fn, ok := pass.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				// Methods — rng.Intn on a seeded *rand.Rand, d.Seconds on a
				// Duration — are exactly the replayable path; only the
				// package-level globals are hazards.
				return true
			}
			switch fn.Pkg().Path() {
			case "time":
				if fn.Name() == "Now" || fn.Name() == "Since" {
					pass.Report(id.Pos(),
						"%s.%s in a search path: budgets go through the machine-independent solver.Clock; annotate with %s <reason> only inside the Clock implementation",
						fn.Pkg().Name(), fn.Name(), SuppressionMarker)
				}
			case "math/rand", "math/rand/v2":
				if globalRandFuncs[fn.Name()] {
					pass.Report(id.Pos(),
						"global %s.%s: search randomness must come from an explicitly seeded *rand.Rand so runs replay bit-equal",
						fn.Pkg().Name(), fn.Name())
				}
			}
			return true
		})
	}
}
