package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"path/filepath"
	"runtime"
	"strings"
	"sync"
)

// Unit is one package's worth of lint input: file names on disk plus the
// importer that resolves its dependencies. Both drivers (the vet-protocol
// unitchecker in cmd/cloudia-vet and the test harness) reduce their input
// to a Unit and call Check.
type Unit struct {
	// ImportPath is the package's import path, used for analyzer scoping.
	ImportPath string
	// GoFiles are absolute paths of the package's Go files. _test.go files
	// are dropped before parsing: the determinism rules bind production
	// code only.
	GoFiles []string
	// Importer resolves the package's imports during type checking.
	Importer types.Importer
	// GoVersion, when non-empty, pins the language version ("go1.23").
	GoVersion string
}

// Check parses and type-checks the unit, then runs the given analyzers,
// returning their diagnostics. Type errors are returned as an error: the
// suite's findings are only meaningful on code the compiler accepts.
func Check(u Unit, analyzers []*Analyzer) ([]Diagnostic, error) {
	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range u.GoFiles {
		if strings.HasSuffix(filepath.Base(name), "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, nil
	}
	conf := types.Config{
		Importer:  u.Importer,
		GoVersion: u.GoVersion,
		Sizes:     types.SizesFor("gc", runtime.GOARCH),
		Error:     func(error) {}, // collect everything, fail once below
	}
	info := &types.Info{
		Types: make(map[ast.Expr]types.TypeAndValue),
		Uses:  make(map[*ast.Ident]types.Object),
		Defs:  make(map[*ast.Ident]types.Object),
	}
	pkg, err := conf.Check(u.ImportPath, fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("typecheck %s: %w", u.ImportPath, err)
	}
	return RunUnit(fset, files, pkg, info, analyzers), nil
}

// sourceImporter type-checks dependencies from source via GOROOT. It backs
// the test harness, where fixture packages import only the standard
// library; the vet driver instead reads the export data the go command
// hands it. One shared instance amortizes the stdlib type-checking across
// fixtures.
var (
	sourceImporterOnce sync.Once
	sourceImporterInst types.Importer
)

// SourceImporter returns the process-wide source-based importer.
func SourceImporter() types.Importer {
	sourceImporterOnce.Do(func() {
		sourceImporterInst = importer.ForCompiler(token.NewFileSet(), "source", nil)
	})
	return sourceImporterInst
}
