package lint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cloudia/internal/lint"
)

func TestIsDeterministic(t *testing.T) {
	cases := []struct {
		path string
		want bool
	}{
		{"cloudia/internal/core", true},
		{"cloudia/internal/solver", true},
		{"cloudia/internal/solver/cp", true},
		{"cloudia/internal/wal", true},
		{"cloudia/internal/serve", true},
		{"cloudia/internal/advisor", true},
		{"cloudia/internal/measure", true},
		{"cloudia/internal/sketch", true},
		{"cloudia/internal/cluster", true},
		{"cloudia/internal/par", false},
		{"cloudia/internal/workload", false},
		{"cloudia/internal/servemetrics", false}, // prefix lookalike
		{"cloudia/internal", false},
		{"cloudia/cmd/cloudia", false},
		{"fmt", false},
		{"", false},
	}
	for _, c := range cases {
		if got := lint.IsDeterministic(c.path); got != c.want {
			t.Errorf("IsDeterministic(%q) = %v, want %v", c.path, got, c.want)
		}
	}
}

func TestAllAnalyzersAreWellFormed(t *testing.T) {
	all := lint.All()
	if len(all) != 4 {
		t.Fatalf("expected the four-analyzer suite, got %d", len(all))
	}
	seen := map[string]bool{}
	for _, a := range all {
		if a.Name == "" || a.Doc == "" || a.Run == nil || a.Scope == nil {
			t.Errorf("analyzer %+v is missing a required field", a)
		}
		if seen[a.Name] {
			t.Errorf("duplicate analyzer name %q", a.Name)
		}
		seen[a.Name] = true
	}
	for _, name := range []string{"maprange", "baregoroutine", "wallclock", "walrecord"} {
		if !seen[name] {
			t.Errorf("suite is missing analyzer %q", name)
		}
	}
}

// checkSource writes src as one fixture file and runs the full suite over
// it under the given import path.
func checkSource(t *testing.T, importPath, src string) ([]lint.Diagnostic, error) {
	t.Helper()
	dir := t.TempDir()
	file := filepath.Join(dir, "fixture.go")
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return lint.Check(lint.Unit{
		ImportPath: importPath,
		GoFiles:    []string{file},
		Importer:   lint.SourceImporter(),
	}, lint.All())
}

func TestCheckReportsTypeErrors(t *testing.T) {
	_, err := lint.Check(lint.Unit{
		ImportPath: "cloudia/internal/core",
		GoFiles:    []string{writeTemp(t, "broken.go", "package core\n\nvar x undefinedType\n")},
		Importer:   lint.SourceImporter(),
	}, lint.All())
	if err == nil || !strings.Contains(err.Error(), "typecheck") {
		t.Fatalf("expected a typecheck error, got %v", err)
	}
}

func TestCheckReportsParseErrors(t *testing.T) {
	_, err := lint.Check(lint.Unit{
		ImportPath: "cloudia/internal/core",
		GoFiles:    []string{writeTemp(t, "broken.go", "package core\n\nfunc {\n")},
		Importer:   lint.SourceImporter(),
	}, lint.All())
	if err == nil {
		t.Fatal("expected a parse error, got none")
	}
}

func TestCheckSkipsTestOnlyUnits(t *testing.T) {
	diags, err := lint.Check(lint.Unit{
		ImportPath: "cloudia/internal/core",
		GoFiles:    []string{writeTemp(t, "only_test.go", "package core\n\nfunc f(m map[int]int) {\n\tfor k := range m {\n\t\t_ = k\n\t}\n}\n")},
		Importer:   lint.SourceImporter(),
	}, lint.All())
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 0 {
		t.Fatalf("a unit of only _test.go files must produce nothing, got %v", diags)
	}
}

func TestDiagnosticString(t *testing.T) {
	diags, err := checkSource(t, "cloudia/internal/core",
		"package core\n\nfunc f(m map[int]int) int {\n\ts := 0\n\tfor k := range m {\n\t\ts += k\n\t}\n\treturn s\n}\n")
	if err != nil {
		t.Fatal(err)
	}
	if len(diags) != 1 {
		t.Fatalf("expected one diagnostic, got %v", diags)
	}
	s := diags[0].String()
	if !strings.Contains(s, "fixture.go:5:2:") || !strings.HasSuffix(s, "[maprange]") {
		t.Errorf("diagnostic string %q missing position prefix or analyzer suffix", s)
	}
}

// TestDiagnosticOrderIsDeterministic runs the suite over a fixture whose
// violations interleave analyzers and lines, twice, asserting identical
// ordered output — the lint tool obeys its own rules.
func TestDiagnosticOrderIsDeterministic(t *testing.T) {
	src := "package solver\n\nimport \"time\"\n\nfunc f(m map[int]int) {\n\tgo func() { _ = time.Now() }()\n\tfor k := range m {\n\t\t_ = k\n\t}\n}\n"
	first, err := checkSource(t, "cloudia/internal/solver", src)
	if err != nil {
		t.Fatal(err)
	}
	if len(first) != 3 {
		t.Fatalf("expected baregoroutine+wallclock+maprange, got %v", first)
	}
	// Same line, different columns: the go statement precedes time.Now.
	if first[0].Analyzer != "baregoroutine" || first[1].Analyzer != "wallclock" || first[2].Analyzer != "maprange" {
		t.Errorf("diagnostics out of positional order: %v", first)
	}
	second, err := checkSource(t, "cloudia/internal/solver", src)
	if err != nil {
		t.Fatal(err)
	}
	for i := range first {
		if first[i].Message != second[i].Message || first[i].Pos.Line != second[i].Pos.Line {
			t.Fatalf("diagnostic order changed between runs:\n%v\n%v", first, second)
		}
	}
}

func writeTemp(t *testing.T, name, src string) string {
	t.Helper()
	file := filepath.Join(t.TempDir(), name)
	if err := os.WriteFile(file, []byte(src), 0o666); err != nil {
		t.Fatal(err)
	}
	return file
}
