package lint

import (
	"go/ast"
	"go/types"
	"path/filepath"
)

// BareGoroutine flags raw `go` statements and sync.WaitGroup fan-out in
// the deterministic packages. All data parallelism there is supposed to
// flow through internal/par's For/Do combinators, whose bit-equality
// across worker counts is pinned by dedicated test suites — an ad-hoc
// goroutine with its own reduction is exactly the code that passes review
// and then breaks fingerprint equality under a different GOMAXPROCS.
//
// Structured exceptions that are themselves the tested concurrency
// plumbing are exempt by file: internal/serve's worker dispatch
// (serve.go) and internal/measure's stream pump (stream.go).
// internal/par is outside the deterministic scope entirely. Anything else
// needs a //cloudia:nondet-ok <reason> explaining how its reduction stays
// bit-equal (deterministic post-barrier selection, disjoint outputs, ...).
var BareGoroutine = &Analyzer{
	Name:  "baregoroutine",
	Doc:   "flags raw go statements and sync.WaitGroup fan-out outside the par combinators",
	Scope: IsDeterministic,
	Run:   runBareGoroutine,
}

// bareGoroutineExemptFiles lists, per package, the files whose goroutine
// plumbing is itself the tested concurrency layer.
var bareGoroutineExemptFiles = map[string]map[string]bool{
	"cloudia/internal/serve":   {"serve.go": true},
	"cloudia/internal/measure": {"stream.go": true},
}

func runBareGoroutine(pass *Pass) {
	exempt := bareGoroutineExemptFiles[pass.Pkg.Path()]
	for _, f := range pass.Files {
		if exempt[filepath.Base(pass.Fset.Position(f.Pos()).Filename)] {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.GoStmt:
				pass.Report(n.Go,
					"raw go statement outside internal/par: route data parallelism through par.For/par.Do (bit-equality tested across worker counts), or annotate with %s <why the reduction is deterministic>",
					SuppressionMarker)
			case *ast.Ident:
				if n.Name == "_" {
					return true
				}
				obj := pass.Info.Defs[n]
				if obj == nil {
					return true
				}
				if v, ok := obj.(*types.Var); ok && isWaitGroup(v.Type()) {
					pass.Report(n.Pos(),
						"sync.WaitGroup fan-out outside internal/par: use par.For/par.Do, or annotate with %s <why the reduction is deterministic>",
						SuppressionMarker)
				}
			}
			return true
		})
	}
}

// isWaitGroup reports whether t is sync.WaitGroup or *sync.WaitGroup.
func isWaitGroup(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" && obj.Name() == "WaitGroup"
}
