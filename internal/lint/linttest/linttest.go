// Package linttest is the golden-fixture harness for the determinism lint
// suite — the same contract as x/tools' analysistest, rebuilt on the
// standard library. A fixture directory holds one Go package; expectations
// are `// want "regexp"` comments on the lines where diagnostics must
// land (use a `/* want "..." */` block comment when the line already ends
// in a line comment, e.g. next to a suppression marker). Every expected
// diagnostic must appear and every reported diagnostic must be expected.
//
// Fixtures are type-checked against the standard library from source, so
// they may import sync/time/math/rand/encoding/binary freely but nothing
// from this module. The package import path is chosen by the caller —
// that is how scope behavior (deterministic vs exempt packages) is put
// under test without the fixture living at the real path.
package linttest

import (
	"fmt"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"testing"

	"cloudia/internal/lint"
)

// wantRe matches the expectation marker and captures the quoted patterns
// that follow it.
var wantRe = regexp.MustCompile(`(?://|/\*)\s*want((?:\s+"(?:[^"\\]|\\.)*")+)`)

var quotedRe = regexp.MustCompile(`"(?:[^"\\]|\\.)*"`)

// expectation is one `want` pattern, tracked until a diagnostic claims it.
type expectation struct {
	file    string
	line    int
	pattern *regexp.Regexp
	matched bool
}

// Run analyzes the fixture package in dir under the given import path and
// compares the diagnostics against the fixture's want comments.
func Run(t *testing.T, a *lint.Analyzer, dir, importPath string) {
	t.Helper()
	files, err := fixtureFiles(dir)
	if err != nil {
		t.Fatal(err)
	}
	wants, err := parseWants(files)
	if err != nil {
		t.Fatal(err)
	}
	diags, err := lint.Check(lint.Unit{
		ImportPath: importPath,
		GoFiles:    files,
		Importer:   lint.SourceImporter(),
	}, []*lint.Analyzer{a})
	if err != nil {
		t.Fatalf("checking %s as %s: %v", dir, importPath, err)
	}
	for _, d := range diags {
		if !claim(wants, d.Pos.Filename, d.Pos.Line, d.Message) {
			t.Errorf("unexpected diagnostic:\n  %s", d)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.pattern)
		}
	}
}

// claim marks the first unmatched expectation on the diagnostic's line
// whose pattern matches the message.
func claim(wants []*expectation, file string, line int, message string) bool {
	for _, w := range wants {
		if !w.matched && w.file == file && w.line == line && w.pattern.MatchString(message) {
			w.matched = true
			return true
		}
	}
	return false
}

// fixtureFiles lists the package's .go files in sorted order.
func fixtureFiles(dir string) ([]string, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []string
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			files = append(files, filepath.Join(dir, e.Name()))
		}
	}
	sort.Strings(files)
	if len(files) == 0 {
		return nil, fmt.Errorf("linttest: no .go files in %s", dir)
	}
	return files, nil
}

// parseWants scans every fixture line for want markers.
func parseWants(files []string) ([]*expectation, error) {
	var wants []*expectation
	for _, file := range files {
		data, err := os.ReadFile(file)
		if err != nil {
			return nil, err
		}
		for i, text := range strings.Split(string(data), "\n") {
			m := wantRe.FindStringSubmatch(text)
			if m == nil {
				continue
			}
			for _, q := range quotedRe.FindAllString(m[1], -1) {
				pat, err := strconv.Unquote(q)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want pattern %s: %v", file, i+1, q, err)
				}
				re, err := regexp.Compile(pat)
				if err != nil {
					return nil, fmt.Errorf("%s:%d: bad want regexp %q: %v", file, i+1, pat, err)
				}
				wants = append(wants, &expectation{file: file, line: i + 1, pattern: re})
			}
		}
	}
	return wants, nil
}
