// Package lint is the repo's determinism lint suite: a set of static
// analyzers that machine-check the bit-equality invariants every PR since
// the streaming epoch work has staked its correctness story on. Prep
// artifacts, WAL replay fingerprints, sketch merges, and portfolio
// tie-breaks are all required to be bit-identical across worker counts,
// restarts, and steal orderings — and a single stray `range` over a map or
// an ad-hoc goroutine spawn can silently break that. The analyzers here
// turn those invariants from test-suite folklore into build-time checks,
// run over the whole repo by `cmd/cloudia-vet` via `go vet -vettool` (see
// `make lint`).
//
// The framework deliberately mirrors golang.org/x/tools/go/analysis
// (Analyzer / Pass / Diagnostic) but is built on the standard library
// only, because the module has no external dependencies: a Pass carries
// the parsed files and type information for one package, analyzers walk
// the AST and report, and the driver owns loading and output.
//
// Suppressions: a finding is silenced by the comment
//
//	//cloudia:nondet-ok <reason>
//
// on the flagged line or the line directly above it. The reason is
// mandatory — a bare marker still reports, asking for one — so every
// deliberate exception documents why it cannot break determinism.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// SuppressionMarker is the comment prefix that silences a finding when
// followed by a non-empty reason.
const SuppressionMarker = "//cloudia:nondet-ok"

// An Analyzer is one determinism check. Unlike x/tools analyzers there are
// no facts or dependencies between analyzers: every check here is local to
// one package's syntax and types.
type Analyzer struct {
	// Name identifies the analyzer in diagnostics, e.g. "maprange".
	Name string
	// Doc is a one-paragraph description shown by `cloudia-vet -help`.
	Doc string
	// Scope reports whether the analyzer applies to the package with the
	// given import path. Nil means every package.
	Scope func(pkgPath string) bool
	// Run walks the pass and reports findings via pass.Report.
	Run func(pass *Pass)
}

// A Diagnostic is one reported finding, already positioned and filtered
// through the suppression rules.
type Diagnostic struct {
	Analyzer string
	Pos      token.Position
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s: %s [%s]", d.Pos, d.Message, d.Analyzer)
}

// A Pass carries one package's worth of parsed, type-checked input to one
// analyzer's Run.
type Pass struct {
	Fset *token.FileSet
	// Files are the package's non-test files. The driver excludes _test.go
	// files before parsing: test code may use maps, goroutines, and wall
	// clocks freely.
	Files []*ast.File
	Pkg   *types.Package
	Info  *types.Info

	analyzer     *Analyzer
	suppressions map[string]map[int]*suppression
	diags        *[]Diagnostic
}

// suppression is one //cloudia:nondet-ok comment found in a file.
type suppression struct {
	reason   string
	pos      token.Position
	reported bool // a reason-less marker reports once, not per finding
}

// Report files a finding at pos unless a suppression with a reason covers
// that line (same line as the finding or the line directly above).
func (p *Pass) Report(pos token.Pos, format string, args ...any) {
	position := p.Fset.Position(pos)
	if s := p.suppressionFor(position); s != nil {
		if s.reason != "" {
			return
		}
		if !s.reported {
			s.reported = true
			*p.diags = append(*p.diags, Diagnostic{
				Analyzer: p.analyzer.Name,
				Pos:      s.pos,
				Message:  SuppressionMarker + " needs a reason to suppress a finding: " + SuppressionMarker + " <why this cannot break bit-equality>",
			})
		}
		// The bare marker shows intent but earns nothing: fall through and
		// report the underlying finding too.
	}
	*p.diags = append(*p.diags, Diagnostic{
		Analyzer: p.analyzer.Name,
		Pos:      position,
		Message:  fmt.Sprintf(format, args...),
	})
}

func (p *Pass) suppressionFor(pos token.Position) *suppression {
	lines := p.suppressions[pos.Filename]
	if s := lines[pos.Line]; s != nil {
		return s
	}
	return lines[pos.Line-1]
}

// scanSuppressions indexes every //cloudia:nondet-ok comment by file and
// line so Report can consult them in O(1).
func scanSuppressions(fset *token.FileSet, files []*ast.File) map[string]map[int]*suppression {
	out := make(map[string]map[int]*suppression)
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if !strings.HasPrefix(c.Text, SuppressionMarker) {
					continue
				}
				rest := c.Text[len(SuppressionMarker):]
				if rest != "" && rest[0] != ' ' && rest[0] != '\t' {
					continue // e.g. //cloudia:nondet-okay, not ours
				}
				pos := fset.Position(c.Pos())
				byLine := out[pos.Filename]
				if byLine == nil {
					byLine = make(map[int]*suppression)
					out[pos.Filename] = byLine
				}
				byLine[pos.Line] = &suppression{reason: strings.TrimSpace(rest), pos: pos}
			}
		}
	}
	return out
}

// RunUnit runs every applicable analyzer over one type-checked package and
// returns the surviving diagnostics sorted by position (then analyzer
// name), so output order is itself deterministic.
func RunUnit(fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info, analyzers []*Analyzer) []Diagnostic {
	var diags []Diagnostic
	supp := scanSuppressions(fset, files)
	for _, a := range analyzers {
		if a.Scope != nil && !a.Scope(pkg.Path()) {
			continue
		}
		a.Run(&Pass{
			Fset:         fset,
			Files:        files,
			Pkg:          pkg,
			Info:         info,
			analyzer:     a,
			suppressions: supp,
			diags:        &diags,
		})
	}
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		return a.Analyzer < b.Analyzer
	})
	return diags
}

// deterministicPkgs are the packages whose outputs must be bit-identical
// across runs, worker counts, and restarts: the solver pipeline from cost
// matrices through advice, the WAL that replays it, and the serving layer
// that caches it. Subpackages (e.g. solver/cp) inherit the classification.
var deterministicPkgs = []string{
	"cloudia/internal/advisor",
	"cloudia/internal/cluster",
	"cloudia/internal/core",
	"cloudia/internal/measure",
	"cloudia/internal/serve",
	"cloudia/internal/sketch",
	"cloudia/internal/solver",
	"cloudia/internal/wal",
}

// IsDeterministic reports whether pkgPath is one of the bit-equality
// packages (or a subpackage of one).
func IsDeterministic(pkgPath string) bool {
	for _, p := range deterministicPkgs {
		if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
			return true
		}
	}
	return false
}

// scopePaths returns a Scope matching exactly the given package paths and
// their subpackages.
func scopePaths(paths ...string) func(string) bool {
	return func(pkgPath string) bool {
		for _, p := range paths {
			if pkgPath == p || strings.HasPrefix(pkgPath, p+"/") {
				return true
			}
		}
		return false
	}
}

// funcFor returns the innermost function declaration enclosing pos in f,
// or nil for package-level positions.
func funcFor(f *ast.File, pos token.Pos) *ast.FuncDecl {
	for _, d := range f.Decls {
		if fd, ok := d.(*ast.FuncDecl); ok && fd.Pos() <= pos && pos < fd.End() {
			return fd
		}
	}
	return nil
}

// All returns the full determinism suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{MapRange, BareGoroutine, WallClock, WALRecord}
}
