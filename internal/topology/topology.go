// Package topology models the physical network of a public-cloud datacenter:
// hosts grouped into racks, racks into aggregation groups, all joined by a
// core layer. It is the substrate substituting for Amazon EC2 (and the GCE /
// Rackspace clouds of Appendix 3) in this reproduction.
//
// The model is calibrated to reproduce the two empirical properties ClouDiA
// relies on:
//
//  1. Latency heterogeneity (Fig. 1): pairwise mean RTTs spread roughly
//     0.2–1.4 ms for an EC2-like profile, with ~10% of pairs above 0.7 ms
//     and ~10% below 0.4 ms, driven by how many switch layers a pair
//     crosses plus stable per-pair offsets (path asymmetries, oversubscribed
//     uplinks).
//  2. Mean-latency stability (Fig. 2): each pair's mean RTT holds steady
//     over simulated days up to small drift, while individual samples jitter
//     (virtualization noise, occasional spikes).
//
// Pairwise mean RTT is a pure function of (seed, host pair), computed by
// hashing — no O(hosts^2) storage — so large datacenters are cheap.
package topology

import (
	"fmt"
	"math"
)

// Profile holds the latency calibration for one cloud provider. All
// latencies are round-trip milliseconds for a 1 KB message, matching the
// paper's probe methodology.
type Profile struct {
	Name string

	// Shape of the datacenter.
	Racks        int // total racks
	HostsPerRack int // physical hosts per rack
	RacksPerAgg  int // racks per aggregation group
	SlotsPerHost int // VM slots per physical host

	// Base RTT by the highest layer a pair's path crosses.
	SameHostRTT float64 // two VMs on one physical host (hypervisor path)
	RackBase    float64 // same rack (through the ToR switch)
	AggBase     float64 // same aggregation group
	CoreBase    float64 // across the core

	// Stable per-pair spread added to the base, |N(0, sigma)| within
	// rack/agg and Exp(scale) across the core (heavy tail from
	// oversubscription).
	RackSpread float64
	AggSpread  float64
	CoreSpread float64

	// Per-host badness: with probability HostBadProb a host is "badly
	// connected" — an oversubscribed uplink or noisy-neighbour hypervisor —
	// and every cross-host link touching it pays HostPenaltyBase plus an
	// Exp(HostPenaltySpread) stable extra. This instance-level
	// heterogeneity (Farley et al., SOCC'12, cited by the paper) is what
	// makes over-allocating and discarding badly connected instances pay
	// off (Fig. 13).
	HostBadProb       float64
	HostPenaltyBase   float64
	HostPenaltySpread float64

	// Per-message jitter: every sample adds Exp(JitterScale), and with
	// probability SpikeProb adds a further Exp(SpikeScale) (hypervisor
	// scheduling spike).
	JitterScale float64
	SpikeProb   float64
	SpikeScale  float64

	// Slow drift of the per-pair mean over time: a sinusoid of amplitude
	// DriftAmp (ms) and period DriftPeriodHours, phase-shifted per pair.
	// Small relative to heterogeneity, so means remain "stable" in the
	// paper's sense.
	DriftAmp         float64
	DriftPeriodHours float64

	// RegimeHours, when positive, makes the network non-stationary at long
	// timescales: every RegimeHours the stable per-pair offsets and the set
	// of badly connected hosts are re-drawn (prior tenants leave, new noisy
	// neighbours arrive, traffic shifts). Zero — the default for all
	// built-in profiles — keeps the paper's stable-mean regime. The switch
	// exists for the Sect. 2.2.1 re-deployment extension: under changing
	// conditions the optimal plan changes over time and ClouDiA must
	// iterate measure -> search -> re-deploy.
	RegimeHours float64
}

// EC2Profile returns a profile calibrated against the paper's EC2 m1.large
// measurements (Figs. 1 and 2).
func EC2Profile() Profile {
	return Profile{
		Name:              "ec2",
		Racks:             64,
		HostsPerRack:      20,
		RacksPerAgg:       12,
		SlotsPerHost:      4,
		SameHostRTT:       0.25,
		RackBase:          0.30,
		AggBase:           0.36,
		CoreBase:          0.42,
		RackSpread:        0.04,
		AggSpread:         0.05,
		CoreSpread:        0.05,
		HostBadProb:       0.08,
		HostPenaltyBase:   0.20,
		HostPenaltySpread: 0.15,
		JitterScale:       0.04,
		SpikeProb:         0.002,
		SpikeScale:        0.6,
		DriftAmp:          0.015,
		DriftPeriodHours:  31,
	}
}

// GCEProfile returns a profile calibrated against the paper's Google Compute
// Engine n1-standard-1 measurements (Figs. 18 and 19): narrower
// heterogeneity than EC2 (5% of pairs below 0.32 ms, top 5% above 0.5 ms)
// but the same stability.
func GCEProfile() Profile {
	return Profile{
		Name:              "gce",
		Racks:             48,
		HostsPerRack:      20,
		RacksPerAgg:       8,
		SlotsPerHost:      4,
		SameHostRTT:       0.22,
		RackBase:          0.28,
		AggBase:           0.34,
		CoreBase:          0.38,
		RackSpread:        0.03,
		AggSpread:         0.04,
		CoreSpread:        0.035,
		HostBadProb:       0.08,
		HostPenaltyBase:   0.08,
		HostPenaltySpread: 0.05,
		JitterScale:       0.03,
		SpikeProb:         0.0015,
		SpikeScale:        0.5,
		DriftAmp:          0.012,
		DriftPeriodHours:  23,
	}
}

// RackspaceProfile returns a profile calibrated against the paper's
// Rackspace Cloud Server performance 1-1 measurements (Figs. 20 and 21): 5%
// of pairs below 0.24 ms, top 5% above 0.38 ms.
func RackspaceProfile() Profile {
	return Profile{
		Name:              "rackspace",
		Racks:             40,
		HostsPerRack:      16,
		RacksPerAgg:       8,
		SlotsPerHost:      4,
		SameHostRTT:       0.18,
		RackBase:          0.21,
		AggBase:           0.26,
		CoreBase:          0.29,
		RackSpread:        0.025,
		AggSpread:         0.035,
		CoreSpread:        0.03,
		HostBadProb:       0.08,
		HostPenaltyBase:   0.06,
		HostPenaltySpread: 0.05,
		JitterScale:       0.025,
		SpikeProb:         0.0015,
		SpikeScale:        0.45,
		DriftAmp:          0.01,
		DriftPeriodHours:  19,
	}
}

// Validate rejects profiles with non-positive shape parameters or a latency
// ordering that violates the layer hierarchy.
func (p Profile) Validate() error {
	if p.Racks <= 0 || p.HostsPerRack <= 0 || p.RacksPerAgg <= 0 || p.SlotsPerHost <= 0 {
		return fmt.Errorf("topology: non-positive shape in profile %q", p.Name)
	}
	if !(p.SameHostRTT < p.RackBase && p.RackBase < p.AggBase && p.AggBase < p.CoreBase) {
		return fmt.Errorf("topology: base latencies must increase with layer in profile %q", p.Name)
	}
	if p.RackSpread < 0 || p.AggSpread < 0 || p.CoreSpread < 0 ||
		p.JitterScale < 0 || p.SpikeScale < 0 || p.DriftAmp < 0 ||
		p.HostPenaltyBase < 0 || p.HostPenaltySpread < 0 {
		return fmt.Errorf("topology: negative spread in profile %q", p.Name)
	}
	if p.SpikeProb < 0 || p.SpikeProb > 1 {
		return fmt.Errorf("topology: spike probability %g out of range", p.SpikeProb)
	}
	if p.HostBadProb < 0 || p.HostBadProb > 1 {
		return fmt.Errorf("topology: host badness probability %g out of range", p.HostBadProb)
	}
	if p.DriftPeriodHours <= 0 {
		return fmt.Errorf("topology: non-positive drift period in profile %q", p.Name)
	}
	return nil
}

// Datacenter is one instantiation of a profile with a fixed seed. Host ids
// run 0..NumHosts()-1, assigned rack-by-rack.
type Datacenter struct {
	prof Profile
	seed int64
	// ipBlock[rack] is the /24 block index a rack's hosts draw IPs from.
	// Blocks are deliberately aliased across racks (two racks share each
	// block) so that IP distance is a poor latency predictor, reproducing
	// the Appendix 2 negative result.
	ipBlock []int
}

// New builds a datacenter from a profile and a seed. The seed fixes the
// per-pair stable offsets, drift phases, and IP block assignment.
func New(prof Profile, seed int64) (*Datacenter, error) {
	if err := prof.Validate(); err != nil {
		return nil, err
	}
	dc := &Datacenter{prof: prof, seed: seed}
	nBlocks := prof.Racks/2 + 1
	perm := permute(prof.Racks, seed^0x1b1b)
	dc.ipBlock = make([]int, prof.Racks)
	for r := 0; r < prof.Racks; r++ {
		dc.ipBlock[r] = perm[r] % nBlocks
	}
	return dc, nil
}

// Profile returns the datacenter's profile.
func (dc *Datacenter) Profile() Profile { return dc.prof }

// Seed returns the datacenter's seed.
func (dc *Datacenter) Seed() int64 { return dc.seed }

// NumHosts reports the number of physical hosts.
func (dc *Datacenter) NumHosts() int { return dc.prof.Racks * dc.prof.HostsPerRack }

// Rack returns the rack index of host h.
func (dc *Datacenter) Rack(h int) int { return h / dc.prof.HostsPerRack }

// AggGroup returns the aggregation-group index of host h.
func (dc *Datacenter) AggGroup(h int) int { return dc.Rack(h) / dc.prof.RacksPerAgg }

// Hops returns the number of switching elements on the path between two
// hosts: 0 within one host, 1 within a rack (ToR), 3 within an aggregation
// group (ToR-agg-ToR), 5 across the core. Note the gap at 2 and 4 — the
// paper likewise observes only a sparse set of hop counts (Fig. 17).
func (dc *Datacenter) Hops(a, b int) int {
	switch {
	case a == b:
		return 0
	case dc.Rack(a) == dc.Rack(b):
		return 1
	case dc.AggGroup(a) == dc.AggGroup(b):
		return 3
	default:
		return 5
	}
}

// MeanRTT returns the stable mean round-trip latency (ms) between hosts a
// and b at time 0 (no drift). Values are mildly asymmetric: the stable
// offset differs per direction, reflecting real path asymmetries.
func (dc *Datacenter) MeanRTT(a, b int) float64 {
	return dc.MeanRTTAt(a, b, 0)
}

// MeanRTTAt returns the mean RTT between hosts a and b at the given absolute
// time in hours, including slow drift.
func (dc *Datacenter) MeanRTTAt(a, b int, hours float64) float64 {
	p := dc.prof
	if a == b {
		return p.SameHostRTT
	}
	epochSeed := dc.seed ^ int64(splitmix(dc.Epoch(hours)+0x1ce))
	var base, offset float64
	h := pairHash(epochSeed, a, b)
	switch {
	case dc.Rack(a) == dc.Rack(b):
		base = p.RackBase
		offset = math.Abs(gauss(h)) * p.RackSpread
	case dc.AggGroup(a) == dc.AggGroup(b):
		base = p.AggBase
		offset = math.Abs(gauss(h)) * p.AggSpread
	default:
		base = p.CoreBase
		offset = expo(h) * p.CoreSpread
	}
	penalty := dc.HostPenaltyAt(a, hours) + dc.HostPenaltyAt(b, hours)
	phase := unit(pairHash(dc.seed^0x5eed, a, b)) * 2 * math.Pi
	drift := p.DriftAmp * math.Sin(2*math.Pi*hours/p.DriftPeriodHours+phase)
	return base + offset + penalty + drift
}

// Epoch returns the network regime index at the given time: 0 forever for
// stationary profiles, advancing every RegimeHours otherwise.
func (dc *Datacenter) Epoch(hours float64) uint64 {
	if dc.prof.RegimeHours <= 0 || hours <= 0 {
		return 0
	}
	return uint64(hours / dc.prof.RegimeHours)
}

// HostPenalty returns the stable extra latency every cross-host link
// touching host h pays at time 0: zero for well-connected hosts,
// HostPenaltyBase + Exp(HostPenaltySpread) for badly connected ones.
func (dc *Datacenter) HostPenalty(h int) float64 { return dc.HostPenaltyAt(h, 0) }

// HostPenaltyAt is HostPenalty at an arbitrary time; under a non-stationary
// profile the set of badly connected hosts is re-drawn each regime epoch.
func (dc *Datacenter) HostPenaltyAt(h int, hours float64) float64 {
	p := dc.prof
	if p.HostBadProb == 0 {
		return 0
	}
	seed := uint64(dc.seed) + splitmix(dc.Epoch(hours)+0x9a7)
	hh := splitmix(seed ^ uint64(h)*0x8e9b5bdb1d3c2e4f)
	if unit(hh) >= p.HostBadProb {
		return 0
	}
	return p.HostPenaltyBase + expo(splitmix(hh))*p.HostPenaltySpread
}

// IP returns the internal IPv4 address of host h as 4 octets in 10.0.0.0/8.
// Hosts in one rack share a /24 block, but each block is aliased across two
// racks from unrelated parts of the datacenter, so sharing a /24 does not
// reliably mean low latency (Appendix 2).
func (dc *Datacenter) IP(h int) [4]byte {
	block := dc.ipBlock[dc.Rack(h)]
	hostOctet := byte(h%dc.prof.HostsPerRack + 4)
	return [4]byte{10, byte(block >> 8), byte(block & 0xff), hostOctet}
}

// IPDistance returns the paper's dissimilarity measure between two hosts'
// IPs at 8-bit granularity: 1 if they share a /24 but differ in the last
// octet, 2 if they share a /16 only, 3 if they share only the /8.
func (dc *Datacenter) IPDistance(a, b int) int {
	ipa, ipb := dc.IP(a), dc.IP(b)
	switch {
	case ipa == ipb:
		return 0
	case ipa[0] == ipb[0] && ipa[1] == ipb[1] && ipa[2] == ipb[2]:
		return 1
	case ipa[0] == ipb[0] && ipa[1] == ipb[1]:
		return 2
	default:
		return 3
	}
}

// pairHash derives a 64-bit hash from a seed and an ordered host pair, used
// to make per-pair offsets stable across calls without O(n^2) storage.
func pairHash(seed int64, a, b int) uint64 {
	x := uint64(seed)
	x ^= uint64(a)*0x9e3779b97f4a7c15 + uint64(b)*0xc2b2ae3d27d4eb4f
	return splitmix(x)
}

// splitmix is the SplitMix64 finalizer, a fast high-quality bit mixer.
func splitmix(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// unit maps a hash to (0,1).
func unit(h uint64) float64 {
	return (float64(h>>11) + 0.5) / float64(1<<53)
}

// gauss maps a hash to an approximately standard normal variate using the
// Box-Muller transform over two derived uniforms.
func gauss(h uint64) float64 {
	u1 := unit(splitmix(h ^ 0xa5a5a5a5a5a5a5a5))
	u2 := unit(splitmix(h ^ 0x5a5a5a5a5a5a5a5a))
	return math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
}

// expo maps a hash to a standard exponential variate.
func expo(h uint64) float64 {
	return -math.Log(unit(splitmix(h ^ 0x0f0f0f0f0f0f0f0f)))
}

// permute returns a deterministic permutation of 0..n-1 derived from seed
// via a Fisher-Yates shuffle over splitmix-generated indices.
func permute(n int, seed int64) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = i
	}
	state := uint64(seed)
	for i := n - 1; i > 0; i-- {
		state = splitmix(state)
		j := int(state % uint64(i+1))
		out[i], out[j] = out[j], out[i]
	}
	return out
}
