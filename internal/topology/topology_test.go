package topology

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestProfilesValidate(t *testing.T) {
	for _, p := range []Profile{EC2Profile(), GCEProfile(), RackspaceProfile()} {
		if err := p.Validate(); err != nil {
			t.Errorf("%s: %v", p.Name, err)
		}
	}
}

func TestProfileValidateRejects(t *testing.T) {
	p := EC2Profile()
	p.Racks = 0
	if err := p.Validate(); err == nil {
		t.Fatal("zero racks accepted")
	}
	p = EC2Profile()
	p.RackBase = p.CoreBase + 1
	if err := p.Validate(); err == nil {
		t.Fatal("inverted layer latencies accepted")
	}
	p = EC2Profile()
	p.SpikeProb = 1.5
	if err := p.Validate(); err == nil {
		t.Fatal("spike probability > 1 accepted")
	}
}

func newDC(t *testing.T, seed int64) *Datacenter {
	t.Helper()
	dc, err := New(EC2Profile(), seed)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return dc
}

func TestRackAndAggStructure(t *testing.T) {
	dc := newDC(t, 1)
	p := dc.Profile()
	if dc.NumHosts() != p.Racks*p.HostsPerRack {
		t.Fatalf("NumHosts = %d", dc.NumHosts())
	}
	// First and last host of rack 0.
	if dc.Rack(0) != 0 || dc.Rack(p.HostsPerRack-1) != 0 || dc.Rack(p.HostsPerRack) != 1 {
		t.Fatal("rack boundaries wrong")
	}
	if dc.AggGroup(0) != 0 || dc.AggGroup(p.HostsPerRack*p.RacksPerAgg) != 1 {
		t.Fatal("agg boundaries wrong")
	}
}

func TestHops(t *testing.T) {
	dc := newDC(t, 1)
	p := dc.Profile()
	if dc.Hops(5, 5) != 0 {
		t.Fatal("same host hops != 0")
	}
	if dc.Hops(0, 1) != 1 {
		t.Fatal("same rack hops != 1")
	}
	sameAgg := p.HostsPerRack // first host of rack 1, same agg as host 0
	if dc.Hops(0, sameAgg) != 3 {
		t.Fatal("same agg hops != 3")
	}
	crossCore := p.HostsPerRack * p.RacksPerAgg // first host of agg group 1
	if dc.Hops(0, crossCore) != 5 {
		t.Fatal("cross core hops != 5")
	}
}

func TestMeanRTTLayerOrderingOnAverage(t *testing.T) {
	// Individual pairs overlap across layers (that is the point of the
	// spreads), but layer averages must be ordered.
	dc := newDC(t, 7)
	p := dc.Profile()
	var rack, agg, core float64
	var nr, na, nc int
	// Stride across the datacenter so all layers are represented.
	hosts := make([]int, 0, 200)
	for h := 0; h < dc.NumHosts(); h += dc.NumHosts()/200 + 1 {
		hosts = append(hosts, h)
	}
	// Add dense runs inside one rack and one agg group too.
	for h := 0; h < 30; h++ {
		hosts = append(hosts, h)
	}
	for ai := 0; ai < len(hosts); ai++ {
		for bi := ai + 1; bi < len(hosts); bi++ {
			a, b := hosts[ai], hosts[bi]
			if a == b {
				continue
			}
			rtt := dc.MeanRTT(a, b)
			switch dc.Hops(a, b) {
			case 1:
				rack += rtt
				nr++
			case 3:
				agg += rtt
				na++
			case 5:
				core += rtt
				nc++
			}
		}
	}
	if nr == 0 || na == 0 || nc == 0 {
		t.Fatalf("missing layer samples: %d %d %d", nr, na, nc)
	}
	rack /= float64(nr)
	agg /= float64(na)
	core /= float64(nc)
	if !(rack < agg && agg < core) {
		t.Fatalf("layer means not ordered: rack=%.3f agg=%.3f core=%.3f", rack, agg, core)
	}
	if rack < p.RackBase || core < p.CoreBase {
		t.Fatalf("means below base: rack=%.3f core=%.3f", rack, core)
	}
}

func TestMeanRTTDeterministic(t *testing.T) {
	dc1 := newDC(t, 42)
	dc2 := newDC(t, 42)
	for i := 0; i < 50; i++ {
		a, b := i, (i*37+11)%dc1.NumHosts()
		if dc1.MeanRTT(a, b) != dc2.MeanRTT(a, b) {
			t.Fatalf("MeanRTT not deterministic for (%d,%d)", a, b)
		}
	}
	dc3 := newDC(t, 43)
	diff := 0
	for i := 0; i < 50; i++ {
		a, b := i, (i*37+11)%dc1.NumHosts()
		if dc1.MeanRTT(a, b) != dc3.MeanRTT(a, b) {
			diff++
		}
	}
	if diff == 0 {
		t.Fatal("different seeds produced identical matrices")
	}
}

func TestMeanRTTDriftBounded(t *testing.T) {
	dc := newDC(t, 3)
	p := dc.Profile()
	base := dc.MeanRTT(0, 999)
	for h := 0.0; h <= 200; h += 7 {
		d := math.Abs(dc.MeanRTTAt(0, 999, h) - base)
		if d > 2*p.DriftAmp+1e-9 {
			t.Fatalf("drift %g at hour %g exceeds 2*amp", d, h)
		}
	}
}

func TestSampleRTTAboveMean(t *testing.T) {
	dc := newDC(t, 5)
	rng := rand.New(rand.NewSource(1))
	mean := dc.MeanRTT(0, 500)
	var sum float64
	const n = 2000
	for i := 0; i < n; i++ {
		s := dc.SampleRTT(0, 500, 0, rng)
		if s < mean-2*dc.Profile().DriftAmp {
			t.Fatalf("sample %g below mean %g minus drift", s, mean)
		}
		sum += s
	}
	avg := sum / n
	expectedShift := dc.Profile().JitterScale + dc.Profile().SpikeProb*dc.Profile().SpikeScale
	if math.Abs(avg-mean-expectedShift) > 0.03 {
		t.Fatalf("sample mean %g, want ~%g", avg, mean+expectedShift)
	}
}

func TestSampleOneWayIsHalfRTTScale(t *testing.T) {
	dc := newDC(t, 5)
	rng := rand.New(rand.NewSource(2))
	var rtt, ow float64
	const n = 3000
	for i := 0; i < n; i++ {
		rtt += dc.SampleRTT(0, 700, 0, rng)
		ow += dc.SampleOneWay(0, 700, 0, rng)
	}
	if math.Abs(ow*2-rtt)/rtt > 0.05 {
		t.Fatalf("one-way mean %g not ~half of RTT mean %g", ow/n, rtt/n)
	}
}

func TestIPDistanceValuesAndAliasing(t *testing.T) {
	dc := newDC(t, 11)
	p := dc.Profile()
	// Same rack: same /24 (distance 1 at most).
	if d := dc.IPDistance(0, 1); d > 1 {
		t.Fatalf("same-rack IP distance = %d, want <= 1", d)
	}
	// Two racks alias each /24 block, so there exist cross-rack pairs at IP
	// distance <= 1.
	aliased := false
	for r := 1; r < p.Racks && !aliased; r++ {
		if dc.IPDistance(0, r*p.HostsPerRack) <= 1 {
			aliased = true
		}
	}
	if !aliased {
		t.Fatal("no cross-rack /24 aliasing found; IP distance would be a perfect predictor")
	}
}

func TestIPDeterministicAndInTenSlashEight(t *testing.T) {
	dc := newDC(t, 11)
	for h := 0; h < dc.NumHosts(); h += 97 {
		ip := dc.IP(h)
		if ip[0] != 10 {
			t.Fatalf("IP %v not in 10/8", ip)
		}
		if ip != dc.IP(h) {
			t.Fatal("IP not deterministic")
		}
	}
}

// Property: MeanRTT is positive, finite, and exceeds the same-host RTT for
// distinct hosts under all profile/seed combinations.
func TestMeanRTTPositiveProperty(t *testing.T) {
	profiles := []Profile{EC2Profile(), GCEProfile(), RackspaceProfile()}
	f := func(seed int64, rawA, rawB uint16, pIdx uint8) bool {
		prof := profiles[int(pIdx)%len(profiles)]
		dc, err := New(prof, seed)
		if err != nil {
			return false
		}
		a := int(rawA) % dc.NumHosts()
		b := int(rawB) % dc.NumHosts()
		rtt := dc.MeanRTT(a, b)
		if math.IsNaN(rtt) || math.IsInf(rtt, 0) || rtt <= 0 {
			return false
		}
		if a != b && rtt <= prof.SameHostRTT {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestPermuteIsPermutation(t *testing.T) {
	p := permute(100, 77)
	seen := make([]bool, 100)
	for _, v := range p {
		if v < 0 || v >= 100 || seen[v] {
			t.Fatalf("not a permutation: %v", p)
		}
		seen[v] = true
	}
}
