package topology

import "math"

// Pairwise available bandwidth, the "other criteria" the paper names as
// future work (Sect. 8). Bandwidth follows the same physical structure as
// latency — full line rate inside a rack, oversubscribed aggregation and
// core layers, badly connected hosts throttled — so the deployment problem
// transfers: maximize the bottleneck bandwidth over communication edges by
// minimizing a cost matrix of inverse bandwidths with the longest-link
// objective.

// Bandwidth tiers in MB/s by the highest layer a pair's path crosses. These
// are deliberately profile-independent: oversubscription ratios, unlike
// latencies, are similar across the providers the paper measures.
const (
	rackBWMBps = 1000 // line rate through the ToR
	aggBWMBps  = 400  // 2.5:1 oversubscription at the aggregation layer
	coreBWMBps = 150  // heavier oversubscription across the core
	// badHostBWFactor throttles every flow touching a badly connected host
	// (shared with the latency penalty; the same congested uplink causes
	// both).
	badHostBWFactor = 0.35
	// bwSpread is the relative stable per-pair variation.
	bwSpread = 0.25
)

// BandwidthMBps returns the stable available bandwidth between two hosts in
// MB/s. Same-host pairs share memory, modelled as 4x line rate.
func (dc *Datacenter) BandwidthMBps(a, b int) float64 {
	if a == b {
		return 4 * rackBWMBps
	}
	var base float64
	switch {
	case dc.Rack(a) == dc.Rack(b):
		base = rackBWMBps
	case dc.AggGroup(a) == dc.AggGroup(b):
		base = aggBWMBps
	default:
		base = coreBWMBps
	}
	// Stable per-pair variation, symmetric-ish but direction-dependent like
	// the latency offsets.
	h := pairHash(dc.seed^0xb3, a, b)
	base *= 1 - bwSpread*unit(h)
	if dc.HostPenalty(a) > 0 {
		base *= badHostBWFactor
	}
	if dc.HostPenalty(b) > 0 {
		base *= badHostBWFactor
	}
	return math.Max(base, 1)
}
