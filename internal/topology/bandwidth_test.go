package topology

import (
	"testing"
	"testing/quick"
)

func TestBandwidthLayerOrdering(t *testing.T) {
	dc := newDC(t, 21)
	p := dc.Profile()
	// Find a well-connected (penalty-free) host trio spanning layers.
	base := -1
	for h := 0; h < dc.NumHosts(); h++ {
		sameRack := h + 1
		sameAgg := h + p.HostsPerRack
		cross := h + p.HostsPerRack*p.RacksPerAgg
		if cross >= dc.NumHosts() {
			break
		}
		if dc.HostPenalty(h) == 0 && dc.HostPenalty(sameRack) == 0 &&
			dc.HostPenalty(sameAgg) == 0 && dc.HostPenalty(cross) == 0 &&
			dc.Rack(h) == dc.Rack(sameRack) && dc.AggGroup(h) == dc.AggGroup(sameAgg) &&
			dc.Rack(h) != dc.Rack(sameAgg) && dc.AggGroup(h) != dc.AggGroup(cross) {
			base = h
			break
		}
	}
	if base < 0 {
		t.Fatal("no clean host trio found")
	}
	rack := dc.BandwidthMBps(base, base+1)
	agg := dc.BandwidthMBps(base, base+p.HostsPerRack)
	cross := dc.BandwidthMBps(base, base+p.HostsPerRack*p.RacksPerAgg)
	if !(rack > agg && agg > cross) {
		t.Fatalf("bandwidth not decreasing with layer: rack=%.0f agg=%.0f cross=%.0f", rack, agg, cross)
	}
	if same := dc.BandwidthMBps(base, base); same <= rack {
		t.Fatalf("same-host bandwidth %.0f not above rack %.0f", same, rack)
	}
}

func TestBandwidthBadHostThrottled(t *testing.T) {
	dc := newDC(t, 23)
	// Find a bad host and a clean host in different agg groups.
	bad, clean, probe := -1, -1, -1
	for h := 0; h < dc.NumHosts(); h++ {
		if dc.HostPenalty(h) > 0 && bad < 0 {
			bad = h
		}
		if dc.HostPenalty(h) == 0 {
			if clean < 0 {
				clean = h
			} else if probe < 0 && dc.AggGroup(h) != dc.AggGroup(clean) {
				probe = h
			}
		}
	}
	if bad < 0 || clean < 0 || probe < 0 {
		t.Skip("host mix not found at this seed")
	}
	// Compare cross-core links with and without a bad endpoint. The stable
	// per-pair variation is at most bwSpread, far below the bad-host factor.
	if dc.AggGroup(bad) == dc.AggGroup(probe) {
		t.Skip("bad host shares agg group with probe")
	}
	badBW := dc.BandwidthMBps(bad, probe)
	cleanBW := dc.BandwidthMBps(clean, probe)
	if badBW >= cleanBW {
		t.Fatalf("bad host bandwidth %.0f not below clean %.0f", badBW, cleanBW)
	}
}

// Property: bandwidth is always at least 1 MB/s, finite, and deterministic.
func TestBandwidthBoundsProperty(t *testing.T) {
	dc := newDC(t, 29)
	f := func(rawA, rawB uint16) bool {
		a := int(rawA) % dc.NumHosts()
		b := int(rawB) % dc.NumHosts()
		bw := dc.BandwidthMBps(a, b)
		return bw >= 1 && bw <= 4000 && bw == dc.BandwidthMBps(a, b)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
