package topology

import "math/rand"

// SampleRTT draws one round-trip latency observation (ms) for a 1 KB message
// between hosts a and b at the given absolute time in hours. The sample is
// the (drifting) pair mean plus exponential jitter, plus an occasional
// hypervisor scheduling spike. Samples therefore sit above the stable mean
// by a uniform expected amount across all pairs, which measurement
// normalization cancels (Sect. 6.2.2).
func (dc *Datacenter) SampleRTT(a, b int, hours float64, rng *rand.Rand) float64 {
	p := dc.prof
	s := dc.MeanRTTAt(a, b, hours) + rng.ExpFloat64()*p.JitterScale
	if p.SpikeProb > 0 && rng.Float64() < p.SpikeProb {
		s += rng.ExpFloat64() * p.SpikeScale
	}
	return s
}

// SampleOneWay draws a one-way latency observation (ms), modeled as half of
// an RTT sample. The network simulator composes these with NIC serialization
// delays to form full message timings.
func (dc *Datacenter) SampleOneWay(a, b int, hours float64, rng *rand.Rand) float64 {
	return dc.SampleRTT(a, b, hours, rng) / 2
}
