package core

import (
	"math/rand"
	"slices"
	"testing"

	"cloudia/internal/par"
)

// The parallel artifact builds promise bit-equality with their sequential
// forms at every worker count. These tests pin that promise against
// independent reference implementations — in particular SortedPairs against
// a whole-list stable sort, on tie-heavy matrices where any divergence in
// merge tie-breaking would reorder equal-cost pairs.

// tieMatrix draws costs from only `distinct` values, so a large fraction of
// pairs tie exactly and tie-order bugs cannot hide.
func tieMatrix(t *testing.T, n, distinct int, seed int64) *CostMatrix {
	t.Helper()
	rng := rand.New(rand.NewSource(seed))
	vals := make([]float64, distinct)
	for i := range vals {
		vals[i] = 0.1 + rng.Float64()
	}
	m := NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, vals[rng.Intn(distinct)])
			}
		}
	}
	return m
}

// refSortedPairs is the pre-parallel implementation: materialize every
// off-diagonal pair in row-major order and stable-sort the whole list.
func refSortedPairs(m *CostMatrix) []CostPair {
	n := m.Size()
	out := make([]CostPair, 0, n*(n-1))
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				out = append(out, CostPair{From: int32(i), To: int32(j), Cost: m.At(i, j)})
			}
		}
	}
	slices.SortStableFunc(out, func(a, b CostPair) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		}
		return 0
	})
	return out
}

var workerCounts = []int{1, 2, 3, 8}

func TestSortedPairsBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	for _, n := range []int{2, 3, 7, 40, 101} {
		m := tieMatrix(t, n, 5, int64(n))
		want := refSortedPairs(m)
		for _, w := range workerCounts {
			par.SetWorkers(w)
			got := m.SortedPairs()
			if !slices.Equal(got, want) {
				t.Fatalf("n=%d workers=%d: SortedPairs diverges from the stable-sort reference", n, w)
			}
		}
	}
}

func TestTransposedAndOffDiagonalBitEqualAcrossWorkers(t *testing.T) {
	defer par.SetWorkers(0)
	for _, n := range []int{2, 9, 64} {
		m := testMatrix(t, n, int64(n))
		// Sequential references.
		par.SetWorkers(1)
		wantT := m.Transposed()
		wantOD := m.OffDiagonal()
		for _, w := range workerCounts {
			par.SetWorkers(w)
			gotT := m.Transposed()
			for i := 0; i < n; i++ {
				for j := 0; j < n; j++ {
					if gotT.At(i, j) != wantT.At(i, j) {
						t.Fatalf("n=%d workers=%d: Transposed[%d,%d] = %g, want %g", n, w, i, j, gotT.At(i, j), wantT.At(i, j))
					}
				}
			}
			if got := m.OffDiagonal(); !slices.Equal(got, wantOD) {
				t.Fatalf("n=%d workers=%d: OffDiagonal diverges from sequential", n, w)
			}
		}
	}
}

func TestMergeSortedPairRunsRaggedTail(t *testing.T) {
	defer par.SetWorkers(0)
	// Runs of width 3 with a short final run: the merge must treat the tail
	// as just another (shorter) run and keep left-first tie order.
	mk := func() []CostPair {
		return []CostPair{
			{From: 0, To: 1, Cost: 1}, {From: 0, To: 2, Cost: 2}, {From: 0, To: 3, Cost: 2},
			{From: 1, To: 0, Cost: 1}, {From: 1, To: 2, Cost: 2}, {From: 1, To: 3, Cost: 9},
			{From: 2, To: 0, Cost: 2},
		}
	}
	par.SetWorkers(1)
	want := MergeSortedPairRuns(mk(), 3)
	for _, w := range []int{2, 4} {
		par.SetWorkers(w)
		if got := MergeSortedPairRuns(mk(), 3); !slices.Equal(got, want) {
			t.Fatalf("workers=%d: ragged-tail merge diverges from sequential", w)
		}
	}
	// And the sequential result itself must be ascending with 0-row ties
	// ahead of 1-row ties.
	if !slices.IsSortedFunc(want, func(a, b CostPair) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		}
		return 0
	}) {
		t.Fatalf("merged runs not ascending: %v", want)
	}
	if want[1] != (CostPair{From: 1, To: 0, Cost: 1}) {
		t.Fatalf("tie order broken: %v", want)
	}
}
