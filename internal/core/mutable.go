package core

import "fmt"

// MutableCostMatrix is a cost matrix under construction by a streaming
// producer — typically measure.Stream folding per-pair latency summaries in
// as snapshots mature — that tracks which rows changed between published
// epochs. Consumers receive immutable CostMatrix snapshots plus the set of
// rows whose values differ from the previous snapshot, which is exactly the
// invalidation unit of the solver preprocessing cache: artifacts derived
// only from untouched rows survive the epoch.
//
// A MutableCostMatrix is not safe for concurrent use; the single producer
// mutates it and hands immutable snapshots to concurrent consumers.
type MutableCostMatrix struct {
	n     int
	c     []float64
	dirty []bool
	epoch int

	// Incremental fingerprint state: rowHash holds each row's content hash,
	// hashDirty marks rows written since it was last computed. The two dirty
	// sets are independent — Snapshot clears dirty without touching
	// hashDirty, so Fingerprint stays cheap no matter how the caller
	// interleaves the two.
	rowHash   []uint64
	hashDirty []bool
}

// NewMutableCostMatrix returns an n x n zero mutable cost matrix at epoch 0.
func NewMutableCostMatrix(n int) *MutableCostMatrix {
	if n < 0 {
		panic(fmt.Sprintf("core: negative cost matrix size %d", n))
	}
	m := &MutableCostMatrix{
		n:         n,
		c:         make([]float64, n*n),
		dirty:     make([]bool, n),
		rowHash:   make([]uint64, n),
		hashDirty: make([]bool, n),
	}
	for i := range m.hashDirty {
		m.hashDirty[i] = true
	}
	return m
}

// Size reports the number of instances covered by the matrix.
func (m *MutableCostMatrix) Size() int { return m.n }

// At returns the current CL(i, j).
func (m *MutableCostMatrix) At(i, j int) float64 { return m.c[i*m.n+j] }

// Set assigns CL(i, j) = v and reports whether the stored value actually
// changed. Row i is marked dirty only on a real (bitwise) change, so
// producers can blindly re-fold full estimates every epoch and still hand
// consumers an exact changed-row set.
func (m *MutableCostMatrix) Set(i, j int, v float64) bool {
	k := i*m.n + j
	if m.c[k] == v {
		return false
	}
	m.c[k] = v
	m.dirty[i] = true
	m.hashDirty[i] = true
	return true
}

// Epoch reports how many snapshots have been published.
func (m *MutableCostMatrix) Epoch() int { return m.epoch }

// ChangedRows returns the rows written with a different value since the last
// snapshot, in ascending order. It does not reset the dirty set.
func (m *MutableCostMatrix) ChangedRows() []int {
	var rows []int
	for i, d := range m.dirty {
		if d {
			rows = append(rows, i)
		}
	}
	return rows
}

// Snapshot publishes the current state: an immutable CostMatrix copy plus
// the rows changed since the previous snapshot (ascending). The dirty set is
// cleared and the epoch counter advances. The returned matrix shares no
// storage with the mutable one, so later Sets cannot disturb consumers.
func (m *MutableCostMatrix) Snapshot() (*CostMatrix, []int) {
	out := NewCostMatrix(m.n)
	copy(out.c, m.c)
	rows := m.ChangedRows()
	for i := range m.dirty {
		m.dirty[i] = false
	}
	m.epoch++
	return out, rows
}
