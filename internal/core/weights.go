package core

import "fmt"

// Weighted communication graphs are the paper's first listed piece of future
// work ("we plan to extend our formulation to support weighted communication
// graphs", Sect. 8; also Sect. 3.3). A weight on edge (i, j) scales the
// communication cost of that link in both deployment cost functions:
//
//	longest link:  max over edges of  w(e) * CL(D(i), D(j))
//	longest path:  max over paths of  sum of w(e) * CL(D(i), D(j))
//
// modelling links that carry more traffic, larger messages, or more rounds
// per interaction. Weights default to 1, so unweighted graphs behave exactly
// as before. All solvers support weights: the cost-driven solvers (greedy
// G2, R1/R2, SA, MIP) through the cost functions, and CP through per-weight
// threshold adjacencies.

// SetWeight assigns a positive weight to an existing edge. Weight 1 (the
// default for every edge) restores unweighted semantics.
func (g *Graph) SetWeight(from, to NodeID, w float64) error {
	if !(w > 0) {
		return fmt.Errorf("core: non-positive edge weight %g on (%d,%d)", w, from, to)
	}
	if !g.HasEdge(from, to) {
		return fmt.Errorf("core: SetWeight on missing edge (%d,%d)", from, to)
	}
	if g.weights == nil {
		g.weights = make(map[Edge]float64)
	}
	if w == 1 {
		delete(g.weights, Edge{from, to})
	} else {
		g.weights[Edge{from, to}] = w
	}
	g.rebuildWeightCaches()
	return nil
}

// Weight reports the weight of edge (from, to), defaulting to 1. The result
// for a missing edge is also 1; callers interrogate HasEdge separately.
func (g *Graph) Weight(from, to NodeID) float64 {
	if w, ok := g.weights[Edge{from, to}]; ok {
		return w
	}
	return 1
}

// Weighted reports whether any edge carries a weight other than 1.
func (g *Graph) Weighted() bool { return len(g.weights) > 0 }

// DistinctWeights returns the distinct edge weights present, including 1
// when any edge is unweighted. Used by the CP solver to build one threshold
// adjacency per weight class.
func (g *Graph) DistinctWeights() []float64 {
	seen := map[float64]bool{}
	var out []float64
	for _, e := range g.edges {
		w := g.Weight(e.From, e.To)
		if !seen[w] {
			seen[w] = true
			out = append(out, w)
		}
	}
	return out
}

// edgeWeightSlices caches weights aligned with the edge list and out
// adjacency, so the hot cost evaluations avoid map lookups.
func (g *Graph) rebuildWeightCaches() {
	g.edgeW = g.edgeW[:0]
	for _, e := range g.edges {
		g.edgeW = append(g.edgeW, g.Weight(e.From, e.To))
	}
	if g.outW == nil {
		g.outW = make([][]float64, g.n)
	}
	for v := 0; v < g.n; v++ {
		g.outW[v] = g.outW[v][:0]
		for _, w := range g.out[v] {
			g.outW[v] = append(g.outW[v], g.Weight(v, w))
		}
	}
}

// edgeWeight returns the cached weight of the k-th edge in Edges() order,
// treating an empty cache as all-ones.
func (g *Graph) edgeWeight(k int) float64 {
	if len(g.edgeW) == 0 {
		return 1
	}
	return g.edgeW[k]
}

// outWeight returns the cached weight of the k-th out-edge of v, treating an
// empty cache as all-ones.
func (g *Graph) outWeight(v NodeID, k int) float64 {
	if len(g.outW) == 0 || len(g.outW[v]) == 0 {
		return 1
	}
	return g.outW[v][k]
}
