package core

import (
	"math/rand"
	"testing"
)

func randomCostMatrix(rng *rand.Rand, n int) *CostMatrix {
	m := NewCostMatrix(n)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			if i != j {
				m.Set(i, j, 0.2+rng.Float64())
			}
		}
	}
	return m
}

// Equal content must yield equal fingerprints regardless of how the matrix
// was constructed (direct Set order, Clone, MutableCostMatrix snapshot).
func TestFingerprintEqualContentEqualKeys(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		n := 2 + rng.Intn(20)
		a := randomCostMatrix(rng, n)

		// Same values written in a different (column-major) order.
		b := NewCostMatrix(n)
		for j := 0; j < n; j++ {
			for i := 0; i < n; i++ {
				b.Set(i, j, a.At(i, j))
			}
		}
		if a.Fingerprint() != b.Fingerprint() {
			t.Fatalf("n=%d: equal matrices have fingerprints %#x != %#x", n, a.Fingerprint(), b.Fingerprint())
		}
		if a.Fingerprint() != a.Clone().Fingerprint() {
			t.Fatalf("n=%d: clone changed the fingerprint", n)
		}

		mm := NewMutableCostMatrix(n)
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				mm.Set(i, j, a.At(i, j))
			}
		}
		snap, _ := mm.Snapshot()
		if snap.Fingerprint() != a.Fingerprint() {
			t.Fatalf("n=%d: mutable snapshot fingerprint differs", n)
		}
	}
}

// Any single-value change must produce a new key.
func TestFingerprintSetChangesKey(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 100; trial++ {
		n := 2 + rng.Intn(15)
		m := randomCostMatrix(rng, n)
		before := m.Fingerprint()
		i, j := rng.Intn(n), rng.Intn(n)
		if i == j {
			j = (j + 1) % n
		}
		m.Set(i, j, m.At(i, j)+0.5+rng.Float64())
		if after := m.Fingerprint(); after == before {
			t.Fatalf("n=%d: changing (%d,%d) kept fingerprint %#x", n, i, j, before)
		}
	}
}

// Fingerprints of same-size matrices must not collide on the zero matrix vs
// its transpositions of a single value, and must differ across sizes.
func TestFingerprintSizeAndPosition(t *testing.T) {
	a, b := NewCostMatrix(3), NewCostMatrix(4)
	if a.Fingerprint() == b.Fingerprint() {
		t.Fatal("3x3 and 4x4 zero matrices share a fingerprint")
	}
	x, y := NewCostMatrix(3), NewCostMatrix(3)
	x.Set(0, 1, 1.5)
	y.Set(1, 0, 1.5)
	if x.Fingerprint() == y.Fingerprint() {
		t.Fatal("transposed single entry shares a fingerprint")
	}
	if x.Fingerprint() == 0 || y.Fingerprint() == 0 {
		t.Fatal("fingerprint hit the reserved zero value")
	}
}

// The incremental rehash must equal the full rehash across an arbitrary
// mutate/snapshot/fingerprint interleaving, including no-op writes.
func TestFingerprintIncrementalMatchesFull(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 30; trial++ {
		n := 2 + rng.Intn(25)
		mm := NewMutableCostMatrix(n)
		for step := 0; step < 40; step++ {
			writes := rng.Intn(3 * n)
			for w := 0; w < writes; w++ {
				i, j := rng.Intn(n), rng.Intn(n)
				if i == j {
					continue
				}
				if rng.Intn(4) == 0 {
					mm.Set(i, j, mm.At(i, j)) // no-op write: must not disturb anything
				} else {
					mm.Set(i, j, rng.Float64())
				}
			}
			switch rng.Intn(3) {
			case 0:
				snap, _ := mm.Snapshot()
				if got, want := mm.Fingerprint(), snap.Fingerprint(); got != want {
					t.Fatalf("n=%d step=%d: incremental %#x != full %#x after snapshot", n, trial, got, want)
				}
			case 1:
				snap, _ := mm.Snapshot()
				_ = snap
			default:
				// Fingerprint without snapshot: compare against a fresh full
				// snapshot hash without consuming the dirty set first.
				got := mm.Fingerprint()
				full := NewCostMatrix(n)
				for i := 0; i < n; i++ {
					for j := 0; j < n; j++ {
						full.Set(i, j, mm.At(i, j))
					}
				}
				if want := full.Fingerprint(); got != want {
					t.Fatalf("n=%d: incremental %#x != full %#x", n, got, want)
				}
			}
		}
	}
}
