package core

import (
	"fmt"
	"math/rand"
)

// This file provides the communication-graph templates that ClouDiA offers
// tenants so they need not hand-write O(|N|^2) link lists (Sect. 3.3):
// meshes for behavioral simulations, aggregation trees for search/portal
// workloads, and bipartite graphs for key-value stores, plus a few generic
// shapes used by tests and ablations.

// Mesh2D returns a rows x cols 2D mesh with bidirectional edges between
// horizontal and vertical neighbours. This is the communication pattern of
// the behavioral simulation workload (Sect. 6.1.1).
func Mesh2D(rows, cols int) (*Graph, error) {
	if rows <= 0 || cols <= 0 {
		return nil, fmt.Errorf("core: invalid mesh dimensions %dx%d", rows, cols)
	}
	g := NewGraph(rows * cols)
	id := func(r, c int) NodeID { return r*cols + c }
	for r := 0; r < rows; r++ {
		for c := 0; c < cols; c++ {
			if c+1 < cols {
				if err := g.AddBiEdge(id(r, c), id(r, c+1)); err != nil {
					return nil, err
				}
			}
			if r+1 < rows {
				if err := g.AddBiEdge(id(r, c), id(r+1, c)); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Mesh3D returns an x*y*z 3D mesh with bidirectional edges between axis
// neighbours.
func Mesh3D(x, y, z int) (*Graph, error) {
	if x <= 0 || y <= 0 || z <= 0 {
		return nil, fmt.Errorf("core: invalid mesh dimensions %dx%dx%d", x, y, z)
	}
	g := NewGraph(x * y * z)
	id := func(i, j, k int) NodeID { return (i*y+j)*z + k }
	for i := 0; i < x; i++ {
		for j := 0; j < y; j++ {
			for k := 0; k < z; k++ {
				if i+1 < x {
					if err := g.AddBiEdge(id(i, j, k), id(i+1, j, k)); err != nil {
						return nil, err
					}
				}
				if j+1 < y {
					if err := g.AddBiEdge(id(i, j, k), id(i, j+1, k)); err != nil {
						return nil, err
					}
				}
				if k+1 < z {
					if err := g.AddBiEdge(id(i, j, k), id(i, j, k+1)); err != nil {
						return nil, err
					}
				}
			}
		}
	}
	return g, nil
}

// AggregationTree returns a complete aggregation tree of the given depth in
// which every internal node has fanout children. Edges point from child to
// parent: results flow leaf -> root, matching the synthetic aggregation
// query workload (Sect. 6.1.2). Node 0 is the root. depth counts edge
// levels, so depth 0 is a single node.
func AggregationTree(fanout, depth int) (*Graph, error) {
	if fanout <= 0 || depth < 0 {
		return nil, fmt.Errorf("core: invalid tree fanout=%d depth=%d", fanout, depth)
	}
	// Total nodes of a complete fanout-ary tree with depth edge levels.
	total := 1
	levelSize := 1
	for d := 0; d < depth; d++ {
		levelSize *= fanout
		total += levelSize
	}
	g := NewGraph(total)
	// Nodes are numbered level by level: root 0, then its children, etc.
	next := 1
	frontier := []NodeID{0}
	for d := 0; d < depth; d++ {
		var newFrontier []NodeID
		for _, parent := range frontier {
			for c := 0; c < fanout; c++ {
				child := next
				next++
				if err := g.AddEdge(child, parent); err != nil {
					return nil, err
				}
				newFrontier = append(newFrontier, child)
			}
		}
		frontier = newFrontier
	}
	return g, nil
}

// Bipartite returns a complete bipartite graph between frontends (nodes
// 0..f-1) and storage nodes (nodes f..f+s-1), with one directed edge each way
// per pair: requests flow frontend -> storage and replies flow back. This is
// the key-value store communication pattern (Sect. 6.1.3).
func Bipartite(frontends, storage int) (*Graph, error) {
	if frontends <= 0 || storage <= 0 {
		return nil, fmt.Errorf("core: invalid bipartite sizes f=%d s=%d", frontends, storage)
	}
	g := NewGraph(frontends + storage)
	for f := 0; f < frontends; f++ {
		for s := 0; s < storage; s++ {
			if err := g.AddBiEdge(f, frontends+s); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// Ring returns a directed ring over n nodes: 0->1->...->n-1->0.
func Ring(n int) (*Graph, error) {
	if n < 3 {
		return nil, fmt.Errorf("core: ring needs >= 3 nodes, got %d", n)
	}
	g := NewGraph(n)
	for v := 0; v < n; v++ {
		if err := g.AddEdge(v, (v+1)%n); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// RandomDAG returns a random DAG over n nodes in which each forward pair
// (i, j), i < j, is an edge with probability p, using rng for randomness.
// Edges always point from lower to higher node index, so the result is
// acyclic by construction.
func RandomDAG(n int, p float64, rng *rand.Rand) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: invalid DAG size %d", n)
	}
	if p < 0 || p > 1 {
		return nil, fmt.Errorf("core: invalid edge probability %g", p)
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if rng.Float64() < p {
				if err := g.AddEdge(i, j); err != nil {
					return nil, err
				}
			}
		}
	}
	return g, nil
}

// Clique returns the complete directed graph over n nodes (both directions
// for every pair).
func Clique(n int) (*Graph, error) {
	if n <= 0 {
		return nil, fmt.Errorf("core: invalid clique size %d", n)
	}
	g := NewGraph(n)
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if err := g.AddBiEdge(i, j); err != nil {
				return nil, err
			}
		}
	}
	return g, nil
}

// TwoLevelAggregation returns the two-level aggregation tree used by the
// paper's top-k query workload: one root, mid intermediate aggregators, and
// leaves leaf nodes distributed round-robin under the aggregators. Edges
// point child -> parent. Node 0 is the root, nodes 1..mid are aggregators,
// and the remaining nodes are leaves.
func TwoLevelAggregation(mid, leaves int) (*Graph, error) {
	if mid <= 0 || leaves < mid {
		return nil, fmt.Errorf("core: invalid two-level tree mid=%d leaves=%d", mid, leaves)
	}
	g := NewGraph(1 + mid + leaves)
	for m := 0; m < mid; m++ {
		if err := g.AddEdge(1+m, 0); err != nil {
			return nil, err
		}
	}
	for l := 0; l < leaves; l++ {
		parent := 1 + l%mid
		if err := g.AddEdge(1+mid+l, parent); err != nil {
			return nil, err
		}
	}
	return g, nil
}
