package core

import "math"

// Fingerprint is a 64-bit content hash of a cost matrix: two matrices with
// bitwise-equal sizes and values have equal fingerprints, and any value
// change yields a different fingerprint with overwhelming probability. It is
// the content-addressed cache key of the serving layer: preprocessing
// artifacts (cluster-rounded matrices, sorted pair lists, cheapest-link
// rows) are pure functions of the matrix content, so problems from
// different tenants whose measurements produced identical matrices can
// share one artifact set keyed by fingerprint.
//
// The zero value is reserved to mean "no fingerprint": the hash never
// returns 0, so callers can use 0 as an absent marker (e.g. an Epoch whose
// producer did not fill the field).
type Fingerprint uint64

// FNV-1a constants, applied word-at-a-time: each 64-bit float pattern is
// folded whole instead of byte-by-byte. Not the standard byte-stream FNV,
// but an order-sensitive multiply-xor mix with the same constants — fine
// for a content key, and 8x fewer multiplies on a million-entry matrix.
const (
	fnvOffset64 uint64 = 14695981039346656037
	fnvPrime64  uint64 = 1099511628211
)

// hashCostRow hashes one row's float bit patterns.
func hashCostRow(row []float64) uint64 {
	h := fnvOffset64
	for _, v := range row {
		h ^= math.Float64bits(v)
		h *= fnvPrime64
	}
	return h
}

// combineRowHashes folds the per-row hashes (in row order) together with the
// matrix size into one fingerprint, remapping the reserved zero value.
func combineRowHashes(n int, rowHash []uint64) Fingerprint {
	h := fnvOffset64
	h ^= uint64(n)
	h *= fnvPrime64
	for _, r := range rowHash {
		h ^= r
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return Fingerprint(h)
}

// Fingerprint returns the matrix's content hash in O(n^2). Producers that
// mutate a matrix row-by-row across epochs should use
// MutableCostMatrix.Fingerprint instead, which rehashes only changed rows.
func (m *CostMatrix) Fingerprint() Fingerprint {
	rowHash := make([]uint64, m.n)
	for i := 0; i < m.n; i++ {
		rowHash[i] = hashCostRow(m.Row(i))
	}
	return combineRowHashes(m.n, rowHash)
}

// Fingerprint returns the graph's content hash: node count, then every
// edge's endpoints and weight in insertion order. Insertion order is part of
// the content on purpose — derived artifacts (incidence lists, the
// transposed edge list, topological orders) are functions of Edges() order,
// so two graphs must only share artifacts when their edge lists match
// index-for-index, not merely as sets. Like the matrix hash, the result is
// never 0, so callers can reserve 0 as an absent marker. O(|E|).
func (g *Graph) Fingerprint() Fingerprint {
	h := fnvOffset64
	h ^= uint64(g.n)
	h *= fnvPrime64
	for k, e := range g.edges {
		h ^= uint64(uint32(e.From))<<32 | uint64(uint32(e.To))
		h *= fnvPrime64
		h ^= math.Float64bits(g.edgeWeight(k))
		h *= fnvPrime64
	}
	if h == 0 {
		h = 1
	}
	return Fingerprint(h)
}

// Fingerprint returns the content hash of the matrix's current values,
// maintained incrementally: only rows written with a different value since
// the last Fingerprint call are rehashed, so a streaming producer that
// publishes epochs touching few rows pays O(changed*n + n) per epoch, not
// O(n^2). The result equals CostMatrix.Fingerprint() of a Snapshot taken at
// the same state.
func (m *MutableCostMatrix) Fingerprint() Fingerprint {
	for i, d := range m.hashDirty {
		if d {
			m.rowHash[i] = hashCostRow(m.c[i*m.n : (i+1)*m.n])
			m.hashDirty[i] = false
		}
	}
	return combineRowHashes(m.n, m.rowHash)
}
