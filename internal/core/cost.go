package core

import (
	"fmt"
	"math"
	"slices"
	"sort"

	"cloudia/internal/par"
)

// CostMatrix is the communication cost function CL : S x S -> R (Definition
// 1) over a set of instances 0..n-1. Costs may be asymmetric and need not
// satisfy the triangle inequality, reflecting true network properties. The
// diagonal is zero by convention and is never consulted by deployment cost
// functions because deployment plans are injective.
type CostMatrix struct {
	n int
	c []float64 // row-major n*n
}

// NewCostMatrix returns an n x n zero cost matrix.
func NewCostMatrix(n int) *CostMatrix {
	if n < 0 {
		panic(fmt.Sprintf("core: negative cost matrix size %d", n))
	}
	return &CostMatrix{n: n, c: make([]float64, n*n)}
}

// Size reports the number of instances covered by the matrix.
func (m *CostMatrix) Size() int { return m.n }

// At returns CL(i, j). It panics if either index is out of range, matching
// slice semantics; the hot solver loops index the backing slice directly.
func (m *CostMatrix) At(i, j int) float64 { return m.c[i*m.n+j] }

// Set assigns CL(i, j) = v.
func (m *CostMatrix) Set(i, j int, v float64) { m.c[i*m.n+j] = v }

// Clone returns a deep copy of the matrix.
func (m *CostMatrix) Clone() *CostMatrix {
	out := NewCostMatrix(m.n)
	copy(out.c, m.c)
	return out
}

// Row returns the i-th row as a slice view. Callers must not modify it.
func (m *CostMatrix) Row(i int) []float64 { return m.c[i*m.n : (i+1)*m.n] }

// Transposed returns the matrix with every cost direction swapped:
// Transposed().At(i, j) == At(j, i). Path costs on a transposed graph under
// the transposed matrix equal path costs on the original. The transpose is
// built in one pass over the flat backing — each source row is read
// contiguously and scattered down one destination column — rather than by
// n^2 At/Set calls. Source rows scatter into disjoint destination columns,
// so row blocks run in parallel without changing a byte of the result.
func (m *CostMatrix) Transposed() *CostMatrix {
	n := m.n
	t := NewCostMatrix(n)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			row := m.c[i*n : (i+1)*n]
			col := t.c[i:]
			for j, v := range row {
				col[j*n] = v
			}
		}
	})
	return t
}

// OffDiagonal returns all off-diagonal entries in row-major order. This is
// the "latency vector" used when comparing measurement schemes (Sect. 6.2.2).
// Row i owns exactly the output range [i*(n-1), (i+1)*(n-1)), so extraction
// is row-parallel with a bit-equal result.
func (m *CostMatrix) OffDiagonal() []float64 {
	n := m.n
	if n < 2 {
		return nil
	}
	out := make([]float64, n*(n-1))
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			dst := out[i*(n-1) : (i+1)*(n-1)]
			row := m.c[i*n : (i+1)*n]
			copy(dst[:i], row[:i])
			copy(dst[i:], row[i+1:])
		}
	})
	return out
}

// DistinctValues returns the sorted distinct off-diagonal cost values. The CP
// solver iterates over these thresholds (Sect. 4.2), so their count bounds
// its iteration count.
func (m *CostMatrix) DistinctValues() []float64 {
	out := m.OffDiagonal()
	if len(out) == 0 {
		return nil
	}
	sort.Float64s(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// CostPair is one ordered instance pair (From, To) tagged with its link cost.
// Slices of CostPair sorted ascending by cost are the backbone of the CP
// solver's incremental threshold graphs: descending the threshold from c to
// c' only needs to visit the pairs whose cost lies in (c', c].
type CostPair struct {
	From, To int32
	Cost     float64
}

// SortedPairs returns every off-diagonal pair of the matrix sorted ascending
// by cost. Ties keep row-major order, so the result is deterministic.
//
// The list is built as one sorted run per source row — rows fill and sort
// disjoint output ranges in parallel — merged bottom-up with the left run
// winning ties (MergeSortedPairRuns). Within a row the stable sort keeps To
// order on ties and across rows the left-first merge keeps the lower row
// first, so equal costs come out in exactly the row-major order the old
// whole-list stable sort produced: the parallel build is bit-equal to it.
func (m *CostMatrix) SortedPairs() []CostPair {
	n := m.n
	if n < 2 {
		return nil
	}
	per := n - 1
	a := make([]CostPair, n*per)
	par.For(n, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			run := a[i*per : (i+1)*per]
			row := m.c[i*n : (i+1)*n]
			w := 0
			for j := 0; j < n; j++ {
				if i != j {
					run[w] = CostPair{From: int32(i), To: int32(j), Cost: row[j]}
					w++
				}
			}
			SortPairRun(run)
		}
	})
	return MergeSortedPairRuns(a, per)
}

// SortPairRun stable-sorts one run of pairs ascending by cost in place; ties
// keep their current order.
func SortPairRun(run []CostPair) {
	slices.SortStableFunc(run, func(a, b CostPair) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		}
		return 0
	})
}

// MergeSortedPairRuns merges consecutive equal-width sorted runs (the last
// may be short) of a into one ascending list, bottom-up, left run first on
// ties — the deterministic merge shared by SortedPairs and the cluster
// package's epoch pair-list patching. Merges at one width write disjoint
// output ranges, so each pass is chunk-parallel with a bit-equal result.
// The contents of a are consumed as scratch; the returned slice is either a
// or an equally sized buffer.
func MergeSortedPairRuns(a []CostPair, width int) []CostPair {
	if width <= 0 || len(a) <= width {
		return a
	}
	b := make([]CostPair, len(a))
	for ; width < len(a); width *= 2 {
		span := 2 * width
		chunks := (len(a) + span - 1) / span
		src, dst := a, b
		par.For(chunks, func(clo, chi int) {
			for c := clo; c < chi; c++ {
				lo := c * span
				mid := min(lo+width, len(src))
				hi := min(lo+span, len(src))
				MergePairRuns(src[lo:mid], src[mid:hi], dst[lo:hi])
			}
		})
		a, b = b, a
	}
	return a
}

// MergePairRuns merges two ascending runs into out (len(out) must equal
// len(x)+len(y)), taking from x first on cost ties.
func MergePairRuns(x, y, out []CostPair) {
	i, j, k := 0, 0, 0
	for i < len(x) && j < len(y) {
		if x[i].Cost <= y[j].Cost {
			out[k] = x[i]
			i++
		} else {
			out[k] = y[j]
			j++
		}
		k++
	}
	copy(out[k:], x[i:])
	copy(out[k+len(x)-i:], y[j:])
}

// MaxValue returns the largest off-diagonal cost, or 0 for matrices smaller
// than 2x2.
func (m *CostMatrix) MaxValue() float64 {
	max := 0.0
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j && m.At(i, j) > max {
				max = m.At(i, j)
			}
		}
	}
	return max
}

// Validate checks that the matrix has a zero diagonal and no negative or
// non-finite costs.
func (m *CostMatrix) Validate() error {
	if len(m.c) != m.n*m.n {
		return fmt.Errorf("core: cost matrix backing size %d != %d^2", len(m.c), m.n)
	}
	for i := 0; i < m.n; i++ {
		if m.At(i, i) != 0 {
			return fmt.Errorf("core: nonzero diagonal at %d", i)
		}
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: invalid cost %g at (%d,%d)", v, i, j)
			}
		}
	}
	return nil
}

// Deployment is a deployment plan D : N -> S (Definition 2): entry i holds
// the instance assigned to application node i. The plan must be injective —
// at most one node per instance — and instances not referenced simply run
// nothing (they are the over-allocated instances ClouDiA terminates).
type Deployment []int

// Identity returns the deployment mapping node i to instance i, the "default
// deployment" of the EC2 allocation ordering the paper compares against.
func Identity(n int) Deployment {
	d := make(Deployment, n)
	for i := range d {
		d[i] = i
	}
	return d
}

// Clone returns a copy of the deployment.
func (d Deployment) Clone() Deployment { return append(Deployment(nil), d...) }

// Validate checks that d maps each of its nodes to a distinct instance in
// [0, numInstances).
func (d Deployment) Validate(numInstances int) error {
	seen := make(map[int]int, len(d))
	for node, inst := range d {
		if inst < 0 || inst >= numInstances {
			return fmt.Errorf("core: node %d mapped to out-of-range instance %d (have %d)", node, inst, numInstances)
		}
		if prev, dup := seen[inst]; dup {
			return fmt.Errorf("core: nodes %d and %d both mapped to instance %d", prev, node, inst)
		}
		seen[inst] = node
	}
	return nil
}

// LongestLink computes the Class 1 deployment cost CLL(D, G, CL): the maximum
// link cost over communication-graph edges under deployment d (Sect. 3.3),
// scaled by edge weights when the graph is weighted. It panics if d does not
// cover all graph nodes; callers validate first.
func LongestLink(d Deployment, g *Graph, m *CostMatrix) float64 {
	worst := 0.0
	n := m.n
	if !g.Weighted() {
		for _, e := range g.Edges() {
			c := m.c[d[e.From]*n+d[e.To]]
			if c > worst {
				worst = c
			}
		}
		return worst
	}
	for k, e := range g.Edges() {
		c := g.edgeWeight(k) * m.c[d[e.From]*n+d[e.To]]
		if c > worst {
			worst = c
		}
	}
	return worst
}

// LongestPath computes the Class 2 deployment cost CLP(D, G, CL): the maximum
// over directed paths of the sum of link costs along the path. The graph
// must be acyclic; ErrCyclic is returned otherwise.
func LongestPath(d Deployment, g *Graph, m *CostMatrix) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	return longestPathInOrder(d, g, m, order), nil
}

// longestPathInOrder is the DP core of LongestPath, reusable by solvers that
// already hold a topological order. dist[v] = longest path cost ending at v.
func longestPathInOrder(d Deployment, g *Graph, m *CostMatrix, order []NodeID) float64 {
	n := m.n
	dist := make([]float64, g.NumNodes())
	best := 0.0
	weighted := g.Weighted()
	for _, v := range order {
		dv := dist[v]
		if dv > best {
			best = dv
		}
		for k, w := range g.Out(v) {
			c := dv + m.c[d[v]*n+d[w]]
			if weighted {
				c = dv + g.outWeight(v, k)*m.c[d[v]*n+d[w]]
			}
			if c > dist[w] {
				dist[w] = c
			}
		}
	}
	return best
}

// LongestPathWithOrder computes the Class 2 deployment cost given a
// precomputed topological order (as returned by Graph.TopoOrder). Solver
// inner loops use this to avoid recomputing the order per candidate.
func LongestPathWithOrder(d Deployment, g *Graph, m *CostMatrix, order []NodeID) float64 {
	return longestPathInOrder(d, g, m, order)
}
