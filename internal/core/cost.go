package core

import (
	"fmt"
	"math"
	"slices"
	"sort"
)

// CostMatrix is the communication cost function CL : S x S -> R (Definition
// 1) over a set of instances 0..n-1. Costs may be asymmetric and need not
// satisfy the triangle inequality, reflecting true network properties. The
// diagonal is zero by convention and is never consulted by deployment cost
// functions because deployment plans are injective.
type CostMatrix struct {
	n int
	c []float64 // row-major n*n
}

// NewCostMatrix returns an n x n zero cost matrix.
func NewCostMatrix(n int) *CostMatrix {
	if n < 0 {
		panic(fmt.Sprintf("core: negative cost matrix size %d", n))
	}
	return &CostMatrix{n: n, c: make([]float64, n*n)}
}

// Size reports the number of instances covered by the matrix.
func (m *CostMatrix) Size() int { return m.n }

// At returns CL(i, j). It panics if either index is out of range, matching
// slice semantics; the hot solver loops index the backing slice directly.
func (m *CostMatrix) At(i, j int) float64 { return m.c[i*m.n+j] }

// Set assigns CL(i, j) = v.
func (m *CostMatrix) Set(i, j int, v float64) { m.c[i*m.n+j] = v }

// Clone returns a deep copy of the matrix.
func (m *CostMatrix) Clone() *CostMatrix {
	out := NewCostMatrix(m.n)
	copy(out.c, m.c)
	return out
}

// Row returns the i-th row as a slice view. Callers must not modify it.
func (m *CostMatrix) Row(i int) []float64 { return m.c[i*m.n : (i+1)*m.n] }

// Transposed returns the matrix with every cost direction swapped:
// Transposed().At(i, j) == At(j, i). Path costs on a transposed graph under
// the transposed matrix equal path costs on the original. The transpose is
// built in one pass over the flat backing — each source row is read
// contiguously and scattered down one destination column — rather than by
// n^2 At/Set calls.
func (m *CostMatrix) Transposed() *CostMatrix {
	n := m.n
	t := NewCostMatrix(n)
	for i := 0; i < n; i++ {
		row := m.c[i*n : (i+1)*n]
		col := t.c[i:]
		for j, v := range row {
			col[j*n] = v
		}
	}
	return t
}

// OffDiagonal returns all off-diagonal entries in row-major order. This is
// the "latency vector" used when comparing measurement schemes (Sect. 6.2.2).
func (m *CostMatrix) OffDiagonal() []float64 {
	if m.n < 2 {
		return nil
	}
	out := make([]float64, 0, m.n*(m.n-1))
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j {
				out = append(out, m.At(i, j))
			}
		}
	}
	return out
}

// DistinctValues returns the sorted distinct off-diagonal cost values. The CP
// solver iterates over these thresholds (Sect. 4.2), so their count bounds
// its iteration count.
func (m *CostMatrix) DistinctValues() []float64 {
	out := m.OffDiagonal()
	if len(out) == 0 {
		return nil
	}
	sort.Float64s(out)
	w := 1
	for i := 1; i < len(out); i++ {
		if out[i] != out[w-1] {
			out[w] = out[i]
			w++
		}
	}
	return out[:w]
}

// CostPair is one ordered instance pair (From, To) tagged with its link cost.
// Slices of CostPair sorted ascending by cost are the backbone of the CP
// solver's incremental threshold graphs: descending the threshold from c to
// c' only needs to visit the pairs whose cost lies in (c', c].
type CostPair struct {
	From, To int32
	Cost     float64
}

// SortedPairs returns every off-diagonal pair of the matrix sorted ascending
// by cost. Ties keep row-major order, so the result is deterministic.
func (m *CostMatrix) SortedPairs() []CostPair {
	if m.n < 2 {
		return nil
	}
	out := make([]CostPair, 0, m.n*(m.n-1))
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j {
				out = append(out, CostPair{From: int32(i), To: int32(j), Cost: m.At(i, j)})
			}
		}
	}
	slices.SortStableFunc(out, func(a, b CostPair) int {
		switch {
		case a.Cost < b.Cost:
			return -1
		case a.Cost > b.Cost:
			return 1
		}
		return 0
	})
	return out
}

// MaxValue returns the largest off-diagonal cost, or 0 for matrices smaller
// than 2x2.
func (m *CostMatrix) MaxValue() float64 {
	max := 0.0
	for i := 0; i < m.n; i++ {
		for j := 0; j < m.n; j++ {
			if i != j && m.At(i, j) > max {
				max = m.At(i, j)
			}
		}
	}
	return max
}

// Validate checks that the matrix has a zero diagonal and no negative or
// non-finite costs.
func (m *CostMatrix) Validate() error {
	if len(m.c) != m.n*m.n {
		return fmt.Errorf("core: cost matrix backing size %d != %d^2", len(m.c), m.n)
	}
	for i := 0; i < m.n; i++ {
		if m.At(i, i) != 0 {
			return fmt.Errorf("core: nonzero diagonal at %d", i)
		}
		for j := 0; j < m.n; j++ {
			v := m.At(i, j)
			if v < 0 || math.IsNaN(v) || math.IsInf(v, 0) {
				return fmt.Errorf("core: invalid cost %g at (%d,%d)", v, i, j)
			}
		}
	}
	return nil
}

// Deployment is a deployment plan D : N -> S (Definition 2): entry i holds
// the instance assigned to application node i. The plan must be injective —
// at most one node per instance — and instances not referenced simply run
// nothing (they are the over-allocated instances ClouDiA terminates).
type Deployment []int

// Identity returns the deployment mapping node i to instance i, the "default
// deployment" of the EC2 allocation ordering the paper compares against.
func Identity(n int) Deployment {
	d := make(Deployment, n)
	for i := range d {
		d[i] = i
	}
	return d
}

// Clone returns a copy of the deployment.
func (d Deployment) Clone() Deployment { return append(Deployment(nil), d...) }

// Validate checks that d maps each of its nodes to a distinct instance in
// [0, numInstances).
func (d Deployment) Validate(numInstances int) error {
	seen := make(map[int]int, len(d))
	for node, inst := range d {
		if inst < 0 || inst >= numInstances {
			return fmt.Errorf("core: node %d mapped to out-of-range instance %d (have %d)", node, inst, numInstances)
		}
		if prev, dup := seen[inst]; dup {
			return fmt.Errorf("core: nodes %d and %d both mapped to instance %d", prev, node, inst)
		}
		seen[inst] = node
	}
	return nil
}

// LongestLink computes the Class 1 deployment cost CLL(D, G, CL): the maximum
// link cost over communication-graph edges under deployment d (Sect. 3.3),
// scaled by edge weights when the graph is weighted. It panics if d does not
// cover all graph nodes; callers validate first.
func LongestLink(d Deployment, g *Graph, m *CostMatrix) float64 {
	worst := 0.0
	n := m.n
	if !g.Weighted() {
		for _, e := range g.Edges() {
			c := m.c[d[e.From]*n+d[e.To]]
			if c > worst {
				worst = c
			}
		}
		return worst
	}
	for k, e := range g.Edges() {
		c := g.edgeWeight(k) * m.c[d[e.From]*n+d[e.To]]
		if c > worst {
			worst = c
		}
	}
	return worst
}

// LongestPath computes the Class 2 deployment cost CLP(D, G, CL): the maximum
// over directed paths of the sum of link costs along the path. The graph
// must be acyclic; ErrCyclic is returned otherwise.
func LongestPath(d Deployment, g *Graph, m *CostMatrix) (float64, error) {
	order, err := g.TopoOrder()
	if err != nil {
		return 0, err
	}
	return longestPathInOrder(d, g, m, order), nil
}

// longestPathInOrder is the DP core of LongestPath, reusable by solvers that
// already hold a topological order. dist[v] = longest path cost ending at v.
func longestPathInOrder(d Deployment, g *Graph, m *CostMatrix, order []NodeID) float64 {
	n := m.n
	dist := make([]float64, g.NumNodes())
	best := 0.0
	weighted := g.Weighted()
	for _, v := range order {
		dv := dist[v]
		if dv > best {
			best = dv
		}
		for k, w := range g.Out(v) {
			c := dv + m.c[d[v]*n+d[w]]
			if weighted {
				c = dv + g.outWeight(v, k)*m.c[d[v]*n+d[w]]
			}
			if c > dist[w] {
				dist[w] = c
			}
		}
	}
	return best
}

// LongestPathWithOrder computes the Class 2 deployment cost given a
// precomputed topological order (as returned by Graph.TopoOrder). Solver
// inner loops use this to avoid recomputing the order per candidate.
func LongestPathWithOrder(d Deployment, g *Graph, m *CostMatrix, order []NodeID) float64 {
	return longestPathInOrder(d, g, m, order)
}
